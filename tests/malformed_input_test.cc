// Malformed-input corpus for the untrusted boundaries: the expression/PD
// parser and the CSV reader. Every case here must come back as a clean
// kInvalidArgument Status — never a crash, a hang, or a half-mutated
// database — and the deep-nesting cases must trip the explicit depth
// limit instead of exhausting the real call stack.

#include <gtest/gtest.h>

#include <string>

#include "core/csv.h"
#include "lattice/expr.h"
#include "util/status.h"

namespace psem {
namespace {

// --- expression / PD parser ------------------------------------------------

TEST(MalformedExprTest, EmptyAndWhitespaceInputs) {
  ExprArena arena;
  for (const char* text : {"", " ", "\t\n", "   \r\n  "}) {
    EXPECT_FALSE(arena.Parse(text).ok()) << "input: '" << text << "'";
    EXPECT_FALSE(arena.ParsePd(text).ok()) << "input: '" << text << "'";
  }
}

TEST(MalformedExprTest, TruncatedExpressions) {
  ExprArena arena;
  for (const char* text : {"A*", "A+", "(A", "A*(B+", "A <= ", " = B",
                           "A =", "(", "A*B)", "((A)"}) {
    auto e = arena.Parse(text);
    auto pd = arena.ParsePd(text);
    EXPECT_FALSE(e.ok() && pd.ok()) << "input: '" << text << "'";
    if (!e.ok()) {
      EXPECT_EQ(e.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(MalformedExprTest, NonUtf8BytesAreRejectedNotCrashed) {
  ExprArena arena;
  std::string junk;
  for (int b = 0x80; b <= 0xFF; ++b) junk += static_cast<char>(b);
  EXPECT_FALSE(arena.Parse(junk).ok());
  EXPECT_FALSE(arena.ParsePd(junk).ok());
  // Embedded NUL and control bytes inside an otherwise-plausible PD.
  std::string embedded = "A ";
  embedded += '\0';
  embedded += "\x01\x7f <= B";
  EXPECT_FALSE(arena.ParsePd(embedded).ok());
}

TEST(MalformedExprTest, DeepNestingHitsTheDepthLimitNotTheStack) {
  // 64k balanced parens: far past kMaxParseDepth, far below what would be
  // needed to smash a real stack if the limit were absent — the point is
  // the *clean* kInvalidArgument.
  ExprArena arena;
  const std::size_t depth = 64 * 1024;
  std::string text(depth, '(');
  text += 'A';
  text.append(depth, ')');
  auto e = arena.Parse(text);
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(e.status().message().find("depth"), std::string::npos);
}

TEST(MalformedExprTest, MillionOpenParensDoNotSmashTheStack) {
  // A 10^6-paren truncated input: the parser must bail out at the depth
  // limit long before recursing a million frames.
  ExprArena arena;
  std::string text(1000 * 1000, '(');
  auto e = arena.Parse(text);
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kInvalidArgument);
}

TEST(MalformedExprTest, NestingJustBelowTheLimitStillParses) {
  ExprArena arena;
  const std::size_t depth = ExprArena::kMaxParseDepth - 1;
  std::string text(depth, '(');
  text += 'A';
  text.append(depth, ')');
  auto e = arena.Parse(text);
  ASSERT_TRUE(e.ok()) << e.status().ToString();
}

TEST(MalformedExprTest, HugeErrorInputsProduceBoundedMessages) {
  // Error messages quote an excerpt, not the whole (potentially huge)
  // input — a 1 MB bad input must not yield a 1 MB error string.
  ExprArena arena;
  std::string text = ";" + std::string(1000 * 1000, 'x');
  auto e = arena.Parse(text);
  ASSERT_FALSE(e.ok());
  EXPECT_LT(e.status().message().size(), 512u);
}

// --- CSV reader --------------------------------------------------------------

TEST(MalformedCsvTest, EmptyInputNeedsHeader) {
  Database db;
  auto r = LoadCsvRelation("", &db);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(db.num_relations(), 0u);
}

TEST(MalformedCsvTest, DuplicateHeaderAttributesRejected) {
  Database db;
  auto r = LoadCsvRelation("A,B,A\n1,2,3\n", &db);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("duplicate"), std::string::npos);
  EXPECT_EQ(db.num_relations(), 0u);
}

TEST(MalformedCsvTest, TruncatedQuotedFieldRejected) {
  Database db;
  auto r = LoadCsvRelation("A,B\n\"unterminated,2\n", &db);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(db.num_relations(), 0u);
}

TEST(MalformedCsvTest, FieldCountMismatchRejected) {
  Database db;
  auto r = LoadCsvRelation("A,B\n1,2\n1,2,3\n", &db);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(MalformedCsvTest, OversizedFieldRejected) {
  Database db;
  std::string csv = "A,B\n1," + std::string(kMaxCsvFieldBytes + 1, 'v') + "\n";
  auto r = LoadCsvRelation(csv, &db);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("maximum length"), std::string::npos);
}

TEST(MalformedCsvTest, TooManyFieldsRejected) {
  Database db;
  std::string header = "A0";
  for (std::size_t i = 1; i <= kMaxCsvFields; ++i) {
    header += ",A" + std::to_string(i);
  }
  auto r = LoadCsvRelation(header + "\n", &db);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("fields"), std::string::npos);
}

TEST(MalformedCsvTest, OversizedInputRejected) {
  Database db;
  std::string csv = "A\n";
  csv.resize(kMaxCsvBytes + 1, 'x');
  auto r = LoadCsvRelation(csv, &db);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("exceeds the maximum"),
            std::string::npos);
}

TEST(MalformedCsvTest, ErrorsAreAllOrNothing) {
  // A database that already holds data must be completely untouched when
  // a later CSV load fails on its last row.
  Database db;
  ASSERT_TRUE(LoadCsvRelation("A,B\nx,y\n", &db, "good").ok());
  ASSERT_EQ(db.num_relations(), 1u);
  std::size_t symbols_before = db.symbols().size();
  auto r = LoadCsvRelation("C,D\n1,2\n3,4\n5\n", &db, "bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(db.num_relations(), 1u);
  EXPECT_EQ(db.symbols().size(), symbols_before);
}

TEST(MalformedCsvTest, NonUtf8BytesSurviveOrFailCleanly) {
  // Arbitrary bytes in field values: the reader treats CSV as bytes, so
  // this either loads or errors — it must not crash either way.
  Database db;
  std::string csv = "A,B\n\x80\xff,\xfe\n";
  auto r = LoadCsvRelation(csv, &db);
  if (!r.ok()) {
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
}

// --- Result<T>::value() on error is a hard abort ----------------------------

using MalformedInputDeathTest = ::testing::Test;

TEST(MalformedInputDeathTest, ResultValueOnErrorAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Result<int> r(Status::InvalidArgument("boom"));
  EXPECT_DEATH({ (void)r.value(); }, "PSEM_CHECK failed");
}

TEST(MalformedInputDeathTest, ResultDerefOnParserErrorAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  ExprArena arena;
  EXPECT_DEATH({ (void)*arena.Parse("(((malformed"); }, "PSEM_CHECK failed");
}

}  // namespace
}  // namespace psem
