// Tests for the text loaders/dumpers.

#include <gtest/gtest.h>

#include "core/io.h"

namespace psem {
namespace {

TEST(DatabaseIoTest, LoadAndRoundTrip) {
  const char* text =
      "# employees\n"
      "relation emp(Name, Dept)\n"
      "row emp ann sales\n"
      "row emp bob eng   # trailing comment\n"
      "\n"
      "relation dept(Dept, Head)\n"
      "row dept sales kim\n";
  Database db;
  ASSERT_TRUE(LoadDatabaseText(text, &db).ok());
  EXPECT_EQ(db.num_relations(), 2u);
  EXPECT_EQ(db.relation(0).size(), 2u);
  EXPECT_EQ(db.relation(1).size(), 1u);
  // Round trip.
  std::string dumped = DumpDatabaseText(db);
  Database db2;
  ASSERT_TRUE(LoadDatabaseText(dumped, &db2).ok());
  EXPECT_EQ(DumpDatabaseText(db2), dumped);
}

TEST(DatabaseIoTest, Errors) {
  auto load = [](const char* text) {
    Database db;
    return LoadDatabaseText(text, &db);
  };
  EXPECT_FALSE(load("relation broken").ok());
  EXPECT_FALSE(load("relation r()").ok());
  EXPECT_FALSE(load("relation 9bad(A)").ok());
  EXPECT_FALSE(load("row ghost x").ok());
  EXPECT_FALSE(load("relation r(A, B)\nrow r onlyone").ok());
  EXPECT_FALSE(load("relation r(A)\nrelation r(B)").ok());
  EXPECT_FALSE(load("describe tables").ok());
  // Error messages carry the line number.
  Status st = load("relation r(A)\nrow r x\nbogus");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("line 3"), std::string::npos);
}

TEST(ConstraintIoTest, LoadsPdsAndFds) {
  const char* text =
      "pd C = A + B\n"
      "pd A <= B     # an FPD\n"
      "fd A B -> C\n";
  ExprArena arena;
  Universe universe;
  auto file = LoadConstraintsText(text, &arena, &universe);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_EQ(file->pds.size(), 2u);
  EXPECT_EQ(file->fds.size(), 1u);
  EXPECT_EQ(arena.ToString(file->pds[0]), "C = A+B");
  // PD attributes were mirrored into the universe.
  EXPECT_TRUE(universe.Require("A").ok());
  EXPECT_TRUE(universe.Require("C").ok());
}

TEST(ConstraintIoTest, Errors) {
  ExprArena arena;
  Universe universe;
  EXPECT_FALSE(LoadConstraintsText("pd A +", &arena, &universe).ok());
  EXPECT_FALSE(LoadConstraintsText("fd A", &arena, &universe).ok());
  EXPECT_FALSE(LoadConstraintsText("mvd A ->> B", &arena, &universe).ok());
}

}  // namespace
}  // namespace psem
