// Tests for the graph substrate and Example e / Theorem 4: connectivity
// via partition sums equals union-find / BFS components, and C = A + B
// holds exactly for correctly-labeled component relations.

#include <gtest/gtest.h>

#include "graph/graph.h"
#include "lattice/expr.h"
#include "partition/canonical.h"
#include "util/rng.h"

namespace psem {
namespace {

TEST(GraphTest, ComponentsUnionFindMatchesBfs) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Graph g = Graph::Random(30, 25, seed);
    EXPECT_TRUE(SameComponents(g.ComponentsUnionFind(), g.ComponentsBfs()));
  }
}

TEST(GraphTest, KnownComponents) {
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(4, 5);
  auto comp = g.ComponentsUnionFind();
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_EQ(comp[4], comp[5]);
  EXPECT_NE(comp[3], comp[4]);
}

TEST(GraphTest, SameComponentsDetectsMismatch) {
  EXPECT_TRUE(SameComponents({0, 0, 1}, {5, 5, 9}));
  EXPECT_FALSE(SameComponents({0, 0, 1}, {5, 6, 9}));
  EXPECT_FALSE(SameComponents({0, 1}, {0, 0}));
  EXPECT_FALSE(SameComponents({0}, {0, 0}));
}

TEST(ExampleETest, EncodingSatisfiesSumPd) {
  Database db;
  Graph g(7);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(3, 4);
  std::size_t ri = EncodeGraphRelation(g, &db);
  ExprArena arena;
  EXPECT_TRUE(*RelationSatisfiesPd(db, db.relation(ri), arena,
                                   *arena.ParsePd("C = A+B")));
  // The encoding also satisfies A*B <= C trivially and C <= A+B.
  EXPECT_TRUE(*RelationSatisfiesPd(db, db.relation(ri), arena,
                                   *arena.ParsePd("C <= A+B")));
}

TEST(ExampleETest, MislabelingBreaksThePd) {
  Database db;
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  std::size_t ri = EncodeGraphRelation(g, &db);
  ExprArena arena;
  ASSERT_TRUE(*RelationSatisfiesPd(db, db.relation(ri), arena,
                                   *arena.ParsePd("C = A+B")));
  // Merge the two components' labels by adding a tuple that reuses the
  // first component's label for vertex 2's self-loop row.
  db.relation(ri).AddRow(&db.symbols(), {"v2", "v2", "comp0"});
  EXPECT_FALSE(*RelationSatisfiesPd(db, db.relation(ri), arena,
                                    *arena.ParsePd("C = A+B")));
}

TEST(ExampleETest, PdSemanticsRecoverComponents) {
  for (uint64_t seed = 10; seed < 16; ++seed) {
    Database db;
    Graph g = Graph::Random(20, 14, seed);
    std::size_t ri = EncodeGraphRelation(g, &db);
    auto pd_comp = *ComponentsViaPdSemantics(db, ri, g.num_vertices());
    auto uf_comp = g.ComponentsUnionFind();
    EXPECT_TRUE(SameComponents(pd_comp, uf_comp)) << "seed " << seed;
  }
}

TEST(ExampleETest, IsolatedVerticesGetOwnComponents) {
  Database db;
  Graph g(3);  // no edges at all
  std::size_t ri = EncodeGraphRelation(g, &db);
  EXPECT_EQ(db.relation(ri).size(), 3u);  // one self-tuple per vertex
  auto pd_comp = *ComponentsViaPdSemantics(db, ri, 3);
  EXPECT_NE(pd_comp[0], pd_comp[1]);
  EXPECT_NE(pd_comp[1], pd_comp[2]);
}

TEST(ExampleETest, EncodingTupleShape) {
  // Per Example e, edge {a, b} contributes abc, bac, aac, bbc.
  Database db;
  Graph g(2);
  g.AddEdge(0, 1);
  std::size_t ri = EncodeGraphRelation(g, &db);
  const Relation& r = db.relation(ri);
  EXPECT_EQ(r.size(), 4u);
  auto has = [&](const char* a, const char* b) {
    Tuple t{db.symbols().Intern(a), db.symbols().Intern(b),
            db.symbols().Intern("comp0")};
    return r.Contains(t);
  };
  EXPECT_TRUE(has("v0", "v1"));
  EXPECT_TRUE(has("v1", "v0"));
  EXPECT_TRUE(has("v0", "v0"));
  EXPECT_TRUE(has("v1", "v1"));
}

TEST(GraphTest, RandomGraphIsSimple) {
  Graph g = Graph::Random(10, 20, 3);
  EXPECT_EQ(g.edges().size(), 20u);
  for (auto [u, v] : g.edges()) {
    EXPECT_NE(u, v);
    EXPECT_LT(u, 10u);
    EXPECT_LT(v, 10u);
  }
}

TEST(GraphTest, RandomGraphCapsAtMaxEdges) {
  Graph g = Graph::Random(4, 100, 3);
  EXPECT_EQ(g.edges().size(), 6u);  // C(4,2)
}

}  // namespace
}  // namespace psem
