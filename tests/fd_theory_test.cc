// Tests for FdTheory: attribute-set closure (the linear algorithm of
// Section 5.3's citation [3]), implication, key enumeration, and minimal
// covers — validated against brute-force Armstrong-style search.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/fd_theory.h"
#include "util/rng.h"

namespace psem {
namespace {

AttrSet MakeSet(Universe* u, const std::vector<std::string>& names) {
  return u->MakeSet(names);
}

TEST(FdClosureTest, TextbookExample) {
  Universe u;
  FdTheory t(&u);
  ASSERT_TRUE(t.AddParsed("A -> B").ok());
  ASSERT_TRUE(t.AddParsed("B -> C").ok());
  ASSERT_TRUE(t.AddParsed("C D -> E").ok());
  AttrSet a_plus = t.Closure(MakeSet(&u, {"A"}));
  EXPECT_EQ(u.SetToString(a_plus), "A B C");
  AttrSet ad_plus = t.Closure(MakeSet(&u, {"A", "D"}));
  EXPECT_EQ(ad_plus.Count(), 5u);  // everything
}

TEST(FdClosureTest, ClosureIsExtensiveMonotoneIdempotent) {
  Rng rng(42);
  Universe u;
  const int n = 6;
  for (int i = 0; i < n; ++i) u.Intern(std::string(1, 'A' + i));
  for (int trial = 0; trial < 20; ++trial) {
    FdTheory t(&u);
    for (int f = 0; f < 4; ++f) {
      AttrSet lhs(n), rhs(n);
      lhs.Set(rng.Below(n));
      if (rng.Chance(1, 2)) lhs.Set(rng.Below(n));
      rhs.Set(rng.Below(n));
      t.Add(Fd{lhs, rhs});
    }
    AttrSet x(n), y(n);
    for (int a = 0; a < n; ++a) {
      if (rng.Chance(1, 3)) x.Set(a);
      if (rng.Chance(1, 3)) y.Set(a);
    }
    AttrSet xc = t.Closure(x);
    EXPECT_TRUE(x.IsSubsetOf(xc));                      // extensive
    EXPECT_EQ(t.Closure(xc), xc);                       // idempotent
    AttrSet xy = x;
    xy.UnionWith(y);
    EXPECT_TRUE(xc.IsSubsetOf(t.Closure(xy)));          // monotone
  }
}

TEST(FdImplicationTest, ArmstrongAxioms) {
  Universe u;
  FdTheory t(&u);
  ASSERT_TRUE(t.AddParsed("A -> B").ok());
  // Reflexivity.
  EXPECT_TRUE(t.Implies(*Fd::Parse(&u, "A B -> A")));
  // Augmentation.
  EXPECT_TRUE(t.Implies(*Fd::Parse(&u, "A C -> B C")));
  // Not implied.
  EXPECT_FALSE(t.Implies(*Fd::Parse(&u, "B -> A")));
}

TEST(FdImplicationTest, EquivalentTo) {
  Universe u;
  FdTheory t1(&u), t2(&u), t3(&u);
  ASSERT_TRUE(t1.AddParsed("A -> B").ok());
  ASSERT_TRUE(t1.AddParsed("B -> C").ok());
  ASSERT_TRUE(t2.AddParsed("A -> B C").ok());
  ASSERT_TRUE(t2.AddParsed("B -> C").ok());
  EXPECT_TRUE(t1.EquivalentTo(t2));
  ASSERT_TRUE(t3.AddParsed("A -> C").ok());
  EXPECT_FALSE(t1.EquivalentTo(t3));
}

TEST(FdKeysTest, SingleKey) {
  Universe u;
  FdTheory t(&u);
  ASSERT_TRUE(t.AddParsed("A -> B").ok());
  ASSERT_TRUE(t.AddParsed("B -> C").ok());
  AttrSet scheme = MakeSet(&u, {"A", "B", "C"});
  auto keys = t.Keys(scheme);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(u.SetToString(keys[0]), "A");
}

TEST(FdKeysTest, MultipleKeysCyclic) {
  // A -> B, B -> A over {A, B, C}: keys are AC and BC.
  Universe u;
  FdTheory t(&u);
  ASSERT_TRUE(t.AddParsed("A -> B").ok());
  ASSERT_TRUE(t.AddParsed("B -> A").ok());
  AttrSet scheme = MakeSet(&u, {"A", "B", "C"});
  auto keys = t.Keys(scheme);
  ASSERT_EQ(keys.size(), 2u);
  std::vector<std::string> names;
  for (const auto& k : keys) names.push_back(u.SetToString(k));
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names[0], "A C");
  EXPECT_EQ(names[1], "B C");
}

TEST(FdKeysTest, AllSingletonsWhenEverythingEquivalent) {
  Universe u;
  FdTheory t(&u);
  ASSERT_TRUE(t.AddParsed("A -> B").ok());
  ASSERT_TRUE(t.AddParsed("B -> C").ok());
  ASSERT_TRUE(t.AddParsed("C -> A").ok());
  auto keys = t.Keys(MakeSet(&u, {"A", "B", "C"}));
  EXPECT_EQ(keys.size(), 3u);
  for (const auto& k : keys) EXPECT_EQ(k.Count(), 1u);
}

TEST(FdKeysTest, NoFdsMeansWholeSchemeIsKey) {
  Universe u;
  FdTheory t(&u);
  AttrSet scheme = MakeSet(&u, {"A", "B"});
  auto keys = t.Keys(scheme);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], scheme);
}

TEST(FdKeysTest, KeysAreMinimalAndDetermineScheme) {
  Rng rng(321);
  Universe u;
  const int n = 5;
  for (int i = 0; i < n; ++i) u.Intern(std::string(1, 'A' + i));
  AttrSet scheme(n);
  scheme.SetAll();
  for (int trial = 0; trial < 15; ++trial) {
    FdTheory t(&u);
    for (int f = 0; f < 3; ++f) {
      AttrSet lhs(n), rhs(n);
      lhs.Set(rng.Below(n));
      if (rng.Chance(1, 2)) lhs.Set(rng.Below(n));
      rhs.Set(rng.Below(n));
      t.Add(Fd{lhs, rhs});
    }
    auto keys = t.Keys(scheme);
    ASSERT_FALSE(keys.empty());
    for (const AttrSet& k : keys) {
      EXPECT_TRUE(scheme.IsSubsetOf(t.Closure(k)));
      // Minimality: dropping any attribute breaks it.
      k.ForEach([&](std::size_t a) {
        AttrSet smaller = k;
        smaller.Reset(a);
        if (smaller.Any()) {
          EXPECT_FALSE(scheme.IsSubsetOf(t.Closure(smaller)));
        }
      });
      // No key contains another.
      for (const AttrSet& k2 : keys) {
        if (!(k == k2)) EXPECT_FALSE(k.IsSubsetOf(k2));
      }
    }
  }
}

TEST(MinimalCoverTest, RemovesRedundancyAndStaysEquivalent) {
  Universe u;
  FdTheory t(&u);
  ASSERT_TRUE(t.AddParsed("A -> B C").ok());
  ASSERT_TRUE(t.AddParsed("B -> C").ok());
  ASSERT_TRUE(t.AddParsed("A -> C").ok());       // redundant
  ASSERT_TRUE(t.AddParsed("A B -> C").ok());     // extraneous B, redundant
  auto cover = t.MinimalCover();
  FdTheory min(&u);
  for (const Fd& fd : cover) min.Add(fd);
  EXPECT_TRUE(t.EquivalentTo(min));
  // A -> B and B -> C suffice.
  EXPECT_EQ(cover.size(), 2u);
  for (const Fd& fd : cover) {
    EXPECT_EQ(fd.rhs.Count(), 1u);  // singleton rhs
  }
}

TEST(MinimalCoverTest, RandomCoversAreEquivalentAndIrredundant) {
  Rng rng(99);
  Universe u;
  const int n = 5;
  for (int i = 0; i < n; ++i) u.Intern(std::string(1, 'A' + i));
  for (int trial = 0; trial < 15; ++trial) {
    FdTheory t(&u);
    for (int f = 0; f < 5; ++f) {
      AttrSet lhs(n), rhs(n);
      do {
        for (int a = 0; a < n; ++a) {
          if (rng.Chance(1, 3)) lhs.Set(a);
        }
      } while (!lhs.Any());
      do {
        for (int a = 0; a < n; ++a) {
          if (rng.Chance(1, 4)) rhs.Set(a);
        }
      } while (!rhs.Any());
      t.Add(Fd{lhs, rhs});
    }
    auto cover = t.MinimalCover();
    FdTheory min(&u);
    for (const Fd& fd : cover) min.Add(fd);
    EXPECT_TRUE(t.EquivalentTo(min));
    // Irredundant: removing any FD breaks equivalence.
    for (std::size_t i = 0; i < cover.size(); ++i) {
      FdTheory without(&u);
      for (std::size_t j = 0; j < cover.size(); ++j) {
        if (j != i) without.Add(cover[j]);
      }
      EXPECT_FALSE(without.Implies(cover[i]));
    }
  }
}

TEST(FdClosureTest, ClosureAgainstBruteForceDerivation) {
  // Brute force: saturate by applying FDs directly.
  Rng rng(777);
  Universe u;
  const int n = 5;
  for (int i = 0; i < n; ++i) u.Intern(std::string(1, 'A' + i));
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<Fd> fds;
    FdTheory t(&u);
    for (int f = 0; f < 4; ++f) {
      AttrSet lhs(n), rhs(n);
      do {
        for (int a = 0; a < n; ++a) {
          if (rng.Chance(1, 3)) lhs.Set(a);
        }
      } while (!lhs.Any());
      do {
        for (int a = 0; a < n; ++a) {
          if (rng.Chance(1, 3)) rhs.Set(a);
        }
      } while (!rhs.Any());
      fds.push_back(Fd{lhs, rhs});
      t.Add(fds.back());
    }
    AttrSet x(n);
    x.Set(rng.Below(n));
    AttrSet naive = x;
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Fd& fd : fds) {
        if (fd.lhs.IsSubsetOf(naive)) {
          changed |= naive.UnionWith(fd.rhs);
        }
      }
    }
    EXPECT_EQ(t.Closure(x), naive);
  }
}

}  // namespace
}  // namespace psem
