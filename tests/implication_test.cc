// Tests for PD implication (Algorithm ALG, Section 5.2, Theorems 8-9).
// The engine is validated four independent ways:
//   1. hand-checked inferences from the paper's examples;
//   2. differential testing against the literal rule-by-rule NaivePdImplication;
//   3. soundness against explicit finite-lattice models (if ALG says
//      E |= delta, then every sampled lattice satisfying E satisfies delta);
//   4. agreement with the FD closure algorithm on FPD encodings (the
//      Section 5.3 reduction in both directions) and with the Whitman
//      deciders when E is empty (Lemma 8.2).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/fd_theory.h"
#include "core/fpd.h"
#include "core/implication.h"
#include "lattice/expr.h"
#include "lattice/finite_lattice.h"
#include "lattice/whitman.h"
#include "partition/partition_lattice.h"
#include "util/exec_context.h"
#include "util/rng.h"

namespace psem {
namespace {

// Convenience: build a theory from PD strings and query one.
bool Implies(const std::vector<std::string>& e, const std::string& query) {
  ExprArena arena;
  std::vector<Pd> pds;
  for (const auto& s : e) pds.push_back(*arena.ParsePd(s));
  PdImplicationEngine engine(&arena, pds);
  return engine.Implies(*arena.ParsePd(query));
}

TEST(PdImplicationTest, FpdTransitivity) {
  // A <= B, B <= C |= A <= C — the FD chain A->B, B->C |= A->C.
  EXPECT_TRUE(Implies({"A = A*B", "B = B*C"}, "A = A*C"));
  EXPECT_TRUE(Implies({"A <= B", "B <= C"}, "A <= C"));
  EXPECT_FALSE(Implies({"A <= B", "B <= C"}, "C <= A"));
}

TEST(PdImplicationTest, ThreeSpellingsOfAnFpdAreInterchangeable) {
  // X = X*Y, Y = Y+X and X <= Y are equivalent (Section 3.2).
  for (const char* premise : {"A = A*B", "B = B+A", "A <= B"}) {
    for (const char* conclusion : {"A = A*B", "B = B+A", "A <= B"}) {
      EXPECT_TRUE(Implies({premise}, conclusion))
          << premise << " |= " << conclusion;
    }
  }
}

TEST(PdImplicationTest, ExampleF) {
  // X = Y*Z is equivalent to { X <= Y*Z, Y*Z <= X }.
  EXPECT_TRUE(Implies({"X = Y*Z"}, "X <= Y*Z"));
  EXPECT_TRUE(Implies({"X = Y*Z"}, "Y*Z <= X"));
  EXPECT_TRUE(Implies({"X <= Y*Z", "Y*Z <= X"}, "X = Y*Z"));
  // And X = Y*Z gives the FDs X -> Y, X -> Z, YZ -> X.
  EXPECT_TRUE(Implies({"X = Y*Z"}, "X <= Y"));
  EXPECT_TRUE(Implies({"X = Y*Z"}, "X <= Z"));
  EXPECT_FALSE(Implies({"X = Y*Z"}, "Y <= X"));
}

TEST(PdImplicationTest, SumDecomposition) {
  // Section 4.2: A+B <= C is equivalent to A <= C and B <= C.
  EXPECT_TRUE(Implies({"A+B <= C"}, "A <= C"));
  EXPECT_TRUE(Implies({"A+B <= C"}, "B <= C"));
  EXPECT_TRUE(Implies({"A <= C", "B <= C"}, "A+B <= C"));
}

TEST(PdImplicationTest, ConnectivityPdConsequences) {
  // C = A+B: both A and B determine C (cf. Example e).
  EXPECT_TRUE(Implies({"C = A+B"}, "A <= C"));
  EXPECT_TRUE(Implies({"C = A+B"}, "B <= C"));
  EXPECT_TRUE(Implies({"C = A+B"}, "C <= A+B"));
  EXPECT_FALSE(Implies({"C = A+B"}, "C <= A"));
  EXPECT_FALSE(Implies({"C <= A+B"}, "C = A+B"));
}

TEST(PdImplicationTest, IdentitiesImpliedByEmptyTheory) {
  EXPECT_TRUE(Implies({}, "A*B = B*A"));
  EXPECT_TRUE(Implies({}, "A+(B+C) = (A+B)+C"));
  EXPECT_TRUE(Implies({}, "A*(A+B) = A"));
  EXPECT_TRUE(Implies({}, "A*B + A*C <= A*(B+C)"));
  EXPECT_FALSE(Implies({}, "A*(B+C) <= A*B + A*C"));
  EXPECT_FALSE(Implies({}, "A = B"));
}

TEST(PdImplicationTest, CongruenceUnderOperators) {
  // From A = B infer A*C = B*C and A+C = B+C.
  EXPECT_TRUE(Implies({"A = B"}, "A*C = B*C"));
  EXPECT_TRUE(Implies({"A = B"}, "A+C = B+C"));
  EXPECT_TRUE(Implies({"A = B", "C = D"}, "A*C = B*D"));
}

TEST(PdImplicationTest, SubstitutionThroughNestedExpressions) {
  EXPECT_TRUE(Implies({"A = B*C"}, "A+D = B*C+D"));
  EXPECT_TRUE(Implies({"A = B*C", "D = A+E"}, "D = B*C+E"));
}

TEST(PdImplicationTest, AugmentationLikeFds) {
  // FD augmentation: A -> B gives AC -> BC.
  EXPECT_TRUE(Implies({"A <= B"}, "A*C <= B*C"));
  // Union rule: A -> B and A -> C give A -> BC.
  EXPECT_TRUE(Implies({"A <= B", "A <= C"}, "A <= B*C"));
  // Decomposition: A -> BC gives A -> B.
  EXPECT_TRUE(Implies({"A <= B*C"}, "A <= B"));
}

TEST(PdImplicationTest, PseudoTransitivityMixedOperators) {
  EXPECT_TRUE(Implies({"A <= B+C", "B <= D", "C <= D"}, "A <= D"));
  EXPECT_FALSE(Implies({"A <= B+C", "B <= D"}, "A <= D"));
}

TEST(PdImplicationTest, EngineStatsArePopulated) {
  ExprArena arena;
  std::vector<Pd> pds = {*arena.ParsePd("A = A*B"), *arena.ParsePd("B = B*C")};
  PdImplicationEngine engine(&arena, pds);
  EXPECT_TRUE(engine.Implies(*arena.ParsePd("A <= C")));
  EXPECT_GT(engine.stats().num_vertices, 0u);
  EXPECT_GT(engine.stats().num_arcs, 0u);
  EXPECT_GT(engine.stats().passes, 0u);
}

TEST(PdImplicationTest, IncrementalQueriesExtendV) {
  ExprArena arena;
  PdImplicationEngine engine(&arena, {*arena.ParsePd("A <= B")});
  EXPECT_TRUE(engine.Implies(*arena.ParsePd("A <= B")));
  std::size_t n1 = engine.stats().num_vertices;
  // A query with fresh subexpressions grows V and stays correct.
  EXPECT_TRUE(engine.Implies(*arena.ParsePd("A*C <= B+D")));
  EXPECT_GT(engine.stats().num_vertices, n1);
  EXPECT_FALSE(engine.Implies(*arena.ParsePd("B <= A")));
}

// --- random generators --------------------------------------------------------

ExprId RandomExpr(ExprArena* arena, Rng* rng, int num_attrs, int ops) {
  if (ops == 0) {
    return arena->Attr(
        std::string(1, static_cast<char>('A' + rng->Below(num_attrs))));
  }
  int left = static_cast<int>(rng->Below(static_cast<uint64_t>(ops)));
  ExprId l = RandomExpr(arena, rng, num_attrs, left);
  ExprId r = RandomExpr(arena, rng, num_attrs, ops - 1 - left);
  return rng->Chance(1, 2) ? arena->Product(l, r) : arena->Sum(l, r);
}

std::vector<Pd> RandomTheory(ExprArena* arena, Rng* rng, int num_attrs,
                             int num_pds, int max_ops) {
  std::vector<Pd> pds;
  for (int i = 0; i < num_pds; ++i) {
    ExprId l = RandomExpr(arena, rng, num_attrs,
                          static_cast<int>(rng->Below(max_ops + 1)));
    ExprId r = RandomExpr(arena, rng, num_attrs,
                          static_cast<int>(rng->Below(max_ops + 1)));
    pds.push_back(rng->Chance(1, 2) ? Pd::Eq(l, r) : Pd::Leq(l, r));
  }
  return pds;
}

// --- differential: engine vs naive rule application ---------------------------

class AlgDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(AlgDifferentialTest, EngineMatchesNaive) {
  Rng rng(5000 + GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    ExprArena arena;
    std::vector<Pd> e = RandomTheory(&arena, &rng, 3, 2, 2);
    PdImplicationEngine engine(&arena, e);
    int true_count = 0;
    for (int q = 0; q < 6; ++q) {
      ExprId l = RandomExpr(&arena, &rng, 3, 1 + q % 3);
      ExprId r = RandomExpr(&arena, &rng, 3, 1 + (q + 1) % 3);
      Pd query = q % 2 == 0 ? Pd::Leq(l, r) : Pd::Eq(l, r);
      bool fast = engine.Implies(query);
      bool slow = NaivePdImplication(arena, e, query);
      ASSERT_EQ(fast, slow)
          << "E: " << [&] {
               std::string s;
               for (const Pd& pd : e) s += arena.ToString(pd) + "; ";
               return s;
             }() << " query: " << arena.ToString(query);
      true_count += fast;
    }
    (void)true_count;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgDifferentialTest, ::testing::Range(0, 8));

// --- differential: delta closure vs naive, across engine configurations -------
//
// Coverage for the semi-naive delta closure: 500 random theories
// (20 seeds x 25 trials), each answered four ways against the literal
// rule-by-rule reference:
//   * serial, 2-thread, and 8-thread engines, queried incrementally so
//     each later query extends V and exercises the warm-start seeding;
//   * a budget-starved engine whose closure is aborted by WithMaxArcs
//     and resumed with doubled budgets until it completes — the final
//     verdicts after any number of aborted attempts must still match.
// All engine configurations must also agree among themselves on the
// final vertex and arc counts (the closure matrix is configuration-
// independent).

class DeltaClosureDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(DeltaClosureDifferentialTest, AllConfigurationsMatchNaive) {
  Rng rng(9100 + GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    ExprArena arena;
    std::vector<Pd> e = RandomTheory(&arena, &rng, 3, 2, 2);
    std::vector<Pd> queries;
    for (int q = 0; q < 4; ++q) {
      ExprId l = RandomExpr(&arena, &rng, 3, 1 + q % 3);
      ExprId r = RandomExpr(&arena, &rng, 3, 1 + (q + 1) % 3);
      queries.push_back(q % 2 == 0 ? Pd::Leq(l, r) : Pd::Eq(l, r));
    }
    auto describe = [&](const Pd& query) {
      std::string s = "E: ";
      for (const Pd& pd : e) s += arena.ToString(pd) + "; ";
      return s + " query: " + arena.ToString(query);
    };
    std::vector<bool> expected;
    for (const Pd& q : queries) {
      expected.push_back(NaivePdImplication(arena, e, q));
    }

    std::size_t final_vertices = 0, final_arcs = 0;
    for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                std::size_t{8}}) {
      PdImplicationEngine engine(&arena, e,
                                 EngineOptions{.num_threads = threads});
      for (std::size_t qi = 0; qi < queries.size(); ++qi) {
        ASSERT_EQ(engine.Implies(queries[qi]), expected[qi])
            << describe(queries[qi]) << " threads: " << threads;
      }
      if (threads == 1) {
        final_vertices = engine.stats().num_vertices;
        final_arcs = engine.stats().num_arcs;
      } else {
        ASSERT_EQ(engine.stats().num_vertices, final_vertices);
        ASSERT_EQ(engine.stats().num_arcs, final_arcs)
            << "closure diverged at " << threads << " threads";
      }
    }

    // Abort-and-resume under escalating arc budgets.
    PdImplicationEngine starved(&arena, e);
    bool saw_abort = false;
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      uint64_t budget = 1;
      while (true) {
        ExecContext ctx;
        ctx.WithMaxArcs(budget);
        Result<bool> r = starved.Implies(queries[qi], ctx);
        if (r.ok()) {
          ASSERT_EQ(*r, expected[qi])
              << describe(queries[qi]) << " after budget aborts";
          break;
        }
        saw_abort = true;
        ASSERT_LT(budget, uint64_t{1} << 40);
        budget *= 8;
      }
    }
    ASSERT_TRUE(saw_abort);  // budget 1 must starve any nonempty closure
    ASSERT_GE(starved.stats().aborted_closures, 1u);
    ASSERT_EQ(starved.stats().num_vertices, final_vertices);
    ASSERT_EQ(starved.stats().num_arcs, final_arcs);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaClosureDifferentialTest,
                         ::testing::Range(0, 20));

// --- soundness against lattice models ------------------------------------------

class AlgSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(AlgSoundnessTest, ImpliedPdsHoldInEverySatisfyingModel) {
  Rng rng(6000 + GetParam());
  std::vector<FiniteLattice> models;
  models.push_back(FiniteLattice::DiamondM3());
  models.push_back(FiniteLattice::PentagonN5());
  models.push_back(FiniteLattice::Boolean(2));
  models.push_back(FullPartitionLattice(4).lattice);  // Pi_4, 15 elements

  for (int trial = 0; trial < 6; ++trial) {
    ExprArena arena;
    std::vector<Pd> e = RandomTheory(&arena, &rng, 3, 2, 2);
    PdImplicationEngine engine(&arena, e);
    std::vector<Pd> queries;
    for (int q = 0; q < 4; ++q) {
      ExprId l = RandomExpr(&arena, &rng, 3, 1 + q % 3);
      ExprId r = RandomExpr(&arena, &rng, 3, 1 + (q + 1) % 3);
      queries.push_back(q % 2 == 0 ? Pd::Leq(l, r) : Pd::Eq(l, r));
    }
    std::size_t k = arena.num_attrs();
    ASSERT_LE(k, 3u);
    for (const FiniteLattice& l : models) {
      std::size_t total = 1;
      for (std::size_t i = 0; i < k; ++i) total *= l.size();
      for (std::size_t code = 0; code < total; ++code) {
        std::vector<LatticeElem> asg(k);
        std::size_t c = code;
        for (std::size_t i = 0; i < k; ++i) {
          asg[i] = static_cast<LatticeElem>(c % l.size());
          c /= l.size();
        }
        bool model_ok = true;
        for (const Pd& pd : e) {
          if (!*l.Satisfies(arena, pd, asg)) {
            model_ok = false;
            break;
          }
        }
        if (!model_ok) continue;
        // The lattice-with-constants (l, asg) satisfies E: every PD the
        // engine derives must hold in it (Theorem 8 b).
        for (const Pd& q : queries) {
          if (engine.Implies(q)) {
            ASSERT_TRUE(*l.Satisfies(arena, q, asg))
                << arena.ToString(q);
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgSoundnessTest, ::testing::Range(0, 6));

// For queries the engine REJECTS, a counterexample lattice should usually
// be found among small partition-lattice models — check a handful of
// specific rejections.
TEST(AlgCompletenessSpotTest, RejectedQueriesHaveCounterexamples) {
  struct Case {
    std::vector<std::string> e;
    std::string query;
  };
  std::vector<Case> cases = {
      {{"A <= B"}, "B <= A"},
      {{"C = A+B"}, "C <= A"},
      {{}, "A*(B+C) <= A*B + A*C"},
      {{"A <= B+C"}, "A <= B"},
  };
  auto full = FullPartitionLattice(4);
  const FiniteLattice& l = full.lattice;
  for (const Case& tc : cases) {
    ExprArena arena;
    std::vector<Pd> e;
    for (const auto& s : tc.e) e.push_back(*arena.ParsePd(s));
    Pd query = *arena.ParsePd(tc.query);
    PdImplicationEngine engine(&arena, e);
    ASSERT_FALSE(engine.Implies(query)) << tc.query;
    // Search Pi_4 assignments for a countermodel.
    std::size_t k = arena.num_attrs();
    std::size_t total = 1;
    for (std::size_t i = 0; i < k; ++i) total *= l.size();
    bool found = false;
    for (std::size_t code = 0; code < total && !found; ++code) {
      std::vector<LatticeElem> asg(k);
      std::size_t c = code;
      for (std::size_t i = 0; i < k; ++i) {
        asg[i] = static_cast<LatticeElem>(c % l.size());
        c /= l.size();
      }
      bool sat_e = true;
      for (const Pd& pd : e) sat_e &= *l.Satisfies(arena, pd, asg);
      if (sat_e && !*l.Satisfies(arena, query, asg)) found = true;
    }
    EXPECT_TRUE(found) << "no countermodel in Pi_4 for " << tc.query;
  }
}

// --- Section 5.3: FD implication == ALG on FPD encodings -----------------------

class FdVsPdTest : public ::testing::TestWithParam<int> {};

TEST_P(FdVsPdTest, ClosureAgreesWithAlg) {
  Rng rng(7000 + GetParam());
  const int num_attrs = 5;
  for (int trial = 0; trial < 8; ++trial) {
    Universe u;
    for (int i = 0; i < num_attrs; ++i) {
      u.Intern(std::string(1, static_cast<char>('A' + i)));
    }
    FdTheory fds(&u);
    int num_fds = 1 + static_cast<int>(rng.Below(4));
    for (int i = 0; i < num_fds; ++i) {
      AttrSet lhs(num_attrs), rhs(num_attrs);
      do {
        for (int a = 0; a < num_attrs; ++a) {
          if (rng.Chance(1, 3)) lhs.Set(a);
        }
      } while (!lhs.Any());
      do {
        for (int a = 0; a < num_attrs; ++a) {
          if (rng.Chance(1, 3)) rhs.Set(a);
        }
      } while (!rhs.Any());
      fds.Add(Fd{lhs, rhs});
    }
    ExprArena arena;
    std::vector<Pd> fpds = FdsToFpds(u, &arena, fds.fds());
    PdImplicationEngine engine(&arena, fpds);
    // Query random FDs both ways.
    for (int q = 0; q < 12; ++q) {
      AttrSet lhs(num_attrs), rhs(num_attrs);
      do {
        for (int a = 0; a < num_attrs; ++a) {
          if (rng.Chance(1, 3)) lhs.Set(a);
        }
      } while (!lhs.Any());
      do {
        for (int a = 0; a < num_attrs; ++a) {
          if (rng.Chance(1, 3)) rhs.Set(a);
        }
      } while (!rhs.Any());
      Fd fd{lhs, rhs};
      Pd fpd = FdToFpd(u, &arena, fd);
      EXPECT_EQ(fds.Implies(fd), engine.Implies(fpd))
          << fd.ToString(u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FdVsPdTest, ::testing::Range(0, 8));

// --- empty theory == Whitman ----------------------------------------------------

class EmptyTheoryTest : public ::testing::TestWithParam<int> {};

TEST_P(EmptyTheoryTest, AlgWithEmptyEMatchesWhitman) {
  Rng rng(8000 + GetParam());
  ExprArena arena;
  WhitmanMemo whitman(&arena);
  PdImplicationEngine engine(&arena, {});
  for (int trial = 0; trial < 40; ++trial) {
    ExprId l = RandomExpr(&arena, &rng, 3, 1 + trial % 5);
    ExprId r = RandomExpr(&arena, &rng, 3, 1 + (trial + 1) % 5);
    EXPECT_EQ(engine.ImpliesLeq(l, r), whitman.Leq(l, r))
        << arena.ToString(l) << " <= " << arena.ToString(r);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmptyTheoryTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace psem
