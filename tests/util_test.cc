// Unit tests for the utility substrate: Status/Result, DynamicBitset,
// UnionFind, StringInterner, Rng, string helpers.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "util/bitset.h"
#include "util/interner.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/union_find.h"

namespace psem {
namespace {

// --- Status / Result -------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad expr");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad expr");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad expr");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kFailedPrecondition, StatusCode::kOutOfRange,
        StatusCode::kResourceExhausted, StatusCode::kInconsistent,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(c), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterOf(int x) {
  PSEM_ASSIGN_OR_RETURN(int h, HalfOf(x));
  PSEM_ASSIGN_OR_RETURN(int q, HalfOf(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*QuarterOf(8), 2);
  EXPECT_FALSE(QuarterOf(6).ok());  // fails at the second step
  EXPECT_FALSE(QuarterOf(3).ok());  // fails at the first step
}

// --- DynamicBitset ----------------------------------------------------------

TEST(BitsetTest, SetResetTest) {
  DynamicBitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_TRUE(b.None());
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 3u);
  b.Reset(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2u);
}

TEST(BitsetTest, SetAllRespectsSize) {
  DynamicBitset b(70);
  b.SetAll();
  EXPECT_EQ(b.Count(), 70u);
}

TEST(BitsetTest, UnionIntersectionSubtract) {
  DynamicBitset a(100), b(100);
  a.Set(1);
  a.Set(50);
  b.Set(50);
  b.Set(99);
  DynamicBitset u = a;
  EXPECT_TRUE(u.UnionWith(b));
  EXPECT_EQ(u.Count(), 3u);
  EXPECT_FALSE(u.UnionWith(b));  // no change second time
  DynamicBitset i = a;
  i.IntersectWith(b);
  EXPECT_EQ(i.Count(), 1u);
  EXPECT_TRUE(i.Test(50));
  DynamicBitset d = a;
  d.SubtractWith(b);
  EXPECT_EQ(d.Count(), 1u);
  EXPECT_TRUE(d.Test(1));
}

TEST(BitsetTest, UnionWithAnd) {
  DynamicBitset a(64), b(64), c(64);
  a.Set(3);
  a.Set(5);
  b.Set(5);
  b.Set(7);
  EXPECT_TRUE(c.UnionWithAnd(a, b));
  EXPECT_EQ(c.Count(), 1u);
  EXPECT_TRUE(c.Test(5));
}

TEST(BitsetTest, SubsetAndIntersects) {
  DynamicBitset a(10), b(10);
  a.Set(2);
  b.Set(2);
  b.Set(3);
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.Intersects(b));
  DynamicBitset c(10);
  c.Set(9);
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(c.IsSubsetOf(c));
}

TEST(BitsetTest, NextSetBitAndForEach) {
  DynamicBitset b(200);
  std::vector<std::size_t> want = {0, 63, 64, 127, 199};
  for (auto i : want) b.Set(i);
  std::vector<std::size_t> got;
  b.ForEach([&](std::size_t i) { got.push_back(i); });
  EXPECT_EQ(got, want);
  EXPECT_EQ(b.NextSetBit(65), 127u);
  EXPECT_EQ(b.NextSetBit(200), 200u);
}

TEST(BitsetTest, ResizeGrowPreservesAndShrinkDrops) {
  DynamicBitset b(70);
  b.Set(0);
  b.Set(63);
  b.Set(69);
  b.Resize(200);
  EXPECT_EQ(b.size(), 200u);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(69));
  EXPECT_EQ(b.Count(), 3u);  // new positions start clear
  b.Set(199);
  b.Resize(64);
  EXPECT_EQ(b.Count(), 2u);  // 69 and 199 dropped
  b.Resize(128);
  EXPECT_FALSE(b.Test(69));  // dropped bits do not resurrect
  b.SetAll();
  EXPECT_EQ(b.Count(), 128u);
}

TEST(BitsetTest, ClearFromIsBitExact) {
  for (std::size_t from : {0u, 1u, 63u, 64u, 65u, 129u, 130u}) {
    DynamicBitset b(130);
    b.SetAll();
    b.ClearFrom(from);
    EXPECT_EQ(b.Count(), from) << "from=" << from;
    if (from > 0) {
      EXPECT_TRUE(b.Test(from - 1));
    }
    if (from < 130) {
      EXPECT_FALSE(b.Test(from));
    }
  }
}

// Zero-length bitsets are what a fresh engine's ExportClosureState hands
// to the snapshot encoder; every kernel must be total on them.
TEST(BitsetTest, ZeroLengthKernelsAreTotal) {
  DynamicBitset a, b, c;
  EXPECT_EQ(a.size(), 0u);
  EXPECT_EQ(a.num_words(), 0u);
  a.OrWith(b);
  c.AndNot(a, b);
  EXPECT_EQ(a.OrInPlaceCountNew(b), 0u);
  EXPECT_EQ(c.OrAndInPlaceCountNew(a, b), 0u);
  EXPECT_FALSE(a.UnionWith(b));
  EXPECT_EQ(a.Count(), 0u);
  EXPECT_TRUE(a.None());
  std::size_t lo = 7, hi = 7;
  EXPECT_FALSE(a.NonZeroWordSpan(&lo, &hi));
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, 0u);
  EXPECT_EQ(a.NextSetBit(0), 0u);
  EXPECT_TRUE(a == b);
}

TEST(BitsetTest, OrInPlaceCountNewIsExactOnOddTailWords) {
  DynamicBitset dst(67), src(67), newly(67);
  dst.Set(0);
  dst.Set(66);
  src.Set(0);   // already present: not new
  src.Set(65);  // tail word, new
  src.Set(63);  // word boundary, new
  EXPECT_EQ(dst.OrInPlaceCountNew(src, &newly), 2u);
  EXPECT_EQ(newly.Count(), 2u);
  EXPECT_TRUE(newly.Test(65));
  EXPECT_TRUE(newly.Test(63));
  EXPECT_FALSE(newly.Test(0));
  // Second application: nothing fresh, `newly` untouched.
  EXPECT_EQ(dst.OrInPlaceCountNew(src, &newly), 0u);
  EXPECT_EQ(newly.Count(), 2u);
  EXPECT_EQ(dst.Count(), 4u);
}

TEST(BitsetTest, OrAndInPlaceCountNewIsExactOnOddTailWords) {
  DynamicBitset dst(67), a(67), b(67), newly(67);
  a.Set(3);
  a.Set(66);
  b.Set(66);
  b.Set(5);
  dst.Set(3);
  EXPECT_EQ(dst.OrAndInPlaceCountNew(a, b, &newly), 1u);  // only 66 is new
  EXPECT_TRUE(dst.Test(66));
  EXPECT_TRUE(dst.Test(3));
  EXPECT_EQ(newly.Count(), 1u);
  EXPECT_TRUE(newly.Test(66));
  EXPECT_EQ(dst.OrAndInPlaceCountNew(a, b, &newly), 0u);
}

TEST(BitsetTest, SelfAliasedKernelsAreIdempotent) {
  DynamicBitset a(130), b(130);
  a.Set(1);
  a.Set(64);
  a.Set(129);
  b.Set(64);
  DynamicBitset orig = a;
  a.OrWith(a);
  EXPECT_TRUE(a == orig);
  EXPECT_FALSE(a.UnionWith(a));
  EXPECT_EQ(a.OrInPlaceCountNew(a), 0u);
  EXPECT_EQ(a.OrAndInPlaceCountNew(a, a), 0u);
  EXPECT_TRUE(a == orig);
  // AndNot with the destination aliasing either operand.
  DynamicBitset d1 = a;
  d1.AndNot(d1, b);  // this == a-operand
  EXPECT_EQ(d1.Count(), 2u);
  EXPECT_FALSE(d1.Test(64));
  DynamicBitset d2 = b;
  d2.AndNot(a, d2);  // this == b-operand
  EXPECT_EQ(d2.Count(), 2u);
  EXPECT_TRUE(d2.Test(1));
  EXPECT_TRUE(d2.Test(129));
  DynamicBitset d3 = a;
  d3.AndNot(d3, d3);  // full aliasing: x & ~x
  EXPECT_TRUE(d3.None());
}

// set_word is the untrusted-deserialization boundary (core/snapshot.cc):
// stray bits beyond size() must be rejected, not silently folded into
// Count()/Any()/the engine's arc audit.
TEST(BitsetTest, SetWordRejectsStrayTailBits) {
  DynamicBitset b(70);  // tail word holds bits 64..69
  EXPECT_TRUE(b.set_word(0, ~uint64_t{0}));
  EXPECT_TRUE(b.set_word(1, 0x3F));  // all six legal bits
  EXPECT_EQ(b.Count(), 70u);
  EXPECT_FALSE(b.set_word(1, uint64_t{1} << 6));  // first illegal bit
  EXPECT_FALSE(b.set_word(1, ~uint64_t{0}));
  EXPECT_EQ(b.word(1), 0x3Fu);  // rejected writes leave the word alone
  EXPECT_EQ(b.Count(), 70u);
  // A word-aligned size has no illegal tail positions.
  DynamicBitset aligned(128);
  EXPECT_TRUE(aligned.set_word(1, ~uint64_t{0}));
  EXPECT_EQ(aligned.Count(), 64u);
}

TEST(BitsetTest, UnionWithFromRestrictsToTail) {
  for (std::size_t from : {0u, 1u, 63u, 64u, 65u, 100u, 130u}) {
    DynamicBitset dst(130), src(130);
    src.SetAll();
    DynamicBitset want = dst;
    for (std::size_t i = from; i < 130; ++i) want.Set(i);
    bool changed = dst.UnionWithFrom(src, from);
    EXPECT_EQ(dst, want) << "from=" << from;
    EXPECT_EQ(changed, from < 130) << "from=" << from;
    EXPECT_FALSE(dst.UnionWithFrom(src, from));  // idempotent => unchanged
  }
}

TEST(BitsetTest, UnionWithAndFromMatchesIntersectThenUnion) {
  DynamicBitset a(130), b(130);
  for (std::size_t i = 0; i < 130; i += 3) a.Set(i);
  for (std::size_t i = 0; i < 130; i += 2) b.Set(i);
  for (std::size_t from : {0u, 5u, 64u, 65u, 128u}) {
    DynamicBitset got(130);
    got.UnionWithAndFrom(a, b, from);
    DynamicBitset want = a;
    want.IntersectWith(b);
    want.ClearFrom(130);
    DynamicBitset head = want;  // reference: (a & b) restricted to >= from
    want.Clear();
    for (std::size_t i = head.NextSetBit(from); i < 130;
         i = head.NextSetBit(i + 1)) {
      want.Set(i);
    }
    EXPECT_EQ(got, want) << "from=" << from;
  }
}

TEST(BitsetTest, OrInPlaceCountNewCountsExactlyTheFreshBits) {
  DynamicBitset dst(130), src(130), newly(130);
  dst.Set(0);
  dst.Set(64);
  dst.Set(129);
  src.Set(0);    // already present: not counted
  src.Set(1);    // fresh
  src.Set(64);   // already present
  src.Set(65);   // fresh
  src.Set(128);  // fresh, in the tail word
  EXPECT_EQ(dst.OrInPlaceCountNew(src, &newly), 3u);
  for (std::size_t i : {0u, 1u, 64u, 65u, 128u, 129u}) EXPECT_TRUE(dst.Test(i));
  EXPECT_EQ(dst.Count(), 6u);
  // `newly` holds exactly the fresh bits.
  EXPECT_EQ(newly.Count(), 3u);
  EXPECT_TRUE(newly.Test(1));
  EXPECT_TRUE(newly.Test(65));
  EXPECT_TRUE(newly.Test(128));
  // Re-running is a no-op: nothing is fresh the second time.
  EXPECT_EQ(dst.OrInPlaceCountNew(src, &newly), 0u);
  EXPECT_EQ(newly.Count(), 3u);
}

TEST(BitsetTest, OrInPlaceCountNewMatchesUnionOnRandomSets) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    // Exercise tail-word masking: sizes straddle word boundaries.
    std::size_t n = 1 + rng.Below(200);
    DynamicBitset a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.Below(3) == 0) a.Set(i);
      if (rng.Below(3) == 0) b.Set(i);
    }
    DynamicBitset want = a;
    want.UnionWith(b);
    DynamicBitset got = a;
    std::size_t before = got.Count();
    std::size_t added = got.OrInPlaceCountNew(b);
    EXPECT_EQ(got, want);
    EXPECT_EQ(added, got.Count() - before);
  }
}

TEST(BitsetTest, OrAndInPlaceCountNewMatchesUnionWithAnd) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::size_t n = 1 + rng.Below(200);
    DynamicBitset dst(n), a(n), b(n), newly(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.Below(4) == 0) dst.Set(i);
      if (rng.Below(2) == 0) a.Set(i);
      if (rng.Below(2) == 0) b.Set(i);
    }
    DynamicBitset want = dst;
    want.UnionWithAnd(a, b);
    std::size_t before = dst.Count();
    std::size_t added = dst.OrAndInPlaceCountNew(a, b, &newly);
    EXPECT_EQ(dst, want);
    EXPECT_EQ(added, dst.Count() - before);
    // Recorded bits are exactly dst \ old-dst.
    EXPECT_EQ(newly.Count(), added);
    EXPECT_TRUE(newly.IsSubsetOf(dst));
  }
}

TEST(BitsetTest, OrWithMatchesUnionWith) {
  Rng rng(41);
  for (int trial = 0; trial < 50; ++trial) {
    std::size_t n = 1 + rng.Below(200);  // straddles word boundaries
    DynamicBitset a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.Below(3) == 0) a.Set(i);
      if (rng.Below(3) == 0) b.Set(i);
    }
    DynamicBitset want = a;
    want.UnionWith(b);
    a.OrWith(b);
    EXPECT_EQ(a, want);
  }
}

TEST(BitsetTest, CountNewKernelsOnZeroLengthSets) {
  DynamicBitset a(0), b(0), newly(0);
  EXPECT_EQ(a.OrInPlaceCountNew(b), 0u);
  EXPECT_EQ(a.OrAndInPlaceCountNew(b, b, &newly), 0u);
  a.OrWith(b);
  a.AndNot(b, b);
  EXPECT_EQ(a.size(), 0u);
  std::size_t lo = 99, hi = 99;
  EXPECT_FALSE(a.NonZeroWordSpan(&lo, &hi));
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, 0u);
}

TEST(BitsetTest, AndNotComputesDifference) {
  DynamicBitset a(130), b(130), out(130);
  for (std::size_t i = 0; i < 130; i += 2) a.Set(i);
  for (std::size_t i = 0; i < 130; i += 3) b.Set(i);
  out.Set(77);  // stale contents must be overwritten
  out.AndNot(a, b);
  DynamicBitset want = a;
  want.SubtractWith(b);
  EXPECT_EQ(out, want);
  EXPECT_FALSE(out.Test(77));
}

TEST(BitsetTest, NonZeroWordSpanBracketsOccupiedWords) {
  DynamicBitset b(300);  // 5 words
  std::size_t lo = 0, hi = 0;
  EXPECT_FALSE(b.NonZeroWordSpan(&lo, &hi));
  b.Set(70);   // word 1
  b.Set(190);  // word 2
  EXPECT_TRUE(b.NonZeroWordSpan(&lo, &hi));
  EXPECT_EQ(lo, 1u);
  EXPECT_EQ(hi, 3u);
  EXPECT_EQ(b.num_words(), 5u);
  EXPECT_EQ(b.word(1), uint64_t{1} << (70 - 64));
  b.Set(0);
  b.Set(299);
  EXPECT_TRUE(b.NonZeroWordSpan(&lo, &hi));
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, 5u);
}

TEST(BitsetTest, EqualityAndHash) {
  DynamicBitset a(66), b(66);
  a.Set(65);
  b.Set(65);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  b.Set(0);
  EXPECT_FALSE(a == b);
}

// --- UnionFind --------------------------------------------------------------

TEST(UnionFindTest, BasicUnions) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(0, 2));
  EXPECT_EQ(uf.num_sets(), 4u);
}

TEST(UnionFindTest, CanonicalLabelsNumberedByFirstOccurrence) {
  UnionFind uf(6);
  uf.Union(3, 5);
  uf.Union(0, 4);
  auto labels = uf.CanonicalLabels();
  // 0 -> 0, 1 -> 1, 2 -> 2, 3 -> 3, 4 -> 0 (joined 0), 5 -> 3.
  EXPECT_EQ(labels[0], 0u);
  EXPECT_EQ(labels[4], 0u);
  EXPECT_EQ(labels[3], labels[5]);
  EXPECT_NE(labels[1], labels[2]);
}

TEST(UnionFindTest, AddElement) {
  UnionFind uf(2);
  uint32_t id = uf.AddElement();
  EXPECT_EQ(id, 2u);
  EXPECT_EQ(uf.num_sets(), 3u);
  uf.Union(0, id);
  EXPECT_TRUE(uf.Connected(0, 2));
}

TEST(UnionFindTest, RandomStressAgainstNaiveLabels) {
  Rng rng(123);
  const std::size_t n = 200;
  UnionFind uf(n);
  std::vector<uint32_t> naive(n);
  for (uint32_t i = 0; i < n; ++i) naive[i] = i;
  auto naive_union = [&](uint32_t a, uint32_t b) {
    uint32_t la = naive[a], lb = naive[b];
    if (la == lb) return;
    for (auto& l : naive) {
      if (l == lb) l = la;
    }
  };
  for (int step = 0; step < 500; ++step) {
    uint32_t a = static_cast<uint32_t>(rng.Below(n));
    uint32_t b = static_cast<uint32_t>(rng.Below(n));
    uf.Union(a, b);
    naive_union(a, b);
    if (step % 50 == 0) {
      uint32_t x = static_cast<uint32_t>(rng.Below(n));
      uint32_t y = static_cast<uint32_t>(rng.Below(n));
      EXPECT_EQ(uf.Connected(x, y), naive[x] == naive[y]);
    }
  }
  std::set<uint32_t> uf_classes, naive_classes;
  auto labels = uf.CanonicalLabels();
  for (uint32_t i = 0; i < n; ++i) {
    uf_classes.insert(labels[i]);
    naive_classes.insert(naive[i]);
  }
  EXPECT_EQ(uf_classes.size(), naive_classes.size());
  EXPECT_EQ(uf.num_sets(), uf_classes.size());
}

// --- StringInterner ---------------------------------------------------------

TEST(InternerTest, InternIsIdempotent) {
  StringInterner in;
  uint32_t a = in.Intern("alpha");
  uint32_t b = in.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(in.Intern("alpha"), a);
  EXPECT_EQ(in.NameOf(a), "alpha");
  EXPECT_EQ(in.size(), 2u);
}

TEST(InternerTest, LookupWithoutInterning) {
  StringInterner in;
  EXPECT_FALSE(in.Lookup("ghost").has_value());
  in.Intern("ghost");
  EXPECT_TRUE(in.Lookup("ghost").has_value());
}

// --- Rng ---------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, BelowIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(13), 13u);
  }
}

TEST(RngTest, BetweenInclusive) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 200; ++i) {
    int64_t v = rng.Between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

// --- strings ------------------------------------------------------------------

TEST(StringsTest, StripAsciiWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  a b \t\n"), "a b");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
}

TEST(StringsTest, SplitAndStrip) {
  auto parts = SplitAndStrip(" a, b ,, c ", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, IsIdentifier) {
  EXPECT_TRUE(IsIdentifier("A"));
  EXPECT_TRUE(IsIdentifier("_tmp9"));
  EXPECT_FALSE(IsIdentifier("9a"));
  EXPECT_FALSE(IsIdentifier(""));
  EXPECT_FALSE(IsIdentifier("a-b"));
}

}  // namespace
}  // namespace psem
