// libFuzzer harness for the snapshot decoder (core/snapshot.h), the
// highest-stakes untrusted-input boundary in the durability subsystem: a
// snapshot is read back after arbitrary on-disk damage, so DecodeSnapshot
// must turn ANY byte string into either a fully validated DecodedSnapshot
// or a clean kDataLoss/kInvalidArgument — never a crash, hang, unbounded
// allocation, or an engine-poisoning half-restore.
//
// Contract checked per input:
//   * DecodeSnapshot returns; errors are only kDataLoss/kInvalidArgument.
//   * On success, the decoded state must be ACCEPTED by a fresh engine's
//     RestoreEngineState (decode validation is at least as strict as the
//     engine's own invariants), and two decodes of the same bytes agree.
//   * ParseJournalBytes on the same input never crashes and never reports
//     a valid prefix longer than the input.
//
// Build: cmake -DPSEM_FUZZ=ON (requires Clang); run:
//   ./build/tests/fuzz/fuzz_snapshot tests/fuzz/corpus/snapshot \
//       -max_total_time=60

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "core/snapshot.h"
#include "lattice/expr.h"
#include "util/durable_file.h"
#include "util/status.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view bytes(reinterpret_cast<const char*>(data), size);

  // Tight limits keep the fuzzer fast and exercise the bound checks.
  psem::DurableLimits limits;
  limits.max_file_bytes = 1 << 20;
  limits.max_chunk_bytes = 1 << 18;
  limits.max_chunks = 64;
  limits.max_record_bytes = 1 << 12;

  psem::ExprArena arena;
  auto decoded = psem::DecodeSnapshot(bytes, &arena, limits);
  if (!decoded.ok()) {
    psem::StatusCode code = decoded.status().code();
    if (code != psem::StatusCode::kDataLoss &&
        code != psem::StatusCode::kInvalidArgument) {
      __builtin_trap();
    }
  } else {
    // Decode validation must be at least as strict as the engine: a
    // decoded snapshot always restores into a fresh engine.
    psem::PdImplicationEngine engine(&arena, {});
    psem::Status st = engine.RestoreEngineState(decoded->vertices,
                                                decoded->constraints,
                                                std::move(decoded->state));
    if (!st.ok()) __builtin_trap();

    // Determinism: decoding the same bytes twice agrees.
    psem::ExprArena arena2;
    auto again = psem::DecodeSnapshot(bytes, &arena2, limits);
    if (!again.ok() ||
        again->base_fingerprint != decoded->base_fingerprint ||
        again->vertices.size() != decoded->vertices.size() ||
        again->constraints.size() != decoded->constraints.size()) {
      __builtin_trap();
    }
  }

  // The journal scanner shares the framing code path; it must be equally
  // total. A valid prefix can never extend past the input.
  auto journal = psem::ParseJournalBytes(bytes, limits);
  if (journal.ok() && journal->valid_bytes > bytes.size()) __builtin_trap();
  return 0;
}
