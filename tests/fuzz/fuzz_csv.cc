// libFuzzer harness for the CSV reader. Contract: arbitrary bytes either
// load into a fresh relation or return a clean kInvalidArgument Status;
// the database is never left half-mutated (all-or-nothing), and a
// successful load must survive a dump/re-load round trip with the same
// shape.
//
// Build: cmake -DPSEM_FUZZ=ON (requires Clang); run:
//   ./build/tests/fuzz/fuzz_csv tests/fuzz/corpus/csv -max_total_time=60

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/csv.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string input(reinterpret_cast<const char*>(data), size);
  psem::Database db;

  auto r = psem::LoadCsvRelation(input, &db, "fuzz");
  if (!r.ok()) {
    // All-or-nothing: a failed load leaves the database untouched.
    if (db.num_relations() != 0) __builtin_trap();
    return 0;
  }

  const psem::Relation& rel = db.relation(*r);
  std::string dumped = psem::DumpCsvRelation(db, rel);
  psem::Database db2;
  auto r2 = psem::LoadCsvRelation(dumped, &db2, "fuzz");
  if (!r2.ok()) __builtin_trap();
  const psem::Relation& rel2 = db2.relation(*r2);
  if (rel2.arity() != rel.arity() || rel2.size() != rel.size()) {
    __builtin_trap();
  }
  return 0;
}
