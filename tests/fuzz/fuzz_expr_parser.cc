// libFuzzer harness for the expression/PD parser — the primary untrusted
// boundary. The contract under fuzzing: any byte sequence either parses
// or comes back as a clean kInvalidArgument Status; no crash, no hang,
// no depth blowout (kMaxParseDepth guards the recursive descent). A
// successfully parsed expression must survive a print/re-parse round
// trip to the same hash-consed node.
//
// Build: cmake -DPSEM_FUZZ=ON (requires Clang); run:
//   ./build/tests/fuzz/fuzz_expr_parser tests/fuzz/corpus/expr -max_total_time=60

#include <cstddef>
#include <cstdint>
#include <string>

#include "lattice/expr.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string input(reinterpret_cast<const char*>(data), size);
  psem::ExprArena arena;

  auto e = arena.Parse(input);
  if (e.ok()) {
    // Round trip: printing a parsed expression and re-parsing it must
    // yield the identical hash-consed id.
    std::string printed = arena.ToString(*e);
    auto back = arena.Parse(printed);
    if (!back.ok() || *back != *e) __builtin_trap();
  }

  auto pd = arena.ParsePd(input);
  if (pd.ok()) {
    std::string printed = arena.ToString(*pd);
    auto back = arena.ParsePd(printed);
    if (!back.ok()) __builtin_trap();
  }
  return 0;
}
