// Tests for explicit finite lattices: axiom validation, order queries,
// distributivity/modularity, covers, generated sublattices, isomorphism,
// and expression evaluation ("lattices with constants", Section 2.2).

#include <gtest/gtest.h>

#include <algorithm>

#include "lattice/expr.h"
#include "lattice/finite_lattice.h"

namespace psem {
namespace {

TEST(FiniteLatticeTest, StandardLatticesSatisfyAxioms) {
  EXPECT_TRUE(FiniteLattice::Chain(1).ValidateAxioms().ok());
  EXPECT_TRUE(FiniteLattice::Chain(5).ValidateAxioms().ok());
  EXPECT_TRUE(FiniteLattice::Boolean(0).ValidateAxioms().ok());
  EXPECT_TRUE(FiniteLattice::Boolean(3).ValidateAxioms().ok());
  EXPECT_TRUE(FiniteLattice::DiamondM3().ValidateAxioms().ok());
  EXPECT_TRUE(FiniteLattice::PentagonN5().ValidateAxioms().ok());
  EXPECT_TRUE(FiniteLattice::Divisors(60).ValidateAxioms().ok());
}

TEST(FiniteLatticeTest, BrokenTableIsRejected) {
  // A two-element "lattice" with a non-idempotent meet.
  std::vector<std::vector<LatticeElem>> meet = {{1, 0}, {0, 1}};
  std::vector<std::vector<LatticeElem>> join = {{0, 1}, {1, 1}};
  FiniteLattice bad(meet, join);
  Status st = bad.ValidateAxioms();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(FiniteLatticeTest, OutOfRangeEntryIsRejected) {
  std::vector<std::vector<LatticeElem>> meet = {{0, 9}, {9, 1}};
  std::vector<std::vector<LatticeElem>> join = {{0, 1}, {1, 1}};
  EXPECT_EQ(FiniteLattice(meet, join).ValidateAxioms().code(),
            StatusCode::kInvalidArgument);
}

TEST(FiniteLatticeTest, OrderAndBounds) {
  FiniteLattice b3 = FiniteLattice::Boolean(3);
  EXPECT_EQ(b3.Bottom(), 0u);
  EXPECT_EQ(b3.Top(), 7u);
  EXPECT_TRUE(b3.Leq(0b001, 0b011));
  EXPECT_FALSE(b3.Leq(0b011, 0b001));
  EXPECT_FALSE(b3.Leq(0b001, 0b010));
  EXPECT_TRUE(b3.Leq(0, 7));
}

TEST(FiniteLatticeTest, DistributivityClassification) {
  EXPECT_TRUE(FiniteLattice::Chain(4).IsDistributive());
  EXPECT_TRUE(FiniteLattice::Boolean(3).IsDistributive());
  EXPECT_TRUE(FiniteLattice::Divisors(30).IsDistributive());
  EXPECT_FALSE(FiniteLattice::DiamondM3().IsDistributive());
  EXPECT_FALSE(FiniteLattice::PentagonN5().IsDistributive());
}

TEST(FiniteLatticeTest, ModularityClassification) {
  // M3 is modular but not distributive; N5 is the canonical non-modular
  // lattice; distributive implies modular.
  EXPECT_TRUE(FiniteLattice::DiamondM3().IsModular());
  EXPECT_FALSE(FiniteLattice::PentagonN5().IsModular());
  EXPECT_TRUE(FiniteLattice::Boolean(3).IsModular());
  EXPECT_TRUE(FiniteLattice::Chain(5).IsModular());
}

TEST(FiniteLatticeTest, CoversOfBooleanBottom) {
  FiniteLattice b3 = FiniteLattice::Boolean(3);
  auto covers = b3.CoversOf(0);
  std::sort(covers.begin(), covers.end());
  EXPECT_EQ(covers, (std::vector<LatticeElem>{1, 2, 4}));
  EXPECT_TRUE(b3.CoversOf(7).empty());
}

TEST(FiniteLatticeTest, ChainCovers) {
  FiniteLattice c = FiniteLattice::Chain(4);
  for (LatticeElem i = 0; i + 1 < 4; ++i) {
    EXPECT_EQ(c.CoversOf(i), std::vector<LatticeElem>{i + 1});
  }
}

TEST(FiniteLatticeTest, GeneratedSublatticeAndRestrict) {
  FiniteLattice b3 = FiniteLattice::Boolean(3);
  // {001, 110} generates {001, 110, 000, 111}.
  auto sub = b3.GeneratedSublattice({1, 6});
  std::sort(sub.begin(), sub.end());
  EXPECT_EQ(sub, (std::vector<LatticeElem>{0, 1, 6, 7}));
  FiniteLattice r = b3.Restrict(sub);
  EXPECT_EQ(r.size(), 4u);
  EXPECT_TRUE(r.ValidateAxioms().ok());
  EXPECT_TRUE(r.IsDistributive());
  // It is the 2x2 Boolean lattice.
  EXPECT_TRUE(r.IsomorphicTo(FiniteLattice::Boolean(2)));
}

TEST(FiniteLatticeIsoTest, IsomorphicToSelfAndRelabelings) {
  FiniteLattice m3 = FiniteLattice::DiamondM3();
  EXPECT_TRUE(m3.IsomorphicTo(m3));
  FiniteLattice n5 = FiniteLattice::PentagonN5();
  EXPECT_TRUE(n5.IsomorphicTo(n5));
  EXPECT_FALSE(m3.IsomorphicTo(n5));
  EXPECT_FALSE(n5.IsomorphicTo(m3));
}

TEST(FiniteLatticeIsoTest, SizeMismatch) {
  EXPECT_FALSE(FiniteLattice::Chain(3).IsomorphicTo(FiniteLattice::Chain(4)));
}

TEST(FiniteLatticeIsoTest, ChainsOfEqualLengthAreIsomorphic) {
  EXPECT_TRUE(FiniteLattice::Chain(5).IsomorphicTo(FiniteLattice::Chain(5)));
  // Divisors of p^4 form a 5-chain.
  EXPECT_TRUE(FiniteLattice::Divisors(16).IsomorphicTo(FiniteLattice::Chain(5)));
}

TEST(FiniteLatticeIsoTest, BooleanVsChainSameSize) {
  // 4-element Boolean lattice vs 4-chain: same size, different shape.
  EXPECT_FALSE(FiniteLattice::Boolean(2).IsomorphicTo(FiniteLattice::Chain(4)));
}

TEST(FiniteLatticeIsoTest, DivisorsOfSquarefreeIsBoolean) {
  // Divisors(30) = divisors of 2*3*5 ~ Boolean(3).
  EXPECT_TRUE(FiniteLattice::Divisors(30).IsomorphicTo(FiniteLattice::Boolean(3)));
  EXPECT_FALSE(FiniteLattice::Divisors(12).IsomorphicTo(FiniteLattice::Boolean(3)));
}

TEST(FiniteLatticeEvalTest, EvaluatesWithConstants) {
  FiniteLattice b3 = FiniteLattice::Boolean(3);
  ExprArena arena;
  ExprId e = *arena.Parse("A*B + C");
  std::vector<LatticeElem> asg(arena.num_attrs());
  asg[*arena.attr_names().Lookup("A")] = 0b011;
  asg[*arena.attr_names().Lookup("B")] = 0b110;
  asg[*arena.attr_names().Lookup("C")] = 0b100;
  EXPECT_EQ(*b3.Eval(arena, e, asg), 0b110u);
}

TEST(FiniteLatticeEvalTest, UnassignedAttributeIsError) {
  FiniteLattice c = FiniteLattice::Chain(3);
  ExprArena arena;
  ExprId e = *arena.Parse("A*B");
  std::vector<LatticeElem> asg(arena.num_attrs(), FiniteLattice::kNoElem);
  asg[*arena.attr_names().Lookup("A")] = 1;
  auto r = c.Eval(arena, e, asg);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(FiniteLatticeEvalTest, SatisfiesPd) {
  FiniteLattice c = FiniteLattice::Chain(3);
  ExprArena arena;
  std::vector<LatticeElem> asg(2);
  Pd pd = *arena.ParsePd("A <= B");
  asg[*arena.attr_names().Lookup("A")] = 0;
  asg[*arena.attr_names().Lookup("B")] = 2;
  EXPECT_TRUE(*c.Satisfies(arena, pd, asg));
  asg[*arena.attr_names().Lookup("A")] = 2;
  asg[*arena.attr_names().Lookup("B")] = 0;
  EXPECT_FALSE(*c.Satisfies(arena, pd, asg));
}

TEST(FiniteLatticeTest, DivisorsNames) {
  FiniteLattice d = FiniteLattice::Divisors(12);
  // Divisors: 1 2 3 4 6 12.
  EXPECT_EQ(d.size(), 6u);
  EXPECT_EQ(d.NameOf(0), "1");
  EXPECT_EQ(d.NameOf(5), "12");
  EXPECT_EQ(d.Bottom(), 0u);
  EXPECT_EQ(d.Top(), 5u);
}

}  // namespace
}  // namespace psem
