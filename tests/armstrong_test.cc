// Tests for Armstrong relations: the built relation satisfies EXACTLY the
// implied FDs — checked exhaustively on small schemes — and its canonical
// interpretation satisfies exactly the implied FPDs (Theorem 3 closing
// the loop).

#include <gtest/gtest.h>

#include "core/armstrong.h"
#include "core/fpd.h"
#include "partition/canonical.h"
#include "util/rng.h"

namespace psem {
namespace {

TEST(ClosedSetsTest, ChainTheory) {
  Universe u;
  FdTheory t(&u);
  ASSERT_TRUE(t.AddParsed("A -> B").ok());
  ASSERT_TRUE(t.AddParsed("B -> C").ok());
  AttrSet scheme = u.MakeSet({"A", "B", "C"});
  auto closed = ClosedSets(t, scheme);
  // Closed sets: {}, {C}, {B,C}, {A,B,C}.
  EXPECT_EQ(closed.size(), 4u);
  for (const AttrSet& c : closed) {
    AttrSet cl = t.Closure(c);
    cl.IntersectWith(scheme);
    // Closure within the scheme equals the set.
    AttrSet resized(cl.size());
    c.ForEach([&](std::size_t i) { resized.Set(i); });
    EXPECT_EQ(cl, resized);
  }
}

TEST(ClosedSetsTest, NoFdsGivesPowerSet) {
  Universe u;
  FdTheory t(&u);
  AttrSet scheme = u.MakeSet({"A", "B", "C"});
  EXPECT_EQ(ClosedSets(t, scheme).size(), 8u);
}

TEST(ArmstrongTest, SatisfiesExactlyImpliedFds) {
  Universe u;
  FdTheory t(&u);
  ASSERT_TRUE(t.AddParsed("A -> B").ok());
  ASSERT_TRUE(t.AddParsed("B C -> D").ok());
  AttrSet scheme = u.MakeSet({"A", "B", "C", "D"});
  Database db;
  // Mirror universe attribute names into the database universe.
  auto ri = BuildArmstrongRelation(t, scheme, &db);
  ASSERT_TRUE(ri.ok()) << ri.status().ToString();
  const Relation& r = db.relation(*ri);

  // Exhaustively compare satisfaction with implication over all FDs with
  // nonempty sides inside the scheme.
  const int n = 4;
  for (uint32_t lhs_mask = 1; lhs_mask < (1u << n); ++lhs_mask) {
    for (uint32_t rhs_mask = 1; rhs_mask < (1u << n); ++rhs_mask) {
      AttrSet lhs(u.size()), rhs(u.size());
      AttrSet db_lhs(db.universe().size()), db_rhs(db.universe().size());
      for (int a = 0; a < n; ++a) {
        // Universe ids align because scheme attrs were interned in order
        // in both universes (A, B, C, D).
        if (lhs_mask & (1u << a)) {
          lhs.Set(a);
          db_lhs.Set(*db.universe().Require(u.NameOf(a)));
        }
        if (rhs_mask & (1u << a)) {
          rhs.Set(a);
          db_rhs.Set(*db.universe().Require(u.NameOf(a)));
        }
      }
      bool implied = t.Implies(Fd{lhs, rhs});
      bool satisfied = *SatisfiesFd(r, Fd{db_lhs, db_rhs});
      ASSERT_EQ(implied, satisfied)
          << u.SetToString(lhs) << " -> " << u.SetToString(rhs);
    }
  }
}

TEST(ArmstrongTest, RandomTheoriesExact) {
  Rng rng(2024);
  for (int trial = 0; trial < 10; ++trial) {
    Universe u;
    const int n = 4;
    for (int i = 0; i < n; ++i) u.Intern(std::string(1, 'A' + i));
    FdTheory t(&u);
    for (int f = 0; f < 3; ++f) {
      AttrSet lhs(n), rhs(n);
      lhs.Set(rng.Below(n));
      if (rng.Chance(1, 2)) lhs.Set(rng.Below(n));
      rhs.Set(rng.Below(n));
      t.Add(Fd{lhs, rhs});
    }
    AttrSet scheme(n);
    scheme.SetAll();
    Database db;
    auto ri = BuildArmstrongRelation(t, scheme, &db);
    ASSERT_TRUE(ri.ok());
    const Relation& r = db.relation(*ri);
    for (uint32_t lm = 1; lm < (1u << n); ++lm) {
      for (int b = 0; b < n; ++b) {
        AttrSet lhs(n), rhs(n);
        for (int a = 0; a < n; ++a) {
          if (lm & (1u << a)) lhs.Set(a);
        }
        rhs.Set(b);
        AttrSet db_lhs(db.universe().size()), db_rhs(db.universe().size());
        lhs.ForEach([&](std::size_t a) {
          db_lhs.Set(*db.universe().Require(u.NameOf(a)));
        });
        db_rhs.Set(*db.universe().Require(u.NameOf(b)));
        ASSERT_EQ(t.Implies(Fd{lhs, rhs}), *SatisfiesFd(r, Fd{db_lhs, db_rhs}));
      }
    }
  }
}

TEST(ArmstrongTest, CanonicalInterpretationSatisfiesExactlyImpliedFpds) {
  // Theorem 3 through the Armstrong construction: I(armstrong) |= X=X*Y
  // iff the FD is implied.
  Universe u;
  FdTheory t(&u);
  ASSERT_TRUE(t.AddParsed("A -> B").ok());
  AttrSet scheme = u.MakeSet({"A", "B", "C"});
  Database db;
  auto ri = BuildArmstrongRelation(t, scheme, &db);
  ASSERT_TRUE(ri.ok());
  PartitionInterpretation interp =
      *CanonicalInterpretation(db, db.relation(*ri));
  ExprArena arena;
  EXPECT_TRUE(*interp.Satisfies(arena, *arena.ParsePd("A = A*B")));
  EXPECT_FALSE(*interp.Satisfies(arena, *arena.ParsePd("B = B*A")));
  EXPECT_FALSE(*interp.Satisfies(arena, *arena.ParsePd("A = A*C")));
  EXPECT_TRUE(*interp.Satisfies(arena, *arena.ParsePd("A*C = A*C*B")));
}

}  // namespace
}  // namespace psem
