// Tests for the Lemma 12.1 constructive repair: materializing a finite
// weak instance that satisfies ALL of E (FPDs and sum-uppers), verified
// against Definition 7 satisfaction on the produced relation.

#include <gtest/gtest.h>

#include "consistency/pd_consistency.h"
#include "consistency/repair.h"
#include "graph/graph.h"
#include "partition/canonical.h"

namespace psem {
namespace {

// Checks the materialized instance against every PD of E as a relation
// (Definition 7), plus weak-instance containment of the database tuples.
void VerifyMaterialization(Database* db, const ExprArena& arena,
                           const std::vector<Pd>& pds,
                           const MaterializedWeakInstance& m) {
  for (const Pd& pd : pds) {
    EXPECT_TRUE(*RelationSatisfiesPd(*db, m.instance, arena, pd))
        << arena.ToString(pd);
  }
  // Every database tuple appears in the projection of the instance.
  for (std::size_t ri = 0; ri < db->num_relations(); ++ri) {
    const Relation& r = db->relation(ri);
    if (r.schema().name == "weak_instance") continue;
    for (const Tuple& t : r.rows()) {
      bool found = false;
      for (const Tuple& w : m.instance.rows()) {
        bool match = true;
        for (std::size_t c = 0; c < r.arity(); ++c) {
          std::size_t col = m.instance.schema().ColumnOf(r.schema().attrs[c]);
          ASSERT_NE(col, RelationSchema::kNpos);
          if (w[col] != t[c]) {
            match = false;
            break;
          }
        }
        if (match) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "tuple of " << r.schema().name
                         << " missing from the weak instance";
    }
  }
}

TEST(RepairTest, FpdOnlyTheoryNeedsNoRepair) {
  Database db;
  std::size_t r1 = db.AddRelation("R1", {"A", "B"});
  db.relation(r1).AddRow(&db.symbols(), {"a", "b"});
  std::size_t r2 = db.AddRelation("R2", {"B", "C"});
  db.relation(r2).AddRow(&db.symbols(), {"b", "c"});
  ExprArena arena;
  std::vector<Pd> pds = {*arena.ParsePd("A <= B"), *arena.ParsePd("B <= C")};
  auto m = MaterializeWeakInstance(&db, arena, pds);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ(m->added_tuples, 0u);
  VerifyMaterialization(&db, arena, pds, *m);
}

TEST(RepairTest, SumUpperViolationRepaired) {
  // Two fragments give the same C to unconnected A/B contexts; with
  // C = A+B a bridging tuple is required.
  Database db;
  std::size_t r1 = db.AddRelation("R1", {"A", "C"});
  db.relation(r1).AddRow(&db.symbols(), {"a1", "c"});
  std::size_t r2 = db.AddRelation("R2", {"B", "C"});
  db.relation(r2).AddRow(&db.symbols(), {"b2", "c"});
  ExprArena arena;
  std::vector<Pd> pds = {*arena.ParsePd("C = A+B")};
  auto report = *PdConsistent(&db, arena, pds);
  ASSERT_TRUE(report.consistent);

  Database db2;
  r1 = db2.AddRelation("R1", {"A", "C"});
  db2.relation(r1).AddRow(&db2.symbols(), {"a1", "c"});
  r2 = db2.AddRelation("R2", {"B", "C"});
  db2.relation(r2).AddRow(&db2.symbols(), {"b2", "c"});
  auto m = MaterializeWeakInstance(&db2, arena, pds);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_GE(m->added_tuples, 1u);
  VerifyMaterialization(&db2, arena, pds, *m);
}

TEST(RepairTest, InconsistentDatabaseRefused) {
  Database db;
  std::size_t r1 = db.AddRelation("R1", {"A", "B"});
  db.relation(r1).AddRow(&db.symbols(), {"a", "b1"});
  std::size_t r2 = db.AddRelation("R2", {"A", "B"});
  db.relation(r2).AddRow(&db.symbols(), {"a", "b2"});
  ExprArena arena;
  std::vector<Pd> pds = {*arena.ParsePd("A <= B")};
  auto m = MaterializeWeakInstance(&db, arena, pds);
  EXPECT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kInconsistent);
}

TEST(RepairTest, GraphEncodingMaterializes) {
  Database db;
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(3, 4);
  EncodeGraphRelation(g, &db);
  ExprArena arena;
  std::vector<Pd> pds = {*arena.ParsePd("C = A+B")};
  auto m = MaterializeWeakInstance(&db, arena, pds);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  VerifyMaterialization(&db, arena, pds, *m);
}

TEST(RepairTest, ZeroBudgetStillSucceedsWhenQuiescent) {
  // No sum-uppers at all: the budget never comes into play.
  Database db;
  std::size_t r1 = db.AddRelation("R1", {"A", "B"});
  db.relation(r1).AddRow(&db.symbols(), {"a", "b"});
  ExprArena arena;
  std::vector<Pd> pds = {*arena.ParsePd("A <= B")};
  auto m = MaterializeWeakInstance(&db, arena, pds, /*max_rounds=*/0);
  EXPECT_TRUE(m.ok()) << m.status().ToString();
}

TEST(RepairTest, ZeroBudgetWithViolationIsExhausted) {
  Database db;
  std::size_t r1 = db.AddRelation("R1", {"A", "C"});
  db.relation(r1).AddRow(&db.symbols(), {"a1", "c"});
  std::size_t r2 = db.AddRelation("R2", {"B", "C"});
  db.relation(r2).AddRow(&db.symbols(), {"b2", "c"});
  ExprArena arena;
  std::vector<Pd> pds = {*arena.ParsePd("C = A+B")};
  auto m = MaterializeWeakInstance(&db, arena, pds, /*max_rounds=*/0);
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kResourceExhausted);
}

TEST(RepairTest, MixedTheory) {
  Database db;
  std::size_t r1 = db.AddRelation("R1", {"A", "D"});
  db.relation(r1).AddRow(&db.symbols(), {"a1", "d1"});
  db.relation(r1).AddRow(&db.symbols(), {"a2", "d1"});
  std::size_t r2 = db.AddRelation("R2", {"B", "C"});
  db.relation(r2).AddRow(&db.symbols(), {"b1", "c1"});
  ExprArena arena;
  std::vector<Pd> pds = {*arena.ParsePd("A <= D"), *arena.ParsePd("C = A+B")};
  auto m = MaterializeWeakInstance(&db, arena, pds);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  VerifyMaterialization(&db, arena, pds, *m);
}

}  // namespace
}  // namespace psem
