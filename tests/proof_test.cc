// Tests for proof extraction: derivations exist exactly when the engine
// says "implied", every extracted proof validates, premise order is
// respected, and rendering is sane. Random theories differential-test the
// provenance engine against the bitset engine.

#include <gtest/gtest.h>

#include "core/implication.h"
#include "core/proof.h"
#include "util/rng.h"

namespace psem {
namespace {

std::vector<Pd> ParseAll(ExprArena* arena,
                         const std::vector<std::string>& texts) {
  std::vector<Pd> pds;
  for (const auto& t : texts) pds.push_back(*arena->ParsePd(t));
  return pds;
}

TEST(ProofTest, TransitivityChainProof) {
  ExprArena arena;
  std::vector<Pd> e = ParseAll(&arena, {"A <= B", "B <= C", "C <= D"});
  ProvenanceEngine engine(&arena, e);
  auto proof = engine.ProveLeq(*arena.Parse("A"), *arena.Parse("D"));
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(ValidateProof(arena, e, *proof).ok());
  EXPECT_EQ(proof->goal().lhs, *arena.Parse("A"));
  EXPECT_EQ(proof->goal().rhs, *arena.Parse("D"));
  // Needs at least the three hypotheses and two transitivity steps.
  EXPECT_GE(proof->steps.size(), 5u);
}

TEST(ProofTest, NotImpliedYieldsNotFound) {
  ExprArena arena;
  std::vector<Pd> e = ParseAll(&arena, {"A <= B"});
  ProvenanceEngine engine(&arena, e);
  auto proof = engine.ProveLeq(*arena.Parse("B"), *arena.Parse("A"));
  EXPECT_FALSE(proof.ok());
  EXPECT_EQ(proof.status().code(), StatusCode::kNotFound);
}

TEST(ProofTest, EquationProofDerivesBothDirections) {
  ExprArena arena;
  std::vector<Pd> e = ParseAll(&arena, {"A <= B", "B <= A"});
  ProvenanceEngine engine(&arena, e);
  auto proof = engine.Prove(*arena.ParsePd("A = B"));
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(ValidateProof(arena, e, *proof).ok());
  // Both arcs appear among the steps.
  bool fwd = false, bwd = false;
  ExprId a = *arena.Parse("A"), b = *arena.Parse("B");
  for (const ProofStep& s : proof->steps) {
    fwd |= (s.lhs == a && s.rhs == b);
    bwd |= (s.lhs == b && s.rhs == a);
  }
  EXPECT_TRUE(fwd);
  EXPECT_TRUE(bwd);
}

TEST(ProofTest, IdentityProofUsesNoHypotheses) {
  ExprArena arena;
  ProvenanceEngine engine(&arena, {});
  auto proof = engine.ProveLeq(*arena.Parse("A*B"), *arena.Parse("A+C"));
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(ValidateProof(arena, {}, *proof).ok());
  for (const ProofStep& s : proof->steps) {
    EXPECT_NE(s.rule, ProofStep::Rule::kHypothesis);
  }
}

TEST(ProofTest, RenderingMentionsRulesAndSteps) {
  ExprArena arena;
  std::vector<Pd> e = ParseAll(&arena, {"A <= B", "B <= C"});
  ProvenanceEngine engine(&arena, e);
  auto proof = engine.ProveLeq(*arena.Parse("A"), *arena.Parse("C"));
  ASSERT_TRUE(proof.ok());
  std::string text = RenderProof(arena, *proof);
  EXPECT_NE(text.find("hypothesis"), std::string::npos);
  EXPECT_NE(text.find("transitivity"), std::string::npos);
  EXPECT_NE(text.find("A <= C"), std::string::npos);
}

TEST(ProofValidationTest, RejectsTamperedProofs) {
  ExprArena arena;
  std::vector<Pd> e = ParseAll(&arena, {"A <= B", "B <= C"});
  ProvenanceEngine engine(&arena, e);
  Proof proof = *engine.ProveLeq(*arena.Parse("A"), *arena.Parse("C"));
  ASSERT_TRUE(ValidateProof(arena, e, proof).ok());
  // Tamper 1: change the goal's conclusion.
  Proof bad1 = proof;
  bad1.steps.back().rhs = *arena.Parse("Z");
  EXPECT_FALSE(ValidateProof(arena, e, bad1).ok());
  // Tamper 2: forward premise reference.
  Proof bad2 = proof;
  for (ProofStep& s : bad2.steps) {
    if (s.rule == ProofStep::Rule::kTransitivity) {
      s.premise1 = static_cast<uint32_t>(bad2.steps.size());  // out of range
      break;
    }
  }
  EXPECT_FALSE(ValidateProof(arena, e, bad2).ok());
  // Tamper 3: hypothesis index out of range.
  Proof bad3 = proof;
  for (ProofStep& s : bad3.steps) {
    if (s.rule == ProofStep::Rule::kHypothesis) {
      s.hypothesis_index = 99;
      break;
    }
  }
  EXPECT_FALSE(ValidateProof(arena, e, bad3).ok());
  // Tamper 4: empty proof.
  EXPECT_FALSE(ValidateProof(arena, e, Proof{}).ok());
}

TEST(ProofTest, MixedOperatorProof) {
  ExprArena arena;
  std::vector<Pd> e = ParseAll(&arena, {"C = A+B", "A <= D", "B <= D"});
  ProvenanceEngine engine(&arena, e);
  // C <= D: needs A+B <= D via sum-lub, then transitivity with C <= A+B.
  auto proof = engine.ProveLeq(*arena.Parse("C"), *arena.Parse("D"));
  ASSERT_TRUE(proof.ok());
  ASSERT_TRUE(ValidateProof(arena, e, *proof).ok());
  bool used_sum_lub = false;
  for (const ProofStep& s : proof->steps) {
    used_sum_lub |= (s.rule == ProofStep::Rule::kSumLub);
  }
  EXPECT_TRUE(used_sum_lub);
}

// Random differential: provenance engine verdicts == bitset engine; all
// produced proofs validate.
ExprId RandomExpr(ExprArena* arena, Rng* rng, int num_attrs, int ops) {
  if (ops == 0) {
    return arena->Attr(
        std::string(1, static_cast<char>('A' + rng->Below(num_attrs))));
  }
  int left = static_cast<int>(rng->Below(static_cast<uint64_t>(ops)));
  ExprId l = RandomExpr(arena, rng, num_attrs, left);
  ExprId r = RandomExpr(arena, rng, num_attrs, ops - 1 - left);
  return rng->Chance(1, 2) ? arena->Product(l, r) : arena->Sum(l, r);
}

class ProofDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(ProofDifferentialTest, ProvenanceMatchesEngineAndValidates) {
  Rng rng(9100 + GetParam());
  for (int trial = 0; trial < 5; ++trial) {
    ExprArena arena;
    std::vector<Pd> e;
    for (int i = 0; i < 2; ++i) {
      ExprId l = RandomExpr(&arena, &rng, 3, 1 + static_cast<int>(rng.Below(2)));
      ExprId r = RandomExpr(&arena, &rng, 3, 1 + static_cast<int>(rng.Below(2)));
      e.push_back(rng.Chance(1, 2) ? Pd::Eq(l, r) : Pd::Leq(l, r));
    }
    PdImplicationEngine fast(&arena, e);
    ProvenanceEngine prover(&arena, e);
    for (int q = 0; q < 6; ++q) {
      ExprId l = RandomExpr(&arena, &rng, 3, 1 + q % 2);
      ExprId r = RandomExpr(&arena, &rng, 3, 1 + (q + 1) % 2);
      bool implied = fast.ImpliesLeq(l, r);
      auto proof = prover.ProveLeq(l, r);
      ASSERT_EQ(implied, proof.ok())
          << arena.ToString(l) << " <= " << arena.ToString(r);
      if (proof.ok()) {
        Status valid = ValidateProof(arena, e, *proof);
        ASSERT_TRUE(valid.ok()) << valid.ToString();
        EXPECT_EQ(proof->goal().lhs, l);
        EXPECT_EQ(proof->goal().rhs, r);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProofDifferentialTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace psem
