// Tests for the polynomial consistency test of Theorem 12: database +
// arbitrary PDs, via normalization and the chase (Lemma 12.1), validated
// against direct satisfaction checks and hand-constructed satisfying
// interpretations.

#include <gtest/gtest.h>

#include "consistency/pd_consistency.h"
#include "core/fpd.h"
#include "graph/graph.h"
#include "partition/canonical.h"
#include "relational/dependency.h"
#include "util/rng.h"

namespace psem {
namespace {

TEST(PdConsistencyTest, EmptyTheoryAlwaysConsistent) {
  Database db;
  std::size_t r = db.AddRelation("R", {"A", "B"});
  db.relation(r).AddRow(&db.symbols(), {"x", "y"});
  ExprArena arena;
  auto report = *PdConsistent(&db, arena, {});
  EXPECT_TRUE(report.consistent);
}

TEST(PdConsistencyTest, FpdOnlyMatchesHoneyman) {
  // For FPD-only E the test is exactly the weak-satisfaction test of [19].
  Database db;
  std::size_t r1 = db.AddRelation("R1", {"A", "B"});
  db.relation(r1).AddRow(&db.symbols(), {"a", "b1"});
  std::size_t r2 = db.AddRelation("R2", {"A", "B"});
  db.relation(r2).AddRow(&db.symbols(), {"a", "b2"});
  ExprArena arena;
  std::vector<Pd> pds = {*arena.ParsePd("A <= B")};  // the FD A -> B
  auto report = *PdConsistent(&db, arena, pds);
  EXPECT_FALSE(report.consistent);

  Database db2;
  r1 = db2.AddRelation("R1", {"A", "B"});
  db2.relation(r1).AddRow(&db2.symbols(), {"a", "b1"});
  r2 = db2.AddRelation("R2", {"A", "B"});
  db2.relation(r2).AddRow(&db2.symbols(), {"a", "b1"});
  auto report2 = *PdConsistent(&db2, arena, pds);
  EXPECT_TRUE(report2.consistent);
}

TEST(PdConsistencyTest, GraphRelationWithConnectivityPd) {
  // Example e: the encoded graph relation together with C = A + B is
  // consistent (the canonical interpretation satisfies both).
  Database db;
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(3, 4);
  std::size_t ri = EncodeGraphRelation(g, &db);
  ExprArena arena;
  std::vector<Pd> pds = {*arena.ParsePd("C = A+B")};
  // Sanity: the relation itself satisfies the PD.
  EXPECT_TRUE(*RelationSatisfiesPd(db, db.relation(ri), arena, pds[0]));
  auto report = *PdConsistent(&db, arena, pds);
  EXPECT_TRUE(report.consistent);
  EXPECT_EQ(report.num_sum_uppers, 1u);
}

TEST(PdConsistencyTest, GraphRelationWithWrongComponents) {
  // Mislabel a component so that two connected tuples disagree on C: with
  // C = A + B, both A -> C consequences clash in the chase.
  Database db;
  std::size_t ri = db.AddRelation("edges", {"A", "B", "C"});
  Relation& r = db.relation(ri);
  r.AddRow(&db.symbols(), {"v0", "v1", "comp0"});
  r.AddRow(&db.symbols(), {"v1", "v2", "comp1"});  // v1 in both -> A value v1 twice? columns differ
  // Force a direct clash: same A value, different C.
  r.AddRow(&db.symbols(), {"v0", "v9", "comp9"});
  ExprArena arena;
  std::vector<Pd> pds = {*arena.ParsePd("C = A+B")};
  auto report = *PdConsistent(&db, arena, pds);
  // A -> C is a consequence of C = A+B; rows 1 and 3 share A=v0 with
  // different C constants: inconsistent.
  EXPECT_FALSE(report.consistent);
}

TEST(PdConsistencyTest, SatisfyingSingleRelationIsAlwaysConsistent) {
  // If a single full-width relation satisfies E directly, then the
  // database {r} is consistent with E (r itself induces an interpretation;
  // Theorem 7 direction).
  Rng rng(555);
  ExprArena arena;
  std::vector<Pd> candidate_pds = {
      *arena.ParsePd("C = A+B"),
      *arena.ParsePd("C = A*B"),
      *arena.ParsePd("A <= B"),
      *arena.ParsePd("C <= A+B"),
  };
  int checked = 0;
  for (int trial = 0; trial < 60; ++trial) {
    Database db;
    std::size_t ri = db.AddRelation("R", {"A", "B", "C"});
    Relation& r = db.relation(ri);
    int rows = 1 + static_cast<int>(rng.Below(5));
    for (int i = 0; i < rows; ++i) {
      r.AddRow(&db.symbols(), {"a" + std::to_string(rng.Below(2)),
                               "b" + std::to_string(rng.Below(2)),
                               "c" + std::to_string(rng.Below(2))});
    }
    for (const Pd& pd : candidate_pds) {
      if (*RelationSatisfiesPd(db, r, arena, pd)) {
        Database copy;  // PdConsistent mutates the universe; rebuild.
        std::size_t ci = copy.AddRelation("R", {"A", "B", "C"});
        for (const Tuple& t : r.rows()) {
          copy.relation(ci).AddRow(&copy.symbols(),
                                   {db.symbols().NameOf(t[0]),
                                    db.symbols().NameOf(t[1]),
                                    db.symbols().NameOf(t[2])});
        }
        auto report = *PdConsistent(&copy, arena, {pd});
        EXPECT_TRUE(report.consistent) << arena.ToString(pd);
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 10);  // the sweep actually exercised the property
}

TEST(PdConsistencyTest, ContradictoryPdsDetected) {
  // A = B forces every A-value pair to merge; two relations pinning the
  // same B to different A constants clash.
  Database db;
  std::size_t r1 = db.AddRelation("R1", {"A", "B"});
  db.relation(r1).AddRow(&db.symbols(), {"a1", "b"});
  std::size_t r2 = db.AddRelation("R2", {"A", "B"});
  db.relation(r2).AddRow(&db.symbols(), {"a2", "b"});
  ExprArena arena;
  std::vector<Pd> pds = {*arena.ParsePd("A = B")};
  auto report = *PdConsistent(&db, arena, pds);
  EXPECT_FALSE(report.consistent);
}

TEST(PdConsistencyTest, MonotoneInTheory) {
  // Adding PDs can only destroy consistency, never restore it.
  Rng rng(808);
  ExprArena arena;
  std::vector<Pd> pool = {
      *arena.ParsePd("A <= B"), *arena.ParsePd("B <= C"),
      *arena.ParsePd("C = A+B"), *arena.ParsePd("A = B*C")};
  for (int trial = 0; trial < 20; ++trial) {
    auto build = [&](Database* db) {
      std::size_t r1 = db->AddRelation("R1", {"A", "B"});
      std::size_t r2 = db->AddRelation("R2", {"B", "C"});
      for (int i = 0; i < 3; ++i) {
        db->relation(r1).AddRow(&db->symbols(),
                                {"a" + std::to_string(rng.Below(2)),
                                 "b" + std::to_string(rng.Below(2))});
        db->relation(r2).AddRow(&db->symbols(),
                                {"b" + std::to_string(rng.Below(2)),
                                 "c" + std::to_string(rng.Below(2))});
      }
    };
    // Same random content for both databases.
    Rng saved = rng;
    Database small_db;
    build(&small_db);
    rng = saved;
    Database big_db;
    build(&big_db);

    std::vector<Pd> small_e = {pool[trial % pool.size()]};
    std::vector<Pd> big_e = small_e;
    big_e.push_back(pool[(trial + 1) % pool.size()]);
    bool small_ok = PdConsistent(&small_db, arena, small_e)->consistent;
    bool big_ok = PdConsistent(&big_db, arena, big_e)->consistent;
    if (big_ok) EXPECT_TRUE(small_ok);
  }
}

TEST(PdConsistencyTest, ReportCountsArePlausible) {
  Database db;
  std::size_t r = db.AddRelation("R", {"A", "B", "C"});
  db.relation(r).AddRow(&db.symbols(), {"x", "y", "z"});
  ExprArena arena;
  std::vector<Pd> pds = {*arena.ParsePd("C = A+B"), *arena.ParsePd("A <= B")};
  auto report = *PdConsistent(&db, arena, pds);
  EXPECT_TRUE(report.consistent);
  EXPECT_GT(report.num_fpds, 0u);
  EXPECT_GE(report.chase_rounds, 1u);
}

}  // namespace
}  // namespace psem
