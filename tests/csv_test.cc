// Tests for the CSV importer/exporter.

#include <gtest/gtest.h>

#include "core/csv.h"
#include "relational/dependency.h"

namespace psem {
namespace {

TEST(CsvRecordTest, PlainFields) {
  auto f = *ParseCsvRecord("a,b,c");
  EXPECT_EQ(f, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(ParseCsvRecord("")->size(), 1u);  // one empty field
  EXPECT_EQ(ParseCsvRecord("a,,c")->at(1), "");
}

TEST(CsvRecordTest, QuotedFields) {
  auto f = *ParseCsvRecord("\"a,b\",\"say \"\"hi\"\"\",plain");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a,b");
  EXPECT_EQ(f[1], "say \"hi\"");
  EXPECT_EQ(f[2], "plain");
}

TEST(CsvRecordTest, Errors) {
  EXPECT_FALSE(ParseCsvRecord("\"unterminated").ok());
  EXPECT_FALSE(ParseCsvRecord("ab\"cd\"").ok());
}

TEST(CsvRecordTest, ToleratesCrlf) {
  auto f = *ParseCsvRecord("a,b\r");
  EXPECT_EQ(f[1], "b");
}

TEST(CsvLoadTest, HeaderAndRows) {
  Database db;
  auto ri = LoadCsvRelation("A,B,C\n1,2,3\n4,5,6\n", &db, "t");
  ASSERT_TRUE(ri.ok());
  const Relation& r = db.relation(*ri);
  EXPECT_EQ(r.arity(), 3u);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(db.universe().Require("B").ok());
}

TEST(CsvLoadTest, RowWidthMismatch) {
  Database db;
  EXPECT_FALSE(LoadCsvRelation("A,B\n1\n", &db).ok());
  Database db2;
  EXPECT_FALSE(LoadCsvRelation("", &db2).ok());
  Database db3;
  EXPECT_FALSE(LoadCsvRelation("A,9bad\n1,2\n", &db3).ok());
}

TEST(CsvLoadTest, DuplicateRowsDeduplicated) {
  Database db;
  auto ri = LoadCsvRelation("A\nx\nx\ny\n", &db);
  ASSERT_TRUE(ri.ok());
  EXPECT_EQ(db.relation(*ri).size(), 2u);
}

TEST(CsvRoundTripTest, DumpThenLoad) {
  Database db;
  auto ri = LoadCsvRelation(
      "Name,Quote\nann,\"hello, world\"\nbob,\"she said \"\"hi\"\"\"\n", &db);
  ASSERT_TRUE(ri.ok());
  std::string dumped = DumpCsvRelation(db, db.relation(*ri));
  Database db2;
  auto ri2 = LoadCsvRelation(dumped, &db2, "again");
  ASSERT_TRUE(ri2.ok());
  EXPECT_EQ(DumpCsvRelation(db2, db2.relation(*ri2)), dumped);
  EXPECT_EQ(db2.relation(*ri2).size(), 2u);
}

TEST(CsvLoadTest, IntegratesWithDiscoveryPipeline) {
  // The adoption path: CSV in, dependencies out.
  Database db;
  auto ri = LoadCsvRelation(
      "Emp,Mgr,Floor\n"
      "ann,kim,3\n"
      "bob,kim,3\n"
      "eve,lee,2\n",
      &db, "staff");
  ASSERT_TRUE(ri.ok());
  // Emp -> Mgr and Mgr -> Floor hold in this data.
  Fd emp_mgr = *Fd::Parse(&db.universe(), "Emp -> Mgr");
  Fd mgr_floor = *Fd::Parse(&db.universe(), "Mgr -> Floor");
  EXPECT_TRUE(*SatisfiesFd(db.relation(*ri), emp_mgr));
  EXPECT_TRUE(*SatisfiesFd(db.relation(*ri), mgr_floor));
}

}  // namespace
}  // namespace psem
