// Fault-injection tests: the FailPoints facility itself, plus a matrix
// over every registered site proving the contract — an injected fault
// surfaces as a clean non-OK Status (never a crash, never a silent wrong
// answer), and after disarming, the same operation re-run on the same
// object yields the verdict a cold, fault-free run gives.
//
// All tests skip at runtime when the build compiles the sites out
// (PSEM_FAILPOINTS=OFF, the Release default).

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "chase/tableau.h"
#include "consistency/cad.h"
#include "consistency/nae3sat.h"
#include "consistency/repair.h"
#include "core/implication.h"
#include "util/durable_file.h"
#include "util/exec_context.h"
#include "util/failpoint.h"

namespace psem {
namespace {

#define SKIP_WITHOUT_FAILPOINTS()                                     \
  if (!FailPoints::Enabled()) {                                       \
    GTEST_SKIP() << "fail points compiled out (PSEM_FAILPOINTS=OFF)"; \
  }

class FailPointTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPoints::DisarmAll(); }
};

TEST_F(FailPointTest, CatalogListsEverySite) {
  auto catalog = FailPoints::Catalog();
  EXPECT_EQ(catalog.size(), 12u);
  auto has = [&](const char* site) {
    for (const char* s : catalog) {
      if (std::string(s) == site) return true;
    }
    return false;
  };
  EXPECT_TRUE(has(failpoints::kThreadPoolSpawn));
  EXPECT_TRUE(has(failpoints::kAlgSeedAlloc));
  EXPECT_TRUE(has(failpoints::kAlgSweep));
  EXPECT_TRUE(has(failpoints::kChaseRound));
  EXPECT_TRUE(has(failpoints::kRepairRound));
  EXPECT_TRUE(has(failpoints::kNaeSearch));
  EXPECT_TRUE(has(failpoints::kCadSearch));
  EXPECT_TRUE(has(failpoints::kIoTornWrite));
  EXPECT_TRUE(has(failpoints::kIoShortRead));
  EXPECT_TRUE(has(failpoints::kIoBitFlip));
  EXPECT_TRUE(has(failpoints::kIoFsync));
  EXPECT_TRUE(has(failpoints::kIoRename));
}

TEST_F(FailPointTest, ArmFireCountSemantics) {
  SKIP_WITHOUT_FAILPOINTS();
  const char* site = failpoints::kAlgSweep;
  EXPECT_FALSE(FailPoints::Fire(site));  // unarmed: never fires
  FailPoints::Arm(site, 2);
  EXPECT_TRUE(FailPoints::Fire(site));
  EXPECT_TRUE(FailPoints::Fire(site));
  EXPECT_FALSE(FailPoints::Fire(site));  // count exhausted
  EXPECT_EQ(FailPoints::FireCount(site), 2u);
  FailPoints::Arm(site);  // -1: every execution
  EXPECT_TRUE(FailPoints::Fire(site));
  EXPECT_TRUE(FailPoints::Fire(site));
  FailPoints::Disarm(site);
  EXPECT_FALSE(FailPoints::Fire(site));
}

// --- matrix: one scenario per site -------------------------------------------

std::vector<Pd> SmallTheory(ExprArena* arena) {
  return {*arena->ParsePd("A*B <= C"), *arena->ParsePd("C <= D+E"),
          *arena->ParsePd("D = A+B")};
}

TEST_F(FailPointTest, ThreadPoolSpawnDegradesToSerialSameVerdicts) {
  SKIP_WITHOUT_FAILPOINTS();
  ExprArena arena;
  auto pds = SmallTheory(&arena);
  Pd query = *arena.ParsePd("A*B <= D+E");

  PdImplicationEngine cold(&arena, pds);
  bool expected = cold.Implies(query);

  FailPoints::Arm(failpoints::kThreadPoolSpawn);
  EngineOptions opts;
  opts.num_threads = 4;
  PdImplicationEngine engine(&arena, pds, opts);

  // Graceful degradation, not failure: construction succeeded, the
  // downgrade is recorded, and every verdict matches the serial engine.
  EXPECT_GE(FailPoints::FireCount(failpoints::kThreadPoolSpawn), 1u);
  FailPoints::DisarmAll();
  EXPECT_TRUE(engine.stats().degraded_to_serial);
  EXPECT_FALSE(engine.stats().degradation_reason.empty());
  EXPECT_EQ(engine.stats().num_threads, 1u);
  EXPECT_EQ(engine.Implies(query), expected);
}

TEST_F(FailPointTest, AlgSeedAllocSurfacesAndEngineRecovers) {
  SKIP_WITHOUT_FAILPOINTS();
  ExprArena arena;
  auto pds = SmallTheory(&arena);
  Pd query = *arena.ParsePd("A*B <= D+E");
  PdImplicationEngine cold(&arena, pds);
  bool expected = cold.Implies(query);

  PdImplicationEngine engine(&arena, pds);
  FailPoints::Arm(failpoints::kAlgSeedAlloc, 1);
  auto r = engine.Implies(query, ExecContext::Unbounded());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(r.status().message().find("seed_alloc"), std::string::npos);
  EXPECT_GE(engine.stats().aborted_closures, 1u);

  FailPoints::DisarmAll();
  auto retry = engine.Implies(query, ExecContext::Unbounded());
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(*retry, expected);
}

TEST_F(FailPointTest, AlgSweepSurfacesAndEngineRecovers) {
  SKIP_WITHOUT_FAILPOINTS();
  ExprArena arena;
  auto pds = SmallTheory(&arena);
  Pd query = *arena.ParsePd("A*B <= D+E");
  PdImplicationEngine cold(&arena, pds);
  bool expected = cold.Implies(query);

  PdImplicationEngine engine(&arena, pds);
  FailPoints::Arm(failpoints::kAlgSweep, 1);
  auto r = engine.Implies(query, ExecContext::Unbounded());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_NE(r.status().message().find("sweep"), std::string::npos);

  FailPoints::DisarmAll();
  // The partially swept matrix is a sound warm start: the retry converges
  // to the same least fixpoint as the cold engine.
  auto retry = engine.Implies(query, ExecContext::Unbounded());
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(*retry, expected);
}

TEST_F(FailPointTest, AlgSweepParallelSurfacesAndRecovers) {
  SKIP_WITHOUT_FAILPOINTS();
  ExprArena arena;
  auto pds = SmallTheory(&arena);
  Pd query = *arena.ParsePd("A*B <= D+E");
  PdImplicationEngine cold(&arena, pds);
  bool expected = cold.Implies(query);

  EngineOptions opts;
  opts.num_threads = 4;
  PdImplicationEngine engine(&arena, pds, opts);
  FailPoints::Arm(failpoints::kAlgSweep, 1);
  auto r = engine.Implies(query, ExecContext::Unbounded());
  FailPoints::DisarmAll();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);

  auto retry = engine.Implies(query, ExecContext::Unbounded());
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(*retry, expected);
}

TEST_F(FailPointTest, ChaseRoundSurfacesAndRechaseMatchesCold) {
  SKIP_WITHOUT_FAILPOINTS();
  Database db;
  std::size_t e = db.AddRelation("enrolled", {"Student", "Course"});
  db.relation(e).AddRow(&db.symbols(), {"ann", "db101"});
  db.relation(e).AddRow(&db.symbols(), {"bob", "db101"});
  std::size_t t = db.AddRelation("taught_by", {"Course", "Prof"});
  db.relation(t).AddRow(&db.symbols(), {"db101", "codd"});
  std::vector<Fd> fds = {*Fd::Parse(&db.universe(), "Course -> Prof")};

  Tableau cold_t = Tableau::Representative(db, db.universe().size());
  ChaseResult cold = ChaseWithFds(&cold_t, fds);
  ASSERT_TRUE(cold.status.ok());

  FailPoints::Arm(failpoints::kChaseRound, 1);
  Tableau tab = Tableau::Representative(db, db.universe().size());
  ChaseResult injected = ChaseWithFds(&tab, fds);
  ASSERT_FALSE(injected.status.ok());
  EXPECT_EQ(injected.status.code(), StatusCode::kInternal);

  FailPoints::DisarmAll();
  ChaseResult resumed = ChaseWithFds(&tab, fds);
  ASSERT_TRUE(resumed.status.ok());
  EXPECT_EQ(resumed.consistent, cold.consistent);
}

TEST_F(FailPointTest, RepairRoundSurfacesCleanly) {
  SKIP_WITHOUT_FAILPOINTS();
  Database db;
  std::size_t t = db.AddRelation("taught_by", {"Course", "Prof"});
  db.relation(t).AddRow(&db.symbols(), {"db101", "codd"});
  ExprArena arena;
  std::vector<Pd> pds = {*arena.ParsePd("Course <= Prof")};

  FailPoints::Arm(failpoints::kRepairRound, 1);
  auto r = MaterializeWeakInstance(&db, arena, pds);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_NE(r.status().message().find("repair"), std::string::npos);

  FailPoints::DisarmAll();
  Database db2;
  std::size_t t2 = db2.AddRelation("taught_by", {"Course", "Prof"});
  db2.relation(t2).AddRow(&db2.symbols(), {"db101", "codd"});
  auto retry = MaterializeWeakInstance(&db2, arena, pds);
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
}

TEST_F(FailPointTest, NaeSearchSurfacesAsUndecidedInternal) {
  SKIP_WITHOUT_FAILPOINTS();
  NaeFormula f = NaeFormula::Parse("1 2 3; -1 -2 -3");
  NaeSolveResult cold = NaeSolve(f);
  ASSERT_TRUE(cold.decided);

  FailPoints::Arm(failpoints::kNaeSearch, 1);
  NaeSolveResult injected = NaeSolve(f);
  ASSERT_FALSE(injected.decided);
  EXPECT_EQ(injected.status.code(), StatusCode::kInternal);

  FailPoints::DisarmAll();
  NaeSolveResult retry = NaeSolve(f);
  ASSERT_TRUE(retry.decided);
  EXPECT_EQ(retry.assignment.has_value(), cold.assignment.has_value());
}

TEST_F(FailPointTest, CadSearchSurfacesAsUndecidedInternal) {
  SKIP_WITHOUT_FAILPOINTS();
  Database db;
  std::size_t t = db.AddRelation("taught_by", {"Course", "Prof"});
  db.relation(t).AddRow(&db.symbols(), {"db101", "codd"});
  std::vector<Fd> fds = {*Fd::Parse(&db.universe(), "Course -> Prof")};
  CadResult cold = CadConsistent(db, fds);
  ASSERT_TRUE(cold.decided);

  FailPoints::Arm(failpoints::kCadSearch, 1);
  CadResult injected = CadConsistent(db, fds);
  ASSERT_FALSE(injected.decided);
  EXPECT_EQ(injected.status.code(), StatusCode::kInternal);

  FailPoints::DisarmAll();
  CadResult retry = CadConsistent(db, fds);
  ASSERT_TRUE(retry.decided);
  EXPECT_EQ(retry.consistent, cold.consistent);
}

// --- durable-I/O sites --------------------------------------------------------
// Same contract, one layer down: an injected physical fault surfaces as a
// clean non-OK Status, the durable artifact is never half-updated, and
// after disarming the same operation succeeds with the same bytes a
// fault-free run produces.

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/psem_failpoint_" + name;
}

TEST_F(FailPointTest, IoTornWriteLeavesDestinationUntouched) {
  SKIP_WITHOUT_FAILPOINTS();
  const std::string path = TempPath("torn_write.bin");
  ASSERT_TRUE(AtomicWriteFile(path, "old-content").ok());

  FailPoints::Arm(failpoints::kIoTornWrite, 1);
  Status st = AtomicWriteFile(path, "new-content-that-tears");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  // Atomicity: the tear hit the temp file; the destination still reads
  // back the previous content in full.
  auto after = ReadFileBounded(path);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, "old-content");

  FailPoints::DisarmAll();
  ASSERT_TRUE(AtomicWriteFile(path, "new-content-that-tears").ok());
  EXPECT_EQ(*ReadFileBounded(path), "new-content-that-tears");
  ::remove(path.c_str());
}

TEST_F(FailPointTest, IoFsyncFailsAtomicWriteCleanly) {
  SKIP_WITHOUT_FAILPOINTS();
  const std::string path = TempPath("fsync.bin");
  ASSERT_TRUE(AtomicWriteFile(path, "durable").ok());

  FailPoints::Arm(failpoints::kIoFsync, 1);
  Status st = AtomicWriteFile(path, "lost-on-power-cut");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_EQ(*ReadFileBounded(path), "durable");

  FailPoints::DisarmAll();
  ASSERT_TRUE(AtomicWriteFile(path, "lost-on-power-cut").ok());
  EXPECT_EQ(*ReadFileBounded(path), "lost-on-power-cut");
  ::remove(path.c_str());
}

TEST_F(FailPointTest, IoRenameFailsAtomicWriteCleanly) {
  SKIP_WITHOUT_FAILPOINTS();
  const std::string path = TempPath("rename.bin");
  ASSERT_TRUE(AtomicWriteFile(path, "v1").ok());

  FailPoints::Arm(failpoints::kIoRename, 1);
  Status st = AtomicWriteFile(path, "v2");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_EQ(*ReadFileBounded(path), "v1");

  FailPoints::DisarmAll();
  ASSERT_TRUE(AtomicWriteFile(path, "v2").ok());
  EXPECT_EQ(*ReadFileBounded(path), "v2");
  ::remove(path.c_str());
}

TEST_F(FailPointTest, IoShortReadDetectedByFramingThenRecovers) {
  SKIP_WITHOUT_FAILPOINTS();
  const std::string path = TempPath("short_read.bin");
  std::vector<Chunk> chunks = {Chunk{ChunkTag("TEST"), "payload-bytes"}};
  ASSERT_TRUE(WriteChunkFile(path, 1, chunks).ok());

  FailPoints::Arm(failpoints::kIoShortRead, 1);
  auto torn = ReadChunkFile(path);
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(torn.status().code(), StatusCode::kDataLoss);

  FailPoints::DisarmAll();
  auto clean = ReadChunkFile(path);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  ASSERT_EQ(clean->chunks.size(), 1u);
  EXPECT_EQ(clean->chunks[0].payload, "payload-bytes");
  ::remove(path.c_str());
}

TEST_F(FailPointTest, IoBitFlipCaughtByChecksumThenRecovers) {
  SKIP_WITHOUT_FAILPOINTS();
  const std::string path = TempPath("bit_flip.bin");
  std::vector<Chunk> chunks = {Chunk{ChunkTag("TEST"), "payload-bytes"}};
  ASSERT_TRUE(WriteChunkFile(path, 1, chunks).ok());

  FailPoints::Arm(failpoints::kIoBitFlip, 1);
  auto flipped = ReadChunkFile(path);
  ASSERT_FALSE(flipped.ok());
  EXPECT_EQ(flipped.status().code(), StatusCode::kDataLoss);

  FailPoints::DisarmAll();
  auto clean = ReadChunkFile(path);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  ASSERT_EQ(clean->chunks.size(), 1u);
  EXPECT_EQ(clean->chunks[0].payload, "payload-bytes");
  ::remove(path.c_str());
}

TEST_F(FailPointTest, EverySiteHasAMatrixScenario) {
  // Meta-check: a new failpoint added to the catalog without a matrix
  // scenario above must fail this count, forcing the test to grow.
  EXPECT_EQ(FailPoints::Catalog().size(), 12u)
      << "new fail point registered: add a matrix scenario to this file";
}

}  // namespace
}  // namespace psem
