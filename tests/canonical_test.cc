// Tests for the canonical constructions of Section 4.1: I(r), R(I), the
// R(I(r)) = r equation, Theorem 3 (FD/FPD transfer), Definition 7
// satisfaction and its direct characterizations (I), (II), (III).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "lattice/expr.h"
#include "partition/canonical.h"
#include "partition/interpretation.h"
#include "relational/dependency.h"
#include "relational/relation.h"
#include "util/rng.h"

namespace psem {
namespace {

// A small relation with known structure.
void FillSample(Database* db, std::size_t* rel_index) {
  *rel_index = db->AddRelation("R", {"A", "B", "C"});
  Relation& r = db->relation(*rel_index);
  r.AddRow(&db->symbols(), {"a1", "b1", "c1"});
  r.AddRow(&db->symbols(), {"a1", "b1", "c2"});
  r.AddRow(&db->symbols(), {"a2", "b1", "c3"});
  r.AddRow(&db->symbols(), {"a3", "b2", "c3"});
}

TEST(CanonicalInterpretationTest, PopulationsAreTupleIndices) {
  Database db;
  std::size_t ri;
  FillSample(&db, &ri);
  PartitionInterpretation interp =
      *CanonicalInterpretation(db, db.relation(ri));
  EXPECT_TRUE(interp.SatisfiesEap());  // by construction
  Partition pa = *interp.AtomicPartition("A");
  EXPECT_EQ(pa.population(), (std::vector<Elem>{0, 1, 2, 3}));
  // a1 appears in tuples 0,1.
  EXPECT_EQ(*interp.NamedBlock("A", "a1"), (std::vector<Elem>{0, 1}));
  EXPECT_EQ(*interp.NamedBlock("B", "b1"), (std::vector<Elem>{0, 1, 2}));
  EXPECT_EQ(*interp.NamedBlock("C", "c3"), (std::vector<Elem>{2, 3}));
}

TEST(CanonicalInterpretationTest, SatisfiesItsOwnRelation) {
  // I(r) |= r for any relation r.
  Database db;
  std::size_t ri;
  FillSample(&db, &ri);
  PartitionInterpretation interp =
      *CanonicalInterpretation(db, db.relation(ri));
  EXPECT_TRUE(*interp.SatisfiesDatabase(db));
  EXPECT_TRUE(*interp.SatisfiesCad(db));
}

TEST(CanonicalInterpretationTest, EmptyRelationRejected) {
  Database db;
  std::size_t ri = db.AddRelation("R", {"A"});
  EXPECT_FALSE(CanonicalInterpretation(db, db.relation(ri)).ok());
}

TEST(CanonicalRelationTest, RoundTripRIofR) {
  // R(I(r)) = r (Section 4.1, after Definition 6).
  Database db;
  std::size_t ri;
  FillSample(&db, &ri);
  const Relation& r = db.relation(ri);
  PartitionInterpretation interp = *CanonicalInterpretation(db, r);
  Relation back = *CanonicalRelation(interp, &db, "back");
  EXPECT_EQ(back.size(), r.size());
  for (const Tuple& t : r.rows()) {
    EXPECT_TRUE(back.Contains(t));
  }
}

TEST(CanonicalRelationTest, PadsElementsOutsidePopulations) {
  // An interpretation violating EAP: element 9 is only in p_B. R(I) pads
  // its A column with a unique symbol.
  PartitionInterpretation interp;
  Partition pa = Partition::FromBlocks({{1, 2}});
  ASSERT_TRUE(interp.DefineAttribute("A", pa, {{"x", 0}}).ok());
  Partition pb = Partition::FromBlocks({{1, 2}, {9}});
  ASSERT_TRUE(interp.DefineAttribute("B", pb,
                                     {{"y", *pb.BlockOf(1)},
                                      {"z", *pb.BlockOf(9)}})
                  .ok());
  Database db;
  Relation rel = *CanonicalRelation(interp, &db, "R");
  ASSERT_EQ(rel.size(), 2u);  // elements {1,2} collapse to one tuple? No:
  // 1 and 2 share all blocks, so t_1 and t_2 are copies — the relation
  // dedupes them (the EAP discussion after Definition 6). Element 9 yields
  // the second tuple with a pad symbol under A.
  bool found_pad = false;
  for (const Tuple& t : rel.rows()) {
    const std::string& s = db.symbols().NameOf(t[0]);
    if (s.rfind("_pad_", 0) == 0) found_pad = true;
  }
  EXPECT_TRUE(found_pad);
}

// --- Theorem 3: r |= X -> Y iff I(r) |= X = X*Y ------------------------------

TEST(Theorem3Test, KnownExample) {
  Database db;
  std::size_t ri;
  FillSample(&db, &ri);
  const Relation& r = db.relation(ri);
  Universe* u = &db.universe();
  ExprArena arena;

  // A -> B holds in the sample; B -> A does not; C -> A B holds.
  Fd a_to_b = *Fd::Parse(u, "A -> B");
  Fd b_to_a = *Fd::Parse(u, "B -> A");
  Fd c_to_ab = *Fd::Parse(u, "C -> A B");
  EXPECT_TRUE(*SatisfiesFd(r, a_to_b));
  EXPECT_FALSE(*SatisfiesFd(r, b_to_a));
  EXPECT_FALSE(*SatisfiesFd(r, c_to_ab));  // c3 has two A values

  PartitionInterpretation interp = *CanonicalInterpretation(db, r);
  EXPECT_TRUE(*interp.Satisfies(arena, *arena.ParsePd("A = A*B")));
  EXPECT_FALSE(*interp.Satisfies(arena, *arena.ParsePd("B = B*A")));
  EXPECT_FALSE(*interp.Satisfies(arena, *arena.ParsePd("C = C*A*B")));
}

// Random-relation property sweep for Theorem 3b.
class Theorem3PropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(Theorem3PropertyTest, FdHoldsIffFpdHoldsInCanonicalInterpretation) {
  Rng rng(400 + GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    Database db;
    std::size_t ri = db.AddRelation("R", {"A", "B", "C", "D"});
    Relation& r = db.relation(ri);
    int rows = 2 + static_cast<int>(rng.Below(6));
    for (int i = 0; i < rows; ++i) {
      std::vector<std::string> row;
      for (int c = 0; c < 4; ++c) {
        row.push_back(std::string(1, static_cast<char>('a' + c)) +
                      std::to_string(rng.Below(3)));
      }
      r.AddRow(&db.symbols(), row);
    }
    PartitionInterpretation interp = *CanonicalInterpretation(db, r);
    ExprArena arena;
    const char* attr_names[] = {"A", "B", "C", "D"};
    // All single-attribute FDs X -> Y.
    for (int x = 0; x < 4; ++x) {
      for (int y = 0; y < 4; ++y) {
        if (x == y) continue;
        Fd fd = *Fd::Parse(&db.universe(),
                           std::string(attr_names[x]) + " -> " + attr_names[y]);
        Pd fpd = *arena.ParsePd(std::string(attr_names[x]) + " = " +
                                attr_names[x] + "*" + attr_names[y]);
        EXPECT_EQ(*SatisfiesFd(r, fd), *interp.Satisfies(arena, fpd))
            << attr_names[x] << " -> " << attr_names[y];
      }
    }
    // A two-attribute FD: AB -> C.
    Fd fd = *Fd::Parse(&db.universe(), "A B -> C");
    Pd fpd = *arena.ParsePd("A*B = A*B*C");
    EXPECT_EQ(*SatisfiesFd(r, fd), *interp.Satisfies(arena, fpd));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem3PropertyTest, ::testing::Range(0, 6));

// --- Definition 7 and characterizations (I), (II), (III) ---------------------

class CharacterizationTest : public ::testing::TestWithParam<int> {};

TEST_P(CharacterizationTest, DirectCharacterizationsMatchDefinition7) {
  Rng rng(4400 + GetParam());
  ExprArena arena;
  Pd prod_pd = *arena.ParsePd("C = A*B");
  Pd sum_pd = *arena.ParsePd("C = A+B");
  Pd upper_pd = *arena.ParsePd("C <= A+B");
  for (int trial = 0; trial < 25; ++trial) {
    Database db;
    std::size_t ri = db.AddRelation("R", {"A", "B", "C"});
    Relation& r = db.relation(ri);
    int rows = 1 + static_cast<int>(rng.Below(7));
    for (int i = 0; i < rows; ++i) {
      r.AddRow(&db.symbols(), {"a" + std::to_string(rng.Below(3)),
                               "b" + std::to_string(rng.Below(3)),
                               "c" + std::to_string(rng.Below(3))});
    }
    EXPECT_EQ(*RelationSatisfiesPd(db, r, arena, prod_pd),
              *SatisfiesProductPdDirect(db, r, "C", "A", "B"));
    EXPECT_EQ(*RelationSatisfiesPd(db, r, arena, sum_pd),
              *SatisfiesSumPdDirect(db, r, "C", "A", "B"));
    EXPECT_EQ(*RelationSatisfiesPd(db, r, arena, upper_pd),
              *SatisfiesSumUpperPdDirect(db, r, "C", "A", "B"));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CharacterizationTest, ::testing::Range(0, 6));

TEST(CharacterizationTest, SumPdOnHandBuiltChain) {
  // Tuples chained via alternating A/B agreement; C labels the chain.
  Database db;
  std::size_t ri = db.AddRelation("R", {"A", "B", "C"});
  Relation& r = db.relation(ri);
  r.AddRow(&db.symbols(), {"a1", "b1", "c1"});
  r.AddRow(&db.symbols(), {"a1", "b2", "c1"});  // A-link to row 0
  r.AddRow(&db.symbols(), {"a2", "b2", "c1"});  // B-link to row 1
  r.AddRow(&db.symbols(), {"a9", "b9", "c2"});  // isolated
  ExprArena arena;
  EXPECT_TRUE(*RelationSatisfiesPd(db, r, arena, *arena.ParsePd("C = A+B")));
  // Break it: give the isolated tuple the same C.
  r.AddRow(&db.symbols(), {"a8", "b8", "c1"});
  EXPECT_FALSE(*RelationSatisfiesPd(db, r, arena, *arena.ParsePd("C = A+B")));
  EXPECT_FALSE(
      *RelationSatisfiesPd(db, r, arena, *arena.ParsePd("C <= A+B")));
}

TEST(CharacterizationTest, UpperBoundWeakerThanEquality) {
  // C <= A+B allows C to be finer than the components.
  Database db;
  std::size_t ri = db.AddRelation("R", {"A", "B", "C"});
  Relation& r = db.relation(ri);
  r.AddRow(&db.symbols(), {"a1", "b1", "c1"});
  r.AddRow(&db.symbols(), {"a1", "b2", "c2"});  // connected, different C
  ExprArena arena;
  EXPECT_TRUE(*RelationSatisfiesPd(db, r, arena, *arena.ParsePd("C <= A+B")));
  EXPECT_FALSE(*RelationSatisfiesPd(db, r, arena, *arena.ParsePd("C = A+B")));
}

TEST(Definition7Test, EmptyRelationSatisfiesEverything) {
  Database db;
  std::size_t ri = db.AddRelation("R", {"A", "B"});
  ExprArena arena;
  EXPECT_TRUE(*RelationSatisfiesPd(db, db.relation(ri), arena,
                                   *arena.ParsePd("A = B")));
}

TEST(Definition7Test, ExampleFEquivalence) {
  // Example f: X = Y*Z is expressed by {X -> YZ, YZ -> X}; check both
  // satisfaction directions agree on random relations.
  Rng rng(31337);
  ExprArena arena;
  Pd pd = *arena.ParsePd("X = Y*Z");
  for (int trial = 0; trial < 30; ++trial) {
    Database db;
    std::size_t ri = db.AddRelation("R", {"X", "Y", "Z"});
    Relation& r = db.relation(ri);
    int rows = 1 + static_cast<int>(rng.Below(6));
    for (int i = 0; i < rows; ++i) {
      r.AddRow(&db.symbols(), {"x" + std::to_string(rng.Below(3)),
                               "y" + std::to_string(rng.Below(2)),
                               "z" + std::to_string(rng.Below(2))});
    }
    Fd f1 = *Fd::Parse(&db.universe(), "X -> Y Z");
    Fd f2 = *Fd::Parse(&db.universe(), "Y Z -> X");
    bool fds_hold = *SatisfiesFd(r, f1) && *SatisfiesFd(r, f2);
    EXPECT_EQ(*RelationSatisfiesPd(db, r, arena, pd), fds_hold);
  }
}

}  // namespace
}  // namespace psem
