// Tests for the batched/parallel/incremental service layer on top of
// Algorithm ALG (core/implication.h):
//   1. differential: BatchImplies with the banded parallel sweep agrees
//      with the literal rule-by-rule NaivePdImplication on 500 random
//      constraint sets;
//   2. incremental-vs-cold: a query stream answered with warm-started
//      closures agrees, query by query and arc by arc, with fresh cold
//      engines;
//   3. the LRU query cache: hits are served, verdicts are identical with
//      caching disabled, and stats are populated.

#include <gtest/gtest.h>

#include <vector>

#include "core/implication.h"
#include "lattice/expr.h"
#include "util/rng.h"

namespace psem {
namespace {

ExprId RandomExpr(ExprArena* arena, Rng* rng, int num_attrs, int ops) {
  if (ops == 0) {
    return arena->Attr(
        std::string(1, static_cast<char>('A' + rng->Below(num_attrs))));
  }
  int left = static_cast<int>(rng->Below(static_cast<uint64_t>(ops)));
  ExprId l = RandomExpr(arena, rng, num_attrs, left);
  ExprId r = RandomExpr(arena, rng, num_attrs, ops - 1 - left);
  return rng->Chance(1, 2) ? arena->Product(l, r) : arena->Sum(l, r);
}

std::vector<Pd> RandomTheory(ExprArena* arena, Rng* rng, int num_attrs,
                             int num_pds, int max_ops) {
  std::vector<Pd> pds;
  for (int i = 0; i < num_pds; ++i) {
    ExprId l = RandomExpr(arena, rng, num_attrs,
                          static_cast<int>(rng->Below(max_ops + 1)));
    ExprId r = RandomExpr(arena, rng, num_attrs,
                          static_cast<int>(rng->Below(max_ops + 1)));
    pds.push_back(rng->Chance(1, 2) ? Pd::Eq(l, r) : Pd::Leq(l, r));
  }
  return pds;
}

Pd RandomQuery(ExprArena* arena, Rng* rng, int num_attrs, int max_ops) {
  ExprId l = RandomExpr(arena, rng, num_attrs,
                        1 + static_cast<int>(rng->Below(max_ops)));
  ExprId r = RandomExpr(arena, rng, num_attrs,
                        1 + static_cast<int>(rng->Below(max_ops)));
  return rng->Chance(1, 2) ? Pd::Eq(l, r) : Pd::Leq(l, r);
}

// --- 1. differential against the naive reference -------------------------------

TEST(BatchImpliesDifferentialTest, AgreesWithNaiveOn500RandomConstraintSets) {
  Rng rng(20250807);
  for (int set = 0; set < 500; ++set) {
    ExprArena arena;
    std::vector<Pd> e = RandomTheory(&arena, &rng, 3, 2, 2);
    std::vector<Pd> queries;
    for (int q = 0; q < 2; ++q) {
      queries.push_back(RandomQuery(&arena, &rng, 3, 3));
    }
    // Two worker threads force the banded Jacobi sweep even at tiny |V|.
    PdImplicationEngine engine(&arena, e, EngineOptions{.num_threads = 2});
    std::vector<bool> fast = engine.BatchImplies(queries);
    ASSERT_EQ(fast.size(), queries.size());
    for (std::size_t q = 0; q < queries.size(); ++q) {
      bool slow = NaivePdImplication(arena, e, queries[q]);
      ASSERT_EQ(fast[q], slow)
          << "set " << set << " query " << arena.ToString(queries[q]);
    }
  }
}

// --- 2. incremental closure == cold closure -------------------------------------

TEST(IncrementalClosureTest, QueryStreamMatchesColdRecompute) {
  Rng rng(42);
  ExprArena arena;
  std::vector<Pd> e = RandomTheory(&arena, &rng, 4, 4, 3);
  PdImplicationEngine warm(&arena, e);
  for (int q = 0; q < 40; ++q) {
    Pd query = RandomQuery(&arena, &rng, 4, 4);
    // A fresh engine closes from scratch over exactly the same V.
    PdImplicationEngine cold(&arena, e);
    ASSERT_EQ(warm.Implies(query), cold.Implies(query))
        << arena.ToString(query);
  }
  // The stream above re-closed incrementally at least once (fresh
  // subexpressions are near-certain over 40 random queries).
  EXPECT_GE(warm.stats().incremental_closures, 1u);
  EXPECT_EQ(warm.stats().cold_closures, 1u);
}

TEST(IncrementalClosureTest, FinalClosureIdenticalToColdOverSameVertices) {
  Rng rng(77);
  ExprArena arena;
  std::vector<Pd> e = RandomTheory(&arena, &rng, 4, 5, 3);
  // Warm path: feed queries one at a time.
  std::vector<Pd> queries;
  for (int q = 0; q < 12; ++q) queries.push_back(RandomQuery(&arena, &rng, 4, 3));
  PdImplicationEngine warm(&arena, e);
  std::vector<ExprId> roots;
  for (const Pd& q : queries) {
    warm.Implies(q);
    roots.push_back(q.lhs);
    roots.push_back(q.rhs);
  }
  warm.Prepare(roots);
  // Cold path: everything at once.
  PdImplicationEngine cold(&arena, e);
  cold.Prepare(roots);
  ASSERT_EQ(warm.stats().num_vertices, cold.stats().num_vertices);
  EXPECT_EQ(warm.stats().num_arcs, cold.stats().num_arcs);
  for (ExprId a : roots) {
    for (ExprId b : roots) {
      ASSERT_EQ(warm.LeqInClosure(a, b), cold.LeqInClosure(a, b))
          << arena.ToString(a) << " <= " << arena.ToString(b);
    }
  }
}

// --- 3. batch semantics and the LRU cache ---------------------------------------

TEST(BatchImpliesTest, MatchesSequentialImpliesAndHandlesDuplicates) {
  Rng rng(9);
  ExprArena arena;
  std::vector<Pd> e = RandomTheory(&arena, &rng, 4, 4, 3);
  std::vector<Pd> queries;
  for (int q = 0; q < 16; ++q) queries.push_back(RandomQuery(&arena, &rng, 4, 3));
  // Duplicate some queries: dedup must not change answers or order.
  queries.push_back(queries[0]);
  queries.push_back(queries[7]);

  PdImplicationEngine batch(&arena, e, EngineOptions{.num_threads = 4});
  std::vector<bool> got = batch.BatchImplies(queries);

  PdImplicationEngine seq(&arena, e);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(got[i], seq.Implies(queries[i]))
        << "query " << i << ": " << arena.ToString(queries[i]);
  }
  EXPECT_EQ(got[queries.size() - 2], got[0]);
  EXPECT_EQ(got[queries.size() - 1], got[7]);
  // The whole batch used one closure (all vertices added up front).
  EXPECT_EQ(batch.stats().cold_closures + batch.stats().incremental_closures,
            1u);
}

TEST(BatchImpliesTest, EmptyBatchIsANoOp) {
  ExprArena arena;
  PdImplicationEngine engine(&arena, {*arena.ParsePd("A <= B")});
  EXPECT_TRUE(engine.BatchImplies({}).empty());
}

TEST(QueryCacheTest, RepeatedQueriesHitTheCache) {
  ExprArena arena;
  std::vector<Pd> e = {*arena.ParsePd("A <= B"), *arena.ParsePd("B <= C")};
  PdImplicationEngine engine(&arena, e);
  Pd q = *arena.ParsePd("A <= C");
  EXPECT_TRUE(engine.Implies(q));
  std::size_t closures_after_first =
      engine.stats().cold_closures + engine.stats().incremental_closures;
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(engine.Implies(q));
  EXPECT_GE(engine.stats().cache_hits, 10u);
  EXPECT_GT(engine.stats().CacheHitRate(), 0.5);
  // Cache hits answered without touching the closure.
  EXPECT_EQ(engine.stats().cold_closures + engine.stats().incremental_closures,
            closures_after_first);
}

TEST(QueryCacheTest, DisabledCacheGivesSameVerdicts) {
  Rng rng(123);
  ExprArena arena;
  std::vector<Pd> e = RandomTheory(&arena, &rng, 3, 3, 2);
  PdImplicationEngine cached(&arena, e);
  PdImplicationEngine uncached(&arena, e,
                               EngineOptions{.cache_capacity = 0});
  for (int q = 0; q < 30; ++q) {
    Pd query = RandomQuery(&arena, &rng, 3, 3);
    ASSERT_EQ(cached.Implies(query), uncached.Implies(query))
        << arena.ToString(query);
  }
  EXPECT_EQ(uncached.stats().cache_lookups, 0u);
}

TEST(QueryCacheTest, EvictionKeepsAnswersCorrect) {
  ExprArena arena;
  std::vector<Pd> e;
  for (int i = 0; i + 1 < 12; ++i) {
    e.push_back(Pd::Leq(arena.Attr("A" + std::to_string(i)),
                        arena.Attr("A" + std::to_string(i + 1))));
  }
  // A 4-entry cache under a 144-pair query load: constant eviction.
  PdImplicationEngine tiny(&arena, e, EngineOptions{.cache_capacity = 4});
  PdImplicationEngine ref(&arena, e, EngineOptions{.cache_capacity = 0});
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 12; ++i) {
      for (int j = 0; j < 12; ++j) {
        ExprId a = arena.Attr("A" + std::to_string(i));
        ExprId b = arena.Attr("A" + std::to_string(j));
        ASSERT_EQ(tiny.ImpliesLeq(a, b), ref.ImpliesLeq(a, b))
            << "A" << i << " <= A" << j;
        ASSERT_EQ(tiny.ImpliesLeq(a, b), i <= j);
      }
    }
  }
}

// --- 4. the sparse<->dense mode switch -----------------------------------------

// Force every eligible round through the blocked 64-row-tile kernel by
// dropping the row floor to 1 and the per-row density requirement to its
// minimum: the resulting closure matrix must be identical — vertex count,
// arc count, and full verdict grid — to the default (density-gated)
// serial engine and to the banded parallel engine on a saturating,
// equation-heavy theory.
TEST(DenseModeTest, BlockedDenseRoundsMatchBandedParallelClosure) {
  Rng rng(31337);
  ExprArena arena;
  std::vector<Pd> e = RandomTheory(&arena, &rng, 6, 48, 8);
  PdImplicationEngine forced(&arena, e,
                             EngineOptions{.dense_min_rows = 1,
                                           .dense_inv_density = SIZE_MAX});
  PdImplicationEngine serial(&arena, e);
  PdImplicationEngine parallel(&arena, e, EngineOptions{.num_threads = 4});
  forced.Prepare({});
  serial.Prepare({});
  parallel.Prepare({});
  EXPECT_GE(forced.stats().dense_rounds, 1u);
  ASSERT_EQ(forced.stats().num_vertices, serial.stats().num_vertices);
  ASSERT_EQ(forced.stats().num_arcs, serial.stats().num_arcs);
  ASSERT_EQ(forced.stats().num_vertices, parallel.stats().num_vertices);
  ASSERT_EQ(forced.stats().num_arcs, parallel.stats().num_arcs);
  // Verdicts agree on the full attribute grid.
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      ExprId a = arena.Attr(std::string(1, static_cast<char>('A' + i)));
      ExprId b = arena.Attr(std::string(1, static_cast<char>('A' + j)));
      ASSERT_EQ(forced.LeqInClosure(a, b), serial.LeqInClosure(a, b));
      ASSERT_EQ(serial.LeqInClosure(a, b), parallel.LeqInClosure(a, b));
    }
  }
}

// The forced-dense trajectory must also match the naive rule-by-rule
// reference verdict-for-verdict on many small random theories.
TEST(DenseModeTest, ForcedDenseMatchesNaiveOnRandomTheories) {
  Rng rng(4242);
  for (int set = 0; set < 60; ++set) {
    ExprArena arena;
    std::vector<Pd> e = RandomTheory(&arena, &rng, 3, 2, 2);
    PdImplicationEngine forced(&arena, e,
                               EngineOptions{.dense_min_rows = 1,
                                             .dense_inv_density = SIZE_MAX});
    for (int q = 0; q < 3; ++q) {
      Pd query = RandomQuery(&arena, &rng, 3, 3);
      ASSERT_EQ(forced.Implies(query), NaivePdImplication(arena, e, query))
          << "set " << set << " query " << arena.ToString(query);
    }
  }
}

// Tiny theories never cross the 64-dirty-row floor: every round must be
// sparse, so chain-like workloads keep their delta-proportional cost.
TEST(DenseModeTest, SmallClosuresStaySparse) {
  ExprArena arena;
  std::vector<Pd> e;
  for (int i = 0; i + 1 < 16; ++i) {
    e.push_back(Pd::Leq(arena.Attr("A" + std::to_string(i)),
                        arena.Attr("A" + std::to_string(i + 1))));
  }
  PdImplicationEngine engine(&arena, e);
  engine.Prepare({});
  EXPECT_EQ(engine.stats().dense_rounds, 0u);
  EXPECT_GE(engine.stats().sparse_rounds, 1u);
}

TEST(AlgStatsTest, TrajectoryFieldsArePopulated) {
  ExprArena arena;
  std::vector<Pd> e = {*arena.ParsePd("A = A*B"), *arena.ParsePd("B = B*C")};
  PdImplicationEngine engine(&arena, e, EngineOptions{.num_threads = 2});
  EXPECT_TRUE(engine.Implies(*arena.ParsePd("A <= C")));
  const AlgStats& s = engine.stats();
  EXPECT_GT(s.num_vertices, 0u);
  EXPECT_GT(s.num_arcs, 0u);
  EXPECT_EQ(s.passes, s.pass_arc_delta.size());
  EXPECT_GE(s.closure_seconds, 0.0);
  EXPECT_EQ(s.num_threads, 2u);
  // The last pass confirms the fixpoint: it adds nothing.
  ASSERT_FALSE(s.pass_arc_delta.empty());
  EXPECT_EQ(s.pass_arc_delta.back(), 0u);
}

}  // namespace
}  // namespace psem
