// ExecContext unit tests: builder chaining, the unbounded fast path,
// checkpoint precedence (cancellation wins over an expired deadline), and
// every budget checker's trip/no-trip boundary.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "util/exec_context.h"

namespace psem {
namespace {

using std::chrono::milliseconds;

TEST(ExecContextTest, DefaultIsUnbounded) {
  ExecContext ctx;
  EXPECT_TRUE(ctx.unbounded());
  EXPECT_FALSE(ctx.cancelled());
  EXPECT_FALSE(ctx.deadline_expired());
  EXPECT_TRUE(ctx.Check().ok());
  EXPECT_TRUE(ExecContext::Unbounded().unbounded());
}

TEST(ExecContextTest, AnyControlLeavesUnboundedFastPath) {
  EXPECT_FALSE(ExecContext().WithTimeout(milliseconds(100)).unbounded());
  EXPECT_FALSE(ExecContext().WithCancelToken(CancelToken()).unbounded());
  EXPECT_FALSE(ExecContext().WithMaxArcs(1).unbounded());
  EXPECT_FALSE(ExecContext().WithMaxVertices(1).unbounded());
  EXPECT_FALSE(ExecContext().WithMaxSolverNodes(1).unbounded());
  EXPECT_FALSE(ExecContext().WithMaxDepth(1).unbounded());
  EXPECT_FALSE(ExecContext().WithMaxRounds(1).unbounded());
}

TEST(ExecContextTest, BuildersChain) {
  ExecContext ctx;
  ctx.WithTimeout(milliseconds(50)).WithMaxArcs(10).WithMaxVertices(20);
  EXPECT_TRUE(ctx.has_deadline());
  EXPECT_EQ(ctx.max_arcs(), 10u);
  EXPECT_EQ(ctx.max_vertices(), 20u);
}

TEST(ExecContextTest, ExpiredDeadlineIsResourceExhausted) {
  ExecContext ctx;
  ctx.WithDeadline(ExecContext::Clock::now() - milliseconds(1));
  EXPECT_TRUE(ctx.deadline_expired());
  Status st = ctx.Check();
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST(ExecContextTest, FutureDeadlinePasses) {
  ExecContext ctx;
  ctx.WithTimeout(std::chrono::hours(1));
  EXPECT_FALSE(ctx.deadline_expired());
  EXPECT_TRUE(ctx.Check().ok());
}

TEST(ExecContextTest, CancelTokenTripsCheck) {
  CancelToken token;
  ExecContext ctx;
  ctx.WithCancelToken(token);
  EXPECT_TRUE(ctx.Check().ok());
  token.Cancel();
  EXPECT_TRUE(ctx.cancelled());
  EXPECT_EQ(ctx.Check().code(), StatusCode::kCancelled);
  token.Reset();
  EXPECT_TRUE(ctx.Check().ok());
}

TEST(ExecContextTest, TokenCopiesShareOneFlag) {
  CancelToken a;
  CancelToken b = a;  // copy observes the same underlying flag
  ExecContext ctx;
  ctx.WithCancelToken(b);
  a.Cancel();
  EXPECT_TRUE(ctx.cancelled());
}

TEST(ExecContextTest, CancellationWinsOverExpiredDeadline) {
  CancelToken token;
  token.Cancel();
  ExecContext ctx;
  ctx.WithDeadline(ExecContext::Clock::now() - milliseconds(1))
      .WithCancelToken(token);
  // Both controls have tripped; the contract says kCancelled is reported.
  EXPECT_EQ(ctx.Check().code(), StatusCode::kCancelled);
}

TEST(ExecContextTest, CancelFromAnotherThreadIsObserved) {
  CancelToken token;
  ExecContext ctx;
  ctx.WithCancelToken(token);
  std::thread t([&token] { token.Cancel(); });
  t.join();
  EXPECT_EQ(ctx.Check().code(), StatusCode::kCancelled);
}

TEST(ExecContextTest, BudgetCheckersTripStrictlyAboveTheCap) {
  ExecContext ctx;
  ctx.WithMaxArcs(100)
      .WithMaxVertices(10)
      .WithMaxSolverNodes(5)
      .WithMaxDepth(3)
      .WithMaxRounds(2);
  EXPECT_TRUE(ctx.CheckArcs(100).ok());
  EXPECT_EQ(ctx.CheckArcs(101).code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(ctx.CheckVertices(10).ok());
  EXPECT_EQ(ctx.CheckVertices(11).code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(ctx.CheckSolverNodes(5).ok());
  EXPECT_EQ(ctx.CheckSolverNodes(6).code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(ctx.CheckDepth(3).ok());
  EXPECT_EQ(ctx.CheckDepth(4).code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(ctx.CheckRounds(2).ok());
  EXPECT_EQ(ctx.CheckRounds(3).code(), StatusCode::kResourceExhausted);
}

TEST(ExecContextTest, ZeroBudgetMeansUnlimited) {
  ExecContext ctx;  // all budgets default to 0
  EXPECT_TRUE(ctx.CheckArcs(UINT64_MAX).ok());
  EXPECT_TRUE(ctx.CheckVertices(UINT64_MAX).ok());
  EXPECT_TRUE(ctx.CheckSolverNodes(UINT64_MAX).ok());
  EXPECT_TRUE(ctx.CheckDepth(UINT64_MAX).ok());
  EXPECT_TRUE(ctx.CheckRounds(UINT64_MAX).ok());
}

TEST(ExecContextTest, BudgetMessagesNameTheBudget) {
  ExecContext ctx;
  ctx.WithMaxArcs(1).WithMaxSolverNodes(1);
  EXPECT_NE(ctx.CheckArcs(2).message().find("arc budget"), std::string::npos);
  EXPECT_NE(ctx.CheckSolverNodes(2).message().find("node budget"),
            std::string::npos);
}

TEST(ExecContextTest, ContextCopiesAreIndependentExceptTheToken) {
  CancelToken token;
  ExecContext a;
  a.WithMaxArcs(7).WithCancelToken(token);
  ExecContext b = a;
  b.WithMaxArcs(9);
  EXPECT_EQ(a.max_arcs(), 7u);
  EXPECT_EQ(b.max_arcs(), 9u);
  token.Cancel();
  EXPECT_TRUE(a.cancelled());
  EXPECT_TRUE(b.cancelled());  // the token is shared by design
}

}  // namespace
}  // namespace psem
