// Tests for the relational substrate: schemas, relations, set semantics,
// the relational algebra, and FD/MVD satisfaction (Section 2.1).

#include <gtest/gtest.h>

#include <algorithm>

#include "relational/algebra.h"
#include "relational/dependency.h"
#include "relational/relation.h"

namespace psem {
namespace {

class RelationalFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // emp(Name, Dept), dept(Dept, Head).
    emp_ = db_.AddRelation("emp", {"Name", "Dept"});
    db_.relation(emp_).AddRow(&db_.symbols(), {"ann", "sales"});
    db_.relation(emp_).AddRow(&db_.symbols(), {"bob", "sales"});
    db_.relation(emp_).AddRow(&db_.symbols(), {"eve", "eng"});
    dept_ = db_.AddRelation("dept", {"Dept", "Head"});
    db_.relation(dept_).AddRow(&db_.symbols(), {"sales", "kim"});
    db_.relation(dept_).AddRow(&db_.symbols(), {"eng", "lee"});
  }
  Database db_;
  std::size_t emp_, dept_;
};

TEST_F(RelationalFixture, SetSemantics) {
  Relation& r = db_.relation(emp_);
  EXPECT_EQ(r.size(), 3u);
  EXPECT_FALSE(r.AddRow(&db_.symbols(), {"ann", "sales"}));  // duplicate
  EXPECT_EQ(r.size(), 3u);
  EXPECT_TRUE(r.AddRow(&db_.symbols(), {"ann", "eng"}));
  EXPECT_EQ(r.size(), 4u);
}

TEST_F(RelationalFixture, SchemaQueries) {
  const RelationSchema& s = db_.relation(emp_).schema();
  EXPECT_EQ(s.arity(), 2u);
  RelAttrId dept = *db_.universe().Require("Dept");
  EXPECT_EQ(s.ColumnOf(dept), 1u);
  EXPECT_TRUE(s.Contains(dept));
  EXPECT_EQ(s.ColumnOf(999), RelationSchema::kNpos);
}

TEST_F(RelationalFixture, DatabaseColumnValues) {
  RelAttrId dept = *db_.universe().Require("Dept");
  auto vals = db_.ColumnValues(dept);
  EXPECT_EQ(vals.size(), 2u);  // sales, eng across both relations
}

TEST_F(RelationalFixture, AllAttributes) {
  AttrSet all = db_.AllAttributes();
  EXPECT_EQ(all.Count(), 3u);  // Name, Dept, Head
}

TEST_F(RelationalFixture, Projection) {
  RelAttrId dept = *db_.universe().Require("Dept");
  Relation p = *Project(db_.relation(emp_), {dept});
  EXPECT_EQ(p.size(), 2u);  // sales, eng — dedup
  EXPECT_FALSE(Project(db_.relation(emp_), {999}).ok());
}

TEST_F(RelationalFixture, Selection) {
  RelAttrId dept = *db_.universe().Require("Dept");
  ValueId sales = db_.symbols().Intern("sales");
  Relation s = *SelectEq(db_.relation(emp_), dept, sales);
  EXPECT_EQ(s.size(), 2u);
}

TEST_F(RelationalFixture, NaturalJoin) {
  Relation j = NaturalJoin(db_.relation(emp_), db_.relation(dept_));
  EXPECT_EQ(j.arity(), 3u);  // Name, Dept, Head
  EXPECT_EQ(j.size(), 3u);
  // Every employee row matched exactly one department.
  RelAttrId head = *db_.universe().Require("Head");
  Relation heads = *Project(j, {head});
  EXPECT_EQ(heads.size(), 2u);
}

TEST_F(RelationalFixture, JoinWithNoCommonAttributesIsProduct) {
  Database db;
  std::size_t a = db.AddRelation("a", {"X"});
  db.relation(a).AddRow(&db.symbols(), {"1"});
  db.relation(a).AddRow(&db.symbols(), {"2"});
  std::size_t b = db.AddRelation("b", {"Y"});
  db.relation(b).AddRow(&db.symbols(), {"p"});
  db.relation(b).AddRow(&db.symbols(), {"q"});
  Relation j = NaturalJoin(db.relation(a), db.relation(b));
  EXPECT_EQ(j.size(), 4u);
  Relation cp = *CartesianProduct(db.relation(a), db.relation(b));
  EXPECT_EQ(cp.size(), 4u);
}

TEST_F(RelationalFixture, UnionDifferenceRequireSameScheme) {
  EXPECT_FALSE(Union(db_.relation(emp_), db_.relation(dept_)).ok());
  EXPECT_FALSE(Difference(db_.relation(emp_), db_.relation(dept_)).ok());
  Relation u = *Union(db_.relation(emp_), db_.relation(emp_));
  EXPECT_EQ(u.size(), 3u);
  Relation d = *Difference(db_.relation(emp_), db_.relation(emp_));
  EXPECT_EQ(d.size(), 0u);
}

TEST_F(RelationalFixture, UnionAndDifferenceContent) {
  Database db;
  std::size_t a = db.AddRelation("a", {"X"});
  db.relation(a).AddRow(&db.symbols(), {"1"});
  db.relation(a).AddRow(&db.symbols(), {"2"});
  std::size_t b = db.AddRelation("b", {"X"});
  // Same attribute list (X), different relation name — union is legal.
  db.relation(b).AddRow(&db.symbols(), {"2"});
  db.relation(b).AddRow(&db.symbols(), {"3"});
  EXPECT_EQ(Union(db.relation(a), db.relation(b))->size(), 3u);
  Relation diff = *Difference(db.relation(a), db.relation(b));
  EXPECT_EQ(diff.size(), 1u);
  EXPECT_EQ(db.symbols().NameOf(diff.row(0)[0]), "1");
}

TEST_F(RelationalFixture, CartesianProductRequiresDisjointSchemes) {
  EXPECT_FALSE(
      CartesianProduct(db_.relation(emp_), db_.relation(emp_)).ok());
}

TEST_F(RelationalFixture, Rename) {
  RelAttrId dept = *db_.universe().Require("Dept");
  RelAttrId dept2 = db_.universe().Intern("Dept2");
  Relation rn = Rename(db_.relation(emp_), "emp2", {dept}, {dept2});
  EXPECT_EQ(rn.schema().name, "emp2");
  EXPECT_TRUE(rn.schema().Contains(dept2));
  EXPECT_FALSE(rn.schema().Contains(dept));
  EXPECT_EQ(rn.size(), 3u);
}

TEST_F(RelationalFixture, RestrictProjectsTupleOnAttrSet) {
  const Relation& r = db_.relation(emp_);
  AttrSet just_dept = db_.universe().EmptySet();
  just_dept.Set(*db_.universe().Require("Dept"));
  Tuple t = r.Restrict(r.row(0), just_dept);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(db_.symbols().NameOf(t[0]), "sales");
}

TEST_F(RelationalFixture, ToStringRendersTable) {
  std::string s = db_.relation(emp_).ToString(db_.universe(), db_.symbols());
  EXPECT_NE(s.find("Name"), std::string::npos);
  EXPECT_NE(s.find("ann"), std::string::npos);
}

// --- dependencies ------------------------------------------------------------

TEST(FdParseTest, ParsesAndPrints) {
  Universe u;
  Fd fd = *Fd::Parse(&u, "A B -> C");
  EXPECT_EQ(fd.ToString(u), "A B -> C");
  EXPECT_EQ(fd.lhs.Count(), 2u);
  EXPECT_EQ(fd.rhs.Count(), 1u);
  EXPECT_TRUE(Fd::Parse(&u, "A,B -> C,D").ok());
  EXPECT_FALSE(Fd::Parse(&u, "A B C").ok());
  EXPECT_FALSE(Fd::Parse(&u, "-> C").ok());
  EXPECT_FALSE(Fd::Parse(&u, "A ->").ok());
  EXPECT_FALSE(Fd::Parse(&u, "A ->> B").ok());  // MVD arrow rejected
}

TEST(FdSatisfactionTest, Basic) {
  Database db;
  std::size_t ri = db.AddRelation("R", {"A", "B"});
  Relation& r = db.relation(ri);
  r.AddRow(&db.symbols(), {"x", "1"});
  r.AddRow(&db.symbols(), {"x", "1"});
  r.AddRow(&db.symbols(), {"y", "2"});
  Fd fd = *Fd::Parse(&db.universe(), "A -> B");
  EXPECT_TRUE(*SatisfiesFd(r, fd));
  r.AddRow(&db.symbols(), {"x", "3"});
  EXPECT_FALSE(*SatisfiesFd(r, fd));
}

TEST(FdSatisfactionTest, AttributesMustBeInScheme) {
  Database db;
  std::size_t ri = db.AddRelation("R", {"A"});
  db.universe().Intern("Z");
  Fd fd = *Fd::Parse(&db.universe(), "A -> Z");
  EXPECT_FALSE(SatisfiesFd(db.relation(ri), fd).ok());
}

TEST(MvdSatisfactionTest, Theorem5Relations) {
  // Figure 2: r1 satisfies the MVD A ->> B; r2 does not.
  Database db;
  std::size_t i1 = db.AddRelation("r1", {"A", "B", "C"});
  Relation& r1 = db.relation(i1);
  r1.AddRow(&db.symbols(), {"a", "b1", "c1"});
  r1.AddRow(&db.symbols(), {"a", "b1", "c2"});
  r1.AddRow(&db.symbols(), {"a", "b2", "c1"});
  r1.AddRow(&db.symbols(), {"a", "b2", "c2"});
  std::size_t i2 = db.AddRelation("r2", {"A", "B", "C"});
  Relation& r2 = db.relation(i2);
  r2.AddRow(&db.symbols(), {"a", "b1", "c1"});
  r2.AddRow(&db.symbols(), {"a", "b2", "c2"});
  r2.AddRow(&db.symbols(), {"a", "b1", "c2"});
  Mvd mvd = *Mvd::Parse(&db.universe(), "A ->> B");
  EXPECT_TRUE(*SatisfiesMvd(r1, mvd));
  EXPECT_FALSE(*SatisfiesMvd(r2, mvd));
}

TEST(MvdSatisfactionTest, FdImpliesMvd) {
  // Any relation satisfying A -> B satisfies A ->> B.
  Database db;
  std::size_t ri = db.AddRelation("R", {"A", "B", "C"});
  Relation& r = db.relation(ri);
  r.AddRow(&db.symbols(), {"a1", "b1", "c1"});
  r.AddRow(&db.symbols(), {"a1", "b1", "c2"});
  r.AddRow(&db.symbols(), {"a2", "b2", "c1"});
  Fd fd = *Fd::Parse(&db.universe(), "A -> B");
  Mvd mvd = *Mvd::Parse(&db.universe(), "A ->> B");
  ASSERT_TRUE(*SatisfiesFd(r, fd));
  EXPECT_TRUE(*SatisfiesMvd(r, mvd));
}

TEST(MvdSatisfactionTest, TrivialMvdAlwaysHolds) {
  // X ->> Y with X u Y = U is trivial.
  Database db;
  std::size_t ri = db.AddRelation("R", {"A", "B"});
  Relation& r = db.relation(ri);
  r.AddRow(&db.symbols(), {"a1", "b1"});
  r.AddRow(&db.symbols(), {"a1", "b2"});
  Mvd mvd = *Mvd::Parse(&db.universe(), "A ->> B");
  EXPECT_TRUE(*SatisfiesMvd(r, mvd));
}

TEST(SatisfiesAllFdsTest, Conjunction) {
  Database db;
  std::size_t ri = db.AddRelation("R", {"A", "B", "C"});
  Relation& r = db.relation(ri);
  r.AddRow(&db.symbols(), {"a", "b", "c"});
  r.AddRow(&db.symbols(), {"a", "b", "d"});
  std::vector<Fd> fds = {*Fd::Parse(&db.universe(), "A -> B"),
                         *Fd::Parse(&db.universe(), "A -> C")};
  EXPECT_FALSE(*SatisfiesAllFds(r, fds));
  EXPECT_TRUE(*SatisfiesAllFds(r, {fds[0]}));
}

}  // namespace
}  // namespace psem
