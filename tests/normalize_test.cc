// Tests for the Section 6.2 normalization pipeline: flattening into
// C = A*B / C = A+B forms, FPD extraction, E+ closure, and sum-upper
// pruning.

#include <gtest/gtest.h>

#include "core/fd_theory.h"
#include "core/normalize.h"

namespace psem {
namespace {

TEST(NormalizeTest, PureFpdTheoryYieldsNoSumUppers) {
  ExprArena arena;
  std::vector<Pd> pds = {*arena.ParsePd("A = A*B"), *arena.ParsePd("B <= C")};
  Universe u;
  NormalizedPds norm = *NormalizePds(arena, pds, &u);
  EXPECT_TRUE(norm.sum_uppers.empty());
  // Derived: A <= C must be among the FPDs.
  FdTheory t(&u);
  for (const Fd& fd : norm.fpds) t.Add(fd);
  EXPECT_TRUE(t.Implies(*Fd::Parse(&u, "A -> C")));
  EXPECT_FALSE(t.Implies(*Fd::Parse(&u, "C -> A")));
}

TEST(NormalizeTest, ProductPdDecomposesToThreeFds) {
  ExprArena arena;
  std::vector<Pd> pds = {*arena.ParsePd("X = Y*Z")};
  Universe u;
  NormalizedPds norm = *NormalizePds(arena, pds, &u);
  EXPECT_TRUE(norm.sum_uppers.empty());
  FdTheory t(&u);
  for (const Fd& fd : norm.fpds) t.Add(fd);
  // Example f: X -> YZ and YZ -> X.
  EXPECT_TRUE(t.Implies(*Fd::Parse(&u, "X -> Y Z")));
  EXPECT_TRUE(t.Implies(*Fd::Parse(&u, "Y Z -> X")));
  EXPECT_FALSE(t.Implies(*Fd::Parse(&u, "Y -> X")));
}

TEST(NormalizeTest, SumPdKeepsResidualUpper) {
  ExprArena arena;
  std::vector<Pd> pds = {*arena.ParsePd("C = A+B")};
  Universe u;
  NormalizedPds norm = *NormalizePds(arena, pds, &u);
  // A -> C and B -> C become FPDs; C <= A+B survives (A, B incomparable).
  EXPECT_EQ(norm.sum_uppers.size(), 1u);
  FdTheory t(&u);
  for (const Fd& fd : norm.fpds) t.Add(fd);
  EXPECT_TRUE(t.Implies(*Fd::Parse(&u, "A -> C")));
  EXPECT_TRUE(t.Implies(*Fd::Parse(&u, "B -> C")));
  EXPECT_FALSE(t.Implies(*Fd::Parse(&u, "C -> A")));
}

TEST(NormalizeTest, SumUpperPrunedWhenSidesComparable) {
  // With A <= B the PD C = A+B degenerates: A+B = B, so C <= B is an FPD
  // and no sum-upper survives.
  ExprArena arena;
  std::vector<Pd> pds = {*arena.ParsePd("C = A+B"), *arena.ParsePd("A <= B")};
  Universe u;
  NormalizedPds norm = *NormalizePds(arena, pds, &u);
  EXPECT_TRUE(norm.sum_uppers.empty());
  FdTheory t(&u);
  for (const Fd& fd : norm.fpds) t.Add(fd);
  EXPECT_TRUE(t.Implies(*Fd::Parse(&u, "C -> B")));
  EXPECT_TRUE(t.Implies(*Fd::Parse(&u, "B -> C")));  // B <= A+B <= C... via B -> C
}

TEST(NormalizeTest, FreshAttributesAreTracked) {
  ExprArena arena;
  std::vector<Pd> pds = {*arena.ParsePd("A*B = C+D")};
  Universe u;
  NormalizedPds norm = *NormalizePds(arena, pds, &u);
  // One fresh attribute for A*B, one for C+D.
  EXPECT_EQ(norm.fresh_attrs.size(), 2u);
  for (const auto& name : norm.fresh_attrs) {
    EXPECT_TRUE(u.Require(name).ok());
  }
}

TEST(NormalizeTest, SharedSubexpressionsReuseFreshAttrs) {
  ExprArena arena;
  // A*B occurs twice; flattening must introduce it once.
  std::vector<Pd> pds = {*arena.ParsePd("A*B <= C"), *arena.ParsePd("D <= A*B")};
  Universe u;
  NormalizedPds norm = *NormalizePds(arena, pds, &u);
  EXPECT_EQ(norm.fresh_attrs.size(), 1u);
  FdTheory t(&u);
  for (const Fd& fd : norm.fpds) t.Add(fd);
  // D <= A*B <= C gives D -> C.
  EXPECT_TRUE(t.Implies(*Fd::Parse(&u, "D -> C")));
  EXPECT_TRUE(t.Implies(*Fd::Parse(&u, "D -> A")));
}

TEST(NormalizeTest, DeepNestingFlattens) {
  ExprArena arena;
  std::vector<Pd> pds = {*arena.ParsePd("X = (A+B)*(C+D)")};
  Universe u;
  NormalizedPds norm = *NormalizePds(arena, pds, &u);
  // Fresh: A+B, C+D, their product. X equals the product.
  EXPECT_EQ(norm.fresh_attrs.size(), 3u);
  EXPECT_EQ(norm.sum_uppers.size(), 2u);
  FdTheory t(&u);
  for (const Fd& fd : norm.fpds) t.Add(fd);
  // A <= A+B and X <= A+B, so X -> (A+B)'s attr; also A -> ... Check a
  // user-level consequence: A*C determines X? A <= A+B, C <= C+D, so
  // A C -> X.
  EXPECT_TRUE(t.Implies(*Fd::Parse(&u, "A C -> X")));
  EXPECT_FALSE(t.Implies(*Fd::Parse(&u, "A -> X")));
}

TEST(NormalizeTest, EqualityOfAttributesBothDirections) {
  ExprArena arena;
  std::vector<Pd> pds = {*arena.ParsePd("A = B")};
  Universe u;
  NormalizedPds norm = *NormalizePds(arena, pds, &u);
  FdTheory t(&u);
  for (const Fd& fd : norm.fpds) t.Add(fd);
  EXPECT_TRUE(t.Implies(*Fd::Parse(&u, "A -> B")));
  EXPECT_TRUE(t.Implies(*Fd::Parse(&u, "B -> A")));
}

TEST(NormalizeTest, EmptyTheory) {
  ExprArena arena;
  Universe u;
  NormalizedPds norm = *NormalizePds(arena, {}, &u);
  EXPECT_TRUE(norm.fpds.empty());
  EXPECT_TRUE(norm.sum_uppers.empty());
  EXPECT_TRUE(norm.fresh_attrs.empty());
}

}  // namespace
}  // namespace psem
