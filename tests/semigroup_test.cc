// Tests for the idempotent-commutative-semigroup word problem and the
// Section 5.3 two-way reduction with FD implication and Algorithm ALG.

#include <gtest/gtest.h>

#include "core/fd_theory.h"
#include "core/fpd.h"
#include "core/implication.h"
#include "core/semigroup.h"
#include "util/rng.h"

namespace psem {
namespace {

TEST(SemigroupTest, AxiomsViaNormalForm) {
  Universe u;
  IcSemigroupTheory t(&u);
  AttrSet ab = u.MakeSet({"A", "B"});
  AttrSet ba = u.MakeSet({"B", "A"});
  AttrSet aab = u.MakeSet({"A", "A", "B"});
  // Commutativity and idempotence are baked into the set representation.
  EXPECT_TRUE(t.Equal(ab, ba));
  EXPECT_TRUE(t.Equal(ab, aab));
  EXPECT_FALSE(t.Equal(ab, u.MakeSet({"A"})));
}

TEST(SemigroupTest, EquationSaturation) {
  Universe u;
  IcSemigroupTheory t(&u);
  ASSERT_TRUE(t.AddParsed("A = A B").ok());   // A absorbs B
  ASSERT_TRUE(t.AddParsed("B = B C").ok());
  AttrSet a = u.MakeSet({"A"});
  EXPECT_EQ(u.SetToString(t.NormalForm(a)), "A B C");
  EXPECT_TRUE(t.Equal(u.MakeSet({"A"}), u.MakeSet({"A", "C"})));
  EXPECT_FALSE(t.Equal(u.MakeSet({"B"}), u.MakeSet({"A", "B"})));
  EXPECT_TRUE(t.LeqWord(u.MakeSet({"A"}), u.MakeSet({"C"})));
  EXPECT_FALSE(t.LeqWord(u.MakeSet({"C"}), u.MakeSet({"A"})));
}

TEST(SemigroupTest, ParseErrors) {
  Universe u;
  IcSemigroupTheory t(&u);
  EXPECT_FALSE(t.AddParsed("A B").ok());
  EXPECT_FALSE(t.AddParsed("= A").ok());
  EXPECT_FALSE(t.AddParsed("A = ").ok());
  EXPECT_FALSE(t.AddParsed("A = 9x").ok());
}

TEST(SemigroupTest, FdRoundTrip) {
  // FDs -> presentation -> FDs preserves the closure operator.
  Universe u;
  FdTheory fds(&u);
  ASSERT_TRUE(fds.AddParsed("A -> B").ok());
  ASSERT_TRUE(fds.AddParsed("B C -> D").ok());
  IcSemigroupTheory sg = IcSemigroupTheory::FromFds(&u, fds.fds());
  FdTheory back(&u);
  for (const Fd& fd : sg.ToFds()) back.Add(fd);
  EXPECT_TRUE(fds.EquivalentTo(back));
}

class SemigroupAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(SemigroupAgreementTest, ThreeEnginesAgree) {
  Rng rng(6600 + GetParam());
  const int n = 5;
  for (int trial = 0; trial < 10; ++trial) {
    Universe u;
    for (int i = 0; i < n; ++i) u.Intern(std::string(1, 'A' + i));
    // Random FD set.
    FdTheory fds(&u);
    for (int f = 0; f < 3; ++f) {
      AttrSet lhs(n), rhs(n);
      do {
        for (int a = 0; a < n; ++a) {
          if (rng.Chance(1, 3)) lhs.Set(a);
        }
      } while (!lhs.Any());
      do {
        for (int a = 0; a < n; ++a) {
          if (rng.Chance(1, 3)) rhs.Set(a);
        }
      } while (!rhs.Any());
      fds.Add(Fd{lhs, rhs});
    }
    IcSemigroupTheory sg = IcSemigroupTheory::FromFds(&u, fds.fds());
    ExprArena arena;
    std::vector<Pd> fpds = FdsToFpds(u, &arena, fds.fds());
    PdImplicationEngine alg(&arena, fpds);
    for (int q = 0; q < 10; ++q) {
      AttrSet x(n), y(n);
      do {
        for (int a = 0; a < n; ++a) {
          if (rng.Chance(1, 3)) x.Set(a);
        }
      } while (!x.Any());
      do {
        for (int a = 0; a < n; ++a) {
          if (rng.Chance(1, 3)) y.Set(a);
        }
      } while (!y.Any());
      Fd fd{x, y};
      bool by_fd = fds.Implies(fd);
      bool by_sg = sg.LeqWord(x, y);
      bool by_alg = alg.Implies(FdToFpd(u, &arena, fd));
      ASSERT_EQ(by_fd, by_sg) << fd.ToString(u);
      ASSERT_EQ(by_fd, by_alg) << fd.ToString(u);
      // Word equality X = Y is the FD pair both ways.
      bool eq_sg = sg.Equal(x, y);
      bool eq_fd = fds.Implies(Fd{x, y}) && fds.Implies(Fd{y, x});
      ASSERT_EQ(eq_sg, eq_fd);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SemigroupAgreementTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace psem
