// Tests for the duality transform: involution, the duality principle for
// identities (p <=_id q iff dual(q) <=_id dual(p)), and its interaction
// with the FPD spellings of Section 3.2.

#include <gtest/gtest.h>

#include <functional>

#include "lattice/expr.h"
#include "lattice/whitman.h"
#include "util/rng.h"

namespace psem {
namespace {

TEST(DualTest, SwapsOperators) {
  ExprArena a;
  EXPECT_EQ(a.ToString(DualExpr(&a, *a.Parse("A*B"))), "A+B");
  EXPECT_EQ(a.ToString(DualExpr(&a, *a.Parse("A*(B+C)"))), "A+B*C");
  EXPECT_EQ(DualExpr(&a, a.Attr("A")), a.Attr("A"));
}

TEST(DualTest, Involution) {
  ExprArena a;
  Rng rng(66);
  std::function<ExprId(int)> random_expr = [&](int ops) -> ExprId {
    if (ops == 0) {
      return a.Attr(std::string(1, static_cast<char>('A' + rng.Below(3))));
    }
    int left = static_cast<int>(rng.Below(static_cast<uint64_t>(ops)));
    ExprId l = random_expr(left);
    ExprId r = random_expr(ops - 1 - left);
    return rng.Chance(1, 2) ? a.Product(l, r) : a.Sum(l, r);
  };
  for (int trial = 0; trial < 40; ++trial) {
    ExprId e = random_expr(1 + trial % 6);
    EXPECT_EQ(DualExpr(&a, DualExpr(&a, e)), e);
  }
}

TEST(DualTest, DualityPrincipleForIdentities) {
  ExprArena a;
  WhitmanMemo w(&a);
  Rng rng(67);
  std::function<ExprId(int)> random_expr = [&](int ops) -> ExprId {
    if (ops == 0) {
      return a.Attr(std::string(1, static_cast<char>('A' + rng.Below(3))));
    }
    int left = static_cast<int>(rng.Below(static_cast<uint64_t>(ops)));
    ExprId l = random_expr(left);
    ExprId r = random_expr(ops - 1 - left);
    return rng.Chance(1, 2) ? a.Product(l, r) : a.Sum(l, r);
  };
  for (int trial = 0; trial < 60; ++trial) {
    ExprId p = random_expr(1 + trial % 5);
    ExprId q = random_expr(1 + (trial + 2) % 5);
    EXPECT_EQ(w.Leq(p, q), w.Leq(DualExpr(&a, q), DualExpr(&a, p)))
        << a.ToString(p) << " <= " << a.ToString(q);
  }
}

TEST(DualTest, FpdSpellingsAreDuals) {
  // X = X*Y dualizes to X = X+Y; combined with the order flip, the FPD
  // X <= Y dualizes to Y <= X read in the dual lattice — exactly why
  // X = X*Y and Y = Y+X express the same dependency (Section 3.2).
  ExprArena a;
  Pd fpd = *a.ParsePd("A <= B");
  Pd dual = DualPd(&a, fpd);
  EXPECT_EQ(a.ToString(dual), "B <= A");
  Pd eq = *a.ParsePd("A = A*B");
  Pd dual_eq = DualPd(&a, eq);
  EXPECT_EQ(a.ToString(dual_eq), "A = A+B");
}

TEST(DualTest, DistributiveInequalityDualizes) {
  // x*y + x*z <= x*(y+z) dualizes to (x+y)*(x+z) >= x+y*z — i.e. the
  // other valid distributive inequality.
  ExprArena a;
  WhitmanMemo w(&a);
  Pd ineq = *a.ParsePd("A*B + A*C <= A*(B+C)");
  ASSERT_TRUE(w.IsIdentity(ineq));
  Pd dual = DualPd(&a, ineq);
  EXPECT_TRUE(w.IsIdentity(dual));
  EXPECT_EQ(a.ToString(dual), "A+B*C <= (A+B)*(A+C)");
}

}  // namespace
}  // namespace psem
