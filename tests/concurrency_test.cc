// Concurrency tests, run under -fsanitize=thread in CI: the ThreadPool
// primitive, the banded parallel closure sweep (serial/parallel
// equivalence), concurrent const reads of a prepared engine, and the
// const-qualified WhitmanIterative decider shared across threads.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "core/implication.h"
#include "lattice/expr.h"
#include "lattice/whitman.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace psem {
namespace {

// --- ThreadPool ----------------------------------------------------------------

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  for (std::size_t n : {0u, 1u, 3u, 4u, 5u, 64u, 1000u}) {
    std::vector<std::atomic<int>> hits(n);
    pool.ParallelFor(n, [&](std::size_t, std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " i=" << i;
    }
  }
}

TEST(ThreadPoolTest, JoinIsABarrierBetweenPhases) {
  ThreadPool pool(4);
  std::vector<int> data(512, 0);
  // Phase 1 writes; phase 2 reads every element written by phase 1 —
  // any missing barrier shows up as a torn sum (and as a TSan race).
  for (int round = 1; round <= 20; ++round) {
    pool.ParallelFor(data.size(),
                     [&](std::size_t, std::size_t lo, std::size_t hi) {
                       for (std::size_t i = lo; i < hi; ++i) data[i] = round;
                     });
    std::atomic<long> sum{0};
    pool.ParallelFor(data.size(),
                     [&](std::size_t, std::size_t lo, std::size_t hi) {
                       long local = 0;
                       for (std::size_t i = lo; i < hi; ++i) local += data[i];
                       sum.fetch_add(local, std::memory_order_relaxed);
                     });
    ASSERT_EQ(sum.load(), round * static_cast<long>(data.size()));
  }
}

TEST(ThreadPoolTest, ReusableAcrossManySmallBatches) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int i = 0; i < 200; ++i) {
    pool.ParallelFor(7, [&](std::size_t, std::size_t lo, std::size_t hi) {
      total.fetch_add(static_cast<int>(hi - lo), std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 200 * 7);
}

// --- parallel closure == serial closure -----------------------------------------

ExprId RandomExpr(ExprArena* arena, Rng* rng, int num_attrs, int ops) {
  if (ops == 0) {
    return arena->Attr(
        std::string(1, static_cast<char>('A' + rng->Below(num_attrs))));
  }
  int left = static_cast<int>(rng->Below(static_cast<uint64_t>(ops)));
  ExprId l = RandomExpr(arena, rng, num_attrs, left);
  ExprId r = RandomExpr(arena, rng, num_attrs, ops - 1 - left);
  return rng->Chance(1, 2) ? arena->Product(l, r) : arena->Sum(l, r);
}

std::vector<Pd> RandomTheory(ExprArena* arena, Rng* rng, int num_attrs,
                             int num_pds, int max_ops) {
  std::vector<Pd> pds;
  for (int i = 0; i < num_pds; ++i) {
    ExprId l = RandomExpr(arena, rng, num_attrs,
                          static_cast<int>(rng->Below(max_ops + 1)));
    ExprId r = RandomExpr(arena, rng, num_attrs,
                          static_cast<int>(rng->Below(max_ops + 1)));
    pds.push_back(rng->Chance(1, 2) ? Pd::Eq(l, r) : Pd::Leq(l, r));
  }
  return pds;
}

class ParallelSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelSweepTest, ParallelClosureEqualsSerialClosure) {
  Rng rng(3000 + GetParam());
  for (int trial = 0; trial < 4; ++trial) {
    ExprArena arena;
    std::vector<Pd> e = RandomTheory(&arena, &rng, 5, 8, 4);
    PdImplicationEngine serial(&arena, e, EngineOptions{.num_threads = 1});
    PdImplicationEngine parallel(&arena, e, EngineOptions{.num_threads = 4});
    for (int q = 0; q < 10; ++q) {
      ExprId l = RandomExpr(&arena, &rng, 5, 1 + q % 4);
      ExprId r = RandomExpr(&arena, &rng, 5, 1 + (q + 1) % 4);
      Pd query = q % 2 == 0 ? Pd::Leq(l, r) : Pd::Eq(l, r);
      ASSERT_EQ(serial.Implies(query), parallel.Implies(query))
          << arena.ToString(query);
    }
    // Identical least fixpoints: same V, same arc count.
    ASSERT_EQ(serial.stats().num_vertices, parallel.stats().num_vertices);
    ASSERT_EQ(serial.stats().num_arcs, parallel.stats().num_arcs);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelSweepTest, ::testing::Range(0, 6));

TEST(ParallelSweepTest, ChainClosureAcrossThreadCounts) {
  // A0 <= ... <= A63 closes to the full upper-triangular relation; the
  // arc count is independent of the sweep schedule.
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    ExprArena arena;
    std::vector<Pd> e;
    const int n = 64;
    for (int i = 0; i + 1 < n; ++i) {
      e.push_back(Pd::Leq(arena.Attr("A" + std::to_string(i)),
                          arena.Attr("A" + std::to_string(i + 1))));
    }
    PdImplicationEngine engine(&arena, e,
                               EngineOptions{.num_threads = threads});
    EXPECT_TRUE(engine.Implies(
        Pd::Leq(arena.Attr("A0"), arena.Attr("A" + std::to_string(n - 1)))));
    EXPECT_FALSE(engine.Implies(
        Pd::Leq(arena.Attr("A" + std::to_string(n - 1)), arena.Attr("A0"))));
    // n*(n+1)/2 order arcs.
    EXPECT_EQ(engine.stats().num_arcs,
              static_cast<std::size_t>(n) * (n + 1) / 2)
        << "threads=" << threads;
  }
}

// --- concurrent const reads ------------------------------------------------------

TEST(ConcurrentReadTest, PreparedEngineServesManyReaderThreads) {
  ExprArena arena;
  std::vector<Pd> e;
  const int n = 32;
  for (int i = 0; i + 1 < n; ++i) {
    e.push_back(Pd::Leq(arena.Attr("A" + std::to_string(i)),
                        arena.Attr("A" + std::to_string(i + 1))));
  }
  PdImplicationEngine engine(&arena, e, EngineOptions{.num_threads = 4});
  std::vector<ExprId> attrs;
  for (int i = 0; i < n; ++i) attrs.push_back(arena.Attr("A" + std::to_string(i)));
  engine.Prepare(attrs);

  // LeqInClosure is const: four threads read the same closure with no
  // external synchronization.
  const PdImplicationEngine& shared = engine;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(900 + t);
      for (int k = 0; k < 5000; ++k) {
        int i = static_cast<int>(rng.Below(n));
        int j = static_cast<int>(rng.Below(n));
        bool got = shared.LeqInClosure(attrs[i], attrs[j]);
        if (got != (i <= j)) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrentReadTest, ConstWhitmanIterativeIsShareable) {
  // WhitmanIterative::Leq is const and keeps all state on the caller's
  // stack, so one decider over one const arena serves any number of
  // threads. (WhitmanMemo, by contrast, mutates its memo table and must
  // not be shared without locking — see lattice/whitman.h.)
  ExprArena arena;
  Rng setup_rng(55);
  struct Case {
    ExprId p, q;
    bool expect;
  };
  std::vector<Case> cases;
  WhitmanMemo reference(&arena);
  for (int i = 0; i < 60; ++i) {
    ExprId p = RandomExpr(&arena, &setup_rng, 3, 1 + i % 5);
    ExprId q = RandomExpr(&arena, &setup_rng, 3, 1 + (i + 1) % 5);
    cases.push_back({p, q, reference.Leq(p, q)});
  }
  const WhitmanIterative decider(&arena);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (const Case& c : cases) {
        if (decider.Leq(c.p, c.q) != c.expect) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace psem
