// Cross-module integration sweeps: the full pipeline from random PD
// theories and random fragmented databases through normalization,
// consistency (Theorem 12), materialization (Lemma 12.1), and back
// through Definition 7 satisfaction and canonical interpretations
// (Theorems 6/7). Each sweep closes a loop the paper proves as an
// equivalence; any break in the chain fails the test.

#include <gtest/gtest.h>

#include "psem.h"
#include "util/rng.h"

namespace psem {
namespace {

// Random database over attributes A0..A(k-1): a few binary fragments.
void BuildRandomDb(Database* db, Rng* rng, int num_attrs, int relations,
                   int rows, int symbols) {
  for (int r = 0; r < relations; ++r) {
    int a = static_cast<int>(rng->Below(num_attrs));
    int b = static_cast<int>(rng->Below(num_attrs));
    if (a == b) b = (a + 1) % num_attrs;
    std::size_t ri =
        db->AddRelation("R" + std::to_string(r),
                        {"A" + std::to_string(a), "A" + std::to_string(b)});
    for (int i = 0; i < rows; ++i) {
      db->relation(ri).AddRow(
          &db->symbols(),
          {"s" + std::to_string(a) + "_" + std::to_string(rng->Below(symbols)),
           "s" + std::to_string(b) + "_" +
               std::to_string(rng->Below(symbols))});
    }
  }
}

class EndToEndTest : public ::testing::TestWithParam<int> {};

TEST_P(EndToEndTest, ConsistencyMaterializationSatisfactionLoop) {
  Rng rng(31000 + GetParam());
  ExprArena arena;
  std::vector<Pd> pool = {
      *arena.ParsePd("A0 <= A1"),   *arena.ParsePd("A1 <= A2"),
      *arena.ParsePd("A2 = A0+A1"), *arena.ParsePd("A0 = A1*A2"),
      *arena.ParsePd("A3 <= A0+A2"),
  };
  int consistent_count = 0, inconsistent_count = 0;
  for (int trial = 0; trial < 12; ++trial) {
    Database db;
    BuildRandomDb(&db, &rng, /*num_attrs=*/4, /*relations=*/3, /*rows=*/3,
                  /*symbols=*/2);
    std::vector<Pd> pds;
    for (const Pd& pd : pool) {
      if (rng.Chance(1, 2)) pds.push_back(pd);
    }
    // Decide via Theorem 12.
    Database db_copy;
    {
      Status st = LoadDatabaseText(DumpDatabaseText(db), &db_copy);
      ASSERT_TRUE(st.ok());
    }
    auto report = PdConsistent(&db_copy, arena, pds);
    ASSERT_TRUE(report.ok());
    if (report->consistent) {
      ++consistent_count;
      // Lemma 12.1: materialize an explicit weak instance and verify all
      // PDs via Definition 7 (closes Theorem 7's loop).
      Database db_mat;
      ASSERT_TRUE(LoadDatabaseText(DumpDatabaseText(db), &db_mat).ok());
      auto m = MaterializeWeakInstance(&db_mat, arena, pds);
      ASSERT_TRUE(m.ok()) << m.status().ToString();
      for (const Pd& pd : pds) {
        EXPECT_TRUE(*RelationSatisfiesPd(db_mat, m->instance, arena, pd))
            << arena.ToString(pd);
      }
      // Theorem 6/7 '<=': the canonical interpretation of the weak
      // instance satisfies the database.
      if (!m->instance.empty()) {
        PartitionInterpretation interp =
            *CanonicalInterpretation(db_mat, m->instance);
        EXPECT_TRUE(*interp.SatisfiesDatabase(db_mat));
        for (const Pd& pd : pds) {
          EXPECT_TRUE(*interp.Satisfies(arena, pd));
        }
      }
    } else {
      ++inconsistent_count;
      // The materializer must agree.
      Database db_mat;
      ASSERT_TRUE(LoadDatabaseText(DumpDatabaseText(db), &db_mat).ok());
      auto m = MaterializeWeakInstance(&db_mat, arena, pds);
      EXPECT_FALSE(m.ok());
    }
  }
  // The sweep should exercise both branches.
  EXPECT_GT(consistent_count, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEndTest, ::testing::Range(0, 6));

class ImplicationSemanticsTest : public ::testing::TestWithParam<int> {};

TEST_P(ImplicationSemanticsTest, ImpliedPdsHoldInMaterializedInstances) {
  // If E |= delta (ALG) and w satisfies E (materialized), then w
  // satisfies delta — Theorem 8's |=_rel direction, end to end.
  Rng rng(32000 + GetParam());
  ExprArena arena;
  std::vector<Pd> e = {*arena.ParsePd("A0 <= A1"),
                       *arena.ParsePd("A2 = A0+A1")};
  PdImplicationEngine engine(&arena, e);
  std::vector<Pd> queries = {
      *arena.ParsePd("A0 <= A2"),      *arena.ParsePd("A1 <= A2"),
      *arena.ParsePd("A0*A1 <= A2"),   *arena.ParsePd("A2 <= A0+A1"),
      *arena.ParsePd("A0+A1 <= A2"),
  };
  for (int trial = 0; trial < 8; ++trial) {
    Database db;
    BuildRandomDb(&db, &rng, 3, 2, 3, 2);
    auto m = MaterializeWeakInstance(&db, arena, e);
    if (!m.ok()) continue;  // inconsistent input: nothing to check
    for (const Pd& q : queries) {
      if (engine.Implies(q)) {
        EXPECT_TRUE(*RelationSatisfiesPd(db, m->instance, arena, q))
            << arena.ToString(q);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImplicationSemanticsTest,
                         ::testing::Range(0, 4));

TEST(PipelineTest, CliStyleTextWorkflow) {
  // The full text-in / text-out path: load constraints and database from
  // text, decide, materialize, dump.
  ExprArena arena;
  Universe scratch;
  auto constraints = LoadConstraintsText(
      "pd Comp = Left + Right\n"
      "fd Left -> Comp\n",
      &arena, &scratch);
  ASSERT_TRUE(constraints.ok());
  EXPECT_EQ(constraints->pds.size(), 1u);
  EXPECT_EQ(constraints->fds.size(), 1u);

  Database db;
  ASSERT_TRUE(LoadDatabaseText("relation edges(Left, Right, Comp)\n"
                               "row edges l1 r1 c1\n"
                               "row edges l2 r2 c2\n",
                               &db)
                  .ok());
  std::vector<Pd> pds = constraints->pds;
  pds.push_back(FdToFpd(scratch, &arena, constraints->fds[0]));
  auto report = PdConsistent(&db, arena, pds);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->consistent);
}

}  // namespace
}  // namespace psem
