// Durability tests: the snapshot codec, the write-ahead journal, the
// tiered recovery of DurablePdEngine, and a differential crash-recovery
// sweep — random theories, a fault injected at every durable-I/O site,
// recovery, then verdict-for-verdict comparison of the recovered closure
// against a cold NaivePdImplication / cold-engine recompute.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/implication.h"
#include "core/snapshot.h"
#include "lattice/expr.h"
#include "util/durable_file.h"
#include "util/exec_context.h"
#include "util/failpoint.h"
#include "util/rng.h"

namespace psem {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/psem_snap_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    snapshot_ = dir_ + ".snapshot";
    journal_ = dir_ + ".journal";
    ::remove(snapshot_.c_str());
    ::remove(journal_.c_str());
  }
  void TearDown() override {
    FailPoints::DisarmAll();
    ::remove(snapshot_.c_str());
    ::remove(journal_.c_str());
  }

  DurabilityOptions Opts(std::size_t checkpoint_every = 2) const {
    DurabilityOptions o;
    o.snapshot_path = snapshot_;
    o.journal_path = journal_;
    o.checkpoint_every = checkpoint_every;
    return o;
  }

  std::string dir_, snapshot_, journal_;
};

std::vector<Pd> BaseTheory(ExprArena* arena) {
  return {*arena->ParsePd("A*B <= C"), *arena->ParsePd("C <= D+E"),
          *arena->ParsePd("D = A+B")};
}

// --- codec round trip ---------------------------------------------------------

TEST_F(SnapshotTest, EncodeDecodeRoundTripsClosureState) {
  ExprArena arena;
  auto base = BaseTheory(&arena);
  PdImplicationEngine engine(&arena, base);
  // Queries extend V beyond the constraint subexpressions, so the
  // snapshot must carry query-introduced vertices too.
  engine.Implies(*arena.ParsePd("A*B <= D+E"));
  engine.Implies(*arena.ParsePd("B*C <= A+E"));
  const uint64_t fp = TheoryFingerprint(arena, base);

  auto bytes = EncodeSnapshot(engine, fp);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();

  // Decode into a FRESH arena: raw ExprIds must not leak across.
  ExprArena arena2;
  auto snap = DecodeSnapshot(*bytes, &arena2);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ(snap->base_fingerprint, fp);
  EXPECT_EQ(snap->vertices.size(), engine.vertices().size());
  EXPECT_EQ(snap->constraints.size(), base.size());

  PdImplicationEngine restored(&arena2, {});
  ASSERT_TRUE(restored
                  .RestoreEngineState(snap->vertices,
                                      std::move(snap->constraints),
                                      std::move(snap->state))
                  .ok());
  EXPECT_EQ(restored.stats().num_arcs, 0u);  // stats refill on next closure
  // Every pairwise verdict matches the original engine.
  for (std::size_t i = 0; i < engine.vertices().size(); ++i) {
    for (std::size_t j = 0; j < engine.vertices().size(); ++j) {
      EXPECT_EQ(
          restored.ImpliesLeq(restored.vertices()[i], restored.vertices()[j]),
          engine.ImpliesLeq(engine.vertices()[i], engine.vertices()[j]))
          << "pair (" << i << ", " << j << ")";
    }
  }
}

TEST_F(SnapshotTest, DecodeRejectsCorruptBytes) {
  ExprArena arena;
  auto base = BaseTheory(&arena);
  PdImplicationEngine engine(&arena, base);
  engine.Implies(*arena.ParsePd("A <= B"));
  auto bytes = EncodeSnapshot(engine, TheoryFingerprint(arena, base));
  ASSERT_TRUE(bytes.ok());

  {  // truncation at every prefix length must never crash or succeed oddly
    for (std::size_t len : {std::size_t{0}, std::size_t{4}, bytes->size() / 2,
                            bytes->size() - 1}) {
      ExprArena scratch;
      auto r = DecodeSnapshot(std::string_view(*bytes).substr(0, len), &scratch);
      EXPECT_FALSE(r.ok()) << "prefix " << len;
    }
  }
  {  // every single-byte flip is caught by CRC or magic check
    for (std::size_t pos = 0; pos < bytes->size(); pos += 7) {
      std::string corrupt = *bytes;
      corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x20);
      ExprArena scratch;
      auto r = DecodeSnapshot(corrupt, &scratch);
      EXPECT_FALSE(r.ok()) << "flip at " << pos;
      EXPECT_EQ(r.status().code(), StatusCode::kDataLoss) << "flip at " << pos;
    }
  }
}

TEST_F(SnapshotTest, FingerprintDistinguishesTheories) {
  ExprArena arena;
  auto base = BaseTheory(&arena);
  auto other = BaseTheory(&arena);
  other.push_back(*arena.ParsePd("A <= E"));
  EXPECT_EQ(TheoryFingerprint(arena, base), TheoryFingerprint(arena, base));
  EXPECT_NE(TheoryFingerprint(arena, base), TheoryFingerprint(arena, other));
  EXPECT_NE(TheoryFingerprint(arena, base), TheoryFingerprint(arena, {}));
}

// --- journal ------------------------------------------------------------------

TEST_F(SnapshotTest, JournalAppendsSurviveReopen) {
  {
    auto j = Journal::Open(journal_);
    ASSERT_TRUE(j.ok()) << j.status().ToString();
    EXPECT_EQ(j->recovered().records.size(), 0u);
    ASSERT_TRUE(j->Append("A <= B").ok());
    ASSERT_TRUE(j->Append("C = D*E").ok());
  }
  auto j = Journal::Open(journal_);
  ASSERT_TRUE(j.ok());
  ASSERT_EQ(j->recovered().records.size(), 2u);
  EXPECT_EQ(j->recovered().records[0], "A <= B");
  EXPECT_EQ(j->recovered().records[1], "C = D*E");
  EXPECT_FALSE(j->recovered().tail_truncated);
}

TEST_F(SnapshotTest, JournalTornTailIsTruncatedAtLastValidRecord) {
  {
    auto j = Journal::Open(journal_);
    ASSERT_TRUE(j.ok());
    ASSERT_TRUE(j->Append("A <= B").ok());
    ASSERT_TRUE(j->Append("B <= C").ok());
  }
  // Simulate a crash mid-append: raw garbage (half a frame) at the tail.
  {
    std::FILE* f = std::fopen(journal_.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char garbage[] = "\x50\x4a\x52\x4e\xff\xff";
    std::fwrite(garbage, 1, sizeof(garbage) - 1, f);
    std::fclose(f);
  }
  auto j = Journal::Open(journal_);
  ASSERT_TRUE(j.ok()) << j.status().ToString();
  EXPECT_TRUE(j->recovered().tail_truncated);
  EXPECT_GT(j->recovered().bytes_dropped, 0u);
  ASSERT_EQ(j->recovered().records.size(), 2u);
  EXPECT_EQ(j->recovered().records[1], "B <= C");

  // The repair is physical: appends extend a valid prefix, and the next
  // open sees all three records with no tear.
  ASSERT_TRUE(j->Append("C <= D").ok());
  auto j2 = Journal::Open(journal_);
  ASSERT_TRUE(j2.ok());
  EXPECT_FALSE(j2->recovered().tail_truncated);
  ASSERT_EQ(j2->recovered().records.size(), 3u);
  EXPECT_EQ(j2->recovered().records[2], "C <= D");
}

TEST_F(SnapshotTest, JournalRejectsCorruptHeader) {
  ASSERT_TRUE(AtomicWriteFile(journal_, "NOTAJRNL").ok());
  auto j = Journal::Open(journal_);
  ASSERT_FALSE(j.ok());
  EXPECT_EQ(j.status().code(), StatusCode::kDataLoss);
}

// --- DurablePdEngine lifecycle ------------------------------------------------

TEST_F(SnapshotTest, ColdStartThenCleanRestore) {
  ExprArena arena;
  auto base = BaseTheory(&arena);
  Pd extra = *arena.ParsePd("E <= A+C");
  Pd query = *arena.ParsePd("A*B <= D+E");
  bool expected;
  {
    auto d = DurablePdEngine::Recover(&arena, base, Opts());
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    EXPECT_EQ(d->recovery().tier, RecoveryTier::kColdStart);
    ASSERT_TRUE(d->AddPd(extra, ExecContext::Unbounded()).ok());
    ASSERT_TRUE(d->Checkpoint(ExecContext::Unbounded()).ok());
    expected = d->engine().Implies(query);
  }
  // "Crash" (drop the object) and recover in a fresh arena.
  ExprArena arena2;
  auto base2 = BaseTheory(&arena2);
  auto d = DurablePdEngine::Recover(&arena2, base2, Opts());
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->recovery().tier, RecoveryTier::kCleanRestore);
  EXPECT_TRUE(d->recovery().snapshot_restored);
  EXPECT_GT(d->recovery().restored_vertices, 0u);
  // The journaled constraint is already in the snapshot: replay is a no-op.
  EXPECT_EQ(d->recovery().journal_records, 1u);
  EXPECT_EQ(d->recovery().journal_replayed_new, 0u);
  EXPECT_EQ(d->engine().Implies(*arena2.ParsePd("A*B <= D+E")), expected);
  EXPECT_EQ(d->engine().constraints().size(), base.size() + 1);
}

TEST_F(SnapshotTest, JournalAloneRecoversUncheckpointedConstraints) {
  ExprArena arena;
  auto base = BaseTheory(&arena);
  {
    DurabilityOptions opts = Opts(/*checkpoint_every=*/0);  // never snapshot
    auto d = DurablePdEngine::Recover(&arena, base, opts);
    ASSERT_TRUE(d.ok());
    ASSERT_TRUE(d->AddPd(*arena.ParsePd("E <= A"), ExecContext::Unbounded()).ok());
    ASSERT_TRUE(d->AddPd(*arena.ParsePd("C = A*D"), ExecContext::Unbounded()).ok());
  }
  ExprArena arena2;
  auto base2 = BaseTheory(&arena2);
  auto d = DurablePdEngine::Recover(&arena2, base2, Opts());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->recovery().tier, RecoveryTier::kColdStart);
  EXPECT_EQ(d->recovery().journal_replayed_new, 2u);
  EXPECT_EQ(d->engine().constraints().size(), base.size() + 2);
}

TEST_F(SnapshotTest, MismatchedBaseTheoryDegradesToColdRecompute) {
  ExprArena arena;
  auto base = BaseTheory(&arena);
  {
    auto d = DurablePdEngine::Recover(&arena, base, Opts());
    ASSERT_TRUE(d.ok());
    ASSERT_TRUE(d->AddPd(*arena.ParsePd("E <= A"), ExecContext::Unbounded()).ok());
    ASSERT_TRUE(d->Checkpoint(ExecContext::Unbounded()).ok());
  }
  // Recover under a DIFFERENT base theory: the snapshot must be rejected
  // (its closure encodes consequences of the old E) and the engine
  // rebuilt cold from the new base + journal.
  ExprArena arena2;
  std::vector<Pd> other = {*arena2.ParsePd("A <= B")};
  auto d = DurablePdEngine::Recover(&arena2, other, Opts());
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->recovery().tier, RecoveryTier::kColdRecompute);
  EXPECT_FALSE(d->recovery().snapshot_restored);
  EXPECT_NE(d->recovery().snapshot_error.find("base theory"),
            std::string::npos);
  // Journal still replays on top of the new base.
  EXPECT_EQ(d->recovery().journal_replayed_new, 1u);
  EXPECT_EQ(d->engine().constraints().size(), 2u);
}

TEST_F(SnapshotTest, RecoveryStatsReportEveryTier) {
  // Tier names are part of the CLI contract (recovery summary line).
  EXPECT_STREQ(RecoveryTierName(RecoveryTier::kColdStart), "cold-start");
  EXPECT_STREQ(RecoveryTierName(RecoveryTier::kCleanRestore),
               "clean-restore");
  EXPECT_STREQ(RecoveryTierName(RecoveryTier::kJournalTailTruncated),
               "journal-tail-truncated");
  EXPECT_STREQ(RecoveryTierName(RecoveryTier::kColdRecompute),
               "cold-recompute");
}

// --- differential crash recovery ----------------------------------------------

#define SKIP_WITHOUT_FAILPOINTS()                                     \
  if (!FailPoints::Enabled()) {                                       \
    GTEST_SKIP() << "fail points compiled out (PSEM_FAILPOINTS=OFF)"; \
  }

ExprId RandExpr(ExprArena* arena, Rng* rng, int num_attrs, int ops) {
  if (ops == 0) {
    return arena->Attr(
        std::string(1, static_cast<char>('A' + rng->Below(num_attrs))));
  }
  int left = static_cast<int>(rng->Below(static_cast<uint64_t>(ops)));
  ExprId l = RandExpr(arena, rng, num_attrs, left);
  ExprId r = RandExpr(arena, rng, num_attrs, ops - 1 - left);
  return rng->Chance(1, 2) ? arena->Product(l, r) : arena->Sum(l, r);
}

Pd RandPd(ExprArena* arena, Rng* rng) {
  ExprId l = RandExpr(arena, rng, 4, static_cast<int>(rng->Below(3)));
  ExprId r = RandExpr(arena, rng, 4, static_cast<int>(rng->Below(3)));
  return rng->Chance(1, 2) ? Pd::Eq(l, r) : Pd::Leq(l, r);
}

// One crash-recovery trial: grow a random theory through the durable
// engine with `crash_site` armed to fire once mid-stream, drop the
// engine wherever the fault left it, recover, finish the stream, and
// differential-check every vertex-pair verdict against a cold engine —
// with NaivePdImplication re-checking a sample as the ground truth.
void CrashRecoveryTrial(uint64_t seed, const char* crash_site,
                        const std::string& snapshot_path,
                        const std::string& journal_path) {
  SCOPED_TRACE(std::string("site=") + (crash_site ? crash_site : "none") +
               " seed=" + std::to_string(seed));
  Rng rng(seed);
  ::remove(snapshot_path.c_str());
  ::remove(journal_path.c_str());

  DurabilityOptions opts;
  opts.snapshot_path = snapshot_path;
  opts.journal_path = journal_path;
  opts.checkpoint_every = 2;

  ExprArena arena;
  std::vector<Pd> base = {RandPd(&arena, &rng), RandPd(&arena, &rng)};
  const int num_deltas = 6;
  std::vector<Pd> accepted;  // every constraint the durable engine ACKed

  {
    auto d = DurablePdEngine::Recover(&arena, base, opts);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    for (int i = 0; i < num_deltas; ++i) {
      if (crash_site != nullptr && i == num_deltas / 2) {
        FailPoints::Arm(crash_site, 1);
      }
      Pd pd = RandPd(&arena, &rng);
      Status st = d->AddPd(pd, ExecContext::Unbounded());
      if (st.ok()) {
        accepted.push_back(pd);
      } else {
        // A failed accept is a clean rejection: the constraint is not
        // part of E and recovery must not resurrect it... unless the
        // fault hit AFTER the journal append (fsync tear), where the
        // record may legally survive. Re-accept it below to keep the
        // reference theory unambiguous.
        Status retry = d->AddPd(pd, ExecContext::Unbounded());
        ASSERT_TRUE(retry.ok()) << retry.ToString();
        accepted.push_back(pd);
      }
      // Interleave queries so V outgrows the constraint subexpressions.
      if (i % 2 == 0) d->engine().Implies(RandPd(&arena, &rng));
    }
    FailPoints::DisarmAll();
    // Crash: the object is dropped with whatever the fault left on disk.
  }

  // Recover and finish: every acked constraint must still be in E.
  auto recovered = DurablePdEngine::Recover(&arena, base, opts);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  for (const Pd& pd : accepted) {
    bool present = false;
    for (const Pd& c : recovered->engine().constraints()) {
      if (c == pd) {
        present = true;
        break;
      }
    }
    EXPECT_TRUE(present) << "acked constraint lost across crash recovery";
  }

  // Differential closure check: cold engine over base + accepted.
  std::vector<Pd> full = base;
  full.insert(full.end(), accepted.begin(), accepted.end());
  PdImplicationEngine cold(&arena, full);
  const std::vector<ExprId> all_verts = recovered->engine().vertices();
  recovered->engine().Prepare(all_verts);
  const auto& verts = recovered->engine().vertices();
  int checked = 0;
  for (std::size_t i = 0; i < verts.size(); ++i) {
    for (std::size_t j = 0; j < verts.size(); ++j) {
      bool warm = recovered->engine().ImpliesLeq(verts[i], verts[j]);
      bool cold_v = cold.ImpliesLeq(verts[i], verts[j]);
      ASSERT_EQ(warm, cold_v) << "closure diverged at pair (" << i << ", "
                              << j << ")";
      // Sampled ground-truth re-check against the literal rule engine.
      if (++checked % 97 == 0) {
        EXPECT_EQ(warm,
                  NaivePdImplication(arena, full, Pd::Leq(verts[i], verts[j])));
      }
    }
  }

  ::remove(snapshot_path.c_str());
  ::remove(journal_path.c_str());
}

TEST_F(SnapshotTest, DifferentialCrashRecoveryAtEveryIoSite) {
  SKIP_WITHOUT_FAILPOINTS();
  const char* sites[] = {nullptr,  // control: no fault at all
                         failpoints::kIoTornWrite, failpoints::kIoShortRead,
                         failpoints::kIoBitFlip,   failpoints::kIoFsync,
                         failpoints::kIoRename};
  uint64_t seed = 7100;
  for (const char* site : sites) {
    for (int trial = 0; trial < 3; ++trial) {
      CrashRecoveryTrial(seed++, site, snapshot_, journal_);
      if (HasFatalFailure()) return;
    }
  }
}

// Corruption discovered at RECOVERY time (not accept time): the fault
// fires on the snapshot read, recovery degrades to cold recompute, and
// verdicts still match a cold engine.
TEST_F(SnapshotTest, SnapshotReadFaultsDegradeToColdRecompute) {
  SKIP_WITHOUT_FAILPOINTS();
  ExprArena arena;
  auto base = BaseTheory(&arena);
  Pd query = *arena.ParsePd("A*B <= D+E");
  bool expected;
  {
    auto d = DurablePdEngine::Recover(&arena, base, Opts());
    ASSERT_TRUE(d.ok());
    expected = d->engine().Implies(query);
    ASSERT_TRUE(d->Checkpoint(ExecContext::Unbounded()).ok());
  }
  // Recover snapshot-only (no journal path) so the one and only read of
  // the recovery is the snapshot itself — the armed fault must hit it.
  DurabilityOptions snap_only;
  snap_only.snapshot_path = snapshot_;
  for (const char* site :
       {failpoints::kIoBitFlip, failpoints::kIoShortRead}) {
    SCOPED_TRACE(site);
    ExprArena arena2;
    auto base2 = BaseTheory(&arena2);
    FailPoints::Arm(site, 1);
    auto d = DurablePdEngine::Recover(&arena2, base2, snap_only);
    FailPoints::DisarmAll();
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    EXPECT_EQ(d->recovery().tier, RecoveryTier::kColdRecompute);
    EXPECT_FALSE(d->recovery().snapshot_error.empty());
    EXPECT_EQ(d->engine().Implies(*arena2.ParsePd("A*B <= D+E")), expected);
  }
}

// A journal damaged mid-file recovers its valid prefix: point-in-time
// recovery, the same contract RocksDB's WAL default gives. Records after
// the damage are gone (they were sequenced after the corruption point);
// everything before it survives and the closure matches a cold engine
// over exactly the surviving constraints.
TEST_F(SnapshotTest, JournalReadFaultRecoversValidPrefix) {
  SKIP_WITHOUT_FAILPOINTS();
  ExprArena arena;
  auto base = BaseTheory(&arena);
  std::vector<Pd> deltas = {*arena.ParsePd("E <= A"), *arena.ParsePd("B <= C+D"),
                            *arena.ParsePd("C = C*E"), *arena.ParsePd("A <= D")};
  DurabilityOptions jrnl_only;
  jrnl_only.journal_path = journal_;
  {
    auto d = DurablePdEngine::Recover(&arena, base, jrnl_only);
    ASSERT_TRUE(d.ok());
    for (const Pd& pd : deltas) {
      ASSERT_TRUE(d->AddPd(pd, ExecContext::Unbounded()).ok());
    }
  }
  FailPoints::Arm(failpoints::kIoShortRead, 1);
  auto d = DurablePdEngine::Recover(&arena, base, jrnl_only);
  FailPoints::DisarmAll();
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  ASSERT_LE(d->recovery().journal_records, deltas.size());
  // The surviving records are a prefix of the appended sequence; unless
  // the halved read happened to land exactly on a record boundary, the
  // tear is detected and reported as the tail-truncation tier.
  const std::size_t kept = d->recovery().journal_records;
  if (kept < deltas.size()) {
    EXPECT_EQ(d->recovery().tier, RecoveryTier::kJournalTailTruncated);
    EXPECT_TRUE(d->recovery().journal_tail_truncated);
  }
  std::vector<Pd> full = base;
  full.insert(full.end(), deltas.begin(), deltas.begin() + kept);
  EXPECT_EQ(d->engine().constraints().size(), full.size());
  PdImplicationEngine cold(&arena, full);
  Pd probe = *arena.ParsePd("A*B <= D+E");
  EXPECT_EQ(d->engine().Implies(probe), cold.Implies(probe));
}

// Checkpoint failures must not fail the accept path: the journal already
// holds the record, so durability is preserved either way.
TEST_F(SnapshotTest, CheckpointFaultDoesNotFailAddPd) {
  SKIP_WITHOUT_FAILPOINTS();
  ExprArena arena;
  auto base = BaseTheory(&arena);
  auto d = DurablePdEngine::Recover(&arena, base, Opts(/*checkpoint_every=*/1));
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(d->AddPd(*arena.ParsePd("E <= A"), ExecContext::Unbounded()).ok());
  ASSERT_TRUE(d->last_checkpoint_status().ok());

  // Arm rename: the journal append succeeds (it does not rename), the
  // auto-checkpoint's atomic write fails.
  FailPoints::Arm(failpoints::kIoRename, 1);
  Status st = d->AddPd(*arena.ParsePd("B <= C+D"), ExecContext::Unbounded());
  FailPoints::DisarmAll();
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_FALSE(d->last_checkpoint_status().ok());
  EXPECT_EQ(d->last_checkpoint_status().code(), StatusCode::kIoError);

  // And the constraint survives a crash via the journal.
  ExprArena arena2;
  auto base2 = BaseTheory(&arena2);
  auto r = DurablePdEngine::Recover(&arena2, base2, Opts());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->engine().constraints().size(), base.size() + 2);
}

// --- incremental AddConstraint (engine-level) ---------------------------------

TEST_F(SnapshotTest, AddConstraintMatchesFreshEngineAndDropsCache) {
  ExprArena arena;
  auto base = BaseTheory(&arena);
  Pd query = *arena.ParsePd("E <= A+C");
  PdImplicationEngine engine(&arena, base);
  bool before = engine.Implies(query);

  // Growing E must be able to flip a cached "not implied" verdict.
  Pd extra = *arena.ParsePd("E = E*(A+C)");  // E <= A+C, FPD-style
  engine.AddConstraint(extra);
  std::vector<Pd> full = base;
  full.push_back(extra);
  PdImplicationEngine fresh(&arena, full);
  EXPECT_EQ(engine.Implies(query), fresh.Implies(query));
  EXPECT_TRUE(engine.Implies(query));
  EXPECT_FALSE(before);

  // Idempotent: re-adding changes nothing.
  engine.AddConstraint(extra);
  EXPECT_EQ(engine.constraints().size(), full.size());
}

}  // namespace
}  // namespace psem
