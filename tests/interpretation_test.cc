// Tests for PartitionInterpretation (Definitions 1-4), including a full
// executable reproduction of Figure 1: the interpretation over A, B, C
// with populations {1,2,3,4} that satisfies the database d, the FPD
// A = A*B, CAD and EAP, and whose lattice L(I) is not distributive.

#include <gtest/gtest.h>

#include "lattice/expr.h"
#include "partition/interpretation.h"
#include "partition/partition.h"
#include "relational/relation.h"

namespace psem {
namespace {

class Figure1Test : public ::testing::Test {
 protected:
  void SetUp() override {
    // Partitions of Figure 1.
    Partition pa = Partition::FromBlocks({{1}, {4}, {2, 3}});
    Partition pb = Partition::FromBlocks({{1, 4}, {2, 3}});
    Partition pc = Partition::FromBlocks({{1, 2}, {3, 4}});
    // Name blocks via the canonical labels.
    ASSERT_TRUE(interp_
                    .DefineAttribute("A", pa,
                                     {{"a", *pa.BlockOf(1)},
                                      {"a1", *pa.BlockOf(4)},
                                      {"a2", *pa.BlockOf(2)}})
                    .ok());
    ASSERT_TRUE(interp_
                    .DefineAttribute("B", pb,
                                     {{"b", *pb.BlockOf(1)},
                                      {"b1", *pb.BlockOf(2)}})
                    .ok());
    ASSERT_TRUE(interp_
                    .DefineAttribute("C", pc,
                                     {{"c", *pc.BlockOf(1)},
                                      {"c1", *pc.BlockOf(3)}})
                    .ok());
    // Database d over R[ABC] from the figure.
    std::size_t r = db_.AddRelation("R", {"A", "B", "C"});
    db_.relation(r).AddRow(&db_.symbols(), {"a", "b", "c"});
    db_.relation(r).AddRow(&db_.symbols(), {"a2", "b1", "c"});
    db_.relation(r).AddRow(&db_.symbols(), {"a2", "b1", "c1"});
    db_.relation(r).AddRow(&db_.symbols(), {"a1", "b", "c1"});
  }

  PartitionInterpretation interp_;
  Database db_;
  ExprArena arena_;
};

TEST_F(Figure1Test, SatisfiesDatabase) {
  EXPECT_TRUE(*interp_.SatisfiesDatabase(db_));
}

TEST_F(Figure1Test, TupleMeaningsAreTheExpectedSingletons) {
  const Relation& r = db_.relation(0);
  EXPECT_EQ(*interp_.TupleMeaning(db_, r, r.row(0)), (std::vector<Elem>{1}));
  EXPECT_EQ(*interp_.TupleMeaning(db_, r, r.row(1)), (std::vector<Elem>{2}));
  EXPECT_EQ(*interp_.TupleMeaning(db_, r, r.row(2)), (std::vector<Elem>{3}));
  EXPECT_EQ(*interp_.TupleMeaning(db_, r, r.row(3)), (std::vector<Elem>{4}));
}

TEST_F(Figure1Test, SatisfiesTheFpd) {
  // E = { A = A*B }: pi_A refines pi_B.
  EXPECT_TRUE(*interp_.Satisfies(arena_, *arena_.ParsePd("A = A*B")));
  EXPECT_TRUE(*interp_.Satisfies(arena_, *arena_.ParsePd("A <= B")));
  EXPECT_TRUE(*interp_.Satisfies(arena_, *arena_.ParsePd("B = B + A")));
  // But not the converse.
  EXPECT_FALSE(*interp_.Satisfies(arena_, *arena_.ParsePd("B <= A")));
}

TEST_F(Figure1Test, SatisfiesCadAndEap) {
  EXPECT_TRUE(*interp_.SatisfiesCad(db_));
  EXPECT_TRUE(interp_.SatisfiesEap());
}

TEST_F(Figure1Test, NonDistributivityWitness) {
  // B*(A+C) != (B*A) + (B*C) — the figure's witness that L(I) is not
  // distributive.
  Partition lhs = *interp_.Eval(arena_, *arena_.Parse("B*(A+C)"));
  Partition rhs = *interp_.Eval(arena_, *arena_.Parse("B*A + B*C"));
  EXPECT_FALSE(lhs == rhs);
  // Concretely: A+C is the one-block partition, so lhs = pi_B ...
  EXPECT_EQ(*interp_.Eval(arena_, *arena_.Parse("A+C")),
            Partition::OneBlock({1, 2, 3, 4}));
  EXPECT_EQ(lhs, *interp_.AtomicPartition("B"));
  // ... while B*A = pi_A and B*C is discrete, so rhs = pi_A.
  EXPECT_EQ(rhs, *interp_.AtomicPartition("A"));
}

TEST_F(Figure1Test, CadFailsIfSymbolMissingFromDatabase) {
  // Remove the tuple containing a1 (rebuild d without the last row): CAD
  // must fail because f_A(a1) is nonempty but a1 no longer appears.
  Database db2;
  std::size_t r = db2.AddRelation("R", {"A", "B", "C"});
  db2.relation(r).AddRow(&db2.symbols(), {"a", "b", "c"});
  db2.relation(r).AddRow(&db2.symbols(), {"a2", "b1", "c"});
  db2.relation(r).AddRow(&db2.symbols(), {"a2", "b1", "c1"});
  EXPECT_FALSE(*interp_.SatisfiesCad(db2));
}

TEST_F(Figure1Test, DatabaseNotSatisfiedWithBrokenNaming) {
  // An interpretation mapping x to the empty set falsifies any database
  // whose tuples mention x (the I' of Section 3.1's example).
  PartitionInterpretation broken;
  Partition pa = Partition::FromBlocks({{1}, {4}, {2, 3}});
  // 'a' no longer names any block; a fresh symbol takes its place.
  ASSERT_TRUE(broken
                  .DefineAttribute("A", pa,
                                   {{"other", *pa.BlockOf(1)},
                                    {"a1", *pa.BlockOf(4)},
                                    {"a2", *pa.BlockOf(2)}})
                  .ok());
  Partition pb = Partition::FromBlocks({{1, 4}, {2, 3}});
  ASSERT_TRUE(broken
                  .DefineAttribute("B", pb,
                                   {{"b", *pb.BlockOf(1)},
                                    {"b1", *pb.BlockOf(2)}})
                  .ok());
  Partition pc = Partition::FromBlocks({{1, 2}, {3, 4}});
  ASSERT_TRUE(broken
                  .DefineAttribute("C", pc,
                                   {{"c", *pc.BlockOf(1)},
                                    {"c1", *pc.BlockOf(3)}})
                  .ok());
  EXPECT_FALSE(*broken.SatisfiesDatabase(db_));
}

// --- Definition 1 validation -------------------------------------------------

TEST(InterpretationValidationTest, EmptyPopulationRejected) {
  PartitionInterpretation interp;
  Status st = interp.DefineAttribute("A", Partition(), {});
  EXPECT_FALSE(st.ok());
}

TEST(InterpretationValidationTest, NamingMustBeBijective) {
  PartitionInterpretation interp;
  Partition p = Partition::FromBlocks({{1}, {2}});
  // Too few names.
  EXPECT_FALSE(interp.DefineAttribute("A", p, {{"x", 0}}).ok());
  // Two names for one block.
  EXPECT_FALSE(
      interp.DefineAttribute("A", p, {{"x", 0}, {"y", 0}}).ok());
  // Out-of-range block.
  EXPECT_FALSE(
      interp.DefineAttribute("A", p, {{"x", 0}, {"y", 7}}).ok());
  // Correct.
  EXPECT_TRUE(interp.DefineAttribute("A", p, {{"x", 0}, {"y", 1}}).ok());
}

TEST(InterpretationValidationTest, NamedBlockAndSymbolRoundTrip) {
  PartitionInterpretation interp;
  Partition p = Partition::FromBlocks({{1, 2}, {3}});
  ASSERT_TRUE(interp.DefineAttribute("A", p, {{"x", 0}, {"y", 1}}).ok());
  EXPECT_EQ(*interp.NamedBlock("A", "x"), (std::vector<Elem>{1, 2}));
  EXPECT_EQ(*interp.NamedBlock("A", "ghost"), std::vector<Elem>{});
  EXPECT_EQ(*interp.SymbolOfBlock("A", 0), "x");
  EXPECT_FALSE(interp.NamedBlock("Z", "x").ok());
}

TEST(InterpretationValidationTest, EapDetectsDifferentPopulations) {
  PartitionInterpretation interp;
  ASSERT_TRUE(interp
                  .DefineAttribute("A", Partition::FromBlocks({{1, 2}}),
                                   {{"x", 0}})
                  .ok());
  ASSERT_TRUE(interp
                  .DefineAttribute("B", Partition::FromBlocks({{1, 2}, {3}}),
                                   {{"y", 0}, {"z", 1}})
                  .ok());
  EXPECT_FALSE(interp.SatisfiesEap());
}

TEST(InterpretationEvalTest, ExampleAEmployeeManager) {
  // Example a: A = employee-number, B = manager-number, A = A*B means each
  // employee block lies within one manager block, and p_A subset p_B.
  PartitionInterpretation interp;
  Partition emp = Partition::FromBlocks({{1, 2}, {3}});
  ASSERT_TRUE(interp.DefineAttribute("A", emp, {{"e13", 0}, {"e7", 1}}).ok());
  // Manager population is larger: manager 7 also manages individual 9 who
  // has no employee number.
  Partition mgr = Partition::FromBlocks({{1, 2}, {3, 9}});
  ASSERT_TRUE(interp.DefineAttribute("B", mgr, {{"m1", 0}, {"m7", 1}}).ok());
  ExprArena arena;
  EXPECT_TRUE(*interp.Satisfies(arena, *arena.ParsePd("A = A*B")));
  EXPECT_TRUE(*interp.Satisfies(arena, *arena.ParsePd("A+B = B")));
  EXPECT_FALSE(interp.SatisfiesEap());
}

TEST(InterpretationEvalTest, ExampleCDisjointPopulationsSum) {
  // Example c: cars and bicycles with disjoint populations; A = C + B.
  PartitionInterpretation interp;
  Partition cars = Partition::FromBlocks({{1}, {2, 3}});
  Partition bikes = Partition::FromBlocks({{10, 11}});
  Partition vehicles = Partition::FromBlocks({{1}, {2, 3}, {10, 11}});
  ASSERT_TRUE(interp.DefineAttribute("C", cars, {{"c1", 0}, {"c2", 1}}).ok());
  ASSERT_TRUE(interp.DefineAttribute("B", bikes, {{"b1", 0}}).ok());
  ASSERT_TRUE(interp
                  .DefineAttribute("A", vehicles,
                                   {{"v1", 0}, {"v2", 1}, {"v3", 2}})
                  .ok());
  ExprArena arena;
  EXPECT_TRUE(*interp.Satisfies(arena, *arena.ParsePd("A = C + B")));
}

TEST(InterpretationEvalTest, ExampleDCompositeObject) {
  // Example d: cars C determined by registration A and serial B: C = A*B.
  PartitionInterpretation interp;
  Partition reg = Partition::FromBlocks({{1, 2}, {3, 4}});
  Partition serial = Partition::FromBlocks({{1, 3}, {2, 4}});
  Partition car = Partition::FromBlocks({{1}, {2}, {3}, {4}});
  ASSERT_TRUE(interp.DefineAttribute("A", reg, {{"r1", 0}, {"r2", 1}}).ok());
  ASSERT_TRUE(
      interp.DefineAttribute("B", serial, {{"s1", 0}, {"s2", 1}}).ok());
  ASSERT_TRUE(interp
                  .DefineAttribute(
                      "C", car, {{"k1", 0}, {"k2", 1}, {"k3", 2}, {"k4", 3}})
                  .ok());
  ExprArena arena;
  EXPECT_TRUE(*interp.Satisfies(arena, *arena.ParsePd("C = A*B")));
  EXPECT_FALSE(*interp.Satisfies(arena, *arena.ParsePd("C = A+B")));
}

TEST(InterpretationEvalTest, UndefinedAttributeIsError) {
  PartitionInterpretation interp;
  ExprArena arena;
  auto r = interp.Eval(arena, *arena.Parse("A*B"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace psem
