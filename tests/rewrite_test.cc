// Tests for the RR rewrite system (Lemma 9.1): rewrite sequences exist
// for implied inequalities on small instances, never for non-implied
// ones (soundness cross-check against Algorithm ALG), and every step of
// every found sequence is a legal single-step rewrite.

#include <gtest/gtest.h>

#include "core/implication.h"
#include "lattice/rewrite.h"

namespace psem {
namespace {

// Checks that each consecutive pair in the sequence is one legal step.
void ValidateSequence(ExprArena* arena, const std::vector<Pd>& e,
                      const RewriteSequence& seq, ExprId from, ExprId to) {
  ASSERT_FALSE(seq.steps.empty());
  EXPECT_EQ(seq.steps.front().expr, from);
  EXPECT_EQ(seq.steps.back().expr, to);
  std::set<ExprId> seen;
  std::vector<ExprId> pool;
  for (const Pd& pd : e) {
    arena->CollectSubexprs(pd.lhs, &seen, &pool);
    arena->CollectSubexprs(pd.rhs, &seen, &pool);
  }
  arena->CollectSubexprs(from, &seen, &pool);
  arena->CollectSubexprs(to, &seen, &pool);
  for (std::size_t i = 1; i < seq.steps.size(); ++i) {
    auto options = OneStepRewrites(arena, seq.steps[i - 1].expr, e, pool,
                                   /*max_size=*/64);
    bool legal = false;
    for (const RewriteStep& o : options) {
      legal |= (o.expr == seq.steps[i].expr);
    }
    ASSERT_TRUE(legal) << "illegal step " << i << " in "
                       << RenderRewriteSequence(*arena, seq);
  }
}

TEST(RewriteTest, ProjectionIsOneStep) {
  ExprArena arena;
  ExprId from = *arena.Parse("A*B");
  ExprId to = *arena.Parse("A");
  auto seq = FindRewriteSequence(&arena, from, to, {});
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(seq->steps.size(), 2u);
  ValidateSequence(&arena, {}, *seq, from, to);
}

TEST(RewriteTest, PaddingIntoSums) {
  ExprArena arena;
  ExprId from = *arena.Parse("A");
  ExprId to = *arena.Parse("A+B");
  auto seq = FindRewriteSequence(&arena, from, to, {});
  ASSERT_TRUE(seq.ok());
  ValidateSequence(&arena, {}, *seq, from, to);
}

TEST(RewriteTest, GlbNeedsProductExpansion) {
  // A <= B, A <= C |= A <= B*C: the sequence goes through A*A.
  ExprArena arena;
  std::vector<Pd> e = {*arena.ParsePd("A <= B"), *arena.ParsePd("A <= C")};
  ExprId from = *arena.Parse("A");
  ExprId to = *arena.Parse("B*C");
  auto seq = FindRewriteSequence(&arena, from, to, e);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  ValidateSequence(&arena, e, *seq, from, to);
  bool expanded = false;
  for (const RewriteStep& s : seq->steps) {
    expanded |= (s.rule == "expand-product");
  }
  EXPECT_TRUE(expanded);
}

TEST(RewriteTest, SumLubNeedsCollapse) {
  // A <= C, B <= C |= A+B <= C via A+B -> C+B -> C+C -> C.
  ExprArena arena;
  std::vector<Pd> e = {*arena.ParsePd("A <= C"), *arena.ParsePd("B <= C")};
  ExprId from = *arena.Parse("A+B");
  ExprId to = *arena.Parse("C");
  auto seq = FindRewriteSequence(&arena, from, to, e);
  ASSERT_TRUE(seq.ok());
  ValidateSequence(&arena, e, *seq, from, to);
  bool collapsed = false;
  for (const RewriteStep& s : seq->steps) {
    collapsed |= (s.rule == "collapse-sum");
  }
  EXPECT_TRUE(collapsed);
}

TEST(RewriteTest, EquationUsedBothWays) {
  ExprArena arena;
  std::vector<Pd> e = {*arena.ParsePd("A = B")};
  auto fwd = FindRewriteSequence(&arena, *arena.Parse("A"), *arena.Parse("B"), e);
  ASSERT_TRUE(fwd.ok());
  auto bwd = FindRewriteSequence(&arena, *arena.Parse("B"), *arena.Parse("A"), e);
  ASSERT_TRUE(bwd.ok());
}

TEST(RewriteTest, LeqConstraintIsOneWay) {
  ExprArena arena;
  std::vector<Pd> e = {*arena.ParsePd("A <= B")};
  EXPECT_TRUE(
      FindRewriteSequence(&arena, *arena.Parse("A"), *arena.Parse("B"), e)
          .ok());
  auto bwd =
      FindRewriteSequence(&arena, *arena.Parse("B"), *arena.Parse("A"), e,
                          /*max_size=*/10, /*max_states=*/20000);
  EXPECT_FALSE(bwd.ok());
}

TEST(RewriteTest, AgreesWithAlgOnSmallCorpus) {
  // Lemma 9.1 both ways on a curated corpus where the BFS bounds are
  // known to suffice.
  struct Case {
    std::vector<std::string> e;
    std::string from, to;
    bool implied;
  };
  std::vector<Case> cases = {
      {{"A <= B", "B <= C"}, "A", "C", true},
      {{"A <= B"}, "A*C", "B*C", true},
      {{"C = A+B"}, "A", "C", true},
      {{"C = A+B"}, "C", "A+B", true},
      {{}, "A*(B+C)", "A", true},
      {{}, "A", "A*(B+C)", false},
      {{"A <= B"}, "B", "A", false},
      {{}, "A*B+A*C", "A*(B+C)", true},
  };
  for (const Case& tc : cases) {
    ExprArena arena;
    std::vector<Pd> e;
    for (const auto& s : tc.e) e.push_back(*arena.ParsePd(s));
    ExprId from = *arena.Parse(tc.from);
    ExprId to = *arena.Parse(tc.to);
    PdImplicationEngine engine(&arena, e);
    ASSERT_EQ(engine.ImpliesLeq(from, to), tc.implied)
        << tc.from << " <= " << tc.to;
    auto seq = FindRewriteSequence(&arena, from, to, e, /*max_size=*/16,
                                   /*max_states=*/150000);
    EXPECT_EQ(seq.ok(), tc.implied) << tc.from << " <= " << tc.to << ": "
                                    << seq.status().ToString();
    if (seq.ok()) ValidateSequence(&arena, e, *seq, from, to);
  }
}

TEST(RewriteTest, RenderShowsRules) {
  ExprArena arena;
  auto seq = FindRewriteSequence(&arena, *arena.Parse("A*B"),
                                 *arena.Parse("A"), {});
  ASSERT_TRUE(seq.ok());
  std::string text = RenderRewriteSequence(arena, *seq);
  EXPECT_NE(text.find("project"), std::string::npos);
  EXPECT_NE(text.find("A*B"), std::string::npos);
}

}  // namespace
}  // namespace psem
