// Tests for BCNF decomposition, 3NF synthesis, the lossless-join chase
// test, and dependency preservation — including randomized property
// sweeps tying them together.

#include <gtest/gtest.h>

#include "core/decompose.h"
#include "util/rng.h"

namespace psem {
namespace {

TEST(BcnfTest, ClassifiesTextbookSchemes) {
  Universe u;
  FdTheory t(&u);
  ASSERT_TRUE(t.AddParsed("A -> B").ok());
  AttrSet abc = u.MakeSet({"A", "B", "C"});
  // A -> B with key AC: violation (A is not a superkey).
  EXPECT_FALSE(IsBcnf(t, abc));
  AttrSet ab = u.MakeSet({"A", "B"});
  EXPECT_TRUE(IsBcnf(t, ab));  // A is a key of AB
  // Two-attribute schemes are always BCNF.
  EXPECT_TRUE(IsBcnf(t, u.MakeSet({"B", "C"})));
}

TEST(BcnfTest, DecomposeClassicExample) {
  // city_street_zip: CS -> Z, Z -> C. The classic non-dependency-
  // preserving BCNF case.
  Universe u;
  FdTheory t(&u);
  ASSERT_TRUE(t.AddParsed("C S -> Z").ok());
  ASSERT_TRUE(t.AddParsed("Z -> C").ok());
  AttrSet scheme = u.MakeSet({"C", "S", "Z"});
  auto parts = DecomposeBcnf(t, scheme);
  for (const AttrSet& p : parts) {
    EXPECT_TRUE(IsBcnf(t, p)) << u.SetToString(p);
  }
  EXPECT_TRUE(HasLosslessJoin(t, scheme, parts));
  // The famous caveat: CS -> Z is not preserved.
  EXPECT_FALSE(PreservesDependencies(t, parts));
}

TEST(BcnfTest, AlreadyBcnfStaysWhole) {
  Universe u;
  FdTheory t(&u);
  ASSERT_TRUE(t.AddParsed("A -> B C").ok());
  AttrSet scheme = u.MakeSet({"A", "B", "C"});
  auto parts = DecomposeBcnf(t, scheme);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], scheme);
}

TEST(LosslessJoinTest, ClassicPositiveAndNegative) {
  Universe u;
  FdTheory t(&u);
  ASSERT_TRUE(t.AddParsed("B -> C").ok());
  AttrSet scheme = u.MakeSet({"A", "B", "C"});
  // {AB, BC} with B -> C: lossless.
  EXPECT_TRUE(HasLosslessJoin(t, scheme,
                              {u.MakeSet({"A", "B"}), u.MakeSet({"B", "C"})}));
  // {AB, AC} with only B -> C: lossy.
  EXPECT_FALSE(HasLosslessJoin(t, scheme,
                               {u.MakeSet({"A", "B"}), u.MakeSet({"A", "C"})}));
  // Parts that do not cover the scheme: not lossless by definition.
  EXPECT_FALSE(HasLosslessJoin(t, scheme, {u.MakeSet({"A", "B"})}));
  // The trivial decomposition is lossless.
  EXPECT_TRUE(HasLosslessJoin(t, scheme, {scheme}));
}

TEST(DependencyPreservationTest, Classic) {
  Universe u;
  FdTheory t(&u);
  ASSERT_TRUE(t.AddParsed("A -> B").ok());
  ASSERT_TRUE(t.AddParsed("B -> C").ok());
  // {AB, BC} preserves both FDs.
  EXPECT_TRUE(
      PreservesDependencies(t, {u.MakeSet({"A", "B"}), u.MakeSet({"B", "C"})}));
  // {AB, AC} loses B -> C... does it? B -> C via projections: pi_AB gives
  // A -> B, pi_AC gives A -> C; B -> C is not recoverable.
  EXPECT_FALSE(
      PreservesDependencies(t, {u.MakeSet({"A", "B"}), u.MakeSet({"A", "C"})}));
}

TEST(DependencyPreservationTest, TransportThroughParts) {
  // The subtle case where preservation holds although no single part
  // contains the FD: A -> B with parts {AC}{CB} does NOT preserve, but
  // the textbook example A <-> C spread across parts does.
  Universe u;
  FdTheory t(&u);
  ASSERT_TRUE(t.AddParsed("A -> C").ok());
  ASSERT_TRUE(t.AddParsed("C -> A").ok());
  ASSERT_TRUE(t.AddParsed("A -> B").ok());
  // Parts {AC} and {CB}: A -> B transports via A -> C (in AC), then the
  // projection of C -> B onto CB (implied: C -> A -> B).
  EXPECT_TRUE(
      PreservesDependencies(t, {u.MakeSet({"A", "C"}), u.MakeSet({"C", "B"})}));
}

TEST(Synthesize3nfTest, ClassicExample) {
  Universe u;
  FdTheory t(&u);
  ASSERT_TRUE(t.AddParsed("A -> B").ok());
  ASSERT_TRUE(t.AddParsed("B -> C").ok());
  AttrSet scheme = u.MakeSet({"A", "B", "C"});
  auto parts = Synthesize3nf(t, scheme);
  EXPECT_TRUE(HasLosslessJoin(t, scheme, parts));
  EXPECT_TRUE(PreservesDependencies(t, parts));
  // Schemes: AB and BC; A is a key and AB contains it.
  EXPECT_EQ(parts.size(), 2u);
}

TEST(Synthesize3nfTest, AddsKeySchemeWhenNeeded) {
  // A -> B over ABC: groups give AB only; key AC must be added.
  Universe u;
  FdTheory t(&u);
  ASSERT_TRUE(t.AddParsed("A -> B").ok());
  AttrSet scheme = u.MakeSet({"A", "B", "C"});
  auto parts = Synthesize3nf(t, scheme);
  EXPECT_TRUE(HasLosslessJoin(t, scheme, parts));
  EXPECT_TRUE(PreservesDependencies(t, parts));
  bool has_key_scheme = false;
  for (const AttrSet& p : parts) {
    if (u.MakeSet({"A", "C"}).IsSubsetOf(p)) has_key_scheme = true;
  }
  EXPECT_TRUE(has_key_scheme);
}

class DecomposePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DecomposePropertyTest, BcnfDecompositionsAreBcnfAndLossless) {
  Rng rng(8800 + GetParam());
  const int n = 5;
  for (int trial = 0; trial < 10; ++trial) {
    Universe u;
    for (int i = 0; i < n; ++i) u.Intern(std::string(1, 'A' + i));
    FdTheory t(&u);
    for (int f = 0; f < 3; ++f) {
      AttrSet lhs(n), rhs(n);
      lhs.Set(rng.Below(n));
      if (rng.Chance(1, 2)) lhs.Set(rng.Below(n));
      rhs.Set(rng.Below(n));
      t.Add(Fd{lhs, rhs});
    }
    AttrSet scheme(n);
    scheme.SetAll();
    auto parts = DecomposeBcnf(t, scheme);
    ASSERT_FALSE(parts.empty());
    AttrSet covered(n);
    for (const AttrSet& p : parts) {
      EXPECT_TRUE(IsBcnf(t, p)) << u.SetToString(p);
      covered.UnionWith(p);
    }
    EXPECT_EQ(covered, scheme);  // attribute preservation
    EXPECT_TRUE(HasLosslessJoin(t, scheme, parts));
  }
}

TEST_P(DecomposePropertyTest, ThreeNfSynthesisLosslessAndPreserving) {
  Rng rng(9900 + GetParam());
  const int n = 5;
  for (int trial = 0; trial < 10; ++trial) {
    Universe u;
    for (int i = 0; i < n; ++i) u.Intern(std::string(1, 'A' + i));
    FdTheory t(&u);
    for (int f = 0; f < 3; ++f) {
      AttrSet lhs(n), rhs(n);
      lhs.Set(rng.Below(n));
      if (rng.Chance(1, 2)) lhs.Set(rng.Below(n));
      rhs.Set(rng.Below(n));
      t.Add(Fd{lhs, rhs});
    }
    AttrSet scheme(n);
    scheme.SetAll();
    auto parts = Synthesize3nf(t, scheme);
    ASSERT_FALSE(parts.empty());
    EXPECT_TRUE(PreservesDependencies(t, parts));
    EXPECT_TRUE(HasLosslessJoin(t, scheme, parts));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecomposePropertyTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace psem
