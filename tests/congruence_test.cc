// Tests for congruence closure (the <-->_E of Section 5.1, step III) and
// the EAP extension homomorphism (Theorem 7's proof device).

#include <gtest/gtest.h>

#include "core/implication.h"
#include "lattice/congruence.h"
#include "partition/canonical.h"
#include "util/rng.h"

namespace psem {
namespace {

TEST(CongruenceTest, BasicMergeAndQuery) {
  ExprArena a;
  CongruenceClosure cc(&a);
  ExprId x = a.Attr("A"), y = a.Attr("B");
  EXPECT_FALSE(cc.Equivalent(x, y));
  cc.AddEquation(x, y);
  EXPECT_TRUE(cc.Equivalent(x, y));
}

TEST(CongruenceTest, UpwardPropagation) {
  ExprArena a;
  ExprId ac = *a.Parse("A*C");
  ExprId bc = *a.Parse("B*C");
  CongruenceClosure cc(&a);
  cc.AddEquation(a.Attr("A"), a.Attr("B"));
  // A ~ B forces A*C ~ B*C (congruence), even though the parents were
  // registered before the merge.
  EXPECT_TRUE(cc.Equivalent(ac, bc));
  // But NOT A*C ~ C*A: no commutativity without the lattice axioms.
  EXPECT_FALSE(cc.Equivalent(ac, *a.Parse("C*A")));
  // And operators stay distinct.
  EXPECT_FALSE(cc.Equivalent(*a.Parse("A*C"), *a.Parse("A+C")));
}

TEST(CongruenceTest, TransitiveChains) {
  ExprArena a;
  CongruenceClosure cc(&a);
  cc.AddEquation(a.Attr("A"), a.Attr("B"));
  cc.AddEquation(a.Attr("B"), a.Attr("C"));
  EXPECT_TRUE(cc.Equivalent(a.Attr("A"), a.Attr("C")));
  EXPECT_TRUE(cc.Equivalent(*a.Parse("A+D"), *a.Parse("C+D")));
}

TEST(CongruenceTest, NestedPropagation) {
  ExprArena a;
  ExprId deep1 = *a.Parse("(A*B)+(C*(A*B))");
  ExprId deep2 = *a.Parse("(X)+(C*X)");
  CongruenceClosure cc(&a);
  cc.AddEquation(*a.Parse("A*B"), a.Attr("X"));
  EXPECT_TRUE(cc.Equivalent(deep1, deep2));
}

TEST(CongruenceTest, NumClassesShrinks) {
  ExprArena a;
  CongruenceClosure cc(&a);
  ExprId x = a.Attr("A"), y = a.Attr("B"), z = a.Attr("C");
  (void)cc.Equivalent(x, y);
  (void)cc.Equivalent(y, z);
  std::size_t before = cc.NumClasses();
  cc.AddEquation(x, y);
  EXPECT_LT(cc.NumClasses(), before);
}

TEST(CongruenceTest, SubsumedByFullImplication) {
  // <-->_E implies =_E (never conversely): every congruence-equivalent
  // pair is ALG-equivalent; commutative pairs are ALG- but not
  // congruence-equivalent.
  Rng rng(41000);
  for (int trial = 0; trial < 10; ++trial) {
    ExprArena a;
    std::vector<Pd> e;
    for (int i = 0; i < 2; ++i) {
      std::string lhs(1, static_cast<char>('A' + rng.Below(3)));
      std::string rhs(1, static_cast<char>('A' + rng.Below(3)));
      e.push_back(Pd::Eq(a.Attr(lhs), a.Attr(rhs)));
    }
    CongruenceClosure cc(&a);
    for (const Pd& pd : e) cc.AddEquation(pd.lhs, pd.rhs);
    PdImplicationEngine engine(&a, e);
    for (const char* t1 : {"A*B", "B+C", "A*(B+C)", "A", "C*C"}) {
      for (const char* t2 : {"B*A", "A*B", "C+B", "B", "A*(B+C)"}) {
        ExprId x = *a.Parse(t1);
        ExprId y = *a.Parse(t2);
        if (cc.Equivalent(x, y)) {
          EXPECT_TRUE(engine.Implies(Pd::Eq(x, y)))
              << t1 << " ~ " << t2;
        }
      }
    }
  }
  // The strictness direction.
  ExprArena a;
  CongruenceClosure cc(&a);
  PdImplicationEngine engine(&a, {});
  ExprId ab = *a.Parse("A*B");
  ExprId ba = *a.Parse("B*A");
  EXPECT_TRUE(engine.Implies(Pd::Eq(ab, ba)));
  EXPECT_FALSE(cc.Equivalent(ab, ba));
}

// --- EAP extension ------------------------------------------------------------

TEST(EapExtensionTest, ProducesEapAndPreservesBlocks) {
  PartitionInterpretation interp;
  Partition pa = Partition::FromBlocks({{1, 2}});
  ASSERT_TRUE(interp.DefineAttribute("A", pa, {{"x", 0}}).ok());
  Partition pb = Partition::FromBlocks({{2, 3}, {4}});
  ASSERT_TRUE(interp
                  .DefineAttribute("B", pb,
                                   {{"y", *pb.BlockOf(2)},
                                    {"z", *pb.BlockOf(4)}})
                  .ok());
  ASSERT_FALSE(interp.SatisfiesEap());
  PartitionInterpretation ext = *EapExtension(interp);
  EXPECT_TRUE(ext.SatisfiesEap());
  // Original block of A survives; 3 and 4 became singletons of A.
  EXPECT_EQ(*ext.NamedBlock("A", "x"), (std::vector<Elem>{1, 2}));
  Partition ea = *ext.AtomicPartition("A");
  EXPECT_EQ(ea.population(), (std::vector<Elem>{1, 2, 3, 4}));
  EXPECT_EQ(*ea.BlockOf(3), *ea.BlockOf(3));
  EXPECT_NE(*ea.BlockOf(3), *ea.BlockOf(4));
}

TEST(EapExtensionTest, HomomorphismPreservesSatisfiedPds) {
  // Theorem 7's proof: L(I') is a homomorphic image of L(I), so every PD
  // satisfied by I is satisfied by its EAP extension.
  Rng rng(42000);
  ExprArena arena;
  std::vector<Pd> pds = {
      *arena.ParsePd("A <= B"),    *arena.ParsePd("B <= A"),
      *arena.ParsePd("C = A*B"),   *arena.ParsePd("C = A+B"),
      *arena.ParsePd("C <= A+B"),  *arena.ParsePd("A*B = A*C"),
  };
  int preserved_checks = 0;
  for (int trial = 0; trial < 25; ++trial) {
    PartitionInterpretation interp;
    const char* names[] = {"A", "B", "C"};
    for (const char* name : names) {
      std::vector<Elem> pop;
      for (Elem e = 0; e < 6; ++e) {
        if (rng.Chance(2, 3)) pop.push_back(e);
      }
      if (pop.empty()) pop.push_back(0);
      std::vector<uint32_t> labels(pop.size());
      for (auto& l : labels) l = static_cast<uint32_t>(rng.Below(3));
      Partition p = Partition::FromLabels(pop, labels);
      std::unordered_map<std::string, uint32_t> naming;
      for (uint32_t b = 0; b < p.num_blocks(); ++b) {
        naming[std::string(name) + std::to_string(b)] = b;
      }
      ASSERT_TRUE(interp.DefineAttribute(name, p, naming).ok());
    }
    PartitionInterpretation ext = *EapExtension(interp);
    ASSERT_TRUE(ext.SatisfiesEap());
    for (const Pd& pd : pds) {
      if (*interp.Satisfies(arena, pd)) {
        EXPECT_TRUE(*ext.Satisfies(arena, pd)) << arena.ToString(pd);
        ++preserved_checks;
      }
    }
  }
  EXPECT_GT(preserved_checks, 0);
}

}  // namespace
}  // namespace psem
