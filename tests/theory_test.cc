// Integration tests for the PdTheory facade and the FPD bridge: the
// user-facing workflow of building a theory, asking implication,
// equivalence, identity, and relation-satisfaction questions.

#include <gtest/gtest.h>

#include "core/fpd.h"
#include "core/proof.h"
#include "core/theory.h"
#include "relational/dependency.h"

namespace psem {
namespace {

TEST(PdTheoryTest, EndToEndWorkflow) {
  PdTheory t;
  ASSERT_TRUE(t.AddParsed("A = A*B").ok());   // A -> B
  ASSERT_TRUE(t.AddParsed("B <= C").ok());    // B -> C
  ASSERT_TRUE(t.AddParsed("D = B+C").ok());   // D is the B/C connectivity
  EXPECT_TRUE(*t.ImpliesParsed("A <= C"));
  EXPECT_TRUE(*t.ImpliesParsed("B <= D"));
  EXPECT_TRUE(*t.ImpliesParsed("A <= D"));
  EXPECT_FALSE(*t.ImpliesParsed("D <= A"));
  EXPECT_FALSE(t.ImpliesParsed("garbage !").ok());
}

TEST(PdTheoryTest, AddInvalidatesEngine) {
  PdTheory t;
  ASSERT_TRUE(t.AddParsed("A <= B").ok());
  EXPECT_FALSE(*t.ImpliesParsed("A <= C"));
  ASSERT_TRUE(t.AddParsed("B <= C").ok());
  EXPECT_TRUE(*t.ImpliesParsed("A <= C"));
}

TEST(PdTheoryTest, EquivalentPds) {
  PdTheory t;
  Pd a = *t.arena().ParsePd("X = X*Y");
  Pd b = *t.arena().ParsePd("Y = Y+X");
  Pd c = *t.arena().ParsePd("X <= Y");
  EXPECT_TRUE(t.Equivalent(a, b));
  EXPECT_TRUE(t.Equivalent(b, c));
  Pd d = *t.arena().ParsePd("Y <= X");
  EXPECT_FALSE(t.Equivalent(a, d));
  // Equivalence is relative to the theory: with Y <= X added, X <= Y and
  // X = Y become equivalent.
  ASSERT_TRUE(t.AddParsed("Y <= X").ok());
  Pd e = *t.arena().ParsePd("X = Y");
  EXPECT_TRUE(t.Equivalent(c, e));
}

TEST(PdTheoryTest, IsIdentity) {
  PdTheory t;
  EXPECT_TRUE(t.IsIdentity(*t.arena().ParsePd("A*(A+B) = A")));
  EXPECT_TRUE(t.IsIdentity(*t.arena().ParsePd("A*B <= A")));
  EXPECT_FALSE(t.IsIdentity(*t.arena().ParsePd("A = B")));
  // IsIdentity ignores the theory (it is the E = {} fragment).
  ASSERT_TRUE(t.AddParsed("A = B").ok());
  EXPECT_FALSE(t.IsIdentity(*t.arena().ParsePd("A = B")));
  EXPECT_TRUE(*t.ImpliesParsed("A = B"));
}

TEST(PdTheoryTest, SatisfiedByRelation) {
  PdTheory t;
  ASSERT_TRUE(t.AddParsed("A <= B").ok());
  Database db;
  std::size_t ri = db.AddRelation("R", {"A", "B"});
  Relation& r = db.relation(ri);
  r.AddRow(&db.symbols(), {"a1", "b1"});
  r.AddRow(&db.symbols(), {"a2", "b1"});
  EXPECT_TRUE(*t.SatisfiedBy(db, r));
  r.AddRow(&db.symbols(), {"a1", "b2"});
  EXPECT_FALSE(*t.SatisfiedBy(db, r));
}

TEST(PdTheoryTest, ImpliedPdsHoldInSatisfyingRelations) {
  // Soundness at the facade level: every relation satisfying E satisfies
  // all implied PDs (Theorem 8 d).
  PdTheory t;
  ASSERT_TRUE(t.AddParsed("C = A+B").ok());
  Database db;
  std::size_t ri = db.AddRelation("R", {"A", "B", "C"});
  Relation& r = db.relation(ri);
  r.AddRow(&db.symbols(), {"a1", "b1", "c1"});
  r.AddRow(&db.symbols(), {"a1", "b2", "c1"});
  r.AddRow(&db.symbols(), {"a2", "b3", "c2"});
  ASSERT_TRUE(*t.SatisfiedBy(db, r));
  for (const char* q : {"A <= C", "B <= C", "C <= A+B", "A*B <= C"}) {
    Pd pd = *t.arena().ParsePd(q);
    ASSERT_TRUE(t.Implies(pd)) << q;
    EXPECT_TRUE(*RelationSatisfiesPd(db, r, t.arena(), pd)) << q;
  }
}

TEST(FpdBridgeTest, SpellingsRoundTrip) {
  Universe u;
  ExprArena arena;
  Fd fd = *Fd::Parse(&u, "A B -> C");
  auto spellings = FpdSpellings(u, &arena, fd);
  ASSERT_EQ(spellings.size(), 3u);
  EXPECT_EQ(arena.ToString(spellings[0]), "A*B = A*B*C");
  EXPECT_EQ(arena.ToString(spellings[1]), "C = C+A*B");
  EXPECT_EQ(arena.ToString(spellings[2]), "A*B <= C");
}

TEST(FpdBridgeTest, FpdToFdRecognizesForms) {
  Universe u;
  ExprArena arena;
  // X <= Y form. (Attribute print order follows universe interning order.)
  u.Intern("A");
  u.Intern("B");
  u.Intern("C");
  auto fd1 = FpdToFd(arena, &u, *arena.ParsePd("A*B <= C"));
  ASSERT_TRUE(fd1.has_value());
  EXPECT_EQ(fd1->ToString(u), "A B -> C");
  // X = X*Y form.
  auto fd2 = FpdToFd(arena, &u, *arena.ParsePd("A = A*C"));
  ASSERT_TRUE(fd2.has_value());
  EXPECT_EQ(fd2->ToString(u), "A -> C");
  // Not FPDs.
  EXPECT_FALSE(FpdToFd(arena, &u, *arena.ParsePd("A = B+C")).has_value());
  EXPECT_FALSE(FpdToFd(arena, &u, *arena.ParsePd("A <= B+C")).has_value());
  EXPECT_FALSE(FpdToFd(arena, &u, *arena.ParsePd("A = B")).has_value());
}

TEST(FpdBridgeTest, FdToFpdAndBack) {
  Universe u;
  ExprArena arena;
  Fd fd = *Fd::Parse(&u, "A C -> B D");
  Pd pd = FdToFpd(u, &arena, fd);
  auto back = FpdToFd(arena, &u, pd);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->lhs, fd.lhs);
  EXPECT_EQ(back->rhs, fd.rhs);
}

TEST(PdTheoryTest, ExplainProducesValidProof) {
  PdTheory t;
  ASSERT_TRUE(t.AddParsed("A <= B").ok());
  ASSERT_TRUE(t.AddParsed("B <= C").ok());
  Pd query = *t.arena().ParsePd("A <= C");
  auto proof = t.Explain(query);
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(ValidateProof(t.arena(), t.pds(), *proof).ok());
  auto text = t.ExplainText("A <= C");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("transitivity"), std::string::npos);
  EXPECT_FALSE(t.Explain(*t.arena().ParsePd("C <= A")).ok());
}

TEST(PdTheoryTest, FindCounterexampleAgreesWithImplies) {
  PdTheory t;
  ASSERT_TRUE(t.AddParsed("A <= B").ok());
  Pd implied = *t.arena().ParsePd("A*C <= B");
  Pd not_implied = *t.arena().ParsePd("B <= A");
  EXPECT_TRUE(t.Implies(implied));
  EXPECT_FALSE(t.FindCounterexample(implied).has_value());
  EXPECT_FALSE(t.Implies(not_implied));
  auto model = t.FindCounterexample(not_implied);
  ASSERT_TRUE(model.has_value());
  EXPECT_FALSE(*model->interpretation.Satisfies(t.arena(), not_implied));
}

}  // namespace
}  // namespace psem
