// Tests for the bounded model finder: countermodels exist exactly for
// non-implied PDs (on the small instances where Pi_<=4 suffices), found
// models really satisfy E and violate the query, and the satisfiability
// variant behaves.

#include <gtest/gtest.h>

#include "core/implication.h"
#include "core/model_finder.h"
#include "util/rng.h"

namespace psem {
namespace {

TEST(ModelFinderTest, FindsCounterexampleToConverseFpd) {
  ExprArena arena;
  std::vector<Pd> e = {*arena.ParsePd("A <= B")};
  Pd query = *arena.ParsePd("B <= A");
  auto model = FindCounterModel(arena, e, query);
  ASSERT_TRUE(model.has_value());
  EXPECT_GE(model->population_size, 2u);
  EXPECT_TRUE(*model->interpretation.Satisfies(arena, e[0]));
  EXPECT_FALSE(*model->interpretation.Satisfies(arena, query));
  EXPECT_TRUE(model->interpretation.SatisfiesEap());
}

TEST(ModelFinderTest, NoCounterexampleForImpliedPd) {
  ExprArena arena;
  std::vector<Pd> e = {*arena.ParsePd("A <= B"), *arena.ParsePd("B <= C")};
  EXPECT_FALSE(
      FindCounterModel(arena, e, *arena.ParsePd("A <= C")).has_value());
  EXPECT_FALSE(
      FindCounterModel(arena, {}, *arena.ParsePd("A*(A+B) = A")).has_value());
}

TEST(ModelFinderTest, DistributivityCounterexampleNeedsPopulationFour) {
  // A*(B+C) <= A*B + A*C fails first in partitions of a 4-set (Pi_3 = M3
  // also violates distributivity, but as a PARTITION lattice the witness
  // works there too — assert only that some countermodel <= 4 exists and
  // genuinely violates).
  ExprArena arena;
  Pd query = *arena.ParsePd("A*(B+C) <= A*B + A*C");
  auto model = FindCounterModel(arena, {}, query);
  ASSERT_TRUE(model.has_value());
  EXPECT_FALSE(*model->interpretation.Satisfies(arena, query));
  EXPECT_LE(model->population_size, 4u);
}

TEST(ModelFinderTest, ConnectivityPdCounterexample) {
  ExprArena arena;
  std::vector<Pd> e = {*arena.ParsePd("C = A+B")};
  auto model = FindCounterModel(arena, e, *arena.ParsePd("C <= A"));
  ASSERT_TRUE(model.has_value());
  EXPECT_TRUE(*model->interpretation.Satisfies(arena, e[0]));
}

TEST(ModelFinderTest, SatisfiabilityWitness) {
  ExprArena arena;
  std::vector<Pd> e = {*arena.ParsePd("A <= B"), *arena.ParsePd("C = A+B")};
  auto model = FindModel(arena, e);
  ASSERT_TRUE(model.has_value());
  for (const Pd& pd : e) {
    EXPECT_TRUE(*model->interpretation.Satisfies(arena, pd));
  }
}

TEST(ModelFinderTest, EveryPdTheoryHasATrivialModel) {
  // Population 1 collapses everything: any E is satisfiable there — the
  // finder must succeed with k = 1 for arbitrary equations.
  ExprArena arena;
  std::vector<Pd> e = {*arena.ParsePd("A = B"), *arena.ParsePd("A = B+C"),
                       *arena.ParsePd("C = A*B")};
  auto model = FindModel(arena, e, /*max_population=*/1);
  ASSERT_TRUE(model.has_value());
  EXPECT_EQ(model->population_size, 1u);
}

// Agreement sweep: finder verdict vs Algorithm ALG on random small
// inputs. A countermodel must never exist for implied queries; for
// non-implied ones we *expect* small witnesses most of the time but only
// assert soundness (no false countermodels) plus coverage bookkeeping.
class ModelFinderSweep : public ::testing::TestWithParam<int> {};

ExprId RandomExpr(ExprArena* arena, Rng* rng, int num_attrs, int ops) {
  if (ops == 0) {
    return arena->Attr(
        std::string(1, static_cast<char>('A' + rng->Below(num_attrs))));
  }
  int left = static_cast<int>(rng->Below(static_cast<uint64_t>(ops)));
  ExprId l = RandomExpr(arena, rng, num_attrs, left);
  ExprId r = RandomExpr(arena, rng, num_attrs, ops - 1 - left);
  return rng->Chance(1, 2) ? arena->Product(l, r) : arena->Sum(l, r);
}

TEST_P(ModelFinderSweep, SoundAgainstAlg) {
  Rng rng(9500 + GetParam());
  int found = 0, not_implied = 0;
  for (int trial = 0; trial < 6; ++trial) {
    ExprArena arena;
    std::vector<Pd> e;
    for (int i = 0; i < 1 + trial % 2; ++i) {
      e.push_back(Pd::Leq(RandomExpr(&arena, &rng, 3, 1),
                          RandomExpr(&arena, &rng, 3, 1)));
    }
    PdImplicationEngine engine(&arena, e);
    for (int q = 0; q < 3; ++q) {
      Pd query = Pd::Leq(RandomExpr(&arena, &rng, 3, 1 + q % 2),
                         RandomExpr(&arena, &rng, 3, (q + 1) % 2 + 1));
      bool implied = engine.Implies(query);
      auto model = FindCounterModel(arena, e, query, /*max_population=*/3);
      if (implied) {
        ASSERT_FALSE(model.has_value()) << arena.ToString(query);
      } else {
        ++not_implied;
        if (model.has_value()) {
          ++found;
          for (const Pd& pd : e) {
            ASSERT_TRUE(*model->interpretation.Satisfies(arena, pd));
          }
          ASSERT_FALSE(*model->interpretation.Satisfies(arena, query));
        }
      }
    }
  }
  // Most non-implications should be witnessed within Pi_<=3.
  if (not_implied > 0) EXPECT_GT(found, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelFinderSweep, ::testing::Range(0, 4));

}  // namespace
}  // namespace psem
