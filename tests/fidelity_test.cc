#include <functional>
// Paper-fidelity tests: the remaining textual claims of Sections 3-4 that
// are not covered by a dedicated module test — Theorem 2's
// characterization of FPD satisfaction, the L(I(R(I))) = L(I) remark
// under EAP, and the Theorem 1 factorization of Definition 7 through
// L(I(r)).

#include <gtest/gtest.h>

#include "lattice/expr.h"
#include "lattice/whitman.h"
#include "partition/canonical.h"
#include "partition/partition_lattice.h"
#include "util/rng.h"

namespace psem {
namespace {

Partition RandomPartition(Rng* rng, const std::vector<Elem>& population,
                          uint32_t max_blocks) {
  std::vector<uint32_t> labels(population.size());
  for (auto& l : labels) l = static_cast<uint32_t>(rng->Below(max_blocks));
  return Partition::FromLabels(population, labels);
}

// Direct transcription of Theorem 2's two conditions.
bool Theorem2Conditions(const Partition& x, const Partition& y) {
  // 2. p subset p'.
  for (Elem e : x.population()) {
    if (!y.BlockOf(e).has_value()) return false;
  }
  // 1. every block of x inside some block of y.
  for (const auto& block : x.Blocks()) {
    auto label = y.BlockOf(block[0]);
    for (Elem e : block) {
      if (y.BlockOf(e) != label) return false;
    }
  }
  return true;
}

TEST(Theorem2Test, FpdSatisfactionEqualsBlockAndPopulationContainment) {
  Rng rng(12100);
  ExprArena arena;
  Pd fpd = *arena.ParsePd("X = X*Y");
  for (int trial = 0; trial < 60; ++trial) {
    // Random, possibly different populations.
    auto random_pop = [&]() {
      std::vector<Elem> pop;
      for (Elem e = 0; e < 7; ++e) {
        if (rng.Chance(2, 3)) pop.push_back(e);
      }
      if (pop.empty()) pop.push_back(0);
      return pop;
    };
    Partition px = RandomPartition(&rng, random_pop(), 3);
    Partition py = RandomPartition(&rng, random_pop(), 3);
    PartitionInterpretation interp;
    std::unordered_map<std::string, uint32_t> naming_x, naming_y;
    for (uint32_t b = 0; b < px.num_blocks(); ++b) {
      naming_x["x" + std::to_string(b)] = b;
    }
    for (uint32_t b = 0; b < py.num_blocks(); ++b) {
      naming_y["y" + std::to_string(b)] = b;
    }
    ASSERT_TRUE(interp.DefineAttribute("X", px, naming_x).ok());
    ASSERT_TRUE(interp.DefineAttribute("Y", py, naming_y).ok());
    EXPECT_EQ(*interp.Satisfies(arena, fpd), Theorem2Conditions(px, py));
    // And the dual spelling agrees (Section 3.2).
    Pd dual = *arena.ParsePd("Y = Y+X");
    EXPECT_EQ(*interp.Satisfies(arena, dual), Theorem2Conditions(px, py));
  }
}

TEST(Section41Test, LatticeOfRoundTripEqualsOriginalUnderEap) {
  // "if EAP holds in I then L(I(R(I))) = L(I)" — as lattices with the
  // same attribute constants.
  Rng rng(12200);
  for (int trial = 0; trial < 12; ++trial) {
    std::vector<Elem> pop = {0, 1, 2, 3, 4};
    PartitionInterpretation interp;
    const char* names[] = {"A", "B", "C"};
    for (const char* name : names) {
      Partition p = RandomPartition(&rng, pop, 3);
      std::unordered_map<std::string, uint32_t> naming;
      for (uint32_t b = 0; b < p.num_blocks(); ++b) {
        naming[std::string(name) + std::to_string(b)] = b;
      }
      ASSERT_TRUE(interp.DefineAttribute(name, p, naming).ok());
    }
    ASSERT_TRUE(interp.SatisfiesEap());

    Database db;
    Relation r = *CanonicalRelation(interp, &db, "w");
    PartitionInterpretation round = *CanonicalInterpretation(db, r);

    PartitionClosure l1 = *InterpretationLattice(interp);
    PartitionClosure l2 = *InterpretationLattice(round);
    EXPECT_TRUE(l1.lattice.IsomorphicTo(l2.lattice));
    // Stronger: they satisfy the same PDs over A, B, C.
    ExprArena arena;
    for (const char* pd_text :
         {"A <= B", "B <= C", "A = B*C", "A = B+C", "C <= A+B",
          "A*(B+C) = A*B+A*C"}) {
      Pd pd = *arena.ParsePd(pd_text);
      EXPECT_EQ(*interp.Satisfies(arena, pd), *round.Satisfies(arena, pd))
          << pd_text << " (trial " << trial << ")";
    }
  }
}

TEST(Theorem1Test, RelationSatisfactionFactorsThroughLatticeOfCanonical) {
  // r |= pd (Definition 7) iff L(I(r)) |= pd with attribute constants —
  // the Theorem 1 equivalence driving Lemma 8.1.
  Rng rng(12300);
  ExprArena arena;
  std::vector<Pd> pds = {
      *arena.ParsePd("A <= B"),      *arena.ParsePd("C = A*B"),
      *arena.ParsePd("C = A+B"),     *arena.ParsePd("C <= A+B"),
      *arena.ParsePd("A+B = A+C"),   *arena.ParsePd("B*(A+C) = B*A+B*C"),
  };
  for (int trial = 0; trial < 20; ++trial) {
    Database db;
    std::size_t ri = db.AddRelation("R", {"A", "B", "C"});
    Relation& r = db.relation(ri);
    int rows = 1 + static_cast<int>(rng.Below(6));
    for (int i = 0; i < rows; ++i) {
      r.AddRow(&db.symbols(), {"a" + std::to_string(rng.Below(3)),
                               "b" + std::to_string(rng.Below(3)),
                               "c" + std::to_string(rng.Below(3))});
    }
    PartitionInterpretation interp = *CanonicalInterpretation(db, r);
    PartitionClosure closure = *InterpretationLattice(interp);
    auto asg = closure.AssignmentFor(arena);
    for (const Pd& pd : pds) {
      bool by_def7 = *RelationSatisfiesPd(db, r, arena, pd);
      bool by_lattice = *closure.lattice.Satisfies(arena, pd, asg);
      EXPECT_EQ(by_def7, by_lattice) << arena.ToString(pd);
    }
  }
}

TEST(WhitmanIterativeSpaceTest, PeakStackBoundedByTreeDepthSum) {
  // The storage-free decider's auxiliary space is one frame per live
  // recursion level; the recursion decreases |p| + |q| strictly, so the
  // peak depth is at most TreeSize(p) + TreeSize(q).
  ExprArena arena;
  Rng rng(12400);
  std::function<ExprId(int)> random_expr = [&](int ops) -> ExprId {
    if (ops == 0) {
      return arena.Attr(std::string(1, static_cast<char>('A' + rng.Below(3))));
    }
    int left = static_cast<int>(rng.Below(static_cast<uint64_t>(ops)));
    ExprId l = random_expr(left);
    ExprId r = random_expr(ops - 1 - left);
    return rng.Chance(1, 2) ? arena.Product(l, r) : arena.Sum(l, r);
  };
  WhitmanIterative iter(&arena);
  for (int trial = 0; trial < 40; ++trial) {
    ExprId p = random_expr(1 + trial % 7);
    ExprId q = random_expr(1 + (trial + 3) % 7);
    WhitmanIterativeStats stats;
    iter.Leq(p, q, &stats);
    EXPECT_LE(stats.peak_stack_depth,
              static_cast<std::size_t>(arena.TreeSize(p) + arena.TreeSize(q)));
  }
}

}  // namespace
}  // namespace psem
