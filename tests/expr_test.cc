// Tests for the partition-expression arena: hash-consing, parsing,
// printing, subexpression enumeration, PD parsing.

#include <gtest/gtest.h>

#include <set>

#include "lattice/expr.h"

namespace psem {
namespace {

TEST(ExprArenaTest, AttrInterning) {
  ExprArena a;
  ExprId x = a.Attr("A");
  ExprId y = a.Attr("B");
  EXPECT_NE(x, y);
  EXPECT_EQ(a.Attr("A"), x);
  EXPECT_TRUE(a.IsAttr(x));
  EXPECT_EQ(a.AttrName(a.AttrOf(x)), "A");
  EXPECT_EQ(a.num_attrs(), 2u);
}

TEST(ExprArenaTest, HashConsingGivesStructuralIdentity) {
  ExprArena a;
  ExprId ab1 = a.Product(a.Attr("A"), a.Attr("B"));
  ExprId ab2 = a.Product(a.Attr("A"), a.Attr("B"));
  EXPECT_EQ(ab1, ab2);
  ExprId ba = a.Product(a.Attr("B"), a.Attr("A"));
  EXPECT_NE(ab1, ba);  // no commutativity at the syntax level
  ExprId s = a.Sum(a.Attr("A"), a.Attr("B"));
  EXPECT_NE(ab1, s);  // operators distinguished
}

TEST(ExprArenaTest, ComplexityCountsOperators) {
  ExprArena a;
  ExprId e = *a.Parse("A*B + C*(D+E)");
  EXPECT_EQ(a.Complexity(e), 4u);
  EXPECT_EQ(a.TreeSize(e), 9u);
  EXPECT_EQ(a.Complexity(a.Attr("A")), 0u);
}

TEST(ExprParserTest, PrecedenceProductBindsTighter) {
  ExprArena a;
  ExprId e1 = *a.Parse("A+B*C");
  ExprId e2 = a.Sum(a.Attr("A"), a.Product(a.Attr("B"), a.Attr("C")));
  EXPECT_EQ(e1, e2);
}

TEST(ExprParserTest, LeftAssociativity) {
  ExprArena a;
  EXPECT_EQ(*a.Parse("A*B*C"),
            a.Product(a.Product(a.Attr("A"), a.Attr("B")), a.Attr("C")));
  EXPECT_EQ(*a.Parse("A+B+C"),
            a.Sum(a.Sum(a.Attr("A"), a.Attr("B")), a.Attr("C")));
}

TEST(ExprParserTest, ParenthesesOverride) {
  ExprArena a;
  EXPECT_EQ(*a.Parse("(A+B)*C"),
            a.Product(a.Sum(a.Attr("A"), a.Attr("B")), a.Attr("C")));
}

TEST(ExprParserTest, WhitespaceInsensitive) {
  ExprArena a;
  EXPECT_EQ(*a.Parse("  A *  ( B + C )"), *a.Parse("A*(B+C)"));
}

TEST(ExprParserTest, MultiCharIdentifiers) {
  ExprArena a;
  ExprId e = *a.Parse("employee_id * manager_id");
  EXPECT_EQ(a.ToString(e), "employee_id*manager_id");
}

TEST(ExprParserTest, Errors) {
  ExprArena a;
  EXPECT_FALSE(a.Parse("").ok());
  EXPECT_FALSE(a.Parse("A+").ok());
  EXPECT_FALSE(a.Parse("(A+B").ok());
  EXPECT_FALSE(a.Parse("A B").ok());
  EXPECT_FALSE(a.Parse("*A").ok());
  EXPECT_FALSE(a.Parse("A)(").ok());
  EXPECT_EQ(a.Parse("A+").status().code(), StatusCode::kInvalidArgument);
}

TEST(ExprPrinterTest, MinimalParentheses) {
  ExprArena a;
  EXPECT_EQ(a.ToString(*a.Parse("A+B*C")), "A+B*C");
  EXPECT_EQ(a.ToString(*a.Parse("(A+B)*C")), "(A+B)*C");
  EXPECT_EQ(a.ToString(*a.Parse("A*(B+C)")), "A*(B+C)");
  EXPECT_EQ(a.ToString(*a.Parse("A*B+C")), "A*B+C");
}

TEST(ExprPrinterTest, RoundTrip) {
  ExprArena a;
  for (const char* text :
       {"A", "A*B", "A+B", "A*(B+C*D)+E", "((A+B)+C)*D", "A*B*C+D+E*F"}) {
    ExprId e = *a.Parse(text);
    EXPECT_EQ(*a.Parse(a.ToString(e)), e) << text;
  }
}

TEST(ExprArenaTest, CollectSubexprs) {
  ExprArena a;
  ExprId e = *a.Parse("A*B + A*B");  // hash-consed: A*B appears once
  std::set<ExprId> seen;
  std::vector<ExprId> subs;
  a.CollectSubexprs(e, &seen, &subs);
  // A, B, A*B, (A*B)+(A*B) -> 4 distinct nodes.
  EXPECT_EQ(subs.size(), 4u);
  // Children precede parents.
  EXPECT_EQ(subs.back(), e);
}

TEST(ExprArenaTest, CollectAttrs) {
  ExprArena a;
  ExprId e = *a.Parse("A*(B+A)*C");
  std::set<AttrId> attrs;
  a.CollectAttrs(e, &attrs);
  EXPECT_EQ(attrs.size(), 3u);
}

TEST(ExprArenaTest, ProductOfAttrsMatchesSchemeSemantics) {
  ExprArena a;
  std::vector<std::string> names = {"A", "B", "C"};
  ExprId e = a.ProductOfAttrs(names);
  EXPECT_EQ(e, *a.Parse("A*B*C"));
}

TEST(PdParseTest, Equation) {
  ExprArena a;
  Pd pd = *a.ParsePd("A*B = A*B*C");
  EXPECT_TRUE(pd.is_equation);
  EXPECT_EQ(pd.lhs, *a.Parse("A*B"));
  EXPECT_EQ(pd.rhs, *a.Parse("A*B*C"));
  EXPECT_EQ(a.ToString(pd), "A*B = A*B*C");
}

TEST(PdParseTest, Inequality) {
  ExprArena a;
  Pd pd = *a.ParsePd("C <= A+B");
  EXPECT_FALSE(pd.is_equation);
  EXPECT_EQ(a.ToString(pd), "C <= A+B");
}

TEST(PdParseTest, Errors) {
  ExprArena a;
  EXPECT_FALSE(a.ParsePd("A+B").ok());
  EXPECT_FALSE(a.ParsePd("A = ").ok());
  EXPECT_FALSE(a.ParsePd(" = B").ok());
}

TEST(PdTest, FactoryHelpers) {
  ExprArena a;
  Pd eq = Pd::Eq(a.Attr("A"), a.Attr("B"));
  EXPECT_TRUE(eq.is_equation);
  Pd le = Pd::Leq(a.Attr("A"), a.Attr("B"));
  EXPECT_FALSE(le.is_equation);
  EXPECT_NE(eq, le);
}

}  // namespace
}  // namespace psem
