// Tests for the tableau and the Honeyman chase: weak-instance consistency
// of a database with FDs (Section 2.1 / 4.3).

#include <gtest/gtest.h>

#include "chase/tableau.h"
#include "core/fd_theory.h"
#include "relational/dependency.h"
#include "util/rng.h"

namespace psem {
namespace {

TEST(TableauTest, RepresentativeShape) {
  Database db;
  std::size_t r1 = db.AddRelation("R1", {"A", "B"});
  db.relation(r1).AddRow(&db.symbols(), {"x", "y"});
  std::size_t r2 = db.AddRelation("R2", {"B", "C"});
  db.relation(r2).AddRow(&db.symbols(), {"y", "z"});
  db.relation(r2).AddRow(&db.symbols(), {"w", "z"});
  Tableau t = Tableau::Representative(db, db.universe().size());
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.width(), 3u);
  EXPECT_EQ(t.num_constants(), db.symbols().size());
  // Row 0 has constants at A, B and a null at C.
  RelAttrId a = *db.universe().Require("A");
  RelAttrId c = *db.universe().Require("C");
  EXPECT_TRUE(t.IsConstant(t.CellId(0, a)));
  EXPECT_FALSE(t.IsConstant(t.CellId(0, c)));
  // Nulls are pairwise distinct (labeled).
  EXPECT_NE(t.CellId(0, c), t.CellId(1, a));
}

TEST(TableauTest, EquateCellsDetectsConstantClash) {
  Database db;
  std::size_t r = db.AddRelation("R", {"A", "B"});
  db.relation(r).AddRow(&db.symbols(), {"x", "u"});
  db.relation(r).AddRow(&db.symbols(), {"x", "v"});
  Tableau t = Tableau::Representative(db, 2);
  RelAttrId b = *db.universe().Require("B");
  Status st = t.EquateCells(0, b, 1, b);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInconsistent);
}

TEST(TableauTest, EquateNullWithConstantPropagates) {
  Database db;
  std::size_t r1 = db.AddRelation("R1", {"A"});
  db.relation(r1).AddRow(&db.symbols(), {"x"});
  std::size_t r2 = db.AddRelation("R2", {"B"});
  db.relation(r2).AddRow(&db.symbols(), {"y"});
  Tableau t = Tableau::Representative(db, 2);
  RelAttrId a = *db.universe().Require("A");
  RelAttrId b = *db.universe().Require("B");
  // Row 0: (x, null), row 1: (null, y). Equate row0.B with row1.B.
  ASSERT_TRUE(t.EquateCells(0, b, 1, b).ok());
  EXPECT_EQ(t.Resolve(0, b), t.Resolve(1, b));
  EXPECT_EQ(t.ConstantOf(t.Resolve(0, b)),
            t.CellId(1, b));  // class got y's constant
  (void)a;
}

TEST(ChaseTest, ConsistentJoinablePair) {
  // R1(A,B) = {(x,y)}, R2(B,C) = {(y,z)} with B -> C, A -> B: consistent.
  Database db;
  std::size_t r1 = db.AddRelation("R1", {"A", "B"});
  db.relation(r1).AddRow(&db.symbols(), {"x", "y"});
  std::size_t r2 = db.AddRelation("R2", {"B", "C"});
  db.relation(r2).AddRow(&db.symbols(), {"y", "z"});
  std::vector<Fd> fds = {*Fd::Parse(&db.universe(), "B -> C"),
                         *Fd::Parse(&db.universe(), "A -> B")};
  EXPECT_TRUE(WeakInstanceConsistent(db, fds));
}

TEST(ChaseTest, ClassicInconsistentExample) {
  // R1(A,B): (a, b1); R2(A,C): (a, c); with A -> B and C -> B and a second
  // path forcing two different B constants for the same A.
  Database db;
  std::size_t r1 = db.AddRelation("R1", {"A", "B"});
  db.relation(r1).AddRow(&db.symbols(), {"a", "b1"});
  std::size_t r2 = db.AddRelation("R2", {"A", "B"});
  db.relation(r2).AddRow(&db.symbols(), {"a", "b2"});
  std::vector<Fd> fds = {*Fd::Parse(&db.universe(), "A -> B")};
  EXPECT_FALSE(WeakInstanceConsistent(db, fds));
  // Without the FD it is consistent (a weak instance just contains both).
  EXPECT_TRUE(WeakInstanceConsistent(db, {}));
}

TEST(ChaseTest, TransitivePropagationThroughNulls) {
  // R1(A,B): (a,b); R2(B,C): (b,c1); R3(A,C): (a,c2); A -> B, B -> C
  // force row3's C... actually rows: chase equates via nulls:
  // row1 C-null gets c1 (via B -> C with row2? row2's A is null).
  // Use A -> B and B -> C: row1 (a,b,_); row3 (a,_,c2): A -> B equates
  // row3.B with b; then B -> C equates row1.C and row3.C -> row1.C = c2;
  // row2 (_,b,c1): B -> C on rows {1,2,3} all with B=b forces c1 = c2:
  // inconsistent.
  Database db;
  std::size_t r1 = db.AddRelation("R1", {"A", "B"});
  db.relation(r1).AddRow(&db.symbols(), {"a", "b"});
  std::size_t r2 = db.AddRelation("R2", {"B", "C"});
  db.relation(r2).AddRow(&db.symbols(), {"b", "c1"});
  std::size_t r3 = db.AddRelation("R3", {"A", "C"});
  db.relation(r3).AddRow(&db.symbols(), {"a", "c2"});
  std::vector<Fd> fds = {*Fd::Parse(&db.universe(), "A -> B"),
                         *Fd::Parse(&db.universe(), "B -> C")};
  EXPECT_FALSE(WeakInstanceConsistent(db, fds));
  // Changing c2 to c1 restores consistency.
  Database db2;
  r1 = db2.AddRelation("R1", {"A", "B"});
  db2.relation(r1).AddRow(&db2.symbols(), {"a", "b"});
  r2 = db2.AddRelation("R2", {"B", "C"});
  db2.relation(r2).AddRow(&db2.symbols(), {"b", "c1"});
  r3 = db2.AddRelation("R3", {"A", "C"});
  db2.relation(r3).AddRow(&db2.symbols(), {"a", "c1"});
  std::vector<Fd> fds2 = {*Fd::Parse(&db2.universe(), "A -> B"),
                          *Fd::Parse(&db2.universe(), "B -> C")};
  EXPECT_TRUE(WeakInstanceConsistent(db2, fds2));
}

TEST(ChaseTest, SingleFullWidthRelationMatchesDirectSatisfaction) {
  // For a single relation covering all attributes, weak-instance
  // consistency with F is just r |= F (Section 4.3 remark).
  Rng rng(246);
  for (int trial = 0; trial < 25; ++trial) {
    Database db;
    std::size_t ri = db.AddRelation("R", {"A", "B", "C"});
    Relation& r = db.relation(ri);
    int rows = 1 + static_cast<int>(rng.Below(5));
    for (int i = 0; i < rows; ++i) {
      r.AddRow(&db.symbols(), {"a" + std::to_string(rng.Below(2)),
                               "b" + std::to_string(rng.Below(2)),
                               "c" + std::to_string(rng.Below(2))});
    }
    std::vector<Fd> fds = {*Fd::Parse(&db.universe(), "A -> B"),
                           *Fd::Parse(&db.universe(), "B C -> A")};
    EXPECT_EQ(WeakInstanceConsistent(db, fds), *SatisfiesAllFds(r, fds));
  }
}

TEST(ChaseTest, ProjectionsOfConsistentRelationAreConsistent) {
  // Split a relation satisfying the FDs into projections: the database of
  // projections must be weak-instance consistent (the original relation is
  // a weak instance).
  Rng rng(135);
  for (int trial = 0; trial < 25; ++trial) {
    Database db;
    std::size_t ri = db.AddRelation("W", {"A", "B", "C"});
    Relation& w = db.relation(ri);
    // Build a relation satisfying A -> B, B -> C by construction.
    for (int i = 0; i < 4; ++i) {
      int a = i;                                   // A unique per row
      int b = static_cast<int>(rng.Below(3));      // A -> B: free choice
      static int c_of_b[3];
      if (trial == 0 && i == 0) {
        c_of_b[0] = 0;
        c_of_b[1] = 1;
        c_of_b[2] = 0;
      }
      w.AddRow(&db.symbols(), {"a" + std::to_string(a),
                               "b" + std::to_string(b),
                               "c" + std::to_string(c_of_b[b])});
    }
    std::vector<Fd> fds = {*Fd::Parse(&db.universe(), "A -> B"),
                           *Fd::Parse(&db.universe(), "B -> C")};
    ASSERT_TRUE(*SatisfiesAllFds(w, fds));
    // Project into two relations AB, BC in a new database.
    Database split;
    std::size_t ab = split.AddRelation("AB", {"A", "B"});
    std::size_t bc = split.AddRelation("BC", {"B", "C"});
    for (const Tuple& t : w.rows()) {
      split.relation(ab).AddRow(
          &split.symbols(),
          {db.symbols().NameOf(t[0]), db.symbols().NameOf(t[1])});
      split.relation(bc).AddRow(
          &split.symbols(),
          {db.symbols().NameOf(t[1]), db.symbols().NameOf(t[2])});
    }
    std::vector<Fd> split_fds = {*Fd::Parse(&split.universe(), "A -> B"),
                                 *Fd::Parse(&split.universe(), "B -> C")};
    EXPECT_TRUE(WeakInstanceConsistent(split, split_fds));
  }
}

TEST(ChaseTest, EmptyDatabaseIsConsistent) {
  Database db;
  db.AddRelation("R", {"A", "B"});
  std::vector<Fd> fds = {*Fd::Parse(&db.universe(), "A -> B")};
  EXPECT_TRUE(WeakInstanceConsistent(db, fds));
}

TEST(ChaseTest, ChaseStatsReported) {
  Database db;
  std::size_t r1 = db.AddRelation("R1", {"A", "B"});
  db.relation(r1).AddRow(&db.symbols(), {"a", "b"});
  std::size_t r3 = db.AddRelation("R3", {"A", "C"});
  db.relation(r3).AddRow(&db.symbols(), {"a", "c"});
  std::vector<Fd> fds = {*Fd::Parse(&db.universe(), "A -> B C")};
  Tableau t = Tableau::Representative(db, db.universe().size());
  ChaseResult res = ChaseWithFds(&t, fds);
  EXPECT_TRUE(res.consistent);
  EXPECT_GE(res.rounds, 1u);
  EXPECT_GT(res.merges, 0u);
}

TEST(TableauTest, ToStringShowsConstantsAndNulls) {
  Database db;
  std::size_t r = db.AddRelation("R", {"A", "B"});
  db.relation(r).AddRow(&db.symbols(), {"x", "y"});
  db.AddRelation("S", {"C"});
  Tableau t = Tableau::Representative(db, db.universe().size());
  std::string s = t.ToString(db, db.universe());
  EXPECT_NE(s.find('x'), std::string::npos);
  EXPECT_NE(s.find("_n"), std::string::npos);
}

}  // namespace
}  // namespace psem
