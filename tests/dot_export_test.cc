// Tests for the DOT exporters: node/edge counts match the Hasse diagram
// and the proof DAG, labels are escaped, output parses as balanced DOT.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/dot_export.h"
#include "core/proof.h"

namespace psem {
namespace {

std::size_t CountOccurrences(const std::string& haystack,
                             const std::string& needle) {
  std::size_t count = 0, pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

TEST(LatticeDotTest, ChainHasseDiagram) {
  FiniteLattice c = FiniteLattice::Chain(4);
  std::string dot = ExportLatticeDot(c, "chain");
  EXPECT_NE(dot.find("digraph chain"), std::string::npos);
  // 4 nodes, 3 cover edges.
  EXPECT_EQ(CountOccurrences(dot, "[label="), 4u);
  EXPECT_EQ(CountOccurrences(dot, " -> "), 3u);
  EXPECT_EQ(CountOccurrences(dot, "{"), 1u);
  EXPECT_EQ(CountOccurrences(dot, "}"), 1u);
}

TEST(LatticeDotTest, BooleanCoverEdges) {
  FiniteLattice b3 = FiniteLattice::Boolean(3);
  std::string dot = ExportLatticeDot(b3);
  // Hypercube: 8 nodes, 12 cover edges.
  EXPECT_EQ(CountOccurrences(dot, "[label="), 8u);
  EXPECT_EQ(CountOccurrences(dot, " -> "), 12u);
}

TEST(LatticeDotTest, NamesAreEscaped) {
  std::vector<std::vector<LatticeElem>> meet = {{0, 0}, {0, 1}};
  std::vector<std::vector<LatticeElem>> join = {{0, 1}, {1, 1}};
  FiniteLattice l(meet, join, {"say \"hi\"", "top\\elem"});
  std::string dot = ExportLatticeDot(l);
  EXPECT_NE(dot.find("say \\\"hi\\\""), std::string::npos);
  EXPECT_NE(dot.find("top\\\\elem"), std::string::npos);
}

TEST(ProofDotTest, StepsAndPremiseEdges) {
  ExprArena arena;
  std::vector<Pd> e = {*arena.ParsePd("A <= B"), *arena.ParsePd("B <= C")};
  ProvenanceEngine prover(&arena, e);
  Proof proof = *prover.ProveLeq(*arena.Parse("A"), *arena.Parse("C"));
  std::string dot = ExportProofDot(arena, proof);
  EXPECT_NE(dot.find("digraph proof"), std::string::npos);
  // One node per step.
  EXPECT_EQ(CountOccurrences(dot, "[label="), proof.steps.size());
  // Edge count equals the number of premise references.
  std::size_t premise_refs = 0;
  for (const ProofStep& s : proof.steps) {
    premise_refs += (s.premise1 != ProofStep::kNoPremise);
    premise_refs += (s.premise2 != ProofStep::kNoPremise);
  }
  EXPECT_EQ(CountOccurrences(dot, " -> "), premise_refs);
  // The goal node is highlighted.
  EXPECT_NE(dot.find("style=bold"), std::string::npos);
  // The goal's arc appears in a label.
  EXPECT_NE(dot.find("A <= C"), std::string::npos);
}

}  // namespace
}  // namespace psem
