// Tests for the <=_id deciders (Whitman's condition; Section 5.1 rules,
// Theorem 10): known identities and non-identities, agreement between the
// memoized and the storage-free iterative implementations, and soundness
// against explicit finite-lattice models.

#include <gtest/gtest.h>

#include "lattice/expr.h"
#include "lattice/finite_lattice.h"
#include "lattice/whitman.h"
#include "util/rng.h"

namespace psem {
namespace {

class WhitmanTest : public ::testing::Test {
 protected:
  bool LeqId(const char* p, const char* q) {
    WhitmanMemo w(&arena_);
    return w.Leq(*arena_.Parse(p), *arena_.Parse(q));
  }
  bool EqId(const char* p, const char* q) {
    WhitmanMemo w(&arena_);
    return w.Eq(*arena_.Parse(p), *arena_.Parse(q));
  }
  ExprArena arena_;
};

TEST_F(WhitmanTest, LatticeAxiomsAreIdentities) {
  // The LA axioms of Section 2.2 hold in every lattice.
  EXPECT_TRUE(EqId("(A*B)*C", "A*(B*C)"));
  EXPECT_TRUE(EqId("(A+B)+C", "A+(B+C)"));
  EXPECT_TRUE(EqId("A*B", "B*A"));
  EXPECT_TRUE(EqId("A+B", "B+A"));
  EXPECT_TRUE(EqId("A*A", "A"));
  EXPECT_TRUE(EqId("A+A", "A"));
  EXPECT_TRUE(EqId("A+A*B", "A"));
  EXPECT_TRUE(EqId("A*(A+B)", "A"));
}

TEST_F(WhitmanTest, OrderBasics) {
  EXPECT_TRUE(LeqId("A", "A"));
  EXPECT_FALSE(LeqId("A", "B"));
  EXPECT_TRUE(LeqId("A*B", "A"));
  EXPECT_TRUE(LeqId("A*B", "B"));
  EXPECT_TRUE(LeqId("A", "A+B"));
  EXPECT_TRUE(LeqId("B", "A+B"));
  EXPECT_FALSE(LeqId("A", "A*B"));
  EXPECT_FALSE(LeqId("A+B", "A"));
  EXPECT_TRUE(LeqId("A*B*C", "A*B"));
  EXPECT_TRUE(LeqId("A+B", "A+B+C"));
}

TEST_F(WhitmanTest, OneDistributiveInequalityIsValid) {
  // x*y + x*z <= x*(y+z) holds in all lattices; the converse does not.
  EXPECT_TRUE(LeqId("A*B + A*C", "A*(B+C)"));
  EXPECT_FALSE(LeqId("A*(B+C)", "A*B + A*C"));
  EXPECT_FALSE(EqId("A*(B+C)", "A*B + A*C"));
  // Dually: x + y*z <= (x+y)*(x+z) is valid, not the converse.
  EXPECT_TRUE(LeqId("A + B*C", "(A+B)*(A+C)"));
  EXPECT_FALSE(LeqId("(A+B)*(A+C)", "A + B*C"));
}

TEST_F(WhitmanTest, ModularLawIsNotAnIdentity) {
  // a <= c -> a+(b*c) = (a+b)*c fails in N5; as an identity over free
  // variables the inequality (A*C)+(B*C) <= (A+B)*C is valid but equality
  // is not.
  EXPECT_TRUE(LeqId("A*C + B*C", "(A+B)*C"));
  EXPECT_FALSE(EqId("A*C + B*C", "(A+B)*C"));
}

TEST_F(WhitmanTest, MonotonicityOfOperators) {
  // From A*B <= A: A*B + C <= A + C and (A*B)*C <= A*C.
  EXPECT_TRUE(LeqId("A*B + C", "A + C"));
  EXPECT_TRUE(LeqId("(A*B)*C", "A*C"));
}

TEST_F(WhitmanTest, DeepAbsorptionChain) {
  EXPECT_TRUE(EqId("A*(A+B*(B+C))", "A"));
  EXPECT_TRUE(EqId("A+(A*(B+(B*C)))", "A"));
}

TEST_F(WhitmanTest, MedianInequality) {
  // The median inequality: (a*b)+(b*c)+(c*a) <= (a+b)*(b+c)*(c+a).
  EXPECT_TRUE(LeqId("A*B + B*C + C*A", "(A+B)*(B+C)*(C+A)"));
  EXPECT_FALSE(LeqId("(A+B)*(B+C)*(C+A)", "A*B + B*C + C*A"));
}

TEST_F(WhitmanTest, TheoremFourFpdDecomposition) {
  // Section 4.2: A+B = (A+B)*C is equivalent to A = A*C and B = B*C; here
  // we check the identity-level direction A+B <= C iff A <= C and B <= C
  // via rule 7 at the syntax level.
  EXPECT_TRUE(LeqId("A+B", "A+B+C"));
  EXPECT_FALSE(LeqId("A+B", "C"));
  EXPECT_TRUE(LeqId("A*C + B*C", "C"));
}

TEST_F(WhitmanTest, MemoSizeIsBounded) {
  WhitmanMemo w(&arena_);
  ExprId p = *arena_.Parse("(A+B)*(C+D)*(A+C)");
  ExprId q = *arena_.Parse("(A*B)+(C*D)+(B*D)");
  w.Leq(p, q);
  // At most one entry per pair of distinct subexpressions.
  EXPECT_LE(w.memo_size(), arena_.size() * arena_.size());
}

// --- iterative vs memo, random differential ---------------------------------

// Random expression over `num_attrs` attributes with `ops` operators.
ExprId RandomExpr(ExprArena* arena, Rng* rng, int num_attrs, int ops) {
  if (ops == 0) {
    return arena->Attr(std::string(1, static_cast<char>(
                                          'A' + rng->Below(num_attrs))));
  }
  int left = static_cast<int>(rng->Below(static_cast<uint64_t>(ops)));
  ExprId l = RandomExpr(arena, rng, num_attrs, left);
  ExprId r = RandomExpr(arena, rng, num_attrs, ops - 1 - left);
  return rng->Chance(1, 2) ? arena->Product(l, r) : arena->Sum(l, r);
}

class WhitmanDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(WhitmanDifferentialTest, MemoAgreesWithIterative) {
  Rng rng(1000 + GetParam());
  ExprArena arena;
  WhitmanMemo memo(&arena);
  WhitmanIterative iter(&arena);
  int agree_true = 0;
  for (int trial = 0; trial < 60; ++trial) {
    ExprId p = RandomExpr(&arena, &rng, 3, 1 + trial % 6);
    ExprId q = RandomExpr(&arena, &rng, 3, 1 + (trial / 2) % 6);
    WhitmanIterativeStats stats;
    bool a = memo.Leq(p, q);
    bool b = iter.Leq(p, q, &stats);
    ASSERT_EQ(a, b) << arena.ToString(p) << " <= " << arena.ToString(q);
    EXPECT_GT(stats.total_calls, 0u);
    EXPECT_GT(stats.peak_stack_depth, 0u);
    agree_true += a;
  }
  // Sanity: the generator produces both outcomes.
  EXPECT_GT(agree_true, 0);
  EXPECT_LT(agree_true, 60);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WhitmanDifferentialTest,
                         ::testing::Range(0, 8));

// --- soundness against lattice models ----------------------------------------

// If p <=_id q then eval(p) <= eval(q) under EVERY assignment in EVERY
// lattice. We check exhaustively over small standard lattices.
class WhitmanSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(WhitmanSoundnessTest, IdentityHoldsInModels) {
  Rng rng(77 + GetParam());
  ExprArena arena;
  WhitmanMemo memo(&arena);
  FiniteLattice models[] = {FiniteLattice::DiamondM3(),
                            FiniteLattice::PentagonN5(),
                            FiniteLattice::Boolean(3),
                            FiniteLattice::Chain(4),
                            FiniteLattice::Divisors(36)};
  for (int trial = 0; trial < 25; ++trial) {
    ExprId p = RandomExpr(&arena, &rng, 3, 1 + trial % 5);
    ExprId q = RandomExpr(&arena, &rng, 3, 1 + (trial + 2) % 5);
    bool id = memo.Leq(p, q);
    for (const FiniteLattice& l : models) {
      // Exhaust all assignments of the 3 attributes (A, B, C were interned
      // first by RandomExpr in some order; assign all arena attrs).
      std::size_t k = arena.num_attrs();
      ASSERT_LE(k, 3u);
      std::vector<LatticeElem> asg(k, 0);
      std::size_t total = 1;
      for (std::size_t i = 0; i < k; ++i) total *= l.size();
      for (std::size_t code = 0; code < total; ++code) {
        std::size_t c = code;
        for (std::size_t i = 0; i < k; ++i) {
          asg[i] = static_cast<LatticeElem>(c % l.size());
          c /= l.size();
        }
        LatticeElem ep = *l.Eval(arena, p, asg);
        LatticeElem eq = *l.Eval(arena, q, asg);
        if (id) {
          ASSERT_TRUE(l.Leq(ep, eq))
              << arena.ToString(p) << " <= " << arena.ToString(q);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WhitmanSoundnessTest, ::testing::Range(0, 4));

// Known non-identities must have a counterexample in some small model.
TEST(WhitmanCompletenessSpotTest, NonIdentitiesFailInSmallModels) {
  ExprArena arena;
  ExprId lhs = *arena.Parse("A*(B+C)");
  ExprId rhs = *arena.Parse("A*B + A*C");
  // Distributivity fails in M3: take A, B, C the three atoms.
  FiniteLattice m3 = FiniteLattice::DiamondM3();
  std::vector<LatticeElem> asg = {1, 2, 3};
  LatticeElem l = *m3.Eval(arena, lhs, asg);
  LatticeElem r = *m3.Eval(arena, rhs, asg);
  EXPECT_NE(l, r);
  // And the modular law fails in N5 with x=1 (x), b=3 (z), c=2 (y).
  FiniteLattice n5 = FiniteLattice::PentagonN5();
  ExprId ml = *arena.Parse("X + Y*Z");
  ExprId mr = *arena.Parse("(X+Y)*Z");
  std::vector<LatticeElem> asg5(arena.num_attrs(), FiniteLattice::kNoElem);
  asg5[*arena.attr_names().Lookup("X")] = 1;
  asg5[*arena.attr_names().Lookup("Y")] = 3;
  asg5[*arena.attr_names().Lookup("Z")] = 2;
  EXPECT_NE(*n5.Eval(arena, ml, asg5), *n5.Eval(arena, mr, asg5));
}

}  // namespace
}  // namespace psem
