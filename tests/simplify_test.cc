// Tests for identity-preserving simplification: known reductions, the
// =_id-equivalence and non-growth contracts on random expressions, and
// idempotence of the simplifier.

#include <gtest/gtest.h>

#include "lattice/simplify.h"
#include "util/rng.h"

namespace psem {
namespace {

std::string Simplified(ExprArena* arena, const char* text) {
  ExprId e = *arena->Parse(text);
  return arena->ToString(SimplifyExpr(arena, e));
}

TEST(SimplifyTest, AbsorptionLaws) {
  ExprArena a;
  EXPECT_EQ(Simplified(&a, "A*(A+B)"), "A");
  EXPECT_EQ(Simplified(&a, "A+A*B"), "A");
  EXPECT_EQ(Simplified(&a, "(A+B)*A"), "A");
  EXPECT_EQ(Simplified(&a, "A*B+A"), "A");
}

TEST(SimplifyTest, Idempotence) {
  ExprArena a;
  EXPECT_EQ(Simplified(&a, "A*A"), "A");
  EXPECT_EQ(Simplified(&a, "A+A+A"), "A");
  EXPECT_EQ(Simplified(&a, "A*A*B*B"), "A*B");
}

TEST(SimplifyTest, DominatedOperands) {
  ExprArena a;
  // A*B <= A, so A is a redundant factor of (A*B)*A.
  EXPECT_EQ(Simplified(&a, "A*B*A"), "A*B");
  // A <= A+B, so A+B is a redundant summand next to... careful: for sums
  // the SMALLER operand is redundant: A + (A+B) = A+B.
  EXPECT_EQ(Simplified(&a, "A+(A+B)"), "A+B");
  // Deep domination: (A*B*C) is below A*B.
  EXPECT_EQ(Simplified(&a, "(A*B*C)*(A*B)"), "A*B*C");
}

TEST(SimplifyTest, NestedReductions) {
  ExprArena a;
  EXPECT_EQ(Simplified(&a, "A*(A+B*(B+C))"), "A");
  EXPECT_EQ(Simplified(&a, "(A+A)*(B+B)"), "A*B");
  EXPECT_EQ(Simplified(&a, "A*(B+B)+A"), "A");
}

TEST(SimplifyTest, IrreducibleExpressionsUnchanged) {
  ExprArena a;
  EXPECT_EQ(Simplified(&a, "A*B"), "A*B");
  EXPECT_EQ(Simplified(&a, "A+B"), "A+B");
  EXPECT_EQ(Simplified(&a, "A*(B+C)"), "A*(B+C)");
  EXPECT_EQ(Simplified(&a, "A*B+C*D"), "A*B+C*D");
}

TEST(SimplifyTest, SimplifyPdBothSides) {
  ExprArena a;
  Pd pd = *a.ParsePd("A*(A+B) <= C+C");
  Pd simplified = SimplifyPd(&a, pd);
  EXPECT_EQ(a.ToString(simplified), "A <= C");
  EXPECT_FALSE(simplified.is_equation);
}

ExprId RandomExpr(ExprArena* arena, Rng* rng, int num_attrs, int ops) {
  if (ops == 0) {
    return arena->Attr(
        std::string(1, static_cast<char>('A' + rng->Below(num_attrs))));
  }
  int left = static_cast<int>(rng->Below(static_cast<uint64_t>(ops)));
  ExprId l = RandomExpr(arena, rng, num_attrs, left);
  ExprId r = RandomExpr(arena, rng, num_attrs, ops - 1 - left);
  return rng->Chance(1, 2) ? arena->Product(l, r) : arena->Sum(l, r);
}

class SimplifyPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SimplifyPropertyTest, EquivalentAndNonGrowingAndIdempotent) {
  Rng rng(7700 + GetParam());
  ExprArena arena;
  WhitmanMemo w(&arena);
  for (int trial = 0; trial < 50; ++trial) {
    ExprId e = RandomExpr(&arena, &rng, 3, 1 + trial % 8);
    ExprId s = SimplifyExpr(&arena, e);
    // =_id equivalence (Lemma 8.2: equal in every lattice).
    ASSERT_TRUE(w.Eq(e, s)) << arena.ToString(e) << " vs " << arena.ToString(s);
    // Non-growth.
    EXPECT_LE(arena.TreeSize(s), arena.TreeSize(e));
    // Idempotence.
    EXPECT_EQ(SimplifyExpr(&arena, s), s);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifyPropertyTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace psem
