// Differential property tests for the dense partition kernels
// (partition/dense.h) against the sparse reference API: Densify/Sparsify
// roundtrips, Product, Sum, Refines, GroupByValues, RefineBy, and the
// stripped (PLI) kernels, over random populations plus the adversarial
// shapes — empty, singleton, disjoint populations, and many small blocks.
// The canonical-form contract means every comparison is exact equality.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "partition/dense.h"
#include "partition/partition.h"
#include "util/rng.h"

namespace psem {
namespace {

// Random subset of [0, world) of expected size world*num/den.
std::vector<Elem> RandomPopulation(Rng* rng, std::size_t world, uint64_t num,
                                   uint64_t den) {
  std::vector<Elem> pop;
  for (std::size_t e = 0; e < world; ++e) {
    if (rng->Chance(num, den)) pop.push_back(static_cast<Elem>(e));
  }
  return pop;
}

// Random partition of `population` into at most `max_blocks` blocks.
Partition RandomPartition(Rng* rng, const std::vector<Elem>& population,
                          std::size_t max_blocks) {
  if (population.empty()) return Partition();
  std::vector<uint32_t> labels(population.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<uint32_t>(rng->Below(max_blocks));
  }
  return Partition::FromLabels(population, labels);
}

// The shared universe for a pair of partitions: union of populations.
PartitionUniverse UniverseOf(const Partition& x, const Partition& y) {
  std::vector<Elem> all = x.population();
  all.insert(all.end(), y.population().begin(), y.population().end());
  return PartitionUniverse(std::move(all));
}

TEST(PartitionUniverseTest, InternsSortedDistinct) {
  PartitionUniverse u({7, 3, 3, 9, 7});
  EXPECT_EQ(u.size(), 3u);
  EXPECT_EQ(u.population(), (std::vector<Elem>{3, 7, 9}));
  EXPECT_EQ(*u.IndexOf(3), 0u);
  EXPECT_EQ(*u.IndexOf(9), 2u);
  EXPECT_FALSE(u.IndexOf(4).has_value());
}

TEST(PartitionUniverseTest, IdentityFastPath) {
  PartitionUniverse u = PartitionUniverse::Dense(5);
  EXPECT_EQ(u.size(), 5u);
  for (uint32_t i = 0; i < 5; ++i) EXPECT_EQ(*u.IndexOf(i), i);
  EXPECT_FALSE(u.IndexOf(5).has_value());
}

TEST(PartitionUniverseTest, DensifySparsifyRoundtrip) {
  Rng rng(0xd15ea5e);
  for (int it = 0; it < 200; ++it) {
    std::size_t world = 1 + rng.Below(40);
    std::vector<Elem> pop = RandomPopulation(&rng, world, 2, 3);
    Partition p = RandomPartition(&rng, pop, 1 + rng.Below(6));
    PartitionUniverse u(RandomPopulation(&rng, world, 1, 1));  // full world
    DensePartition d = u.Densify(p);
    EXPECT_EQ(d.present, p.population_size());
    EXPECT_EQ(d.num_blocks, p.num_blocks());
    EXPECT_EQ(u.Sparsify(d), p);
  }
}

TEST(DenseOpsTest, ProductAndSumMatchSparseReference) {
  Rng rng(0xfeedbeef);
  DenseOps ops;
  DensePartition prod, sum;
  int cases = 0;
  for (int it = 0; it < 300; ++it) {
    std::size_t world = 1 + rng.Below(60);
    Partition x = RandomPartition(&rng, RandomPopulation(&rng, world, 3, 4),
                                  1 + rng.Below(8));
    Partition y = RandomPartition(&rng, RandomPopulation(&rng, world, 3, 4),
                                  1 + rng.Below(8));
    PartitionUniverse u = UniverseOf(x, y);
    DensePartition dx = u.Densify(x);
    DensePartition dy = u.Densify(y);
    ops.Product(dx, dy, &prod);
    ops.Sum(dx, dy, &sum);
    EXPECT_EQ(u.Sparsify(prod), Partition::Product(x, y));
    EXPECT_EQ(u.Sparsify(sum), Partition::Sum(x, y));
    cases += 2;
  }
  EXPECT_GE(cases, 500);
}

TEST(DenseOpsTest, ProductAndSumAdversarialShapes) {
  DenseOps ops;
  DensePartition prod, sum;
  auto check = [&](const Partition& x, const Partition& y) {
    PartitionUniverse u = UniverseOf(x, y);
    DensePartition dx = u.Densify(x);
    DensePartition dy = u.Densify(y);
    ops.Product(dx, dy, &prod);
    ops.Sum(dx, dy, &sum);
    EXPECT_EQ(u.Sparsify(prod), Partition::Product(x, y));
    EXPECT_EQ(u.Sparsify(sum), Partition::Sum(x, y));
  };
  // Empty x empty.
  check(Partition(), Partition());
  // Empty x nonempty.
  check(Partition(), Partition::OneBlock({1, 2, 3}));
  // Singletons.
  check(Partition::OneBlock({5}), Partition::OneBlock({5}));
  check(Partition::OneBlock({5}), Partition::OneBlock({6}));
  // Fully disjoint populations: product has empty population, sum is the
  // side-by-side union.
  check(Partition::FromBlocks({{0, 1}, {2}}), Partition::FromBlocks({{7, 8}}));
  // Many small blocks: discrete x discrete, discrete x one-block, and the
  // worst case for the pair table — n/2 blocks of size 2 against its
  // shifted copy.
  std::vector<Elem> big(512);
  std::iota(big.begin(), big.end(), 0);
  check(Partition::Discrete(big), Partition::Discrete(big));
  check(Partition::Discrete(big), Partition::OneBlock(big));
  std::vector<uint32_t> pairs(big.size()), shifted(big.size());
  for (std::size_t i = 0; i < big.size(); ++i) {
    pairs[i] = static_cast<uint32_t>(i / 2);
    shifted[i] = static_cast<uint32_t>((i + 1) / 2 % (big.size() / 2));
  }
  check(Partition::FromLabels(big, pairs), Partition::FromLabels(big, shifted));
}

TEST(DenseOpsTest, RefinesMatchesSparseReference) {
  Rng rng(0xca11ab1e);
  DenseOps ops;
  DensePartition prod;
  for (int it = 0; it < 300; ++it) {
    std::size_t world = 1 + rng.Below(30);
    std::vector<Elem> pop = RandomPopulation(&rng, world, 2, 3);
    Partition x = RandomPartition(&rng, pop, 1 + rng.Below(6));
    Partition y = RandomPartition(&rng, pop, 1 + rng.Below(4));
    PartitionUniverse u = UniverseOf(x, y);
    DensePartition dx = u.Densify(x);
    DensePartition dy = u.Densify(y);
    EXPECT_EQ(ops.Refines(dx, dy), x.RefinesSamePopulation(y));
    // And the guaranteed-true direction: x*y refines both factors.
    ops.Product(dx, dy, &prod);
    EXPECT_TRUE(ops.Refines(prod, dx));
    EXPECT_TRUE(ops.Refines(prod, dy));
  }
  // Population mismatch is never a refinement.
  PartitionUniverse u(std::vector<Elem>{0, 1, 2});
  DensePartition a = u.Densify(Partition::OneBlock({0, 1}));
  DensePartition b = u.Densify(Partition::OneBlock({0, 1, 2}));
  EXPECT_FALSE(ops.Refines(a, b));
  EXPECT_FALSE(ops.Refines(b, a));
}

TEST(DenseOpsTest, GroupByValuesAndRefineByMatchProduct) {
  Rng rng(0x600dcafe);
  DenseOps ops;
  DensePartition grouped, refined, expect;
  for (int it = 0; it < 200; ++it) {
    std::size_t n = 1 + rng.Below(50);
    std::vector<uint32_t> values(n);
    for (auto& v : values) v = static_cast<uint32_t>(rng.Below(1 + n / 2));
    ops.GroupByValues(values, &grouped);
    EXPECT_EQ(grouped.present, n);
    // Same-value indices share a label; labels are first-occurrence.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        EXPECT_EQ(values[i] == values[j],
                  grouped.labels[i] == grouped.labels[j]);
      }
    }
    // RefineBy(a, values) == a * GroupByValues(values).
    PartitionUniverse u = PartitionUniverse::Dense(n);
    std::vector<Elem> pop(n);
    std::iota(pop.begin(), pop.end(), 0);
    DensePartition a =
        u.Densify(RandomPartition(&rng, pop, 1 + rng.Below(5)));
    ops.RefineBy(
        a, [&](std::size_t i) { return values[i]; }, &refined);
    ops.Product(a, grouped, &expect);
    EXPECT_EQ(refined, expect);
  }
}

TEST(DenseOpsTest, StripUnstripRoundtrip) {
  Rng rng(0x5742199);
  DenseOps ops;
  StrippedPartition sp;
  DensePartition back;
  for (int it = 0; it < 200; ++it) {
    std::size_t n = 1 + rng.Below(60);
    PartitionUniverse u = PartitionUniverse::Dense(n);
    std::vector<Elem> pop(n);
    std::iota(pop.begin(), pop.end(), 0);
    Partition p = RandomPartition(&rng, pop, 1 + rng.Below(n));
    DensePartition d = u.Densify(p);
    ops.Strip(d, &sp);
    EXPECT_EQ(sp.present, n);
    EXPECT_EQ(sp.num_blocks(), d.num_blocks);
    ops.Unstrip(sp, n, &back);
    EXPECT_EQ(back, d);
  }
  // All-singletons strips to nothing; one block strips to itself.
  PartitionUniverse u = PartitionUniverse::Dense(4);
  std::vector<Elem> pop{0, 1, 2, 3};
  ops.Strip(u.Densify(Partition::Discrete(pop)), &sp);
  EXPECT_EQ(sp.clustered(), 0u);
  EXPECT_EQ(sp.num_clusters(), 0u);
  EXPECT_EQ(sp.num_blocks(), 4u);
  ops.Strip(u.Densify(Partition::OneBlock(pop)), &sp);
  EXPECT_EQ(sp.clustered(), 4u);
  EXPECT_EQ(sp.num_clusters(), 1u);
  EXPECT_EQ(sp.num_blocks(), 1u);
}

TEST(DenseOpsTest, StrippedProductAndRefinesMatchDense) {
  Rng rng(0x7a5e11);
  DenseOps ops;
  StrippedPartition sx, sprod;
  DensePartition prod, back;
  for (int it = 0; it < 300; ++it) {
    std::size_t n = 1 + rng.Below(60);
    PartitionUniverse u = PartitionUniverse::Dense(n);
    std::vector<Elem> pop(n);
    std::iota(pop.begin(), pop.end(), 0);
    // Full-population operands: the same-relation column shape the
    // stripped kernels require.
    DensePartition x = u.Densify(RandomPartition(&rng, pop, 1 + rng.Below(8)));
    DensePartition col =
        u.Densify(RandomPartition(&rng, pop, 1 + rng.Below(8)));
    ops.Product(x, col, &prod);
    ops.Strip(x, &sx);
    ops.StrippedProduct(sx, col, &sprod);
    ops.Unstrip(sprod, n, &back);
    EXPECT_EQ(back, prod) << "n=" << n;
    EXPECT_EQ(sprod.num_blocks(), prod.num_blocks);
    // StrippedRefines(x, y) iff x refines y.
    EXPECT_EQ(ops.StrippedRefines(sx, col), ops.Refines(x, col));
    // x*col always refines col.
    ops.Strip(prod, &sprod);
    EXPECT_TRUE(ops.StrippedRefines(sprod, col));
  }
}

TEST(DenseOpsTest, ScratchReuseIsClean) {
  // Back-to-back calls of wildly different sizes through one DenseOps must
  // not leak state between calls (generation-stamped scratch).
  DenseOps ops;
  DensePartition out;
  std::vector<Elem> big(1000);
  std::iota(big.begin(), big.end(), 0);
  PartitionUniverse ub = PartitionUniverse::Dense(1000);
  DensePartition d1 = ub.Densify(Partition::Discrete(big));
  ops.Product(d1, d1, &out);
  EXPECT_EQ(out, d1);
  ops.Sum(d1, d1, &out);
  EXPECT_EQ(out, d1);
  PartitionUniverse us = PartitionUniverse::Dense(3);
  DensePartition d2 = us.Densify(Partition::FromBlocks({{0, 1}, {2}}));
  ops.Product(d2, d2, &out);
  EXPECT_EQ(out, d2);
  ops.Sum(d2, d2, &out);
  EXPECT_EQ(out, d2);
}

}  // namespace
}  // namespace psem
