// Property tests for the relational-algebra substrate: the classical
// algebraic laws (join commutativity/associativity up to column order,
// selection pushdown, distribution over union, projection cascades) on
// random relations. The paper's conclusion notes that partition semantics
// leave all of relational algebra intact; these tests pin down that the
// algebra itself behaves.

#include <gtest/gtest.h>

#include <algorithm>

#include "relational/algebra.h"
#include "util/rng.h"

namespace psem {
namespace {

// Compares two relations as sets of tuples over the same attribute SET,
// ignoring column order.
bool SameContent(const Database& db, const Relation& a, const Relation& b) {
  AttrSet sa = a.schema().ToAttrSet(db.universe().size());
  AttrSet sb = b.schema().ToAttrSet(db.universe().size());
  if (!(sa == sb)) return false;
  if (a.size() != b.size()) return false;
  // Canonicalize each tuple into universe-id order.
  auto canon = [&](const Relation& r) {
    std::vector<Tuple> rows;
    for (const Tuple& t : r.rows()) rows.push_back(r.Restrict(t, sa));
    std::sort(rows.begin(), rows.end());
    return rows;
  };
  return canon(a) == canon(b);
}

struct Fixture {
  Database db;
  std::size_t r_idx, s_idx;

  explicit Fixture(Rng* rng, int rows_r = 6, int rows_s = 6) {
    r_idx = db.AddRelation("r", {"A", "B"});
    s_idx = db.AddRelation("s", {"B", "C"});
    for (int i = 0; i < rows_r; ++i) {
      db.relation(r_idx).AddRow(&db.symbols(),
                                {"a" + std::to_string(rng->Below(3)),
                                 "b" + std::to_string(rng->Below(3))});
    }
    for (int i = 0; i < rows_s; ++i) {
      db.relation(s_idx).AddRow(&db.symbols(),
                                {"b" + std::to_string(rng->Below(3)),
                                 "c" + std::to_string(rng->Below(3))});
    }
  }
  Relation& r() { return db.relation(r_idx); }
  Relation& s() { return db.relation(s_idx); }
};

class AlgebraLawsTest : public ::testing::TestWithParam<int> {};

TEST_P(AlgebraLawsTest, JoinIsCommutativeUpToColumnOrder) {
  Rng rng(21000 + GetParam());
  Fixture f(&rng);
  Relation rs = NaturalJoin(f.r(), f.s());
  Relation sr = NaturalJoin(f.s(), f.r());
  EXPECT_TRUE(SameContent(f.db, rs, sr));
}

TEST_P(AlgebraLawsTest, JoinIsAssociative) {
  Rng rng(21100 + GetParam());
  Fixture f(&rng);
  std::size_t t_idx = f.db.AddRelation("t", {"C", "D"});
  for (int i = 0; i < 6; ++i) {
    f.db.relation(t_idx).AddRow(&f.db.symbols(),
                                {"c" + std::to_string(rng.Below(3)),
                                 "d" + std::to_string(rng.Below(3))});
  }
  Relation& t = f.db.relation(t_idx);
  Relation left = NaturalJoin(NaturalJoin(f.r(), f.s()), t);
  Relation right = NaturalJoin(f.r(), NaturalJoin(f.s(), t));
  EXPECT_TRUE(SameContent(f.db, left, right));
}

TEST_P(AlgebraLawsTest, SelectionCommutesWithJoin) {
  // sigma_{A=v}(r join s) == sigma_{A=v}(r) join s when A is r's column.
  Rng rng(21200 + GetParam());
  Fixture f(&rng);
  RelAttrId a = *f.db.universe().Require("A");
  ValueId v = f.db.symbols().Intern("a1");
  Relation lhs = *SelectEq(NaturalJoin(f.r(), f.s()), a, v);
  Relation rhs = NaturalJoin(*SelectEq(f.r(), a, v), f.s());
  EXPECT_TRUE(SameContent(f.db, lhs, rhs));
}

TEST_P(AlgebraLawsTest, SelectionDistributesOverUnionAndDifference) {
  Rng rng(21300 + GetParam());
  Database db;
  std::size_t x_idx = db.AddRelation("x", {"A", "B"});
  std::size_t y_idx = db.AddRelation("y", {"A", "B"});
  for (int i = 0; i < 8; ++i) {
    db.relation(x_idx).AddRow(&db.symbols(),
                              {"a" + std::to_string(rng.Below(3)),
                               "b" + std::to_string(rng.Below(2))});
    db.relation(y_idx).AddRow(&db.symbols(),
                              {"a" + std::to_string(rng.Below(3)),
                               "b" + std::to_string(rng.Below(2))});
  }
  Relation& x = db.relation(x_idx);
  Relation& y = db.relation(y_idx);
  RelAttrId a = *db.universe().Require("A");
  ValueId v = db.symbols().Intern("a0");
  EXPECT_TRUE(SameContent(db, *SelectEq(*Union(x, y), a, v),
                          *Union(*SelectEq(x, a, v), *SelectEq(y, a, v))));
  EXPECT_TRUE(SameContent(
      db, *SelectEq(*Difference(x, y), a, v),
      *Difference(*SelectEq(x, a, v), *SelectEq(y, a, v))));
}

TEST_P(AlgebraLawsTest, ProjectionCascade) {
  // pi_A(pi_AB(r)) == pi_A(r).
  Rng rng(21400 + GetParam());
  Fixture f(&rng);
  RelAttrId a = *f.db.universe().Require("A");
  RelAttrId b = *f.db.universe().Require("B");
  Relation inner = *Project(f.r(), {a, b});
  EXPECT_TRUE(SameContent(f.db, *Project(inner, {a}), *Project(f.r(), {a})));
}

TEST_P(AlgebraLawsTest, JoinWithSelfIsIdentity) {
  Rng rng(21500 + GetParam());
  Fixture f(&rng);
  Relation self = NaturalJoin(f.r(), f.r());
  EXPECT_TRUE(SameContent(f.db, self, f.r()));
}

TEST_P(AlgebraLawsTest, UnionIsIdempotentCommutativeAssociative) {
  Rng rng(21600 + GetParam());
  Database db;
  std::vector<Relation*> rel;
  for (int k = 0; k < 3; ++k) {
    std::size_t idx = db.AddRelation("u" + std::to_string(k), {"A", "B"});
    for (int i = 0; i < 5; ++i) {
      db.relation(idx).AddRow(&db.symbols(),
                              {"a" + std::to_string(rng.Below(3)),
                               "b" + std::to_string(rng.Below(3))});
    }
    rel.push_back(&db.relation(idx));
  }
  EXPECT_TRUE(SameContent(db, *Union(*rel[0], *rel[0]), *rel[0]));
  EXPECT_TRUE(SameContent(db, *Union(*rel[0], *rel[1]),
                          *Union(*rel[1], *rel[0])));
  EXPECT_TRUE(SameContent(db, *Union(*Union(*rel[0], *rel[1]), *rel[2]),
                          *Union(*rel[0], *Union(*rel[1], *rel[2]))));
}

TEST_P(AlgebraLawsTest, DifferenceLaws) {
  Rng rng(21700 + GetParam());
  Database db;
  std::size_t x_idx = db.AddRelation("x", {"A"});
  std::size_t y_idx = db.AddRelation("y", {"A"});
  for (int i = 0; i < 6; ++i) {
    db.relation(x_idx).AddRow(&db.symbols(), {"a" + std::to_string(rng.Below(4))});
    db.relation(y_idx).AddRow(&db.symbols(), {"a" + std::to_string(rng.Below(4))});
  }
  Relation& x = db.relation(x_idx);
  Relation& y = db.relation(y_idx);
  // x - x = empty; (x - y) subset x; x - (x - y) = x intersect y.
  EXPECT_EQ(Difference(x, x)->size(), 0u);
  Relation diff = *Difference(x, y);
  for (const Tuple& t : diff.rows()) EXPECT_TRUE(x.Contains(t));
  Relation xy = *Difference(x, *Difference(x, y));
  for (const Tuple& t : xy.rows()) {
    EXPECT_TRUE(x.Contains(t));
    EXPECT_TRUE(y.Contains(t));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgebraLawsTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace psem
