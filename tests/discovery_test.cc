// Tests for dependency discovery: discovered FDs agree with brute-force
// satisfaction, minimality holds, the Armstrong round trip recovers the
// original theory, and PD-pattern mining finds the connectivity and
// composite-key structure planted in synthetic data.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/armstrong.h"
#include "core/fd_theory.h"
#include "discovery/discovery.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace psem {
namespace {

TEST(ColumnPartitionTest, GroupsRowsByValue) {
  Database db;
  std::size_t ri = db.AddRelation("R", {"A", "B"});
  Relation& r = db.relation(ri);
  r.AddRow(&db.symbols(), {"x", "1"});
  r.AddRow(&db.symbols(), {"y", "1"});
  r.AddRow(&db.symbols(), {"x", "2"});
  Partition pa = ColumnPartition(r, 0);
  EXPECT_EQ(pa.num_blocks(), 2u);
  EXPECT_EQ(*pa.BlockOf(0), *pa.BlockOf(2));
  Partition pb = ColumnPartition(r, 1);
  EXPECT_EQ(*pb.BlockOf(0), *pb.BlockOf(1));
}

TEST(DiscoverFdsTest, PlantedFdsFound) {
  Database db;
  std::size_t ri = db.AddRelation("R", {"A", "B", "C"});
  Relation& r = db.relation(ri);
  // A determines B; C is free.
  r.AddRow(&db.symbols(), {"a1", "b1", "c1"});
  r.AddRow(&db.symbols(), {"a1", "b1", "c2"});
  r.AddRow(&db.symbols(), {"a2", "b2", "c1"});
  r.AddRow(&db.symbols(), {"a3", "b2", "c1"});
  auto fds = *DiscoverFds(db, r);
  auto has = [&](const char* text) {
    Fd want = *Fd::Parse(&db.universe(), text);
    for (const Fd& fd : fds) {
      if (fd.lhs == want.lhs && fd.rhs == want.rhs) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("A -> B"));
  EXPECT_FALSE(has("B -> A"));   // b2 maps to a2 and a3
  EXPECT_FALSE(has("A -> C"));   // a1 maps to c1 and c2
  // A C -> B holds but is not minimal (A -> B already reported).
  EXPECT_FALSE(has("A C -> B"));
}

TEST(DiscoverFdsTest, OnlyMinimalFdsReported) {
  Database db;
  std::size_t ri = db.AddRelation("R", {"A", "B", "C"});
  Relation& r = db.relation(ri);
  r.AddRow(&db.symbols(), {"a1", "b1", "c1"});
  r.AddRow(&db.symbols(), {"a2", "b1", "c2"});
  auto fds = *DiscoverFds(db, r);
  for (const Fd& fd : fds) {
    // No reported lhs strictly contains another reported lhs with the
    // same rhs.
    for (const Fd& other : fds) {
      if (&fd == &other || !(fd.rhs == other.rhs)) continue;
      EXPECT_FALSE(other.lhs.IsSubsetOf(fd.lhs) && !(other.lhs == fd.lhs))
          << fd.ToString(db.universe()) << " subsumed by "
          << other.ToString(db.universe());
    }
  }
}

TEST(DiscoverFdsTest, AgreesWithSatisfactionBruteForce) {
  Rng rng(515);
  for (int trial = 0; trial < 15; ++trial) {
    Database db;
    std::size_t ri = db.AddRelation("R", {"A", "B", "C", "D"});
    Relation& r = db.relation(ri);
    int rows = 2 + static_cast<int>(rng.Below(6));
    for (int i = 0; i < rows; ++i) {
      r.AddRow(&db.symbols(), {"a" + std::to_string(rng.Below(3)),
                               "b" + std::to_string(rng.Below(2)),
                               "c" + std::to_string(rng.Below(3)),
                               "d" + std::to_string(rng.Below(2))});
    }
    FdDiscoveryOptions options;
    options.max_lhs_size = 3;
    auto found = *DiscoverFds(db, r, options);
    // Build a theory from the found FDs: every discovered FD must hold.
    for (const Fd& fd : found) {
      EXPECT_TRUE(*SatisfiesFd(r, fd)) << fd.ToString(db.universe());
    }
    // Completeness: any single-attribute-rhs FD that holds must be
    // implied by the discovered set.
    Universe* u = &db.universe();
    FdTheory theory(u);
    for (const Fd& fd : found) theory.Add(fd);
    const std::size_t n = u->size();
    for (uint32_t lm = 1; lm < 16; ++lm) {
      for (int b = 0; b < 4; ++b) {
        if (lm & (1u << b)) continue;
        AttrSet lhs(n), rhs(n);
        for (int a = 0; a < 4; ++a) {
          if (lm & (1u << a)) lhs.Set(r.schema().attrs[a]);
        }
        rhs.Set(r.schema().attrs[b]);
        Fd fd{lhs, rhs};
        if (*SatisfiesFd(r, fd)) {
          EXPECT_TRUE(theory.Implies(fd)) << fd.ToString(*u);
        }
      }
    }
  }
}

TEST(DiscoverFdsTest, ArmstrongRoundTrip) {
  // theory -> Armstrong relation -> discovery recovers an equivalent
  // theory. The tightest possible loop: exactness of the construction
  // and completeness of the search at once.
  Universe u;
  FdTheory t(&u);
  ASSERT_TRUE(t.AddParsed("A -> B").ok());
  ASSERT_TRUE(t.AddParsed("B C -> D").ok());
  AttrSet scheme = u.MakeSet({"A", "B", "C", "D"});
  Database db;
  auto ri = BuildArmstrongRelation(t, scheme, &db);
  ASSERT_TRUE(ri.ok());
  FdDiscoveryOptions options;
  options.max_lhs_size = 4;
  auto found = *DiscoverFds(db, db.relation(*ri), options);
  // Map the discovered FDs back into u's ids (names align: A, B, C, D).
  FdTheory recovered(&u);
  for (const Fd& fd : found) {
    AttrSet lhs(u.size()), rhs(u.size());
    fd.lhs.ForEach([&](std::size_t a) {
      lhs.Set(*u.Require(db.universe().NameOf(static_cast<RelAttrId>(a))));
    });
    fd.rhs.ForEach([&](std::size_t a) {
      rhs.Set(*u.Require(db.universe().NameOf(static_cast<RelAttrId>(a))));
    });
    recovered.Add(Fd{lhs, rhs});
  }
  EXPECT_TRUE(t.EquivalentTo(recovered));
}

TEST(DiscoverPdPatternsTest, GraphEncodingYieldsSumPattern) {
  Database db;
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(3, 4);
  std::size_t ri = EncodeGraphRelation(g, &db);
  auto patterns = *DiscoverPdPatterns(db, db.relation(ri));
  bool found_sum = false;
  for (const PdPattern& p : patterns) {
    if (p.kind == PdPattern::Kind::kSum &&
        db.universe().NameOf(p.c) == "C") {
      found_sum = true;
      EXPECT_EQ(p.ToString(db.universe()), "C = A+B");
    }
  }
  EXPECT_TRUE(found_sum);
}

TEST(DiscoverPdPatternsTest, CompositeKeyYieldsProductPattern) {
  Database db;
  std::size_t ri = db.AddRelation("R", {"K", "A", "B"});
  Relation& r = db.relation(ri);
  // K enumerates the (A, B) combinations: K = A*B.
  int k = 0;
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      r.AddRow(&db.symbols(), {"k" + std::to_string(k++),
                               "a" + std::to_string(a),
                               "b" + std::to_string(b)});
    }
  }
  auto patterns = *DiscoverPdPatterns(db, r);
  bool found = false;
  for (const PdPattern& p : patterns) {
    if (p.kind == PdPattern::Kind::kProduct &&
        db.universe().NameOf(p.c) == "K") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(DiscoverPdPatternsTest, SumUpperOnlyWhenProper) {
  Database db;
  std::size_t ri = db.AddRelation("R", {"A", "B", "C"});
  Relation& r = db.relation(ri);
  // C refines the A/B components strictly.
  r.AddRow(&db.symbols(), {"x", "y", "c1"});
  r.AddRow(&db.symbols(), {"x", "z", "c2"});
  auto patterns = *DiscoverPdPatterns(db, r);
  bool upper = false, sum = false;
  for (const PdPattern& p : patterns) {
    if (db.universe().NameOf(p.c) != "C") continue;
    upper |= p.kind == PdPattern::Kind::kSumUpper;
    sum |= p.kind == PdPattern::Kind::kSum;
  }
  EXPECT_TRUE(upper);
  EXPECT_FALSE(sum);
}

TEST(DiscoverFdsTest, EmptyAndWideInputsRejected) {
  Database db;
  std::size_t ri = db.AddRelation("R", {"A"});
  EXPECT_FALSE(DiscoverFds(db, db.relation(ri)).ok());
  EXPECT_FALSE(DiscoverPdPatterns(db, db.relation(ri)).ok());
}

}  // namespace
}  // namespace psem
