// Tests for the lattice-analysis utilities on the standard small lattices
// and on the lattices partition semantics actually produces (Pi_k, L(I)
// of Figure 1).

#include <gtest/gtest.h>

#include <algorithm>

#include "lattice/lattice_analysis.h"
#include "partition/partition_lattice.h"

namespace psem {
namespace {

TEST(LatticeAnalysisTest, BooleanLattice) {
  FiniteLattice b3 = FiniteLattice::Boolean(3);
  auto atoms = Atoms(b3);
  EXPECT_EQ(atoms.size(), 3u);
  EXPECT_EQ(Height(b3), 3u);
  EXPECT_EQ(Width(b3), 3u);  // the middle level
  EXPECT_TRUE(IsComplemented(b3));
  EXPECT_TRUE(IsAtomistic(b3));
  // Join-irreducibles of a Boolean lattice are exactly its atoms.
  auto ji = JoinIrreducibles(b3);
  std::sort(ji.begin(), ji.end());
  auto sorted_atoms = atoms;
  std::sort(sorted_atoms.begin(), sorted_atoms.end());
  EXPECT_EQ(ji, sorted_atoms);
  // In a Boolean lattice complements are unique.
  for (LatticeElem x = 0; x < b3.size(); ++x) {
    EXPECT_EQ(ComplementsOf(b3, x).size(), 1u);
  }
}

TEST(LatticeAnalysisTest, Chain) {
  FiniteLattice c = FiniteLattice::Chain(5);
  EXPECT_EQ(Height(c), 4u);
  EXPECT_EQ(Width(c), 1u);
  EXPECT_EQ(Atoms(c).size(), 1u);
  EXPECT_FALSE(IsComplemented(c));  // middle elements lack complements
  EXPECT_FALSE(IsAtomistic(c));
  // Every non-bottom element of a chain is join-irreducible.
  EXPECT_EQ(JoinIrreducibles(c).size(), 4u);
  EXPECT_EQ(MeetIrreducibles(c).size(), 4u);
}

TEST(LatticeAnalysisTest, DiamondAndPentagon) {
  FiniteLattice m3 = FiniteLattice::DiamondM3();
  EXPECT_EQ(Atoms(m3).size(), 3u);
  EXPECT_EQ(Height(m3), 2u);
  EXPECT_EQ(Width(m3), 3u);
  EXPECT_TRUE(IsComplemented(m3));  // every atom has the other two
  EXPECT_EQ(ComplementsOf(m3, 1).size(), 2u);
  FiniteLattice n5 = FiniteLattice::PentagonN5();
  EXPECT_EQ(Height(n5), 3u);  // bot < x < y < top
  EXPECT_EQ(Width(n5), 2u);
  EXPECT_TRUE(IsComplemented(n5));
  EXPECT_FALSE(IsAtomistic(n5));
}

TEST(LatticeAnalysisTest, PartitionLatticeIsComplementedAndAtomistic) {
  // Classic facts about Pi_n (Ore): complemented, atomistic; atoms are
  // the partitions with exactly one 2-element block.
  auto pi4 = FullPartitionLattice(4);
  EXPECT_EQ(Atoms(pi4.lattice).size(), 6u);  // C(4,2)
  EXPECT_EQ(Height(pi4.lattice), 3u);
  EXPECT_TRUE(IsComplemented(pi4.lattice));
  EXPECT_TRUE(IsAtomistic(pi4.lattice));
  EXPECT_EQ(Width(pi4.lattice), 7u);  // the 7 partitions of shape 2+2 / 2+1+1... (level sizes 6+1)
}

TEST(LatticeAnalysisTest, Figure1LatticeSummary) {
  std::vector<Partition> atoms = {
      Partition::FromBlocks({{1}, {4}, {2, 3}}),
      Partition::FromBlocks({{1, 4}, {2, 3}}),
      Partition::FromBlocks({{1, 2}, {3, 4}}),
  };
  PartitionClosure c = *ClosePartitions(atoms, {"A", "B", "C"});
  std::string summary = Summarize(c.lattice);
  EXPECT_NE(summary.find("n=5"), std::string::npos);
  EXPECT_NE(summary.find("distributive=no"), std::string::npos);
  // The bottom (discrete) has no complement partner for B in this small
  // closure... assert only what we computed by hand: height 3 via
  // discrete < A < B < top.
  EXPECT_EQ(Height(c.lattice), 3u);
}

TEST(LatticeAnalysisTest, WidthMatchesBruteForceOnSmallLattices) {
  // Cross-check Dilworth-based width against brute-force antichain
  // enumeration.
  for (const FiniteLattice& l :
       {FiniteLattice::Boolean(3), FiniteLattice::DiamondM3(),
        FiniteLattice::PentagonN5(), FiniteLattice::Divisors(36),
        FiniteLattice::Chain(6)}) {
    const std::size_t n = l.size();
    ASSERT_LE(n, 20u);
    std::size_t best = 0;
    for (uint32_t mask = 1; mask < (1u << n); ++mask) {
      bool antichain = true;
      for (std::size_t a = 0; a < n && antichain; ++a) {
        if (!(mask & (1u << a))) continue;
        for (std::size_t b = a + 1; b < n && antichain; ++b) {
          if (!(mask & (1u << b))) continue;
          if (l.Leq(static_cast<LatticeElem>(a), static_cast<LatticeElem>(b)) ||
              l.Leq(static_cast<LatticeElem>(b), static_cast<LatticeElem>(a))) {
            antichain = false;
          }
        }
      }
      if (antichain) {
        best = std::max(best,
                        static_cast<std::size_t>(__builtin_popcount(mask)));
      }
    }
    EXPECT_EQ(Width(l), best);
  }
}

TEST(LatticeAnalysisTest, JoinIrreduciblesGenerateEverything) {
  // In a finite lattice every element is the join of the join-irreducibles
  // below it.
  for (const FiniteLattice& l :
       {FiniteLattice::Boolean(3), FiniteLattice::PentagonN5(),
        FiniteLattice::Divisors(60)}) {
    auto ji = JoinIrreducibles(l);
    for (LatticeElem x = 0; x < l.size(); ++x) {
      LatticeElem join = l.Bottom();
      for (LatticeElem j : ji) {
        if (l.Leq(j, x)) join = l.Join(join, j);
      }
      EXPECT_EQ(join, x);
    }
  }
}

}  // namespace
}  // namespace psem
