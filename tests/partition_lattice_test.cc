// Tests for L(I) (Theorem 1) and the full partition lattice Pi_k —
// including the executable reproductions of Figure 1 (L(I) is a lattice
// but not distributive) and Figure 2 (isomorphic lattices from an
// MVD-satisfying and an MVD-violating relation: Theorem 5).

#include <gtest/gtest.h>

#include "lattice/expr.h"
#include "partition/canonical.h"
#include "partition/partition_lattice.h"
#include "relational/dependency.h"

namespace psem {
namespace {

TEST(PartitionClosureTest, ClosureIsALattice) {
  std::vector<Partition> atoms = {
      Partition::FromBlocks({{1}, {4}, {2, 3}}),
      Partition::FromBlocks({{1, 4}, {2, 3}}),
      Partition::FromBlocks({{1, 2}, {3, 4}}),
  };
  PartitionClosure c = *ClosePartitions(atoms, {"A", "B", "C"});
  EXPECT_TRUE(c.lattice.ValidateAxioms().ok());
  EXPECT_GE(c.lattice.size(), 3u);
  // The atoms map to distinct elements.
  EXPECT_NE(c.atom_elem[0], c.atom_elem[1]);
  EXPECT_NE(c.atom_elem[1], c.atom_elem[2]);
}

TEST(PartitionClosureTest, Figure1LatticeIsNotDistributive) {
  // L(I) of Figure 1.
  std::vector<Partition> atoms = {
      Partition::FromBlocks({{1}, {4}, {2, 3}}),   // pi_A
      Partition::FromBlocks({{1, 4}, {2, 3}}),     // pi_B
      Partition::FromBlocks({{1, 2}, {3, 4}}),     // pi_C
  };
  PartitionClosure c = *ClosePartitions(atoms, {"A", "B", "C"});
  EXPECT_TRUE(c.lattice.ValidateAxioms().ok());
  EXPECT_FALSE(c.lattice.IsDistributive());
  // The specific witness from the figure: B*(A+C) != B*A + B*C.
  ExprArena arena;
  auto asg = c.AssignmentFor(arena);
  // Interning order: ensure attributes exist in the arena first.
  arena.Attr("A");
  arena.Attr("B");
  arena.Attr("C");
  asg = c.AssignmentFor(arena);
  LatticeElem lhs = *c.lattice.Eval(arena, *arena.Parse("B*(A+C)"), asg);
  LatticeElem rhs = *c.lattice.Eval(arena, *arena.Parse("B*A + B*C"), asg);
  EXPECT_NE(lhs, rhs);
}

TEST(PartitionClosureTest, RespectsMaxElements) {
  // Generators over a 6-element population can blow up; a tiny cap must
  // trip ResourceExhausted.
  std::vector<Partition> atoms = {
      Partition::FromBlocks({{0, 1}, {2, 3}, {4, 5}}),
      Partition::FromBlocks({{1, 2}, {3, 4}, {0, 5}}),
      Partition::FromBlocks({{0, 2}, {1, 4}, {3, 5}}),
  };
  auto r = ClosePartitions(atoms, {"A", "B", "C"}, /*max_elements=*/4);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(PartitionClosureTest, InterpretationLatticeMatchesTheorem1) {
  // I |= pd iff L(I) |= pd, for a sample of PDs.
  PartitionInterpretation interp;
  Partition pa = Partition::FromBlocks({{1}, {4}, {2, 3}});
  ASSERT_TRUE(interp
                  .DefineAttribute("A", pa,
                                   {{"a", *pa.BlockOf(1)},
                                    {"a1", *pa.BlockOf(4)},
                                    {"a2", *pa.BlockOf(2)}})
                  .ok());
  Partition pb = Partition::FromBlocks({{1, 4}, {2, 3}});
  ASSERT_TRUE(interp
                  .DefineAttribute("B", pb,
                                   {{"b", *pb.BlockOf(1)},
                                    {"b1", *pb.BlockOf(2)}})
                  .ok());
  Partition pc = Partition::FromBlocks({{1, 2}, {3, 4}});
  ASSERT_TRUE(interp
                  .DefineAttribute("C", pc,
                                   {{"c", *pc.BlockOf(1)},
                                    {"c1", *pc.BlockOf(3)}})
                  .ok());
  PartitionClosure c = *InterpretationLattice(interp);
  ExprArena arena;
  for (const char* pd_text :
       {"A = A*B", "A <= B", "B <= A", "C = A+B", "B*(A+C) = B*A + B*C",
        "A+C = B+C", "A*B = A", "C <= A+B"}) {
    Pd pd = *arena.ParsePd(pd_text);
    auto asg = c.AssignmentFor(arena);
    EXPECT_EQ(*interp.Satisfies(arena, pd),
              *c.lattice.Satisfies(arena, pd, asg))
        << pd_text;
  }
}

TEST(FullPartitionLatticeTest, BellNumbers) {
  EXPECT_EQ(FullPartitionLattice(1).lattice.size(), 1u);
  EXPECT_EQ(FullPartitionLattice(2).lattice.size(), 2u);
  EXPECT_EQ(FullPartitionLattice(3).lattice.size(), 5u);
  EXPECT_EQ(FullPartitionLattice(4).lattice.size(), 15u);
  EXPECT_EQ(FullPartitionLattice(5).lattice.size(), 52u);
}

TEST(FullPartitionLatticeTest, IsAValidLattice) {
  for (std::size_t k = 1; k <= 5; ++k) {
    auto full = FullPartitionLattice(k);
    EXPECT_TRUE(full.lattice.ValidateAxioms().ok()) << "Pi_" << k;
  }
}

TEST(FullPartitionLatticeTest, Pi3IsNotDistributiveButPi2Is) {
  EXPECT_TRUE(FullPartitionLattice(2).lattice.IsDistributive());
  EXPECT_FALSE(FullPartitionLattice(3).lattice.IsDistributive());
  // Pi_3 is M3 plus bottom ordering: actually Pi_3 IS M3 (5 elements).
  EXPECT_TRUE(
      FullPartitionLattice(3).lattice.IsomorphicTo(FiniteLattice::DiamondM3()));
}

TEST(FullPartitionLatticeTest, BoundsAreDiscreteAndOneBlock) {
  auto full = FullPartitionLattice(4);
  const Partition& bot = full.elements[full.lattice.Bottom()];
  const Partition& top = full.elements[full.lattice.Top()];
  EXPECT_EQ(bot.num_blocks(), 4u);
  EXPECT_EQ(top.num_blocks(), 1u);
}

// --- Figure 2 / Theorem 5 ------------------------------------------------------

TEST(Figure2Test, MvdIsNotExpressibleByPds) {
  // r1 satisfies the MVD A ->> B, r2 violates it, yet L(I(r1)) and
  // L(I(r2)) are isomorphic — so no set of PDs separates them.
  Database db;
  std::size_t i1 = db.AddRelation("r1", {"A", "B", "C"});
  Relation& r1 = db.relation(i1);
  r1.AddRow(&db.symbols(), {"a", "b1", "c1"});
  r1.AddRow(&db.symbols(), {"a", "b1", "c2"});
  r1.AddRow(&db.symbols(), {"a", "b2", "c1"});
  r1.AddRow(&db.symbols(), {"a", "b2", "c2"});
  std::size_t i2 = db.AddRelation("r2", {"A", "B", "C"});
  Relation& r2 = db.relation(i2);
  r2.AddRow(&db.symbols(), {"a", "b1", "c1"});
  r2.AddRow(&db.symbols(), {"a", "b2", "c2"});
  r2.AddRow(&db.symbols(), {"a", "b1", "c2"});

  Mvd mvd = *Mvd::Parse(&db.universe(), "A ->> B");
  ASSERT_TRUE(*SatisfiesMvd(r1, mvd));
  ASSERT_FALSE(*SatisfiesMvd(r2, mvd));

  PartitionInterpretation in1 = *CanonicalInterpretation(db, r1);
  PartitionInterpretation in2 = *CanonicalInterpretation(db, r2);
  PartitionClosure c1 = *InterpretationLattice(in1);
  PartitionClosure c2 = *InterpretationLattice(in2);
  EXPECT_TRUE(c1.lattice.IsomorphicTo(c2.lattice));
  // (The paper's Fig. 2 draws both lattices; isomorphism is the engine of
  // the Theorem 5 contradiction.)
}

TEST(Figure2Test, IsomorphismMapsAtomsToAtoms) {
  // Stronger check: the two lattices satisfy exactly the same PDs over
  // {A, B, C} when attributes are matched by name — sample a few.
  Database db;
  std::size_t i1 = db.AddRelation("r1", {"A", "B", "C"});
  Relation& r1 = db.relation(i1);
  r1.AddRow(&db.symbols(), {"a", "b1", "c1"});
  r1.AddRow(&db.symbols(), {"a", "b1", "c2"});
  r1.AddRow(&db.symbols(), {"a", "b2", "c1"});
  r1.AddRow(&db.symbols(), {"a", "b2", "c2"});
  std::size_t i2 = db.AddRelation("r2", {"A", "B", "C"});
  Relation& r2 = db.relation(i2);
  r2.AddRow(&db.symbols(), {"a", "b1", "c1"});
  r2.AddRow(&db.symbols(), {"a", "b2", "c2"});
  r2.AddRow(&db.symbols(), {"a", "b1", "c2"});
  ExprArena arena;
  for (const char* pd_text :
       {"A = B", "B <= A", "A = B+C", "B*C <= A", "A <= B*C", "C <= A+B",
        "B = B*C", "A = A*B*C"}) {
    Pd pd = *arena.ParsePd(pd_text);
    EXPECT_EQ(*RelationSatisfiesPd(db, r1, arena, pd),
              *RelationSatisfiesPd(db, r2, arena, pd))
        << pd_text;
  }
}

}  // namespace
}  // namespace psem
