// Robustness and failure-injection tests: random-byte parser fuzzing
// (graceful errors, no crashes), deep-nesting limits, degenerate inputs
// across the public API, and hostile-but-legal edge cases.

#include <gtest/gtest.h>

#include <string>

#include "consistency/pd_consistency.h"
#include "core/csv.h"
#include "core/io.h"
#include "core/theory.h"
#include "lattice/simplify.h"
#include "partition/partition.h"
#include "util/rng.h"

namespace psem {
namespace {

TEST(ParserFuzzTest, RandomBytesNeverCrash) {
  Rng rng(54000);
  ExprArena arena;
  const char alphabet[] = "AB()*+= <ab01_;\t\"";
  int parsed_ok = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    std::string input;
    std::size_t len = rng.Below(24);
    for (std::size_t i = 0; i < len; ++i) {
      input += alphabet[rng.Below(sizeof(alphabet) - 1)];
    }
    auto e = arena.Parse(input);
    auto pd = arena.ParsePd(input);
    parsed_ok += e.ok();
    (void)pd;
  }
  // The generator produces some valid expressions too.
  EXPECT_GT(parsed_ok, 0);
}

TEST(ParserFuzzTest, ConstraintAndDatabaseLoadersNeverCrash) {
  Rng rng(54100);
  const char alphabet[] = "relation row pd fd(),->AB12 \n#";
  for (int trial = 0; trial < 1500; ++trial) {
    std::string input;
    std::size_t len = rng.Below(60);
    for (std::size_t i = 0; i < len; ++i) {
      input += alphabet[rng.Below(sizeof(alphabet) - 1)];
    }
    Database db;
    (void)LoadDatabaseText(input, &db);
    ExprArena arena;
    Universe u;
    (void)LoadConstraintsText(input, &arena, &u);
    Database db2;
    (void)LoadCsvRelation(input, &db2);
  }
  SUCCEED();
}

TEST(DeepNestingTest, ParserAndDecidersHandleDeepExpressions) {
  // 300 levels of parenthesized nesting: parser recursion, printer,
  // simplifier, identity decider must all survive.
  ExprArena arena;
  std::string text = "A";
  for (int i = 0; i < 300; ++i) text = "(" + text + "*B)";
  auto e = arena.Parse(text);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(arena.Complexity(*e), 300u);
  std::string printed = arena.ToString(*e);
  EXPECT_EQ(*arena.Parse(printed), *e);
  // The whole thing collapses to A*B.
  EXPECT_EQ(arena.ToString(SimplifyExpr(&arena, *e)), "A*B");
}

TEST(DegenerateInputTest, SingleAttributeEverywhere) {
  PdTheory t;
  ASSERT_TRUE(t.AddParsed("A = A").ok());
  EXPECT_TRUE(*t.ImpliesParsed("A <= A"));
  EXPECT_TRUE(t.IsIdentity(*t.arena().ParsePd("A = A")));
  auto model = t.FindCounterexample(*t.arena().ParsePd("A = A"), 2);
  EXPECT_FALSE(model.has_value());
}

TEST(DegenerateInputTest, SelfReferentialEquations) {
  // x = x*y style loops must not hang the engine or the normalizer.
  ExprArena arena;
  std::vector<Pd> pds = {*arena.ParsePd("A = A*A"), *arena.ParsePd("B = B+B"),
                         *arena.ParsePd("C = C*C+C")};
  PdImplicationEngine engine(&arena, pds);
  EXPECT_TRUE(engine.Implies(*arena.ParsePd("A = A")));
  EXPECT_FALSE(engine.Implies(*arena.ParsePd("A = B")));
  Database db;
  std::size_t ri = db.AddRelation("R", {"A", "B", "C"});
  db.relation(ri).AddRow(&db.symbols(), {"x", "y", "z"});
  auto report = PdConsistent(&db, arena, pds);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->consistent);
}

TEST(DegenerateInputTest, ContradictionRichTheoryStillTerminates) {
  // Everything equals everything: the closure collapses to one class.
  ExprArena arena;
  std::vector<Pd> pds;
  for (char c = 'A'; c <= 'F'; ++c) {
    std::string eq(1, c);
    eq += " = ";
    eq += (c == 'F') ? 'A' : static_cast<char>(c + 1);
    pds.push_back(*arena.ParsePd(eq));
  }
  PdImplicationEngine engine(&arena, pds);
  EXPECT_TRUE(engine.Implies(*arena.ParsePd("A = F")));
  EXPECT_TRUE(engine.Implies(*arena.ParsePd("A*B = E+F")));
}

TEST(DegenerateInputTest, HugeSymbolsAndAttributeNames) {
  std::string long_name(1000, 'x');
  Database db;
  std::size_t ri = db.AddRelation("R", {long_name, "B"});
  db.relation(ri).AddRow(&db.symbols(), {std::string(5000, 'v'), "w"});
  EXPECT_EQ(db.relation(ri).size(), 1u);
  ExprArena arena;
  ExprId e = arena.Attr(long_name);
  EXPECT_EQ(arena.ToString(e), long_name);
}

TEST(DegenerateInputTest, PartitionOfOneAndDisjointProducts) {
  Partition single = Partition::OneBlock({7});
  EXPECT_EQ(single.num_blocks(), 1u);
  Partition other = Partition::OneBlock({9});
  Partition prod = Partition::Product(single, other);
  EXPECT_TRUE(prod.empty());  // disjoint populations: empty partition
  Partition sum = Partition::Sum(single, other);
  EXPECT_EQ(sum.num_blocks(), 2u);
  // Empty partition is absorbing for product, neutral for sum.
  EXPECT_TRUE(Partition::Product(prod, single).empty());
  EXPECT_EQ(Partition::Sum(prod, single), single);
}

TEST(DegenerateInputTest, ManyDuplicatePdsDoNotBlowUpV) {
  ExprArena arena;
  std::vector<Pd> pds;
  for (int i = 0; i < 200; ++i) pds.push_back(*arena.ParsePd("A*B <= C"));
  PdImplicationEngine engine(&arena, pds);
  EXPECT_TRUE(engine.Implies(*arena.ParsePd("A*B <= C")));
  // Hash-consing keeps V at the handful of distinct subexpressions.
  EXPECT_LE(engine.stats().num_vertices, 8u);
}

TEST(DegenerateInputTest, WideUniverseConsistency) {
  // 64+ attributes crossing the bitset word boundary.
  Database db;
  std::vector<std::string> attrs;
  for (int i = 0; i < 70; ++i) attrs.push_back("A" + std::to_string(i));
  std::size_t ri = db.AddRelation("wide", attrs);
  std::vector<std::string> row;
  for (int i = 0; i < 70; ++i) row.push_back("v" + std::to_string(i % 7));
  db.relation(ri).AddRow(&db.symbols(), row);
  ExprArena arena;
  std::vector<Pd> pds = {*arena.ParsePd("A0 <= A69"),
                         *arena.ParsePd("A69 = A1+A68")};
  auto report = PdConsistent(&db, arena, pds);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->consistent);
}

}  // namespace
}  // namespace psem
