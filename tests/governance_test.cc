// Execution-governance tests: every governed loop (ALG closure — serial,
// parallel, incremental — the Whitman deciders, the chase, the repair
// loop, and the NAE/CAD searches) must (a) surface a tripped deadline,
// cancellation, or budget as the documented StatusCode, and (b) leave its
// object fully usable: re-asking with a fresh context yields the same
// verdict a cold engine gives.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "chase/tableau.h"
#include "consistency/cad.h"
#include "consistency/nae3sat.h"
#include "consistency/pd_consistency.h"
#include "consistency/repair.h"
#include "core/implication.h"
#include "lattice/whitman.h"
#include "util/exec_context.h"

namespace psem {
namespace {

using std::chrono::milliseconds;

ExecContext Expired() {
  ExecContext ctx;
  ctx.WithDeadline(ExecContext::Clock::now() - milliseconds(1));
  return ctx;
}

ExecContext Cancelled() {
  CancelToken token;
  token.Cancel();
  ExecContext ctx;
  ctx.WithCancelToken(token);
  return ctx;
}

std::vector<Pd> ChainTheory(ExprArena* arena, int n) {
  // A_i * A_{i+1} <= A_{i+2}: enough distinct subexpressions to make the
  // closure do real work without being slow.
  std::vector<Pd> pds;
  for (int i = 0; i + 2 < n; ++i) {
    std::string s = "A" + std::to_string(i) + "*A" + std::to_string(i + 1) +
                    " <= A" + std::to_string(i + 2);
    pds.push_back(*arena->ParsePd(s));
  }
  return pds;
}

// --- ALG closure: deadline / cancel / budgets -------------------------------

TEST(GovernanceClosureTest, ExpiredDeadlineSurfacesAndEngineStaysUsable) {
  ExprArena arena;
  auto pds = ChainTheory(&arena, 12);
  Pd query = *arena.ParsePd("A0*A1 <= A11");

  PdImplicationEngine cold(&arena, pds);
  bool expected = cold.Implies(query);

  PdImplicationEngine engine(&arena, pds);
  auto r = engine.Implies(query, Expired());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);

  // Contract: the engine is left valid; the same query with an unbounded
  // context resumes from the partial closure and matches the cold engine.
  auto retry = engine.Implies(query, ExecContext::Unbounded());
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(*retry, expected);
  EXPECT_EQ(engine.Implies(query), expected);  // legacy path too
}

TEST(GovernanceClosureTest, CancellationIsReportedAsCancelled) {
  ExprArena arena;
  auto pds = ChainTheory(&arena, 10);
  Pd query = *arena.ParsePd("A0 <= A9");
  PdImplicationEngine engine(&arena, pds);
  auto r = engine.Implies(query, Cancelled());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);

  // Resetting the token (or using a fresh context) makes the same engine
  // answer correctly.
  CancelToken token;
  ExecContext ctx;
  ctx.WithCancelToken(token);
  auto retry = engine.Implies(query, ctx);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  PdImplicationEngine cold(&arena, pds);
  EXPECT_EQ(*retry, cold.Implies(query));
}

TEST(GovernanceClosureTest, MidClosureCancelFromAnotherThread) {
  // A genuinely concurrent cancel: a second thread flips the token while
  // the closure sweeps. Whether the cancel lands before or after the
  // fixpoint finishes is timing-dependent, but both outcomes have a
  // fixed contract — a kCancelled error or the correct verdict, and the
  // engine answers correctly afterward either way.
  ExprArena arena;
  auto pds = ChainTheory(&arena, 120);
  Pd query = *arena.ParsePd("A0*A1 <= A119");
  PdImplicationEngine cold(&arena, pds);
  bool expected = cold.Implies(query);

  PdImplicationEngine engine(&arena, pds);
  CancelToken token;
  ExecContext ctx;
  ctx.WithCancelToken(token);
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    token.Cancel();
  });
  auto r = engine.Implies(query, ctx);
  canceller.join();
  if (r.ok()) {
    EXPECT_EQ(*r, expected);  // closure beat the cancel
  } else {
    EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  }
  auto retry = engine.Implies(query, ExecContext::Unbounded());
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(*retry, expected);
}

TEST(GovernanceClosureTest, VertexBudgetRejectsBeforeMutating) {
  ExprArena arena;
  auto pds = ChainTheory(&arena, 10);
  PdImplicationEngine engine(&arena, pds);
  std::size_t v_before = engine.stats().num_vertices;

  ExecContext ctx;
  ctx.WithMaxVertices(1);  // far below the constraints' own |V|
  auto r = engine.Implies(*arena.ParsePd("A0 <= A9"), ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(r.status().message().find("vertex budget"), std::string::npos);
  // The rejected query must not have grown V.
  EXPECT_EQ(engine.stats().num_vertices, v_before);

  PdImplicationEngine cold(&arena, pds);
  EXPECT_EQ(engine.Implies(*arena.ParsePd("A0 <= A9")),
            cold.Implies(*arena.ParsePd("A0 <= A9")));
}

TEST(GovernanceClosureTest, ArcBudgetTripsMidClosure) {
  ExprArena arena;
  auto pds = ChainTheory(&arena, 14);
  Pd query = *arena.ParsePd("A0*A1 <= A13");

  PdImplicationEngine engine(&arena, pds);
  ExecContext ctx;
  ctx.WithMaxArcs(1);  // any closure exceeds one arc immediately
  auto r = engine.Implies(query, ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(r.status().message().find("arc budget"), std::string::npos);
  // The budget tripped mid-closure: the abort is accounted and the
  // partial arc matrix is kept as a warm start.
  EXPECT_GE(engine.stats().aborted_closures, 1u);

  PdImplicationEngine cold(&arena, pds);
  auto retry = engine.Implies(query, ExecContext::Unbounded());
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(*retry, cold.Implies(query));
}

TEST(GovernanceClosureTest, ParallelEngineHonorsDeadlineAndRecovers) {
  ExprArena arena;
  auto pds = ChainTheory(&arena, 14);
  Pd query = *arena.ParsePd("A0*A1 <= A13");

  EngineOptions opts;
  opts.num_threads = 4;
  PdImplicationEngine engine(&arena, pds, opts);
  auto r = engine.Implies(query, Expired());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);

  PdImplicationEngine cold(&arena, pds);
  auto retry = engine.Implies(query, ExecContext::Unbounded());
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(*retry, cold.Implies(query));
}

TEST(GovernanceClosureTest, IncrementalClosureIsGovernedToo) {
  ExprArena arena;
  auto pds = ChainTheory(&arena, 12);
  PdImplicationEngine engine(&arena, pds);
  // Warm the engine: full closure over the constraints.
  ASSERT_TRUE(engine.Implies(*arena.ParsePd("A0 <= A1"), ExecContext::Unbounded()).ok());
  ASSERT_TRUE(engine.stats().cold_closures >= 1);

  // A query with fresh subexpressions triggers the incremental path; an
  // expired deadline must stop it cleanly.
  Pd fresh = *arena.ParsePd("A0*A2*A4 <= A5+A7");
  auto r = engine.Implies(fresh, Expired());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);

  PdImplicationEngine cold(&arena, pds);
  auto retry = engine.Implies(fresh, ExecContext::Unbounded());
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(*retry, cold.Implies(fresh));
  EXPECT_GE(engine.stats().incremental_closures, 1u);
}

// --- batch: failures are per-query, not collective --------------------------

TEST(GovernanceBatchTest, VertexBudgetFailsOnlyTheOffendingQuery) {
  ExprArena arena;
  std::vector<Pd> pds = {*arena.ParsePd("A <= B")};
  // Budget: room for the constraint vertices plus the small queries, but
  // not for the deep one.
  ExecContext ctx;
  ctx.WithMaxVertices(8);

  std::string deep = "A";
  for (int i = 0; i < 40; ++i) deep = "(" + deep + "*C" + std::to_string(i) + ")";
  std::vector<Pd> queries = {*arena.ParsePd("A <= B"),
                             *arena.ParsePd(deep + " <= B"),
                             *arena.ParsePd("A*B <= B")};

  PdImplicationEngine engine(&arena, pds);
  auto results = engine.BatchImplies(queries, ctx);
  ASSERT_EQ(results.size(), 3u);
  ASSERT_TRUE(results[0].ok()) << results[0].status().ToString();
  EXPECT_TRUE(*results[0]);
  ASSERT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].status().code(), StatusCode::kResourceExhausted);
  ASSERT_TRUE(results[2].ok()) << results[2].status().ToString();

  // Per-query verdicts match an ungoverned cold engine.
  PdImplicationEngine cold(&arena, pds);
  EXPECT_EQ(*results[0], cold.Implies(queries[0]));
  EXPECT_EQ(*results[2], cold.Implies(queries[2]));
}

TEST(GovernanceBatchTest, DeadlineFailsPendingQueriesKeepsCachedOnes) {
  ExprArena arena;
  auto pds = ChainTheory(&arena, 10);
  Pd q0 = *arena.ParsePd("A0 <= A9");
  Pd q1 = *arena.ParsePd("A1*A2 <= A9");

  PdImplicationEngine engine(&arena, pds);
  bool v0 = engine.Implies(q0);  // warms the cache for q0

  std::vector<Pd> queries = {q0, q1};
  auto results = engine.BatchImplies(queries, Expired());
  ASSERT_EQ(results.size(), 2u);
  // q0 was answerable from the cache without touching the closure.
  ASSERT_TRUE(results[0].ok());
  EXPECT_EQ(*results[0], v0);
  // q1's subexpressions may already be covered by the warm closure (in
  // which case it is answered without recomputing) or may require the
  // expired-deadline closure. Accept either a verdict matching the cold
  // engine or a clean deadline error — never a crash or a wrong verdict.
  PdImplicationEngine cold(&arena, pds);
  if (results[1].ok()) {
    EXPECT_EQ(*results[1], cold.Implies(q1));
  } else {
    EXPECT_EQ(results[1].status().code(), StatusCode::kResourceExhausted);
  }
}

// --- Whitman deciders --------------------------------------------------------

TEST(GovernanceWhitmanTest, DepthBudgetTripsOnDeepTerms) {
  ExprArena arena;
  std::string deep = "A";
  for (int i = 0; i < 200; ++i) deep = "(" + deep + "*B)";
  ExprId p = *arena.Parse(deep);
  ExprId q = *arena.Parse("A*B");

  ExecContext ctx;
  ctx.WithMaxDepth(10);
  WhitmanMemo memo(&arena);
  auto r = memo.LeqChecked(p, q, ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(r.status().message().find("depth"), std::string::npos);

  // After the trip the decider still answers correctly (fresh context).
  auto full = memo.LeqChecked(p, q, ExecContext::Unbounded());
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(*full, memo.Leq(p, q));

  WhitmanIterative iter(&arena);
  auto ri = iter.LeqChecked(p, q, ctx);
  ASSERT_FALSE(ri.ok());
  EXPECT_EQ(ri.status().code(), StatusCode::kResourceExhausted);
  auto fi = iter.LeqChecked(p, q, ExecContext::Unbounded());
  ASSERT_TRUE(fi.ok());
  EXPECT_EQ(*fi, iter.Leq(p, q));
}

TEST(GovernanceWhitmanTest, UnboundedCheckedMatchesLegacyEverywhere) {
  ExprArena arena;
  WhitmanMemo memo(&arena);
  WhitmanIterative iter(&arena);
  const char* cases[][2] = {{"A*B", "A"},       {"A", "A+B"},
                            {"A*(B+C)", "A*B+A*C"}, {"A*B+A*C", "A*(B+C)"},
                            {"(A+B)*(A+C)", "A+B*C"}};
  for (const auto& c : cases) {
    ExprId p = *arena.Parse(c[0]);
    ExprId q = *arena.Parse(c[1]);
    EXPECT_EQ(*memo.LeqChecked(p, q), memo.Leq(p, q)) << c[0] << " <= " << c[1];
    EXPECT_EQ(*iter.LeqChecked(p, q), iter.Leq(p, q)) << c[0] << " <= " << c[1];
  }
}

// --- chase -------------------------------------------------------------------

Database FragmentedUniversityDb() {
  Database db;
  std::size_t e = db.AddRelation("enrolled", {"Student", "Course"});
  db.relation(e).AddRow(&db.symbols(), {"ann", "db101"});
  db.relation(e).AddRow(&db.symbols(), {"bob", "db101"});
  std::size_t t = db.AddRelation("taught_by", {"Course", "Prof"});
  db.relation(t).AddRow(&db.symbols(), {"db101", "codd"});
  return db;
}

TEST(GovernanceChaseTest, DeadlineStopsChaseAndRechaseConverges) {
  Database db = FragmentedUniversityDb();
  std::vector<Fd> fds = {*Fd::Parse(&db.universe(), "Course -> Prof"),
                         *Fd::Parse(&db.universe(), "Student -> Course")};

  Tableau t = Tableau::Representative(db, db.universe().size());
  ChaseResult aborted = ChaseWithFds(&t, fds, Expired());
  ASSERT_FALSE(aborted.status.ok());
  EXPECT_EQ(aborted.status.code(), StatusCode::kResourceExhausted);

  // The partially chased tableau holds only sound merges: re-chasing it
  // reaches the same verdict as a cold chase.
  Tableau cold_t = Tableau::Representative(db, db.universe().size());
  ChaseResult cold = ChaseWithFds(&cold_t, fds);
  ASSERT_TRUE(cold.status.ok());
  ChaseResult resumed = ChaseWithFds(&t, fds);
  ASSERT_TRUE(resumed.status.ok());
  EXPECT_EQ(resumed.consistent, cold.consistent);
}

TEST(GovernanceChaseTest, RoundBudgetTrips) {
  Database db = FragmentedUniversityDb();
  std::vector<Fd> fds = {*Fd::Parse(&db.universe(), "Course -> Prof"),
                         *Fd::Parse(&db.universe(), "Student -> Course")};
  // This chase performs merges, so it needs at least two full passes
  // (one that merges + one that verifies the fixpoint).
  Tableau cold_t = Tableau::Representative(db, db.universe().size());
  ChaseResult cold = ChaseWithFds(&cold_t, fds);
  ASSERT_GE(cold.rounds, 2u);

  ExecContext ctx;
  ctx.WithMaxRounds(1);
  Tableau t = Tableau::Representative(db, db.universe().size());
  ChaseResult r = ChaseWithFds(&t, fds, ctx);
  ASSERT_FALSE(r.status.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(r.status.message().find("round budget"), std::string::npos);
}

TEST(GovernanceChaseTest, WeakInstanceConsistentCheckedMatchesLegacy) {
  Database db = FragmentedUniversityDb();
  std::vector<Fd> fds = {*Fd::Parse(&db.universe(), "Course -> Prof")};
  bool legacy = WeakInstanceConsistent(db, fds);
  auto checked =
      WeakInstanceConsistentChecked(db, fds, 0, ExecContext::Unbounded());
  ASSERT_TRUE(checked.ok());
  EXPECT_EQ(*checked, legacy);

  auto aborted = WeakInstanceConsistentChecked(db, fds, 0, Expired());
  ASSERT_FALSE(aborted.ok());
  EXPECT_EQ(aborted.status().code(), StatusCode::kResourceExhausted);
}

// --- repair loop -------------------------------------------------------------

TEST(GovernanceRepairTest, DeadlineAndCancelStopMaterialization) {
  Database db = FragmentedUniversityDb();
  ExprArena arena;
  std::vector<Pd> pds = {*arena.ParsePd("Course <= Prof")};

  auto ok = MaterializeWeakInstance(&db, arena, pds);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();

  Database db2 = FragmentedUniversityDb();
  auto dead = MaterializeWeakInstance(&db2, arena, pds, 64, Expired());
  ASSERT_FALSE(dead.ok());
  EXPECT_EQ(dead.status().code(), StatusCode::kResourceExhausted);

  Database db3 = FragmentedUniversityDb();
  auto cancel = MaterializeWeakInstance(&db3, arena, pds, 64, Cancelled());
  ASSERT_FALSE(cancel.ok());
  EXPECT_EQ(cancel.status().code(), StatusCode::kCancelled);
}

TEST(GovernanceRepairTest, PdConsistentHonorsDeadline) {
  Database db = FragmentedUniversityDb();
  ExprArena arena;
  std::vector<Pd> pds = {*arena.ParsePd("Course <= Prof")};
  auto cold = PdConsistent(&db, arena, pds);
  ASSERT_TRUE(cold.ok());

  auto dead = PdConsistent(&db, arena, pds, Expired());
  ASSERT_FALSE(dead.ok());
  EXPECT_EQ(dead.status().code(), StatusCode::kResourceExhausted);

  // The database was not harmed: the unbounded call still succeeds and
  // agrees with the cold verdict.
  auto again = PdConsistent(&db, arena, pds);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->consistent, cold->consistent);
}

// --- NAE / CAD searches ------------------------------------------------------

TEST(GovernanceNaeTest, NodeBudgetYieldsUndecidedWithStatus) {
  NaeFormula f = RandomNae3(24, 90, 7);
  ExecContext ctx;
  ctx.WithMaxSolverNodes(2);
  NaeSolveResult r = NaeSolve(f, UINT64_MAX, ctx);
  ASSERT_FALSE(r.decided);
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(r.assignment.has_value());

  // Legacy budget parameter reports the same way.
  NaeSolveResult r2 = NaeSolve(f, 2);
  ASSERT_FALSE(r2.decided);
  EXPECT_EQ(r2.status.code(), StatusCode::kResourceExhausted);

  // Unbudgeted, the formula is decidable and status is OK.
  NaeSolveResult full = NaeSolve(f);
  EXPECT_TRUE(full.decided);
  EXPECT_TRUE(full.status.ok());
}

TEST(GovernanceNaeTest, EffectiveBudgetIsTheMinimum) {
  NaeFormula f = RandomNae3(24, 90, 7);
  ExecContext ctx;
  ctx.WithMaxSolverNodes(1000000);
  NaeSolveResult r = NaeSolve(f, 2, ctx);  // the explicit 2 must win
  EXPECT_FALSE(r.decided);
  EXPECT_LE(r.nodes, 3u);
}

TEST(GovernanceCadTest, UndecidedByBudgetIsDistinctFromInconsistent) {
  // The Office -> Prof CAD example: decidable (inconsistent) without a
  // budget, undecided with a one-node budget.
  Database db;
  std::size_t to = db.AddRelation("taught_by", {"Course", "Prof"});
  db.relation(to).AddRow(&db.symbols(), {"db101", "codd"});
  db.relation(to).AddRow(&db.symbols(), {"ml201", "pearl"});
  std::size_t of = db.AddRelation("office_of", {"Prof", "Office"});
  db.relation(of).AddRow(&db.symbols(), {"codd", "r32"});
  std::vector<Fd> fds = {*Fd::Parse(&db.universe(), "Course -> Prof"),
                         *Fd::Parse(&db.universe(), "Prof -> Office"),
                         *Fd::Parse(&db.universe(), "Office -> Prof")};

  CadResult full = CadConsistent(db, fds);
  ASSERT_TRUE(full.decided);
  EXPECT_TRUE(full.status.ok());  // a verdict — even INCONSISTENT — is not
                                  // an error
  EXPECT_FALSE(full.consistent);

  CadResult budget = CadConsistent(db, fds, 1);
  ASSERT_FALSE(budget.decided);
  EXPECT_EQ(budget.status.code(), StatusCode::kResourceExhausted);

  ExecContext ctx;
  ctx.WithMaxSolverNodes(1);
  CadResult ctx_budget = CadConsistent(db, fds, UINT64_MAX, ctx);
  ASSERT_FALSE(ctx_budget.decided);
  EXPECT_EQ(ctx_budget.status.code(), StatusCode::kResourceExhausted);

  CadResult cancelled = CadConsistent(db, fds, UINT64_MAX, Cancelled());
  ASSERT_FALSE(cancelled.decided);
  EXPECT_EQ(cancelled.status.code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace psem
