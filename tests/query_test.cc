// Tests for conjunctive queries: parsing, closed-world evaluation against
// relational-algebra equivalents, and certain-answer semantics over weak
// instances.

#include <gtest/gtest.h>

#include "query/conjunctive.h"
#include "relational/algebra.h"

namespace psem {
namespace {

class QueryFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    emp_ = db_.AddRelation("emp", {"Name", "Dept"});
    db_.relation(emp_).AddRow(&db_.symbols(), {"ann", "sales"});
    db_.relation(emp_).AddRow(&db_.symbols(), {"bob", "sales"});
    db_.relation(emp_).AddRow(&db_.symbols(), {"eve", "eng"});
    dept_ = db_.AddRelation("dept", {"Dept", "Head"});
    db_.relation(dept_).AddRow(&db_.symbols(), {"sales", "kim"});
    db_.relation(dept_).AddRow(&db_.symbols(), {"eng", "lee"});
  }
  Database db_;
  std::size_t emp_, dept_;
};

TEST(QueryParseTest, ParsesHeadBodyAndTerms) {
  auto q = ConjunctiveQuery::Parse(
      "ans(X, Z) :- emp(X, Y), dept(Y, Z), flag(\"on\")");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->variables.size(), 3u);
  EXPECT_EQ(q->head.size(), 2u);
  ASSERT_EQ(q->body.size(), 3u);
  EXPECT_FALSE(q->body[2].terms[0].is_variable);
  EXPECT_EQ(q->body[2].terms[0].constant, "on");
  // Round trip through ToString re-parses.
  auto q2 = ConjunctiveQuery::Parse(q->ToString());
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2->ToString(), q->ToString());
}

TEST(QueryParseTest, LowercaseTokensAreConstants) {
  auto q = ConjunctiveQuery::Parse("ans(X) :- emp(X, sales)");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(q->body[0].terms[1].is_variable);
  EXPECT_EQ(q->body[0].terms[1].constant, "sales");
}

TEST(QueryParseTest, Errors) {
  EXPECT_FALSE(ConjunctiveQuery::Parse("no separator").ok());
  EXPECT_FALSE(ConjunctiveQuery::Parse("ans(X) :- ").ok());
  EXPECT_FALSE(ConjunctiveQuery::Parse("ans(X) :- emp(Y, Z)").ok());  // unsafe
  EXPECT_FALSE(ConjunctiveQuery::Parse("ans(x) :- emp(x, Y)").ok());  // const head
  EXPECT_FALSE(ConjunctiveQuery::Parse("ans() :- emp(X, Y)").ok());
  EXPECT_FALSE(ConjunctiveQuery::Parse("ans(X) :- emp X Y").ok());
}

TEST_F(QueryFixture, JoinQueryMatchesAlgebra) {
  auto q = ConjunctiveQuery::Parse("ans(X, Z) :- emp(X, Y), dept(Y, Z)");
  ASSERT_TRUE(q.ok());
  Relation answers = *EvaluateQuery(&db_, *q);
  EXPECT_EQ(answers.size(), 3u);
  // Algebra equivalent: project(join(emp, dept), {Name, Head}).
  Relation joined = NaturalJoin(db_.relation(emp_), db_.relation(dept_));
  Relation expected = *Project(
      joined, {*db_.universe().Require("Name"), *db_.universe().Require("Head")});
  ASSERT_EQ(answers.size(), expected.size());
  for (const Tuple& t : expected.rows()) {
    EXPECT_TRUE(answers.Contains(t));
  }
}

TEST_F(QueryFixture, ConstantsFilter) {
  auto q = ConjunctiveQuery::Parse("ans(X) :- emp(X, sales)");
  ASSERT_TRUE(q.ok());
  Relation answers = *EvaluateQuery(&db_, *q);
  EXPECT_EQ(answers.size(), 2u);  // ann, bob
  auto q2 = ConjunctiveQuery::Parse("ans(X) :- emp(X, nowhere)");
  EXPECT_EQ(EvaluateQuery(&db_, *q2)->size(), 0u);
}

TEST_F(QueryFixture, RepeatedVariablesEnforceEquality) {
  // Self-join: employees in a department whose head shares the dept name?
  // Use a repeated variable within one atom instead: dept(Y, Y) — no row.
  auto q = ConjunctiveQuery::Parse("ans(Y) :- dept(Y, Y)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(EvaluateQuery(&db_, *q)->size(), 0u);
  // Cross-atom repeated variable: pairs of employees in the same dept.
  auto q2 = ConjunctiveQuery::Parse("ans(X, W) :- emp(X, Y), emp(W, Y)");
  ASSERT_TRUE(q2.ok());
  // sales: {ann,bob}^2 = 4 pairs; eng: {eve}^2 = 1.
  EXPECT_EQ(EvaluateQuery(&db_, *q2)->size(), 5u);
}

TEST_F(QueryFixture, UnknownRelationOrArityMismatch) {
  auto q = ConjunctiveQuery::Parse("ans(X) :- ghost(X)");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(EvaluateQuery(&db_, *q).ok());
  auto q2 = ConjunctiveQuery::Parse("ans(X) :- emp(X)");
  ASSERT_TRUE(q2.ok());
  EXPECT_FALSE(EvaluateQuery(&db_, *q2).ok());
}

// --- certain answers -----------------------------------------------------------

TEST(CertainAnswerTest, InfersAcrossFragments) {
  // enrolled(Student, Course), taught_by(Course, Prof), Course -> Prof.
  Database db;
  std::size_t e = db.AddRelation("enrolled", {"Student", "Course"});
  db.relation(e).AddRow(&db.symbols(), {"ann", "db101"});
  db.relation(e).AddRow(&db.symbols(), {"bob", "ml201"});
  std::size_t t = db.AddRelation("taught_by", {"Course", "Prof"});
  db.relation(t).AddRow(&db.symbols(), {"db101", "codd"});
  std::vector<Fd> fds = {*Fd::Parse(&db.universe(), "Course -> Prof")};

  // ans(S, P) :- at(Student=S, Prof=P): one universal atom.
  QueryTerm s{true, 0, ""}, p{true, 1, ""};
  UniversalAtom atom{{{"Student", s}, {"Prof", p}}};
  Relation certain =
      *CertainAnswers(&db, fds, {"S", "P"}, {0, 1}, {atom});
  ASSERT_EQ(certain.size(), 1u);
  EXPECT_EQ(db.symbols().NameOf(certain.row(0)[0]), "ann");
  EXPECT_EQ(db.symbols().NameOf(certain.row(0)[1]), "codd");
}

TEST(CertainAnswerTest, JoinOnNullClassesWithinARow) {
  // Two universal atoms joined on a variable that resolves through a
  // null class: certain because the null is the SAME in every weak
  // instance completion pattern... here we check the simpler positive
  // case: two atoms over the same row chain Student -> Course -> Prof.
  Database db;
  std::size_t e = db.AddRelation("enrolled", {"Student", "Course"});
  db.relation(e).AddRow(&db.symbols(), {"ann", "db101"});
  std::size_t t = db.AddRelation("taught_by", {"Course", "Prof"});
  db.relation(t).AddRow(&db.symbols(), {"db101", "codd"});
  std::vector<Fd> fds = {*Fd::Parse(&db.universe(), "Course -> Prof")};
  QueryTerm s{true, 0, ""}, c{true, 1, ""}, p{true, 2, ""};
  UniversalAtom a1{{{"Student", s}, {"Course", c}}};
  UniversalAtom a2{{{"Course", c}, {"Prof", p}}};
  Relation certain =
      *CertainAnswers(&db, fds, {"S", "C", "P"}, {0, 2}, {a1, a2});
  ASSERT_EQ(certain.size(), 1u);
  EXPECT_EQ(db.symbols().NameOf(certain.row(0)[1]), "codd");
}

TEST(CertainAnswerTest, ConstantsInUniversalAtoms) {
  Database db;
  std::size_t e = db.AddRelation("enrolled", {"Student", "Course"});
  db.relation(e).AddRow(&db.symbols(), {"ann", "db101"});
  db.relation(e).AddRow(&db.symbols(), {"bob", "ml201"});
  QueryTerm s{true, 0, ""};
  QueryTerm course_const{false, 0, "db101"};
  UniversalAtom atom{{{"Student", s}, {"Course", course_const}}};
  Relation certain = *CertainAnswers(&db, {}, {"S"}, {0}, {atom});
  ASSERT_EQ(certain.size(), 1u);
  EXPECT_EQ(db.symbols().NameOf(certain.row(0)[0]), "ann");
}

TEST(CertainAnswerTest, NullsAreNotAnswers) {
  // Without the FD, bob's professor is unknown: no certain answer for
  // him, and querying Prof alone returns only codd.
  Database db;
  std::size_t e = db.AddRelation("enrolled", {"Student", "Course"});
  db.relation(e).AddRow(&db.symbols(), {"bob", "ml201"});
  std::size_t t = db.AddRelation("taught_by", {"Course", "Prof"});
  db.relation(t).AddRow(&db.symbols(), {"db101", "codd"});
  QueryTerm s{true, 0, ""}, p{true, 1, ""};
  UniversalAtom atom{{{"Student", s}, {"Prof", p}}};
  Relation certain = *CertainAnswers(&db, {}, {"S", "P"}, {0, 1}, {atom});
  EXPECT_EQ(certain.size(), 0u);
}

// --- containment (Chandra-Merlin) ----------------------------------------------

TEST(QueryContainmentTest, IdenticalAndRenamedQueriesEquivalent) {
  auto q1 = *ConjunctiveQuery::Parse("ans(X, Y) :- r(X, Z), s(Z, Y)");
  auto q2 = *ConjunctiveQuery::Parse("ans(A, B) :- r(A, C), s(C, B)");
  EXPECT_TRUE(*QueryEquivalent(q1, q2));
}

TEST(QueryContainmentTest, MoreAtomsMeansContained) {
  // q1 has an extra constraint: q1 subset q2, not conversely.
  auto q1 = *ConjunctiveQuery::Parse("ans(X) :- r(X, Y), s(Y)");
  auto q2 = *ConjunctiveQuery::Parse("ans(X) :- r(X, Y)");
  EXPECT_TRUE(*QueryContained(q1, q2));
  EXPECT_FALSE(*QueryContained(q2, q1));
  EXPECT_FALSE(*QueryEquivalent(q1, q2));
}

TEST(QueryContainmentTest, RedundantAtomFoldsViaHomomorphism) {
  // The classic: a duplicated atom with a fresh variable is redundant.
  auto q1 = *ConjunctiveQuery::Parse("ans(X) :- r(X, Y)");
  auto q2 = *ConjunctiveQuery::Parse("ans(X) :- r(X, Y), r(X, W)");
  EXPECT_TRUE(*QueryEquivalent(q1, q2));
}

TEST(QueryContainmentTest, ConstantsBreakContainment) {
  auto q1 = *ConjunctiveQuery::Parse("ans(X) :- r(X, a)");
  auto q2 = *ConjunctiveQuery::Parse("ans(X) :- r(X, Y)");
  EXPECT_TRUE(*QueryContained(q1, q2));   // constant specializes
  EXPECT_FALSE(*QueryContained(q2, q1));
  auto q3 = *ConjunctiveQuery::Parse("ans(X) :- r(X, b)");
  EXPECT_FALSE(*QueryContained(q1, q3));  // different constants
}

TEST(QueryContainmentTest, DisjointRelationsNotContained) {
  auto q1 = *ConjunctiveQuery::Parse("ans(X) :- r(X)");
  auto q2 = *ConjunctiveQuery::Parse("ans(X) :- s(X)");
  EXPECT_FALSE(*QueryContained(q1, q2));
}

TEST(QueryContainmentTest, ArityMismatchesRejected) {
  auto q1 = *ConjunctiveQuery::Parse("ans(X, Y) :- r(X, Y)");
  auto q2 = *ConjunctiveQuery::Parse("ans(X) :- r(X, Y)");
  EXPECT_FALSE(QueryContained(q1, q2).ok());
  auto q3 = *ConjunctiveQuery::Parse("ans(X) :- r(X, Y), r(X)");
  auto q4 = *ConjunctiveQuery::Parse("ans(X) :- r(X, Y)");
  EXPECT_FALSE(QueryContained(q3, q4).ok());  // r with two arities in q3
}

TEST(QueryContainmentTest, ContainmentImpliesAnswerContainmentOnData) {
  // Semantic check: whenever QueryContained says yes, the answer sets on
  // a concrete database nest accordingly.
  Database db;
  std::size_t r = db.AddRelation("r", {"P0", "P1"});
  std::size_t s = db.AddRelation("s", {"Q0"});
  db.relation(r).AddRow(&db.symbols(), {"1", "2"});
  db.relation(r).AddRow(&db.symbols(), {"3", "4"});
  db.relation(s).AddRow(&db.symbols(), {"2"});
  auto q1 = *ConjunctiveQuery::Parse("ans(X) :- r(X, Y), s(Y)");
  auto q2 = *ConjunctiveQuery::Parse("ans(X) :- r(X, Y)");
  ASSERT_TRUE(*QueryContained(q1, q2));
  Relation a1 = *EvaluateQuery(&db, q1);
  Relation a2 = *EvaluateQuery(&db, q2);
  for (const Tuple& t : a1.rows()) {
    EXPECT_TRUE(a2.Contains(t));
  }
  EXPECT_EQ(a1.size(), 1u);
  EXPECT_EQ(a2.size(), 2u);
}

TEST(CertainAnswerTest, InconsistentDatabaseRefused) {
  Database db;
  std::size_t r1 = db.AddRelation("R1", {"A", "B"});
  db.relation(r1).AddRow(&db.symbols(), {"a", "b1"});
  std::size_t r2 = db.AddRelation("R2", {"A", "B"});
  db.relation(r2).AddRow(&db.symbols(), {"a", "b2"});
  std::vector<Fd> fds = {*Fd::Parse(&db.universe(), "A -> B")};
  QueryTerm x{true, 0, ""};
  UniversalAtom atom{{{"A", x}}};
  auto res = CertainAnswers(&db, fds, {"X"}, {0}, {atom});
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInconsistent);
}

}  // namespace
}  // namespace psem
