// Tests for weak-instance query answering: the chased representative
// instance and X-total projections (certain answers).

#include <gtest/gtest.h>

#include "chase/representative.h"
#include "relational/dependency.h"

namespace psem {
namespace {

TEST(RepresentativeTest, InfersJoinedFactsThroughFds) {
  // enrolled(Student, Course), taught_by(Course, Prof) with Course -> Prof:
  // the Student x Prof association is certain.
  Database db;
  std::size_t e = db.AddRelation("enrolled", {"Student", "Course"});
  db.relation(e).AddRow(&db.symbols(), {"ann", "db101"});
  db.relation(e).AddRow(&db.symbols(), {"bob", "ml201"});
  std::size_t t = db.AddRelation("taught_by", {"Course", "Prof"});
  db.relation(t).AddRow(&db.symbols(), {"db101", "codd"});
  std::vector<Fd> fds = {*Fd::Parse(&db.universe(), "Course -> Prof")};

  auto rep = RepresentativeInstance::Build(db, fds);
  ASSERT_TRUE(rep.ok());
  Relation window = *rep->TotalProjection({"Student", "Prof"});
  // ann's professor is inferred (codd); bob's is unknown (ml201 has no
  // taught_by row), so only one certain fact.
  ASSERT_EQ(window.size(), 1u);
  EXPECT_EQ(db.symbols().NameOf(window.row(0)[0]), "ann");
  EXPECT_EQ(db.symbols().NameOf(window.row(0)[1]), "codd");
}

TEST(RepresentativeTest, InconsistentDatabaseRefused) {
  Database db;
  std::size_t r1 = db.AddRelation("R1", {"A", "B"});
  db.relation(r1).AddRow(&db.symbols(), {"a", "b1"});
  std::size_t r2 = db.AddRelation("R2", {"A", "B"});
  db.relation(r2).AddRow(&db.symbols(), {"a", "b2"});
  std::vector<Fd> fds = {*Fd::Parse(&db.universe(), "A -> B")};
  auto rep = RepresentativeInstance::Build(db, fds);
  EXPECT_FALSE(rep.ok());
  EXPECT_EQ(rep.status().code(), StatusCode::kInconsistent);
}

TEST(RepresentativeTest, ProjectionOnStoredAttributesContainsOriginals) {
  Database db;
  std::size_t e = db.AddRelation("R", {"A", "B"});
  db.relation(e).AddRow(&db.symbols(), {"x1", "y1"});
  db.relation(e).AddRow(&db.symbols(), {"x2", "y2"});
  auto rep = RepresentativeInstance::Build(db, {});
  ASSERT_TRUE(rep.ok());
  Relation window = *rep->TotalProjection({"A", "B"});
  EXPECT_EQ(window.size(), 2u);
  for (const Tuple& t : db.relation(e).rows()) {
    EXPECT_TRUE(window.Contains(t));
  }
}

TEST(RepresentativeTest, NullsExcludedFromTotalProjection) {
  Database db;
  std::size_t r1 = db.AddRelation("R1", {"A"});
  db.relation(r1).AddRow(&db.symbols(), {"x"});
  db.AddRelation("R2", {"B"});  // no rows; B exists in the universe
  auto rep = RepresentativeInstance::Build(db, {});
  ASSERT_TRUE(rep.ok());
  // The single row has a null under B.
  Relation ab = *rep->TotalProjection({"A", "B"});
  EXPECT_EQ(ab.size(), 0u);
  Relation a = *rep->TotalProjection({"A"});
  EXPECT_EQ(a.size(), 1u);
}

TEST(RepresentativeTest, TransitiveInference) {
  // A -> B, B -> C across three fragments: A x C certain facts appear.
  Database db;
  std::size_t r1 = db.AddRelation("R1", {"A", "B"});
  db.relation(r1).AddRow(&db.symbols(), {"a1", "b1"});
  std::size_t r2 = db.AddRelation("R2", {"B", "C"});
  db.relation(r2).AddRow(&db.symbols(), {"b1", "c1"});
  std::vector<Fd> fds = {*Fd::Parse(&db.universe(), "A -> B"),
                         *Fd::Parse(&db.universe(), "B -> C")};
  auto rep = RepresentativeInstance::Build(db, fds);
  ASSERT_TRUE(rep.ok());
  Relation ac = *rep->TotalProjection({"A", "C"});
  ASSERT_EQ(ac.size(), 1u);
  EXPECT_EQ(db.symbols().NameOf(ac.row(0)[0]), "a1");
  EXPECT_EQ(db.symbols().NameOf(ac.row(0)[1]), "c1");
}

TEST(RepresentativeTest, UnknownAttributeIsError) {
  Database db;
  std::size_t r1 = db.AddRelation("R1", {"A"});
  db.relation(r1).AddRow(&db.symbols(), {"x"});
  auto rep = RepresentativeInstance::Build(db, {});
  ASSERT_TRUE(rep.ok());
  EXPECT_FALSE(rep->TotalProjection({"Nope"}).ok());
}

TEST(RepresentativeTest, ToStringShowsChasedState) {
  Database db;
  std::size_t r1 = db.AddRelation("R1", {"A", "B"});
  db.relation(r1).AddRow(&db.symbols(), {"a", "b"});
  std::size_t r2 = db.AddRelation("R2", {"A", "C"});
  db.relation(r2).AddRow(&db.symbols(), {"a", "c"});
  std::vector<Fd> fds = {*Fd::Parse(&db.universe(), "A -> B C")};
  auto rep = RepresentativeInstance::Build(db, fds);
  ASSERT_TRUE(rep.ok());
  std::string s = rep->ToString();
  // After chasing, row 2's B cell resolves to the constant b.
  EXPECT_NE(s.find('b'), std::string::npos);
  EXPECT_GT(rep->chase_stats().merges, 0u);
}

}  // namespace
}  // namespace psem
