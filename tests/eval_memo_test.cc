// Memo-correctness tests for the memoized evaluation path (EvalContext +
// PartitionInterpretation::Eval): hit/miss accounting, epoch-based
// invalidation (mutating the interpretation must never serve a stale
// partition), LRU bounding, ExecContext governance (abort keeps partial
// stats and leaves the engine reusable), and differential agreement of
// the memoized / bulk / parallel paths with EvalSparse on random DAGs.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <unordered_map>
#include <vector>

#include "lattice/expr.h"
#include "partition/eval_context.h"
#include "partition/interpretation.h"
#include "partition/partition.h"
#include "util/exec_context.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace psem {
namespace {

// Defines `name` as a partition of {0..n-1} given by labels, with one
// fresh symbol per block.
void Define(PartitionInterpretation* interp, const std::string& name,
            std::size_t n, const std::vector<uint32_t>& labels) {
  std::vector<Elem> pop(n);
  for (std::size_t i = 0; i < n; ++i) pop[i] = static_cast<Elem>(i);
  Partition p = Partition::FromLabels(pop, labels);
  std::unordered_map<std::string, uint32_t> naming;
  for (uint32_t b = 0; b < p.num_blocks(); ++b) {
    naming[name + "_" + std::to_string(b)] = b;
  }
  ASSERT_TRUE(interp->DefineAttribute(name, std::move(p), naming).ok());
}

// A small standard interpretation over {0..5}.
void DefineAbc(PartitionInterpretation* interp) {
  Define(interp, "A", 6, {0, 0, 1, 1, 2, 2});
  Define(interp, "B", 6, {0, 1, 0, 1, 0, 1});
  Define(interp, "C", 6, {0, 0, 0, 1, 1, 1});
}

TEST(EvalMemoTest, HitMissCountersOnSharedDag) {
  PartitionInterpretation interp;
  DefineAbc(&interp);
  ExprArena arena;
  ExprId ab = arena.Product(arena.Attr("A"), arena.Attr("B"));
  ExprId root = arena.Sum(ab, ab);  // hash-consed: ab appears once
  EvalContext ctx;

  Result<Partition> r1 = ctx.Eval(arena, interp, root);
  ASSERT_TRUE(r1.ok());
  // Distinct nodes: A, B, A*B, (A*B)+(A*B) — all cold.
  EXPECT_EQ(ctx.stats().memo_misses, 4u);
  EXPECT_EQ(ctx.stats().memo_hits, 0u);

  Result<Partition> r2 = ctx.Eval(arena, interp, root);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r1, *r2);
  // Second evaluation is served at the root.
  EXPECT_EQ(ctx.stats().memo_misses, 4u);
  EXPECT_EQ(ctx.stats().memo_hits, 1u);

  // A sibling expression reuses the shared subtree.
  ExprId root2 = arena.Product(ab, arena.Attr("C"));
  Result<Partition> r3 = ctx.Eval(arena, interp, root2);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(ctx.stats().memo_hits, 2u);  // ab served from memo
  EXPECT_EQ(*r3, *interp.EvalSparse(arena, root2));
}

TEST(EvalMemoTest, MutationNeverServesStaleValue) {
  PartitionInterpretation interp;
  Define(&interp, "A", 4, {0, 0, 1, 1});
  Define(&interp, "B", 4, {0, 1, 0, 1});
  ExprArena arena;
  ExprId e = arena.Product(arena.Attr("A"), arena.Attr("B"));
  EvalContext ctx;

  uint64_t epoch_before = interp.epoch();
  Result<Partition> before = ctx.Eval(arena, interp, e);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(*before, *interp.EvalSparse(arena, e));

  // Redefine B to the one-block partition: A*B becomes A.
  Define(&interp, "B", 4, {0, 0, 0, 0});
  EXPECT_GT(interp.epoch(), epoch_before);

  Result<Partition> after = ctx.Eval(arena, interp, e);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *interp.EvalSparse(arena, e));
  EXPECT_EQ(*after, *interp.AtomicPartition("A"));
  EXPECT_NE(*after, *before);  // the stale value would have been `before`
  EXPECT_GE(ctx.stats().epoch_flushes, 1u);
  // The post-mutation evaluation recomputed everything.
  EXPECT_GE(ctx.stats().memo_misses, 6u);
}

TEST(EvalMemoTest, InterpretationEvalPathFlushesOnMutation) {
  // Same property through the public PartitionInterpretation::Eval, which
  // owns its private EvalContext.
  PartitionInterpretation interp;
  Define(&interp, "A", 4, {0, 0, 1, 1});
  Define(&interp, "B", 4, {0, 1, 0, 1});
  ExprArena arena;
  Result<Pd> pd = arena.ParsePd("A = B");
  ASSERT_TRUE(pd.ok());
  Result<bool> sat = interp.Satisfies(arena, *pd);
  ASSERT_TRUE(sat.ok());
  EXPECT_FALSE(*sat);

  Define(&interp, "B", 4, {0, 0, 1, 1});  // now B == A
  sat = interp.Satisfies(arena, *pd);
  ASSERT_TRUE(sat.ok());
  EXPECT_TRUE(*sat);
}

TEST(EvalMemoTest, CopiedInterpretationStartsColdButAgrees) {
  PartitionInterpretation interp;
  DefineAbc(&interp);
  ExprArena arena;
  ExprId e = *arena.Parse("A * B + C");
  Result<Partition> orig = interp.Eval(arena, e);
  ASSERT_TRUE(orig.ok());

  PartitionInterpretation copy = interp;
  Result<Partition> copied = copy.Eval(arena, e);
  ASSERT_TRUE(copied.ok());
  EXPECT_EQ(*orig, *copied);

  // Mutating the copy must not leak into the original.
  Define(&copy, "C", 6, {0, 1, 2, 3, 4, 5});
  EXPECT_NE(*copy.Eval(arena, e), *orig);
  EXPECT_EQ(*interp.Eval(arena, e), *orig);
}

TEST(EvalMemoTest, LruEvictionKeepsResultsCorrect) {
  PartitionInterpretation interp;
  DefineAbc(&interp);
  ExprArena arena;
  // A left-nested chain with more distinct nodes than the memo holds.
  ExprId e = arena.Attr("A");
  for (int i = 0; i < 12; ++i) {
    e = (i % 2 == 0) ? arena.Product(e, arena.Attr("B"))
                     : arena.Sum(e, arena.Attr("C"));
  }
  EvalContext tiny(3);
  EXPECT_EQ(tiny.memo_capacity(), 3u);
  Result<Partition> got = tiny.Eval(arena, interp, e);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, *interp.EvalSparse(arena, e));
  EXPECT_GT(tiny.stats().memo_evictions, 0u);
  EXPECT_LE(tiny.memo_size(), 3u);
  // Still correct (and still bounded) on re-evaluation.
  EXPECT_EQ(*tiny.Eval(arena, interp, e), *got);
  EXPECT_LE(tiny.memo_size(), 3u);
}

TEST(EvalMemoTest, CancelAbortsWithPartialStatsAndStaysUsable) {
  PartitionInterpretation interp;
  DefineAbc(&interp);
  ExprArena arena;
  ExprId e = *arena.Parse("(A * B + C) * (B + C) + A * C");

  EvalContext ctx;
  CancelToken token;
  token.Cancel();
  ExecContext cancelled;
  cancelled.WithCancelToken(token);
  Result<Partition> aborted = ctx.Eval(arena, interp, e, cancelled);
  ASSERT_FALSE(aborted.ok());
  EXPECT_EQ(aborted.status().code(), StatusCode::kCancelled);

  // Partial stats survive the abort and the context remains usable.
  PartitionEvalStats after_abort = ctx.stats();
  Result<Partition> retried = ctx.Eval(arena, interp, e);
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(*retried, *interp.EvalSparse(arena, e));
  EXPECT_GE(ctx.stats().memo_misses, after_abort.memo_misses);
}

TEST(EvalMemoTest, SolverNodeBudgetAbortsAndRetrySucceeds) {
  PartitionInterpretation interp;
  DefineAbc(&interp);
  ExprArena arena;
  ExprId e = *arena.Parse("(A * B + C) * (B + C) + A * C");

  EvalContext ctx;
  ExecContext budgeted;
  budgeted.WithMaxSolverNodes(2);  // the DAG needs more nodes than this
  Result<Partition> aborted = ctx.Eval(arena, interp, e, budgeted);
  ASSERT_FALSE(aborted.ok());
  EXPECT_EQ(aborted.status().code(), StatusCode::kResourceExhausted);

  Result<Partition> ok = ctx.Eval(arena, interp, e);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, *interp.EvalSparse(arena, e));

  // An expired deadline behaves the same way.
  ExecContext timed;
  timed.WithTimeout(std::chrono::nanoseconds(0));
  EvalContext ctx2;
  Result<Partition> timed_out = ctx2.Eval(arena, interp, e, timed);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(ctx2.Eval(arena, interp, e).ok());
}

TEST(EvalMemoTest, BulkAndParallelAgreeWithSparseReference) {
  Rng rng(0xeba1);
  ThreadPool pool(4);
  for (int it = 0; it < 30; ++it) {
    PartitionInterpretation interp;
    std::size_t n = 1 + rng.Below(24);
    const char* names[] = {"A", "B", "C", "D"};
    for (const char* name : names) {
      std::vector<uint32_t> labels(n);
      for (auto& l : labels) {
        l = static_cast<uint32_t>(rng.Below(1 + rng.Below(6)));
      }
      Define(&interp, name, n, labels);
    }
    // Random DAG: new nodes combine random earlier nodes, so sharing is
    // heavy and levels are nontrivial.
    ExprArena arena;
    std::vector<ExprId> nodes;
    for (const char* name : names) nodes.push_back(arena.Attr(name));
    for (int k = 0; k < 24; ++k) {
      ExprId l = nodes[rng.Below(nodes.size())];
      ExprId r = nodes[rng.Below(nodes.size())];
      nodes.push_back(rng.Chance(1, 2) ? arena.Product(l, r)
                                       : arena.Sum(l, r));
    }
    std::vector<ExprId> roots(nodes.end() - 8, nodes.end());

    EvalContext serial_ctx, parallel_ctx;
    Result<std::vector<Partition>> serial =
        serial_ctx.EvalAll(arena, interp, roots, nullptr);
    Result<std::vector<Partition>> parallel =
        parallel_ctx.EvalAll(arena, interp, roots, &pool);
    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(parallel.ok());
    ASSERT_EQ(serial->size(), roots.size());
    ASSERT_EQ(parallel->size(), roots.size());
    for (std::size_t i = 0; i < roots.size(); ++i) {
      Result<Partition> ref = interp.EvalSparse(arena, roots[i]);
      ASSERT_TRUE(ref.ok());
      EXPECT_EQ((*serial)[i], *ref);
      EXPECT_EQ((*parallel)[i], *ref);
    }
    EXPECT_GT(parallel_ctx.stats().parallel_waves, 0u);

    // SatisfiesAll agrees with the one-at-a-time path.
    std::vector<Pd> pds;
    for (std::size_t i = 0; i + 1 < roots.size(); i += 2) {
      pds.push_back(rng.Chance(1, 2) ? Pd::Eq(roots[i], roots[i + 1])
                                     : Pd::Leq(roots[i], roots[i + 1]));
    }
    Result<std::vector<bool>> bulk =
        parallel_ctx.SatisfiesAll(arena, interp, pds, &pool);
    ASSERT_TRUE(bulk.ok());
    ASSERT_EQ(bulk->size(), pds.size());
    for (std::size_t i = 0; i < pds.size(); ++i) {
      Result<bool> one = interp.Satisfies(arena, pds[i]);
      ASSERT_TRUE(one.ok());
      EXPECT_EQ((*bulk)[i], *one);
    }
  }
}

TEST(EvalMemoTest, ParallelAbortLeavesContextReusable) {
  PartitionInterpretation interp;
  DefineAbc(&interp);
  ExprArena arena;
  std::vector<ExprId> roots;
  ExprId e = arena.Attr("A");
  for (int i = 0; i < 10; ++i) {
    e = arena.Sum(arena.Product(e, arena.Attr("B")), arena.Attr("C"));
    roots.push_back(e);
  }
  ThreadPool pool(2);
  EvalContext ctx;
  CancelToken token;
  token.Cancel();
  ExecContext cancelled;
  cancelled.WithCancelToken(token);
  Result<std::vector<Partition>> aborted =
      ctx.EvalAll(arena, interp, roots, &pool, cancelled);
  ASSERT_FALSE(aborted.ok());
  EXPECT_EQ(aborted.status().code(), StatusCode::kCancelled);

  Result<std::vector<Partition>> ok = ctx.EvalAll(arena, interp, roots, &pool);
  ASSERT_TRUE(ok.ok());
  for (std::size_t i = 0; i < roots.size(); ++i) {
    EXPECT_EQ((*ok)[i], *interp.EvalSparse(arena, roots[i]));
  }
}

TEST(EvalMemoTest, UndefinedAttributeIsNotFoundAndRecoverable) {
  PartitionInterpretation interp;
  Define(&interp, "A", 3, {0, 1, 1});
  ExprArena arena;
  ExprId e = arena.Product(arena.Attr("A"), arena.Attr("Z"));
  EvalContext ctx;
  Result<Partition> missing = ctx.Eval(arena, interp, e);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  // Defining Z (epoch bump) recovers without a stale verdict.
  Define(&interp, "Z", 3, {0, 0, 1});
  Result<Partition> found = ctx.Eval(arena, interp, e);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, *interp.EvalSparse(arena, e));
}

TEST(EvalMemoTest, RandomizedDifferentialEvalVsSparse) {
  // The evaluator leg of the >=500-case differential suite: random
  // interpretations (including attributes over different populations) and
  // random expressions, memoized vs paper-literal recursive reference.
  Rng rng(0xd1ff);
  int cases = 0;
  for (int it = 0; it < 60; ++it) {
    PartitionInterpretation interp;
    std::size_t world = 1 + rng.Below(20);
    const char* names[] = {"A", "B", "C"};
    for (const char* name : names) {
      // Random sub-population of the world (EAP not assumed).
      std::vector<Elem> pop;
      for (std::size_t x = 0; x < world; ++x) {
        if (rng.Chance(4, 5)) pop.push_back(static_cast<Elem>(x));
      }
      if (pop.empty()) pop.push_back(0);
      std::vector<uint32_t> labels(pop.size());
      for (auto& l : labels) l = static_cast<uint32_t>(rng.Below(4));
      Partition p = Partition::FromLabels(pop, labels);
      std::unordered_map<std::string, uint32_t> naming;
      for (uint32_t b = 0; b < p.num_blocks(); ++b) {
        naming[std::string(name) + "_" + std::to_string(b)] = b;
      }
      ASSERT_TRUE(interp.DefineAttribute(name, std::move(p), naming).ok());
    }
    ExprArena arena;
    std::vector<ExprId> nodes{arena.Attr("A"), arena.Attr("B"),
                              arena.Attr("C")};
    for (int k = 0; k < 10; ++k) {
      ExprId l = nodes[rng.Below(nodes.size())];
      ExprId r = nodes[rng.Below(nodes.size())];
      nodes.push_back(rng.Chance(1, 2) ? arena.Product(l, r)
                                       : arena.Sum(l, r));
    }
    for (ExprId e : nodes) {
      Result<Partition> memoized = interp.Eval(arena, e);
      Result<Partition> reference = interp.EvalSparse(arena, e);
      ASSERT_TRUE(memoized.ok());
      ASSERT_TRUE(reference.ok());
      EXPECT_EQ(*memoized, *reference);
      ++cases;
    }
  }
  EXPECT_GE(cases, 500);
}

}  // namespace
}  // namespace psem
