// Tests for Section 6.1: NAE-SAT solving, the Theorem 11 reduction to
// CAD-consistency, the exact CAD solver, and the Figure 3 instance.

#include <gtest/gtest.h>

#include "consistency/cad.h"
#include "consistency/nae3sat.h"
#include "relational/dependency.h"
#include "util/rng.h"

namespace psem {
namespace {

// --- NAE-SAT ------------------------------------------------------------------

TEST(NaeFormulaTest, ParseAndPrint) {
  NaeFormula f = NaeFormula::Parse("1 2 -3; -1 4 2");
  EXPECT_EQ(f.num_vars, 4u);
  ASSERT_EQ(f.clauses.size(), 2u);
  EXPECT_EQ(f.ToString(), "1 2 -3; -1 4 2");
  EXPECT_FALSE(f.clauses[0][2].positive);
  EXPECT_EQ(f.clauses[0][2].var, 2u);
}

TEST(NaeFormulaTest, SatisfiedSemantics) {
  NaeFormula f = NaeFormula::Parse("1 2 3");
  // All true -> not NAE; all false -> not NAE; mixed -> NAE.
  EXPECT_FALSE(f.Satisfied({true, true, true}));
  EXPECT_FALSE(f.Satisfied({false, false, false}));
  EXPECT_TRUE(f.Satisfied({true, false, true}));
}

TEST(NaeSolveTest, TriviallySatisfiable) {
  NaeFormula f = NaeFormula::Parse("1 2 3");
  auto r = NaeSolve(f);
  ASSERT_TRUE(r.assignment.has_value());
  EXPECT_TRUE(f.Satisfied(*r.assignment));
}

TEST(NaeSolveTest, UnsatisfiableCore) {
  // x1 x2; -x1 -x2 with 2-literal NAE clauses: first forces x1 != x2,
  // second forces -x1 != -x2, i.e. also x1 != x2 — still satisfiable!
  NaeFormula f1 = NaeFormula::Parse("1 2; -1 -2");
  EXPECT_TRUE(NaeSolve(f1).assignment.has_value());
  // x1 x2 (NAE: differ) plus x1 -x2 (NAE: x1 != !x2 i.e. x1 == x2):
  // contradiction.
  NaeFormula f2 = NaeFormula::Parse("1 2; 1 -2");
  EXPECT_FALSE(NaeSolve(f2).assignment.has_value());
}

TEST(NaeSolveTest, ComplementSymmetryRespected) {
  // Pinning var 0 false must not lose satisfiability.
  NaeFormula f = NaeFormula::Parse("1 2 3; -1 -2 -3; 1 -2 3");
  auto brute = NaeBruteForce(f);
  auto dpll = NaeSolve(f);
  EXPECT_EQ(brute.has_value(), dpll.assignment.has_value());
  if (dpll.assignment) EXPECT_TRUE(f.Satisfied(*dpll.assignment));
}

class NaeDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(NaeDifferentialTest, SolverMatchesBruteForce) {
  Rng rng(2200 + GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    uint32_t n = 4 + static_cast<uint32_t>(rng.Below(6));
    uint32_t m = 2 + static_cast<uint32_t>(rng.Below(3 * n));
    NaeFormula f = RandomNae3(n, m, rng.Next());
    auto brute = NaeBruteForce(f);
    auto dpll = NaeSolve(f);
    ASSERT_TRUE(dpll.decided);
    ASSERT_EQ(brute.has_value(), dpll.assignment.has_value())
        << f.ToString();
    if (dpll.assignment) EXPECT_TRUE(f.Satisfied(*dpll.assignment));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NaeDifferentialTest, ::testing::Range(0, 6));

TEST(NaeSolveTest, BudgetExhaustionReported) {
  NaeFormula f = RandomNae3(20, 60, 7);
  auto r = NaeSolve(f, /*node_budget=*/3);
  EXPECT_FALSE(r.decided);
}

// --- CAD solver ------------------------------------------------------------------

TEST(CadSolverTest, TrivialConsistentDatabase) {
  Database db;
  std::size_t r = db.AddRelation("R", {"A", "B"});
  db.relation(r).AddRow(&db.symbols(), {"x", "y"});
  CadResult res = CadConsistent(db, {});
  EXPECT_TRUE(res.consistent);
  ASSERT_EQ(res.weak_instance.size(), 1u);
}

TEST(CadSolverTest, HoleFilledFromColumnValues) {
  // R1(A): {x}; R2(B): {y}. Row 1's A-hole must take value x (only symbol
  // in d[A]); with FD B -> A forcing it to also match row 2's fill this
  // stays satisfiable.
  Database db;
  std::size_t r1 = db.AddRelation("R1", {"A"});
  db.relation(r1).AddRow(&db.symbols(), {"x"});
  std::size_t r2 = db.AddRelation("R2", {"B"});
  db.relation(r2).AddRow(&db.symbols(), {"y"});
  std::vector<Fd> fds = {*Fd::Parse(&db.universe(), "B -> A")};
  CadResult res = CadConsistent(db, fds);
  EXPECT_TRUE(res.consistent);
  RelAttrId a = *db.universe().Require("A");
  EXPECT_EQ(db.symbols().NameOf(res.weak_instance[1][a]), "x");
}

TEST(CadSolverTest, FdViolationAmongFixedCellsIsInconsistent) {
  Database db;
  std::size_t r = db.AddRelation("R", {"A", "B"});
  db.relation(r).AddRow(&db.symbols(), {"a", "b1"});
  db.relation(r).AddRow(&db.symbols(), {"a", "b2"});
  std::vector<Fd> fds = {*Fd::Parse(&db.universe(), "A -> B")};
  CadResult res = CadConsistent(db, fds);
  EXPECT_FALSE(res.consistent);
}

TEST(CadSolverTest, CadStricterThanOpenWorld) {
  // R1(A,B): (a,b); R2(A,C): (a2,c). Under open world, B for row 2 can be
  // fresh; under CAD it must be 'b', and with the FD C -> B ... still fine.
  // Make it fail: R1(A,B) = {(a,b)}, R2(C): {(c)}; FD C -> A. Row 2 must
  // fill A from d[A] = {a}; fine. Now add R3(A B): {(a, b2)} with FD
  // A -> B: rows 1,3 clash on fixed cells. Instead exercise a hole-driven
  // failure: d[B] = {b1, b2} pinned by two rows of R1 and FD C -> B with
  // two C-sharing rows needing different B fills.
  Database db;
  std::size_t r1 = db.AddRelation("R1", {"A", "B"});
  db.relation(r1).AddRow(&db.symbols(), {"a1", "b1"});
  db.relation(r1).AddRow(&db.symbols(), {"a2", "b2"});
  std::size_t r2 = db.AddRelation("R2", {"A", "C"});
  db.relation(r2).AddRow(&db.symbols(), {"a1", "c"});
  db.relation(r2).AddRow(&db.symbols(), {"a2", "c"});
  // FDs: A -> B pins row3.B = b1, row4.B = b2; C -> B forces row3.B =
  // row4.B: contradiction. Open-world Honeyman reaches the same verdict
  // here because the clash is between constants...
  std::vector<Fd> fds = {*Fd::Parse(&db.universe(), "A -> B"),
                         *Fd::Parse(&db.universe(), "C -> B")};
  EXPECT_FALSE(CadConsistent(db, fds).consistent);

  // A case where open-world succeeds but CAD fails: single relation
  // R(A,B) = {(a1,b1),(a2,b2)} plus R2(C) = {(c)}, FDs C -> A and C -> B
  // with d restricted so that the C row's A,B fills must pick existing
  // symbols — any pick works. Tighten with A -> B: pick A=a1 forces B=b1;
  // consistent. Force failure by also demanding B -> A and crossing pins:
  // R3(A C): {(a1,c)}, R4(B C): {(b2,c)}. Then C -> A gives A=a1, C -> B
  // gives B=b2, but A -> B demands B=b1: inconsistent under both
  // semantics. True CAD-vs-open separation needs invented values:
  Database db2;
  std::size_t s1 = db2.AddRelation("R1", {"A", "B"});
  db2.relation(s1).AddRow(&db2.symbols(), {"a1", "b1"});
  std::size_t s2 = db2.AddRelation("R2", {"B"});
  db2.relation(s2).AddRow(&db2.symbols(), {"b2"});
  // Open world: weak instance pads row 2's A with a fresh symbol; B -> A
  // is satisfiable. CAD: row 2's A must be a1 (the only symbol in d[A]);
  // then A -> B forces b1 = b2? No: A -> B on rows (a1,b1), (a1,b2):
  // violation. So CAD-inconsistent, open-world consistent.
  std::vector<Fd> fds2 = {*Fd::Parse(&db2.universe(), "A -> B")};
  EXPECT_FALSE(CadConsistent(db2, fds2).consistent);
  // (Open-world consistency of db2 is checked in chase_test-style tests;
  // here assert the solver's verdict only.)
}

TEST(CadSolverTest, BudgetExhaustion) {
  NaeFormula f = RandomNae3(6, 14, 99);
  Database db;
  CadReduction red = *ReduceNaeToCad(f, &db);
  CadResult res = CadConsistent(db, red.fds, /*node_budget=*/2);
  EXPECT_FALSE(res.decided);
}

// --- Theorem 11 reduction ---------------------------------------------------------

TEST(ReductionTest, Figure3Instance) {
  // The paper's example: n = 4 variables, clause c1 = x1 v x2 v (not x3).
  NaeFormula f;
  f.num_vars = 4;
  f.clauses.push_back(NaeClause{{0, true}, {1, true}, {2, false}});
  Database db;
  CadReduction red = *ReduceNaeToCad(f, &db);
  // R0 + one relation per clause (original + mirror padding).
  EXPECT_EQ(db.num_relations(), 1u + red.padded.clauses.size());
  EXPECT_EQ(red.padded.num_vars, 8u);   // 4 vars + 4 mirrors
  EXPECT_EQ(red.padded.clauses.size(), 9u);  // 1 original + 2 per variable
  // R0 has two tuples sharing the A value.
  const Relation& r0 = db.relation(0);
  EXPECT_EQ(r0.size(), 2u);
  EXPECT_EQ(r0.arity(), 1u + red.padded.num_vars);
  // The clause relation's scheme omits A1, A2, A3 (clause variables).
  const Relation& r1 = db.relation(1);
  RelAttrId a1 = *db.universe().Require("A1");
  RelAttrId a4 = *db.universe().Require("A4");
  EXPECT_FALSE(r1.schema().Contains(a1));
  EXPECT_TRUE(r1.schema().Contains(a4));
  // FDs: B_i -> A_i for i = 1..6 plus one per clause.
  EXPECT_EQ(red.fds.size(), red.padded.num_vars + red.padded.clauses.size());
  // The formula is NAE-satisfiable, so the instance is CAD-consistent.
  CadResult res = CadConsistent(db, red.fds);
  EXPECT_TRUE(res.consistent);
  auto assignment = *DecodeCadAssignment(db, red, res);
  EXPECT_TRUE(red.padded.Satisfied(assignment));
}

TEST(ReductionTest, RejectsBadClauses) {
  Database db;
  NaeFormula f;
  f.num_vars = 2;
  f.clauses.push_back(NaeClause{{0, true}});  // too short
  EXPECT_FALSE(ReduceNaeToCad(f, &db).ok());
  NaeFormula g;
  g.num_vars = 2;
  g.clauses.push_back(NaeClause{{0, true}, {0, false}});  // repeated var
  Database db2;
  EXPECT_FALSE(ReduceNaeToCad(g, &db2).ok());
}

class ReductionEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(ReductionEquivalenceTest, NaeSatisfiableIffCadConsistent) {
  Rng rng(3100 + GetParam());
  for (int trial = 0; trial < 4; ++trial) {
    uint32_t n = 3 + static_cast<uint32_t>(rng.Below(3));
    uint32_t m = 2 + static_cast<uint32_t>(rng.Below(2 * n));
    NaeFormula f = RandomNae3(n, m, rng.Next());
    bool sat = NaeBruteForce(f).has_value();
    Database db;
    CadReduction red = *ReduceNaeToCad(f, &db);
    CadResult res = CadConsistent(db, red.fds, /*node_budget=*/5000000);
    ASSERT_TRUE(res.decided) << f.ToString();
    EXPECT_EQ(res.consistent, sat) << f.ToString();
    if (res.consistent) {
      auto assignment = *DecodeCadAssignment(db, red, res);
      EXPECT_TRUE(red.padded.Satisfied(assignment)) << f.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReductionEquivalenceTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace psem
