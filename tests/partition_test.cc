// Tests for the Partition type: construction, canonical form, product and
// sum per Section 3.1, the lattice laws as property tests over random
// partitions, refinement and the algebraic order of Theorem 2.

#include <gtest/gtest.h>

#include <algorithm>

#include "partition/partition.h"
#include "util/rng.h"

namespace psem {
namespace {

Partition P(const std::vector<std::vector<Elem>>& blocks) {
  return Partition::FromBlocks(blocks);
}

TEST(PartitionTest, FromBlocksCanonicalizes) {
  Partition a = P({{3, 1}, {2}});
  Partition b = P({{2}, {1, 3}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.num_blocks(), 2u);
  EXPECT_EQ(a.population_size(), 3u);
  EXPECT_EQ(a.population(), (std::vector<Elem>{1, 2, 3}));
}

TEST(PartitionTest, DiscreteAndOneBlock) {
  Partition d = Partition::Discrete({5, 1, 9});
  EXPECT_EQ(d.num_blocks(), 3u);
  Partition o = Partition::OneBlock({5, 1, 9});
  EXPECT_EQ(o.num_blocks(), 1u);
  EXPECT_EQ(Partition::OneBlock({}).population_size(), 0u);
}

TEST(PartitionTest, BlockOfAndBlocks) {
  Partition p = P({{1, 2}, {3}});
  EXPECT_EQ(*p.BlockOf(1), *p.BlockOf(2));
  EXPECT_NE(*p.BlockOf(1), *p.BlockOf(3));
  EXPECT_FALSE(p.BlockOf(42).has_value());
  auto blocks = p.Blocks();
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0], (std::vector<Elem>{1, 2}));
  EXPECT_EQ(blocks[1], (std::vector<Elem>{3}));
}

TEST(PartitionTest, ProductSamePopulation) {
  // {12|34} * {13|24} = discrete.
  Partition a = P({{1, 2}, {3, 4}});
  Partition b = P({{1, 3}, {2, 4}});
  Partition prod = Partition::Product(a, b);
  EXPECT_EQ(prod, Partition::Discrete({1, 2, 3, 4}));
}

TEST(PartitionTest, SumSamePopulation) {
  // {12|34} + {23|14}: chain 1-2-3-4 all connected -> one block.
  Partition a = P({{1, 2}, {3, 4}});
  Partition b = P({{2, 3}, {1, 4}});
  EXPECT_EQ(Partition::Sum(a, b), Partition::OneBlock({1, 2, 3, 4}));
  // {12|34} + {12|34} = itself.
  EXPECT_EQ(Partition::Sum(a, a), a);
}

TEST(PartitionTest, ProductPopulationIsIntersection) {
  Partition a = P({{1, 2}, {3}});
  Partition b = P({{2, 3}, {4}});
  Partition prod = Partition::Product(a, b);
  EXPECT_EQ(prod.population(), (std::vector<Elem>{2, 3}));
  // 2 and 3 are in different blocks of a, so they stay apart.
  EXPECT_EQ(prod.num_blocks(), 2u);
}

TEST(PartitionTest, SumPopulationIsUnion) {
  // Disjoint populations: the sum is the union of the block families
  // (Example c of Section 3.2).
  Partition cars = P({{1, 2}});
  Partition bikes = P({{3}, {4}});
  Partition vehicles = Partition::Sum(cars, bikes);
  EXPECT_EQ(vehicles.population(), (std::vector<Elem>{1, 2, 3, 4}));
  EXPECT_EQ(vehicles.num_blocks(), 3u);
}

TEST(PartitionTest, SumChainsAcrossOverlap) {
  // Overlapping populations chain through shared elements.
  Partition a = P({{1, 2}});
  Partition b = P({{2, 3}});
  EXPECT_EQ(Partition::Sum(a, b), Partition::OneBlock({1, 2, 3}));
}

TEST(PartitionTest, RefinesSamePopulation) {
  Partition fine = P({{1}, {2}, {3, 4}});
  Partition coarse = P({{1, 2}, {3, 4}});
  EXPECT_TRUE(fine.RefinesSamePopulation(coarse));
  EXPECT_FALSE(coarse.RefinesSamePopulation(fine));
  EXPECT_TRUE(fine.RefinesSamePopulation(fine));
  Partition other_pop = P({{1, 2}, {5}});
  EXPECT_FALSE(fine.RefinesSamePopulation(other_pop));
}

TEST(PartitionTest, LeqAcrossPopulations) {
  // Theorem 2: pi <= pi' iff population containment + block containment.
  Partition small = P({{1, 2}});
  Partition big = P({{1, 2, 3}});
  EXPECT_TRUE(small.Leq(big));
  EXPECT_FALSE(big.Leq(small));
  Partition crossing = P({{1}, {2, 3}});
  EXPECT_FALSE(small.Leq(crossing));  // {1,2} not inside one block
}

TEST(PartitionTest, ToString) {
  EXPECT_EQ(P({{1, 2}, {3}}).ToString(), "{ 1 2 | 3 }");
}

TEST(PartitionTest, HashConsistentWithEquality) {
  Partition a = P({{1, 2}, {3}});
  Partition b = P({{3}, {2, 1}});
  EXPECT_EQ(a.Hash(), b.Hash());
}

// --- property tests: the partitions over a population form a lattice -------

Partition RandomPartition(Rng* rng, const std::vector<Elem>& population,
                          uint32_t max_blocks) {
  std::vector<uint32_t> labels(population.size());
  for (auto& l : labels) l = static_cast<uint32_t>(rng->Below(max_blocks));
  return Partition::FromLabels(population, labels);
}

class PartitionLawsTest : public ::testing::TestWithParam<int> {};

TEST_P(PartitionLawsTest, LatticeLawsHoldOnRandomPartitions) {
  Rng rng(900 + GetParam());
  std::vector<Elem> pop;
  for (Elem e = 0; e < 9; ++e) pop.push_back(e * 2);  // sparse ids
  for (int trial = 0; trial < 40; ++trial) {
    Partition x = RandomPartition(&rng, pop, 4);
    Partition y = RandomPartition(&rng, pop, 3);
    Partition z = RandomPartition(&rng, pop, 5);
    // Associativity.
    EXPECT_EQ(Partition::Product(Partition::Product(x, y), z),
              Partition::Product(x, Partition::Product(y, z)));
    EXPECT_EQ(Partition::Sum(Partition::Sum(x, y), z),
              Partition::Sum(x, Partition::Sum(y, z)));
    // Commutativity.
    EXPECT_EQ(Partition::Product(x, y), Partition::Product(y, x));
    EXPECT_EQ(Partition::Sum(x, y), Partition::Sum(y, x));
    // Idempotence.
    EXPECT_EQ(Partition::Product(x, x), x);
    EXPECT_EQ(Partition::Sum(x, x), x);
    // Absorption.
    EXPECT_EQ(Partition::Sum(x, Partition::Product(x, y)), x);
    EXPECT_EQ(Partition::Product(x, Partition::Sum(x, y)), x);
  }
}

TEST_P(PartitionLawsTest, ProductIsGlbSumIsLub) {
  Rng rng(1300 + GetParam());
  std::vector<Elem> pop = {0, 1, 2, 3, 4, 5, 6};
  for (int trial = 0; trial < 30; ++trial) {
    Partition x = RandomPartition(&rng, pop, 4);
    Partition y = RandomPartition(&rng, pop, 4);
    Partition m = Partition::Product(x, y);
    Partition j = Partition::Sum(x, y);
    // m is a lower bound; j an upper bound.
    EXPECT_TRUE(m.RefinesSamePopulation(x));
    EXPECT_TRUE(m.RefinesSamePopulation(y));
    EXPECT_TRUE(x.RefinesSamePopulation(j));
    EXPECT_TRUE(y.RefinesSamePopulation(j));
    // Greatest/least among random candidates.
    Partition w = RandomPartition(&rng, pop, 4);
    if (w.RefinesSamePopulation(x) && w.RefinesSamePopulation(y)) {
      EXPECT_TRUE(w.RefinesSamePopulation(m));
    }
    if (x.RefinesSamePopulation(w) && y.RefinesSamePopulation(w)) {
      EXPECT_TRUE(j.RefinesSamePopulation(w));
    }
  }
}

TEST_P(PartitionLawsTest, LawsHoldAcrossMixedPopulations) {
  // The laws of Section 3.2 hold even when populations differ.
  Rng rng(1700 + GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    auto random_pop = [&]() {
      std::vector<Elem> pop;
      for (Elem e = 0; e < 8; ++e) {
        if (rng.Chance(2, 3)) pop.push_back(e);
      }
      if (pop.empty()) pop.push_back(0);
      return pop;
    };
    Partition x = RandomPartition(&rng, random_pop(), 3);
    Partition y = RandomPartition(&rng, random_pop(), 3);
    Partition z = RandomPartition(&rng, random_pop(), 3);
    EXPECT_EQ(Partition::Product(Partition::Product(x, y), z),
              Partition::Product(x, Partition::Product(y, z)));
    EXPECT_EQ(Partition::Sum(Partition::Sum(x, y), z),
              Partition::Sum(x, Partition::Sum(y, z)));
    EXPECT_EQ(Partition::Sum(x, Partition::Product(x, y)), x);
    EXPECT_EQ(Partition::Product(x, Partition::Sum(x, y)), x);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionLawsTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace psem
