// Data profiling with partition semantics: mine the FDs and PD patterns
// that hold in a dataset, then use the reasoning stack to post-process
// them — minimal cover, keys, and an Armstrong relation certifying the
// discovered theory.
//
// Run: ./build/examples/profiler

#include <cstdio>

#include "psem.h"

using namespace psem;

int main() {
  std::printf("== profiling a shipment dataset ==\n\n");

  // Synthetic data with planted structure:
  //   Order determines Customer and Region;
  //   Customer determines Region;
  //   Zone is the connected component of the (Depot, Hub) graph.
  Database db;
  std::size_t ri = db.AddRelation(
      "shipments", {"Order", "Customer", "Region", "Depot", "Hub", "Zone"});
  Relation& r = db.relation(ri);
  struct Row {
    const char *o, *c, *reg, *d, *h, *z;
  };
  Row rows[] = {
      {"o1", "ann", "east", "d1", "h1", "z1"},
      {"o2", "ann", "east", "d2", "h1", "z1"},  // d2-h1 joins z1
      {"o3", "bob", "east", "d2", "h2", "z1"},  // d2-h2 chains into z1
      {"o4", "eve", "west", "d3", "h3", "z2"},
      {"o5", "eve", "west", "d4", "h4", "z3"},
      {"o6", "kim", "west", "d4", "h4", "z3"},
  };
  for (const Row& row : rows) {
    r.AddRow(&db.symbols(), {row.o, row.c, row.reg, row.d, row.h, row.z});
  }
  std::printf("%s\n", r.ToString(db.universe(), db.symbols()).c_str());

  // 1. FD discovery.
  FdDiscoveryOptions options;
  options.max_lhs_size = 2;
  auto fds = *DiscoverFds(db, r, options);
  std::printf("minimal FDs (lhs size <= 2): %zu found\n", fds.size());
  FdTheory theory(&db.universe());
  for (const Fd& fd : fds) theory.Add(fd);
  for (const Fd& fd : theory.MinimalCover()) {
    std::printf("  %s\n", fd.ToString(db.universe()).c_str());
  }

  // 2. Keys of the relation under the discovered theory.
  AttrSet scheme = r.schema().ToAttrSet(db.universe().size());
  auto keys = theory.Keys(scheme);
  std::printf("\nminimal keys:\n");
  for (const AttrSet& k : keys) {
    std::printf("  { %s }\n", db.universe().SetToString(k).c_str());
  }

  // 3. PD patterns: the structure FDs cannot see.
  auto patterns = *DiscoverPdPatterns(db, r);
  std::printf("\nPD patterns:\n");
  for (const PdPattern& p : patterns) {
    const char* kind = p.kind == PdPattern::Kind::kProduct ? "product"
                       : p.kind == PdPattern::Kind::kSum   ? "sum"
                                                           : "sum-upper";
    std::printf("  [%-9s] %s\n", kind, p.ToString(db.universe()).c_str());
  }

  // 4. An Armstrong relation certifying the discovered FD theory: it
  // satisfies exactly the implied FDs, so a designer can eyeball what is
  // and is not enforced.
  Database cert;
  auto ai = BuildArmstrongRelation(theory, scheme, &cert);
  if (ai.ok()) {
    std::printf("\nArmstrong certificate (%zu rows):\n%s",
                cert.relation(*ai).size(),
                cert.relation(*ai).ToString(cert.universe(), cert.symbols())
                    .c_str());
  }

  // 5. Sanity: every discovered constraint really holds (Definition 7
  // for the PD patterns).
  ExprArena arena;
  bool all_hold = true;
  for (const PdPattern& p : patterns) {
    Pd pd = *arena.ParsePd(p.ToString(db.universe()));
    all_hold &= *RelationSatisfiesPd(db, r, arena, pd);
  }
  for (const Fd& fd : fds) {
    all_hold &= *SatisfiesFd(r, fd);
  }
  std::printf("\nall discovered constraints verified: %s\n",
              all_hold ? "yes" : "NO");

  // 6. Reasoning over the discovered theory, with the ALG engine's
  // instrumentation on display: load the PD patterns into a PdTheory,
  // answer a batch of implication queries against one shared closure,
  // then ask a few follow-ups (served incrementally / from the LRU
  // cache) and dump the AlgStats trajectory.
  PdTheory t;
  for (const PdPattern& p : patterns) {
    (void)t.AddParsed(p.ToString(db.universe()));
  }
  std::vector<std::string> queries = {
      "Order <= Customer", "Order <= Region",  "Customer <= Region",
      "Zone <= Depot + Hub", "Depot + Hub <= Zone", "Order <= Zone",
      "Order <= Customer * Region", "Customer <= Order",
  };
  auto verdicts = *t.BatchImpliesParsed(queries);
  std::printf("\nbatch implication over the mined PD theory:\n");
  for (std::size_t i = 0; i < queries.size(); ++i) {
    std::printf("  E |= %-28s %s\n", queries[i].c_str(),
                verdicts[i] ? "yes" : "no");
  }
  // Re-ask two of them (pure cache hits) and one novel query (extends V
  // and re-closes only the dirty frontier).
  (void)*t.ImpliesParsed(queries[0]);
  (void)*t.ImpliesParsed(queries[3]);
  (void)*t.ImpliesParsed("Order * Depot <= Region + Zone + Hub");

  const AlgStats& stats = t.engine().stats();
  std::printf("\nALG engine stats:\n");
  std::printf("  |V| = %zu vertices, %zu arcs in closed Gamma\n",
              stats.num_vertices, stats.num_arcs);
  std::printf("  closures: %zu cold, %zu incremental\n", stats.cold_closures,
              stats.incremental_closures);
  std::printf("  last closure: %zu passes, arc deltas per pass:",
              stats.passes);
  for (std::size_t d : stats.pass_arc_delta) std::printf(" +%zu", d);
  std::printf("\n");
  std::printf(
      "  phase wall-time: seed %.1fus, rules %.1fus, transpose %.1fus "
      "(closure total %.1fus)\n",
      stats.seed_seconds * 1e6, stats.rules_seconds * 1e6,
      stats.transpose_seconds * 1e6, stats.closure_seconds * 1e6);
  std::printf("  query cache: %zu lookups, %zu hits (hit rate %.2f)\n",
              stats.cache_lookups, stats.cache_hits, stats.CacheHitRate());
  return all_hold ? 0 : 1;
}
