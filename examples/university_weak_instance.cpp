// Weak instances and consistency (Sections 4.3 and 6): a university
// database fragmented over several relation schemes, checked for
// consistency with a mixed set of PDs under the open-world weak-instance
// semantics (Theorem 12, polynomial) and under the closed-world CAD
// assumption (Theorem 11, NP-complete — solved exactly for this small
// instance).
//
// Run: ./build/examples/university_weak_instance

#include <cstdio>

#include "psem.h"

using namespace psem;

namespace {

void Report(const char* label, bool consistent) {
  std::printf("  %-46s %s\n", label, consistent ? "consistent" : "INCONSISTENT");
}

}  // namespace

int main() {
  std::printf("== university database: weak instances and consistency ==\n\n");

  // Fragmented schema:
  //   enrolled(Student, Course)
  //   taught_by(Course, Prof)
  //   office_of(Prof, Office)
  Database db;
  std::size_t enrolled = db.AddRelation("enrolled", {"Student", "Course"});
  db.relation(enrolled).AddRow(&db.symbols(), {"ann", "db101"});
  db.relation(enrolled).AddRow(&db.symbols(), {"bob", "db101"});
  db.relation(enrolled).AddRow(&db.symbols(), {"bob", "ml201"});
  std::size_t taught = db.AddRelation("taught_by", {"Course", "Prof"});
  db.relation(taught).AddRow(&db.symbols(), {"db101", "codd"});
  db.relation(taught).AddRow(&db.symbols(), {"ml201", "pearl"});
  std::size_t office = db.AddRelation("office_of", {"Prof", "Office"});
  db.relation(office).AddRow(&db.symbols(), {"codd", "r32"});

  std::printf("%s\n", db.ToString().c_str());

  // PDs: each course has one professor; each professor one office; and
  // Campus is the connectivity of the professor/office "located" graph.
  ExprArena arena;
  std::vector<Pd> pds = {
      *arena.ParsePd("Course <= Prof"),
      *arena.ParsePd("Prof <= Office"),
      *arena.ParsePd("Campus = Prof + Office"),
  };
  std::printf("constraints:\n");
  for (const Pd& pd : pds) std::printf("  %s\n", arena.ToString(pd).c_str());
  std::printf("\n");

  // Open-world consistency (Theorem 12).
  {
    auto report = *PdConsistent(&db, arena, pds);
    Report("open world (weak instance, Thm 12):", report.consistent);
    std::printf("    [F has %zu FPDs, %zu surviving sum-uppers, "
                "chase: %zu rounds, %zu merges]\n",
                report.num_fpds, report.num_sum_uppers, report.chase_rounds,
                report.chase_merges);
  }

  // Introduce a contradiction: db101 also taught by pearl.
  Database bad;
  std::size_t e2 = bad.AddRelation("enrolled", {"Student", "Course"});
  bad.relation(e2).AddRow(&bad.symbols(), {"ann", "db101"});
  std::size_t t2 = bad.AddRelation("taught_by", {"Course", "Prof"});
  bad.relation(t2).AddRow(&bad.symbols(), {"db101", "codd"});
  bad.relation(t2).AddRow(&bad.symbols(), {"db101", "pearl"});
  {
    ExprArena arena2;
    std::vector<Pd> pds2 = {*arena2.ParsePd("Course <= Prof")};
    auto report = *PdConsistent(&bad, arena2, pds2);
    Report("db101 with two professors:", report.consistent);
  }

  // CAD: no invented values allowed. office_of lacks a row for pearl; the
  // weak instance must give pearl an office, but under CAD the only
  // office symbol is r32 — that is fine. Tighten: Office -> Prof (an
  // office holds one professor) makes r32 unusable for pearl, so the CAD
  // variant fails while the open world remains consistent.
  {
    Database cad_db;
    std::size_t to = cad_db.AddRelation("taught_by", {"Course", "Prof"});
    cad_db.relation(to).AddRow(&cad_db.symbols(), {"db101", "codd"});
    cad_db.relation(to).AddRow(&cad_db.symbols(), {"ml201", "pearl"});
    std::size_t of = cad_db.AddRelation("office_of", {"Prof", "Office"});
    cad_db.relation(of).AddRow(&cad_db.symbols(), {"codd", "r32"});
    std::vector<Fd> fds = {
        *Fd::Parse(&cad_db.universe(), "Course -> Prof"),
        *Fd::Parse(&cad_db.universe(), "Prof -> Office"),
        *Fd::Parse(&cad_db.universe(), "Office -> Prof"),
    };
    std::printf("\nclosed world (CAD + EAP, Thm 11), FDs include "
                "Office -> Prof:\n");
    bool open = WeakInstanceConsistent(cad_db, fds);
    Report("open world verdict:", open);
    CadResult cad = CadConsistent(cad_db, fds);
    if (!cad.decided) {
      // "Undecided: budget" is a different outcome from "inconsistent" —
      // the search ran out of resources before reaching a verdict.
      std::printf("  CAD verdict: undecided (%s)\n",
                  cad.status.message().c_str());
      return 1;
    }
    Report("CAD verdict:", cad.consistent);
    std::printf("    [exact search explored %llu nodes]\n",
                static_cast<unsigned long long>(cad.nodes));
    if (cad.consistent) {
      std::printf("    completed weak instance:\n");
      for (const auto& row : cad.weak_instance) {
        std::printf("      ");
        for (ValueId v : row) {
          std::printf("%s ", cad_db.symbols().NameOf(v).c_str());
        }
        std::printf("\n");
      }
    }
  }

  // Theorem 6/7 in action: build the weak instance explicitly for the
  // consistent case and verify it via the canonical interpretation.
  {
    Database w;
    std::size_t wi =
        w.AddRelation("world", {"Student", "Course", "Prof", "Office"});
    w.relation(wi).AddRow(&w.symbols(), {"ann", "db101", "codd", "r32"});
    w.relation(wi).AddRow(&w.symbols(), {"bob", "db101", "codd", "r32"});
    w.relation(wi).AddRow(&w.symbols(), {"bob", "ml201", "pearl", "r7"});
    ExprArena arena3;
    std::vector<Pd> pds3 = {*arena3.ParsePd("Course <= Prof"),
                            *arena3.ParsePd("Prof <= Office")};
    bool all = true;
    for (const Pd& pd : pds3) {
      all = all && *RelationSatisfiesPd(w, w.relation(wi), arena3, pd);
    }
    std::printf("\nexplicit weak instance satisfies the FPDs: %s\n",
                all ? "yes" : "no");
    PartitionInterpretation interp =
        *CanonicalInterpretation(w, w.relation(wi));
    std::printf("its canonical interpretation satisfies EAP: %s\n",
                interp.SatisfiesEap() ? "yes" : "no");
  }
  return 0;
}
