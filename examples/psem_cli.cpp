// psem_cli — an interactive/scriptable partition-dependency reasoner.
//
// Reads commands from stdin (or from a file passed as argv[1]) and
// exercises the whole library surface: theory building, Algorithm ALG
// implication with proof extraction, countermodel search, identity
// recognition, simplification, database loading, and consistency tests.
//
//   pd C = A + B            add a partition dependency to E
//   fd A B -> C             add a functional dependency (as an FPD)
//   implies A <= C          query E |= delta (Theorem 9)
//   explain A <= C          ... with a derivation (proof extraction)
//   counter A <= C          search for a small countermodel
//   identity A*(A+B) = A    does it hold in EVERY interpretation? (Thm 10)
//   simplify A*(A+B)+C*C    identity-preserving simplification
//   relation R(A, B)        declare a relation
//   row R a b               insert a tuple
//   consistent              database consistent with E? (Theorem 12)
//   materialize             build an explicit weak instance (Lemma 12.1)
//   show                    print E and the database
//   help / quit
//
// Flags:
//   --deadline-ms <n>   per-command wall-clock budget; a command that
//                       exceeds it reports "undecided: ..." with partial
//                       stats instead of running unbounded
//   --max-arcs <n>      arc budget for the ALG closure (memory proxy)
//   --snapshot-dir <d>  durability: keep closure.snap + closure.wal in
//                       <d> (created if absent); recovery runs at startup
//                       and a summary line goes to stderr
//   --journal <path>    journal-only durability (no snapshot) at <path>;
//                       with --snapshot-dir, overrides the journal path
//   --checkpoint-every <n>  rewrite the snapshot every n accepted PDs
//                       (default 32; 0 = only the explicit 'checkpoint'
//                       command)
//
// With durability enabled, 'pd'/'fd' append to the write-ahead journal
// (fsync) before applying, so an acknowledged constraint survives kill -9
// at any instant; 'implies' reuses the recovered warm engine instead of
// rebuilding the closure per query.
//
// The process exit code distinguishes outcomes (see ExitCodeFor):
// 0 ok, 2 invalid input, 6 resource budget exhausted, 7 inconsistent
// verdict, 9 cancelled, 10 durable-artifact data loss, 11 I/O failure,
// 1 reserved for non-Status failures (e.g. an unreadable script file).
// With multiple failing commands in one script, the LAST error wins.
//
// Run: ./build/examples/psem_cli   (then type commands)
//      echo "pd A <= B\nimplies A*C <= B*C" | ./build/examples/psem_cli

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "psem.h"
#include "util/strings.h"

using namespace psem;

namespace {

struct Session {
  ExprArena arena;
  std::vector<Pd> pds;
  Database db;
  uint64_t deadline_ms = 0;  // 0 = no deadline
  uint64_t max_arcs = 0;     // 0 = no arc budget
  Status last_error;         // drives the process exit code
  // Set when --snapshot-dir/--journal is given: every accepted PD is
  // journaled before it is applied, and 'implies' reuses the warm engine.
  std::optional<DurablePdEngine> durable;

  // Fresh context per command: the deadline is relative to the command's
  // start, not the session's.
  ExecContext Ctx() const {
    ExecContext ctx;
    if (deadline_ms > 0) ctx.WithTimeout(std::chrono::milliseconds(deadline_ms));
    if (max_arcs > 0) ctx.WithMaxArcs(max_arcs);
    return ctx;
  }

  void ShowStatusError(const Status& st) {
    std::printf("error: %s\n", st.ToString().c_str());
    last_error = st;
  }

  // Partial-stats-on-timeout contract: even an aborted closure reports
  // how far it got (docs/robustness.md).
  void ShowUndecided(const Status& st, const AlgStats& stats) {
    std::printf("undecided: %s\n", st.message().c_str());
    std::printf("  partial stats: |V| = %zu, arcs = %zu, passes = %zu, "
                "aborted closures = %zu\n",
                stats.num_vertices, stats.num_arcs, stats.passes,
                stats.aborted_closures);
    last_error = st;
  }

  // Routes a new constraint through the durable engine when enabled
  // (journal fsync happens before the constraint is applied).
  bool AcceptPd(const Pd& pd) {
    if (durable) {
      Status st = durable->AddPd(pd, Ctx());
      if (!st.ok()) {
        ShowStatusError(st);
        return false;
      }
      pds = durable->engine().constraints();
      return true;
    }
    pds.push_back(pd);
    return true;
  }

  void Handle(const std::string& raw) {
    std::string_view line = StripAsciiWhitespace(raw);
    if (line.empty() || line[0] == '#') return;
    auto starts = [&](const char* prefix) {
      return line.rfind(prefix, 0) == 0;
    };
    auto rest_after = [&](std::size_t n) {
      return std::string(StripAsciiWhitespace(line.substr(n)));
    };

    if (starts("pd ")) {
      auto pd = arena.ParsePd(rest_after(3));
      if (!pd.ok()) return ShowStatusError(pd.status());
      if (!AcceptPd(*pd)) return;
      std::set<AttrId> attrs;
      arena.CollectAttrs(pd->lhs, &attrs);
      arena.CollectAttrs(pd->rhs, &attrs);
      for (AttrId a : attrs) db.universe().Intern(arena.AttrName(a));
      std::printf("E%zu: %s\n", pds.size(), arena.ToString(*pd).c_str());
    } else if (starts("fd ")) {
      auto fd = Fd::Parse(&db.universe(), rest_after(3));
      if (!fd.ok()) return ShowStatusError(fd.status());
      Pd fpd = FdToFpd(db.universe(), &arena, *fd);
      if (!AcceptPd(fpd)) return;
      std::printf("E%zu: %s   (FPD for %s)\n", pds.size(),
                  arena.ToString(fpd).c_str(),
                  fd->ToString(db.universe()).c_str());
    } else if (starts("implies ")) {
      auto pd = arena.ParsePd(rest_after(8));
      if (!pd.ok()) return ShowStatusError(pd.status());
      if (durable) {
        // The recovered engine stays warm across queries; only the
        // query's two vertices are new work.
        auto verdict = durable->engine().Implies(*pd, Ctx());
        if (!verdict.ok()) {
          return ShowUndecided(verdict.status(), durable->engine().stats());
        }
        std::printf("%s\n", *verdict ? "implied" : "not implied");
        return;
      }
      PdImplicationEngine engine(&arena, pds);
      auto verdict = engine.Implies(*pd, Ctx());
      if (!verdict.ok()) {
        return ShowUndecided(verdict.status(), engine.stats());
      }
      std::printf("%s\n", *verdict ? "implied" : "not implied");
    } else if (line == "checkpoint") {
      if (!durable) {
        std::printf("durability is not enabled (--snapshot-dir)\n");
        return;
      }
      Status st = durable->Checkpoint(Ctx());
      if (!st.ok()) return ShowStatusError(st);
      std::printf("checkpoint written\n");
    } else if (starts("explain ")) {
      auto pd = arena.ParsePd(rest_after(8));
      if (!pd.ok()) return ShowStatusError(pd.status());
      ProvenanceEngine prover(&arena, pds);
      auto proof = prover.Prove(*pd);
      if (!proof.ok()) {
        std::printf("not implied (%s)\n", proof.status().message().c_str());
        return;
      }
      std::printf("%s", RenderProof(arena, *proof).c_str());
    } else if (starts("counter ")) {
      auto pd = arena.ParsePd(rest_after(8));
      if (!pd.ok()) return ShowStatusError(pd.status());
      auto model = FindCounterModel(arena, pds, *pd, /*max_population=*/4);
      if (!model) {
        std::printf("no countermodel with population <= 4 (likely implied)\n");
        return;
      }
      std::printf("countermodel over population of %zu:\n%s",
                  model->population_size,
                  model->interpretation.ToString().c_str());
    } else if (starts("identity ")) {
      auto pd = arena.ParsePd(rest_after(9));
      if (!pd.ok()) return ShowStatusError(pd.status());
      WhitmanMemo w(&arena);
      std::printf("%s\n", w.IsIdentity(*pd) ? "identity (holds everywhere)"
                                            : "not an identity");
    } else if (starts("simplify ")) {
      auto e = arena.Parse(rest_after(9));
      if (!e.ok()) return ShowStatusError(e.status());
      std::printf("%s\n", arena.ToString(SimplifyExpr(&arena, *e)).c_str());
    } else if (starts("relation ") || starts("row ")) {
      Status st = LoadDatabaseText(std::string(line), &db);
      if (!st.ok()) return ShowStatusError(st);
      std::printf("ok\n");
    } else if (starts("csvfile ")) {
      // csvfile <path> <relation-name>
      std::vector<std::string> parts = SplitAndStrip(line.substr(8), ' ');
      if (parts.size() != 2) {
        std::printf("usage: csvfile <path> <relation-name>\n");
        return;
      }
      std::ifstream f(parts[0]);
      if (!f) {
        std::printf("cannot open %s\n", parts[0].c_str());
        return;
      }
      std::stringstream buf;
      buf << f.rdbuf();
      auto ri = LoadCsvRelation(buf.str(), &db, parts[1]);
      if (!ri.ok()) return ShowStatusError(ri.status());
      std::printf("loaded %zu rows into %s\n", db.relation(*ri).size(),
                  parts[1].c_str());
    } else if (starts("discover ")) {
      auto idx = db.IndexOf(rest_after(9));
      if (!idx.ok()) return ShowStatusError(idx.status());
      const Relation& r = db.relation(*idx);
      auto fds = DiscoverFds(db, r);
      if (!fds.ok()) return ShowStatusError(fds.status());
      std::printf("minimal FDs:\n");
      for (const Fd& fd : *fds) {
        std::printf("  %s\n", fd.ToString(db.universe()).c_str());
      }
      auto patterns = DiscoverPdPatterns(db, r);
      if (!patterns.ok()) return ShowStatusError(patterns.status());
      std::printf("PD patterns:\n");
      for (const PdPattern& p : *patterns) {
        std::printf("  %s\n", p.ToString(db.universe()).c_str());
      }
    } else if (starts("query ")) {
      auto q = ConjunctiveQuery::Parse(rest_after(6));
      if (!q.ok()) return ShowStatusError(q.status());
      auto answers = EvaluateQuery(&db, *q);
      if (!answers.ok()) return ShowStatusError(answers.status());
      std::printf("%s", answers->ToString(db.universe(), db.symbols()).c_str());
    } else if (starts("analyze ")) {
      auto idx = db.IndexOf(rest_after(8));
      if (!idx.ok()) return ShowStatusError(idx.status());
      const Relation& r = db.relation(*idx);
      auto interp = CanonicalInterpretation(db, r);
      if (!interp.ok()) return ShowStatusError(interp.status());
      auto closure = InterpretationLattice(*interp, /*max_elements=*/2000);
      if (!closure.ok()) return ShowStatusError(closure.status());
      std::printf("L(I(%s)): %s\n", r.schema().name.c_str(),
                  Summarize(closure->lattice).c_str());
    } else if (line == "consistent") {
      auto report = PdConsistent(&db, arena, pds, Ctx());
      if (!report.ok()) {
        // Keep "undecided: budget" visibly distinct from the
        // INCONSISTENT verdict below.
        if (report.status().code() == StatusCode::kResourceExhausted ||
            report.status().code() == StatusCode::kCancelled) {
          std::printf("undecided: %s\n", report.status().message().c_str());
          last_error = report.status();
          return;
        }
        return ShowStatusError(report.status());
      }
      if (!report->consistent) {
        last_error = Status::Inconsistent("database inconsistent with E");
      }
      std::printf("%s (|F| = %zu, sum-uppers = %zu, chase rounds = %zu)\n",
                  report->consistent ? "consistent" : "INCONSISTENT",
                  report->num_fpds, report->num_sum_uppers,
                  report->chase_rounds);
    } else if (line == "materialize") {
      auto m = MaterializeWeakInstance(&db, arena, pds, /*max_rounds=*/64,
                                       Ctx());
      if (!m.ok()) return ShowStatusError(m.status());
      std::printf("weak instance (%zu rows, %zu repairs):\n%s",
                  m->instance.size(), m->added_tuples,
                  m->instance.ToString(db.universe(), db.symbols()).c_str());
    } else if (line == "show") {
      std::printf("E:\n");
      for (std::size_t i = 0; i < pds.size(); ++i) {
        std::printf("  E%zu: %s\n", i + 1, arena.ToString(pds[i]).c_str());
      }
      std::printf("database:\n%s", DumpDatabaseText(db).c_str());
    } else if (line == "help") {
      std::printf(
          "commands: pd, fd, implies, explain, counter, identity, simplify,\n"
          "          relation, row, csvfile, discover, query, analyze,\n"
          "          consistent, materialize, checkpoint, show, quit\n");
    } else if (line == "quit" || line == "exit") {
      std::exit(ExitCodeFor(last_error.code()));
    } else {
      std::printf("unknown command (try 'help'): %s\n",
                  std::string(line).c_str());
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  Session session;
  std::string script_path;
  std::string snapshot_dir;
  std::string journal_path;
  uint64_t checkpoint_every = 32;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto flag_value = [&](std::string_view name,
                          uint64_t* out) -> bool {  // --name N | --name=N
      if (arg.rfind(name, 0) != 0) return false;
      std::string_view rest = arg.substr(name.size());
      const char* text = nullptr;
      if (rest.empty()) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "%.*s requires a value\n",
                       static_cast<int>(name.size()), name.data());
          std::exit(1);
        }
        text = argv[++i];
      } else if (rest[0] == '=') {
        text = argv[i] + name.size() + 1;
      } else {
        return false;
      }
      char* end = nullptr;
      unsigned long long v = std::strtoull(text, &end, 10);
      if (end == text || *end != '\0') {
        std::fprintf(stderr, "invalid value for %.*s: %s\n",
                     static_cast<int>(name.size()), name.data(), text);
        std::exit(1);
      }
      *out = v;
      return true;
    };
    auto string_flag = [&](std::string_view name,
                           std::string* out) -> bool {  // --name V | --name=V
      if (arg.rfind(name, 0) != 0) return false;
      std::string_view rest = arg.substr(name.size());
      if (rest.empty()) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "%.*s requires a value\n",
                       static_cast<int>(name.size()), name.data());
          std::exit(1);
        }
        *out = argv[++i];
        return true;
      }
      if (rest[0] == '=') {
        *out = std::string(rest.substr(1));
        return true;
      }
      return false;
    };
    if (flag_value("--deadline-ms", &session.deadline_ms)) continue;
    if (flag_value("--max-arcs", &session.max_arcs)) continue;
    if (flag_value("--checkpoint-every", &checkpoint_every)) continue;
    if (string_flag("--snapshot-dir", &snapshot_dir)) continue;
    if (string_flag("--journal", &journal_path)) continue;
    if (arg == "--help" || arg == "-h") {
      std::printf("usage: psem_cli [--deadline-ms N] [--max-arcs N] "
                  "[--snapshot-dir D] [--journal PATH] "
                  "[--checkpoint-every N] [script]\n");
      return 0;
    }
    if (!script_path.empty()) {
      std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
      return 1;
    }
    script_path = arg;
  }

  if (!snapshot_dir.empty() || !journal_path.empty()) {
    DurabilityOptions opts;
    if (!snapshot_dir.empty()) {
      ::mkdir(snapshot_dir.c_str(), 0777);  // best effort; Recover reports
      opts.snapshot_path = snapshot_dir + "/closure.snap";
      if (journal_path.empty()) journal_path = snapshot_dir + "/closure.wal";
    }
    opts.journal_path = journal_path;
    opts.checkpoint_every = static_cast<std::size_t>(checkpoint_every);
    auto recovered = DurablePdEngine::Recover(&session.arena, {},
                                              std::move(opts), session.Ctx());
    if (!recovered.ok()) {
      // A hard recovery failure (e.g. corrupt journal header) must not be
      // papered over: refusing to start beats silently dropping accepted
      // constraints.
      std::fprintf(stderr, "recovery failed: %s\n",
                   recovered.status().ToString().c_str());
      return ExitCodeFor(recovered.status().code());
    }
    session.durable.emplace(std::move(*recovered));
    session.pds = session.durable->engine().constraints();
    const RecoveryStats& rs = session.durable->recovery();
    // stderr so scripted stdout stays byte-comparable with a
    // durability-free run of the same commands.
    std::fprintf(stderr,
                 "recovery: tier=%s constraints=%zu journal_records=%zu "
                 "replayed=%zu snapshot_vertices=%zu snapshot_arcs=%llu%s%s\n",
                 RecoveryTierName(rs.tier), session.pds.size(),
                 rs.journal_records, rs.journal_replayed_new,
                 rs.restored_vertices,
                 static_cast<unsigned long long>(rs.restored_arcs),
                 rs.snapshot_error.empty() ? "" : " snapshot_error=",
                 rs.snapshot_error.c_str());
    for (const Pd& pd : session.pds) {
      std::set<AttrId> attrs;
      session.arena.CollectAttrs(pd.lhs, &attrs);
      session.arena.CollectAttrs(pd.rhs, &attrs);
      for (AttrId a : attrs) {
        session.db.universe().Intern(session.arena.AttrName(a));
      }
    }
  }

  std::istream* in = &std::cin;
  std::ifstream file;
  if (!script_path.empty()) {
    file.open(script_path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", script_path.c_str());
      return 1;
    }
    in = &file;
  }
  bool interactive = script_path.empty() && isatty(0);
  if (interactive) {
    std::printf("psem reasoner — type 'help' for commands\n");
  }
  std::string line;
  while (true) {
    if (interactive) std::printf("> ");
    if (!std::getline(*in, line)) break;
    session.Handle(line);
  }
  return ExitCodeFor(session.last_error.code());
}
