// Certain answers over weak instances: the query-side payoff of Section
// 4.3. A database fragmented across three schemas is queried as if the
// universal relation existed; FDs let the chase infer joins that no
// stored relation contains, and only facts true in EVERY weak instance
// are returned.
//
// Run: ./build/examples/certain_answers

#include <cstdio>

#include "psem.h"

using namespace psem;

namespace {

void PrintRelation(const Database& db, const Relation& r) {
  std::printf("%s", r.ToString(db.universe(), db.symbols()).c_str());
}

}  // namespace

int main() {
  std::printf("== certain answers over a fragmented clinic database ==\n\n");

  Database db;
  std::size_t visits = db.AddRelation("visits", {"Patient", "Doctor"});
  db.relation(visits).AddRow(&db.symbols(), {"paula", "drX"});
  db.relation(visits).AddRow(&db.symbols(), {"quinn", "drY"});
  db.relation(visits).AddRow(&db.symbols(), {"rosa", "drZ"});
  std::size_t staff = db.AddRelation("staff", {"Doctor", "Ward"});
  db.relation(staff).AddRow(&db.symbols(), {"drX", "cardio"});
  db.relation(staff).AddRow(&db.symbols(), {"drY", "neuro"});
  std::size_t wards = db.AddRelation("wards", {"Ward", "Building"});
  db.relation(wards).AddRow(&db.symbols(), {"cardio", "east"});

  std::printf("%s\n", db.ToString().c_str());

  std::vector<Fd> fds = {
      *Fd::Parse(&db.universe(), "Doctor -> Ward"),
      *Fd::Parse(&db.universe(), "Ward -> Building"),
  };
  std::printf("FDs: Doctor -> Ward, Ward -> Building\n\n");

  // 1. The chased representative instance (what the weak instance
  // assumption lets us infer).
  auto rep = RepresentativeInstance::Build(db, fds);
  if (!rep.ok()) {
    std::printf("inconsistent: %s\n", rep.status().ToString().c_str());
    return 1;
  }
  std::printf("chased representative instance:\n%s\n",
              rep->ToString().c_str());

  // 2. Certain answers: which patients are certainly treated in which
  // building?
  QueryTerm p{true, 0, ""}, b{true, 1, ""};
  UniversalAtom atom{{{"Patient", p}, {"Building", b}}};
  Relation certain = *CertainAnswers(&db, fds, {"P", "B"}, {0, 1}, {atom});
  std::printf("certain (Patient, Building) pairs:\n");
  PrintRelation(db, certain);
  std::printf(
      "  (paula only: quinn's ward has no building on record, rosa's doctor\n"
      "   has no ward — their buildings differ across weak instances)\n\n");

  // 3. Compare with the X-total projection API.
  Relation window = *rep->TotalProjection({"Patient", "Ward"});
  std::printf("certain (Patient, Ward) pairs via total projection:\n");
  PrintRelation(db, window);

  // 4. The closed-world contrast: plain conjunctive-query evaluation over
  // the STORED relations cannot join patients to buildings at all unless
  // it goes through both fragments explicitly.
  auto q = ConjunctiveQuery::Parse(
      "ans(P, B) :- visits(P, D), staff(D, W), wards(W, B)");
  Relation closed = *EvaluateQuery(&db, *q);
  std::printf("\nclosed-world 3-way join gives the same certain pair:\n");
  PrintRelation(db, closed);
  std::printf(
      "\n(The universal-atom form needs no join plan: the chase already\n"
      " materialized the connections the FDs force.)\n");
  return 0;
}
