// Example e / Theorem 4: connectivity as a partition dependency.
//
// Encodes an undirected graph as a relation over head/tail/component
// attributes, states the PD C = A + B ("C is the connected component of
// the edge"), verifies it, extracts components purely through partition
// semantics, and demonstrates that breaking a component label falsifies
// the PD. Along the way it shows why this is remarkable: Theorem 4 proves
// no set of first-order sentences (hence no relational-algebra view) can
// express C = A + B.
//
// Run: ./build/examples/graph_components

#include <cstdio>

#include "psem.h"

using namespace psem;

int main() {
  std::printf("== graph connectivity via partition dependencies ==\n\n");

  // A graph with three components: a path, a triangle, an isolated vertex.
  Graph g(9);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);  // path 0-1-2-3
  g.AddEdge(4, 5);
  g.AddEdge(5, 6);
  g.AddEdge(6, 4);  // triangle 4-5-6
  g.AddEdge(7, 8);  // edge 7-8; vertex count 9 leaves no isolated vertex...
  std::printf("graph: 9 vertices, %zu edges\n", g.edges().size());

  Database db;
  std::size_t ri = EncodeGraphRelation(g, &db);
  const Relation& edges = db.relation(ri);
  std::printf("encoded relation (%zu tuples, Example e shape):\n%s\n",
              edges.size(),
              edges.ToString(db.universe(), db.symbols()).c_str());

  // The defining PD.
  ExprArena arena;
  Pd pd = *arena.ParsePd("C = A+B");
  std::printf("relation |= C = A+B : %s\n",
              *RelationSatisfiesPd(db, edges, arena, pd) ? "yes" : "no");

  // Extract components *through the semantics*: evaluate pi_A + pi_B in
  // the canonical interpretation I(r) and read off the blocks.
  auto pd_components = *ComponentsViaPdSemantics(db, ri, g.num_vertices());
  auto uf_components = g.ComponentsUnionFind();
  std::printf("PD-derived components match union-find: %s\n",
              SameComponents(pd_components, uf_components) ? "yes" : "no");
  std::printf("vertex -> component: ");
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    std::printf("%zu:%u ", v, pd_components[v]);
  }
  std::printf("\n");

  // Tamper with the data: claim vertex 4's triangle belongs to the path's
  // component. The PD detects the lie.
  Database tampered;
  std::size_t ti = tampered.AddRelation("edges", {"A", "B", "C"});
  for (const Tuple& t : edges.rows()) {
    std::vector<std::string> row = {db.symbols().NameOf(t[0]),
                                    db.symbols().NameOf(t[1]),
                                    db.symbols().NameOf(t[2])};
    tampered.relation(ti).AddRow(&tampered.symbols(), row);
  }
  tampered.relation(ti).AddRow(&tampered.symbols(), {"v4", "v4", "comp0"});
  std::printf("\nafter mislabeling v4 into comp0: relation |= C = A+B : %s\n",
              *RelationSatisfiesPd(tampered, tampered.relation(ti), arena, pd)
                  ? "yes"
                  : "no");

  // The weaker inequality C <= A+B (Theorem 4's non-first-order PD) only
  // requires C-equal tuples to be connected; coarsening C violates it,
  // refining C does not.
  Pd upper = *arena.ParsePd("C <= A+B");
  std::printf("tampered relation |= C <= A+B : %s\n",
              *RelationSatisfiesPd(tampered, tampered.relation(ti), arena,
                                   upper)
                  ? "yes"
                  : "no");

  // Consistency view (Theorem 12): the well-labeled database is consistent
  // with the PD; the tampered one is not.
  {
    Database copy;
    std::size_t ci = copy.AddRelation("edges", {"A", "B", "C"});
    for (const Tuple& t : edges.rows()) {
      copy.relation(ci).AddRow(&copy.symbols(), {db.symbols().NameOf(t[0]),
                                                 db.symbols().NameOf(t[1]),
                                                 db.symbols().NameOf(t[2])});
    }
    auto ok = *PdConsistent(&copy, arena, {pd});
    std::printf("\nTheorem 12 consistency of the faithful encoding: %s\n",
                ok.consistent ? "consistent" : "inconsistent");
  }
  return 0;
}
