// Schema design with the FD toolkit, viewed through partition semantics
// (Section 5.3): FD implication is the uniform word problem for
// idempotent commutative semigroups, a special case of the PD machinery.
// This example runs the classical design workflow — closures, keys,
// minimal cover — and shows that every answer agrees with Algorithm ALG
// on the FPD encodings.
//
// Run: ./build/examples/schema_design

#include <cstdio>

#include "psem.h"

using namespace psem;

int main() {
  std::printf("== schema design: orders(OrderId, Customer, Email, Item, "
              "Price, Warehouse) ==\n\n");

  Universe u;
  FdTheory fds(&u);
  const char* rules[] = {
      "OrderId -> Customer Item",
      "Customer -> Email",
      "Email -> Customer",
      "Item -> Price",
      "Item Warehouse -> OrderId",
  };
  for (const char* r : rules) {
    (void)fds.AddParsed(r);
    std::printf("FD: %s\n", r);
  }

  // Closures.
  std::printf("\nclosures:\n");
  for (const char* attr : {"OrderId", "Customer", "Item"}) {
    AttrSet x = u.MakeSet({attr});
    std::printf("  %s+ = { %s }\n", attr,
                u.SetToString(fds.Closure(x)).c_str());
  }

  // Keys of the full scheme.
  AttrSet scheme = u.MakeSet({"OrderId", "Customer", "Email", "Item", "Price",
                              "Warehouse"});
  auto keys = fds.Keys(scheme);
  std::printf("\nminimal keys (%zu):\n", keys.size());
  for (const AttrSet& k : keys) {
    std::printf("  { %s }\n", u.SetToString(k).c_str());
  }

  // Minimal cover.
  auto cover = fds.MinimalCover();
  std::printf("\nminimal cover (%zu FDs):\n", cover.size());
  for (const Fd& fd : cover) {
    std::printf("  %s\n", fd.ToString(u).c_str());
  }

  // Cross-check a few implications against ALG on FPD encodings.
  std::printf("\nFD implication vs Algorithm ALG on FPDs:\n");
  ExprArena arena;
  std::vector<Pd> fpds = FdsToFpds(u, &arena, fds.fds());
  PdImplicationEngine engine(&arena, fpds);
  const char* queries[] = {
      "OrderId -> Price",
      "OrderId -> Email",
      "Item Warehouse -> Customer",
      "Customer -> OrderId",
      "Email -> Price",
  };
  for (const char* q : queries) {
    Fd fd = *Fd::Parse(&u, q);
    bool by_closure = fds.Implies(fd);
    bool by_alg = engine.Implies(FdToFpd(u, &arena, fd));
    std::printf("  %-32s closure:%-3s ALG:%-3s %s\n", q,
                by_closure ? "yes" : "no", by_alg ? "yes" : "no",
                by_closure == by_alg ? "" : "  << MISMATCH");
  }
  std::printf("\nALG closure stats: |V| = %zu, arcs = %zu, passes = %zu\n",
              engine.stats().num_vertices, engine.stats().num_arcs,
              engine.stats().passes);

  // The three spellings of an FPD (Section 3.2).
  std::printf("\nthe three spellings of OrderId -> Customer:\n");
  Fd fd = *Fd::Parse(&u, "OrderId -> Customer");
  for (const Pd& pd : FpdSpellings(u, &arena, fd)) {
    std::printf("  %s\n", arena.ToString(pd).c_str());
  }
  PdTheory t;
  Pd s1 = *t.arena().ParsePd("OrderId = OrderId*Customer");
  Pd s2 = *t.arena().ParsePd("Customer = Customer+OrderId");
  std::printf("mutually equivalent: %s\n",
              t.Equivalent(s1, s2) ? "yes" : "no");
  return 0;
}
