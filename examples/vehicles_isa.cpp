// Examples a-d from Section 3.2, end to end: functional determination,
// ISA-style population containment, disjoint-population sums, and
// composite objects — all modeled with partition interpretations and
// verified programmatically, culminating in the Figure 1 interpretation
// and its non-distributive lattice L(I).
//
// Run: ./build/examples/vehicles_isa

#include <cstdio>

#include "psem.h"

using namespace psem;

namespace {

void Check(const PartitionInterpretation& interp, ExprArena* arena,
           const char* pd_text) {
  Pd pd = *arena->ParsePd(pd_text);
  std::printf("  I |= %-22s : %s\n", pd_text,
              *interp.Satisfies(*arena, pd) ? "yes" : "no");
}

}  // namespace

int main() {
  ExprArena arena;

  // --- Example b: every car is a vehicle (ISA via FPD). ---------------------
  std::printf("== Example b: ISA — every car is a vehicle ==\n");
  {
    PartitionInterpretation interp;
    // Population of cars {1,2,3}; of vehicles {1,2,3,10,11} (10, 11 are
    // bicycles): p_Car is a subset of p_Vehicle.
    Partition cars = Partition::FromBlocks({{1}, {2, 3}});
    Partition vehicles = Partition::FromBlocks({{1}, {2, 3}, {10}, {11}});
    (void)interp.DefineAttribute("Car", cars, {{"c1", 0}, {"c2", 1}});
    (void)interp.DefineAttribute(
        "Vehicle", vehicles,
        {{"v1", *vehicles.BlockOf(1)},
         {"v2", *vehicles.BlockOf(2)},
         {"v3", *vehicles.BlockOf(10)},
         {"v4", *vehicles.BlockOf(11)}});
    Check(interp, &arena, "Car = Car*Vehicle");
    Check(interp, &arena, "Car <= Vehicle");
    Check(interp, &arena, "Vehicle <= Car");
  }

  // --- Example c: vehicles = cars + bicycles (disjoint populations). --------
  std::printf("\n== Example c: Vehicle = Car + Bicycle ==\n");
  {
    PartitionInterpretation interp;
    Partition cars = Partition::FromBlocks({{1}, {2, 3}});
    Partition bikes = Partition::FromBlocks({{10, 11}});
    Partition vehicles = Partition::FromBlocks({{1}, {2, 3}, {10, 11}});
    (void)interp.DefineAttribute("Car", cars, {{"c1", 0}, {"c2", 1}});
    (void)interp.DefineAttribute("Bicycle", bikes, {{"b1", 0}});
    (void)interp.DefineAttribute(
        "Vehicle", vehicles,
        {{"v1", *vehicles.BlockOf(1)},
         {"v2", *vehicles.BlockOf(2)},
         {"v3", *vehicles.BlockOf(10)}});
    Check(interp, &arena, "Vehicle = Car + Bicycle");
    // The sum of disjoint populations is the union of the block families.
    Partition sum = *interp.Eval(arena, *arena.Parse("Car + Bicycle"));
    std::printf("  Car + Bicycle = %s\n", sum.ToString().c_str());
  }

  // --- Example d: cars as composite objects. ---------------------------------
  std::printf("\n== Example d: Car = Registration * Serial ==\n");
  {
    PartitionInterpretation interp;
    Partition reg = Partition::FromBlocks({{1, 2}, {3, 4}});
    Partition serial = Partition::FromBlocks({{1, 3}, {2, 4}});
    Partition car = Partition::Discrete({1, 2, 3, 4});
    (void)interp.DefineAttribute("Reg", reg, {{"r1", 0}, {"r2", 1}});
    (void)interp.DefineAttribute("Serial", serial, {{"s1", 0}, {"s2", 1}});
    (void)interp.DefineAttribute(
        "Car", car, {{"k1", 0}, {"k2", 1}, {"k3", 2}, {"k4", 3}});
    Check(interp, &arena, "Car = Reg*Serial");
    Check(interp, &arena, "Car <= Reg");
    Check(interp, &arena, "Reg <= Car");
  }

  // --- Figure 1: the full worked interpretation. ------------------------------
  std::printf("\n== Figure 1: interpretation, database, CAD/EAP, L(I) ==\n");
  {
    PartitionInterpretation interp;
    Partition pa = Partition::FromBlocks({{1}, {4}, {2, 3}});
    Partition pb = Partition::FromBlocks({{1, 4}, {2, 3}});
    Partition pc = Partition::FromBlocks({{1, 2}, {3, 4}});
    (void)interp.DefineAttribute("A", pa,
                                 {{"a", *pa.BlockOf(1)},
                                  {"a1", *pa.BlockOf(4)},
                                  {"a2", *pa.BlockOf(2)}});
    (void)interp.DefineAttribute("B", pb,
                                 {{"b", *pb.BlockOf(1)},
                                  {"b1", *pb.BlockOf(2)}});
    (void)interp.DefineAttribute("C", pc,
                                 {{"c", *pc.BlockOf(1)},
                                  {"c1", *pc.BlockOf(3)}});
    std::printf("%s", interp.ToString().c_str());

    Database db;
    std::size_t ri = db.AddRelation("R", {"A", "B", "C"});
    db.relation(ri).AddRow(&db.symbols(), {"a", "b", "c"});
    db.relation(ri).AddRow(&db.symbols(), {"a2", "b1", "c"});
    db.relation(ri).AddRow(&db.symbols(), {"a2", "b1", "c1"});
    db.relation(ri).AddRow(&db.symbols(), {"a1", "b", "c1"});
    std::printf("\n  I |= d   : %s\n",
                *interp.SatisfiesDatabase(db) ? "yes" : "no");
    Check(interp, &arena, "A = A*B");
    std::printf("  I |= CAD : %s\n", *interp.SatisfiesCad(db) ? "yes" : "no");
    std::printf("  I |= EAP : %s\n", interp.SatisfiesEap() ? "yes" : "no");

    PartitionClosure closure = *InterpretationLattice(interp);
    std::printf("\n  L(I): %zu elements, lattice axioms %s, distributive: "
                "%s\n",
                closure.lattice.size(),
                closure.lattice.ValidateAxioms().ok() ? "hold" : "FAIL",
                closure.lattice.IsDistributive() ? "yes" : "no");
    Partition lhs = *interp.Eval(arena, *arena.Parse("B*(A+C)"));
    Partition rhs = *interp.Eval(arena, *arena.Parse("B*A + B*C"));
    std::printf("  B*(A+C)   = %s\n", lhs.ToString().c_str());
    std::printf("  B*A + B*C = %s  (distributivity fails here)\n",
                rhs.ToString().c_str());
  }
  return 0;
}
