// Quickstart: the 5-minute tour of the psem library.
//
// Builds a PD theory mixing functional determination and connectivity,
// asks implication questions (Algorithm ALG, Theorem 9), recognizes
// identities (Theorem 10), and checks a relation against the theory
// (Definition 7).
//
// Run: ./build/examples/quickstart

#include <cstdio>

#include "psem.h"

using namespace psem;

int main() {
  std::printf("== psem quickstart ==\n\n");

  // 1. A theory of partition dependencies.
  //    Emp <= Mgr          : every employee has one manager (the FD
  //                          Emp -> Mgr as an FPD, Example a)
  //    Mgr <= Div          : every manager belongs to one division
  //    Net = Host + Rack   : Net is the connected component of the
  //                          host/rack adjacency (Example e style)
  PdTheory theory;
  for (const char* pd : {"Emp <= Mgr", "Mgr <= Div", "Net = Host + Rack"}) {
    Status st = theory.AddParsed(pd);
    if (!st.ok()) {
      std::printf("failed to add %s: %s\n", pd, st.ToString().c_str());
      return 1;
    }
    std::printf("added PD:      %s\n", pd);
  }

  // 2. Implication queries — answered in polynomial time by Algorithm ALG.
  std::printf("\nimplication queries (E |= delta):\n");
  for (const char* q : {
           "Emp <= Div",          // transitivity of FPDs
           "Emp*X <= Div*X",      // augmentation
           "Host <= Net",         // from the connectivity PD
           "Host*Rack <= Net",    //
           "Net <= Host",         // should fail
           "Div <= Emp",          // should fail
       }) {
    std::printf("  %-18s -> %s\n", q, *theory.ImpliesParsed(q) ? "implied"
                                                               : "not implied");
  }

  // 3. Identity recognition — the E = {} fragment, decidable in logspace.
  std::printf("\nidentity queries (hold in EVERY interpretation):\n");
  for (const char* q : {"A*(A+B) = A", "A*B + A*C <= A*(B+C)",
                        "A*(B+C) <= A*B + A*C"}) {
    Pd pd = *theory.arena().ParsePd(q);
    std::printf("  %-24s -> %s\n", q,
                theory.IsIdentity(pd) ? "identity" : "not an identity");
  }

  // 4. Checking a concrete relation against the theory (Definition 7).
  Database db;
  std::size_t ri = db.AddRelation("staff", {"Emp", "Mgr", "Div"});
  Relation& staff = db.relation(ri);
  staff.AddRow(&db.symbols(), {"ann", "kim", "eng"});
  staff.AddRow(&db.symbols(), {"bob", "kim", "eng"});
  staff.AddRow(&db.symbols(), {"eve", "lee", "ops"});
  std::printf("\nrelation staff:\n%s",
              staff.ToString(db.universe(), db.symbols()).c_str());

  PdTheory staff_theory;
  (void)staff_theory.AddParsed("Emp <= Mgr");
  (void)staff_theory.AddParsed("Mgr <= Div");
  std::printf("staff satisfies the FPDs: %s\n",
              *staff_theory.SatisfiedBy(db, staff) ? "yes" : "no");

  // Break the manager FD and re-check.
  staff.AddRow(&db.symbols(), {"ann", "lee", "ops"});
  std::printf("after giving ann a second manager: %s\n",
              *staff_theory.SatisfiedBy(db, staff) ? "yes" : "no");

  // 5. Consistency of a multi-relation database with PDs (Theorem 12).
  Database frag;
  std::size_t em = frag.AddRelation("em", {"Emp", "Mgr"});
  frag.relation(em).AddRow(&frag.symbols(), {"ann", "kim"});
  frag.relation(em).AddRow(&frag.symbols(), {"ann", "lee"});  // conflict!
  ExprArena arena;
  std::vector<Pd> pds = {*arena.ParsePd("Emp <= Mgr")};
  auto report = *PdConsistent(&frag, arena, pds);
  std::printf(
      "\nfragmented db with two managers for ann: %s (chase rounds %zu)\n",
      report.consistent ? "consistent" : "INCONSISTENT", report.chase_rounds);

  std::printf("\ndone.\n");
  return 0;
}
