#include "graph/graph.h"

#include <algorithm>
#include <queue>
#include <set>
#include <unordered_map>

#include "partition/canonical.h"
#include "partition/partition.h"
#include "util/rng.h"
#include "util/union_find.h"

namespace psem {

void Graph::AddEdge(uint32_t u, uint32_t v) {
  edges_.emplace_back(u, v);
}

std::vector<uint32_t> Graph::ComponentsUnionFind() const {
  UnionFind uf(num_vertices_);
  for (auto [u, v] : edges_) uf.Union(u, v);
  return uf.CanonicalLabels();
}

std::vector<uint32_t> Graph::ComponentsBfs() const {
  std::vector<std::vector<uint32_t>> adj(num_vertices_);
  for (auto [u, v] : edges_) {
    adj[u].push_back(v);
    adj[v].push_back(u);
  }
  std::vector<uint32_t> label(num_vertices_, UINT32_MAX);
  uint32_t next = 0;
  for (uint32_t s = 0; s < num_vertices_; ++s) {
    if (label[s] != UINT32_MAX) continue;
    label[s] = next;
    std::queue<uint32_t> q;
    q.push(s);
    while (!q.empty()) {
      uint32_t u = q.front();
      q.pop();
      for (uint32_t v : adj[u]) {
        if (label[v] == UINT32_MAX) {
          label[v] = next;
          q.push(v);
        }
      }
    }
    ++next;
  }
  return label;
}

Graph Graph::Random(std::size_t n, std::size_t m, uint64_t seed) {
  Graph g(n);
  Rng rng(seed);
  std::set<std::pair<uint32_t, uint32_t>> used;
  std::size_t max_edges = n * (n - 1) / 2;
  m = std::min(m, max_edges);
  while (g.edges_.size() < m) {
    uint32_t u = static_cast<uint32_t>(rng.Below(n));
    uint32_t v = static_cast<uint32_t>(rng.Below(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (used.insert({u, v}).second) g.AddEdge(u, v);
  }
  return g;
}

std::size_t EncodeGraphRelation(const Graph& g, Database* db,
                                const std::string& rel_name,
                                const std::string& a_name,
                                const std::string& b_name,
                                const std::string& c_name) {
  std::vector<uint32_t> comp = g.ComponentsUnionFind();
  std::size_t ri = db->AddRelation(rel_name, {a_name, b_name, c_name});
  Relation& r = db->relation(ri);
  auto vname = [&](uint32_t v) { return "v" + std::to_string(v); };
  auto cname = [&](uint32_t v) { return "comp" + std::to_string(comp[v]); };
  std::vector<bool> seen(g.num_vertices(), false);
  for (auto [u, v] : g.edges()) {
    r.AddRow(&db->symbols(), {vname(u), vname(v), cname(u)});
    r.AddRow(&db->symbols(), {vname(v), vname(u), cname(u)});
    r.AddRow(&db->symbols(), {vname(u), vname(u), cname(u)});
    r.AddRow(&db->symbols(), {vname(v), vname(v), cname(v)});
    seen[u] = seen[v] = true;
  }
  for (uint32_t v = 0; v < g.num_vertices(); ++v) {
    if (!seen[v]) r.AddRow(&db->symbols(), {vname(v), vname(v), cname(v)});
  }
  return ri;
}

Result<std::vector<uint32_t>> ComponentsViaPdSemantics(
    const Database& db, std::size_t relation_index, std::size_t num_vertices,
    const std::string& a_name, const std::string& b_name) {
  const Relation& r = db.relation(relation_index);
  if (r.empty()) return std::vector<uint32_t>(num_vertices, UINT32_MAX);
  PSEM_ASSIGN_OR_RETURN(PartitionInterpretation interp,
                        CanonicalInterpretation(db, r));
  PSEM_ASSIGN_OR_RETURN(Partition pa, interp.AtomicPartition(a_name));
  PSEM_ASSIGN_OR_RETURN(Partition pb, interp.AtomicPartition(b_name));
  Partition sum = Partition::Sum(pa, pb);

  // Map each vertex to the block of any tuple mentioning it under A. In
  // the Example-e encoding every vertex of the graph appears under A.
  PSEM_ASSIGN_OR_RETURN(RelAttrId a_id, db.universe().Require(a_name));
  std::size_t a_col = r.schema().ColumnOf(a_id);
  if (a_col == RelationSchema::kNpos) {
    return Status::InvalidArgument("relation lacks attribute " + a_name);
  }
  std::vector<uint32_t> label(num_vertices, UINT32_MAX);
  for (uint32_t i = 0; i < r.size(); ++i) {
    const std::string& sym = db.symbols().NameOf(r.row(i)[a_col]);
    if (sym.size() < 2 || sym[0] != 'v') continue;
    uint32_t vertex = static_cast<uint32_t>(std::stoul(sym.substr(1)));
    if (vertex >= num_vertices) continue;
    auto block = sum.BlockOf(i);
    if (block.has_value()) label[vertex] = *block;
  }
  return label;
}

bool SameComponents(const std::vector<uint32_t>& x,
                    const std::vector<uint32_t>& y) {
  if (x.size() != y.size()) return false;
  std::unordered_map<uint32_t, uint32_t> xy, yx;
  for (std::size_t i = 0; i < x.size(); ++i) {
    auto [it1, in1] = xy.emplace(x[i], y[i]);
    if (!in1 && it1->second != y[i]) return false;
    auto [it2, in2] = yx.emplace(y[i], x[i]);
    if (!in2 && it2->second != x[i]) return false;
  }
  return true;
}

}  // namespace psem
