// Undirected graphs and their encoding as relations (Example e, Section
// 3.2): for every edge {a, b} in component c the relation over head/tail/
// component attributes holds tuples abc, bac, aac, bbc. The PD C = A + B
// then states exactly that C is the connected component of the edge — the
// connectivity condition Theorem 4 proves inexpressible in first-order
// logic.

#ifndef PSEM_GRAPH_GRAPH_H_
#define PSEM_GRAPH_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relational/relation.h"
#include "util/status.h"

namespace psem {

/// A simple undirected graph on vertices 0..n-1.
class Graph {
 public:
  explicit Graph(std::size_t num_vertices) : num_vertices_(num_vertices) {}

  std::size_t num_vertices() const { return num_vertices_; }
  const std::vector<std::pair<uint32_t, uint32_t>>& edges() const {
    return edges_;
  }

  /// Adds edge {u, v}; self-loops and duplicates allowed (idempotent in
  /// effect).
  void AddEdge(uint32_t u, uint32_t v);

  /// Component label of each vertex (canonical: numbered by smallest
  /// member), via union-find.
  std::vector<uint32_t> ComponentsUnionFind() const;

  /// Component label of each vertex via BFS (reference implementation for
  /// differential tests).
  std::vector<uint32_t> ComponentsBfs() const;

  /// Random graph G(n, m) with a fixed seed (simple, no self-loops).
  static Graph Random(std::size_t n, std::size_t m, uint64_t seed);

 private:
  std::size_t num_vertices_;
  std::vector<std::pair<uint32_t, uint32_t>> edges_;
};

/// Encodes `g` per Example e into a fresh relation of `db` with attributes
/// {a_name, b_name, c_name}: tuples abc, bac, aac, bbc per edge, vvc per
/// isolated vertex, where c is the vertex's true component label. Returns
/// the relation's index in db.
std::size_t EncodeGraphRelation(const Graph& g, Database* db,
                                const std::string& rel_name = "edges",
                                const std::string& a_name = "A",
                                const std::string& b_name = "B",
                                const std::string& c_name = "C");

/// Recovers connected components from the *relation* by PD semantics:
/// evaluates pi_A + pi_B in I(r) and maps tuple blocks back to vertices
/// (vertex label = block of any tuple mentioning it under A). Returns a
/// per-vertex component label aligned with Graph vertex ids; vertices
/// absent from the relation get label UINT32_MAX.
Result<std::vector<uint32_t>> ComponentsViaPdSemantics(
    const Database& db, std::size_t relation_index, std::size_t num_vertices,
    const std::string& a_name = "A", const std::string& b_name = "B");

/// Checks whether two component labelings are the same partition of the
/// vertex set (labels may differ).
bool SameComponents(const std::vector<uint32_t>& x,
                    const std::vector<uint32_t>& y);

}  // namespace psem

#endif  // PSEM_GRAPH_GRAPH_H_
