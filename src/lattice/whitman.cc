#include "lattice/whitman.h"

#include <cassert>
#include <vector>

namespace psem {

namespace {
inline uint64_t PairKey(ExprId p, ExprId q) {
  return (static_cast<uint64_t>(p) << 32) | q;
}
}  // namespace

// Rule dispatch (Section 5.3, cases 1-7). The recursion is well-founded:
// every recursive call strictly decreases |p| + |q|.
bool WhitmanMemo::Leq(ExprId p, ExprId q) {
  uint64_t key = PairKey(p, q);
  auto it = memo_.find(key);
  if (it != memo_.end()) return it->second;

  const ExprArena& a = *arena_;
  bool res;
  if (a.KindOf(p) == ExprKind::kSum) {
    // Case 7: p1 + p2 <= q iff p1 <= q and p2 <= q.
    res = Leq(a.LhsOf(p), q) && Leq(a.RhsOf(p), q);
  } else if (a.KindOf(q) == ExprKind::kProduct &&
             a.KindOf(p) != ExprKind::kProduct) {
    // Case 2 (p an attribute): p <= q1 * q2 iff p <= q1 and p <= q2.
    res = Leq(p, a.LhsOf(q)) && Leq(p, a.RhsOf(q));
  } else if (a.KindOf(p) == ExprKind::kAttr) {
    switch (a.KindOf(q)) {
      case ExprKind::kAttr:
        // Case 1: A <= A' iff identical (ids are hash-consed).
        res = (p == q);
        break;
      case ExprKind::kSum:
        // Case 3: A <= q1 + q2 iff A <= q1 or A <= q2.
        res = Leq(p, a.LhsOf(q)) || Leq(p, a.RhsOf(q));
        break;
      case ExprKind::kProduct:
        res = Leq(p, a.LhsOf(q)) && Leq(p, a.RhsOf(q));
        break;
    }
  } else {
    // p is a product p1 * p2.
    ExprId p1 = a.LhsOf(p), p2 = a.RhsOf(p);
    switch (a.KindOf(q)) {
      case ExprKind::kAttr:
        // Case 4: p1 * p2 <= A' iff p1 <= A' or p2 <= A'.
        res = Leq(p1, q) || Leq(p2, q);
        break;
      case ExprKind::kProduct:
        // Case 5: p <= q1 * q2 iff p <= q1 and p <= q2.
        res = Leq(p, a.LhsOf(q)) && Leq(p, a.RhsOf(q));
        break;
      case ExprKind::kSum:
        // Case 6 (Whitman's condition): p1*p2 <= q1+q2 iff
        //   p1 <= q or p2 <= q or p <= q1 or p <= q2.
        res = Leq(p1, q) || Leq(p2, q) || Leq(p, a.LhsOf(q)) ||
              Leq(p, a.RhsOf(q));
        break;
    }
  }
  memo_.emplace(key, res);
  return res;
}

namespace {

// One member of the C(p, q) call list: a recursive subproblem.
struct Member {
  ExprId p;
  ExprId q;
};

// The call list of (p, q) plus the connective combining its members:
// AND lists fail fast on false, OR lists succeed fast on true.
struct CallList {
  Member members[4];
  uint8_t count = 0;
  bool is_and = true;
  bool leaf_value = false;  // used when count == 0 (case 1)
};

CallList MembersOf(const ExprArena& a, ExprId p, ExprId q) {
  CallList c;
  if (a.KindOf(p) == ExprKind::kSum) {
    c.is_and = true;
    c.members[c.count++] = {a.LhsOf(p), q};
    c.members[c.count++] = {a.RhsOf(p), q};
    return c;
  }
  if (a.KindOf(q) == ExprKind::kProduct &&
      a.KindOf(p) != ExprKind::kProduct) {
    c.is_and = true;
    c.members[c.count++] = {p, a.LhsOf(q)};
    c.members[c.count++] = {p, a.RhsOf(q)};
    return c;
  }
  if (a.KindOf(p) == ExprKind::kAttr) {
    switch (a.KindOf(q)) {
      case ExprKind::kAttr:
        c.leaf_value = (p == q);
        return c;
      case ExprKind::kSum:
        c.is_and = false;
        c.members[c.count++] = {p, a.LhsOf(q)};
        c.members[c.count++] = {p, a.RhsOf(q)};
        return c;
      case ExprKind::kProduct:
        c.is_and = true;
        c.members[c.count++] = {p, a.LhsOf(q)};
        c.members[c.count++] = {p, a.RhsOf(q)};
        return c;
    }
  }
  // p is a product.
  ExprId p1 = a.LhsOf(p), p2 = a.RhsOf(p);
  switch (a.KindOf(q)) {
    case ExprKind::kAttr:
      c.is_and = false;
      c.members[c.count++] = {p1, q};
      c.members[c.count++] = {p2, q};
      return c;
    case ExprKind::kProduct:
      c.is_and = true;
      c.members[c.count++] = {p, a.LhsOf(q)};
      c.members[c.count++] = {p, a.RhsOf(q)};
      return c;
    case ExprKind::kSum:
      c.is_and = false;
      c.members[c.count++] = {p1, q};
      c.members[c.count++] = {p2, q};
      c.members[c.count++] = {p, a.LhsOf(q)};
      c.members[c.count++] = {p, a.RhsOf(q)};
      return c;
  }
  return c;  // unreachable
}

struct Frame {
  ExprId p;
  ExprId q;
  uint8_t next_member;  // index of the member to evaluate next
};

}  // namespace

bool WhitmanIterative::Leq(ExprId p, ExprId q,
                           WhitmanIterativeStats* stats) const {
  const ExprArena& a = *arena_;
  std::vector<Frame> stack;
  stack.push_back({p, q, 0});
  std::size_t peak = 1, calls = 1;
  // `ret` carries the value of the child call that just completed;
  // meaningful only when have_return is true.
  bool ret = false;
  bool have_return = false;

  while (!stack.empty()) {
    Frame& f = stack.back();
    CallList c = MembersOf(a, f.p, f.q);
    if (c.count == 0) {
      // Case 1 leaf: A <= A'.
      ret = c.leaf_value;
      have_return = true;
      stack.pop_back();
      continue;
    }
    if (have_return) {
      // A child of this frame just returned `ret`.
      bool short_circuit = c.is_and ? !ret : ret;
      if (short_circuit || f.next_member >= c.count) {
        // Either the connective is decided, or every member has been
        // evaluated — in that case the last child's value IS the frame's
        // value (AND with all-true so far, OR with all-false so far).
        stack.pop_back();
        continue;  // `ret` propagates unchanged, have_return stays true
      }
      have_return = false;  // descend into the next member
    }
    // Push the next member (first visit has next_member == 0 < count).
    Member m = c.members[f.next_member++];
    stack.push_back({m.p, m.q, 0});
    ++calls;
    peak = std::max(peak, stack.size());
  }
  if (stats != nullptr) {
    stats->peak_stack_depth = std::max(stats->peak_stack_depth, peak);
    stats->total_calls += calls;
  }
  assert(have_return);
  return ret;
}

namespace {
// Deadline/cancel poll period for the governed deciders, in calls/frames.
constexpr uint64_t kWhitmanCheckStride = 1024;
}  // namespace

// Governed twin of Leq over the same CallList dispatch. Recursion depth
// is the |p|+|q| descent, so CheckDepth bounds the native stack; the memo
// only ever receives fully decided subproblems, so an aborted query
// leaves it sound and the decider reusable.
Status WhitmanMemo::LeqImpl(ExprId p, ExprId q, uint64_t depth,
                            const ExecContext& ctx, uint64_t* calls,
                            bool* out) {
  uint64_t key = PairKey(p, q);
  if (auto it = memo_.find(key); it != memo_.end()) {
    *out = it->second;
    return Status::OK();
  }
  PSEM_RETURN_IF_ERROR(ctx.CheckDepth(depth));
  if ((++*calls % kWhitmanCheckStride) == 0) PSEM_RETURN_IF_ERROR(ctx.Check());

  CallList c = MembersOf(*arena_, p, q);
  bool res;
  if (c.count == 0) {
    res = c.leaf_value;
  } else {
    res = c.is_and;  // identity element of the connective
    for (uint8_t i = 0; i < c.count; ++i) {
      bool sub = false;
      PSEM_RETURN_IF_ERROR(
          LeqImpl(c.members[i].p, c.members[i].q, depth + 1, ctx, calls, &sub));
      res = sub;
      if (c.is_and ? !sub : sub) break;  // connective decided
    }
  }
  memo_.emplace(key, res);
  *out = res;
  return Status::OK();
}

Result<bool> WhitmanMemo::LeqChecked(ExprId p, ExprId q,
                                     const ExecContext& ctx) {
  if (ctx.unbounded()) return Leq(p, q);
  uint64_t calls = 0;
  bool out = false;
  PSEM_RETURN_IF_ERROR(LeqImpl(p, q, 1, ctx, &calls, &out));
  return out;
}

Result<bool> WhitmanMemo::EqChecked(ExprId p, ExprId q,
                                    const ExecContext& ctx) {
  PSEM_ASSIGN_OR_RETURN(bool fwd, LeqChecked(p, q, ctx));
  if (!fwd) return false;
  return LeqChecked(q, p, ctx);
}

Result<bool> WhitmanIterative::LeqChecked(ExprId p, ExprId q,
                                          const ExecContext& ctx,
                                          WhitmanIterativeStats* stats) const {
  if (ctx.unbounded()) return Leq(p, q, stats);
  const ExprArena& a = *arena_;
  std::vector<Frame> stack;
  stack.push_back({p, q, 0});
  std::size_t peak = 1, calls = 1;
  bool ret = false;
  bool have_return = false;

  while (!stack.empty()) {
    Frame& f = stack.back();
    CallList c = MembersOf(a, f.p, f.q);
    if (c.count == 0) {
      ret = c.leaf_value;
      have_return = true;
      stack.pop_back();
      continue;
    }
    if (have_return) {
      bool short_circuit = c.is_and ? !ret : ret;
      if (short_circuit || f.next_member >= c.count) {
        stack.pop_back();
        continue;
      }
      have_return = false;
    }
    Member m = c.members[f.next_member++];
    stack.push_back({m.p, m.q, 0});
    ++calls;
    peak = std::max(peak, stack.size());
    PSEM_RETURN_IF_ERROR(ctx.CheckDepth(stack.size()));
    if ((calls % kWhitmanCheckStride) == 0) PSEM_RETURN_IF_ERROR(ctx.Check());
  }
  if (stats != nullptr) {
    stats->peak_stack_depth = std::max(stats->peak_stack_depth, peak);
    stats->total_calls += calls;
  }
  assert(have_return);
  return ret;
}

Result<bool> WhitmanIterative::EqChecked(ExprId p, ExprId q,
                                         const ExecContext& ctx,
                                         WhitmanIterativeStats* stats) const {
  PSEM_ASSIGN_OR_RETURN(bool fwd, LeqChecked(p, q, ctx, stats));
  if (!fwd) return false;
  return LeqChecked(q, p, ctx, stats);
}

}  // namespace psem
