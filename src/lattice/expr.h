// Partition expressions (Section 3.1 of the paper): the finite expressions
// W(U) built from attributes with the two uninterpreted binary operators
// `*` (partition product / lattice meet) and `+` (partition sum / lattice
// join). Expressions are hash-consed into an ExprArena so that structural
// equality is id equality and subexpression enumeration is cheap — this is
// what makes Algorithm ALG's vertex set V (Section 5.2) a dense index
// space.

#ifndef PSEM_LATTICE_EXPR_H_
#define PSEM_LATTICE_EXPR_H_

#include <cstdint>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/interner.h"
#include "util/status.h"

namespace psem {

/// Dense id of an expression inside an ExprArena.
using ExprId = uint32_t;

/// Sentinel "no expression".
inline constexpr ExprId kNoExpr = UINT32_MAX;

/// Dense id of an attribute name inside an ExprArena.
using AttrId = uint32_t;

/// Node kind of a partition expression.
enum class ExprKind : uint8_t {
  kAttr,     ///< A generator: an attribute of the universe.
  kProduct,  ///< e * e'   (partition product, lattice meet).
  kSum,      ///< e + e'   (partition sum, lattice join).
};

/// A partition dependency (Definition 3) or its inequality form.
/// `lhs = rhs` when is_equation, else `lhs <= rhs` — the latter abbreviates
/// the equation lhs = lhs * rhs via the natural partial order (Section 2.2).
struct Pd {
  ExprId lhs = kNoExpr;
  ExprId rhs = kNoExpr;
  bool is_equation = true;

  static Pd Eq(ExprId l, ExprId r) { return Pd{l, r, true}; }
  static Pd Leq(ExprId l, ExprId r) { return Pd{l, r, false}; }

  bool operator==(const Pd&) const = default;
};

/// Arena of hash-consed partition expressions over a private attribute
/// interner. Structurally identical expressions receive the same ExprId.
///
/// Thread-compatibility: const access is safe concurrently; construction
/// methods are not synchronized.
class ExprArena {
 public:
  ExprArena() = default;

  // --- construction -------------------------------------------------------

  /// Interns an attribute name and returns the attribute expression for it.
  ExprId Attr(std::string_view name);

  /// The attribute expression for an already-interned attribute id.
  ExprId AttrExpr(AttrId attr);

  /// (l * r). No algebraic normalization is performed: the lattice axioms
  /// are the business of the deciders, not of the syntax (Section 3.1).
  ExprId Product(ExprId l, ExprId r);

  /// (l + r).
  ExprId Sum(ExprId l, ExprId r);

  /// Left-nested product of one or more expressions.
  ExprId ProductOf(std::span<const ExprId> parts);

  /// Left-nested sum of one or more expressions.
  ExprId SumOf(std::span<const ExprId> parts);

  /// Left-nested product of attribute names; this is the meaning the paper
  /// gives to a relation scheme R[A1...Ak] and to an attribute set used
  /// inside a PD (Section 3.2).
  ExprId ProductOfAttrs(std::span<const std::string> names);

  // --- parsing / printing -------------------------------------------------

  /// Parses an expression. Grammar (standard precedence, `*` binds tighter):
  ///   expr   := term ('+' term)*
  ///   term   := factor ('*' factor)*
  ///   factor := IDENT | '(' expr ')'
  Result<ExprId> Parse(std::string_view text);

  /// Parser guard for untrusted input: parenthesis-nesting deeper than
  /// this is rejected with kInvalidArgument instead of recursing (a
  /// million-paren input must return a Status, not smash the stack).
  static constexpr std::size_t kMaxParseDepth = 2000;

  /// Parses a PD: "e = e'" or "e <= e'".
  Result<Pd> ParsePd(std::string_view text);

  /// Minimal-parentheses rendering (products print without parens inside
  /// sums).
  std::string ToString(ExprId id) const;

  /// Renders a Pd using the same expression syntax.
  std::string ToString(const Pd& pd) const;

  // --- accessors -----------------------------------------------------------

  std::size_t size() const { return nodes_.size(); }
  ExprKind KindOf(ExprId id) const { return nodes_[id].kind; }
  bool IsAttr(ExprId id) const { return nodes_[id].kind == ExprKind::kAttr; }
  /// Attribute id of an attribute node. Precondition: IsAttr(id).
  AttrId AttrOf(ExprId id) const { return nodes_[id].attr; }
  /// Left child. Precondition: !IsAttr(id).
  ExprId LhsOf(ExprId id) const { return nodes_[id].lhs; }
  /// Right child. Precondition: !IsAttr(id).
  ExprId RhsOf(ExprId id) const { return nodes_[id].rhs; }

  /// Complexity in the sense of Theorem 8's proof: the number of operator
  /// instances in the expression tree.
  uint32_t Complexity(ExprId id) const { return nodes_[id].complexity; }

  /// Number of nodes in the expression tree (attrs + operators).
  uint32_t TreeSize(ExprId id) const { return 2 * nodes_[id].complexity + 1; }

  const StringInterner& attr_names() const { return attr_names_; }
  std::size_t num_attrs() const { return attr_names_.size(); }
  const std::string& AttrName(AttrId a) const { return attr_names_.NameOf(a); }

  /// Appends to `out` every distinct subexpression of `id` (including `id`
  /// itself) that is not already present in `seen`; updates `seen`.
  void CollectSubexprs(ExprId id, std::set<ExprId>* seen,
                       std::vector<ExprId>* out) const;

  /// The set of attribute ids occurring in `id`.
  void CollectAttrs(ExprId id, std::set<AttrId>* out) const;

 private:
  struct Node {
    ExprKind kind;
    AttrId attr;  // valid iff kind == kAttr
    ExprId lhs;
    ExprId rhs;
    uint32_t complexity;
  };

  ExprId InternNode(ExprKind kind, AttrId attr, ExprId l, ExprId r);
  void ToStringRec(ExprId id, bool parenthesize_sum, std::string* out) const;

  std::vector<Node> nodes_;
  // key: kind in top 2 bits semantics folded via tuple hash below.
  struct NodeKey {
    ExprKind kind;
    uint32_t a;
    uint32_t b;
    bool operator==(const NodeKey&) const = default;
  };
  struct NodeKeyHash {
    std::size_t operator()(const NodeKey& k) const {
      uint64_t h = static_cast<uint64_t>(k.kind);
      h = h * 0x9e3779b97f4a7c15ull + k.a;
      h = h * 0x9e3779b97f4a7c15ull + k.b;
      h ^= h >> 29;
      return static_cast<std::size_t>(h);
    }
  };
  std::unordered_map<NodeKey, ExprId, NodeKeyHash> intern_;
  StringInterner attr_names_;
  std::vector<ExprId> attr_expr_;  // attr id -> expr id of its leaf node
};

/// The dual of an expression: swap every * with + (and vice versa). The
/// duality principle of lattice theory — used throughout the paper, e.g.
/// to move between the two FPD spellings X = X*Y and Y = Y+X — says p <=
/// q is a lattice identity iff Dual(q) <= Dual(p) is.
ExprId DualExpr(ExprArena* arena, ExprId e);

/// Dual of a PD: sides dualized; for the <= form the order flips.
Pd DualPd(ExprArena* arena, const Pd& pd);

}  // namespace psem

#endif  // PSEM_LATTICE_EXPR_H_
