// Structural analysis of finite lattices: the standard invariants used
// when studying L(I) — atoms, join/meet-irreducible elements, height,
// width (largest antichain, via Mirsky/greedy chain covers), complement
// pairs, and whether the lattice is complemented/atomistic. These feed
// the Figure 1/2 experiments (e.g. Pi_n is complemented and atomistic;
// L(I) of Figure 1 is neither distributive nor complemented) and give
// library users a vocabulary for the lattices the semantics produces.

#ifndef PSEM_LATTICE_LATTICE_ANALYSIS_H_
#define PSEM_LATTICE_LATTICE_ANALYSIS_H_

#include <string>
#include <vector>

#include "lattice/finite_lattice.h"

namespace psem {

/// Elements covering the bottom.
std::vector<LatticeElem> Atoms(const FiniteLattice& l);

/// Elements x with exactly one lower cover — equivalently, x != bottom
/// and x is not the join of two strictly smaller elements.
std::vector<LatticeElem> JoinIrreducibles(const FiniteLattice& l);

/// Dual of JoinIrreducibles.
std::vector<LatticeElem> MeetIrreducibles(const FiniteLattice& l);

/// Length of a longest chain from bottom to top (number of covers).
std::size_t Height(const FiniteLattice& l);

/// Size of a largest antichain, computed exactly via Dilworth's theorem:
/// width = minimum chain cover = n - maximum matching in the bipartite
/// graph of the strict order (Kuhn's algorithm; fine for the small
/// lattices this library builds).
std::size_t Width(const FiniteLattice& l);

/// All complements of x: elements y with x*y = bottom and x+y = top.
std::vector<LatticeElem> ComplementsOf(const FiniteLattice& l, LatticeElem x);

/// Every element has at least one complement.
bool IsComplemented(const FiniteLattice& l);

/// Every element is a join of atoms.
bool IsAtomistic(const FiniteLattice& l);

/// One-line structural summary ("n=15 height=3 width=7 atoms=7
/// distributive=no modular=no complemented=yes").
std::string Summarize(const FiniteLattice& l);

}  // namespace psem

#endif  // PSEM_LATTICE_LATTICE_ANALYSIS_H_
