#include "lattice/congruence.h"

#include <unordered_map>

namespace psem {

void CongruenceClosure::Register(ExprId e) {
  while (classes_.size() <= e) {
    classes_.AddElement();
    is_registered_.push_back(false);
  }
  if (is_registered_[e]) return;
  is_registered_[e] = true;
  registered_.push_back(e);
  if (!arena_->IsAttr(e)) {
    Register(arena_->LhsOf(e));
    Register(arena_->RhsOf(e));
  }
}

void CongruenceClosure::Merge(ExprId e1, ExprId e2) {
  classes_.Union(e1, e2);
}

bool CongruenceClosure::PropagateOnce() {
  // Signature: (kind, class(lhs), class(rhs)) -> representative node.
  struct Sig {
    uint8_t kind;
    uint32_t l, r;
    bool operator==(const Sig&) const = default;
  };
  struct SigHash {
    std::size_t operator()(const Sig& s) const {
      uint64_t h = s.kind;
      h = h * 0x9e3779b97f4a7c15ull + s.l;
      h = h * 0x9e3779b97f4a7c15ull + s.r;
      return static_cast<std::size_t>(h ^ (h >> 31));
    }
  };
  std::unordered_map<Sig, ExprId, SigHash> seen;
  bool merged = false;
  for (ExprId e : registered_) {
    if (arena_->IsAttr(e)) continue;
    Sig sig{static_cast<uint8_t>(arena_->KindOf(e)),
            classes_.Find(arena_->LhsOf(e)),
            classes_.Find(arena_->RhsOf(e))};
    auto [it, inserted] = seen.emplace(sig, e);
    if (!inserted && !classes_.Connected(it->second, e)) {
      Merge(it->second, e);
      merged = true;
    }
  }
  return merged;
}

void CongruenceClosure::AddEquation(ExprId e1, ExprId e2) {
  Register(e1);
  Register(e2);
  Merge(e1, e2);
  while (PropagateOnce()) {
  }
}

bool CongruenceClosure::Equivalent(ExprId e1, ExprId e2) {
  Register(e1);
  Register(e2);
  // Newly registered nodes may become congruent to existing ones.
  while (PropagateOnce()) {
  }
  return classes_.Connected(e1, e2);
}

std::size_t CongruenceClosure::NumClasses() {
  std::size_t classes = 0;
  std::vector<bool> seen(classes_.size(), false);
  for (ExprId e : registered_) {
    uint32_t root = classes_.Find(e);
    if (!seen[root]) {
      seen[root] = true;
      ++classes;
    }
  }
  return classes;
}

}  // namespace psem
