// Congruence closure over partition expressions: the relation <-->_E of
// Section 5.1 (step III of the paper's inference system), which is the
// machinery Kozen [23] uses for the uniform word problem for finitely
// presented algebras. Two expressions are <-->_E-equivalent iff one
// rewrites to the other by E-substitutions alone — no lattice axioms.
// The paper's =_E is the join of <-->_E with <=_id; this module provides
// the pure congruence piece, which is strictly weaker (A*B <-->_E B*A
// does NOT hold without an equation) and serves as a lower bound oracle
// in tests: p <-->_E q implies E |= p = q, never conversely.
//
// Implementation: classic congruence closure on the expression DAG —
// union-find over nodes, with upward propagation (congruent parents
// merge when their children become equivalent).

#ifndef PSEM_LATTICE_CONGRUENCE_H_
#define PSEM_LATTICE_CONGRUENCE_H_

#include <vector>

#include "lattice/expr.h"
#include "util/union_find.h"

namespace psem {

/// Congruence closure over an ExprArena's nodes. Equations are added
/// incrementally; queries are amortized near-linear.
class CongruenceClosure {
 public:
  /// Tracks every node currently in `arena` and any added later (nodes
  /// are registered lazily on first touch).
  explicit CongruenceClosure(const ExprArena* arena) : arena_(arena) {}

  /// Asserts e1 = e2 and closes under congruence: if x ~ x' and y ~ y'
  /// then x*y ~ x'*y' and x+y ~ x'+y' (for nodes present in the arena).
  void AddEquation(ExprId e1, ExprId e2);

  /// True iff the expressions are equal under the asserted equations and
  /// congruence alone (no lattice axioms).
  bool Equivalent(ExprId e1, ExprId e2);

  /// Number of equivalence classes among registered nodes.
  std::size_t NumClasses();

 private:
  void Register(ExprId e);
  void Merge(ExprId e1, ExprId e2);
  // Re-scan registered parents for congruent pairs; returns true if any
  // merge happened.
  bool PropagateOnce();

  const ExprArena* arena_;
  UnionFind classes_;
  std::vector<ExprId> registered_;   // node ids registered so far
  std::vector<bool> is_registered_;  // indexed by ExprId
};

}  // namespace psem

#endif  // PSEM_LATTICE_CONGRUENCE_H_
