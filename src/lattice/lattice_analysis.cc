#include "lattice/lattice_analysis.h"

#include <algorithm>
#include <functional>

namespace psem {

std::vector<LatticeElem> Atoms(const FiniteLattice& l) {
  return l.CoversOf(l.Bottom());
}

std::vector<LatticeElem> JoinIrreducibles(const FiniteLattice& l) {
  std::vector<LatticeElem> out;
  LatticeElem bot = l.Bottom();
  for (LatticeElem x = 0; x < l.size(); ++x) {
    if (x == bot) continue;
    bool reducible = false;
    for (LatticeElem a = 0; a < l.size() && !reducible; ++a) {
      if (a == x || !l.Leq(a, x)) continue;
      for (LatticeElem b = 0; b < l.size(); ++b) {
        if (b == x || !l.Leq(b, x)) continue;
        if (l.Join(a, b) == x) {
          reducible = true;
          break;
        }
      }
    }
    if (!reducible) out.push_back(x);
  }
  return out;
}

std::vector<LatticeElem> MeetIrreducibles(const FiniteLattice& l) {
  std::vector<LatticeElem> out;
  LatticeElem top = l.Top();
  for (LatticeElem x = 0; x < l.size(); ++x) {
    if (x == top) continue;
    bool reducible = false;
    for (LatticeElem a = 0; a < l.size() && !reducible; ++a) {
      if (a == x || !l.Leq(x, a)) continue;
      for (LatticeElem b = 0; b < l.size(); ++b) {
        if (b == x || !l.Leq(x, b)) continue;
        if (l.Meet(a, b) == x) {
          reducible = true;
          break;
        }
      }
    }
    if (!reducible) out.push_back(x);
  }
  return out;
}

std::size_t Height(const FiniteLattice& l) {
  // Longest chain via DP over the order (heights of lower covers).
  const std::size_t n = l.size();
  std::vector<std::size_t> h(n, 0);
  // Process in a linear extension: sort by number of elements below.
  std::vector<LatticeElem> order(n);
  for (LatticeElem i = 0; i < n; ++i) order[i] = i;
  std::vector<std::size_t> below(n, 0);
  for (LatticeElem a = 0; a < n; ++a) {
    for (LatticeElem b = 0; b < n; ++b) {
      if (b != a && l.Leq(b, a)) ++below[a];
    }
  }
  std::sort(order.begin(), order.end(), [&](LatticeElem a, LatticeElem b) {
    return below[a] < below[b];
  });
  std::size_t best = 0;
  for (LatticeElem x : order) {
    for (LatticeElem y = 0; y < n; ++y) {
      if (y != x && l.Leq(y, x)) h[x] = std::max(h[x], h[y] + 1);
    }
    best = std::max(best, h[x]);
  }
  return best;
}

std::size_t Width(const FiniteLattice& l) {
  // Dilworth via Kuhn's bipartite matching on the strict order.
  const std::size_t n = l.size();
  std::vector<std::vector<LatticeElem>> succ(n);
  for (LatticeElem a = 0; a < n; ++a) {
    for (LatticeElem b = 0; b < n; ++b) {
      if (a != b && l.Leq(a, b)) succ[a].push_back(b);
    }
  }
  std::vector<int> match_right(n, -1);
  std::vector<bool> used;
  std::function<bool(LatticeElem)> try_kuhn = [&](LatticeElem a) -> bool {
    for (LatticeElem b : succ[a]) {
      if (used[b]) continue;
      used[b] = true;
      if (match_right[b] < 0 ||
          try_kuhn(static_cast<LatticeElem>(match_right[b]))) {
        match_right[b] = static_cast<int>(a);
        return true;
      }
    }
    return false;
  };
  std::size_t matching = 0;
  for (LatticeElem a = 0; a < n; ++a) {
    used.assign(n, false);
    if (try_kuhn(a)) ++matching;
  }
  return n - matching;
}

std::vector<LatticeElem> ComplementsOf(const FiniteLattice& l,
                                       LatticeElem x) {
  std::vector<LatticeElem> out;
  LatticeElem bot = l.Bottom(), top = l.Top();
  for (LatticeElem y = 0; y < l.size(); ++y) {
    if (l.Meet(x, y) == bot && l.Join(x, y) == top) out.push_back(y);
  }
  return out;
}

bool IsComplemented(const FiniteLattice& l) {
  for (LatticeElem x = 0; x < l.size(); ++x) {
    if (ComplementsOf(l, x).empty()) return false;
  }
  return true;
}

bool IsAtomistic(const FiniteLattice& l) {
  std::vector<LatticeElem> atoms = Atoms(l);
  for (LatticeElem x = 0; x < l.size(); ++x) {
    LatticeElem join = l.Bottom();
    for (LatticeElem a : atoms) {
      if (l.Leq(a, x)) join = l.Join(join, a);
    }
    if (join != x) return false;
  }
  return true;
}

std::string Summarize(const FiniteLattice& l) {
  std::string out = "n=" + std::to_string(l.size());
  out += " height=" + std::to_string(Height(l));
  out += " width=" + std::to_string(Width(l));
  out += " atoms=" + std::to_string(Atoms(l).size());
  out += " join_irr=" + std::to_string(JoinIrreducibles(l).size());
  out += std::string(" distributive=") + (l.IsDistributive() ? "yes" : "no");
  out += std::string(" modular=") + (l.IsModular() ? "yes" : "no");
  out += std::string(" complemented=") + (IsComplemented(l) ? "yes" : "no");
  out += std::string(" atomistic=") + (IsAtomistic(l) ? "yes" : "no");
  return out;
}

}  // namespace psem
