// Identity-preserving expression simplification. Uses the Whitman
// decider (<=_id, Lemma 8.2) to shrink partition expressions without
// changing their value in ANY lattice: absorbed operands are dropped
// (A*(A+B) -> A), redundant factors and summands are removed (a factor y
// of a product is redundant when another factor x has x <=_id y; dually
// for sums), and whole nodes collapse to a child when <=_id-equivalent.
// The result is =_id-equivalent to the input and never larger.

#ifndef PSEM_LATTICE_SIMPLIFY_H_
#define PSEM_LATTICE_SIMPLIFY_H_

#include "lattice/expr.h"
#include "lattice/whitman.h"

namespace psem {

/// Simplifies `e` within `arena` (new nodes may be interned). The return
/// value satisfies: Eq_id(result, e) and TreeSize(result) <= TreeSize(e).
ExprId SimplifyExpr(ExprArena* arena, ExprId e);

/// Simplifies both sides of a PD.
Pd SimplifyPd(ExprArena* arena, const Pd& pd);

}  // namespace psem

#endif  // PSEM_LATTICE_SIMPLIFY_H_
