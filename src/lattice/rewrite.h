// The rewrite system RR of Section 5.2's completeness proof (Lemma 9.1):
//
//   1. x + x  <--  x            4. x  <--  x * x
//   2. x * y  <--  x            5. x  <--  x + y
//   3. y * x  <--  x            6. x  <--  y + x
//   7. z <--> v  for each equation z = v in E
//
// read left-to-right as "p may be rewritten to q" in the direction that
// witnesses p <=_E q: Lemma 9.1 shows p <=_E q iff p rewrites to q by a
// finite RR sequence. This module enumerates single-step rewrites and
// searches (bounded BFS) for a whole sequence — the paper's proof object,
// made executable. Used by tests to corroborate Lemma 9.1 against
// Algorithm ALG on small instances, and by the CLI to show rewrite
// traces.

#ifndef PSEM_LATTICE_REWRITE_H_
#define PSEM_LATTICE_REWRITE_H_

#include <string>
#include <vector>

#include "lattice/expr.h"
#include "util/status.h"

namespace psem {

/// One rewrite step: the expression obtained and a description of the
/// rule applied.
struct RewriteStep {
  ExprId expr;
  std::string rule;  ///< e.g. "absorb-sum", "E2 ->", "pad-sum".
};

/// A witnessing sequence s_0 = from, ..., s_n = to.
struct RewriteSequence {
  std::vector<RewriteStep> steps;  ///< steps[0].expr == from (rule "start").
};

/// All expressions reachable from `e` in ONE rewrite step that decreases
/// or preserves <=_E-direction (rules applied at every subterm position).
/// `max_size` bounds the tree size of produced expressions (rules 5 and 6
/// can grow expressions by an arbitrary y; growth is instantiated only
/// with subexpressions already interned in the arena among `pad_pool`).
std::vector<RewriteStep> OneStepRewrites(ExprArena* arena, ExprId e,
                                         const std::vector<Pd>& equations,
                                         const std::vector<ExprId>& pad_pool,
                                         uint32_t max_size);

/// Bounded BFS for a rewrite sequence from `from` to `to` witnessing
/// from <=_E to (Lemma 9.1). `pad_pool` supplies the y's for rules 5/6
/// (the lemma's proof only ever needs subexpressions of E, from, to).
/// Returns NotFound when no sequence exists within the bounds — which for
/// small instances and generous bounds matches non-implication.
Result<RewriteSequence> FindRewriteSequence(ExprArena* arena, ExprId from,
                                            ExprId to,
                                            const std::vector<Pd>& equations,
                                            uint32_t max_size = 24,
                                            std::size_t max_states = 200000);

/// Renders a sequence as "e0 --[rule]--> e1 --> ...".
std::string RenderRewriteSequence(const ExprArena& arena,
                                  const RewriteSequence& seq);

}  // namespace psem

#endif  // PSEM_LATTICE_REWRITE_H_
