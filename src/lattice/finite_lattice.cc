#include "lattice/finite_lattice.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <set>

namespace psem {

FiniteLattice::FiniteLattice(std::vector<std::vector<LatticeElem>> meet,
                             std::vector<std::vector<LatticeElem>> join,
                             std::vector<std::string> names)
    : meet_(std::move(meet)), join_(std::move(join)), names_(std::move(names)) {
  assert(meet_.size() == join_.size());
  if (names_.empty()) {
    names_.reserve(meet_.size());
    for (std::size_t i = 0; i < meet_.size(); ++i) {
      names_.push_back("e" + std::to_string(i));
    }
  }
  assert(names_.size() == meet_.size());
}

Status FiniteLattice::ValidateAxioms() const {
  const std::size_t n = size();
  auto fail = [&](const char* law, LatticeElem x, LatticeElem y,
                  LatticeElem z) {
    return Status::FailedPrecondition(
        std::string(law) + " fails at (" + names_[x] + "," + names_[y] + "," +
        names_[z] + ")");
  };
  for (LatticeElem x = 0; x < n; ++x) {
    if (meet_[x].size() != n || join_[x].size() != n) {
      return Status::InvalidArgument("ragged operation table");
    }
    for (LatticeElem y = 0; y < n; ++y) {
      if (meet_[x][y] >= n || join_[x][y] >= n) {
        return Status::InvalidArgument("table entry out of range");
      }
    }
  }
  for (LatticeElem x = 0; x < n; ++x) {
    if (meet_[x][x] != x) return fail("idempotence(*)", x, x, x);
    if (join_[x][x] != x) return fail("idempotence(+)", x, x, x);
    for (LatticeElem y = 0; y < n; ++y) {
      if (meet_[x][y] != meet_[y][x]) return fail("commutativity(*)", x, y, y);
      if (join_[x][y] != join_[y][x]) return fail("commutativity(+)", x, y, y);
      if (join_[x][meet_[x][y]] != x) return fail("absorption(+*)", x, y, y);
      if (meet_[x][join_[x][y]] != x) return fail("absorption(*+)", x, y, y);
      for (LatticeElem z = 0; z < n; ++z) {
        if (meet_[meet_[x][y]][z] != meet_[x][meet_[y][z]]) {
          return fail("associativity(*)", x, y, z);
        }
        if (join_[join_[x][y]][z] != join_[x][join_[y][z]]) {
          return fail("associativity(+)", x, y, z);
        }
      }
    }
  }
  return Status::OK();
}

LatticeElem FiniteLattice::Bottom() const {
  LatticeElem bot = 0;
  for (LatticeElem i = 1; i < size(); ++i) bot = Meet(bot, i);
  return bot;
}

LatticeElem FiniteLattice::Top() const {
  LatticeElem top = 0;
  for (LatticeElem i = 1; i < size(); ++i) top = Join(top, i);
  return top;
}

bool FiniteLattice::IsDistributive() const {
  const std::size_t n = size();
  for (LatticeElem a = 0; a < n; ++a) {
    for (LatticeElem b = 0; b < n; ++b) {
      for (LatticeElem c = 0; c < n; ++c) {
        if (Meet(a, Join(b, c)) != Join(Meet(a, b), Meet(a, c))) return false;
      }
    }
  }
  return true;
}

bool FiniteLattice::IsModular() const {
  const std::size_t n = size();
  for (LatticeElem a = 0; a < n; ++a) {
    for (LatticeElem c = 0; c < n; ++c) {
      if (!Leq(a, c)) continue;
      for (LatticeElem b = 0; b < n; ++b) {
        if (Join(a, Meet(b, c)) != Meet(Join(a, b), c)) return false;
      }
    }
  }
  return true;
}

std::vector<LatticeElem> FiniteLattice::CoversOf(LatticeElem a) const {
  std::vector<LatticeElem> covers;
  for (LatticeElem b = 0; b < size(); ++b) {
    if (b == a || !Leq(a, b)) continue;
    bool immediate = true;
    for (LatticeElem c = 0; c < size(); ++c) {
      if (c != a && c != b && Leq(a, c) && Leq(c, b)) {
        immediate = false;
        break;
      }
    }
    if (immediate) covers.push_back(b);
  }
  return covers;
}

Result<LatticeElem> FiniteLattice::Eval(
    const ExprArena& arena, ExprId e,
    const std::vector<LatticeElem>& assignment) const {
  switch (arena.KindOf(e)) {
    case ExprKind::kAttr: {
      AttrId a = arena.AttrOf(e);
      if (a >= assignment.size() || assignment[a] == kNoElem) {
        return Status::NotFound("attribute '" + arena.AttrName(a) +
                                "' has no lattice constant assigned");
      }
      return assignment[a];
    }
    case ExprKind::kProduct: {
      PSEM_ASSIGN_OR_RETURN(LatticeElem l,
                            Eval(arena, arena.LhsOf(e), assignment));
      PSEM_ASSIGN_OR_RETURN(LatticeElem r,
                            Eval(arena, arena.RhsOf(e), assignment));
      return Meet(l, r);
    }
    case ExprKind::kSum: {
      PSEM_ASSIGN_OR_RETURN(LatticeElem l,
                            Eval(arena, arena.LhsOf(e), assignment));
      PSEM_ASSIGN_OR_RETURN(LatticeElem r,
                            Eval(arena, arena.RhsOf(e), assignment));
      return Join(l, r);
    }
  }
  return Status::Internal("bad expression kind");
}

Result<bool> FiniteLattice::Satisfies(
    const ExprArena& arena, const Pd& pd,
    const std::vector<LatticeElem>& assignment) const {
  PSEM_ASSIGN_OR_RETURN(LatticeElem l, Eval(arena, pd.lhs, assignment));
  PSEM_ASSIGN_OR_RETURN(LatticeElem r, Eval(arena, pd.rhs, assignment));
  return pd.is_equation ? (l == r) : Leq(l, r);
}

namespace {

// Invariant fingerprint of an element used to prune isomorphism search:
// (#elements below, #elements above, #covers, #co-covers).
struct ElemSignature {
  uint32_t below = 0, above = 0, covers = 0, cocovers = 0;
  bool operator==(const ElemSignature&) const = default;
  bool operator<(const ElemSignature& o) const {
    return std::tie(below, above, covers, cocovers) <
           std::tie(o.below, o.above, o.covers, o.cocovers);
  }
};

std::vector<ElemSignature> Signatures(const FiniteLattice& l) {
  const std::size_t n = l.size();
  std::vector<ElemSignature> sig(n);
  for (LatticeElem a = 0; a < n; ++a) {
    for (LatticeElem b = 0; b < n; ++b) {
      if (a == b) continue;
      if (l.Leq(b, a)) ++sig[a].below;
      if (l.Leq(a, b)) ++sig[a].above;
    }
    sig[a].covers = static_cast<uint32_t>(l.CoversOf(a).size());
  }
  for (LatticeElem a = 0; a < n; ++a) {
    for (LatticeElem b : l.CoversOf(a)) ++sig[b].cocovers;
  }
  return sig;
}

bool ExtendIsomorphism(const FiniteLattice& x, const FiniteLattice& y,
                       const std::vector<ElemSignature>& sx,
                       const std::vector<ElemSignature>& sy,
                       std::vector<LatticeElem>* map,
                       std::vector<bool>* used, LatticeElem next) {
  const std::size_t n = x.size();
  if (next == n) return true;
  for (LatticeElem cand = 0; cand < n; ++cand) {
    if ((*used)[cand] || !(sx[next] == sy[cand])) continue;
    bool ok = true;
    for (LatticeElem prev = 0; prev < next && ok; ++prev) {
      LatticeElem m = x.Meet(next, prev);
      LatticeElem j = x.Join(next, prev);
      // Both operands mapped only when their results are among mapped
      // elements; check the homomorphism condition where defined.
      LatticeElem pm = (*map)[prev];
      if (m <= next && (*map)[m] != FiniteLattice::kNoElem) {
        if (y.Meet(cand, pm) != (*map)[m]) ok = false;
      } else if (m > next) {
        // result not yet mapped; defer (checked when m gets mapped).
      }
      if (ok && j <= next && (*map)[j] != FiniteLattice::kNoElem) {
        if (y.Join(cand, pm) != (*map)[j]) ok = false;
      }
    }
    if (!ok) continue;
    (*map)[next] = cand;
    (*used)[cand] = true;
    // Re-verify all fully-mapped triples involving `next` (results that
    // were deferred above are caught once every element is mapped; to stay
    // sound we do a full check at the leaf).
    if (next + 1 == n) {
      bool full = true;
      for (LatticeElem a = 0; a < n && full; ++a) {
        for (LatticeElem b = 0; b < n && full; ++b) {
          if (y.Meet((*map)[a], (*map)[b]) != (*map)[x.Meet(a, b)]) full = false;
          if (y.Join((*map)[a], (*map)[b]) != (*map)[x.Join(a, b)]) full = false;
        }
      }
      if (full) return true;
    } else if (ExtendIsomorphism(x, y, sx, sy, map, used, next + 1)) {
      return true;
    }
    (*map)[next] = FiniteLattice::kNoElem;
    (*used)[cand] = false;
  }
  return false;
}

}  // namespace

bool FiniteLattice::IsomorphicTo(const FiniteLattice& other) const {
  if (size() != other.size()) return false;
  std::vector<ElemSignature> sx = Signatures(*this);
  std::vector<ElemSignature> sy = Signatures(other);
  std::vector<ElemSignature> a = sx, b = sy;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  if (!(a == b)) return false;
  std::vector<LatticeElem> map(size(), kNoElem);
  std::vector<bool> used(size(), false);
  return ExtendIsomorphism(*this, other, sx, sy, &map, &used, 0);
}

std::vector<LatticeElem> FiniteLattice::GeneratedSublattice(
    const std::vector<LatticeElem>& seeds) const {
  std::set<LatticeElem> closed(seeds.begin(), seeds.end());
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<LatticeElem> snapshot(closed.begin(), closed.end());
    for (LatticeElem a : snapshot) {
      for (LatticeElem b : snapshot) {
        changed |= closed.insert(Meet(a, b)).second;
        changed |= closed.insert(Join(a, b)).second;
      }
    }
  }
  return {closed.begin(), closed.end()};
}

FiniteLattice FiniteLattice::Restrict(
    const std::vector<LatticeElem>& elems) const {
  std::vector<LatticeElem> old_to_new(size(), kNoElem);
  for (std::size_t i = 0; i < elems.size(); ++i) {
    old_to_new[elems[i]] = static_cast<LatticeElem>(i);
  }
  const std::size_t m = elems.size();
  std::vector<std::vector<LatticeElem>> meet(m, std::vector<LatticeElem>(m));
  std::vector<std::vector<LatticeElem>> join(m, std::vector<LatticeElem>(m));
  std::vector<std::string> names(m);
  for (std::size_t i = 0; i < m; ++i) {
    names[i] = names_[elems[i]];
    for (std::size_t j = 0; j < m; ++j) {
      LatticeElem mm = old_to_new[Meet(elems[i], elems[j])];
      LatticeElem jj = old_to_new[Join(elems[i], elems[j])];
      assert(mm != kNoElem && jj != kNoElem && "set not closed");
      meet[i][j] = mm;
      join[i][j] = jj;
    }
  }
  return FiniteLattice(std::move(meet), std::move(join), std::move(names));
}

FiniteLattice FiniteLattice::Chain(std::size_t n) {
  std::vector<std::vector<LatticeElem>> meet(n, std::vector<LatticeElem>(n));
  std::vector<std::vector<LatticeElem>> join(n, std::vector<LatticeElem>(n));
  for (LatticeElem i = 0; i < n; ++i) {
    for (LatticeElem j = 0; j < n; ++j) {
      meet[i][j] = std::min(i, j);
      join[i][j] = std::max(i, j);
    }
  }
  return FiniteLattice(std::move(meet), std::move(join));
}

FiniteLattice FiniteLattice::Boolean(std::size_t k) {
  const std::size_t n = std::size_t{1} << k;
  std::vector<std::vector<LatticeElem>> meet(n, std::vector<LatticeElem>(n));
  std::vector<std::vector<LatticeElem>> join(n, std::vector<LatticeElem>(n));
  for (LatticeElem i = 0; i < n; ++i) {
    for (LatticeElem j = 0; j < n; ++j) {
      meet[i][j] = i & j;
      join[i][j] = i | j;
    }
  }
  return FiniteLattice(std::move(meet), std::move(join));
}

namespace {

// Builds tables from a Leq relation given as a membership predicate, for
// small hand-specified orders where meets/joins exist.
FiniteLattice FromOrder(std::size_t n, const std::vector<std::vector<bool>>& leq,
                        std::vector<std::string> names) {
  std::vector<std::vector<LatticeElem>> meet(n, std::vector<LatticeElem>(n));
  std::vector<std::vector<LatticeElem>> join(n, std::vector<LatticeElem>(n));
  for (LatticeElem a = 0; a < n; ++a) {
    for (LatticeElem b = 0; b < n; ++b) {
      // Greatest lower bound.
      LatticeElem best = FiniteLattice::kNoElem;
      for (LatticeElem c = 0; c < n; ++c) {
        if (leq[c][a] && leq[c][b] &&
            (best == FiniteLattice::kNoElem || leq[best][c])) {
          best = c;
        }
      }
      meet[a][b] = best;
      // Least upper bound.
      best = FiniteLattice::kNoElem;
      for (LatticeElem c = 0; c < n; ++c) {
        if (leq[a][c] && leq[b][c] &&
            (best == FiniteLattice::kNoElem || leq[c][best])) {
          best = c;
        }
      }
      join[a][b] = best;
    }
  }
  return FiniteLattice(std::move(meet), std::move(join), std::move(names));
}

}  // namespace

FiniteLattice FiniteLattice::DiamondM3() {
  // 0 = bottom, 1,2,3 = atoms, 4 = top.
  const std::size_t n = 5;
  std::vector<std::vector<bool>> leq(n, std::vector<bool>(n, false));
  for (LatticeElem i = 0; i < n; ++i) leq[i][i] = true;
  for (LatticeElem i = 0; i < n; ++i) {
    leq[0][i] = true;
    leq[i][4] = true;
  }
  return FromOrder(n, leq, {"bot", "a", "b", "c", "top"});
}

FiniteLattice FiniteLattice::PentagonN5() {
  // 0 = bottom, 4 = top, chain 0 < 1 < 2 < 4 and 0 < 3 < 4 with 1,2 vs 3
  // incomparable.
  const std::size_t n = 5;
  std::vector<std::vector<bool>> leq(n, std::vector<bool>(n, false));
  for (LatticeElem i = 0; i < n; ++i) {
    leq[i][i] = true;
    leq[0][i] = true;
    leq[i][4] = true;
  }
  leq[1][2] = true;
  return FromOrder(n, leq, {"bot", "x", "y", "z", "top"});
}

FiniteLattice FiniteLattice::Divisors(uint64_t n) {
  std::vector<uint64_t> divs;
  for (uint64_t d = 1; d <= n; ++d) {
    if (n % d == 0) divs.push_back(d);
  }
  const std::size_t m = divs.size();
  auto index_of = [&](uint64_t v) {
    return static_cast<LatticeElem>(
        std::lower_bound(divs.begin(), divs.end(), v) - divs.begin());
  };
  std::vector<std::vector<LatticeElem>> meet(m, std::vector<LatticeElem>(m));
  std::vector<std::vector<LatticeElem>> join(m, std::vector<LatticeElem>(m));
  std::vector<std::string> names(m);
  for (std::size_t i = 0; i < m; ++i) {
    names[i] = std::to_string(divs[i]);
    for (std::size_t j = 0; j < m; ++j) {
      meet[i][j] = index_of(std::gcd(divs[i], divs[j]));
      join[i][j] = index_of(std::lcm(divs[i], divs[j]));
    }
  }
  return FiniteLattice(std::move(meet), std::move(join), std::move(names));
}

}  // namespace psem
