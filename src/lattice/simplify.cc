#include "lattice/simplify.h"

#include <vector>

namespace psem {

namespace {

// Flattens a maximal same-operator spine into its operand list.
void FlattenOperands(const ExprArena& arena, ExprId e, ExprKind op,
                     std::vector<ExprId>* out) {
  if (arena.KindOf(e) == op) {
    FlattenOperands(arena, arena.LhsOf(e), op, out);
    FlattenOperands(arena, arena.RhsOf(e), op, out);
  } else {
    out->push_back(e);
  }
}

ExprId SimplifyRec(ExprArena* arena, WhitmanMemo* w, ExprId e) {
  if (arena->IsAttr(e)) return e;
  ExprKind op = arena->KindOf(e);

  // Simplify the flattened operand list first. A simplified operand may
  // itself have become a same-operator node (e.g. a factor (A+B)*(A) that
  // collapses to a product) — re-flatten until stable so the dominance
  // pass sees the full operand multiset.
  std::vector<ExprId> operands;
  FlattenOperands(*arena, e, op, &operands);
  std::vector<ExprId> flat;
  while (true) {
    for (ExprId& o : operands) o = SimplifyRec(arena, w, o);
    flat.clear();
    for (ExprId o : operands) FlattenOperands(*arena, o, op, &flat);
    if (flat == operands) break;
    operands = flat;
  }

  // Drop redundant operands. For a product, operand y is redundant if a
  // distinct remaining operand x has x <=_id y (then x*y =_id x). Dually
  // for sums: y redundant if x exists with y <=_id x.
  std::vector<ExprId> kept;
  for (std::size_t i = 0; i < operands.size(); ++i) {
    bool redundant = false;
    for (std::size_t j = 0; j < operands.size() && !redundant; ++j) {
      if (i == j) continue;
      // Exact duplicates: keep only the first occurrence.
      if (operands[i] == operands[j]) {
        redundant = j < i;
        continue;
      }
      bool dominated = op == ExprKind::kProduct
                           ? w->Leq(operands[j], operands[i])
                           : w->Leq(operands[i], operands[j]);
      if (dominated) {
        // Tie-break mutual dominance (equivalence) by index to keep one.
        bool mutual = op == ExprKind::kProduct
                          ? w->Leq(operands[i], operands[j])
                          : w->Leq(operands[j], operands[i]);
        redundant = !mutual || j < i;
      }
    }
    if (!redundant) kept.push_back(operands[i]);
  }
  if (kept.empty()) kept.push_back(operands[0]);

  ExprId rebuilt = kept[0];
  for (std::size_t i = 1; i < kept.size(); ++i) {
    rebuilt = op == ExprKind::kProduct ? arena->Product(rebuilt, kept[i])
                                       : arena->Sum(rebuilt, kept[i]);
  }
  // Final collapse: if the whole node is =_id to one of its operands
  // (absorption across operators, e.g. A*(A+B)), take the operand.
  for (ExprId o : kept) {
    if (w->Eq(rebuilt, o)) return o;
  }
  return rebuilt;
}

}  // namespace

ExprId SimplifyExpr(ExprArena* arena, ExprId e) {
  WhitmanMemo w(arena);
  ExprId out = SimplifyRec(arena, &w, e);
  // The contract promises non-growth; flattening/rebuilding preserves
  // node counts except for removals, so this always holds — assert the
  // cheap half in debug builds via the public invariant instead.
  return arena->TreeSize(out) <= arena->TreeSize(e) ? out : e;
}

Pd SimplifyPd(ExprArena* arena, const Pd& pd) {
  Pd out = pd;
  out.lhs = SimplifyExpr(arena, pd.lhs);
  out.rhs = SimplifyExpr(arena, pd.rhs);
  return out;
}

}  // namespace psem
