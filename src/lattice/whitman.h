// Deciders for the identity fragment of the theory of lattices: the
// relation <=_id of Section 5.1 (rules ID 1-5), equivalently Whitman's
// condition for free lattices [Whitman 1941]. A PD p = q holds in *every*
// lattice with constants iff p <=_id q and q <=_id p (Lemma 8.2); this is
// the E = {} special case of PD implication, solvable in logarithmic space
// (Theorem 10).
//
// Two implementations are provided:
//  * WhitmanMemo      — memoized recursion, O(|p| * |q|) time/space; the
//                       workhorse used by the rest of the library.
//  * WhitmanIterative — explicit-stack evaluation that stores NO results of
//                       intermediate recursive calls (the first observation
//                       in the proof of Theorem 10); auxiliary state is one
//                       small frame per recursion level. Peak depth is
//                       reported so benchmarks can verify the O(tree depth)
//                       space shape that underlies the logspace bound.
//
// Thread compatibility: WhitmanMemo::Leq mutates the shared memo table, so
// a WhitmanMemo instance must not be shared across threads without external
// synchronization (use one instance per thread). WhitmanIterative::Leq is
// const and keeps all state in locals, so a single const instance may be
// shared freely by concurrent readers (over an arena that is no longer
// being mutated) — it is the decider of choice inside parallel sweeps.

#ifndef PSEM_LATTICE_WHITMAN_H_
#define PSEM_LATTICE_WHITMAN_H_

#include <cstdint>
#include <unordered_map>

#include "lattice/expr.h"
#include "util/exec_context.h"
#include "util/status.h"

namespace psem {

/// Memoized decider for p <=_id q over one arena.
class WhitmanMemo {
 public:
  explicit WhitmanMemo(const ExprArena* arena) : arena_(arena) {}

  /// True iff p <= q holds in every lattice with constants (rules ID 1-5).
  bool Leq(ExprId p, ExprId q);

  /// True iff p = q is a lattice identity (p <=_id q and q <=_id p,
  /// Lemma 8.2a).
  bool Eq(ExprId p, ExprId q) { return Leq(p, q) && Leq(q, p); }

  /// True iff the PD holds in every partition interpretation (Theorem 1 +
  /// Lemma 8.2).
  bool IsIdentity(const Pd& pd) {
    return pd.is_equation ? Eq(pd.lhs, pd.rhs) : Leq(pd.lhs, pd.rhs);
  }

  /// Governed variant of Leq: observes ctx's recursion-depth budget,
  /// deadline, and cancel token (polled every ~1024 calls). On a trip it
  /// returns the ctx Status; the memo keeps only the sub-verdicts that
  /// completed (all sound), so the decider stays fully usable.
  Result<bool> LeqChecked(ExprId p, ExprId q,
                          const ExecContext& ctx = ExecContext::Unbounded());

  Result<bool> EqChecked(ExprId p, ExprId q,
                         const ExecContext& ctx = ExecContext::Unbounded());

  Result<bool> IsIdentityChecked(
      const Pd& pd, const ExecContext& ctx = ExecContext::Unbounded()) {
    return pd.is_equation ? EqChecked(pd.lhs, pd.rhs, ctx)
                          : LeqChecked(pd.lhs, pd.rhs, ctx);
  }

  /// Number of memo entries (distinct subproblems touched).
  std::size_t memo_size() const { return memo_.size(); }

 private:
  Status LeqImpl(ExprId p, ExprId q, uint64_t depth, const ExecContext& ctx,
                 uint64_t* calls, bool* out);

  const ExprArena* arena_;
  std::unordered_map<uint64_t, bool> memo_;
};

/// Statistics from one WhitmanIterative evaluation.
struct WhitmanIterativeStats {
  std::size_t peak_stack_depth = 0;  ///< max live frames (O(tree depth)).
  std::size_t total_calls = 0;       ///< frames pushed (time, no memo).
};

/// Result-storage-free decider: evaluates the ID-rule recursion with an
/// explicit stack of (p, q, next-member) frames and no memo table,
/// demonstrating the "results of intermediate recursive calls need not be
/// stored" observation of Theorem 10's proof.
class WhitmanIterative {
 public:
  explicit WhitmanIterative(const ExprArena* arena) : arena_(arena) {}

  bool Leq(ExprId p, ExprId q, WhitmanIterativeStats* stats = nullptr) const;

  bool Eq(ExprId p, ExprId q, WhitmanIterativeStats* stats = nullptr) const {
    return Leq(p, q, stats) && Leq(q, p, stats);
  }

  /// Governed variant: the live frame count is checked against ctx's
  /// depth budget on every push, and the deadline/cancel token every
  /// ~1024 frames. All state is local, so an early stop loses nothing.
  Result<bool> LeqChecked(ExprId p, ExprId q,
                          const ExecContext& ctx = ExecContext::Unbounded(),
                          WhitmanIterativeStats* stats = nullptr) const;

  Result<bool> EqChecked(ExprId p, ExprId q,
                         const ExecContext& ctx = ExecContext::Unbounded(),
                         WhitmanIterativeStats* stats = nullptr) const;

 private:
  const ExprArena* arena_;
};

}  // namespace psem

#endif  // PSEM_LATTICE_WHITMAN_H_
