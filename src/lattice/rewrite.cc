#include "lattice/rewrite.h"

#include <queue>
#include <unordered_map>

namespace psem {

namespace {

// Appends root-level rewrites of `e`. Every rewrite replaces e by e' with
// e <= e' valid (identity or E-arc), so substitution at any position —
// both operations are monotone — witnesses whole-expression <=_E.
void RootRewrites(ExprArena* arena, ExprId e, const std::vector<Pd>& equations,
                  const std::vector<ExprId>& pad_pool, uint32_t max_size,
                  std::vector<RewriteStep>* out) {
  if (!arena->IsAttr(e)) {
    ExprId l = arena->LhsOf(e), r = arena->RhsOf(e);
    if (arena->KindOf(e) == ExprKind::kProduct) {
      // Rules 2/3: x*y <= x, x*y <= y.
      out->push_back({l, "project-left"});
      out->push_back({r, "project-right"});
    } else if (l == r) {
      // Rule 1: x+x = x (the shrinking direction).
      out->push_back({l, "collapse-sum"});
    }
  }
  // Rule 4: x = x*x (the growing direction).
  if (arena->TreeSize(e) * 2 + 1 <= max_size) {
    out->push_back({arena->Product(e, e), "expand-product"});
  }
  // Rules 5/6: x <= x+y, x <= y+x.
  for (ExprId y : pad_pool) {
    if (arena->TreeSize(e) + arena->TreeSize(y) + 1 <= max_size) {
      out->push_back({arena->Sum(e, y), "pad-sum-right"});
      out->push_back({arena->Sum(y, e), "pad-sum-left"});
    }
  }
  // Rule 7: E-substitutions, oriented along the constraint.
  for (std::size_t i = 0; i < equations.size(); ++i) {
    const Pd& pd = equations[i];
    if (e == pd.lhs && arena->TreeSize(pd.rhs) <= max_size) {
      out->push_back({pd.rhs, "E" + std::to_string(i + 1) + " ->"});
    }
    if (pd.is_equation && e == pd.rhs && arena->TreeSize(pd.lhs) <= max_size) {
      out->push_back({pd.lhs, "E" + std::to_string(i + 1) + " <-"});
    }
  }
}

void AllRewrites(ExprArena* arena, ExprId e, const std::vector<Pd>& equations,
                 const std::vector<ExprId>& pad_pool, uint32_t max_size,
                 uint32_t context_size, std::vector<RewriteStep>* out) {
  // Rewrites at the root; the context the subterm sits in consumes
  // context_size nodes of the budget.
  std::vector<RewriteStep> here;
  RootRewrites(arena, e, equations, pad_pool,
               max_size > context_size ? max_size - context_size : 0, &here);
  out->insert(out->end(), here.begin(), here.end());
  // Rewrites inside children, rebuilt through this node.
  if (arena->IsAttr(e)) return;
  ExprId l = arena->LhsOf(e), r = arena->RhsOf(e);
  ExprKind op = arena->KindOf(e);
  std::vector<RewriteStep> sub;
  AllRewrites(arena, l, equations, pad_pool, max_size,
              context_size + arena->TreeSize(r) + 1, &sub);
  for (const RewriteStep& s : sub) {
    out->push_back({op == ExprKind::kProduct ? arena->Product(s.expr, r)
                                             : arena->Sum(s.expr, r),
                    s.rule});
  }
  sub.clear();
  AllRewrites(arena, r, equations, pad_pool, max_size,
              context_size + arena->TreeSize(l) + 1, &sub);
  for (const RewriteStep& s : sub) {
    out->push_back({op == ExprKind::kProduct ? arena->Product(l, s.expr)
                                             : arena->Sum(l, s.expr),
                    s.rule});
  }
}

}  // namespace

std::vector<RewriteStep> OneStepRewrites(ExprArena* arena, ExprId e,
                                         const std::vector<Pd>& equations,
                                         const std::vector<ExprId>& pad_pool,
                                         uint32_t max_size) {
  std::vector<RewriteStep> out;
  AllRewrites(arena, e, equations, pad_pool, max_size, 0, &out);
  return out;
}

Result<RewriteSequence> FindRewriteSequence(ExprArena* arena, ExprId from,
                                            ExprId to,
                                            const std::vector<Pd>& equations,
                                            uint32_t max_size,
                                            std::size_t max_states) {
  // Pad pool: distinct subexpressions of E, from, to (the lemma's proof
  // shows these suffice for the y's of rules 5/6).
  std::set<ExprId> seen;
  std::vector<ExprId> pool;
  for (const Pd& pd : equations) {
    arena->CollectSubexprs(pd.lhs, &seen, &pool);
    arena->CollectSubexprs(pd.rhs, &seen, &pool);
  }
  arena->CollectSubexprs(from, &seen, &pool);
  arena->CollectSubexprs(to, &seen, &pool);

  struct Visit {
    ExprId parent;
    std::string rule;
  };
  std::unordered_map<ExprId, Visit> visited;
  std::queue<ExprId> frontier;
  visited.emplace(from, Visit{kNoExpr, "start"});
  frontier.push(from);
  bool found = (from == to);
  while (!frontier.empty() && !found) {
    ExprId cur = frontier.front();
    frontier.pop();
    for (const RewriteStep& step :
         OneStepRewrites(arena, cur, equations, pool, max_size)) {
      if (visited.count(step.expr)) continue;
      visited.emplace(step.expr, Visit{cur, step.rule});
      if (step.expr == to) {
        found = true;
        break;
      }
      if (visited.size() >= max_states) {
        return Status::ResourceExhausted(
            "rewrite search exceeded " + std::to_string(max_states) +
            " states");
      }
      frontier.push(step.expr);
    }
  }
  if (!found) {
    return Status::NotFound("no rewrite sequence within the bounds");
  }
  // Reconstruct.
  std::vector<RewriteStep> rev;
  for (ExprId cur = to; cur != kNoExpr;) {
    const Visit& v = visited.at(cur);
    rev.push_back({cur, v.rule});
    cur = v.parent;
  }
  RewriteSequence seq;
  for (std::size_t i = rev.size(); i-- > 0;) seq.steps.push_back(rev[i]);
  return seq;
}

std::string RenderRewriteSequence(const ExprArena& arena,
                                  const RewriteSequence& seq) {
  std::string out;
  for (std::size_t i = 0; i < seq.steps.size(); ++i) {
    if (i > 0) out += "  --[" + seq.steps[i].rule + "]-->  ";
    out += arena.ToString(seq.steps[i].expr);
  }
  return out;
}

}  // namespace psem
