#include "lattice/expr.h"

#include <cassert>
#include <cctype>

#include "util/strings.h"

namespace psem {

ExprId ExprArena::InternNode(ExprKind kind, AttrId attr, ExprId l, ExprId r) {
  NodeKey key{kind, kind == ExprKind::kAttr ? attr : l,
              kind == ExprKind::kAttr ? 0 : r};
  auto it = intern_.find(key);
  if (it != intern_.end()) return it->second;
  Node node;
  node.kind = kind;
  node.attr = attr;
  node.lhs = l;
  node.rhs = r;
  node.complexity = kind == ExprKind::kAttr
                        ? 0
                        : nodes_[l].complexity + nodes_[r].complexity + 1;
  ExprId id = static_cast<ExprId>(nodes_.size());
  nodes_.push_back(node);
  intern_.emplace(key, id);
  return id;
}

ExprId ExprArena::Attr(std::string_view name) {
  AttrId attr = attr_names_.Intern(name);
  if (attr < attr_expr_.size()) return attr_expr_[attr];
  assert(attr == attr_expr_.size());
  ExprId id = InternNode(ExprKind::kAttr, attr, kNoExpr, kNoExpr);
  attr_expr_.push_back(id);
  return id;
}

ExprId ExprArena::AttrExpr(AttrId attr) {
  assert(attr < attr_expr_.size());
  return attr_expr_[attr];
}

ExprId ExprArena::Product(ExprId l, ExprId r) {
  return InternNode(ExprKind::kProduct, 0, l, r);
}

ExprId ExprArena::Sum(ExprId l, ExprId r) {
  return InternNode(ExprKind::kSum, 0, l, r);
}

ExprId ExprArena::ProductOf(std::span<const ExprId> parts) {
  assert(!parts.empty());
  ExprId acc = parts[0];
  for (std::size_t i = 1; i < parts.size(); ++i) acc = Product(acc, parts[i]);
  return acc;
}

ExprId ExprArena::SumOf(std::span<const ExprId> parts) {
  assert(!parts.empty());
  ExprId acc = parts[0];
  for (std::size_t i = 1; i < parts.size(); ++i) acc = Sum(acc, parts[i]);
  return acc;
}

ExprId ExprArena::ProductOfAttrs(std::span<const std::string> names) {
  assert(!names.empty());
  ExprId acc = Attr(names[0]);
  for (std::size_t i = 1; i < names.size(); ++i) {
    acc = Product(acc, Attr(names[i]));
  }
  return acc;
}

namespace {

// Error messages quote at most this much of the (untrusted, possibly
// huge or binary) input.
std::string Excerpt(std::string_view text) {
  constexpr std::size_t kMaxQuoted = 64;
  if (text.size() <= kMaxQuoted) return std::string(text);
  return std::string(text.substr(0, kMaxQuoted)) + "... (" +
         std::to_string(text.size()) + " bytes)";
}

// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  Parser(ExprArena* arena, std::string_view text)
      : arena_(arena), text_(text), pos_(0) {}

  Result<ExprId> ParseAll() {
    PSEM_ASSIGN_OR_RETURN(ExprId e, ParseExpr());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters at position " +
                                     std::to_string(pos_) + " in '" +
                                     Excerpt(text_) + "'");
    }
    return e;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool Consume(char c) {
    if (Peek(c)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<ExprId> ParseExpr() {
    PSEM_ASSIGN_OR_RETURN(ExprId acc, ParseTerm());
    while (Consume('+')) {
      PSEM_ASSIGN_OR_RETURN(ExprId rhs, ParseTerm());
      acc = arena_->Sum(acc, rhs);
    }
    return acc;
  }

  Result<ExprId> ParseTerm() {
    PSEM_ASSIGN_OR_RETURN(ExprId acc, ParseFactor());
    while (Consume('*')) {
      PSEM_ASSIGN_OR_RETURN(ExprId rhs, ParseFactor());
      acc = arena_->Product(acc, rhs);
    }
    return acc;
  }

  Result<ExprId> ParseFactor() {
    SkipSpace();
    if (Consume('(')) {
      // Untrusted-input guard: nesting depth is the parser's recursion
      // depth, so cap it explicitly rather than riding the native stack
      // into undefined behavior on adversarial input.
      if (++depth_ > ExprArena::kMaxParseDepth) {
        return Status::InvalidArgument(
            "expression nesting exceeds the maximum depth of " +
            std::to_string(ExprArena::kMaxParseDepth));
      }
      PSEM_ASSIGN_OR_RETURN(ExprId inner, ParseExpr());
      --depth_;
      if (!Consume(')')) {
        return Status::InvalidArgument("expected ')' at position " +
                                       std::to_string(pos_) + " in '" +
                                       Excerpt(text_) + "'");
      }
      return inner;
    }
    std::size_t start = pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      auto u = static_cast<unsigned char>(c);
      bool ok = pos_ == start ? (std::isalpha(u) || c == '_')
                              : (std::isalnum(u) || c == '_');
      if (!ok) break;
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument("expected attribute or '(' at position " +
                                     std::to_string(pos_) + " in '" +
                                     Excerpt(text_) + "'");
    }
    return arena_->Attr(text_.substr(start, pos_ - start));
  }

  ExprArena* arena_;
  std::string_view text_;
  std::size_t pos_;
  std::size_t depth_ = 0;  // open parentheses on the recursion path
};

}  // namespace

Result<ExprId> ExprArena::Parse(std::string_view text) {
  Parser p(this, text);
  return p.ParseAll();
}

Result<Pd> ExprArena::ParsePd(std::string_view text) {
  // Find the relation symbol: "<=" or "=" (not inside identifiers; neither
  // character can occur in an expression so a plain scan is safe).
  std::size_t le = text.find("<=");
  std::size_t eq = text.find('=');
  bool is_equation;
  std::size_t split;
  std::size_t rel_len;
  if (le != std::string_view::npos) {
    is_equation = false;
    split = le;
    rel_len = 2;
  } else if (eq != std::string_view::npos) {
    is_equation = true;
    split = eq;
    rel_len = 1;
  } else {
    return Status::InvalidArgument("PD must contain '=' or '<=': '" +
                                   Excerpt(text) + "'");
  }
  PSEM_ASSIGN_OR_RETURN(ExprId lhs, Parse(text.substr(0, split)));
  PSEM_ASSIGN_OR_RETURN(ExprId rhs, Parse(text.substr(split + rel_len)));
  return Pd{lhs, rhs, is_equation};
}

void ExprArena::ToStringRec(ExprId id, bool parenthesize_sum,
                            std::string* out) const {
  const Node& n = nodes_[id];
  switch (n.kind) {
    case ExprKind::kAttr:
      *out += attr_names_.NameOf(n.attr);
      return;
    case ExprKind::kProduct:
      ToStringRec(n.lhs, /*parenthesize_sum=*/true, out);
      *out += "*";
      ToStringRec(n.rhs, /*parenthesize_sum=*/true, out);
      return;
    case ExprKind::kSum:
      if (parenthesize_sum) *out += "(";
      ToStringRec(n.lhs, /*parenthesize_sum=*/false, out);
      *out += "+";
      ToStringRec(n.rhs, /*parenthesize_sum=*/false, out);
      if (parenthesize_sum) *out += ")";
      return;
  }
}

std::string ExprArena::ToString(ExprId id) const {
  std::string out;
  ToStringRec(id, /*parenthesize_sum=*/false, &out);
  return out;
}

std::string ExprArena::ToString(const Pd& pd) const {
  std::string out = ToString(pd.lhs);
  out += pd.is_equation ? " = " : " <= ";
  out += ToString(pd.rhs);
  return out;
}

void ExprArena::CollectSubexprs(ExprId id, std::set<ExprId>* seen,
                                std::vector<ExprId>* out) const {
  if (seen->count(id)) return;
  const Node& n = nodes_[id];
  if (n.kind != ExprKind::kAttr) {
    CollectSubexprs(n.lhs, seen, out);
    CollectSubexprs(n.rhs, seen, out);
  }
  if (seen->insert(id).second) out->push_back(id);
}

ExprId DualExpr(ExprArena* arena, ExprId e) {
  switch (arena->KindOf(e)) {
    case ExprKind::kAttr:
      return e;
    case ExprKind::kProduct:
      return arena->Sum(DualExpr(arena, arena->LhsOf(e)),
                        DualExpr(arena, arena->RhsOf(e)));
    case ExprKind::kSum:
      return arena->Product(DualExpr(arena, arena->LhsOf(e)),
                            DualExpr(arena, arena->RhsOf(e)));
  }
  return e;
}

Pd DualPd(ExprArena* arena, const Pd& pd) {
  ExprId l = DualExpr(arena, pd.lhs);
  ExprId r = DualExpr(arena, pd.rhs);
  // Duality reverses the order: (p <= q)^d is q^d <= p^d.
  if (pd.is_equation) return Pd::Eq(l, r);
  return Pd::Leq(r, l);
}

void ExprArena::CollectAttrs(ExprId id, std::set<AttrId>* out) const {
  const Node& n = nodes_[id];
  if (n.kind == ExprKind::kAttr) {
    out->insert(n.attr);
  } else {
    CollectAttrs(n.lhs, out);
    CollectAttrs(n.rhs, out);
  }
}

}  // namespace psem
