#include "consistency/cad.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "util/failpoint.h"

namespace psem {

namespace {

constexpr ValueId kHole = UINT32_MAX;

// Deadline/cancel poll period of the governed search, in decision nodes.
constexpr uint64_t kCadCheckStride = 1024;

struct CadSearch {
  const std::vector<Fd>& fds;
  std::size_t width;
  std::vector<std::vector<ValueId>>& rows;
  const std::vector<std::vector<ValueId>>& domains;  // per attribute
  std::vector<std::pair<uint32_t, uint32_t>> holes;  // (row, col)
  // FDs (as column lists) touching each column.
  std::vector<std::vector<uint32_t>> fds_on_col;
  std::vector<std::vector<std::size_t>> fd_x, fd_y;
  const ExecContext& ctx;
  uint64_t nodes = 0;
  uint64_t budget;
  bool governed;
  bool exhausted = false;
  Status status;  // why the search stopped early (set iff exhausted)

  CadSearch(const std::vector<Fd>& fds_in, std::size_t width_in,
            std::vector<std::vector<ValueId>>& rows_in,
            const std::vector<std::vector<ValueId>>& domains_in,
            uint64_t budget_in, const ExecContext& ctx_in)
      : fds(fds_in),
        width(width_in),
        rows(rows_in),
        domains(domains_in),
        ctx(ctx_in),
        budget(budget_in),
        governed(!ctx_in.unbounded()) {
    if (ctx.max_solver_nodes() != 0) {
      budget = std::min(budget, ctx.max_solver_nodes());
    }
    fd_x.resize(fds.size());
    fd_y.resize(fds.size());
    fds_on_col.resize(width);
    for (uint32_t f = 0; f < fds.size(); ++f) {
      fds[f].lhs.ForEach([&](std::size_t a) {
        if (a < width) {
          fd_x[f].push_back(a);
          fds_on_col[a].push_back(f);
        }
      });
      fds[f].rhs.ForEach([&](std::size_t a) {
        if (a < width) {
          fd_y[f].push_back(a);
          fds_on_col[a].push_back(f);
        }
      });
    }
    for (uint32_t r = 0; r < rows.size(); ++r) {
      for (uint32_t c = 0; c < width; ++c) {
        if (rows[r][c] == kHole) holes.emplace_back(r, c);
      }
    }
  }

  // Checks FD f between rows r1, r2 under the partial assignment: returns
  // false only on a definite violation (X fully assigned and equal; some Y
  // assigned in both and different).
  bool PairOk(uint32_t f, uint32_t r1, uint32_t r2) const {
    for (std::size_t c : fd_x[f]) {
      ValueId a = rows[r1][c], b = rows[r2][c];
      if (a == kHole || b == kHole || a != b) return true;
    }
    for (std::size_t c : fd_y[f]) {
      ValueId a = rows[r1][c], b = rows[r2][c];
      if (a != kHole && b != kHole && a != b) return false;
    }
    return true;
  }

  // Validates the FDs that involve column c of row r against all rows.
  bool CellOk(uint32_t r, uint32_t c) const {
    for (uint32_t f : fds_on_col[c]) {
      for (uint32_t r2 = 0; r2 < rows.size(); ++r2) {
        if (r2 != r && !PairOk(f, r, r2)) return false;
      }
    }
    return true;
  }

  bool Dfs(std::size_t hole_idx) {
    if (++nodes > budget) {
      exhausted = true;
      status = Status::ResourceExhausted(
          "solver node budget exhausted after " + std::to_string(nodes) +
          " nodes");
      return false;
    }
    if (governed && (nodes % kCadCheckStride) == 0) {
      Status st = ctx.Check();
      if (!st.ok()) {
        exhausted = true;
        status = std::move(st);
        return false;
      }
    }
    if (hole_idx == holes.size()) return true;
    auto [r, c] = holes[hole_idx];
    for (ValueId v : domains[c]) {
      rows[r][c] = v;
      if (CellOk(r, c) && Dfs(hole_idx + 1)) return true;
      if (exhausted) break;
      rows[r][c] = kHole;
    }
    return false;
  }
};

}  // namespace

CadResult CadConsistent(const Database& db, const std::vector<Fd>& fds,
                        uint64_t node_budget, const ExecContext& ctx) {
  CadResult result;
  if (PSEM_FAILPOINT(failpoints::kCadSearch)) {
    result.decided = false;
    result.status =
        Status::Internal("injected CAD-search fault (psem.cad.search)");
    return result;
  }
  if (!ctx.unbounded()) {
    Status st = ctx.Check();
    if (!st.ok()) {
      result.decided = false;
      result.status = std::move(st);
      return result;
    }
  }
  const std::size_t width = db.universe().size();

  // Representative rows: one per database tuple, holes elsewhere.
  std::vector<std::vector<ValueId>> rows;
  for (std::size_t ri = 0; ri < db.num_relations(); ++ri) {
    const Relation& rel = db.relation(ri);
    for (const Tuple& t : rel.rows()) {
      std::vector<ValueId> row(width, kHole);
      for (std::size_t c = 0; c < rel.arity(); ++c) {
        row[rel.schema().attrs[c]] = t[c];
      }
      rows.push_back(std::move(row));
    }
  }
  // Hole domains: d[A] (CAD forbids inventing symbols).
  std::vector<std::vector<ValueId>> domains(width);
  for (RelAttrId a = 0; a < width; ++a) domains[a] = db.ColumnValues(a);
  // An unfillable hole means inconsistency under CAD.
  if (!rows.empty()) {
    for (RelAttrId a = 0; a < width; ++a) {
      if (domains[a].empty()) {
        bool has_hole = false;
        for (const auto& row : rows) has_hole |= (row[a] == kHole);
        if (has_hole) {
          result.consistent = false;
          return result;
        }
      }
    }
  }

  CadSearch search(fds, width, rows, domains, node_budget, ctx);
  // Initial fixed cells must already be FD-consistent.
  bool initial_ok = true;
  for (uint32_t f = 0; f < fds.size() && initial_ok; ++f) {
    for (uint32_t r1 = 0; r1 < rows.size() && initial_ok; ++r1) {
      for (uint32_t r2 = r1 + 1; r2 < rows.size(); ++r2) {
        if (!search.PairOk(f, r1, r2)) {
          initial_ok = false;
          break;
        }
      }
    }
  }
  bool found = initial_ok && search.Dfs(0);
  result.nodes = search.nodes;
  if (search.exhausted) {
    result.decided = false;
    result.status = std::move(search.status);
    return result;
  }
  result.consistent = found;
  if (found) result.weak_instance = rows;
  return result;
}

Result<CadReduction> ReduceNaeToCad(const NaeFormula& f, Database* db) {
  for (const NaeClause& c : f.clauses) {
    if (c.size() < 2 || c.size() > 3) {
      return Status::InvalidArgument("clauses must have 2 or 3 literals");
    }
    for (std::size_t i = 0; i < c.size(); ++i) {
      for (std::size_t j = i + 1; j < c.size(); ++j) {
        if (c[i].var == c[j].var) {
          return Status::InvalidArgument(
              "clause literals must use distinct variables");
        }
      }
    }
  }
  CadReduction red;
  red.padded = f;
  // Padding: for each variable x_i add a fresh mirror g_i with the clauses
  // (x_i OR NOT g_i) and (NOT x_i OR g_i). Under NAE semantics a 2-literal
  // clause requires its literals to differ, so both clauses say g_i = x_i:
  // satisfiability is preserved, and every variable now occurs both
  // positively and negatively — which puts both a_i and b_i into d[B_i],
  // the precondition for the {t1[B_i], t2[B_i]} = {a_i, b_i} argument of
  // Theorem 11's proof.
  uint32_t n0 = f.num_vars;
  for (uint32_t i = 0; i < n0; ++i) {
    uint32_t gi = n0 + i;
    red.padded.clauses.push_back(NaeClause{{i, true}, {gi, false}});
    red.padded.clauses.push_back(NaeClause{{i, false}, {gi, true}});
  }
  red.padded.num_vars = 2 * n0;
  const uint32_t n = red.padded.num_vars;
  const std::size_t m = red.padded.clauses.size();

  Universe& u = db->universe();
  SymbolTable& syms = db->symbols();
  RelAttrId attr_a = u.Intern("A");
  std::vector<RelAttrId> attr_ai(n), attr_bi(n);
  for (uint32_t i = 0; i < n; ++i) {
    attr_ai[i] = u.Intern("A" + std::to_string(i + 1));
    attr_bi[i] = u.Intern("B" + std::to_string(i + 1));
  }

  // R0[A A1 ... An] = { a u1...un, a v1...vn }.
  {
    std::vector<std::string> names{"A"};
    for (uint32_t i = 0; i < n; ++i) names.push_back("A" + std::to_string(i + 1));
    std::size_t r0 = db->AddRelation("R0", names);
    std::vector<std::string> t1{"a"}, t2{"a"};
    for (uint32_t i = 0; i < n; ++i) {
      t1.push_back("u" + std::to_string(i + 1));
      t2.push_back("v" + std::to_string(i + 1));
    }
    db->relation(r0).AddRow(&syms, t1);
    db->relation(r0).AddRow(&syms, t2);
  }

  // One relation per clause. Every clause row carries the same symbol 'b'
  // in the A column (as in Figure 3): the clause FD B_S -> A then forces
  // a = b exactly when all of the clause's literals come out equal.
  for (std::size_t j = 0; j < m; ++j) {
    const NaeClause& clause = red.padded.clauses[j];
    std::vector<bool> in_clause(n, false);
    for (const NaeLiteral& l : clause) in_clause[l.var] = true;

    std::vector<std::string> names{"A"};
    std::vector<std::string> row{"b"};
    for (uint32_t i = 0; i < n; ++i) {
      if (!in_clause[i]) {
        names.push_back("A" + std::to_string(i + 1));
        row.push_back("y" + std::to_string(j + 1) + "_" + std::to_string(i + 1));
      }
    }
    for (uint32_t i = 0; i < n; ++i) {
      names.push_back("B" + std::to_string(i + 1));
      if (in_clause[i]) {
        bool positive = false;
        for (const NaeLiteral& l : clause) {
          if (l.var == i) positive = l.positive;
        }
        row.push_back((positive ? "a" : "b") + std::to_string(i + 1));
      } else {
        row.push_back("z" + std::to_string(j + 1) + "_" + std::to_string(i + 1));
      }
    }
    std::size_t rj = db->AddRelation("R" + std::to_string(j + 1), names);
    db->relation(rj).AddRow(&syms, row);
  }

  // FDs: B_i -> A_i and, per clause, {B_i : i in clause} -> A.
  const std::size_t width = u.size();
  for (uint32_t i = 0; i < n; ++i) {
    AttrSet l(width), r(width);
    l.Set(attr_bi[i]);
    r.Set(attr_ai[i]);
    red.fds.push_back(Fd{std::move(l), std::move(r)});
  }
  for (const NaeClause& clause : red.padded.clauses) {
    AttrSet l(width), r(width);
    for (const NaeLiteral& lit : clause) l.Set(attr_bi[lit.var]);
    r.Set(attr_a);
    red.fds.push_back(Fd{std::move(l), std::move(r)});
  }
  return red;
}

Result<std::vector<bool>> DecodeCadAssignment(const Database& db,
                                              const CadReduction& reduction,
                                              const CadResult& result) {
  if (!result.consistent || result.weak_instance.empty()) {
    return Status::FailedPrecondition("no weak instance to decode");
  }
  const uint32_t n = reduction.padded.num_vars;
  std::vector<bool> assignment(n);
  // Row 0 is the first R0 tuple (a, u1...un) — R0 was added first.
  const std::vector<ValueId>& t1 = result.weak_instance[0];
  for (uint32_t i = 0; i < n; ++i) {
    PSEM_ASSIGN_OR_RETURN(RelAttrId bi,
                          db.universe().Require("B" + std::to_string(i + 1)));
    const std::string& sym = db.symbols().NameOf(t1[bi]);
    std::string a_sym = "a" + std::to_string(i + 1);
    std::string b_sym = "b" + std::to_string(i + 1);
    if (sym == a_sym) {
      assignment[i] = true;
    } else if (sym == b_sym) {
      assignment[i] = false;
    } else {
      return Status::Internal("unexpected fill value '" + sym + "' for B" +
                              std::to_string(i + 1));
    }
  }
  return assignment;
}

}  // namespace psem
