// Constructive side of Lemma 12.1. The polynomial consistency test (Thm
// 12) decides existence of a weak instance satisfying E by chasing with
// the FPD subset F only; the lemma's proof REPAIRS any F-satisfying weak
// instance into one satisfying the surviving sum-upper constraints
// C <= A+B by adding bridging tuples (t[A+] from one violator, t[B+] from
// the other, fresh symbols elsewhere). The paper iterates this to the
// limit w_infinity; on concrete finite databases the iteration typically
// converges quickly, so this module materializes an explicit finite weak
// instance satisfying ALL of E — a tangible certificate to hand back to
// the user — or reports the round budget as exhausted.

#ifndef PSEM_CONSISTENCY_REPAIR_H_
#define PSEM_CONSISTENCY_REPAIR_H_

#include <vector>

#include "core/normalize.h"
#include "lattice/expr.h"
#include "relational/relation.h"
#include "util/exec_context.h"
#include "util/status.h"

namespace psem {

/// Result of materializing a full weak instance.
struct MaterializedWeakInstance {
  /// A relation over the extended universe (original + normalization
  /// attributes), whose projection contains every database tuple and
  /// which satisfies every PD of E (checked via Definition 7).
  Relation instance;
  std::size_t repair_rounds = 0;
  std::size_t added_tuples = 0;
};

/// Builds a finite weak instance for `db` satisfying all of `pds`, by
/// chasing with F and then running the Lemma 12.1 repair loop on the
/// sum-upper residue until quiescence (or `max_rounds`). Returns
/// Inconsistent when the Theorem 12 test fails, ResourceExhausted when
/// the repair does not converge within the budget.
///
/// Grows db's universe (normalization attributes) and symbol table
/// (fresh padding symbols).
///
/// The ctx governs both phases: its round budget/deadline/cancel token
/// are observed by the inner chase and checked once per repair round
/// (the effective round cap is min(max_rounds, ctx.max_rounds())).
Result<MaterializedWeakInstance> MaterializeWeakInstance(
    Database* db, const ExprArena& arena, const std::vector<Pd>& pds,
    std::size_t max_rounds = 64,
    const ExecContext& ctx = ExecContext::Unbounded());

}  // namespace psem

#endif  // PSEM_CONSISTENCY_REPAIR_H_
