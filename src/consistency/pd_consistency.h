// The polynomial-time consistency test of Theorem 12: given a database d
// and an arbitrary set E of PDs, decide whether some partition
// interpretation satisfies both. By Theorem 7 this is equivalent to the
// existence of a weak instance for d satisfying E; by the Section 6.2
// normalization plus Lemma 12.1 it reduces to Honeyman's chase with the
// FPD set F extracted from E+.

#ifndef PSEM_CONSISTENCY_PD_CONSISTENCY_H_
#define PSEM_CONSISTENCY_PD_CONSISTENCY_H_

#include <vector>

#include "core/normalize.h"
#include "lattice/expr.h"
#include "relational/relation.h"
#include "util/exec_context.h"
#include "util/status.h"

namespace psem {

/// Diagnostic detail from a consistency check.
struct PdConsistencyReport {
  bool consistent = false;
  std::size_t num_fpds = 0;        ///< |F| used in the chase.
  std::size_t num_sum_uppers = 0;  ///< surviving C <= A+B constraints.
  std::size_t chase_rounds = 0;
  std::size_t chase_merges = 0;
};

/// Tests whether db is consistent with the PDs `pds` (expressions over
/// `arena`; attributes shared with db's universe by name). Grows db's
/// universe with the fresh attributes of normalization. Polynomial time.
/// The ctx's round budget/deadline/cancel token govern the inner chase; a
/// trip surfaces as the chase's non-OK Status, with the partial rounds
/// and merges NOT reported (the chase result is discarded on error).
Result<PdConsistencyReport> PdConsistent(
    Database* db, const ExprArena& arena, const std::vector<Pd>& pds,
    const ExecContext& ctx = ExecContext::Unbounded());

}  // namespace psem

#endif  // PSEM_CONSISTENCY_PD_CONSISTENCY_H_
