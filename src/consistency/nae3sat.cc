#include "consistency/nae3sat.h"

#include <algorithm>
#include <cassert>

#include "util/failpoint.h"
#include "util/rng.h"
#include "util/strings.h"

namespace psem {

NaeFormula NaeFormula::Parse(const std::string& text) {
  NaeFormula f;
  for (const std::string& clause_text : SplitAndStrip(text, ';')) {
    NaeClause clause;
    for (const std::string& lit : SplitAndStrip(clause_text, ' ')) {
      long v = std::stol(lit);
      assert(v != 0);
      NaeLiteral l;
      l.positive = v > 0;
      l.var = static_cast<uint32_t>((v > 0 ? v : -v) - 1);
      f.num_vars = std::max(f.num_vars, l.var + 1);
      clause.push_back(l);
    }
    if (!clause.empty()) f.clauses.push_back(std::move(clause));
  }
  return f;
}

std::string NaeFormula::ToString() const {
  std::string out;
  for (std::size_t i = 0; i < clauses.size(); ++i) {
    if (i > 0) out += "; ";
    for (std::size_t j = 0; j < clauses[i].size(); ++j) {
      if (j > 0) out += " ";
      if (!clauses[i][j].positive) out += "-";
      out += std::to_string(clauses[i][j].var + 1);
    }
  }
  return out;
}

bool NaeFormula::Satisfied(const std::vector<bool>& assignment) const {
  for (const NaeClause& c : clauses) {
    bool any_true = false, any_false = false;
    for (const NaeLiteral& l : c) {
      bool v = assignment[l.var] == l.positive;
      any_true |= v;
      any_false |= !v;
    }
    if (!any_true || !any_false) return false;
  }
  return true;
}

std::optional<std::vector<bool>> NaeBruteForce(const NaeFormula& f) {
  assert(f.num_vars < 28);
  for (uint64_t mask = 0; mask < (uint64_t{1} << f.num_vars); ++mask) {
    std::vector<bool> a(f.num_vars);
    for (uint32_t v = 0; v < f.num_vars; ++v) a[v] = (mask >> v) & 1;
    if (f.Satisfied(a)) return a;
  }
  return std::nullopt;
}

namespace {

enum class Tri : uint8_t { kUnset, kTrue, kFalse };

// Deadline/cancel poll period of the governed search, in decision nodes.
constexpr uint64_t kNaeCheckStride = 1024;

struct Solver {
  const NaeFormula& f;
  const ExecContext& ctx;
  std::vector<Tri> value;
  uint64_t nodes = 0;
  uint64_t budget;
  bool governed;
  bool exhausted = false;
  Status status;  // why the search stopped early (set iff exhausted)

  Solver(const NaeFormula& formula, uint64_t node_budget,
         const ExecContext& exec_ctx)
      : f(formula),
        ctx(exec_ctx),
        value(formula.num_vars, Tri::kUnset),
        budget(node_budget),
        governed(!exec_ctx.unbounded()) {
    if (ctx.max_solver_nodes() != 0) {
      budget = std::min(budget, ctx.max_solver_nodes());
    }
  }

  // Checks a clause under the partial assignment. Returns false if the
  // clause is already all-equal with every literal fixed.
  bool ClauseOk(const NaeClause& c) const {
    bool any_true = false, any_false = false, any_unset = false;
    for (const NaeLiteral& l : c) {
      if (value[l.var] == Tri::kUnset) {
        any_unset = true;
      } else {
        bool v = (value[l.var] == Tri::kTrue) == l.positive;
        any_true |= v;
        any_false |= !v;
      }
    }
    return any_unset || (any_true && any_false);
  }

  bool Dfs(uint32_t var) {
    if (++nodes > budget) {
      exhausted = true;
      status = Status::ResourceExhausted(
          "solver node budget exhausted after " + std::to_string(nodes) +
          " nodes");
      return false;
    }
    if (governed && (nodes % kNaeCheckStride) == 0) {
      Status st = ctx.Check();
      if (!st.ok()) {
        exhausted = true;
        status = std::move(st);
        return false;
      }
    }
    while (var < f.num_vars && value[var] != Tri::kUnset) ++var;
    if (var == f.num_vars) {
      for (const NaeClause& c : f.clauses) {
        if (!ClauseOk(c)) return false;
      }
      return true;
    }
    for (Tri t : {Tri::kFalse, Tri::kTrue}) {
      value[var] = t;
      bool ok = true;
      for (const NaeClause& c : f.clauses) {
        bool involves = false;
        for (const NaeLiteral& l : c) involves |= (l.var == var);
        if (involves && !ClauseOk(c)) {
          ok = false;
          break;
        }
      }
      if (ok && Dfs(var + 1)) return true;
      if (exhausted) break;
      value[var] = Tri::kUnset;
    }
    return false;
  }
};

}  // namespace

NaeSolveResult NaeSolve(const NaeFormula& f, uint64_t node_budget,
                        const ExecContext& ctx) {
  NaeSolveResult result;
  if (PSEM_FAILPOINT(failpoints::kNaeSearch)) {
    result.decided = false;
    result.status =
        Status::Internal("injected NAE-search fault (psem.nae.search)");
    return result;
  }
  if (f.num_vars == 0) {
    result.assignment = f.clauses.empty()
                            ? std::optional<std::vector<bool>>(
                                  std::vector<bool>{})
                            : std::nullopt;
    return result;
  }
  Solver s(f, node_budget, ctx);
  // NAE formulas are complement-symmetric: WLOG variable 0 is false.
  s.value[0] = Tri::kFalse;
  bool sat = s.Dfs(0);
  result.nodes = s.nodes;
  if (s.exhausted) {
    result.decided = false;
    result.status = std::move(s.status);
    return result;
  }
  if (sat) {
    std::vector<bool> a(f.num_vars);
    for (uint32_t v = 0; v < f.num_vars; ++v) a[v] = s.value[v] == Tri::kTrue;
    result.assignment = std::move(a);
  }
  return result;
}

NaeFormula RandomNae3(uint32_t n, uint32_t m, uint64_t seed) {
  assert(n >= 3);
  Rng rng(seed);
  NaeFormula f;
  f.num_vars = n;
  for (uint32_t i = 0; i < m; ++i) {
    uint32_t a = static_cast<uint32_t>(rng.Below(n));
    uint32_t b, c;
    do {
      b = static_cast<uint32_t>(rng.Below(n));
    } while (b == a);
    do {
      c = static_cast<uint32_t>(rng.Below(n));
    } while (c == a || c == b);
    NaeClause clause{{a, rng.Chance(1, 2)},
                     {b, rng.Chance(1, 2)},
                     {c, rng.Chance(1, 2)}};
    f.clauses.push_back(std::move(clause));
  }
  return f;
}

}  // namespace psem
