#include "consistency/pd_consistency.h"

#include "chase/tableau.h"

namespace psem {

Result<PdConsistencyReport> PdConsistent(Database* db, const ExprArena& arena,
                                         const std::vector<Pd>& pds,
                                         const ExecContext& ctx) {
  PdConsistencyReport report;
  PSEM_ASSIGN_OR_RETURN(NormalizedPds norm,
                        NormalizePds(arena, pds, &db->universe()));
  report.num_fpds = norm.fpds.size();
  report.num_sum_uppers = norm.sum_uppers.size();

  Tableau t = Tableau::Representative(*db, db->universe().size());
  ChaseResult chase = ChaseWithFds(&t, norm.fpds, ctx);
  PSEM_RETURN_IF_ERROR(chase.status);
  report.chase_rounds = chase.rounds;
  report.chase_merges = chase.merges;
  report.consistent = chase.consistent;
  return report;
}

}  // namespace psem
