#include "consistency/repair.h"

#include <string>
#include <unordered_map>

#include "chase/tableau.h"
#include "core/fd_theory.h"
#include "partition/dense.h"
#include "util/failpoint.h"

namespace psem {

namespace {

// Per-round scan state: the kernel scratch and the column/sum partitions
// are reused across repair rounds so the steady state allocates nothing.
struct ViolationScan {
  DenseOps ops;
  std::vector<uint32_t> values;
  DensePartition pa, pb, pc, sum;
  std::vector<uint32_t> first;  // c-label -> first row
};

// Connected components of rows within each C-group, chained by equality
// on column a or column b: the components are exactly the blocks of
// pi_a + pi_b, so the scan is two GroupByValues, one dense Sum, and one
// pass comparing each row's component with its C-group's first row.
// Returns one (i, j) violating pair per violation round, or nullopt.
std::optional<std::pair<uint32_t, uint32_t>> FindSumUpperViolation(
    const Relation& w, std::size_t cc, std::size_t ca, std::size_t cb,
    ViolationScan* s) {
  const uint32_t n = w.size();
  s->values.resize(n);
  for (uint32_t i = 0; i < n; ++i) s->values[i] = w.row(i)[ca];
  s->ops.GroupByValues(s->values, &s->pa);
  for (uint32_t i = 0; i < n; ++i) s->values[i] = w.row(i)[cb];
  s->ops.GroupByValues(s->values, &s->pb);
  for (uint32_t i = 0; i < n; ++i) s->values[i] = w.row(i)[cc];
  s->ops.GroupByValues(s->values, &s->pc);
  s->ops.Sum(s->pa, s->pb, &s->sum);
  s->first.assign(s->pc.num_blocks, UINT32_MAX);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t l = s->pc.labels[i];
    if (s->first[l] == UINT32_MAX) {
      s->first[l] = i;
    } else if (s->sum.labels[s->first[l]] != s->sum.labels[i]) {
      return std::make_pair(s->first[l], i);
    }
  }
  return std::nullopt;
}

}  // namespace

Result<MaterializedWeakInstance> MaterializeWeakInstance(
    Database* db, const ExprArena& arena, const std::vector<Pd>& pds,
    std::size_t max_rounds, const ExecContext& ctx) {
  const bool governed = !ctx.unbounded();
  PSEM_ASSIGN_OR_RETURN(NormalizedPds norm,
                        NormalizePds(arena, pds, &db->universe()));
  const std::size_t width = db->universe().size();

  // Chase the representative tableau with F.
  Tableau t = Tableau::Representative(*db, width);
  ChaseResult chase = ChaseWithFds(&t, norm.fpds, ctx);
  PSEM_RETURN_IF_ERROR(chase.status);
  if (!chase.consistent) {
    return Status::Inconsistent("database inconsistent with the PDs (Thm 12)");
  }

  // Materialize: value class -> concrete symbol (constant, or fresh).
  RelationSchema schema;
  schema.name = "weak_instance";
  for (RelAttrId a = 0; a < width; ++a) schema.attrs.push_back(a);
  Relation w(std::move(schema));
  std::unordered_map<uint32_t, ValueId> class_symbol;
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    Tuple row(width);
    for (std::size_t c = 0; c < width; ++c) {
      uint32_t cls = t.Resolve(r, c);
      uint32_t constant = t.ConstantOf(cls);
      if (constant != Tableau::kNoConstant) {
        row[c] = constant;
      } else {
        auto [it, inserted] = class_symbol.emplace(cls, 0);
        if (inserted) it->second = db->symbols().Fresh("_w");
        row[c] = it->second;
      }
    }
    w.AddTuple(std::move(row));
  }

  // Column lookup is identity (schema is 0..width-1 in order).
  FdTheory f_theory(&db->universe());
  for (const Fd& fd : norm.fpds) f_theory.Add(fd);

  MaterializedWeakInstance out{std::move(w), 0, 0};
  ViolationScan scan;
  // Repair loop (Lemma 12.1): fix one violation per iteration. The budget
  // bounds the number of FIXES; a quiescent instance returns regardless.
  // An abort between rounds is harmless: the instance plus any bridging
  // tuples already added is a valid intermediate of the same repair
  // sequence, and the caller may re-run from the original database.
  for (std::size_t round = 0;; ++round) {
    if (PSEM_FAILPOINT(failpoints::kRepairRound)) {
      return Status::Internal(
          "injected repair-round fault (psem.repair.round)");
    }
    if (governed) {
      PSEM_RETURN_IF_ERROR(ctx.CheckRounds(round + 1));
      PSEM_RETURN_IF_ERROR(ctx.Check());
    }
    bool violated = false;
    for (const SumUpperConstraint& su : norm.sum_uppers) {
      auto v = FindSumUpperViolation(out.instance, su.c, su.a, su.b, &scan);
      if (!v) continue;
      violated = true;
      if (round >= max_rounds) {
        return Status::ResourceExhausted(
            "sum-upper repair did not converge within " +
            std::to_string(max_rounds) + " rounds");
      }
      ++out.repair_rounds;
      const Tuple t1 = out.instance.row(v->first);
      const Tuple t2 = out.instance.row(v->second);
      // Bridging tuple: t[A+] from t1, t[B+] from t2, fresh elsewhere.
      AttrSet a_plus = f_theory.Closure([&] {
        AttrSet s(db->universe().size());
        s.Set(su.a);
        return s;
      }());
      AttrSet b_plus = f_theory.Closure([&] {
        AttrSet s(db->universe().size());
        s.Set(su.b);
        return s;
      }());
      Tuple bridge(width);
      for (std::size_t c = 0; c < width; ++c) {
        if (a_plus.Test(c) && b_plus.Test(c)) {
          // Lemma 12.1: Q in A+ and B+ forces C <= Q in F, so the
          // violators agree here; prefer t1's value and verify.
          if (t1[c] != t2[c]) {
            return Status::Internal(
                "repair invariant broken: violators disagree on a shared "
                "closure attribute");
          }
          bridge[c] = t1[c];
        } else if (a_plus.Test(c)) {
          bridge[c] = t1[c];
        } else if (b_plus.Test(c)) {
          bridge[c] = t2[c];
        } else {
          bridge[c] = db->symbols().Fresh("_r");
        }
      }
      out.instance.AddTuple(std::move(bridge));
      ++out.added_tuples;
      break;  // re-scan from the first constraint with the new tuple
    }
    if (!violated) {
      // Quiescent: double-check F still holds (the lemma guarantees it).
      PSEM_ASSIGN_OR_RETURN(bool f_ok, SatisfiesAllFds(out.instance,
                                                       norm.fpds));
      if (!f_ok) {
        return Status::Internal("repair broke the FPDs — invariant bug");
      }
      return out;
    }
  }
}

}  // namespace psem
