#include "consistency/repair.h"

#include <string>
#include <unordered_map>

#include "chase/tableau.h"
#include "core/fd_theory.h"
#include "util/failpoint.h"
#include "util/union_find.h"

namespace psem {

namespace {

// Connected components of rows within each C-group, chained by equality
// on column a or column b. Returns one (i, j) violating pair per
// violation round, or nullopt.
std::optional<std::pair<uint32_t, uint32_t>> FindSumUpperViolation(
    const Relation& w, std::size_t cc, std::size_t ca, std::size_t cb) {
  UnionFind uf(w.size());
  std::unordered_map<ValueId, uint32_t> first_a, first_b;
  for (uint32_t i = 0; i < w.size(); ++i) {
    auto [ita, ia] = first_a.emplace(w.row(i)[ca], i);
    if (!ia) uf.Union(ita->second, i);
    auto [itb, ib] = first_b.emplace(w.row(i)[cb], i);
    if (!ib) uf.Union(itb->second, i);
  }
  std::unordered_map<ValueId, uint32_t> first_c;
  for (uint32_t i = 0; i < w.size(); ++i) {
    auto [itc, ic] = first_c.emplace(w.row(i)[cc], i);
    if (!ic && !uf.Connected(itc->second, i)) {
      return std::make_pair(itc->second, i);
    }
  }
  return std::nullopt;
}

}  // namespace

Result<MaterializedWeakInstance> MaterializeWeakInstance(
    Database* db, const ExprArena& arena, const std::vector<Pd>& pds,
    std::size_t max_rounds, const ExecContext& ctx) {
  const bool governed = !ctx.unbounded();
  PSEM_ASSIGN_OR_RETURN(NormalizedPds norm,
                        NormalizePds(arena, pds, &db->universe()));
  const std::size_t width = db->universe().size();

  // Chase the representative tableau with F.
  Tableau t = Tableau::Representative(*db, width);
  ChaseResult chase = ChaseWithFds(&t, norm.fpds, ctx);
  PSEM_RETURN_IF_ERROR(chase.status);
  if (!chase.consistent) {
    return Status::Inconsistent("database inconsistent with the PDs (Thm 12)");
  }

  // Materialize: value class -> concrete symbol (constant, or fresh).
  RelationSchema schema;
  schema.name = "weak_instance";
  for (RelAttrId a = 0; a < width; ++a) schema.attrs.push_back(a);
  Relation w(std::move(schema));
  std::unordered_map<uint32_t, ValueId> class_symbol;
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    Tuple row(width);
    for (std::size_t c = 0; c < width; ++c) {
      uint32_t cls = t.Resolve(r, c);
      uint32_t constant = t.ConstantOf(cls);
      if (constant != Tableau::kNoConstant) {
        row[c] = constant;
      } else {
        auto [it, inserted] = class_symbol.emplace(cls, 0);
        if (inserted) it->second = db->symbols().Fresh("_w");
        row[c] = it->second;
      }
    }
    w.AddTuple(std::move(row));
  }

  // Column lookup is identity (schema is 0..width-1 in order).
  FdTheory f_theory(&db->universe());
  for (const Fd& fd : norm.fpds) f_theory.Add(fd);

  MaterializedWeakInstance out{std::move(w), 0, 0};
  // Repair loop (Lemma 12.1): fix one violation per iteration. The budget
  // bounds the number of FIXES; a quiescent instance returns regardless.
  // An abort between rounds is harmless: the instance plus any bridging
  // tuples already added is a valid intermediate of the same repair
  // sequence, and the caller may re-run from the original database.
  for (std::size_t round = 0;; ++round) {
    if (PSEM_FAILPOINT(failpoints::kRepairRound)) {
      return Status::Internal(
          "injected repair-round fault (psem.repair.round)");
    }
    if (governed) {
      PSEM_RETURN_IF_ERROR(ctx.CheckRounds(round + 1));
      PSEM_RETURN_IF_ERROR(ctx.Check());
    }
    bool violated = false;
    for (const SumUpperConstraint& su : norm.sum_uppers) {
      auto v = FindSumUpperViolation(out.instance, su.c, su.a, su.b);
      if (!v) continue;
      violated = true;
      if (round >= max_rounds) {
        return Status::ResourceExhausted(
            "sum-upper repair did not converge within " +
            std::to_string(max_rounds) + " rounds");
      }
      ++out.repair_rounds;
      const Tuple t1 = out.instance.row(v->first);
      const Tuple t2 = out.instance.row(v->second);
      // Bridging tuple: t[A+] from t1, t[B+] from t2, fresh elsewhere.
      AttrSet a_plus = f_theory.Closure([&] {
        AttrSet s(db->universe().size());
        s.Set(su.a);
        return s;
      }());
      AttrSet b_plus = f_theory.Closure([&] {
        AttrSet s(db->universe().size());
        s.Set(su.b);
        return s;
      }());
      Tuple bridge(width);
      for (std::size_t c = 0; c < width; ++c) {
        if (a_plus.Test(c) && b_plus.Test(c)) {
          // Lemma 12.1: Q in A+ and B+ forces C <= Q in F, so the
          // violators agree here; prefer t1's value and verify.
          if (t1[c] != t2[c]) {
            return Status::Internal(
                "repair invariant broken: violators disagree on a shared "
                "closure attribute");
          }
          bridge[c] = t1[c];
        } else if (a_plus.Test(c)) {
          bridge[c] = t1[c];
        } else if (b_plus.Test(c)) {
          bridge[c] = t2[c];
        } else {
          bridge[c] = db->symbols().Fresh("_r");
        }
      }
      out.instance.AddTuple(std::move(bridge));
      ++out.added_tuples;
      break;  // re-scan from the first constraint with the new tuple
    }
    if (!violated) {
      // Quiescent: double-check F still holds (the lemma guarantees it).
      PSEM_ASSIGN_OR_RETURN(bool f_ok, SatisfiesAllFds(out.instance,
                                                       norm.fpds));
      if (!f_ok) {
        return Status::Internal("repair broke the FPDs — invariant bug");
      }
      return out;
    }
  }
}

}  // namespace psem
