// NOT-ALL-EQUAL-SAT: the NP-complete problem behind Theorem 11's
// reduction. A clause is NAE-satisfied when its literals take at least one
// true AND at least one false value. Provides a DPLL-style solver, a brute
// force reference, and deterministic random instance generation.

#ifndef PSEM_CONSISTENCY_NAE3SAT_H_
#define PSEM_CONSISTENCY_NAE3SAT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/exec_context.h"
#include "util/status.h"

namespace psem {

/// A literal: variable index (0-based) with a sign.
struct NaeLiteral {
  uint32_t var;
  bool positive;
};

/// A clause of 2 or 3 literals over distinct variables.
using NaeClause = std::vector<NaeLiteral>;

/// A NAE formula.
struct NaeFormula {
  uint32_t num_vars = 0;
  std::vector<NaeClause> clauses;

  /// Parses clauses like "1 2 -3; -1 4 2" (1-based DIMACS-style vars).
  static NaeFormula Parse(const std::string& text);
  std::string ToString() const;

  /// True iff `assignment` NAE-satisfies every clause.
  bool Satisfied(const std::vector<bool>& assignment) const;
};

/// Exhaustive search (reference; use only for small num_vars).
std::optional<std::vector<bool>> NaeBruteForce(const NaeFormula& f);

/// DPLL-style backtracking solver with NAE propagation (a clause with all
/// but one literal fixed to one polarity forces the last one). Exploits
/// complement symmetry by pinning variable 0 to false.
/// `node_budget` bounds the search; returns nullopt-with-exhausted flag via
/// the struct below.
struct NaeSolveResult {
  std::optional<std::vector<bool>> assignment;  ///< set iff satisfiable.
  bool decided = true;    ///< false iff the search stopped early.
  uint64_t nodes = 0;     ///< decision nodes explored.
  /// Why an undecided search stopped: kResourceExhausted for a tripped
  /// node budget or deadline, kCancelled for the cancel token, kInternal
  /// for an injected fault. OK whenever decided. "Undecided: budget" is a
  /// distinct outcome from "unsatisfiable" — callers must branch on
  /// status/decided before reading assignment.
  Status status = Status::OK();
};
/// The effective node cap is min(node_budget, ctx.max_solver_nodes());
/// the ctx deadline/cancel token are polled every ~1024 nodes.
NaeSolveResult NaeSolve(const NaeFormula& f, uint64_t node_budget = UINT64_MAX,
                        const ExecContext& ctx = ExecContext::Unbounded());

/// Random 3-clause formula over n variables with m clauses (distinct vars
/// per clause, signs uniform), deterministic in `seed`.
NaeFormula RandomNae3(uint32_t n, uint32_t m, uint64_t seed);

}  // namespace psem

#endif  // PSEM_CONSISTENCY_NAE3SAT_H_
