// Consistency under the complete atomic data assumption (Section 6.1).
// By Theorem 6b, a database d with FPDs E has a partition interpretation
// satisfying d, E, CAD, EAP iff there is a weak instance w satisfying E_F
// with w[A] = d[A] for every attribute: no new symbols may be invented.
// Deciding this is NP-complete (Theorem 11, by reduction from
// NOT-ALL-EQUAL-3SAT); CadConsistent is an exact backtracking solver and
// ReduceNaeToCad builds the paper's Figure-3 instance family.

#ifndef PSEM_CONSISTENCY_CAD_H_
#define PSEM_CONSISTENCY_CAD_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "consistency/nae3sat.h"
#include "relational/dependency.h"
#include "relational/relation.h"
#include "util/exec_context.h"
#include "util/status.h"

namespace psem {

/// Result of an exact CAD-consistency search.
struct CadResult {
  bool consistent = false;
  bool decided = true;       ///< false iff the search stopped early.
  uint64_t nodes = 0;        ///< backtracking nodes explored.
  /// Why an undecided search stopped (kResourceExhausted for node budget
  /// or deadline, kCancelled, kInternal for an injected fault). OK when
  /// decided — including the decided-inconsistent verdict, which is NOT
  /// an error. Callers reporting outcomes must keep "undecided: budget"
  /// distinct from "inconsistent".
  Status status = Status::OK();
  /// On success: the completed weak instance, one row per database tuple,
  /// columns in universe-id order (width = universe size).
  std::vector<std::vector<ValueId>> weak_instance;
};

/// Decides whether a weak instance w exists with w[A] = d[A] for all A and
/// w |= fds. Per the NP-membership argument of Theorem 11, w needs only
/// one tuple per database tuple, so the search space is the fill-in of the
/// representative rows with symbols already appearing in the respective
/// columns of d. The effective node cap is min(node_budget,
/// ctx.max_solver_nodes()); the deadline/cancel token are polled every
/// ~1024 nodes.
CadResult CadConsistent(const Database& db, const std::vector<Fd>& fds,
                        uint64_t node_budget = UINT64_MAX,
                        const ExecContext& ctx = ExecContext::Unbounded());

/// The Theorem 11 reduction. Builds into `db`/`fds` the database and FPD
/// set whose CAD-consistency is equivalent to NAE-satisfiability of `f`
/// (clauses of size 2 or 3 over distinct variables). Per-variable mirror
/// clauses (x_i OR NOT g_i), (NOT x_i OR g_i) over fresh mirrors g_i are
/// appended automatically; they preserve satisfiability and give every
/// variable both polarities, which the proof's {t1[B_i], t2[B_i]} =
/// {a_i, b_i} argument requires.
struct CadReduction {
  NaeFormula padded;              ///< f plus the mirror clauses.
  std::vector<Fd> fds;            ///< B_i -> A_i and clause FDs.
};
Result<CadReduction> ReduceNaeToCad(const NaeFormula& f, Database* db);

/// Extracts the NAE assignment from a successful CAD search on a reduced
/// instance (Theorem 11's decoding: x_i true iff the first R0-row's B_i
/// cell got value a_i).
Result<std::vector<bool>> DecodeCadAssignment(const Database& db,
                                              const CadReduction& reduction,
                                              const CadResult& result);

}  // namespace psem

#endif  // PSEM_CONSISTENCY_CAD_H_
