// Conjunctive queries with certain-answer semantics. The weak instance
// assumption (Section 4.3) exists to let a fragmented database be queried
// as if the universal relation existed; the standard semantics is: a
// tuple is a *certain answer* iff it appears in the query's result over
// every weak instance. For FD-constrained databases the chased
// representative instance computes this: evaluate the query over its
// rows and keep answers whose cells are all constants.
//
// Query syntax:  ans(X, Z) :- emp(X, Y), dept(Y, Z), mgr(Y, "kim")
// — variables are capitalized identifiers, quoted strings (or lowercase
// identifiers) are constants, the head lists the output variables.

#ifndef PSEM_QUERY_CONJUNCTIVE_H_
#define PSEM_QUERY_CONJUNCTIVE_H_

#include <string>
#include <vector>

#include "chase/representative.h"
#include "relational/dependency.h"
#include "relational/relation.h"
#include "util/status.h"

namespace psem {

/// A term in a query atom: a variable (by index) or a constant symbol.
struct QueryTerm {
  bool is_variable = false;
  uint32_t variable = 0;     ///< index into ConjunctiveQuery::variables
  std::string constant;      ///< valid iff !is_variable
};

/// One body atom: relation name + terms matching its arity.
struct QueryAtom {
  std::string relation;
  std::vector<QueryTerm> terms;
};

/// A conjunctive query.
struct ConjunctiveQuery {
  std::vector<std::string> variables;  ///< all variables, by first use
  std::vector<uint32_t> head;          ///< indices of output variables
  std::vector<QueryAtom> body;

  /// Parses "ans(X, Y) :- r(X, Z), s(Z, Y, \"const\")". Variables start
  /// with an uppercase letter; everything else (identifiers, quoted
  /// strings) is a constant. Every head variable must occur in the body
  /// (safety).
  static Result<ConjunctiveQuery> Parse(const std::string& text);

  std::string ToString() const;
};

/// Evaluates the query over the database's stored relations (closed-world
/// evaluation; no dependency reasoning). Returns one output tuple per
/// satisfying assignment, deduplicated, with columns named after the head
/// variables (attribute names interned into db's universe).
Result<Relation> EvaluateQuery(Database* db, const ConjunctiveQuery& query);

/// Certain answers under the weak instance assumption: the query is
/// evaluated over the chased representative instance (every body atom
/// ranges over ALL rows, matching only cells that resolve to the required
/// constants), and an answer is kept iff its output cells are constants.
/// Fails with Inconsistent when the database has no weak instance for the
/// FDs. Body atoms here range over the universal scheme: each atom names
/// attributes instead of a stored relation —
///   ans(X) :- at(Student = X, Course = "db101")
/// is expressed programmatically via UniversalAtom.
struct UniversalAtom {
  std::vector<std::pair<std::string, QueryTerm>> bindings;  // attr -> term
};
Result<Relation> CertainAnswers(Database* db, const std::vector<Fd>& fds,
                                const std::vector<std::string>& variables,
                                const std::vector<uint32_t>& head,
                                const std::vector<UniversalAtom>& body);

/// Query containment q1 ⊆ q2 (every database's q1-answers are among its
/// q2-answers), decided by the Chandra–Merlin homomorphism theorem:
/// freeze q1's body into its canonical database, evaluate q2 over it, and
/// check that q1's frozen head tuple is among the answers. Head arities
/// must match. NP-complete in general; exact for the small queries this
/// library handles.
Result<bool> QueryContained(const ConjunctiveQuery& q1,
                            const ConjunctiveQuery& q2);

/// Containment both ways.
Result<bool> QueryEquivalent(const ConjunctiveQuery& q1,
                             const ConjunctiveQuery& q2);

}  // namespace psem

#endif  // PSEM_QUERY_CONJUNCTIVE_H_
