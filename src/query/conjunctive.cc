#include "query/conjunctive.h"

#include <cctype>
#include <unordered_map>

#include "util/strings.h"

namespace psem {

namespace {

// Splits "name(t1, t2, ...)" into the name and raw term strings.
Result<std::pair<std::string, std::vector<std::string>>> SplitAtom(
    std::string_view text) {
  std::size_t open = text.find('(');
  std::size_t close = text.rfind(')');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close < open) {
    return Status::InvalidArgument("malformed atom '" + std::string(text) +
                                   "'");
  }
  std::string name(StripAsciiWhitespace(text.substr(0, open)));
  if (!IsIdentifier(name)) {
    return Status::InvalidArgument("bad atom name '" + name + "'");
  }
  std::vector<std::string> terms =
      SplitAndStrip(std::string(text.substr(open + 1, close - open - 1)), ',');
  return std::make_pair(name, terms);
}

bool IsVariableToken(const std::string& t) {
  return !t.empty() && std::isupper(static_cast<unsigned char>(t[0]));
}

// Splits a comma-separated atom list respecting parentheses.
std::vector<std::string> SplitAtoms(std::string_view text) {
  std::vector<std::string> out;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || (text[i] == ',' && depth == 0)) {
      auto piece = StripAsciiWhitespace(text.substr(start, i - start));
      if (!piece.empty()) out.emplace_back(piece);
      start = i + 1;
    } else if (text[i] == '(') {
      ++depth;
    } else if (text[i] == ')') {
      --depth;
    }
  }
  return out;
}

}  // namespace

Result<ConjunctiveQuery> ConjunctiveQuery::Parse(const std::string& text) {
  std::size_t sep = text.find(":-");
  if (sep == std::string::npos) {
    return Status::InvalidArgument("query must contain ':-'");
  }
  ConjunctiveQuery q;
  std::unordered_map<std::string, uint32_t> var_index;
  auto term_of = [&](const std::string& token) -> QueryTerm {
    QueryTerm t;
    if (IsVariableToken(token)) {
      t.is_variable = true;
      auto [it, inserted] =
          var_index.emplace(token, static_cast<uint32_t>(q.variables.size()));
      if (inserted) q.variables.push_back(token);
      t.variable = it->second;
    } else {
      std::string c = token;
      if (c.size() >= 2 && c.front() == '"' && c.back() == '"') {
        c = c.substr(1, c.size() - 2);
      }
      t.constant = c;
    }
    return t;
  };

  // Body first, so head variables can be checked for safety.
  std::vector<QueryAtom> body;
  for (const std::string& atom_text : SplitAtoms(text.substr(sep + 2))) {
    PSEM_ASSIGN_OR_RETURN(auto atom, SplitAtom(atom_text));
    QueryAtom a;
    a.relation = atom.first;
    if (atom.second.empty()) {
      return Status::InvalidArgument("atom '" + a.relation +
                                     "' needs at least one term");
    }
    for (const std::string& t : atom.second) a.terms.push_back(term_of(t));
    body.push_back(std::move(a));
  }
  if (body.empty()) {
    return Status::InvalidArgument("query body must be nonempty");
  }
  q.body = std::move(body);

  PSEM_ASSIGN_OR_RETURN(auto head_atom,
                        SplitAtom(StripAsciiWhitespace(text.substr(0, sep))));
  for (const std::string& t : head_atom.second) {
    if (!IsVariableToken(t)) {
      return Status::InvalidArgument("head terms must be variables, got '" +
                                     t + "'");
    }
    auto it = var_index.find(t);
    if (it == var_index.end()) {
      return Status::InvalidArgument("unsafe head variable '" + t +
                                     "' (not in the body)");
    }
    q.head.push_back(it->second);
  }
  if (q.head.empty()) {
    return Status::InvalidArgument("head must project at least one variable");
  }
  return q;
}

std::string ConjunctiveQuery::ToString() const {
  std::string out = "ans(";
  for (std::size_t i = 0; i < head.size(); ++i) {
    if (i > 0) out += ", ";
    out += variables[head[i]];
  }
  out += ") :- ";
  for (std::size_t i = 0; i < body.size(); ++i) {
    if (i > 0) out += ", ";
    out += body[i].relation + "(";
    for (std::size_t j = 0; j < body[i].terms.size(); ++j) {
      if (j > 0) out += ", ";
      const QueryTerm& t = body[i].terms[j];
      out += t.is_variable ? variables[t.variable] : "\"" + t.constant + "\"";
    }
    out += ")";
  }
  return out;
}

namespace {

constexpr uint32_t kUnbound = UINT32_MAX;

// Generic backtracking joiner. `rows_of(atom)` yields candidate rows;
// `cell(atom, row, pos)` yields comparable cell values; constants are
// pre-resolved to the same value space (or kUnbound when impossible).
struct Joiner {
  const std::vector<std::vector<std::vector<uint32_t>>>& atom_rows;
  const std::vector<std::vector<QueryTerm>>& atom_terms;
  const std::vector<std::vector<uint32_t>>& atom_constants;  // per position
  std::vector<uint32_t> assignment;  // var -> value (kUnbound if free)
  std::vector<std::vector<uint32_t>> results;

  void Dfs(std::size_t atom_idx, const std::vector<uint32_t>& head) {
    if (atom_idx == atom_terms.size()) {
      std::vector<uint32_t> out;
      out.reserve(head.size());
      for (uint32_t v : head) out.push_back(assignment[v]);
      results.push_back(std::move(out));
      return;
    }
    const auto& terms = atom_terms[atom_idx];
    const auto& constants = atom_constants[atom_idx];
    for (const auto& row : atom_rows[atom_idx]) {
      std::vector<std::pair<uint32_t, uint32_t>> bound;  // (var, old)
      bool ok = true;
      for (std::size_t p = 0; p < terms.size() && ok; ++p) {
        uint32_t cell = row[p];
        if (terms[p].is_variable) {
          uint32_t v = terms[p].variable;
          if (assignment[v] == kUnbound) {
            bound.emplace_back(v, kUnbound);
            assignment[v] = cell;
          } else if (assignment[v] != cell) {
            ok = false;
          }
        } else if (constants[p] == kUnbound || constants[p] != cell) {
          ok = false;
        }
      }
      if (ok) Dfs(atom_idx + 1, head);
      for (auto [v, old] : bound) assignment[v] = old;
    }
  }
};

}  // namespace

Result<Relation> EvaluateQuery(Database* db, const ConjunctiveQuery& query) {
  std::vector<std::vector<std::vector<uint32_t>>> atom_rows;
  std::vector<std::vector<QueryTerm>> atom_terms;
  std::vector<std::vector<uint32_t>> atom_constants;
  for (const QueryAtom& atom : query.body) {
    PSEM_ASSIGN_OR_RETURN(std::size_t ri, db->IndexOf(atom.relation));
    const Relation& r = db->relation(ri);
    if (atom.terms.size() != r.arity()) {
      return Status::InvalidArgument(
          "atom " + atom.relation + " has " +
          std::to_string(atom.terms.size()) + " terms, relation arity is " +
          std::to_string(r.arity()));
    }
    std::vector<std::vector<uint32_t>> rows;
    for (const Tuple& t : r.rows()) {
      rows.emplace_back(t.begin(), t.end());
    }
    atom_rows.push_back(std::move(rows));
    atom_terms.push_back(atom.terms);
    std::vector<uint32_t> constants(atom.terms.size(), kUnbound);
    for (std::size_t p = 0; p < atom.terms.size(); ++p) {
      if (!atom.terms[p].is_variable) {
        // Unknown constants simply never match.
        auto known = db->symbols().Intern(atom.terms[p].constant);
        constants[p] = known;
      }
    }
    atom_constants.push_back(std::move(constants));
  }

  Joiner joiner{atom_rows, atom_terms, atom_constants,
                std::vector<uint32_t>(query.variables.size(), kUnbound),
                {}};
  joiner.Dfs(0, query.head);

  RelationSchema schema;
  schema.name = "answers";
  for (uint32_t v : query.head) {
    schema.attrs.push_back(db->universe().Intern(query.variables[v]));
  }
  Relation out(std::move(schema));
  for (const auto& row : joiner.results) {
    out.AddTuple(Tuple(row.begin(), row.end()));
  }
  return out;
}

Result<Relation> CertainAnswers(Database* db, const std::vector<Fd>& fds,
                                const std::vector<std::string>& variables,
                                const std::vector<uint32_t>& head,
                                const std::vector<UniversalAtom>& body) {
  // Chase the representative tableau; we need per-(row, attr) value
  // classes and per-class constants, which the tableau exposes directly.
  std::size_t width = db->universe().size();
  for (const Fd& fd : fds) {
    width = std::max(width, fd.lhs.size());
    width = std::max(width, fd.rhs.size());
  }
  Tableau t = Tableau::Representative(*db, width);
  ChaseResult chase = ChaseWithFds(&t, fds);
  if (!chase.consistent) {
    return Status::Inconsistent("no weak instance for the FDs");
  }

  std::vector<std::vector<std::vector<uint32_t>>> atom_rows;
  std::vector<std::vector<QueryTerm>> atom_terms;
  std::vector<std::vector<uint32_t>> atom_constants;
  for (const UniversalAtom& atom : body) {
    std::vector<QueryTerm> terms;
    std::vector<uint32_t> constants;
    std::vector<std::size_t> cols;
    for (const auto& [attr, term] : atom.bindings) {
      PSEM_ASSIGN_OR_RETURN(RelAttrId id, db->universe().Require(attr));
      cols.push_back(id);
      terms.push_back(term);
      if (!term.is_variable) {
        auto known = db->symbols().Intern(term.constant);
        constants.push_back(known);
      } else {
        constants.push_back(kUnbound);
      }
    }
    std::vector<std::vector<uint32_t>> rows;
    for (std::size_t r = 0; r < t.num_rows(); ++r) {
      std::vector<uint32_t> row;
      row.reserve(cols.size());
      for (std::size_t p = 0; p < cols.size(); ++p) {
        uint32_t cls = t.Resolve(r, cols[p]);
        if (!terms[p].is_variable) {
          // Constants must match the class's constant; encode the class
          // by its constant when it has one, else an unmatchable value.
          uint32_t constant = t.ConstantOf(cls);
          row.push_back(constant == Tableau::kNoConstant ? kUnbound - 1
                                                         : constant);
        } else {
          row.push_back(cls);  // variables join on value classes
        }
      }
      rows.push_back(std::move(row));
    }
    atom_rows.push_back(std::move(rows));
    atom_terms.push_back(std::move(terms));
    atom_constants.push_back(std::move(constants));
  }

  Joiner joiner{atom_rows, atom_terms, atom_constants,
                std::vector<uint32_t>(variables.size(), kUnbound),
                {}};
  joiner.Dfs(0, head);

  RelationSchema schema;
  schema.name = "certain";
  for (uint32_t v : head) {
    schema.attrs.push_back(db->universe().Intern(variables[v]));
  }
  Relation out(std::move(schema));
  for (const auto& row : joiner.results) {
    // Keep only total answers: every output class carries a constant.
    Tuple answer;
    bool total = true;
    for (uint32_t cls : row) {
      uint32_t constant = t.ConstantOf(cls);
      if (constant == Tableau::kNoConstant) {
        total = false;
        break;
      }
      answer.push_back(constant);
    }
    if (total) out.AddTuple(std::move(answer));
  }
  return out;
}

Result<bool> QueryContained(const ConjunctiveQuery& q1,
                            const ConjunctiveQuery& q2) {
  if (q1.head.size() != q2.head.size()) {
    return Status::InvalidArgument("head arities differ");
  }
  // Freeze q1: variables become fresh constants "_v<i>".
  auto frozen_symbol = [&](const QueryTerm& t) {
    return t.is_variable ? "_v" + std::to_string(t.variable) : t.constant;
  };
  Database canon;
  for (const QueryAtom& atom : q1.body) {
    std::size_t ri;
    auto existing = canon.IndexOf(atom.relation);
    if (existing.ok()) {
      ri = *existing;
      if (canon.relation(ri).arity() != atom.terms.size()) {
        return Status::InvalidArgument("relation '" + atom.relation +
                                       "' used with two arities in q1");
      }
    } else {
      std::vector<std::string> attrs;
      for (std::size_t p = 0; p < atom.terms.size(); ++p) {
        attrs.push_back(atom.relation + "_" + std::to_string(p));
      }
      ri = canon.AddRelation(atom.relation, attrs);
    }
    std::vector<std::string> row;
    for (const QueryTerm& t : atom.terms) row.push_back(frozen_symbol(t));
    canon.relation(ri).AddRow(&canon.symbols(), row);
  }
  // Evaluate q2 over the canonical database. A q2 atom over a relation q1
  // never mentions can never match: containment fails (q1's canonical
  // database is a witness with a q1-answer and no q2-answer).
  auto answers = EvaluateQuery(&canon, q2);
  if (!answers.ok()) {
    if (answers.status().code() == StatusCode::kNotFound) return false;
    return answers.status();
  }
  // The frozen head tuple of q1.
  Tuple frozen_head;
  for (uint32_t v : q1.head) {
    QueryTerm t;
    t.is_variable = true;
    t.variable = v;
    frozen_head.push_back(canon.symbols().Intern(frozen_symbol(t)));
  }
  return answers->Contains(frozen_head);
}

Result<bool> QueryEquivalent(const ConjunctiveQuery& q1,
                             const ConjunctiveQuery& q2) {
  PSEM_ASSIGN_OR_RETURN(bool fwd, QueryContained(q1, q2));
  if (!fwd) return false;
  return QueryContained(q2, q1);
}

}  // namespace psem
