// psem — Partition Semantics for Relations.
//
// Umbrella header: include this to get the full public API of the library
// reproducing Cosmadakis, Kanellakis & Spyratos, "Partition Semantics for
// Relations" (PODS 1985 / JCSS 33, 1986).
//
// Layering (see DESIGN.md):
//   util        — Status/Result, bitsets, union-find, interners, RNG
//   relational  — schemas, relations, databases, algebra, FDs, MVDs
//   lattice     — partition expressions, Whitman deciders, finite lattices
//   partition   — partitions, interpretations, canonical constructions
//   core        — PdTheory, Algorithm ALG, FD theory, FPD bridge,
//                 Section 6.2 normalization
//   chase       — tableaux and the Honeyman weak-instance test
//   graph       — undirected graphs and the Example-e encoding
//   consistency — Theorem 12 polynomial test, Theorem 11 CAD machinery

#ifndef PSEM_PSEM_H_
#define PSEM_PSEM_H_

#include "chase/representative.h"
#include "chase/tableau.h"
#include "consistency/cad.h"
#include "consistency/nae3sat.h"
#include "consistency/pd_consistency.h"
#include "consistency/repair.h"
#include "core/armstrong.h"
#include "core/csv.h"
#include "core/decompose.h"
#include "core/dot_export.h"
#include "core/fd_theory.h"
#include "core/fpd.h"
#include "core/implication.h"
#include "core/io.h"
#include "core/model_finder.h"
#include "core/normalize.h"
#include "core/proof.h"
#include "core/semigroup.h"
#include "core/snapshot.h"
#include "core/theory.h"
#include "discovery/discovery.h"
#include "graph/graph.h"
#include "query/conjunctive.h"
#include "lattice/congruence.h"
#include "lattice/expr.h"
#include "lattice/finite_lattice.h"
#include "lattice/lattice_analysis.h"
#include "lattice/rewrite.h"
#include "lattice/simplify.h"
#include "lattice/whitman.h"
#include "partition/canonical.h"
#include "partition/interpretation.h"
#include "partition/partition.h"
#include "partition/partition_lattice.h"
#include "relational/algebra.h"
#include "relational/dependency.h"
#include "relational/relation.h"
#include "relational/universe.h"

#endif  // PSEM_PSEM_H_
