#include "chase/tableau.h"

#include <algorithm>
#include <unordered_map>

#include "partition/dense.h"
#include "util/failpoint.h"

namespace psem {

Tableau Tableau::Representative(const Database& db,
                                std::size_t universe_width) {
  Tableau t;
  t.width_ = universe_width;

  // Constants: reuse the database's ValueIds densely [0, #symbols).
  t.num_constants_ = db.symbols().size();
  uint32_t next_value = static_cast<uint32_t>(t.num_constants_);

  std::size_t total_rows = 0;
  for (std::size_t ri = 0; ri < db.num_relations(); ++ri) {
    total_rows += db.relation(ri).size();
  }
  t.rows_.reserve(total_rows);
  for (std::size_t ri = 0; ri < db.num_relations(); ++ri) {
    const Relation& r = db.relation(ri);
    for (const Tuple& tup : r.rows()) {
      std::vector<uint32_t> row(universe_width, 0);
      std::vector<bool> filled(universe_width, false);
      for (std::size_t c = 0; c < r.arity(); ++c) {
        RelAttrId a = r.schema().attrs[c];
        row[a] = tup[c];  // constant id
        filled[a] = true;
      }
      for (std::size_t a = 0; a < universe_width; ++a) {
        if (!filled[a]) row[a] = next_value++;  // fresh labeled null
      }
      t.rows_.push_back(std::move(row));
    }
  }
  t.classes_ = UnionFind(next_value);
  t.class_constant_.assign(next_value, kNoConstant);
  for (uint32_t v = 0; v < t.num_constants_; ++v) t.class_constant_[v] = v;
  return t;
}

Status Tableau::EquateCells(std::size_t row1, std::size_t col1,
                            std::size_t row2, std::size_t col2) {
  uint32_t a = classes_.Find(rows_[row1][col1]);
  uint32_t b = classes_.Find(rows_[row2][col2]);
  if (a == b) return Status::OK();
  uint32_t ca = class_constant_[a];
  uint32_t cb = class_constant_[b];
  if (ca != kNoConstant && cb != kNoConstant && ca != cb) {
    return Status::Inconsistent("chase equates distinct constants");
  }
  classes_.Union(a, b);
  uint32_t root = classes_.Find(a);
  class_constant_[root] = (ca != kNoConstant) ? ca : cb;
  return Status::OK();
}

std::string Tableau::ToString(const Database& db,
                              const Universe& universe) const {
  std::string out;
  for (std::size_t a = 0; a < width_; ++a) {
    out += (a < universe.size() ? universe.NameOf(static_cast<RelAttrId>(a))
                                : "?");
    out += "\t";
  }
  out += "\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    for (std::size_t c = 0; c < width_; ++c) {
      uint32_t v = classes_.Find(rows_[r][c]);
      uint32_t k = class_constant_[v];
      if (k != kNoConstant) {
        out += db.symbols().NameOf(k);
      } else {
        out += "_n" + std::to_string(v);
      }
      out += "\t";
    }
    out += "\n";
  }
  return out;
}

ChaseResult ChaseWithFds(Tableau* tableau, const std::vector<Fd>& fds,
                         const ExecContext& ctx) {
  ChaseResult result;
  const bool governed = !ctx.unbounded();
  const std::size_t n = tableau->num_rows();
  // Row grouping runs on the dense kernels: the rows agreeing on X are
  // exactly the blocks of the one-block partition refined by each X
  // column's resolved value. Scratch is hoisted so rounds allocate
  // nothing once the buffers reach their high-water marks.
  DenseOps ops;
  DensePartition ones, px, pxt;
  ones.labels.assign(n, 0);
  ones.num_blocks = n == 0 ? 0 : 1;
  ones.present = static_cast<uint32_t>(n);
  std::vector<uint32_t> first;
  bool changed = true;
  while (changed) {
    changed = false;
    ++result.rounds;
    if (PSEM_FAILPOINT(failpoints::kChaseRound)) {
      result.status =
          Status::Internal("injected chase-round fault (psem.chase.round)");
      return result;
    }
    if (governed) {
      // An abort mid-chase is harmless: every merge already applied was
      // forced by an FD, so the partially chased tableau is a sound
      // intermediate state of the same confluent chase.
      Status st = ctx.CheckRounds(result.rounds);
      if (st.ok()) st = ctx.Check();
      if (!st.ok()) {
        result.status = std::move(st);
        return result;
      }
    }
    for (const Fd& fd : fds) {
      if (governed) {
        Status st = ctx.Check();
        if (!st.ok()) {
          result.status = std::move(st);
          return result;
        }
      }
      // Columns of the FD (ids are universe ids = tableau columns).
      std::vector<std::size_t> xcols, ycols;
      fd.lhs.ForEach([&](std::size_t a) {
        if (a < tableau->width()) xcols.push_back(a);
      });
      fd.rhs.ForEach([&](std::size_t a) {
        if (a < tableau->width()) ycols.push_back(a);
      });
      if (xcols.empty()) continue;
      // Group rows by resolved X projection: refine the one-block
      // partition by each X column. Merges applied below only ever unite
      // value classes, so rows grouped together stay X-equal; newly equal
      // projections are caught by the next round of the fixpoint.
      const DensePartition* cur = &ones;
      for (std::size_t c : xcols) {
        DensePartition* next = (cur == &px) ? &pxt : &px;
        ops.RefineBy(
            *cur,
            [&](std::size_t r) {
              return tableau->Resolve(static_cast<std::size_t>(r), c);
            },
            next);
        cur = next;
      }
      // Equate every row's Y cells with its group's first row (the chase
      // is confluent, so chaining to the first row reaches the same
      // fixpoint as the pairwise sweep).
      first.assign(cur->num_blocks, UINT32_MAX);
      for (uint32_t r = 0; r < n; ++r) {
        uint32_t l = cur->labels[r];
        if (first[l] == UINT32_MAX) {
          first[l] = r;
          continue;
        }
        uint32_t f = first[l];
        for (std::size_t c : ycols) {
          if (tableau->Resolve(f, c) == tableau->Resolve(r, c)) continue;
          Status st = tableau->EquateCells(f, c, r, c);
          ++result.merges;
          changed = true;
          if (!st.ok()) {
            result.consistent = false;
            return result;
          }
        }
      }
    }
  }
  result.consistent = true;
  return result;
}

namespace {
std::size_t EffectiveWidth(const Database& db, const std::vector<Fd>& fds,
                           std::size_t universe_width) {
  std::size_t width = universe_width == 0 ? db.universe().size()
                                          : universe_width;
  // FDs may reference attributes beyond db's universe (fresh normalization
  // attributes); make sure the tableau covers them.
  for (const Fd& fd : fds) {
    width = std::max(width, fd.lhs.size());
    width = std::max(width, fd.rhs.size());
  }
  return width;
}
}  // namespace

bool WeakInstanceConsistent(const Database& db, const std::vector<Fd>& fds,
                            std::size_t universe_width) {
  Tableau t = Tableau::Representative(db, EffectiveWidth(db, fds,
                                                         universe_width));
  return ChaseWithFds(&t, fds).consistent;
}

Result<bool> WeakInstanceConsistentChecked(const Database& db,
                                           const std::vector<Fd>& fds,
                                           std::size_t universe_width,
                                           const ExecContext& ctx) {
  PSEM_RETURN_IF_ERROR(ctx.Check());
  Tableau t = Tableau::Representative(db, EffectiveWidth(db, fds,
                                                         universe_width));
  ChaseResult r = ChaseWithFds(&t, fds, ctx);
  PSEM_RETURN_IF_ERROR(r.status);
  return r.consistent;
}

}  // namespace psem
