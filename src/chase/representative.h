// Query answering under the weak instance assumption. The chased
// representative tableau is the canonical witness of consistency
// (Honeyman [19]); its rows whose cells on an attribute set X all resolve
// to constants form the X-total projection — the standard certain-answer
// semantics for querying a fragmented database as if the universal weak
// instance existed. This is the practical payoff of Section 4.3's
// equivalence between partition interpretations and weak instances.

#ifndef PSEM_CHASE_REPRESENTATIVE_H_
#define PSEM_CHASE_REPRESENTATIVE_H_

#include <string>
#include <vector>

#include "chase/tableau.h"
#include "relational/dependency.h"
#include "relational/relation.h"
#include "util/status.h"

namespace psem {

/// The chased representative instance of a database under a set of FDs.
class RepresentativeInstance {
 public:
  /// Builds and chases. Fails with Inconsistent if the database has no
  /// weak instance satisfying the FDs.
  static Result<RepresentativeInstance> Build(const Database& db,
                                              const std::vector<Fd>& fds);

  /// The X-total projection: one tuple per tableau row whose cells under
  /// every attribute of `attrs` resolve to constants, projected on those
  /// attributes, deduplicated. These are facts certain in every weak
  /// instance (each weak instance is a homomorphic image of the chased
  /// tableau).
  Result<Relation> TotalProjection(const std::vector<std::string>& attr_names,
                                   const std::string& result_name = "window");

  /// Number of tableau rows.
  std::size_t num_rows() const { return tableau_.num_rows(); }

  /// Render the chased tableau (constants + labeled nulls).
  std::string ToString() const;

  const ChaseResult& chase_stats() const { return chase_; }

 private:
  RepresentativeInstance(const Database* db, Tableau tableau, ChaseResult chase)
      : db_(db), tableau_(std::move(tableau)), chase_(chase) {}

  const Database* db_;
  Tableau tableau_;
  ChaseResult chase_;
};

}  // namespace psem

#endif  // PSEM_CHASE_REPRESENTATIVE_H_
