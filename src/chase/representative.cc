#include "chase/representative.h"

namespace psem {

Result<RepresentativeInstance> RepresentativeInstance::Build(
    const Database& db, const std::vector<Fd>& fds) {
  std::size_t width = db.universe().size();
  for (const Fd& fd : fds) {
    width = std::max(width, fd.lhs.size());
    width = std::max(width, fd.rhs.size());
  }
  Tableau t = Tableau::Representative(db, width);
  ChaseResult chase = ChaseWithFds(&t, fds);
  if (!chase.consistent) {
    return Status::Inconsistent(
        "database has no weak instance satisfying the FDs");
  }
  return RepresentativeInstance(&db, std::move(t), chase);
}

Result<Relation> RepresentativeInstance::TotalProjection(
    const std::vector<std::string>& attr_names,
    const std::string& result_name) {
  RelationSchema schema;
  schema.name = result_name;
  std::vector<std::size_t> cols;
  for (const std::string& name : attr_names) {
    PSEM_ASSIGN_OR_RETURN(RelAttrId id, db_->universe().Require(name));
    if (id >= tableau_.width()) {
      return Status::OutOfRange("attribute '" + name +
                                "' outside the tableau");
    }
    schema.attrs.push_back(id);
    cols.push_back(id);
  }
  Relation out(std::move(schema));
  for (std::size_t r = 0; r < tableau_.num_rows(); ++r) {
    Tuple t;
    t.reserve(cols.size());
    bool total = true;
    for (std::size_t c : cols) {
      uint32_t cls = tableau_.Resolve(r, c);
      uint32_t constant = tableau_.ConstantOf(cls);
      if (constant == Tableau::kNoConstant) {
        total = false;
        break;
      }
      t.push_back(constant);
    }
    if (total) out.AddTuple(std::move(t));
  }
  return out;
}

std::string RepresentativeInstance::ToString() const {
  return tableau_.ToString(*db_, db_->universe());
}

}  // namespace psem
