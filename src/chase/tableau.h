// Tableaux with labeled nulls and the Honeyman chase [19]. A database d
// over universe U is consistent with a set of FDs under the weak instance
// assumption iff the chase of its representative tableau (each tuple
// padded with fresh nulls to full width) equates no two distinct
// constants. Theorems 6 and 7 make this the decision procedure for
// partition-interpretation consistency as well.

#ifndef PSEM_CHASE_TABLEAU_H_
#define PSEM_CHASE_TABLEAU_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relational/dependency.h"
#include "relational/relation.h"
#include "util/exec_context.h"
#include "util/status.h"
#include "util/union_find.h"

namespace psem {

/// A tableau cell value: either a database constant or a labeled null.
/// Values live in one dense id space; ids below num_constants() are
/// constants (indexing the owning database's SymbolTable), the rest nulls.
class Tableau {
 public:
  /// Builds the representative tableau of `db` over the attribute id
  /// range [0, universe_width): one row per database tuple, known cells
  /// copied, all others fresh labeled nulls. `universe_width` may exceed
  /// the attributes present in db (e.g. the fresh attributes introduced by
  /// PD normalization).
  static Tableau Representative(const Database& db, std::size_t universe_width);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t width() const { return width_; }

  /// Raw (pre-chase) cell id.
  uint32_t CellId(std::size_t row, std::size_t col) const {
    return rows_[row][col];
  }

  /// Canonical class representative of a cell after any number of merges.
  uint32_t Resolve(std::size_t row, std::size_t col) const {
    return classes_.Find(rows_[row][col]);
  }

  /// The constant in a value class, or kNoConstant.
  static constexpr uint32_t kNoConstant = UINT32_MAX;
  uint32_t ConstantOf(uint32_t value_class) const {
    return class_constant_[classes_.Find(value_class)];
  }

  bool IsConstant(uint32_t value) const { return value < num_constants_; }
  std::size_t num_constants() const { return num_constants_; }

  /// Equates two cells' value classes. Returns InconsistentError if that
  /// would identify two distinct constants (the chase failure condition).
  Status EquateCells(std::size_t row1, std::size_t col1, std::size_t row2,
                     std::size_t col2);

  /// Renders using the database's symbol table for constants and _nK for
  /// nulls.
  std::string ToString(const Database& db, const Universe& universe) const;

 private:
  friend class ChaseRunner;

  std::size_t width_ = 0;
  std::size_t num_constants_ = 0;
  std::vector<std::vector<uint32_t>> rows_;
  mutable UnionFind classes_;
  std::vector<uint32_t> class_constant_;  // per class root (lazily moved)
};

/// Outcome of a chase run.
struct ChaseResult {
  bool consistent = false;
  std::size_t rounds = 0;  ///< full passes over the FD set.
  std::size_t merges = 0;  ///< class unions performed.
  /// OK when the chase ran to its fixpoint (or failed on a genuine
  /// constant clash — that is the Inconsistent *verdict*, not an error).
  /// Non-OK (kResourceExhausted / kCancelled / injected fault) means the
  /// run stopped early: `consistent` is then meaningless, but rounds and
  /// merges reflect the partial progress, and the tableau holds only
  /// sound merges (each forced by an FD), so re-chasing it with a fresh
  /// context converges to the same verdict as a cold chase.
  Status status = Status::OK();
};

/// Chases `tableau` with `fds` (FDs over the same universe ids) to a
/// fixpoint. Returns consistent=false iff two distinct constants were
/// equated. The ctx's round budget, deadline, and cancel token are
/// checked once per round and per FD; see ChaseResult::status.
ChaseResult ChaseWithFds(Tableau* tableau, const std::vector<Fd>& fds,
                         const ExecContext& ctx = ExecContext::Unbounded());

/// Honeyman's test: d is consistent with `fds` under the weak instance
/// assumption iff the chase of the representative tableau succeeds.
/// `universe_width` overrides the tableau width (0 = db's universe size);
/// pass the extended universe's size when the FDs come from PD
/// normalization.
bool WeakInstanceConsistent(const Database& db, const std::vector<Fd>& fds,
                            std::size_t universe_width = 0);

/// Governed Honeyman test: verdict, or the ctx/fail-point Status that
/// stopped the chase early.
Result<bool> WeakInstanceConsistentChecked(const Database& db,
                                           const std::vector<Fd>& fds,
                                           std::size_t universe_width,
                                           const ExecContext& ctx);

}  // namespace psem

#endif  // PSEM_CHASE_TABLEAU_H_
