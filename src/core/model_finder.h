/// @file model_finder.h
/// @brief Bounded countermodel search for non-implied PDs.

// Bounded model finding for partition dependencies. Theorem 8 makes PD
// implication equivalent to validity over finite lattices, and every
// finite lattice embeds into a finite partition lattice [Pudlak & Tuma],
// so non-implication is always witnessed by a finite partition
// interpretation. This module searches the partition lattices Pi_k of
// small populations (EAP interpretations by construction) for a model of
// E violating a query — the "show me why not" companion to Algorithm ALG
// and the proof extractor.

#ifndef PSEM_CORE_MODEL_FINDER_H_
#define PSEM_CORE_MODEL_FINDER_H_

#include <optional>
#include <string>
#include <vector>

#include "lattice/expr.h"
#include "partition/interpretation.h"
#include "util/status.h"

namespace psem {

/// A found countermodel: an EAP partition interpretation over population
/// {0..population_size-1} satisfying every PD of E and violating `query`.
struct CounterModel {
  PartitionInterpretation interpretation;
  std::size_t population_size = 0;
  /// The attribute names assigned, in arena order.
  std::vector<std::string> attributes;
};

/// Searches populations of size 2..max_population for a countermodel to
/// "E implies query". Returns nullopt if none exists within the bound
/// (which, for an actually-implied query, is every bound). The search is
/// exhaustive per population size: every assignment of partitions of [k]
/// to the attributes occurring in E and the query, with constraint
/// propagation (each PD is checked as soon as its attributes are all
/// assigned).
///
/// Cost grows as Bell(k)^#attrs; practical for max_population <= 4-5 and
/// a handful of attributes — exactly the regime where counterexamples to
/// plausible-but-wrong PDs live.
std::optional<CounterModel> FindCounterModel(const ExprArena& arena,
                                             const std::vector<Pd>& e,
                                             const Pd& query,
                                             std::size_t max_population = 4);

/// Convenience: searches for a model of E alone (violating nothing) —
/// i.e. a satisfiability witness over a bounded population.
std::optional<CounterModel> FindModel(const ExprArena& arena,
                                      const std::vector<Pd>& e,
                                      std::size_t max_population = 4);

}  // namespace psem

#endif  // PSEM_CORE_MODEL_FINDER_H_
