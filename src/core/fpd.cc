#include "core/fpd.h"

#include <algorithm>
#include <set>

namespace psem {

namespace {

// Product of the attribute set's names, in universe-id order.
ExprId ProductOfSet(const Universe& universe, ExprArena* arena,
                    const AttrSet& s) {
  std::vector<ExprId> parts;
  s.ForEach([&](std::size_t a) {
    parts.push_back(arena->Attr(universe.NameOf(static_cast<RelAttrId>(a))));
  });
  return arena->ProductOf(parts);
}

}  // namespace

Pd FdToFpd(const Universe& universe, ExprArena* arena, const Fd& fd) {
  ExprId x = ProductOfSet(universe, arena, fd.lhs);
  ExprId y = ProductOfSet(universe, arena, fd.rhs);
  return Pd::Leq(x, y);
}

std::vector<Pd> FdsToFpds(const Universe& universe, ExprArena* arena,
                          const std::vector<Fd>& fds) {
  std::vector<Pd> out;
  out.reserve(fds.size());
  for (const Fd& fd : fds) out.push_back(FdToFpd(universe, arena, fd));
  return out;
}

std::vector<Pd> FpdSpellings(const Universe& universe, ExprArena* arena,
                             const Fd& fd) {
  ExprId x = ProductOfSet(universe, arena, fd.lhs);
  ExprId y = ProductOfSet(universe, arena, fd.rhs);
  return {
      Pd::Eq(x, arena->Product(x, y)),  // X = X * Y
      Pd::Eq(y, arena->Sum(y, x)),      // Y = Y + X
      Pd::Leq(x, y),                    // X <= Y
  };
}

namespace {

// If `e` is a pure product of attributes, returns their ids (interning
// names into the universe); otherwise nullopt.
std::optional<AttrSet> AsAttrProduct(const ExprArena& arena,
                                     Universe* universe, ExprId e) {
  std::vector<ExprId> stack{e};
  std::vector<std::string> names;
  while (!stack.empty()) {
    ExprId cur = stack.back();
    stack.pop_back();
    switch (arena.KindOf(cur)) {
      case ExprKind::kAttr:
        names.push_back(arena.AttrName(arena.AttrOf(cur)));
        break;
      case ExprKind::kProduct:
        // Right first so the left factor pops (and interns) first.
        stack.push_back(arena.RhsOf(cur));
        stack.push_back(arena.LhsOf(cur));
        break;
      case ExprKind::kSum:
        return std::nullopt;
    }
  }
  return universe->MakeSet(names);
}

}  // namespace

std::optional<Fd> FpdToFd(const ExprArena& arena, Universe* universe,
                          const Pd& pd) {
  auto lhs = AsAttrProduct(arena, universe, pd.lhs);
  if (!lhs) return std::nullopt;
  if (!pd.is_equation) {
    auto rhs = AsAttrProduct(arena, universe, pd.rhs);
    if (!rhs) return std::nullopt;
    // X <= Y  ~  X -> Y.
    std::size_t n = universe->size();
    AttrSet x(n), y(n);
    lhs->ForEach([&](std::size_t i) { x.Set(i); });
    rhs->ForEach([&](std::size_t i) { y.Set(i); });
    return Fd{x, y};
  }
  // Equation: accept X = X*Y where rhs's attribute set contains lhs's.
  auto rhs = AsAttrProduct(arena, universe, pd.rhs);
  if (!rhs) return std::nullopt;
  std::size_t n = universe->size();
  AttrSet x(n), xy(n);
  lhs->ForEach([&](std::size_t i) { x.Set(i); });
  rhs->ForEach([&](std::size_t i) { xy.Set(i); });
  if (!x.IsSubsetOf(xy)) return std::nullopt;
  AttrSet y = xy;
  y.SubtractWith(x);
  if (!y.Any()) return std::nullopt;
  return Fd{x, y};
}

}  // namespace psem
