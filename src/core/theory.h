/// @file theory.h
/// @brief PdTheory, the library facade for PD reasoning.

// PdTheory: the library's main facade. Owns an expression arena and a set
// of partition dependencies; answers implication queries (Algorithm ALG,
// Theorem 9), identity queries (Whitman rules, Theorem 10), and
// satisfaction queries against relations, interpretations, and finite
// lattices.

#ifndef PSEM_CORE_THEORY_H_
#define PSEM_CORE_THEORY_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/implication.h"
#include "core/model_finder.h"
#include "core/proof.h"
#include "lattice/expr.h"
#include "lattice/whitman.h"
#include "partition/canonical.h"
#include "relational/relation.h"
#include "util/status.h"

namespace psem {

/// A set E of partition dependencies with an inference engine.
///
/// Usage:
///   PdTheory t;
///   t.AddParsed("A = A * B");        // the FPD for A -> B
///   t.AddParsed("C = A + B");        // connectivity
///   t.ImpliesParsed("A <= C");       // -> true
class PdTheory {
 public:
  PdTheory() : arena_(std::make_unique<ExprArena>()) {}

  ExprArena& arena() { return *arena_; }
  const ExprArena& arena() const { return *arena_; }

  /// Adds a PD; invalidates the cached engine.
  void Add(const Pd& pd) {
    pds_.push_back(pd);
    engine_.reset();
  }

  /// Parses and adds "e = e'" or "e <= e'" (see ExprArena::ParsePd).
  Status AddParsed(std::string_view text);

  const std::vector<Pd>& pds() const { return pds_; }

  /// Engine tuning (closure parallelism, query-cache size). Takes effect
  /// on the next engine (re)build; call before the first query for full
  /// effect.
  void SetEngineOptions(const EngineOptions& options) {
    engine_options_ = options;
    engine_.reset();
  }

  /// E |= query over lattices = over finite lattices = over relations =
  /// over finite relations (Theorem 8), decided in polynomial time
  /// (Theorem 9).
  bool Implies(const Pd& query);

  /// Answers a whole batch of queries against one shared closure (new
  /// subexpressions are added once, duplicates resolve via the engine's
  /// LRU cache). out[i] corresponds to queries[i].
  std::vector<bool> BatchImplies(std::span<const Pd> queries);

  /// Parses every query, then calls BatchImplies.
  Result<std::vector<bool>> BatchImpliesParsed(
      std::span<const std::string> texts);

  /// Parses the query and calls Implies.
  Result<bool> ImpliesParsed(std::string_view text);

  /// Two PDs are equivalent under E iff each is implied when the other is
  /// added. This convenience checks E |= a <-> E |= b symmetric closure:
  /// (E + a |= b) and (E + b |= a).
  bool Equivalent(const Pd& a, const Pd& b);

  /// True iff `pd` holds in every lattice / interpretation / relation
  /// outright (E plays no role): the logspace-recognizable identity
  /// fragment of Theorem 10.
  bool IsIdentity(const Pd& pd) const;

  /// Every relation satisfying E satisfies the recorded PDs; checks the
  /// given relation against all of E (Definition 7).
  Result<bool> SatisfiedBy(const Database& db, const Relation& r) const;

  /// A checkable derivation of `query` from E (Section 5.2's rules), or
  /// NotFound when not implied. Slower than Implies; use for
  /// explanations.
  Result<Proof> Explain(const Pd& query);

  /// Renders Explain's output ("1. A <= B [hypothesis E1] ...").
  Result<std::string> ExplainText(std::string_view query_text);

  /// A small partition interpretation satisfying E and violating `query`
  /// (nullopt if none exists with population <= max_population; for an
  /// implied query, none ever exists).
  std::optional<CounterModel> FindCounterexample(
      const Pd& query, std::size_t max_population = 4) const;

  /// Access to the (lazily built) ALG engine, e.g. for stats.
  PdImplicationEngine& engine();

 private:
  std::unique_ptr<ExprArena> arena_;
  std::vector<Pd> pds_;
  EngineOptions engine_options_;
  std::unique_ptr<PdImplicationEngine> engine_;
};

}  // namespace psem

#endif  // PSEM_CORE_THEORY_H_
