/// @file fpd.h
/// @brief The FD <-> FPD correspondence of Section 4.1.

// The FD <-> FPD correspondence of Section 4.1 and Example f. A
// functional partition dependency (FPD) is a PD of the form X = X * Y
// (equivalently Y = Y + X, equivalently X <= Y in the lattice order); by
// Theorem 3 it is the exact partition-semantic counterpart of the FD
// X -> Y: for every relation r, r |= X -> Y iff I(r) |= X = X * Y.

#ifndef PSEM_CORE_FPD_H_
#define PSEM_CORE_FPD_H_

#include <optional>
#include <vector>

#include "lattice/expr.h"
#include "relational/dependency.h"
#include "relational/universe.h"
#include "util/status.h"

namespace psem {

/// The FPD X <= Y (i.e. the equation X = X * Y) for the FD X -> Y.
/// Attribute sets become left-nested products in universe-name order.
Pd FdToFpd(const Universe& universe, ExprArena* arena, const Fd& fd);

/// Encodes a whole FD set.
std::vector<Pd> FdsToFpds(const Universe& universe, ExprArena* arena,
                          const std::vector<Fd>& fds);

/// The three equivalent spellings of an FPD (Section 3.2): given the FD
/// X -> Y, returns {X = X*Y, Y = Y+X, X <= Y} for testing their mutual
/// equivalence.
std::vector<Pd> FpdSpellings(const Universe& universe, ExprArena* arena,
                             const Fd& fd);

/// If `pd` is syntactically an FPD — a `<=` between two pure products of
/// attributes, or an equation X = X*Y with X, Y pure attribute products —
/// returns the corresponding FD over `universe` (attributes are interned
/// by name). Otherwise nullopt.
std::optional<Fd> FpdToFd(const ExprArena& arena, Universe* universe,
                          const Pd& pd);

}  // namespace psem

#endif  // PSEM_CORE_FPD_H_
