#include "core/normalize.h"

#include <unordered_map>

#include "core/implication.h"

namespace psem {

namespace {

// Flattening context: assigns each subexpression an attribute of the
// extended universe, emitting defining dependencies as it goes.
class Flattener {
 public:
  Flattener(const ExprArena& arena, Universe* universe, ExprArena* out_arena)
      : arena_(arena), universe_(universe), out_arena_(out_arena) {}

  /// Attribute (extended-universe id) denoting subexpression `e`.
  RelAttrId AttrFor(ExprId e) {
    auto it = memo_.find(e);
    if (it != memo_.end()) return it->second;
    RelAttrId result;
    switch (arena_.KindOf(e)) {
      case ExprKind::kAttr:
        result = universe_->Intern(arena_.AttrName(arena_.AttrOf(e)));
        break;
      case ExprKind::kProduct: {
        RelAttrId a = AttrFor(arena_.LhsOf(e));
        RelAttrId b = AttrFor(arena_.RhsOf(e));
        result = Fresh();
        // C = A * B: C -> A, C -> B (C <= A*B) and AB -> C (A*B <= C).
        AddFd({result}, {a});
        AddFd({result}, {b});
        AddFd({a, b}, {result});
        // Constraint arcs for the ALG closure (definitional equality).
        ExprId ea = out_arena_->Attr(universe_->NameOf(a));
        ExprId eb = out_arena_->Attr(universe_->NameOf(b));
        ExprId ec = out_arena_->Attr(universe_->NameOf(result));
        closure_pds_.push_back(Pd::Eq(ec, out_arena_->Product(ea, eb)));
        break;
      }
      case ExprKind::kSum: {
        RelAttrId a = AttrFor(arena_.LhsOf(e));
        RelAttrId b = AttrFor(arena_.RhsOf(e));
        result = Fresh();
        // C = A + B: A -> C, B -> C (A + B <= C) plus residual C <= A+B.
        AddFd({a}, {result});
        AddFd({b}, {result});
        sum_uppers_.push_back(SumUpperConstraint{result, a, b});
        ExprId ea = out_arena_->Attr(universe_->NameOf(a));
        ExprId eb = out_arena_->Attr(universe_->NameOf(b));
        ExprId ec = out_arena_->Attr(universe_->NameOf(result));
        closure_pds_.push_back(Pd::Eq(ec, out_arena_->Sum(ea, eb)));
        break;
      }
    }
    memo_.emplace(e, result);
    return result;
  }

  void AddEquality(RelAttrId x, RelAttrId y) {
    AddFd({x}, {y});
    AddFd({y}, {x});
    ExprId ex = out_arena_->Attr(universe_->NameOf(x));
    ExprId ey = out_arena_->Attr(universe_->NameOf(y));
    closure_pds_.push_back(Pd::Eq(ex, ey));
  }

  void AddLeq(RelAttrId x, RelAttrId y) {
    AddFd({x}, {y});
    ExprId ex = out_arena_->Attr(universe_->NameOf(x));
    ExprId ey = out_arena_->Attr(universe_->NameOf(y));
    closure_pds_.push_back(Pd::Leq(ex, ey));
  }

  std::vector<Fd>& fds() { return fds_; }
  std::vector<SumUpperConstraint>& sum_uppers() { return sum_uppers_; }
  std::vector<Pd>& closure_pds() { return closure_pds_; }
  std::vector<std::string>& fresh_attrs() { return fresh_attrs_; }

 private:
  RelAttrId Fresh() {
    std::string name;
    do {
      name = "_s" + std::to_string(fresh_counter_++);
    } while (universe_->Require(name).ok());
    fresh_attrs_.push_back(name);
    return universe_->Intern(name);
  }

  void AddFd(std::initializer_list<RelAttrId> lhs,
             std::initializer_list<RelAttrId> rhs) {
    // Sets are sized when finally materialized; store raw ids now because
    // the universe is still growing.
    raw_fds_.push_back({std::vector<RelAttrId>(lhs),
                        std::vector<RelAttrId>(rhs)});
  }

 public:
  /// Rebuilds the Fd vector with bitsets sized to the final universe.
  void Materialize() {
    fds_.clear();
    const std::size_t n = universe_->size();
    for (const auto& [lhs, rhs] : raw_fds_) {
      AttrSet l(n), r(n);
      for (RelAttrId a : lhs) l.Set(a);
      for (RelAttrId a : rhs) r.Set(a);
      fds_.push_back(Fd{std::move(l), std::move(r)});
    }
  }

 private:
  const ExprArena& arena_;
  Universe* universe_;
  ExprArena* out_arena_;
  std::unordered_map<ExprId, RelAttrId> memo_;
  std::vector<std::pair<std::vector<RelAttrId>, std::vector<RelAttrId>>>
      raw_fds_;
  std::vector<Fd> fds_;
  std::vector<SumUpperConstraint> sum_uppers_;
  std::vector<Pd> closure_pds_;
  std::vector<std::string> fresh_attrs_;
  uint64_t fresh_counter_ = 0;
};

}  // namespace

Result<NormalizedPds> NormalizePds(const ExprArena& arena,
                                   const std::vector<Pd>& pds,
                                   Universe* universe) {
  ExprArena flat_arena;
  Flattener fl(arena, universe, &flat_arena);

  // Step 1 + 2: flatten every PD; tops related by equality or <=.
  for (const Pd& pd : pds) {
    RelAttrId l = fl.AttrFor(pd.lhs);
    RelAttrId r = fl.AttrFor(pd.rhs);
    if (pd.is_equation) {
      fl.AddEquality(l, r);
    } else {
      fl.AddLeq(l, r);
    }
  }
  fl.Materialize();

  // Step 3: one ALG closure over the flat constraint set; read off every
  // A <= B between attributes of the extended universe that occur in the
  // constraints (attributes not occurring are only related to themselves).
  PdImplicationEngine engine(&flat_arena, fl.closure_pds());
  std::vector<ExprId> attr_exprs;
  std::vector<RelAttrId> attr_ids;
  for (RelAttrId a = 0; a < universe->size(); ++a) {
    auto known = flat_arena.attr_names().Lookup(universe->NameOf(a));
    if (!known.has_value()) continue;  // never mentioned by any PD
    attr_exprs.push_back(flat_arena.AttrExpr(*known));
    attr_ids.push_back(a);
  }
  engine.Prepare(attr_exprs);

  const std::size_t n = universe->size();
  NormalizedPds out;
  out.fpds = fl.fds();
  out.fresh_attrs = fl.fresh_attrs();
  // Derived single-attribute FDs.
  for (std::size_t i = 0; i < attr_exprs.size(); ++i) {
    for (std::size_t j = 0; j < attr_exprs.size(); ++j) {
      if (i == j) continue;
      if (engine.LeqInClosure(attr_exprs[i], attr_exprs[j])) {
        AttrSet l(n), r(n);
        l.Set(attr_ids[i]);
        r.Set(attr_ids[j]);
        out.fpds.push_back(Fd{std::move(l), std::move(r)});
      }
    }
  }
  // Prune sum-uppers whose sides became comparable.
  auto leq_attr = [&](RelAttrId x, RelAttrId y) {
    auto ex = flat_arena.attr_names().Lookup(universe->NameOf(x));
    auto ey = flat_arena.attr_names().Lookup(universe->NameOf(y));
    if (!ex || !ey) return x == y;
    return engine.LeqInClosure(flat_arena.AttrExpr(*ex),
                               flat_arena.AttrExpr(*ey));
  };
  for (const SumUpperConstraint& su : fl.sum_uppers()) {
    if (leq_attr(su.a, su.b)) {
      // A <= B makes A + B = B: the constraint degenerates to C <= B.
      AttrSet l(n), r(n);
      l.Set(su.c);
      r.Set(su.b);
      out.fpds.push_back(Fd{std::move(l), std::move(r)});
    } else if (leq_attr(su.b, su.a)) {
      AttrSet l(n), r(n);
      l.Set(su.c);
      r.Set(su.a);
      out.fpds.push_back(Fd{std::move(l), std::move(r)});
    } else {
      out.sum_uppers.push_back(su);
    }
  }
  return out;
}

}  // namespace psem
