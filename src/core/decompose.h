/// @file decompose.h
/// @brief BCNF decomposition, 3NF synthesis, lossless-join and preservation tests.

// Normalization-theory toolkit on top of FdTheory: BCNF decomposition,
// 3NF synthesis, the lossless-join test (run as a chase over our own
// tableau machinery — the same chase that decides weak-instance
// consistency in Section 4.3), and the polynomial dependency-preservation
// test. These are the classical design algorithms the paper's FD fragment
// (Section 5.3) plugs into; the tests verify losslessness and
// preservation properties on random theories.

#ifndef PSEM_CORE_DECOMPOSE_H_
#define PSEM_CORE_DECOMPOSE_H_

#include <vector>

#include "core/fd_theory.h"
#include "util/status.h"

namespace psem {

/// True iff `scheme` is in BCNF under the theory: no nontrivial FD
/// X -> A applicable within the scheme has a non-superkey lhs. Uses the
/// pair reduction (R violates BCNF iff some X = R - {A,B} does), which
/// makes the test polynomial despite projected dependencies.
bool IsBcnf(const FdTheory& theory, const AttrSet& scheme);

/// Recursively splits `scheme` on BCNF violations. Every output scheme is
/// in BCNF and the decomposition has a lossless join (each split is along
/// a closure). Dependency preservation is NOT guaranteed (it cannot be,
/// in general, for BCNF).
std::vector<AttrSet> DecomposeBcnf(const FdTheory& theory,
                                   const AttrSet& scheme);

/// Bernstein-style 3NF synthesis from a minimal cover: one scheme per
/// lhs-group, plus a key scheme when no group contains a key; subsumed
/// schemes dropped. Lossless and dependency preserving.
std::vector<AttrSet> Synthesize3nf(const FdTheory& theory,
                                   const AttrSet& scheme);

/// The classical chase test: does the decomposition join losslessly under
/// the theory? Builds the one-row-per-part tableau and chases with the
/// FDs; lossless iff some row goes total on `scheme`.
bool HasLosslessJoin(const FdTheory& theory, const AttrSet& scheme,
                     const std::vector<AttrSet>& parts);

/// Polynomial dependency-preservation test: every FD of the theory is
/// implied by the union of its projections onto the parts (computed
/// without materializing the exponential projections, via the iterated
/// restricted-closure algorithm).
bool PreservesDependencies(const FdTheory& theory,
                           const std::vector<AttrSet>& parts);

}  // namespace psem

#endif  // PSEM_CORE_DECOMPOSE_H_
