#include "core/decompose.h"

#include <algorithm>

#include "chase/tableau.h"

namespace psem {

namespace {

AttrSet Resize(const AttrSet& s, std::size_t n) {
  if (s.size() == n) return s;
  AttrSet out(n);
  s.ForEach([&](std::size_t i) { out.Set(i); });
  return out;
}

// Finds a BCNF violation of `scheme` via the pair reduction: a set
// X = scheme - {A, B} with A in X+ - X and B not in X+. Returns the lhs X
// and the violating attribute A through the out-params.
bool FindBcnfViolation(const FdTheory& theory, const AttrSet& scheme,
                       AttrSet* lhs, std::size_t* attr) {
  const std::size_t n = theory.universe()->size();
  AttrSet s = Resize(scheme, n);
  std::vector<std::size_t> attrs;
  s.ForEach([&](std::size_t a) { attrs.push_back(a); });
  if (attrs.size() <= 2) return false;  // two-attribute schemes are BCNF
  for (std::size_t a : attrs) {
    for (std::size_t b : attrs) {
      if (a == b) continue;
      AttrSet x = s;
      x.Reset(a);
      x.Reset(b);
      AttrSet closure = theory.Closure(x);
      if (closure.Test(a) && !closure.Test(b)) {
        *lhs = x;
        *attr = a;
        return true;
      }
    }
  }
  return false;
}

}  // namespace

bool IsBcnf(const FdTheory& theory, const AttrSet& scheme) {
  AttrSet lhs;
  std::size_t attr;
  return !FindBcnfViolation(theory, scheme, &lhs, &attr);
}

std::vector<AttrSet> DecomposeBcnf(const FdTheory& theory,
                                   const AttrSet& scheme) {
  const std::size_t n = theory.universe()->size();
  std::vector<AttrSet> work = {Resize(scheme, n)};
  std::vector<AttrSet> done;
  while (!work.empty()) {
    AttrSet r = work.back();
    work.pop_back();
    AttrSet x;
    std::size_t a;
    if (!FindBcnfViolation(theory, r, &x, &a)) {
      done.push_back(r);
      continue;
    }
    // Split on X -> (X+ ∩ R): R1 = X+ ∩ R, R2 = X u (R - X+).
    AttrSet closure = theory.Closure(x);
    AttrSet r1 = closure;
    r1.IntersectWith(r);
    AttrSet r2 = r;
    r2.SubtractWith(closure);
    r2.UnionWith(x);
    work.push_back(r1);
    work.push_back(r2);
  }
  // Deduplicate, then drop schemes strictly contained in another.
  std::vector<AttrSet> unique;
  for (const AttrSet& r : done) {
    if (std::find(unique.begin(), unique.end(), r) == unique.end()) {
      unique.push_back(r);
    }
  }
  std::vector<AttrSet> out;
  for (const AttrSet& r : unique) {
    bool subsumed = false;
    for (const AttrSet& other : unique) {
      if (!(r == other) && r.IsSubsetOf(other)) {
        subsumed = true;
        break;
      }
    }
    if (!subsumed) out.push_back(r);
  }
  return out;
}

std::vector<AttrSet> Synthesize3nf(const FdTheory& theory,
                                   const AttrSet& scheme) {
  const std::size_t n = theory.universe()->size();
  AttrSet s = Resize(scheme, n);
  std::vector<Fd> cover = theory.MinimalCover();
  // Keep only FDs applicable to the scheme.
  std::vector<Fd> applicable;
  for (const Fd& fd : cover) {
    AttrSet both = Resize(fd.lhs, n);
    both.UnionWith(Resize(fd.rhs, n));
    if (both.IsSubsetOf(s)) applicable.push_back(fd);
  }
  // One scheme per lhs group: the lhs plus every rhs it determines in the
  // cover.
  std::vector<AttrSet> schemes;
  for (const Fd& fd : applicable) {
    AttrSet grp = Resize(fd.lhs, n);
    for (const Fd& other : applicable) {
      if (Resize(other.lhs, n) == Resize(fd.lhs, n)) {
        grp.UnionWith(Resize(other.rhs, n));
      }
    }
    schemes.push_back(grp);
  }
  // Attributes not mentioned by any FD get their own scheme (or join the
  // key scheme below); standard synthesis keeps them with a key.
  // Add a key scheme if none contains a key.
  std::vector<AttrSet> keys = theory.Keys(s);
  bool has_key = false;
  for (const AttrSet& r : schemes) {
    for (const AttrSet& k : keys) {
      if (k.IsSubsetOf(r)) {
        has_key = true;
        break;
      }
    }
    if (has_key) break;
  }
  if (!has_key && !keys.empty()) schemes.push_back(keys[0]);
  // Cover attributes missed entirely (no FD touches them): extend the key
  // scheme (they are necessarily part of every key, so keys[0] already
  // contains them when keys were computed over `s`).
  // Drop subsumed schemes.
  std::vector<AttrSet> out;
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    bool subsumed = false;
    for (std::size_t j = 0; j < schemes.size(); ++j) {
      if (i == j) continue;
      if (schemes[i] == schemes[j] && j < i) {
        subsumed = true;
        break;
      }
      if (!(schemes[i] == schemes[j]) && schemes[i].IsSubsetOf(schemes[j])) {
        subsumed = true;
        break;
      }
    }
    if (!subsumed) out.push_back(schemes[i]);
  }
  return out;
}

bool HasLosslessJoin(const FdTheory& theory, const AttrSet& scheme,
                     const std::vector<AttrSet>& parts) {
  const std::size_t n = theory.universe()->size();
  AttrSet s = Resize(scheme, n);
  // Classic tableau: one row per part; shared constant a_<attr> on the
  // part's attributes, unique nulls elsewhere. Reuse the representative-
  // tableau + chase machinery by building a one-tuple relation per part.
  Database db;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    AttrSet p = Resize(parts[i], n);
    std::vector<std::string> attr_names;
    std::vector<std::string> row;
    p.ForEach([&](std::size_t a) {
      attr_names.push_back(theory.universe()->NameOf(static_cast<RelAttrId>(a)));
      row.push_back("a_" + attr_names.back());
    });
    if (attr_names.empty()) continue;
    std::size_t ri = db.AddRelation("part" + std::to_string(i), attr_names);
    db.relation(ri).AddRow(&db.symbols(), row);
  }
  // Columns of db's universe correspond to the subset of attributes used;
  // chase and look for a row that is total (all constants) on `scheme`.
  Tableau t = Tableau::Representative(db, db.universe().size());
  // Translate the theory's FDs into db-universe ids by name.
  std::vector<Fd> fds;
  for (const Fd& fd : theory.fds()) {
    AttrSet lhs(db.universe().size()), rhs(db.universe().size());
    bool ok = true;
    Resize(fd.lhs, n).ForEach([&](std::size_t a) {
      auto id = db.universe().Require(
          theory.universe()->NameOf(static_cast<RelAttrId>(a)));
      if (id.ok()) {
        lhs.Set(*id);
      } else {
        ok = false;  // lhs attr outside all parts: FD can never fire
      }
    });
    if (!ok) continue;
    Resize(fd.rhs, n).ForEach([&](std::size_t a) {
      auto id = db.universe().Require(
          theory.universe()->NameOf(static_cast<RelAttrId>(a)));
      if (id.ok()) rhs.Set(*id);
    });
    if (rhs.Any()) fds.push_back(Fd{lhs, rhs});
  }
  ChaseResult chase = ChaseWithFds(&t, fds);
  if (!chase.consistent) return false;  // cannot happen: no conflicting constants
  // A winning row: total (constant) on every scheme attribute present in
  // the db universe — and the scheme must be covered by the parts.
  for (std::size_t a = 0; a < n; ++a) {
    if (!s.Test(a)) continue;
    if (!db.universe()
             .Require(theory.universe()->NameOf(static_cast<RelAttrId>(a)))
             .ok()) {
      return false;  // some scheme attribute is in no part
    }
  }
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    bool total = true;
    for (std::size_t a = 0; a < n && total; ++a) {
      if (!s.Test(a)) continue;
      auto id = db.universe().Require(
          theory.universe()->NameOf(static_cast<RelAttrId>(a)));
      uint32_t cls = t.Resolve(r, *id);
      total = t.ConstantOf(cls) != Tableau::kNoConstant;
    }
    if (total) return true;
  }
  return false;
}

bool PreservesDependencies(const FdTheory& theory,
                           const std::vector<AttrSet>& parts) {
  const std::size_t n = theory.universe()->size();
  for (const Fd& fd : theory.fds()) {
    // Iterated restricted closure: grow Z from lhs using only what the
    // projected dependencies can transport.
    AttrSet z = Resize(fd.lhs, n);
    bool changed = true;
    while (changed) {
      changed = false;
      for (const AttrSet& part : parts) {
        AttrSet p = Resize(part, n);
        AttrSet zp = z;
        zp.IntersectWith(p);
        if (!zp.Any()) continue;
        AttrSet grown = theory.Closure(zp);
        grown.IntersectWith(p);
        changed |= z.UnionWith(grown);
      }
    }
    if (!Resize(fd.rhs, n).IsSubsetOf(z)) return false;
  }
  return true;
}

}  // namespace psem
