#include "core/theory.h"

namespace psem {

Status PdTheory::AddParsed(std::string_view text) {
  PSEM_ASSIGN_OR_RETURN(Pd pd, arena_->ParsePd(text));
  Add(pd);
  return Status::OK();
}

PdImplicationEngine& PdTheory::engine() {
  if (!engine_) {
    engine_ = std::make_unique<PdImplicationEngine>(arena_.get(), pds_,
                                                    engine_options_);
  }
  return *engine_;
}

bool PdTheory::Implies(const Pd& query) { return engine().Implies(query); }

std::vector<bool> PdTheory::BatchImplies(std::span<const Pd> queries) {
  return engine().BatchImplies(queries);
}

Result<std::vector<bool>> PdTheory::BatchImpliesParsed(
    std::span<const std::string> texts) {
  std::vector<Pd> queries;
  queries.reserve(texts.size());
  for (const std::string& text : texts) {
    PSEM_ASSIGN_OR_RETURN(Pd pd, arena_->ParsePd(text));
    queries.push_back(pd);
  }
  return BatchImplies(queries);
}

Result<bool> PdTheory::ImpliesParsed(std::string_view text) {
  PSEM_ASSIGN_OR_RETURN(Pd pd, arena_->ParsePd(text));
  return Implies(pd);
}

bool PdTheory::Equivalent(const Pd& a, const Pd& b) {
  PdImplicationEngine with_a(arena_.get(), [&] {
    auto e = pds_;
    e.push_back(a);
    return e;
  }());
  if (!with_a.Implies(b)) return false;
  PdImplicationEngine with_b(arena_.get(), [&] {
    auto e = pds_;
    e.push_back(b);
    return e;
  }());
  return with_b.Implies(a);
}

bool PdTheory::IsIdentity(const Pd& pd) const {
  WhitmanMemo decider(arena_.get());
  return decider.IsIdentity(pd);
}

Result<Proof> PdTheory::Explain(const Pd& query) {
  ProvenanceEngine prover(arena_.get(), pds_);
  return prover.Prove(query);
}

Result<std::string> PdTheory::ExplainText(std::string_view query_text) {
  PSEM_ASSIGN_OR_RETURN(Pd query, arena_->ParsePd(query_text));
  PSEM_ASSIGN_OR_RETURN(Proof proof, Explain(query));
  return RenderProof(*arena_, proof);
}

std::optional<CounterModel> PdTheory::FindCounterexample(
    const Pd& query, std::size_t max_population) const {
  return FindCounterModel(*arena_, pds_, query, max_population);
}

Result<bool> PdTheory::SatisfiedBy(const Database& db,
                                   const Relation& r) const {
  for (const Pd& pd : pds_) {
    PSEM_ASSIGN_OR_RETURN(bool ok, RelationSatisfiesPd(db, r, *arena_, pd));
    if (!ok) return false;
  }
  return true;
}

}  // namespace psem
