/// @file csv.h
/// @brief CSV import/export for relations.

// CSV import/export for relations — the practical on-ramp for the
// profiler and CLI: load a table, mine its dependencies, reason about
// them. Deliberately small: comma separator, optional double-quote
// quoting with "" escapes, first record is the header (attribute names).

#ifndef PSEM_CORE_CSV_H_
#define PSEM_CORE_CSV_H_

#include <string>
#include <vector>

#include "relational/relation.h"
#include "util/status.h"

namespace psem {

/// Parses CSV text into a fresh relation of `db` named `name`. The header
/// row supplies attribute names (must be identifiers). Rows with a
/// mismatched field count are an error. Returns the relation index.
Result<std::size_t> LoadCsvRelation(const std::string& csv_text, Database* db,
                                    const std::string& name = "csv");

/// Serializes a relation as CSV (header + rows, quoting where needed).
std::string DumpCsvRelation(const Database& db, const Relation& r);

/// Splits one CSV record into fields (exposed for testing).
Result<std::vector<std::string>> ParseCsvRecord(std::string_view line);

}  // namespace psem

#endif  // PSEM_CORE_CSV_H_
