/// @file csv.h
/// @brief CSV import/export for relations.

// CSV import/export for relations — the practical on-ramp for the
// profiler and CLI: load a table, mine its dependencies, reason about
// them. Deliberately small: comma separator, optional double-quote
// quoting with "" escapes, first record is the header (attribute names).

#ifndef PSEM_CORE_CSV_H_
#define PSEM_CORE_CSV_H_

#include <string>
#include <vector>

#include "relational/relation.h"
#include "util/status.h"

namespace psem {

// Untrusted-input guards (see docs/robustness.md). CSV arriving through
// LoadCsvRelation may come straight from a user file, so violations are
// kInvalidArgument Statuses, never asserts: inputs larger than
// kMaxCsvBytes, records wider than kMaxCsvFields, fields longer than
// kMaxCsvFieldBytes, and duplicate header attributes are all rejected
// before any part of the database is mutated.
inline constexpr std::size_t kMaxCsvBytes = 64u << 20;        // 64 MiB
inline constexpr std::size_t kMaxCsvFields = 4096;            // per record
inline constexpr std::size_t kMaxCsvFieldBytes = 64u << 10;   // 64 KiB

/// Parses CSV text into a fresh relation of `db` named `name`. The header
/// row supplies attribute names (must be identifiers, pairwise distinct).
/// Rows with a mismatched field count are an error. Returns the relation
/// index. All-or-nothing: the whole input is parsed and validated before
/// the database is mutated, so an error leaves `db` untouched.
Result<std::size_t> LoadCsvRelation(const std::string& csv_text, Database* db,
                                    const std::string& name = "csv");

/// Serializes a relation as CSV (header + rows, quoting where needed).
std::string DumpCsvRelation(const Database& db, const Relation& r);

/// Splits one CSV record into fields (exposed for testing).
Result<std::vector<std::string>> ParseCsvRecord(std::string_view line);

}  // namespace psem

#endif  // PSEM_CORE_CSV_H_
