/// @file io.h
/// @brief Plain-text loaders/dumpers for databases and dependency sets.

// Plain-text loaders and dumpers for databases and dependency sets, so
// the CLI and downstream tools can round-trip inputs without bespoke
// parsers.
//
// Database format (one statement per line, '#' comments):
//   relation emp(Name, Dept)
//   row emp ann sales
//   row emp bob sales
//
// Dependency format:
//   pd  C = A + B
//   pd  A <= B
//   fd  A B -> C

#ifndef PSEM_CORE_IO_H_
#define PSEM_CORE_IO_H_

#include <string>
#include <vector>

#include "lattice/expr.h"
#include "relational/dependency.h"
#include "relational/relation.h"
#include "util/status.h"

namespace psem {

/// Parses the database format above into `db` (appending).
Status LoadDatabaseText(const std::string& text, Database* db);

/// Serializes `db` in the same format.
std::string DumpDatabaseText(const Database& db);

/// A parsed constraint file: PDs (over `arena`) and FDs (over `universe`).
struct ConstraintFile {
  std::vector<Pd> pds;
  std::vector<Fd> fds;
};

/// Parses "pd ..." / "fd ..." lines.
Result<ConstraintFile> LoadConstraintsText(const std::string& text,
                                           ExprArena* arena,
                                           Universe* universe);

}  // namespace psem

#endif  // PSEM_CORE_IO_H_
