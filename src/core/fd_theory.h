/// @file fd_theory.h
/// @brief Classical FD reasoning: closure, keys, minimal cover (Section 5.3).

// FD reasoning — the idempotent-commutative-semigroup fragment of PD
// implication (Section 5.3). FD implication is decided by the classical
// linear-time attribute-set closure (Beeri–Bernstein [3]); the property
// tests verify it agrees with Algorithm ALG run on the FPD encodings of
// the same FDs, which is the paper's reduction in both directions.

#ifndef PSEM_CORE_FD_THEORY_H_
#define PSEM_CORE_FD_THEORY_H_

#include <vector>

#include "relational/dependency.h"
#include "relational/universe.h"
#include "util/status.h"

namespace psem {

/// A set of FDs over a universe, with the standard inference toolkit.
class FdTheory {
 public:
  /// The theory keeps the pointer; `universe` must outlive it. New
  /// attributes may be interned into the universe by Add/Parse.
  explicit FdTheory(Universe* universe) : universe_(universe) {}

  void Add(Fd fd) { fds_.push_back(std::move(fd)); }

  /// Parses and adds "A B -> C".
  Status AddParsed(std::string_view text);

  const std::vector<Fd>& fds() const { return fds_; }
  Universe* universe() const { return universe_; }

  /// X+ : the closure of X under the FDs (all attributes functionally
  /// determined by X). Linear in the total size of the FD set.
  AttrSet Closure(const AttrSet& x) const;

  /// Sigma |= X -> Y iff Y is contained in X+ (Armstrong-completeness).
  bool Implies(const Fd& fd) const;

  /// True iff the two theories imply each other (same closure operator).
  bool EquivalentTo(const FdTheory& other) const;

  /// All minimal keys of a relation scheme with attribute set `scheme`
  /// (Lucchesi–Osborn enumeration; output size can be exponential).
  std::vector<AttrSet> Keys(const AttrSet& scheme) const;

  /// A minimal cover: singleton right-hand sides, no extraneous left-hand
  /// attributes, no redundant FDs; equivalent to this theory.
  std::vector<Fd> MinimalCover() const;

 private:
  /// Shrinks `key` to a minimal superkey of `scheme`.
  AttrSet MinimizeKey(AttrSet key, const AttrSet& scheme) const;

  Universe* universe_;
  std::vector<Fd> fds_;
};

}  // namespace psem

#endif  // PSEM_CORE_FD_THEORY_H_
