#include "core/io.h"

#include <set>

#include "util/strings.h"

namespace psem {

namespace {

// Strips a trailing comment and surrounding whitespace.
std::string_view CleanLine(std::string_view line) {
  std::size_t hash = line.find('#');
  if (hash != std::string_view::npos) line = line.substr(0, hash);
  return StripAsciiWhitespace(line);
}

}  // namespace

Status LoadDatabaseText(const std::string& text, Database* db) {
  std::size_t line_no = 0;
  for (const std::string& raw : SplitAndStrip(text, '\n')) {
    ++line_no;
    std::string_view line = CleanLine(raw);
    if (line.empty()) continue;
    auto err = [&](const std::string& why) {
      return Status::InvalidArgument("line " + std::to_string(line_no) + ": " +
                                     why + ": '" + std::string(line) + "'");
    };
    if (line.rfind("relation ", 0) == 0) {
      std::string_view rest = line.substr(9);
      std::size_t open = rest.find('(');
      std::size_t close = rest.rfind(')');
      if (open == std::string_view::npos || close == std::string_view::npos ||
          close < open) {
        return err("expected relation name(attr, ...)");
      }
      std::string name(StripAsciiWhitespace(rest.substr(0, open)));
      if (!IsIdentifier(name)) return err("bad relation name");
      std::string attrs_text(rest.substr(open + 1, close - open - 1));
      for (char& c : attrs_text) {
        if (c == ',') c = ' ';
      }
      std::vector<std::string> attrs = SplitAndStrip(attrs_text, ' ');
      if (attrs.empty()) return err("relation needs at least one attribute");
      for (const auto& a : attrs) {
        if (!IsIdentifier(a)) return err("bad attribute name '" + a + "'");
      }
      if (db->IndexOf(name).ok()) return err("duplicate relation");
      db->AddRelation(name, attrs);
    } else if (line.rfind("row ", 0) == 0) {
      std::vector<std::string> parts = SplitAndStrip(line.substr(4), ' ');
      if (parts.empty()) return err("row needs a relation name");
      auto idx = db->IndexOf(parts[0]);
      if (!idx.ok()) return err("unknown relation '" + parts[0] + "'");
      Relation& r = db->relation(*idx);
      if (parts.size() - 1 != r.arity()) {
        return err("expected " + std::to_string(r.arity()) + " values, got " +
                   std::to_string(parts.size() - 1));
      }
      r.AddRow(&db->symbols(),
               std::vector<std::string>(parts.begin() + 1, parts.end()));
    } else {
      return err("unknown statement (expected 'relation' or 'row')");
    }
  }
  return Status::OK();
}

std::string DumpDatabaseText(const Database& db) {
  std::string out;
  for (std::size_t i = 0; i < db.num_relations(); ++i) {
    const Relation& r = db.relation(i);
    out += "relation " + r.schema().name + "(";
    for (std::size_t c = 0; c < r.arity(); ++c) {
      if (c > 0) out += ", ";
      out += db.universe().NameOf(r.schema().attrs[c]);
    }
    out += ")\n";
    for (const Tuple& t : r.rows()) {
      out += "row " + r.schema().name;
      for (ValueId v : t) out += " " + db.symbols().NameOf(v);
      out += "\n";
    }
  }
  return out;
}

Result<ConstraintFile> LoadConstraintsText(const std::string& text,
                                           ExprArena* arena,
                                           Universe* universe) {
  ConstraintFile out;
  std::size_t line_no = 0;
  for (const std::string& raw : SplitAndStrip(text, '\n')) {
    ++line_no;
    std::string_view line = CleanLine(raw);
    if (line.empty()) continue;
    auto err = [&](const std::string& why) -> Status {
      return Status::InvalidArgument("line " + std::to_string(line_no) + ": " +
                                     why);
    };
    if (line.rfind("pd ", 0) == 0) {
      auto pd = arena->ParsePd(line.substr(3));
      if (!pd.ok()) return err(pd.status().message());
      // Mirror PD attributes into the universe so downstream consistency
      // checks see them.
      std::set<AttrId> attrs;
      arena->CollectAttrs(pd->lhs, &attrs);
      arena->CollectAttrs(pd->rhs, &attrs);
      for (AttrId a : attrs) universe->Intern(arena->AttrName(a));
      out.pds.push_back(*pd);
    } else if (line.rfind("fd ", 0) == 0) {
      auto fd = Fd::Parse(universe, line.substr(3));
      if (!fd.ok()) return err(fd.status().message());
      out.fds.push_back(*fd);
    } else {
      return err("unknown statement (expected 'pd' or 'fd')");
    }
  }
  return out;
}

}  // namespace psem
