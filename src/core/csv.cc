#include "core/csv.h"

#include <unordered_set>

#include "util/strings.h"

namespace psem {

Result<std::vector<std::string>> ParseCsvRecord(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (current.size() >= kMaxCsvFieldBytes) {
      return Status::InvalidArgument(
          "CSV field exceeds the maximum length of " +
          std::to_string(kMaxCsvFieldBytes) + " bytes");
    }
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      if (!current.empty()) {
        return Status::InvalidArgument("quote in the middle of a field");
      }
      in_quotes = true;
    } else if (c == ',') {
      if (fields.size() + 1 >= kMaxCsvFields) {
        return Status::InvalidArgument(
            "CSV record exceeds the maximum of " +
            std::to_string(kMaxCsvFields) + " fields");
      }
      fields.push_back(current);
      current.clear();
    } else if (c == '\r') {
      // tolerate CRLF
    } else {
      current += c;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted field");
  }
  fields.push_back(current);
  return fields;
}

Result<std::size_t> LoadCsvRelation(const std::string& csv_text, Database* db,
                                    const std::string& name) {
  if (csv_text.size() > kMaxCsvBytes) {
    return Status::InvalidArgument(
        "CSV input of " + std::to_string(csv_text.size()) +
        " bytes exceeds the maximum of " + std::to_string(kMaxCsvBytes));
  }
  std::vector<std::string> lines;
  {
    std::size_t start = 0;
    for (std::size_t i = 0; i <= csv_text.size(); ++i) {
      if (i == csv_text.size() || csv_text[i] == '\n') {
        std::string line = csv_text.substr(start, i - start);
        if (!StripAsciiWhitespace(line).empty()) lines.push_back(line);
        start = i + 1;
      }
    }
  }
  if (lines.empty()) {
    return Status::InvalidArgument("CSV needs a header row");
  }
  PSEM_ASSIGN_OR_RETURN(std::vector<std::string> header,
                        ParseCsvRecord(lines[0]));
  std::unordered_set<std::string> seen_attrs;
  for (auto& h : header) {
    h = std::string(StripAsciiWhitespace(h));
    if (!IsIdentifier(h)) {
      return Status::InvalidArgument("header field '" + h +
                                     "' is not a valid attribute name");
    }
    if (!seen_attrs.insert(h).second) {
      return Status::InvalidArgument("duplicate attribute '" + h +
                                     "' in CSV header");
    }
  }
  // Parse and validate every row BEFORE touching the database, so a
  // malformed input (the usual case for untrusted files) cannot leave a
  // half-loaded relation behind.
  std::vector<std::vector<std::string>> rows;
  rows.reserve(lines.size() - 1);
  for (std::size_t l = 1; l < lines.size(); ++l) {
    PSEM_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                          ParseCsvRecord(lines[l]));
    if (fields.size() != header.size()) {
      return Status::InvalidArgument(
          "row " + std::to_string(l) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(header.size()));
    }
    rows.push_back(std::move(fields));
  }
  std::size_t ri = db->AddRelation(name, header);
  Relation& r = db->relation(ri);
  for (const auto& fields : rows) r.AddRow(&db->symbols(), fields);
  return ri;
}

namespace {

std::string QuoteIfNeeded(const std::string& s) {
  bool needs = s.find_first_of(",\"\n") != std::string::npos;
  if (!needs) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

std::string DumpCsvRelation(const Database& db, const Relation& r) {
  std::string out;
  for (std::size_t c = 0; c < r.arity(); ++c) {
    if (c > 0) out += ",";
    out += db.universe().NameOf(r.schema().attrs[c]);
  }
  out += "\n";
  for (const Tuple& t : r.rows()) {
    for (std::size_t c = 0; c < r.arity(); ++c) {
      if (c > 0) out += ",";
      out += QuoteIfNeeded(db.symbols().NameOf(t[c]));
    }
    out += "\n";
  }
  return out;
}

}  // namespace psem
