/// @file semigroup.h
/// @brief The semilattice word problem: Section 5.3 FD implication.

// The uniform word problem for idempotent commutative semigroups
// (semilattices) — Section 5.3's algebraic identity for FD implication.
// Product-only partition expressions are, up to the semigroup axioms,
// just nonempty attribute sets; an equation set E is decided by
// saturation: NormalForm(X) adds the other side of any equation whose one
// side is already contained. The paper observes that FD implication and
// this word problem are reducible to each other in both directions; the
// tests check all three engines (this one, FdTheory, Algorithm ALG on
// product-only PDs) agree.

#ifndef PSEM_CORE_SEMIGROUP_H_
#define PSEM_CORE_SEMIGROUP_H_

#include <vector>

#include "relational/dependency.h"
#include "relational/universe.h"
#include "util/status.h"

namespace psem {

/// A finitely presented idempotent commutative semigroup over the
/// universe's attributes: generators = attributes, relations = equations
/// between words (nonempty attribute sets).
class IcSemigroupTheory {
 public:
  explicit IcSemigroupTheory(Universe* universe) : universe_(universe) {}

  /// Adds the equation lhs = rhs (words as attribute sets).
  void AddEquation(AttrSet lhs, AttrSet rhs);

  /// Parses "A B = B C" (words separated by '=').
  Status AddParsed(std::string_view text);

  const std::vector<std::pair<AttrSet, AttrSet>>& equations() const {
    return equations_;
  }

  /// The saturated word equal to X: repeatedly absorb the other side of
  /// any equation one of whose sides is contained in the current word.
  /// This is the canonical normal form for the word problem.
  AttrSet NormalForm(const AttrSet& x) const;

  /// E |- X = Y in every idempotent commutative semigroup.
  bool Equal(const AttrSet& x, const AttrSet& y) const;

  /// E |- X = X * Y (the semigroup form of the FD X -> Y).
  bool LeqWord(const AttrSet& x, const AttrSet& y) const;

  /// The FD encoding of this presentation: each equation U = V becomes
  /// the FDs U -> V and V -> U (Example f / Section 5.3).
  std::vector<Fd> ToFds() const;

  /// The presentation encoding of an FD set: X -> Y becomes X = X u Y.
  static IcSemigroupTheory FromFds(Universe* universe,
                                   const std::vector<Fd>& fds);

 private:
  AttrSet Resize(const AttrSet& s) const;

  Universe* universe_;
  std::vector<std::pair<AttrSet, AttrSet>> equations_;
};

}  // namespace psem

#endif  // PSEM_CORE_SEMIGROUP_H_
