#include "core/armstrong.h"

#include <optional>
#include <string>

namespace psem {

namespace {

// Closure restricted to the scheme.
AttrSet SchemeClosure(const FdTheory& theory, const AttrSet& scheme,
                      const AttrSet& x) {
  AttrSet c = theory.Closure(x);
  // Closure() sizes to the universe; restrict and resize to scheme space.
  AttrSet out(scheme.size());
  scheme.ForEach([&](std::size_t a) {
    if (a < c.size() && c.Test(a)) out.Set(a);
  });
  return out;
}

// Ganter's NextClosure step: the lectically next closed set after A, or
// nullopt when A is the last one (the full scheme).
std::optional<AttrSet> NextClosure(const FdTheory& theory,
                                   const AttrSet& scheme, AttrSet a,
                                   const std::vector<std::size_t>& attrs) {
  for (std::size_t idx = attrs.size(); idx-- > 0;) {
    std::size_t i = attrs[idx];
    if (a.Test(i)) {
      a.Reset(i);
    } else {
      AttrSet candidate = a;
      candidate.Set(i);
      AttrSet closed = SchemeClosure(theory, scheme, candidate);
      // Accept iff closed \ a contains no attribute smaller than i.
      bool ok = true;
      for (std::size_t jdx = 0; jdx < idx && ok; ++jdx) {
        std::size_t j = attrs[jdx];
        if (closed.Test(j) && !a.Test(j)) ok = false;
      }
      if (ok) return closed;
    }
  }
  return std::nullopt;
}

}  // namespace

std::vector<AttrSet> ClosedSets(const FdTheory& theory, const AttrSet& scheme) {
  std::vector<std::size_t> attrs;
  scheme.ForEach([&](std::size_t a) { attrs.push_back(a); });
  std::vector<AttrSet> out;
  if (attrs.empty()) return out;
  AttrSet current = SchemeClosure(theory, scheme, AttrSet(scheme.size()));
  out.push_back(current);
  while (true) {
    auto next = NextClosure(theory, scheme, current, attrs);
    if (!next) break;
    current = *next;
    out.push_back(current);
  }
  return out;
}

Result<std::size_t> BuildArmstrongRelation(const FdTheory& theory,
                                           const AttrSet& scheme, Database* db,
                                           const std::string& name) {
  if (!scheme.Any()) {
    return Status::InvalidArgument("scheme must be nonempty");
  }
  std::vector<std::string> attr_names;
  scheme.ForEach([&](std::size_t a) {
    attr_names.push_back(
        theory.universe()->NameOf(static_cast<RelAttrId>(a)));
  });
  std::size_t ri = db->AddRelation(name, attr_names);
  Relation& r = db->relation(ri);

  // Base row: value "base_<attr>" per column.
  std::vector<std::string> base;
  for (const auto& an : attr_names) base.push_back("v0_" + an);
  r.AddRow(&db->symbols(), base);

  // One row per proper closed set C: agrees with base exactly on C.
  std::vector<AttrSet> closed = ClosedSets(theory, scheme);
  std::size_t row_id = 1;
  for (const AttrSet& c : closed) {
    if (c == [&] {
          AttrSet s(scheme.size());
          scheme.ForEach([&](std::size_t a) { s.Set(a); });
          return s;
        }()) {
      continue;  // the full scheme would duplicate the base row
    }
    std::vector<std::string> row;
    std::size_t col = 0;
    scheme.ForEach([&](std::size_t a) {
      if (c.Test(a)) {
        row.push_back(base[col]);
      } else {
        row.push_back("v" + std::to_string(row_id) + "_" + attr_names[col]);
      }
      ++col;
    });
    r.AddRow(&db->symbols(), row);
    ++row_id;
  }
  return ri;
}

}  // namespace psem
