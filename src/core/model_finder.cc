#include "core/model_finder.h"

#include <set>

#include "partition/partition_lattice.h"

namespace psem {

namespace {

// All attribute ids mentioned by E and the query, with arena names.
std::vector<AttrId> CollectAttrIds(const ExprArena& arena,
                                   const std::vector<Pd>& e, const Pd* query) {
  std::set<AttrId> attrs;
  for (const Pd& pd : e) {
    arena.CollectAttrs(pd.lhs, &attrs);
    arena.CollectAttrs(pd.rhs, &attrs);
  }
  if (query != nullptr) {
    arena.CollectAttrs(query->lhs, &attrs);
    arena.CollectAttrs(query->rhs, &attrs);
  }
  return {attrs.begin(), attrs.end()};
}

// Recursive assignment search over partitions of [k].
struct Search {
  const ExprArena& arena;
  const std::vector<Pd>& e;
  const Pd* query;  // nullptr: pure satisfiability
  const std::vector<AttrId>& attrs;
  const std::vector<Partition>& candidates;
  PartitionInterpretation interp;

  // PDs whose attribute sets become fully assigned at position i are
  // checked right after attrs[i] is assigned.
  std::vector<std::vector<const Pd*>> check_at;

  bool Dfs(std::size_t i) {
    if (i == attrs.size()) {
      if (query == nullptr) return true;
      return !*interp.Satisfies(arena, *query);
    }
    const std::string& name = arena.AttrName(attrs[i]);
    for (const Partition& p : candidates) {
      // Naming function: one fresh symbol per block.
      std::unordered_map<std::string, uint32_t> naming;
      for (uint32_t b = 0; b < p.num_blocks(); ++b) {
        naming[name + "_" + std::to_string(b)] = b;
      }
      if (!interp.DefineAttribute(name, p, naming).ok()) continue;
      bool ok = true;
      for (const Pd* pd : check_at[i]) {
        if (!*interp.Satisfies(arena, *pd)) {
          ok = false;
          break;
        }
      }
      if (ok && Dfs(i + 1)) return true;
    }
    // Backtrack: redefining on the next candidate overwrites, but on
    // final failure the caller's earlier state is what matters; the
    // interpretation keeps the last tried partition for attrs[i], which
    // the parent will overwrite on its next candidate. Correctness relies
    // on check_at only consulting attrs <= i.
    return false;
  }
};

std::optional<CounterModel> SearchPopulations(const ExprArena& arena,
                                              const std::vector<Pd>& e,
                                              const Pd* query,
                                              std::size_t max_population) {
  std::vector<AttrId> attrs = CollectAttrIds(arena, e, query);
  if (attrs.empty()) return std::nullopt;
  for (std::size_t k = 1; k <= max_population; ++k) {
    FullPartitionLatticeResult full = FullPartitionLattice(k);
    // Position of the last-assigned attribute of each PD.
    std::vector<std::vector<const Pd*>> check_at(attrs.size());
    auto last_pos = [&](const Pd& pd) {
      std::set<AttrId> pd_attrs;
      arena.CollectAttrs(pd.lhs, &pd_attrs);
      arena.CollectAttrs(pd.rhs, &pd_attrs);
      std::size_t last = 0;
      for (std::size_t i = 0; i < attrs.size(); ++i) {
        if (pd_attrs.count(attrs[i])) last = i;
      }
      return last;
    };
    for (const Pd& pd : e) check_at[last_pos(pd)].push_back(&pd);

    Search search{arena, e, query, attrs, full.elements,
                  PartitionInterpretation{}, std::move(check_at)};
    if (search.Dfs(0)) {
      CounterModel model;
      model.interpretation = std::move(search.interp);
      model.population_size = k;
      for (AttrId a : attrs) model.attributes.push_back(arena.AttrName(a));
      return model;
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<CounterModel> FindCounterModel(const ExprArena& arena,
                                             const std::vector<Pd>& e,
                                             const Pd& query,
                                             std::size_t max_population) {
  return SearchPopulations(arena, e, &query, max_population);
}

std::optional<CounterModel> FindModel(const ExprArena& arena,
                                      const std::vector<Pd>& e,
                                      std::size_t max_population) {
  return SearchPopulations(arena, e, nullptr, max_population);
}

}  // namespace psem
