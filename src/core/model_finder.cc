#include "core/model_finder.h"

#include <set>

#include "partition/eval_context.h"
#include "partition/partition_lattice.h"

namespace psem {

namespace {

// All attribute ids mentioned by E and the query, with arena names.
std::vector<AttrId> CollectAttrIds(const ExprArena& arena,
                                   const std::vector<Pd>& e, const Pd* query) {
  std::set<AttrId> attrs;
  for (const Pd& pd : e) {
    arena.CollectAttrs(pd.lhs, &attrs);
    arena.CollectAttrs(pd.rhs, &attrs);
  }
  if (query != nullptr) {
    arena.CollectAttrs(query->lhs, &attrs);
    arena.CollectAttrs(query->rhs, &attrs);
  }
  return {attrs.begin(), attrs.end()};
}

// Recursive assignment search over partitions of [k]. The hot loop runs
// entirely on the dense kernel layer: candidates are DensePartitions over
// the identity universe {0..k-1}, PD checks evaluate on the raw dense
// assignment, and no interpretation (naming functions, string symbols) is
// constructed until a model is actually found.
struct Search {
  const ExprArena& arena;
  const Pd* query;  // nullptr: pure satisfiability
  const std::vector<AttrId>& attrs;
  const std::vector<DensePartition>& candidates;
  std::vector<const DensePartition*> assign;  // AttrId -> candidate
  std::vector<std::size_t> chosen;            // position -> candidate index

  // PDs whose attribute sets become fully assigned at position i are
  // checked right after attrs[i] is assigned.
  std::vector<std::vector<const Pd*>> check_at;

  DenseOps ops;
  DensePartition prod;

  bool SatisfiesDense(const Pd& pd) {
    Result<DensePartition> l = EvalDenseAssignment(arena, pd.lhs, assign, &ops);
    Result<DensePartition> r = EvalDenseAssignment(arena, pd.rhs, assign, &ops);
    if (!l.ok() || !r.ok()) return false;  // unassigned attribute
    if (pd.is_equation) return *l == *r;
    ops.Product(*l, *r, &prod);
    return *l == prod;
  }

  bool Dfs(std::size_t i) {
    if (i == attrs.size()) {
      if (query == nullptr) return true;
      return !SatisfiesDense(*query);
    }
    for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
      assign[attrs[i]] = &candidates[ci];
      chosen[i] = ci;
      bool ok = true;
      for (const Pd* pd : check_at[i]) {
        if (!SatisfiesDense(*pd)) {
          ok = false;
          break;
        }
      }
      if (ok && Dfs(i + 1)) return true;
    }
    // Backtrack. Correctness relies on check_at only consulting attrs <= i;
    // the stale pointer left here is overwritten before it is read again.
    return false;
  }
};

std::optional<CounterModel> SearchPopulations(const ExprArena& arena,
                                              const std::vector<Pd>& e,
                                              const Pd* query,
                                              std::size_t max_population) {
  std::vector<AttrId> attrs = CollectAttrIds(arena, e, query);
  if (attrs.empty()) return std::nullopt;
  for (std::size_t k = 1; k <= max_population; ++k) {
    FullPartitionLatticeResult full = FullPartitionLattice(k);
    // Position of the last-assigned attribute of each PD.
    std::vector<std::vector<const Pd*>> check_at(attrs.size());
    auto last_pos = [&](const Pd& pd) {
      std::set<AttrId> pd_attrs;
      arena.CollectAttrs(pd.lhs, &pd_attrs);
      arena.CollectAttrs(pd.rhs, &pd_attrs);
      std::size_t last = 0;
      for (std::size_t i = 0; i < attrs.size(); ++i) {
        if (pd_attrs.count(attrs[i])) last = i;
      }
      return last;
    };
    for (const Pd& pd : e) check_at[last_pos(pd)].push_back(&pd);

    Search search{arena,
                  query,
                  attrs,
                  full.dense_elements,
                  std::vector<const DensePartition*>(arena.num_attrs(),
                                                     nullptr),
                  std::vector<std::size_t>(attrs.size(), 0),
                  std::move(check_at),
                  DenseOps{},
                  DensePartition{}};
    if (search.Dfs(0)) {
      // Materialize the witness as an interpretation: sparse candidate
      // partitions with one fresh symbol per block (always a valid
      // naming, so DefineAttribute cannot fail here).
      CounterModel model;
      for (std::size_t i = 0; i < attrs.size(); ++i) {
        const std::string& name = arena.AttrName(attrs[i]);
        const Partition& p = full.elements[search.chosen[i]];
        std::unordered_map<std::string, uint32_t> naming;
        for (uint32_t b = 0; b < p.num_blocks(); ++b) {
          naming[name + "_" + std::to_string(b)] = b;
        }
        (void)model.interpretation.DefineAttribute(name, p, naming);
      }
      model.population_size = k;
      for (AttrId a : attrs) model.attributes.push_back(arena.AttrName(a));
      return model;
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<CounterModel> FindCounterModel(const ExprArena& arena,
                                             const std::vector<Pd>& e,
                                             const Pd& query,
                                             std::size_t max_population) {
  return SearchPopulations(arena, e, &query, max_population);
}

std::optional<CounterModel> FindModel(const ExprArena& arena,
                                      const std::vector<Pd>& e,
                                      std::size_t max_population) {
  return SearchPopulations(arena, e, nullptr, max_population);
}

}  // namespace psem
