#include "core/semigroup.h"

#include "util/strings.h"

namespace psem {

AttrSet IcSemigroupTheory::Resize(const AttrSet& s) const {
  if (s.size() == universe_->size()) return s;
  AttrSet out(universe_->size());
  s.ForEach([&](std::size_t i) { out.Set(i); });
  return out;
}

void IcSemigroupTheory::AddEquation(AttrSet lhs, AttrSet rhs) {
  equations_.emplace_back(std::move(lhs), std::move(rhs));
}

Status IcSemigroupTheory::AddParsed(std::string_view text) {
  std::size_t eq = text.find('=');
  if (eq == std::string_view::npos) {
    return Status::InvalidArgument("equation must contain '='");
  }
  auto parse_word = [&](std::string_view side) -> Result<AttrSet> {
    std::vector<std::string> names = SplitAndStrip(std::string(side), ' ');
    if (names.empty()) {
      return Status::InvalidArgument("word must be nonempty");
    }
    for (const auto& n : names) {
      if (!IsIdentifier(n)) {
        return Status::InvalidArgument("bad attribute '" + n + "'");
      }
    }
    return universe_->MakeSet(names);
  };
  PSEM_ASSIGN_OR_RETURN(AttrSet lhs, parse_word(text.substr(0, eq)));
  PSEM_ASSIGN_OR_RETURN(AttrSet rhs, parse_word(text.substr(eq + 1)));
  AddEquation(std::move(lhs), std::move(rhs));
  return Status::OK();
}

AttrSet IcSemigroupTheory::NormalForm(const AttrSet& x) const {
  AttrSet current = Resize(x);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [lhs, rhs] : equations_) {
      AttrSet l = Resize(lhs), r = Resize(rhs);
      if (l.IsSubsetOf(current)) changed |= current.UnionWith(r);
      if (r.IsSubsetOf(current)) changed |= current.UnionWith(l);
    }
  }
  return current;
}

bool IcSemigroupTheory::Equal(const AttrSet& x, const AttrSet& y) const {
  return NormalForm(x) == NormalForm(y);
}

bool IcSemigroupTheory::LeqWord(const AttrSet& x, const AttrSet& y) const {
  AttrSet xy = Resize(x);
  xy.UnionWith(Resize(y));
  return Equal(x, xy);
}

std::vector<Fd> IcSemigroupTheory::ToFds() const {
  std::vector<Fd> fds;
  for (const auto& [lhs, rhs] : equations_) {
    AttrSet l = Resize(lhs), r = Resize(rhs);
    fds.push_back(Fd{l, r});
    fds.push_back(Fd{r, l});
  }
  return fds;
}

IcSemigroupTheory IcSemigroupTheory::FromFds(Universe* universe,
                                             const std::vector<Fd>& fds) {
  IcSemigroupTheory t(universe);
  for (const Fd& fd : fds) {
    AttrSet lhs = t.Resize(fd.lhs);
    AttrSet both = lhs;
    both.UnionWith(t.Resize(fd.rhs));
    t.AddEquation(std::move(lhs), std::move(both));
  }
  return t;
}

}  // namespace psem
