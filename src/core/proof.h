/// @file proof.h
/// @brief Checkable derivations over the seven arc rules of ALG.

// Proof extraction for PD implication. Algorithm ALG (Section 5.2) is a
// saturation procedure: every arc it adds is justified by one of seven
// rules. This module re-runs the saturation with provenance tracking and
// extracts, for an implied PD, an explicit derivation — a sequence of
// arcs each annotated with the rule and premises that produced it. Proofs
// are independently checkable (ValidateProof) and renderable, giving the
// library an "explain" capability on top of the yes/no engine.

#ifndef PSEM_CORE_PROOF_H_
#define PSEM_CORE_PROOF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "lattice/expr.h"
#include "util/status.h"

namespace psem {

/// One derived arc p <= q with its justification. Mirrors ALG's rules:
/// reflexivity (step 1, generalized to all vertices), hypothesis (step 6),
/// the four monotonicity/decomposition steps 2-5, and transitivity
/// (step 7).
struct ProofStep {
  enum class Rule : uint8_t {
    kReflexivity,   ///< e <= e.
    kHypothesis,    ///< arc of a constraint in E (step 6).
    kSumLub,        ///< p <= s, q <= s  =>  p+q <= s   (step 2).
    kProductLower,  ///< p <= s          =>  p*q <= s,
                    ///< q <= s          =>  p*q <= s   (step 3).
    kProductGlb,    ///< s <= p, s <= q  =>  s <= p*q   (step 4).
    kSumUpper,      ///< s <= p          =>  s <= p+q,
                    ///< s <= q          =>  s <= p+q   (step 5).
    kTransitivity,  ///< p <= r, r <= q  =>  p <= q     (step 7).
  };

  ExprId lhs;
  ExprId rhs;
  Rule rule;
  /// Indices (into Proof::steps) of the premises; kNoPremise if unused.
  static constexpr uint32_t kNoPremise = UINT32_MAX;
  uint32_t premise1 = kNoPremise;
  uint32_t premise2 = kNoPremise;
  /// For kHypothesis: index of the constraint in the engine's E.
  uint32_t hypothesis_index = kNoPremise;
};

/// A derivation of `goal` (its final step) from a constraint set. Steps
/// are topologically ordered: premises always precede their consumers.
struct Proof {
  std::vector<ProofStep> steps;

  const ProofStep& goal() const { return steps.back(); }
};

/// Saturation engine with provenance. Slower than PdImplicationEngine
/// (it applies rules arc-by-arc); use it when a derivation is wanted, the
/// bitset engine when only the verdict is.
class ProvenanceEngine {
 public:
  ProvenanceEngine(const ExprArena* arena, std::vector<Pd> constraints);

  /// A proof of e <= e', or NotFound if E does not imply it.
  Result<Proof> ProveLeq(ExprId lhs, ExprId rhs);

  /// A proof of the query. For an equation, the returned proof derives
  /// lhs <= rhs and a second call can derive the converse; this
  /// convenience concatenates both directions (goal = last step = the
  /// rhs <= lhs direction) when is_equation.
  Result<Proof> Prove(const Pd& query);

  const std::vector<Pd>& constraints() const { return constraints_; }

 private:
  void Saturate();
  void AddVertex(ExprId e);
  // Adds arc with provenance if new; returns true if added.
  bool AddArc(ExprId l, ExprId r, ProofStep step);

  const ExprArena* arena_;
  std::vector<Pd> constraints_;
  std::vector<ExprId> vertices_;
  // arc key -> index into all_steps_.
  std::vector<ProofStep> all_steps_;
  std::vector<uint64_t> arc_keys_;  // parallel to all_steps_
  // key -> step index
  std::unordered_map<uint64_t, uint32_t> arc_index_;
  bool saturated_ = false;
};

/// Checks a proof for well-formedness and local rule validity against the
/// constraint set: premises precede consumers, each step's conclusion
/// follows from its premises by its rule, and the goal matches (lhs, rhs)
/// when provided.
Status ValidateProof(const ExprArena& arena, const std::vector<Pd>& constraints,
                     const Proof& proof);

/// Human-readable rendering, one numbered step per line.
std::string RenderProof(const ExprArena& arena, const Proof& proof);

}  // namespace psem

#endif  // PSEM_CORE_PROOF_H_
