#include "core/fd_theory.h"

#include <algorithm>
#include <queue>

namespace psem {

Status FdTheory::AddParsed(std::string_view text) {
  PSEM_ASSIGN_OR_RETURN(Fd fd, Fd::Parse(universe_, text));
  Add(std::move(fd));
  return Status::OK();
}

namespace {

// Grows a set to the current universe size (sets created before later
// Intern calls may be short).
AttrSet Resize(const AttrSet& s, std::size_t n) {
  if (s.size() == n) return s;
  AttrSet out(n);
  s.ForEach([&](std::size_t i) { out.Set(i); });
  return out;
}

}  // namespace

AttrSet FdTheory::Closure(const AttrSet& x) const {
  const std::size_t n = universe_->size();
  AttrSet closure = Resize(x, n);
  // Beeri–Bernstein: counter of missing lhs attributes per FD; per-attr
  // list of FDs whose lhs mention it.
  std::vector<uint32_t> missing(fds_.size(), 0);
  std::vector<std::vector<uint32_t>> fds_on_attr(n);
  std::queue<uint32_t> work;
  for (std::size_t f = 0; f < fds_.size(); ++f) {
    AttrSet lhs = Resize(fds_[f].lhs, n);
    lhs.ForEach([&](std::size_t a) {
      if (!closure.Test(a)) {
        ++missing[f];
        fds_on_attr[a].push_back(static_cast<uint32_t>(f));
      }
    });
    if (missing[f] == 0) {
      Resize(fds_[f].rhs, n).ForEach([&](std::size_t a) {
        if (!closure.Test(a)) {
          closure.Set(a);
          work.push(static_cast<uint32_t>(a));
        }
      });
    }
  }
  while (!work.empty()) {
    uint32_t a = work.front();
    work.pop();
    for (uint32_t f : fds_on_attr[a]) {
      if (--missing[f] == 0) {
        Resize(fds_[f].rhs, n).ForEach([&](std::size_t b) {
          if (!closure.Test(b)) {
            closure.Set(b);
            work.push(static_cast<uint32_t>(b));
          }
        });
      }
    }
  }
  return closure;
}

bool FdTheory::Implies(const Fd& fd) const {
  const std::size_t n = universe_->size();
  return Resize(fd.rhs, n).IsSubsetOf(Closure(fd.lhs));
}

bool FdTheory::EquivalentTo(const FdTheory& other) const {
  for (const Fd& fd : other.fds_) {
    if (!Implies(fd)) return false;
  }
  for (const Fd& fd : fds_) {
    if (!other.Implies(fd)) return false;
  }
  return true;
}

AttrSet FdTheory::MinimizeKey(AttrSet key, const AttrSet& scheme) const {
  const std::size_t n = universe_->size();
  key = Resize(key, n);
  AttrSet target = Resize(scheme, n);
  for (std::size_t a = 0; a < n; ++a) {
    if (!key.Test(a)) continue;
    AttrSet smaller = key;
    smaller.Reset(a);
    if (!smaller.Any()) continue;
    if (target.IsSubsetOf(Closure(smaller))) key = smaller;
  }
  return key;
}

std::vector<AttrSet> FdTheory::Keys(const AttrSet& scheme) const {
  const std::size_t n = universe_->size();
  AttrSet target = Resize(scheme, n);
  std::vector<AttrSet> keys;
  keys.push_back(MinimizeKey(target, target));
  // Lucchesi–Osborn: for each known key K and FD X -> Y, the set
  // X u (K - Y) is a superkey; if no known key is contained in it, its
  // minimization is a new key.
  for (std::size_t ki = 0; ki < keys.size(); ++ki) {
    for (const Fd& fd : fds_) {
      AttrSet candidate = Resize(fd.lhs, n);
      candidate.IntersectWith(target);  // keep within the scheme
      AttrSet rest = keys[ki];
      rest.SubtractWith(Resize(fd.rhs, n));
      candidate.UnionWith(rest);
      if (!candidate.Any()) continue;
      if (!target.IsSubsetOf(Closure(candidate))) continue;
      bool dominated = false;
      for (const AttrSet& k : keys) {
        if (k.IsSubsetOf(candidate)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) keys.push_back(MinimizeKey(candidate, target));
    }
  }
  std::sort(keys.begin(), keys.end(), [](const AttrSet& a, const AttrSet& b) {
    if (a.Count() != b.Count()) return a.Count() < b.Count();
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a.Test(i) != b.Test(i)) return a.Test(i);
    }
    return false;
  });
  return keys;
}

std::vector<Fd> FdTheory::MinimalCover() const {
  const std::size_t n = universe_->size();
  // 1. Singleton right-hand sides.
  std::vector<Fd> cover;
  for (const Fd& fd : fds_) {
    Resize(fd.rhs, n).ForEach([&](std::size_t b) {
      AttrSet rhs(n);
      rhs.Set(b);
      cover.push_back(Fd{Resize(fd.lhs, n), rhs});
    });
  }
  FdTheory full(universe_);
  full.fds_ = cover;
  // 2. Remove extraneous lhs attributes.
  for (Fd& fd : full.fds_) {
    for (std::size_t a = 0; a < n; ++a) {
      if (!fd.lhs.Test(a)) continue;
      AttrSet smaller = fd.lhs;
      smaller.Reset(a);
      if (!smaller.Any()) continue;
      if (fd.rhs.IsSubsetOf(full.Closure(smaller))) fd.lhs = smaller;
    }
  }
  // 3. Deduplicate, then remove redundant FDs one at a time, testing each
  // against the remaining cover.
  std::vector<Fd> current;
  for (const Fd& fd : full.fds_) {
    if (std::find(current.begin(), current.end(), fd) == current.end()) {
      current.push_back(fd);
    }
  }
  for (std::size_t i = 0; i < current.size();) {
    FdTheory without(universe_);
    for (std::size_t j = 0; j < current.size(); ++j) {
      if (j != i) without.Add(current[j]);
    }
    if (without.Implies(current[i])) {
      current.erase(current.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  return current;
}

}  // namespace psem
