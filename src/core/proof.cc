#include "core/proof.h"

#include <algorithm>
#include <set>
#include <unordered_map>

namespace psem {

namespace {
inline uint64_t ArcKey(ExprId l, ExprId r) {
  return (static_cast<uint64_t>(l) << 32) | r;
}
}  // namespace

ProvenanceEngine::ProvenanceEngine(const ExprArena* arena,
                                   std::vector<Pd> constraints)
    : arena_(arena), constraints_(std::move(constraints)) {
  for (const Pd& pd : constraints_) {
    AddVertex(pd.lhs);
    AddVertex(pd.rhs);
  }
}

void ProvenanceEngine::AddVertex(ExprId e) {
  for (ExprId v : vertices_) {
    if (v == e) return;
  }
  if (!arena_->IsAttr(e)) {
    AddVertex(arena_->LhsOf(e));
    AddVertex(arena_->RhsOf(e));
  }
  vertices_.push_back(e);
  saturated_ = false;
}

bool ProvenanceEngine::AddArc(ExprId l, ExprId r, ProofStep step) {
  uint64_t key = ArcKey(l, r);
  if (arc_index_.count(key)) return false;
  step.lhs = l;
  step.rhs = r;
  arc_index_.emplace(key, static_cast<uint32_t>(all_steps_.size()));
  all_steps_.push_back(step);
  arc_keys_.push_back(key);
  return true;
}

void ProvenanceEngine::Saturate() {
  if (saturated_) return;
  // Rebuild from scratch: vertices may have grown since the last run, and
  // arcs derived with a smaller V stay valid but premise indices are
  // simplest to keep consistent by recomputation.
  all_steps_.clear();
  arc_keys_.clear();
  arc_index_.clear();

  // Step 1 (generalized): reflexivity.
  for (ExprId v : vertices_) {
    ProofStep s;
    s.rule = ProofStep::Rule::kReflexivity;
    AddArc(v, v, s);
  }
  // Step 6: hypotheses.
  for (uint32_t i = 0; i < constraints_.size(); ++i) {
    ProofStep s;
    s.rule = ProofStep::Rule::kHypothesis;
    s.hypothesis_index = i;
    AddArc(constraints_[i].lhs, constraints_[i].rhs, s);
    if (constraints_[i].is_equation) {
      AddArc(constraints_[i].rhs, constraints_[i].lhs, s);
    }
  }

  auto index_of = [&](ExprId l, ExprId r) -> uint32_t {
    return arc_index_.at(ArcKey(l, r));
  };
  auto has = [&](ExprId l, ExprId r) -> bool {
    return arc_index_.count(ArcKey(l, r)) > 0;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (ExprId m : vertices_) {
      if (arena_->IsAttr(m)) continue;
      ExprId p = arena_->LhsOf(m), q = arena_->RhsOf(m);
      for (ExprId s : vertices_) {
        if (arena_->KindOf(m) == ExprKind::kSum) {
          if (has(p, s) && has(q, s) && !has(m, s)) {
            ProofStep st;
            st.rule = ProofStep::Rule::kSumLub;
            st.premise1 = index_of(p, s);
            st.premise2 = index_of(q, s);
            changed |= AddArc(m, s, st);
          }
          if (has(s, p) && !has(s, m)) {
            ProofStep st;
            st.rule = ProofStep::Rule::kSumUpper;
            st.premise1 = index_of(s, p);
            changed |= AddArc(s, m, st);
          }
          if (has(s, q) && !has(s, m)) {
            ProofStep st;
            st.rule = ProofStep::Rule::kSumUpper;
            st.premise1 = index_of(s, q);
            changed |= AddArc(s, m, st);
          }
        } else {
          if (has(p, s) && !has(m, s)) {
            ProofStep st;
            st.rule = ProofStep::Rule::kProductLower;
            st.premise1 = index_of(p, s);
            changed |= AddArc(m, s, st);
          }
          if (has(q, s) && !has(m, s)) {
            ProofStep st;
            st.rule = ProofStep::Rule::kProductLower;
            st.premise1 = index_of(q, s);
            changed |= AddArc(m, s, st);
          }
          if (has(s, p) && has(s, q) && !has(s, m)) {
            ProofStep st;
            st.rule = ProofStep::Rule::kProductGlb;
            st.premise1 = index_of(s, p);
            st.premise2 = index_of(s, q);
            changed |= AddArc(s, m, st);
          }
        }
      }
    }
    // Step 7: transitivity over a snapshot.
    std::size_t snapshot = all_steps_.size();
    for (std::size_t i = 0; i < snapshot; ++i) {
      for (std::size_t j = 0; j < snapshot; ++j) {
        if (all_steps_[i].rhs != all_steps_[j].lhs) continue;
        ExprId a = all_steps_[i].lhs, c = all_steps_[j].rhs;
        if (arc_index_.count(ArcKey(a, c))) continue;
        ProofStep st;
        st.rule = ProofStep::Rule::kTransitivity;
        st.premise1 = static_cast<uint32_t>(i);
        st.premise2 = static_cast<uint32_t>(j);
        changed |= AddArc(a, c, st);
      }
    }
  }
  saturated_ = true;
}

Result<Proof> ProvenanceEngine::ProveLeq(ExprId lhs, ExprId rhs) {
  AddVertex(lhs);
  AddVertex(rhs);
  Saturate();
  auto it = arc_index_.find(ArcKey(lhs, rhs));
  if (it == arc_index_.end()) {
    return Status::NotFound("E does not imply " + arena_->ToString(lhs) +
                            " <= " + arena_->ToString(rhs));
  }
  // Backward reachability from the goal step; then topological emission.
  std::vector<uint32_t> order;
  std::set<uint32_t> visited;
  std::vector<uint32_t> stack{it->second};
  // Iterative postorder.
  while (!stack.empty()) {
    uint32_t s = stack.back();
    const ProofStep& step = all_steps_[s];
    bool ready = true;
    for (uint32_t prem : {step.premise1, step.premise2}) {
      if (prem != ProofStep::kNoPremise && !visited.count(prem)) {
        stack.push_back(prem);
        ready = false;
      }
    }
    if (!ready) continue;
    stack.pop_back();
    if (visited.insert(s).second) order.push_back(s);
  }
  // Remap premise indices.
  std::unordered_map<uint32_t, uint32_t> remap;
  Proof proof;
  for (uint32_t s : order) {
    ProofStep step = all_steps_[s];
    if (step.premise1 != ProofStep::kNoPremise) {
      step.premise1 = remap.at(step.premise1);
    }
    if (step.premise2 != ProofStep::kNoPremise) {
      step.premise2 = remap.at(step.premise2);
    }
    remap[s] = static_cast<uint32_t>(proof.steps.size());
    proof.steps.push_back(step);
  }
  return proof;
}

Result<Proof> ProvenanceEngine::Prove(const Pd& query) {
  PSEM_ASSIGN_OR_RETURN(Proof fwd, ProveLeq(query.lhs, query.rhs));
  if (!query.is_equation) return fwd;
  PSEM_ASSIGN_OR_RETURN(Proof bwd, ProveLeq(query.rhs, query.lhs));
  // Concatenate: offset the backward proof's premise indices.
  uint32_t offset = static_cast<uint32_t>(fwd.steps.size());
  for (ProofStep step : bwd.steps) {
    if (step.premise1 != ProofStep::kNoPremise) step.premise1 += offset;
    if (step.premise2 != ProofStep::kNoPremise) step.premise2 += offset;
    fwd.steps.push_back(step);
  }
  return fwd;
}

namespace {

const char* RuleName(ProofStep::Rule rule) {
  switch (rule) {
    case ProofStep::Rule::kReflexivity:
      return "reflexivity";
    case ProofStep::Rule::kHypothesis:
      return "hypothesis";
    case ProofStep::Rule::kSumLub:
      return "sum-lub";
    case ProofStep::Rule::kProductLower:
      return "product-lower";
    case ProofStep::Rule::kProductGlb:
      return "product-glb";
    case ProofStep::Rule::kSumUpper:
      return "sum-upper";
    case ProofStep::Rule::kTransitivity:
      return "transitivity";
  }
  return "?";
}

}  // namespace

Status ValidateProof(const ExprArena& arena,
                     const std::vector<Pd>& constraints, const Proof& proof) {
  if (proof.steps.empty()) {
    return Status::InvalidArgument("empty proof");
  }
  for (std::size_t i = 0; i < proof.steps.size(); ++i) {
    const ProofStep& s = proof.steps[i];
    auto premise_ok = [&](uint32_t p) {
      return p != ProofStep::kNoPremise && p < i;
    };
    auto fail = [&](const std::string& why) {
      return Status::FailedPrecondition("step " + std::to_string(i) + " (" +
                                        RuleName(s.rule) + "): " + why);
    };
    switch (s.rule) {
      case ProofStep::Rule::kReflexivity:
        if (s.lhs != s.rhs) return fail("lhs != rhs");
        break;
      case ProofStep::Rule::kHypothesis: {
        if (s.hypothesis_index >= constraints.size()) {
          return fail("bad hypothesis index");
        }
        const Pd& pd = constraints[s.hypothesis_index];
        bool fwd = pd.lhs == s.lhs && pd.rhs == s.rhs;
        bool bwd = pd.is_equation && pd.lhs == s.rhs && pd.rhs == s.lhs;
        if (!fwd && !bwd) return fail("arc does not match hypothesis");
        break;
      }
      case ProofStep::Rule::kSumLub: {
        if (arena.KindOf(s.lhs) != ExprKind::kSum) return fail("lhs not a sum");
        if (!premise_ok(s.premise1) || !premise_ok(s.premise2)) {
          return fail("bad premises");
        }
        const ProofStep& p1 = proof.steps[s.premise1];
        const ProofStep& p2 = proof.steps[s.premise2];
        if (p1.lhs != arena.LhsOf(s.lhs) || p2.lhs != arena.RhsOf(s.lhs) ||
            p1.rhs != s.rhs || p2.rhs != s.rhs) {
          return fail("premises do not justify sum-lub");
        }
        break;
      }
      case ProofStep::Rule::kProductLower: {
        if (arena.KindOf(s.lhs) != ExprKind::kProduct) {
          return fail("lhs not a product");
        }
        if (!premise_ok(s.premise1)) return fail("bad premise");
        const ProofStep& p1 = proof.steps[s.premise1];
        bool from_left = p1.lhs == arena.LhsOf(s.lhs) && p1.rhs == s.rhs;
        bool from_right = p1.lhs == arena.RhsOf(s.lhs) && p1.rhs == s.rhs;
        if (!from_left && !from_right) {
          return fail("premise does not justify product-lower");
        }
        break;
      }
      case ProofStep::Rule::kProductGlb: {
        if (arena.KindOf(s.rhs) != ExprKind::kProduct) {
          return fail("rhs not a product");
        }
        if (!premise_ok(s.premise1) || !premise_ok(s.premise2)) {
          return fail("bad premises");
        }
        const ProofStep& p1 = proof.steps[s.premise1];
        const ProofStep& p2 = proof.steps[s.premise2];
        if (p1.lhs != s.lhs || p2.lhs != s.lhs ||
            p1.rhs != arena.LhsOf(s.rhs) || p2.rhs != arena.RhsOf(s.rhs)) {
          return fail("premises do not justify product-glb");
        }
        break;
      }
      case ProofStep::Rule::kSumUpper: {
        if (arena.KindOf(s.rhs) != ExprKind::kSum) return fail("rhs not a sum");
        if (!premise_ok(s.premise1)) return fail("bad premise");
        const ProofStep& p1 = proof.steps[s.premise1];
        bool to_left = p1.lhs == s.lhs && p1.rhs == arena.LhsOf(s.rhs);
        bool to_right = p1.lhs == s.lhs && p1.rhs == arena.RhsOf(s.rhs);
        if (!to_left && !to_right) {
          return fail("premise does not justify sum-upper");
        }
        break;
      }
      case ProofStep::Rule::kTransitivity: {
        if (!premise_ok(s.premise1) || !premise_ok(s.premise2)) {
          return fail("bad premises");
        }
        const ProofStep& p1 = proof.steps[s.premise1];
        const ProofStep& p2 = proof.steps[s.premise2];
        if (p1.lhs != s.lhs || p1.rhs != p2.lhs || p2.rhs != s.rhs) {
          return fail("premises do not chain");
        }
        break;
      }
    }
  }
  return Status::OK();
}

std::string RenderProof(const ExprArena& arena, const Proof& proof) {
  std::string out;
  for (std::size_t i = 0; i < proof.steps.size(); ++i) {
    const ProofStep& s = proof.steps[i];
    out += std::to_string(i + 1) + ". " + arena.ToString(s.lhs) +
           " <= " + arena.ToString(s.rhs) + "   [" + RuleName(s.rule);
    if (s.rule == ProofStep::Rule::kHypothesis) {
      out += " E" + std::to_string(s.hypothesis_index + 1);
    }
    if (s.premise1 != ProofStep::kNoPremise) {
      out += " from " + std::to_string(s.premise1 + 1);
    }
    if (s.premise2 != ProofStep::kNoPremise) {
      out += ", " + std::to_string(s.premise2 + 1);
    }
    out += "]\n";
  }
  return out;
}

}  // namespace psem
