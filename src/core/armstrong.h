/// @file armstrong.h
/// @brief Armstrong relations: certificates satisfying exactly the implied FDs.

// Armstrong relations for FD theories. An Armstrong relation for Sigma
// satisfies exactly the FDs Sigma implies — the classical certificate
// that an FD design is complete (Armstrong [2], cited as the FD
// inference-system source in Section 5.3). Construction: one "agree
// pattern" row pair per closed attribute set of the theory; two rows
// agree exactly on a closed set, so X -> Y holds iff Y lies in X+.
//
// Under partition semantics this doubles as a canonical-interpretation
// generator: I(armstrong relation) satisfies exactly the FPDs implied by
// the encoded FD set (Theorem 3), which the tests exploit.

#ifndef PSEM_CORE_ARMSTRONG_H_
#define PSEM_CORE_ARMSTRONG_H_

#include <vector>

#include "core/fd_theory.h"
#include "relational/relation.h"
#include "util/status.h"

namespace psem {

/// Builds an Armstrong relation for `theory` over the attribute set
/// `scheme` into a fresh relation of `db` named `name`. The relation has
/// one base row plus one row per distinct closed set (intersection
/// closure of the attribute closures), so its size is bounded by the
/// number of closed sets — exponential in the worst case, small for
/// typical designs. Fails if `scheme` is empty.
Result<std::size_t> BuildArmstrongRelation(const FdTheory& theory,
                                           const AttrSet& scheme, Database* db,
                                           const std::string& name = "armstrong");

/// All closed sets of `theory` within `scheme` (sets X ⊆ scheme with
/// closure(X) ∩ scheme = X), enumerated with Ganter's NextClosure
/// algorithm (polynomial delay per closed set; output order is lectic).
std::vector<AttrSet> ClosedSets(const FdTheory& theory, const AttrSet& scheme);

}  // namespace psem

#endif  // PSEM_CORE_ARMSTRONG_H_
