// PD implication — the uniform word problem for lattices (Section 5).
//
// Given a finite set E of PDs and a query PD delta, Theorem 8 shows the
// following are all equivalent: delta holds in every lattice satisfying E,
// in every finite such lattice, in every relation satisfying E, and in
// every finite such relation. Algorithm ALG (Section 5.2) decides this in
// polynomial time: build the set V of all subexpressions of E and the
// query, then close a digraph Gamma over V under seven arc rules; the
// query e <= e' is implied iff the arc (e, e') appears (Lemma 9.2).
//
// PdImplicationEngine implements ALG with bit-parallel row operations on
// the arc matrix (a straightforward implementation is O(n^4); the bitset
// representation divides the constant by 64). NaivePdImplication applies
// the seven rules literally, arc by arc, as a slow reference for
// differential tests.

#ifndef PSEM_CORE_IMPLICATION_H_
#define PSEM_CORE_IMPLICATION_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "lattice/expr.h"
#include "util/bitset.h"
#include "util/status.h"

namespace psem {

/// Counters from the most recent closure computation.
struct AlgStats {
  std::size_t num_vertices = 0;  ///< |V|: distinct subexpressions.
  std::size_t num_arcs = 0;      ///< arcs in the final Gamma.
  std::size_t passes = 0;        ///< fixpoint sweeps over the rules.
};

/// Decides E |= e = e' / e <= e' by Algorithm ALG. Queries may introduce
/// new subexpressions; the engine extends V and recomputes the closure
/// lazily when that happens.
class PdImplicationEngine {
 public:
  /// The engine keeps a pointer to `arena`; it must outlive the engine.
  PdImplicationEngine(const ExprArena* arena, std::vector<Pd> constraints);

  /// E |=_lat query — equivalently |=_fin, |=_rel, |=_rel,fin (Theorem 8).
  bool Implies(const Pd& query);

  /// E |= e <= e'.
  bool ImpliesLeq(ExprId e1, ExprId e2);

  /// Ensures all of `exprs` are vertices of V and the closure is current.
  /// After this, LeqInClosure may be used for any pair of them.
  void Prepare(const std::vector<ExprId>& exprs);

  /// Arc lookup in the computed closure. Both expressions must have been
  /// passed to Prepare (or appear in the constraints).
  bool LeqInClosure(ExprId e1, ExprId e2) const;

  const AlgStats& stats() const { return stats_; }
  const std::vector<Pd>& constraints() const { return constraints_; }
  const ExprArena& arena() const { return *arena_; }

 private:
  void AddVertex(ExprId e);
  void ComputeClosure();

  const ExprArena* arena_;
  std::vector<Pd> constraints_;

  std::vector<ExprId> vertices_;                    // index -> ExprId
  std::unordered_map<ExprId, uint32_t> vertex_of_;  // ExprId -> index
  // Children as vertex indices (kNoVertex for attribute leaves).
  static constexpr uint32_t kNoVertex = UINT32_MAX;
  std::vector<uint32_t> lhs_, rhs_;
  std::vector<ExprKind> kind_;

  // up_[i] bit j set <=> arc (i, j) in Gamma, i.e. i <=_E j.
  std::vector<DynamicBitset> up_;
  bool closure_valid_ = false;
  AlgStats stats_;
};

/// Literal transcription of ALG (Section 5.2): a worklist of arcs, the
/// seven rules applied one arc at a time. Exponentially clearer, far
/// slower; used to differential-test the engine.
bool NaivePdImplication(const ExprArena& arena, const std::vector<Pd>& e,
                        const Pd& query);

}  // namespace psem

#endif  // PSEM_CORE_IMPLICATION_H_
