/// @file implication.h
/// @brief Algorithm ALG: PD implication as arc-digraph closure (Section 5.2), with parallel, incremental, and batched service layers.

// PD implication — the uniform word problem for lattices (Section 5).
//
// Given a finite set E of PDs and a query PD delta, Theorem 8 shows the
// following are all equivalent: delta holds in every lattice satisfying E,
// in every finite such lattice, in every relation satisfying E, and in
// every finite such relation. Algorithm ALG (Section 5.2) decides this in
// polynomial time: build the set V of all subexpressions of E and the
// query, then close a digraph Gamma over V under seven arc rules; the
// query e <= e' is implied iff the arc (e, e') appears (Lemma 9.2).
//
// PdImplicationEngine implements ALG as a *semi-naive delta fixpoint*
// over bit-parallel rows (a straightforward implementation is O(n^4); the
// bitset representation divides the constant by 64, and the delta
// discipline removes the redundant rescans): every row keeps a new-arc
// frontier (delta_up_), a worklist tracks the rows whose frontier
// changed, and each round applies the seven arc rules only to those
// deltas — transitivity is joined against the delta, never the full
// relation, the column view is maintained incrementally from consumed
// deltas instead of per-pass transpose rebuilds, and an exact running arc
// counter replaces per-pass full-matrix count scans. When the frontier
// saturates, the serial engine switches to a cache-blocked 64-row-tile
// kernel for the dense endgame. Service-layer extensions on top (see
// docs/architecture.md for the full correctness arguments):
//
//  * Parallel closure. With EngineOptions::num_threads > 1 the delta
//    rounds run Jacobi-style: each worker owns a contiguous band of
//    Gamma's bitset rows, consumes the round's frozen frontier against a
//    persistent row mirror (re-synced only for rows that changed), and
//    writes only its own rows; rounds are separated by a ThreadPool
//    barrier. Because the seven rules are monotone (arcs are only ever
//    added) and every write is justified by mirrored/frozen arcs, the
//    parallel loop converges to the same least fixpoint as the serial one.
//
//  * Incremental closure. Lemma 9.2 identifies "arc (e, e') in the closed
//    Gamma" with the V-independent relation E |= e <= e'; hence arcs
//    between existing vertices never change when V grows. Prepare/Implies
//    with new subexpressions therefore extends the rows in place, seeds
//    the worklist from the dirty frontier alone (new vertices plus the
//    composite catch-up arcs), and re-closes from the previous closure as
//    a warm start instead of restarting from the seed arcs.
//
//  * Batched queries. BatchImplies answers a whole query span against one
//    shared closure, and an LRU cache keyed on interned (ExprId, ExprId)
//    pairs memoizes verdicts across calls; by the same V-independence the
//    cache never needs invalidation for a fixed E.
//
// NaivePdImplication applies the seven rules literally, arc by arc, as a
// slow reference for differential tests.
//
// Thread-compatibility: const methods (LeqInClosure, stats, ...) are safe
// to call concurrently once Prepare has returned; the mutating entry
// points (Implies, BatchImplies, Prepare) must be externally serialized.

#ifndef PSEM_CORE_IMPLICATION_H_
#define PSEM_CORE_IMPLICATION_H_

#include <cstdint>
#include <list>
#include <memory>
#include <set>
#include <span>
#include <unordered_map>
#include <vector>

#include "lattice/expr.h"
#include "util/bitset.h"
#include "util/exec_context.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace psem {

/// Counters from the engine's closure computations and query cache.
struct AlgStats {
  std::size_t num_vertices = 0;  ///< |V|: distinct subexpressions.
  std::size_t num_arcs = 0;      ///< arcs in the final Gamma.
  std::size_t passes = 0;        ///< delta rounds of the last closure.

  /// Arcs added by each round of the most recent closure (index = round).
  std::vector<std::size_t> pass_arc_delta;

  /// Rounds of the last closure served by each kernel of the semi-naive
  /// sweep: the per-row worklist (sparse) vs the blocked 64-row tile
  /// kernel (dense). The parallel banded sweep counts as sparse.
  std::size_t sparse_rounds = 0;
  std::size_t dense_rounds = 0;

  // Wall-clock seconds per phase, accumulated over the engine's lifetime.
  double seed_seconds = 0.0;       ///< seeding reflexive + constraint arcs.
  double rules_seconds = 0.0;      ///< arc-rule sweeps (rules 2-5, 7).
  double transpose_seconds = 0.0;  ///< row/column transposes + snapshots.
  double closure_seconds = 0.0;    ///< total time inside ComputeClosure.

  std::size_t cold_closures = 0;         ///< closures computed from seed.
  std::size_t incremental_closures = 0;  ///< closures warm-started.

  std::size_t cache_lookups = 0;  ///< LRU probes.
  std::size_t cache_hits = 0;     ///< LRU probes answered.

  std::size_t num_threads = 1;  ///< workers used by the closure sweeps.

  /// True when EngineOptions requested a parallel pool but thread
  /// creation failed (real or injected) and the engine fell back to the
  /// serial sweep. Verdicts are unaffected; only throughput degrades.
  bool degraded_to_serial = false;
  std::string degradation_reason;  ///< why the downgrade happened.

  /// Closures stopped early by a deadline, cancellation, budget, or
  /// injected fault. The partial arc matrix is kept as a sound warm
  /// start; the counters above reflect the partial progress.
  std::size_t aborted_closures = 0;

  double CacheHitRate() const {
    return cache_lookups == 0
               ? 0.0
               : static_cast<double>(cache_hits) /
                     static_cast<double>(cache_lookups);
  }
};

/// Tuning knobs for PdImplicationEngine.
struct EngineOptions {
  /// Workers for the closure fixpoint. 1 (default) keeps the serial
  /// Gauss-Seidel sweep; >1 switches to the banded Jacobi sweep.
  std::size_t num_threads = 1;
  /// Capacity of the LRU query cache ((ExprId, ExprId) -> bool).
  /// 0 disables caching.
  std::size_t cache_capacity = 1024;
  /// Serial-mode sparse->dense switch: a delta round runs the blocked
  /// dense kernel when at least `dense_min_rows` rows are dirty AND the
  /// pending frontier averages at least |V|/`dense_inv_density` arcs per
  /// dirty row. The defaults keep chain-like closures (tiny per-row
  /// deltas) permanently sparse; tests lower dense_min_rows to force the
  /// dense kernel deterministically.
  std::size_t dense_min_rows = 64;
  std::size_t dense_inv_density = 8;
};

/// Decides E |= e = e' / e <= e' by Algorithm ALG. Queries may introduce
/// new subexpressions; the engine extends V and re-closes incrementally
/// when that happens.
class PdImplicationEngine {
 public:
  /// The engine keeps a pointer to `arena`; it must outlive the engine.
  /// If options request a parallel pool and thread creation fails, the
  /// engine degrades to the serial sweep and records the downgrade in
  /// stats() (degraded_to_serial / degradation_reason) — construction
  /// itself never fails.
  PdImplicationEngine(const ExprArena* arena, std::vector<Pd> constraints,
                      EngineOptions options = {});

  /// E |=_lat query — equivalently |=_fin, |=_rel, |=_rel,fin (Theorem 8).
  bool Implies(const Pd& query);

  /// Governed variant: observes ctx's deadline, cancellation token, and
  /// arc/vertex budgets. On a trip it returns kResourceExhausted or
  /// kCancelled, keeps partial progress in stats(), and leaves the engine
  /// fully usable — re-asking with a fresh context resumes from the
  /// partial closure (a sound warm start) and yields the same verdict a
  /// cold engine would.
  Result<bool> Implies(const Pd& query, const ExecContext& ctx);

  /// E |= e <= e'.
  bool ImpliesLeq(ExprId e1, ExprId e2);
  Result<bool> ImpliesLeq(ExprId e1, ExprId e2, const ExecContext& ctx);

  /// Answers every query in `queries` against one shared closure: new
  /// subexpressions across the whole batch are added to V first, the
  /// closure is (re)computed once, and duplicate queries are answered
  /// from the cache. out[i] corresponds to queries[i].
  std::vector<bool> BatchImplies(std::span<const Pd> queries);

  /// Governed batch. Failures are per-query, not collective: a query
  /// whose subexpressions would blow the vertex budget gets its own
  /// kResourceExhausted while the rest of the batch is still answered;
  /// if the one shared closure trips mid-computation, the queries already
  /// resolved from the cache keep their verdicts and only the closure-
  /// dependent remainder report the error.
  std::vector<Result<bool>> BatchImplies(std::span<const Pd> queries,
                                         const ExecContext& ctx);

  /// Ensures all of `exprs` are vertices of V and the closure is current.
  /// After this, LeqInClosure may be used for any pair of them.
  void Prepare(const std::vector<ExprId>& exprs);
  Status Prepare(const std::vector<ExprId>& exprs, const ExecContext& ctx);

  /// Grows E by one constraint without rebuilding the engine. Sound as a
  /// warm start: every arc of the old closure is a consequence of the old
  /// E, hence of the larger E (arc rules are monotone in E). The new
  /// constraint's arcs are planted at the next closure; the LRU query
  /// cache is dropped, because cached verdicts are V-independent only for
  /// a FIXED E — a larger E can flip "not implied" to "implied".
  /// Idempotent: re-adding a constraint already in E is a no-op.
  void AddConstraint(const Pd& pd);
  /// Governed variant: enforces ctx's vertex budget before mutating V.
  Status AddConstraint(const Pd& pd, const ExecContext& ctx);

  /// Arc lookup in the computed closure. Both expressions must have been
  /// passed to Prepare (or appear in the constraints). Safe to call from
  /// several threads concurrently (pure read).
  bool LeqInClosure(ExprId e1, ExprId e2) const;

  const AlgStats& stats() const { return stats_; }
  const std::vector<Pd>& constraints() const { return constraints_; }
  const ExprArena& arena() const { return *arena_; }
  const EngineOptions& options() const { return options_; }
  /// V in insertion order (children before parents). Index i here is the
  /// row/column index of the arc matrices — the order a snapshot must
  /// reproduce for RestoreClosureState.
  const std::vector<ExprId>& vertices() const { return vertices_; }

  /// The engine's closure state, detached from any particular process:
  /// everything the semi-naive fixpoint needs to resume — the arc rows,
  /// the unconsumed frontier, the exact arc counter, how far seeding got,
  /// and any constraints accepted but not yet closed over. dirty_rows_
  /// and down_ are deliberately absent: both are derivable (dirty = rows
  /// with a nonempty delta; down = transpose of the consumed arcs).
  struct EngineClosureState {
    std::vector<DynamicBitset> up;
    std::vector<DynamicBitset> delta_up;
    uint64_t arc_count = 0;
    uint64_t seeded_vertices = 0;
    bool closure_valid = false;
    std::vector<Pd> pending_constraints;
  };

  /// Copies out the closure state for snapshotting. Callable at rest or
  /// mid-abort (a partial closure is a sound warm start); fails with
  /// kFailedPrecondition only if no closure was ever started while V is
  /// nonempty in a way the state cannot express (seeding got ahead of V
  /// is impossible; V ahead of seeding simply exports the seeded prefix).
  Result<EngineClosureState> ExportClosureState() const;

  /// Replaces the engine's closure state with `state`, after verifying it
  /// is internally consistent with this engine's V (row count and widths
  /// match seeded_vertices, delta ⊆ up per row, arc_count == |up|,
  /// closure_valid implies an empty frontier). The engine's V must
  /// already cover at least `state.seeded_vertices` vertices in the
  /// exported order. Rebuilds the derived structures (dirty worklist,
  /// down_ transpose) and drops the query cache. On any validation
  /// failure the engine is left untouched and kDataLoss /
  /// kFailedPrecondition is returned.
  Status RestoreClosureState(EngineClosureState state);

  /// Full restore for a freshly constructed engine (built with an empty
  /// constraint list): re-adds `vertex_order` verbatim — valid whenever
  /// the order is children-first, which vertices() guarantees — installs
  /// `constraints` as E, then applies RestoreClosureState. The one entry
  /// point snapshot recovery needs: it reproduces the exact row indices
  /// of the engine that was snapshotted, including vertices introduced by
  /// queries rather than constraints.
  Status RestoreEngineState(const std::vector<ExprId>& vertex_order,
                            std::vector<Pd> constraints,
                            EngineClosureState state);

 private:
  void AddVertex(ExprId e);
  // Number of subexpressions of `e` not yet in V and not yet in `seen`;
  // used to enforce a vertex budget BEFORE mutating V.
  std::size_t CountNewVertices(ExprId e, std::set<ExprId>* seen) const;
  // All closure routines return OK, or the ctx/fail-point Status that
  // stopped them early. An early stop leaves closure_valid_ == false with
  // the partially propagated arc matrix, the unconsumed delta_up_ rows,
  // and the dirty-row worklist all in place — every written arc is a
  // sound consequence of E, every arc not yet propagated is still flagged
  // unconsumed, and the rules are monotone, so the next ComputeClosure
  // resumes from exactly that state and converges to the same least
  // fixpoint a cold engine reaches.
  Status ComputeClosure(const ExecContext& ctx);
  // Semi-naive delta fixpoint (rules 2-5 and 7): every round consumes the
  // per-row new-arc frontier (delta_up_) of the rows on the worklist and
  // derives only from those deltas; an arc is consumed exactly once over
  // the whole closure. The serial driver picks per round between the
  // sparse worklist kernel and the blocked 64-row-tile dense kernel on
  // measured frontier density; the parallel driver runs banded delta
  // rounds over a persistent row mirror (prev_up_) that is re-synced only
  // for rows whose frontier changed. See docs/architecture.md.
  Status DeltaFixpointSerial(const ExecContext& ctx);
  Status DeltaFixpointParallel(const ExecContext& ctx);
  Status SparseRound(const std::vector<uint32_t>& worklist,
                     const ExecContext& ctx, std::size_t* consumed_strider);
  Status DenseRound(const std::vector<uint32_t>& worklist,
                    const ExecContext& ctx);
  // Adds arc (i, m) unless present: sets the up_ bit, flags it
  // unconsumed in delta_up_, and bumps the exact arc counter. Serial
  // paths only (writes the shared dirty-row set).
  void TrySetArc(uint32_t i, uint32_t m);

  // LRU query cache over packed (e1, e2) keys. Verdicts stay valid across
  // closure growth (Lemma 9.2 makes them V-independent), so entries are
  // only evicted, never invalidated.
  bool CacheLookup(ExprId e1, ExprId e2, bool* verdict);
  void CacheInsert(ExprId e1, ExprId e2, bool verdict);
  // LeqInClosure with cache fill; requires a current closure covering
  // both vertices.
  bool LeqWithCache(ExprId e1, ExprId e2);

  const ExprArena* arena_;
  std::vector<Pd> constraints_;
  // Constraints accepted by AddConstraint whose arcs have not yet been
  // planted; consumed (and cleared) by the next ComputeClosure's seed
  // phase. Survives aborted closures that stop before seeding.
  std::vector<Pd> pending_constraints_;
  EngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // created iff num_threads > 1

  std::vector<ExprId> vertices_;                    // index -> ExprId
  std::unordered_map<ExprId, uint32_t> vertex_of_;  // ExprId -> index
  // Children as vertex indices (kNoVertex for attribute leaves).
  static constexpr uint32_t kNoVertex = UINT32_MAX;
  std::vector<uint32_t> lhs_, rhs_;
  std::vector<ExprKind> kind_;
  // parents_[c] lists every composite m having c as a child, paired with
  // the other child (== c when both children coincide). Drives the
  // delta-driven parent rules: one probe per newly consumed arc instead
  // of a full sweep over all composites.
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> parents_;

  // up_[i] bit j set <=> arc (i, j) in Gamma, i.e. i <=_E j.
  std::vector<DynamicBitset> up_;
  // Column view: down_[j] bit i set <=> arc (i, j) *consumed*. Maintained
  // incrementally — down_[j] gains bit i at the moment the delta bit
  // (i, j) is consumed, never by a full transpose rebuild — and serves as
  // the predecessor index for backward transitivity. Serial engines only;
  // the parallel sweep replaces it with dirty-mask row scans.
  std::vector<DynamicBitset> down_;
  // Semi-naive frontier: delta_up_[i] holds the arcs of row i not yet
  // propagated (always a subset of up_[i]); dirty_rows_ flags rows with a
  // nonempty frontier and doubles as the persistent worklist, so aborted
  // closures resume without reseeding.
  std::vector<DynamicBitset> delta_up_;
  DynamicBitset dirty_rows_;
  // Per-round frozen frontier (dense + parallel rounds) and the parallel
  // sweep's persistent row mirror (re-synced only for changed rows).
  std::vector<DynamicBitset> carry_;
  std::vector<DynamicBitset> prev_up_;
  // Exact running arc count: bumped once per up_ bit transition by the
  // OrInPlaceCountNew kernels and TrySetArc; replaces the per-pass
  // full-matrix count scans. Stays exact across aborted closures.
  std::size_t arc_count_ = 0;
  bool closure_valid_ = false;
  // Number of rows whose seed arcs (reflexive + constraints, or the
  // incremental composite catch-up) have been planted in the delta state.
  // 0 means no closure has ever been started.
  std::size_t seeded_vertices_ = 0;
  AlgStats stats_;

  std::list<std::pair<uint64_t, bool>> lru_;  // front = most recent
  std::unordered_map<uint64_t, std::list<std::pair<uint64_t, bool>>::iterator>
      cache_;
};

/// Literal transcription of ALG (Section 5.2): a worklist of arcs, the
/// seven rules applied one arc at a time. Exponentially clearer, far
/// slower; used to differential-test the engine.
bool NaivePdImplication(const ExprArena& arena, const std::vector<Pd>& e,
                        const Pd& query);

}  // namespace psem

#endif  // PSEM_CORE_IMPLICATION_H_
