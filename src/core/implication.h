/// @file implication.h
/// @brief Algorithm ALG: PD implication as arc-digraph closure (Section 5.2), with parallel, incremental, and batched service layers.

// PD implication — the uniform word problem for lattices (Section 5).
//
// Given a finite set E of PDs and a query PD delta, Theorem 8 shows the
// following are all equivalent: delta holds in every lattice satisfying E,
// in every finite such lattice, in every relation satisfying E, and in
// every finite such relation. Algorithm ALG (Section 5.2) decides this in
// polynomial time: build the set V of all subexpressions of E and the
// query, then close a digraph Gamma over V under seven arc rules; the
// query e <= e' is implied iff the arc (e, e') appears (Lemma 9.2).
//
// PdImplicationEngine implements ALG with bit-parallel row operations on
// the arc matrix (a straightforward implementation is O(n^4); the bitset
// representation divides the constant by 64), three service-layer
// extensions on top (see docs/architecture.md for the full correctness
// arguments):
//
//  * Parallel closure. With EngineOptions::num_threads > 1 the fixpoint
//    runs Jacobi-style: each worker owns a contiguous band of Gamma's
//    bitset rows, every sweep reads a frozen snapshot of the previous
//    frontier and writes only its own rows, and sweeps are separated by a
//    ThreadPool barrier. Because the seven rules are monotone (arcs are
//    only ever added) and every write is justified by snapshot arcs, the
//    parallel loop converges to the same least fixpoint as the serial one.
//
//  * Incremental closure. Lemma 9.2 identifies "arc (e, e') in the closed
//    Gamma" with the V-independent relation E |= e <= e'; hence arcs
//    between existing vertices never change when V grows. Prepare/Implies
//    with new subexpressions therefore extends the rows in place and
//    re-closes from the previous closure as a warm start (only the dirty
//    frontier propagates) instead of restarting from the seed arcs.
//
//  * Batched queries. BatchImplies answers a whole query span against one
//    shared closure, and an LRU cache keyed on interned (ExprId, ExprId)
//    pairs memoizes verdicts across calls; by the same V-independence the
//    cache never needs invalidation for a fixed E.
//
// NaivePdImplication applies the seven rules literally, arc by arc, as a
// slow reference for differential tests.
//
// Thread-compatibility: const methods (LeqInClosure, stats, ...) are safe
// to call concurrently once Prepare has returned; the mutating entry
// points (Implies, BatchImplies, Prepare) must be externally serialized.

#ifndef PSEM_CORE_IMPLICATION_H_
#define PSEM_CORE_IMPLICATION_H_

#include <cstdint>
#include <list>
#include <memory>
#include <set>
#include <span>
#include <unordered_map>
#include <vector>

#include "lattice/expr.h"
#include "util/bitset.h"
#include "util/exec_context.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace psem {

/// Counters from the engine's closure computations and query cache.
struct AlgStats {
  std::size_t num_vertices = 0;  ///< |V|: distinct subexpressions.
  std::size_t num_arcs = 0;      ///< arcs in the final Gamma.
  std::size_t passes = 0;        ///< fixpoint sweeps of the last closure.

  /// Arcs added by each sweep of the most recent closure (index = pass).
  std::vector<std::size_t> pass_arc_delta;

  // Wall-clock seconds per phase, accumulated over the engine's lifetime.
  double seed_seconds = 0.0;       ///< seeding reflexive + constraint arcs.
  double rules_seconds = 0.0;      ///< arc-rule sweeps (rules 2-5, 7).
  double transpose_seconds = 0.0;  ///< row/column transposes + snapshots.
  double closure_seconds = 0.0;    ///< total time inside ComputeClosure.

  std::size_t cold_closures = 0;         ///< closures computed from seed.
  std::size_t incremental_closures = 0;  ///< closures warm-started.

  std::size_t cache_lookups = 0;  ///< LRU probes.
  std::size_t cache_hits = 0;     ///< LRU probes answered.

  std::size_t num_threads = 1;  ///< workers used by the closure sweeps.

  /// True when EngineOptions requested a parallel pool but thread
  /// creation failed (real or injected) and the engine fell back to the
  /// serial sweep. Verdicts are unaffected; only throughput degrades.
  bool degraded_to_serial = false;
  std::string degradation_reason;  ///< why the downgrade happened.

  /// Closures stopped early by a deadline, cancellation, budget, or
  /// injected fault. The partial arc matrix is kept as a sound warm
  /// start; the counters above reflect the partial progress.
  std::size_t aborted_closures = 0;

  double CacheHitRate() const {
    return cache_lookups == 0
               ? 0.0
               : static_cast<double>(cache_hits) /
                     static_cast<double>(cache_lookups);
  }
};

/// Tuning knobs for PdImplicationEngine.
struct EngineOptions {
  /// Workers for the closure fixpoint. 1 (default) keeps the serial
  /// Gauss-Seidel sweep; >1 switches to the banded Jacobi sweep.
  std::size_t num_threads = 1;
  /// Capacity of the LRU query cache ((ExprId, ExprId) -> bool).
  /// 0 disables caching.
  std::size_t cache_capacity = 1024;
};

/// Decides E |= e = e' / e <= e' by Algorithm ALG. Queries may introduce
/// new subexpressions; the engine extends V and re-closes incrementally
/// when that happens.
class PdImplicationEngine {
 public:
  /// The engine keeps a pointer to `arena`; it must outlive the engine.
  /// If options request a parallel pool and thread creation fails, the
  /// engine degrades to the serial sweep and records the downgrade in
  /// stats() (degraded_to_serial / degradation_reason) — construction
  /// itself never fails.
  PdImplicationEngine(const ExprArena* arena, std::vector<Pd> constraints,
                      EngineOptions options = {});

  /// E |=_lat query — equivalently |=_fin, |=_rel, |=_rel,fin (Theorem 8).
  bool Implies(const Pd& query);

  /// Governed variant: observes ctx's deadline, cancellation token, and
  /// arc/vertex budgets. On a trip it returns kResourceExhausted or
  /// kCancelled, keeps partial progress in stats(), and leaves the engine
  /// fully usable — re-asking with a fresh context resumes from the
  /// partial closure (a sound warm start) and yields the same verdict a
  /// cold engine would.
  Result<bool> Implies(const Pd& query, const ExecContext& ctx);

  /// E |= e <= e'.
  bool ImpliesLeq(ExprId e1, ExprId e2);
  Result<bool> ImpliesLeq(ExprId e1, ExprId e2, const ExecContext& ctx);

  /// Answers every query in `queries` against one shared closure: new
  /// subexpressions across the whole batch are added to V first, the
  /// closure is (re)computed once, and duplicate queries are answered
  /// from the cache. out[i] corresponds to queries[i].
  std::vector<bool> BatchImplies(std::span<const Pd> queries);

  /// Governed batch. Failures are per-query, not collective: a query
  /// whose subexpressions would blow the vertex budget gets its own
  /// kResourceExhausted while the rest of the batch is still answered;
  /// if the one shared closure trips mid-computation, the queries already
  /// resolved from the cache keep their verdicts and only the closure-
  /// dependent remainder report the error.
  std::vector<Result<bool>> BatchImplies(std::span<const Pd> queries,
                                         const ExecContext& ctx);

  /// Ensures all of `exprs` are vertices of V and the closure is current.
  /// After this, LeqInClosure may be used for any pair of them.
  void Prepare(const std::vector<ExprId>& exprs);
  Status Prepare(const std::vector<ExprId>& exprs, const ExecContext& ctx);

  /// Arc lookup in the computed closure. Both expressions must have been
  /// passed to Prepare (or appear in the constraints). Safe to call from
  /// several threads concurrently (pure read).
  bool LeqInClosure(ExprId e1, ExprId e2) const;

  const AlgStats& stats() const { return stats_; }
  const std::vector<Pd>& constraints() const { return constraints_; }
  const ExprArena& arena() const { return *arena_; }
  const EngineOptions& options() const { return options_; }

 private:
  void AddVertex(ExprId e);
  // Number of subexpressions of `e` not yet in V and not yet in `seen`;
  // used to enforce a vertex budget BEFORE mutating V.
  std::size_t CountNewVertices(ExprId e, std::set<ExprId>* seen) const;
  // All closure routines return OK, or the ctx/fail-point Status that
  // stopped them early. An early stop leaves closure_valid_ == false and
  // the partially propagated arc matrix in place — every written arc is a
  // sound consequence of E and the rules are monotone, so the next
  // ComputeClosure converges to the same least fixpoint from that state
  // (or reseeds, for a cold start).
  Status ComputeClosure(const ExecContext& ctx);
  // Runs the fixpoint over rules 2-5 and 7 starting from the current up_
  // state (seed arcs or a previous closure) until no sweep adds an arc.
  // All three leave down_ == transpose(up_) on (successful) exit.
  Status SerialFixpoint(const ExecContext& ctx);
  Status ParallelFixpoint(const ExecContext& ctx);
  // Frontier-restricted fixpoint for the incremental case: vertices
  // [0, old_n) carry a finished closure whose old-old arcs are final
  // (Lemma 9.2), so sweeps touch only new rows (full width) and the
  // new-column tails of old rows. See docs/architecture.md.
  Status IncrementalFixpoint(std::size_t old_n, const ExecContext& ctx);
  std::size_t CountArcs() const;

  // LRU query cache over packed (e1, e2) keys. Verdicts stay valid across
  // closure growth (Lemma 9.2 makes them V-independent), so entries are
  // only evicted, never invalidated.
  bool CacheLookup(ExprId e1, ExprId e2, bool* verdict);
  void CacheInsert(ExprId e1, ExprId e2, bool verdict);
  // LeqInClosure with cache fill; requires a current closure covering
  // both vertices.
  bool LeqWithCache(ExprId e1, ExprId e2);

  const ExprArena* arena_;
  std::vector<Pd> constraints_;
  EngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // created iff num_threads > 1

  std::vector<ExprId> vertices_;                    // index -> ExprId
  std::unordered_map<ExprId, uint32_t> vertex_of_;  // ExprId -> index
  // Children as vertex indices (kNoVertex for attribute leaves).
  static constexpr uint32_t kNoVertex = UINT32_MAX;
  std::vector<uint32_t> lhs_, rhs_;
  std::vector<ExprKind> kind_;

  // up_[i] bit j set <=> arc (i, j) in Gamma, i.e. i <=_E j.
  std::vector<DynamicBitset> up_;
  // Column view: down_[j] bit i set <=> arc (i, j). Kept equal to the
  // transpose of up_ whenever closure_valid_; the incremental fixpoint
  // warm-starts from both matrices.
  std::vector<DynamicBitset> down_;
  bool closure_valid_ = false;
  // Number of vertices covered by the last completed closure; rows beyond
  // it are not yet seeded. 0 means no closure has ever been computed.
  std::size_t closed_vertices_ = 0;
  AlgStats stats_;

  std::list<std::pair<uint64_t, bool>> lru_;  // front = most recent
  std::unordered_map<uint64_t, std::list<std::pair<uint64_t, bool>>::iterator>
      cache_;
};

/// Literal transcription of ALG (Section 5.2): a worklist of arcs, the
/// seven rules applied one arc at a time. Exponentially clearer, far
/// slower; used to differential-test the engine.
bool NaivePdImplication(const ExprArena& arena, const std::vector<Pd>& e,
                        const Pd& query);

}  // namespace psem

#endif  // PSEM_CORE_IMPLICATION_H_
