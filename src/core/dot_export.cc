#include "core/dot_export.h"

namespace psem {

namespace {

std::string EscapeDot(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string ExportLatticeDot(const FiniteLattice& l,
                             const std::string& graph_name) {
  std::string out = "digraph " + graph_name + " {\n";
  out += "  rankdir=BT;\n  node [shape=ellipse];\n";
  for (LatticeElem x = 0; x < l.size(); ++x) {
    out += "  n" + std::to_string(x) + " [label=\"" + EscapeDot(l.NameOf(x)) +
           "\"];\n";
  }
  for (LatticeElem x = 0; x < l.size(); ++x) {
    for (LatticeElem c : l.CoversOf(x)) {
      out += "  n" + std::to_string(x) + " -> n" + std::to_string(c) + ";\n";
    }
  }
  out += "}\n";
  return out;
}

std::string ExportProofDot(const ExprArena& arena, const Proof& proof,
                           const std::string& graph_name) {
  std::string out = "digraph " + graph_name + " {\n";
  out += "  rankdir=TB;\n  node [shape=box];\n";
  for (std::size_t i = 0; i < proof.steps.size(); ++i) {
    const ProofStep& s = proof.steps[i];
    std::string label = arena.ToString(s.lhs) + " <= " + arena.ToString(s.rhs);
    out += "  s" + std::to_string(i) + " [label=\"" + EscapeDot(label) +
           "\"];\n";
  }
  for (std::size_t i = 0; i < proof.steps.size(); ++i) {
    const ProofStep& s = proof.steps[i];
    for (uint32_t prem : {s.premise1, s.premise2}) {
      if (prem != ProofStep::kNoPremise) {
        out += "  s" + std::to_string(prem) + " -> s" + std::to_string(i) +
               ";\n";
      }
    }
  }
  // Highlight the goal.
  out += "  s" + std::to_string(proof.steps.size() - 1) +
         " [style=bold, color=blue];\n";
  out += "}\n";
  return out;
}

}  // namespace psem
