#include "core/snapshot.h"

#include <unordered_map>
#include <utility>

namespace psem {

namespace {

constexpr uint32_t kSnapshotVersion = 1;

constexpr uint32_t kTagMeta = ChunkTag("META");
constexpr uint32_t kTagAttrs = ChunkTag("ATTR");
constexpr uint32_t kTagVertices = ChunkTag("VERT");
constexpr uint32_t kTagConstraints = ChunkTag("CONS");
constexpr uint32_t kTagRows = ChunkTag("ROWS");
constexpr uint32_t kTagDeltas = ChunkTag("DLTA");

constexpr std::size_t kMaxAttrNameLen = 4096;

constexpr uint8_t kConsEquation = 1;  // CONS flag bits
constexpr uint8_t kConsPending = 2;

std::size_t WordsFor(std::size_t bits) { return (bits + 63) / 64; }

}  // namespace

const char* RecoveryTierName(RecoveryTier tier) {
  switch (tier) {
    case RecoveryTier::kColdStart:
      return "cold-start";
    case RecoveryTier::kCleanRestore:
      return "clean-restore";
    case RecoveryTier::kJournalTailTruncated:
      return "journal-tail-truncated";
    case RecoveryTier::kColdRecompute:
      return "cold-recompute";
  }
  return "unknown";
}

uint64_t TheoryFingerprint(const ExprArena& arena,
                           const std::vector<Pd>& pds) {
  uint32_t crc = 0;
  uint64_t total = 0;
  for (const Pd& pd : pds) {
    std::string line = arena.ToString(pd);
    line.push_back('\n');  // delimit, so ["a","b"] != ["ab"]
    crc = Crc32c(line.data(), line.size(), crc);
    total += line.size();
  }
  return (total << 32) ^ crc;
}

Result<std::string> EncodeSnapshot(const PdImplicationEngine& engine,
                                   uint64_t base_fingerprint) {
  PSEM_ASSIGN_OR_RETURN(PdImplicationEngine::EngineClosureState state,
                        engine.ExportClosureState());
  const ExprArena& arena = engine.arena();
  const std::vector<ExprId>& vertices = engine.vertices();

  std::unordered_map<ExprId, uint32_t> index_of;
  index_of.reserve(vertices.size());
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    index_of.emplace(vertices[i], static_cast<uint32_t>(i));
  }

  // ATTR + VERT: V serialized structurally. ExprIds are arena-local and
  // meaningless in another process; kind + name/child-indices are not.
  std::vector<AttrId> attr_order;
  std::unordered_map<uint32_t, uint32_t> attr_local;
  ByteWriter vert;
  vert.U32(static_cast<uint32_t>(vertices.size()));
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    ExprId e = vertices[i];
    vert.U8(static_cast<uint8_t>(arena.KindOf(e)));
    if (arena.IsAttr(e)) {
      AttrId a = arena.AttrOf(e);
      auto [it, inserted] =
          attr_local.emplace(a, static_cast<uint32_t>(attr_order.size()));
      if (inserted) attr_order.push_back(a);
      vert.U32(it->second);
    } else {
      uint32_t l = index_of.at(arena.LhsOf(e));
      uint32_t r = index_of.at(arena.RhsOf(e));
      PSEM_CHECK(l < i && r < i, "engine vertex order not children-first");
      vert.U32(l);
      vert.U32(r);
    }
  }
  ByteWriter attrs;
  attrs.U32(static_cast<uint32_t>(attr_order.size()));
  for (AttrId a : attr_order) attrs.Str(arena.AttrName(a));

  // CONS: E as vertex-index pairs; pending = accepted but not yet closed
  // over (snapshot taken between AddConstraint and the next closure).
  ByteWriter cons;
  cons.U32(static_cast<uint32_t>(engine.constraints().size()));
  for (const Pd& pd : engine.constraints()) {
    uint8_t flags = pd.is_equation ? kConsEquation : 0;
    for (const Pd& p : state.pending_constraints) {
      if (p == pd) {
        flags |= kConsPending;
        break;
      }
    }
    cons.U32(index_of.at(pd.lhs));
    cons.U32(index_of.at(pd.rhs));
    cons.U8(flags);
  }

  // ROWS: the dense arc matrix of the seeded prefix, row-major words.
  // DLTA: only the nonempty frontier rows (usually none at rest).
  const std::size_t m = state.up.size();
  const std::size_t words = WordsFor(m);
  ByteWriter rows;
  for (const DynamicBitset& row : state.up) {
    for (std::size_t k = 0; k < words; ++k) rows.U64(row.word(k));
  }
  ByteWriter deltas;
  uint32_t nonempty = 0;
  for (const DynamicBitset& row : state.delta_up) {
    if (row.Any()) ++nonempty;
  }
  deltas.U32(nonempty);
  for (std::size_t i = 0; i < m; ++i) {
    if (!state.delta_up[i].Any()) continue;
    deltas.U32(static_cast<uint32_t>(i));
    for (std::size_t k = 0; k < words; ++k) deltas.U64(state.delta_up[i].word(k));
  }

  ByteWriter meta;
  meta.U32(kSnapshotVersion);
  meta.U64(base_fingerprint);
  meta.U64(state.arc_count);
  meta.U64(state.seeded_vertices);
  meta.U64(vertices.size());
  meta.U8(state.closure_valid ? 1 : 0);

  std::vector<Chunk> chunks;
  chunks.push_back(Chunk{kTagMeta, meta.Take()});
  chunks.push_back(Chunk{kTagAttrs, attrs.Take()});
  chunks.push_back(Chunk{kTagVertices, vert.Take()});
  chunks.push_back(Chunk{kTagConstraints, cons.Take()});
  chunks.push_back(Chunk{kTagRows, rows.Take()});
  chunks.push_back(Chunk{kTagDeltas, deltas.Take()});
  return EncodeChunkContainer(kSnapshotVersion, chunks);
}

Result<DecodedSnapshot> DecodeSnapshot(std::string_view bytes,
                                       ExprArena* arena,
                                       const DurableLimits& limits) {
  if (arena == nullptr) {
    return Status::InvalidArgument("arena must not be null");
  }
  PSEM_ASSIGN_OR_RETURN(ChunkContainer container,
                        DecodeChunkContainer(bytes, limits));
  if (container.version != kSnapshotVersion) {
    return Status::DataLoss("unsupported snapshot version " +
                            std::to_string(container.version));
  }
  const std::string* payloads[6] = {};
  const uint32_t tags[6] = {kTagMeta,        kTagAttrs, kTagVertices,
                            kTagConstraints, kTagRows,  kTagDeltas};
  for (const Chunk& c : container.chunks) {
    for (int t = 0; t < 6; ++t) {
      if (c.tag != tags[t]) continue;
      if (payloads[t] != nullptr) {
        return Status::DataLoss("duplicate snapshot chunk");
      }
      payloads[t] = &c.payload;
    }
  }
  for (int t = 0; t < 6; ++t) {
    if (payloads[t] == nullptr) {
      return Status::DataLoss("missing snapshot chunk");
    }
  }

  DecodedSnapshot snap;

  ByteReader meta(*payloads[0]);
  uint32_t snap_version = 0;
  uint64_t seeded = 0, n_vertices = 0;
  uint8_t closure_valid = 0;
  meta.U32(&snap_version);
  meta.U64(&snap.base_fingerprint);
  meta.U64(&snap.state.arc_count);
  meta.U64(&seeded);
  meta.U64(&n_vertices);
  meta.U8(&closure_valid);
  if (!meta.ok() || !meta.AtEnd() || snap_version != kSnapshotVersion ||
      closure_valid > 1 || seeded > n_vertices) {
    return Status::DataLoss("malformed snapshot META chunk");
  }
  snap.state.seeded_vertices = seeded;
  snap.state.closure_valid = closure_valid != 0;

  // ATTR: the attribute name table.
  ByteReader attrs(*payloads[1]);
  uint32_t attr_count = 0;
  if (!attrs.U32(&attr_count) ||
      static_cast<uint64_t>(attr_count) * 4 > attrs.remaining()) {
    return Status::DataLoss("malformed snapshot ATTR chunk");
  }
  std::vector<ExprId> attr_exprs;
  attr_exprs.reserve(attr_count);
  for (uint32_t a = 0; a < attr_count; ++a) {
    std::string name;
    if (!attrs.Str(&name, kMaxAttrNameLen) || name.empty()) {
      return Status::DataLoss("malformed snapshot attribute name");
    }
    attr_exprs.push_back(arena->Attr(name));
  }
  if (!attrs.AtEnd()) {
    return Status::DataLoss("trailing bytes in snapshot ATTR chunk");
  }

  // VERT: rebuild V children-first; every child index must be < i, which
  // both bounds the recursion and re-proves the children-first order the
  // engine requires.
  ByteReader vert(*payloads[2]);
  uint32_t vcount = 0;
  if (!vert.U32(&vcount) || vcount != n_vertices ||
      static_cast<uint64_t>(vcount) * 5 > vert.remaining()) {
    return Status::DataLoss("malformed snapshot VERT chunk");
  }
  snap.vertices.reserve(vcount);
  for (uint32_t i = 0; i < vcount; ++i) {
    uint8_t kind = 0;
    if (!vert.U8(&kind)) return Status::DataLoss("truncated snapshot vertex");
    if (kind == static_cast<uint8_t>(ExprKind::kAttr)) {
      uint32_t a = 0;
      if (!vert.U32(&a) || a >= attr_count) {
        return Status::DataLoss("snapshot vertex attribute out of range");
      }
      snap.vertices.push_back(attr_exprs[a]);
    } else if (kind == static_cast<uint8_t>(ExprKind::kProduct) ||
               kind == static_cast<uint8_t>(ExprKind::kSum)) {
      uint32_t l = 0, r = 0;
      if (!vert.U32(&l) || !vert.U32(&r) || l >= i || r >= i) {
        return Status::DataLoss("snapshot vertex child out of range");
      }
      snap.vertices.push_back(
          kind == static_cast<uint8_t>(ExprKind::kProduct)
              ? arena->Product(snap.vertices[l], snap.vertices[r])
              : arena->Sum(snap.vertices[l], snap.vertices[r]));
    } else {
      return Status::DataLoss("snapshot vertex has unknown kind");
    }
  }
  if (!vert.AtEnd()) {
    return Status::DataLoss("trailing bytes in snapshot VERT chunk");
  }

  // CONS: E (and which of it is still pending) as vertex-index pairs.
  ByteReader cons(*payloads[3]);
  uint32_t ccount = 0;
  if (!cons.U32(&ccount) ||
      static_cast<uint64_t>(ccount) * 9 > cons.remaining()) {
    return Status::DataLoss("malformed snapshot CONS chunk");
  }
  snap.constraints.reserve(ccount);
  for (uint32_t c = 0; c < ccount; ++c) {
    uint32_t l = 0, r = 0;
    uint8_t flags = 0;
    if (!cons.U32(&l) || !cons.U32(&r) || !cons.U8(&flags) || l >= vcount ||
        r >= vcount || (flags & ~(kConsEquation | kConsPending)) != 0) {
      return Status::DataLoss("malformed snapshot constraint");
    }
    Pd pd;
    pd.lhs = snap.vertices[l];
    pd.rhs = snap.vertices[r];
    pd.is_equation = (flags & kConsEquation) != 0;
    snap.constraints.push_back(pd);
    if (flags & kConsPending) snap.state.pending_constraints.push_back(pd);
  }
  if (!cons.AtEnd()) {
    return Status::DataLoss("trailing bytes in snapshot CONS chunk");
  }

  // ROWS / DLTA: the arc matrix and frontier of the seeded prefix.
  // set_word rejects stray tail bits — a bit flip past position m-1 in
  // the last word must read as corruption, not silently vanish.
  const std::size_t m = static_cast<std::size_t>(seeded);
  const std::size_t words = WordsFor(m);
  ByteReader rows(*payloads[4]);
  if (rows.remaining() != m * words * 8) {
    return Status::DataLoss("snapshot ROWS chunk has wrong size");
  }
  snap.state.up.assign(m, DynamicBitset(m));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t k = 0; k < words; ++k) {
      uint64_t w = 0;
      rows.U64(&w);
      if (!snap.state.up[i].set_word(k, w)) {
        return Status::DataLoss("snapshot row has bits beyond the universe");
      }
    }
  }

  ByteReader deltas(*payloads[5]);
  uint32_t dcount = 0;
  if (!deltas.U32(&dcount) || dcount > m ||
      deltas.remaining() != static_cast<uint64_t>(dcount) * (4 + words * 8)) {
    return Status::DataLoss("malformed snapshot DLTA chunk");
  }
  snap.state.delta_up.assign(m, DynamicBitset(m));
  uint32_t prev_row = 0;
  for (uint32_t d = 0; d < dcount; ++d) {
    uint32_t row = 0;
    deltas.U32(&row);
    if (row >= m || (d > 0 && row <= prev_row)) {
      return Status::DataLoss("snapshot DLTA rows out of order");
    }
    prev_row = row;
    for (std::size_t k = 0; k < words; ++k) {
      uint64_t w = 0;
      deltas.U64(&w);
      if (!snap.state.delta_up[row].set_word(k, w)) {
        return Status::DataLoss("snapshot delta has bits beyond the universe");
      }
    }
  }
  return snap;
}

Result<DurablePdEngine> DurablePdEngine::Recover(ExprArena* arena,
                                                 std::vector<Pd> base,
                                                 DurabilityOptions options,
                                                 const ExecContext& ctx) {
  if (arena == nullptr) {
    return Status::InvalidArgument("arena must not be null");
  }
  DurablePdEngine d;
  d.arena_ = arena;
  d.options_ = std::move(options);
  d.base_fingerprint_ = TheoryFingerprint(*arena, base);
  PSEM_RETURN_IF_ERROR(ctx.Check());

  // Journal first: it is the source of truth, so a broken header is a
  // hard kDataLoss (unlike the snapshot, nothing can stand in for it).
  // Open itself repairs a torn tail — the crash-mid-append signature.
  if (!d.options_.journal_path.empty()) {
    PSEM_ASSIGN_OR_RETURN(
        Journal journal, Journal::Open(d.options_.journal_path,
                                       d.options_.limits));
    d.recovery_.journal_records = journal.recovered().records.size();
    d.recovery_.journal_tail_truncated = journal.recovered().tail_truncated;
    d.recovery_.journal_bytes_dropped = journal.recovered().bytes_dropped;
    d.journal_.emplace(std::move(journal));
  }

  // Snapshot next: strictly an accelerator. Any verification failure —
  // unreadable file, checksum, malformed chunk, wrong base theory —
  // records the reason and falls through to the cold path.
  if (!d.options_.snapshot_path.empty()) {
    auto bytes = ReadFileBounded(d.options_.snapshot_path, d.options_.limits);
    if (bytes.ok()) {
      d.recovery_.snapshot_present = true;
      Status restored = [&]() -> Status {
        PSEM_ASSIGN_OR_RETURN(
            DecodedSnapshot snap,
            DecodeSnapshot(*bytes, arena, d.options_.limits));
        if (snap.base_fingerprint != d.base_fingerprint_) {
          return Status::DataLoss(
              "snapshot was taken over a different base theory");
        }
        d.recovery_.restored_vertices = snap.vertices.size();
        d.recovery_.restored_arcs = snap.state.arc_count;
        auto engine = std::make_unique<PdImplicationEngine>(
            arena, std::vector<Pd>{}, d.options_.engine);
        PSEM_RETURN_IF_ERROR(engine->RestoreEngineState(
            snap.vertices, std::move(snap.constraints),
            std::move(snap.state)));
        d.engine_ = std::move(engine);
        return Status::OK();
      }();
      if (restored.ok()) {
        d.recovery_.snapshot_restored = true;
      } else {
        d.recovery_.snapshot_error = restored.ToString();
        d.recovery_.restored_vertices = 0;
        d.recovery_.restored_arcs = 0;
        d.engine_.reset();
      }
    } else if (bytes.status().code() != StatusCode::kNotFound) {
      d.recovery_.snapshot_present = true;
      d.recovery_.snapshot_error = bytes.status().ToString();
    }
  }

  if (d.engine_ == nullptr) {
    d.engine_ = std::make_unique<PdImplicationEngine>(arena, std::move(base),
                                                      d.options_.engine);
  }

  // Replay the journal through the incremental path. AddConstraint
  // dedupes, so records the snapshot already covers are no-ops — which
  // is what lets the journal stay cumulative across checkpoints.
  if (d.journal_.has_value()) {
    for (const std::string& record : d.journal_->recovered().records) {
      auto pd = arena->ParsePd(record);
      if (!pd.ok()) {
        return Status::DataLoss("journal record does not parse: " +
                                pd.status().ToString());
      }
      bool known = false;
      for (const Pd& c : d.engine_->constraints()) {
        if (c == *pd) {
          known = true;
          break;
        }
      }
      if (!known) {
        PSEM_RETURN_IF_ERROR(d.engine_->AddConstraint(*pd, ctx));
        ++d.recovery_.journal_replayed_new;
      }
    }
  }

  if (d.recovery_.snapshot_present && !d.recovery_.snapshot_restored) {
    d.recovery_.tier = RecoveryTier::kColdRecompute;
  } else if (d.recovery_.journal_tail_truncated) {
    d.recovery_.tier = RecoveryTier::kJournalTailTruncated;
  } else if (d.recovery_.snapshot_restored) {
    d.recovery_.tier = RecoveryTier::kCleanRestore;
  } else {
    d.recovery_.tier = RecoveryTier::kColdStart;
  }
  return d;
}

Status DurablePdEngine::AddPd(const Pd& pd, const ExecContext& ctx) {
  for (const Pd& c : engine_->constraints()) {
    if (c == pd) return Status::OK();
  }
  PSEM_RETURN_IF_ERROR(ctx.Check());
  // Write-ahead discipline: the journal record is durable BEFORE the
  // constraint takes effect. A crash after Append but before the engine
  // applies it replays the record on recovery; a failed Append applies
  // nothing, so the caller may retry.
  if (journal_.has_value()) {
    PSEM_RETURN_IF_ERROR(journal_->Append(arena_->ToString(pd)));
  }
  PSEM_RETURN_IF_ERROR(engine_->AddConstraint(pd, ctx));
  ++since_checkpoint_;
  if (!options_.snapshot_path.empty() && options_.checkpoint_every != 0 &&
      since_checkpoint_ >= options_.checkpoint_every) {
    // Best-effort: a checkpoint trip (deadline, injected fault, full
    // disk) must not fail the accept — the journal already holds the
    // record. The outcome is kept for the caller to inspect.
    Checkpoint(ctx);
  }
  return Status::OK();
}

Status DurablePdEngine::Checkpoint(const ExecContext& ctx) {
  if (options_.snapshot_path.empty()) {
    return last_checkpoint_status_ =
               Status::FailedPrecondition("no snapshot path configured");
  }
  Status st = ctx.Check();
  if (st.ok()) {
    auto bytes = EncodeSnapshot(*engine_, base_fingerprint_);
    st = bytes.ok() ? AtomicWriteFile(options_.snapshot_path, *bytes)
                    : bytes.status();
  }
  last_checkpoint_status_ = st;
  if (st.ok()) since_checkpoint_ = 0;
  return st;
}

}  // namespace psem
