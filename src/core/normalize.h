/// @file normalize.h
/// @brief The Section 6.2 PD normalization pipeline behind Theorem 12.

// The PD normalization pipeline of Section 6.2, the preprocessing behind
// the polynomial consistency test (Theorem 12):
//
//  1. Flatten: replace every PD by PDs of the forms C = A * B, C = A + B,
//     and A = B over an extended attribute set (fresh attributes name
//     subexpressions).
//  2. Decompose: C = A * B becomes the FPDs C -> A, C -> B, AB -> C;
//     C = A + B becomes the FPDs A -> C, B -> C plus the residual
//     constraint C <= A + B, which is not an FPD (Theorem 4 shows it is
//     not even first-order).
//  3. Close: compute with Algorithm ALG every consequence A <= B between
//     single attributes and add it as an FD; prune each C <= A + B whose A
//     and B have become comparable (it degenerates to an FPD and moves to
//     F).
//
// The result is F, a set of plain FDs over the extended universe, plus the
// surviving sum-upper constraints. Lemma 12.1: a database has a weak
// instance satisfying E iff it has one satisfying F alone — the sum-upper
// leftovers can always be repaired by adding tuples.

#ifndef PSEM_CORE_NORMALIZE_H_
#define PSEM_CORE_NORMALIZE_H_

#include <string>
#include <vector>

#include "lattice/expr.h"
#include "relational/dependency.h"
#include "relational/universe.h"
#include "util/status.h"

namespace psem {

/// A surviving constraint C <= A + B (attributes of the extended
/// universe, pairwise incomparable A, B under E+).
struct SumUpperConstraint {
  RelAttrId c;
  RelAttrId a;
  RelAttrId b;
};

/// Output of the Section 6.2 pipeline.
struct NormalizedPds {
  /// F: every FPD of E+, as FDs over the (extended) universe.
  std::vector<Fd> fpds;
  /// The C <= A + B constraints that survived pruning.
  std::vector<SumUpperConstraint> sum_uppers;
  /// Names of the fresh attributes introduced by flattening (already
  /// interned into the universe).
  std::vector<std::string> fresh_attrs;
};

/// Runs the full pipeline on `pds` (expressions over `arena`; attribute
/// names shared with `universe` by name, new ones interned). Polynomial
/// time: flattening is linear, the closure is one ALG run.
Result<NormalizedPds> NormalizePds(const ExprArena& arena,
                                   const std::vector<Pd>& pds,
                                   Universe* universe);

}  // namespace psem

#endif  // PSEM_CORE_NORMALIZE_H_
