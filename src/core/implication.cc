#include "core/implication.h"

#include <atomic>
#include <cassert>
#include <chrono>
#include <optional>
#include <set>

#include "util/failpoint.h"

namespace psem {

namespace {

using SteadyClock = std::chrono::steady_clock;

double SecondsSince(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

uint64_t PairKey(ExprId e1, ExprId e2) {
  return (static_cast<uint64_t>(e1) << 32) | e2;
}

// How often the governed sweeps poll the deadline/cancel state: every
// (kCheckStride) rows. Budget comparisons are per-pass and cost nothing.
constexpr std::size_t kCheckStride = 256;

}  // namespace

PdImplicationEngine::PdImplicationEngine(const ExprArena* arena,
                                         std::vector<Pd> constraints,
                                         EngineOptions options)
    : arena_(arena), constraints_(std::move(constraints)), options_(options) {
  if (options_.num_threads > 1) {
    // Graceful degradation: a failed pool spawn (thread exhaustion in the
    // environment, or the psem.threadpool.spawn fail point) downgrades to
    // the serial sweep instead of propagating an exception. Verdicts are
    // identical either way; the downgrade is recorded in stats().
    auto pool = ThreadPool::Create(options_.num_threads);
    if (pool.ok()) {
      pool_ = std::move(pool).value();
    } else {
      stats_.degraded_to_serial = true;
      stats_.degradation_reason = pool.status().message();
    }
  }
  for (const Pd& pd : constraints_) {
    AddVertex(pd.lhs);
    AddVertex(pd.rhs);
  }
}

std::size_t PdImplicationEngine::CountNewVertices(ExprId e,
                                                  std::set<ExprId>* seen) const {
  if (vertex_of_.count(e) || seen->count(e)) return 0;
  seen->insert(e);
  std::size_t count = 1;
  if (!arena_->IsAttr(e)) {
    count += CountNewVertices(arena_->LhsOf(e), seen);
    count += CountNewVertices(arena_->RhsOf(e), seen);
  }
  return count;
}

void PdImplicationEngine::AddVertex(ExprId e) {
  if (vertex_of_.count(e)) return;
  // Children first so child indices exist.
  if (!arena_->IsAttr(e)) {
    AddVertex(arena_->LhsOf(e));
    AddVertex(arena_->RhsOf(e));
  }
  uint32_t idx = static_cast<uint32_t>(vertices_.size());
  vertices_.push_back(e);
  vertex_of_.emplace(e, idx);
  kind_.push_back(arena_->KindOf(e));
  if (arena_->IsAttr(e)) {
    lhs_.push_back(kNoVertex);
    rhs_.push_back(kNoVertex);
  } else {
    lhs_.push_back(vertex_of_.at(arena_->LhsOf(e)));
    rhs_.push_back(vertex_of_.at(arena_->RhsOf(e)));
  }
  closure_valid_ = false;
}

std::size_t PdImplicationEngine::CountArcs() const {
  std::size_t arcs = 0;
  for (const DynamicBitset& row : up_) arcs += row.Count();
  return arcs;
}

Status PdImplicationEngine::ComputeClosure(const ExecContext& ctx) {
  const auto closure_start = SteadyClock::now();
  const std::size_t n = vertices_.size();

  {
    Status st = ctx.CheckVertices(n);
    if (st.ok()) st = ctx.Check();
    if (st.ok() && PSEM_FAILPOINT(failpoints::kAlgSeedAlloc)) {
      st = Status::ResourceExhausted(
          "injected arc-matrix allocation failure (psem.alg.seed_alloc)");
    }
    if (!st.ok()) {
      ++stats_.aborted_closures;
      return st;  // nothing mutated yet; the engine state is untouched
    }
  }

  // Seed phase. Cold: reflexive arcs everywhere plus the constraint arcs.
  // (Rule 1 seeds (A, A) for attributes only and derives reflexivity of
  // composites via rules 3/4, resp. 5/2; seeding all vertices is sound
  // and saves passes.) Incremental: the previous closure is itself a set
  // of sound consequences of E (Lemma 9.2), so it is a valid warm start —
  // old rows are widened in place and only the new vertices get fresh
  // reflexive rows. Arcs between old vertices are already final and the
  // fixpoint below only propagates the dirty frontier around the new
  // vertices.
  if (closed_vertices_ == 0) {
    up_.assign(n, DynamicBitset(n));
    for (std::size_t i = 0; i < n; ++i) up_[i].Set(i);
    // Rule 6: each constraint contributes its arc(s).
    for (const Pd& pd : constraints_) {
      uint32_t l = vertex_of_.at(pd.lhs);
      uint32_t r = vertex_of_.at(pd.rhs);
      up_[l].Set(r);
      if (pd.is_equation) up_[r].Set(l);
    }
    ++stats_.cold_closures;
  } else {
    for (std::size_t i = 0; i < closed_vertices_; ++i) {
      up_[i].Resize(n);
      down_[i].Resize(n);
    }
    up_.resize(n);
    down_.resize(n);
    for (std::size_t i = closed_vertices_; i < n; ++i) {
      up_[i] = DynamicBitset(n);
      up_[i].Set(i);
      down_[i] = DynamicBitset(n);
      down_[i].Set(i);
    }
    ++stats_.incremental_closures;
  }
  stats_.seed_seconds += SecondsSince(closure_start);

  stats_.pass_arc_delta.clear();
  Status st;
  if (pool_) {
    // The banded sweep is full-width; a warm start still converges in
    // fewer passes than a cold one.
    st = ParallelFixpoint(ctx);
  } else if (closed_vertices_ > 0) {
    st = IncrementalFixpoint(closed_vertices_, ctx);
  } else {
    st = SerialFixpoint(ctx);
  }

  // Partial stats are filled in even when the fixpoint stopped early —
  // the partial-stats-on-timeout contract (docs/robustness.md).
  stats_.num_vertices = n;
  stats_.num_arcs = CountArcs();
  stats_.num_threads = pool_ ? pool_->num_threads() : 1;
  stats_.closure_seconds += SecondsSince(closure_start);

  if (!st.ok()) {
    // closure_valid_ stays false and closed_vertices_ keeps its previous
    // value: the partially propagated matrix is a sound warm start for
    // the next attempt (arcs are only ever added and every written arc
    // is justified), so the engine remains fully usable.
    ++stats_.aborted_closures;
    return st;
  }
  closed_vertices_ = n;
  closure_valid_ = true;
  return Status::OK();
}

// Fixpoint over rules 2-5 and 7, alternating row-space (up) and
// column-space (down) formulations; in-place Gauss-Seidel propagation.
Status PdImplicationEngine::SerialFixpoint(const ExecContext& ctx) {
  const std::size_t n = vertices_.size();
  const bool governed = !ctx.unbounded();
  down_.assign(n, DynamicBitset(n));
  std::size_t passes = 0;
  std::size_t arcs_before = CountArcs();
  bool changed = true;
  while (changed) {
    changed = false;
    stats_.passes = ++passes;
    if (PSEM_FAILPOINT(failpoints::kAlgSweep)) {
      return Status::Internal("injected closure-sweep fault (psem.alg.sweep)");
    }
    if (governed) PSEM_RETURN_IF_ERROR(ctx.Check());
    auto rules_start = SteadyClock::now();
    // Rule 7 (transitivity), one sweep: up[i] |= up[j] for j in up[i].
    for (std::size_t i = 0; i < n; ++i) {
      if (governed && (i % kCheckStride) == 0) {
        PSEM_RETURN_IF_ERROR(ctx.Check());
      }
      for (std::size_t j = up_[i].NextSetBit(0); j < n;
           j = up_[i].NextSetBit(j + 1)) {
        if (j != i) changed |= up_[i].UnionWith(up_[j]);
      }
    }
    // Rule 3: (p, s) or (q, s) => (p*q, s).
    // Rule 2: (p, s) and (q, s) => (p+q, s).
    for (std::size_t m = 0; m < n; ++m) {
      if (kind_[m] == ExprKind::kProduct) {
        changed |= up_[m].UnionWith(up_[lhs_[m]]);
        changed |= up_[m].UnionWith(up_[rhs_[m]]);
      } else if (kind_[m] == ExprKind::kSum) {
        changed |= up_[m].UnionWithAnd(up_[lhs_[m]], up_[rhs_[m]]);
      }
    }
    stats_.rules_seconds += SecondsSince(rules_start);
    // Transpose into down.
    auto transpose_start = SteadyClock::now();
    for (std::size_t i = 0; i < n; ++i) down_[i].Clear();
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = up_[i].NextSetBit(0); j < n;
           j = up_[i].NextSetBit(j + 1)) {
        down_[j].Set(i);
      }
    }
    stats_.transpose_seconds += SecondsSince(transpose_start);
    // Rule 5: (s, p) or (s, q) => (s, p+q).
    // Rule 4: (s, p) and (s, q) => (s, p*q).
    rules_start = SteadyClock::now();
    for (std::size_t m = 0; m < n; ++m) {
      if (kind_[m] == ExprKind::kSum) {
        changed |= down_[m].UnionWith(down_[lhs_[m]]);
        changed |= down_[m].UnionWith(down_[rhs_[m]]);
      } else if (kind_[m] == ExprKind::kProduct) {
        changed |= down_[m].UnionWithAnd(down_[lhs_[m]], down_[rhs_[m]]);
      }
    }
    stats_.rules_seconds += SecondsSince(rules_start);
    // Transpose back into up.
    transpose_start = SteadyClock::now();
    for (std::size_t i = 0; i < n; ++i) up_[i].Clear();
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t i = down_[j].NextSetBit(0); i < n;
           i = down_[j].NextSetBit(i + 1)) {
        up_[i].Set(j);
      }
    }
    stats_.transpose_seconds += SecondsSince(transpose_start);
    std::size_t arcs_now = CountArcs();
    stats_.pass_arc_delta.push_back(arcs_now - arcs_before);
    arcs_before = arcs_now;
    if (governed) PSEM_RETURN_IF_ERROR(ctx.CheckArcs(arcs_now));
  }
  return Status::OK();
}

// Banded Jacobi fixpoint: each phase partitions the rows (or columns)
// into contiguous bands, one worker per band; workers read only a frozen
// snapshot (`prev`) of the matrix from before the phase and write only
// rows they own, and the ParallelFor join is the barrier between phases.
// Snapshot reads mean a sweep may propagate one step "behind" the serial
// Gauss-Seidel sweep, but every written arc is justified by snapshot
// arcs, the rules are monotone, and the loop runs until no sweep adds an
// arc — so it converges to the same least fixpoint (the argument is
// spelled out in docs/architecture.md).
Status PdImplicationEngine::ParallelFixpoint(const ExecContext& ctx) {
  const std::size_t n = vertices_.size();
  const bool governed = !ctx.unbounded();
  std::vector<DynamicBitset> prev(n, DynamicBitset(n));
  down_.assign(n, DynamicBitset(n));
  std::size_t passes = 0;
  std::size_t arcs_before = CountArcs();
  std::atomic<bool> changed{true};
  // Cooperative abort: any band that observes a tripped context sets the
  // flag; every band checks it per row and bails, and the driving thread
  // surfaces the Status after the barrier. Mid-sweep writes are partial
  // but sound (each is justified by snapshot arcs), so the matrix stays
  // a valid warm start.
  std::atomic<bool> aborted{false};
  auto band_check = [&](std::size_t i) {
    if (aborted.load(std::memory_order_relaxed)) return true;
    if ((i % kCheckStride) == 0 &&
        (ctx.cancelled() || ctx.deadline_expired())) {
      aborted.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  };
  while (changed.load(std::memory_order_relaxed)) {
    changed.store(false, std::memory_order_relaxed);
    ++passes;
    stats_.passes = passes;
    if (PSEM_FAILPOINT(failpoints::kAlgSweep)) {
      return Status::Internal("injected closure-sweep fault (psem.alg.sweep)");
    }
    if (governed) PSEM_RETURN_IF_ERROR(ctx.Check());

    // Snapshot up -> prev.
    auto transpose_start = SteadyClock::now();
    pool_->ParallelFor(n, [&](std::size_t, std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) prev[i] = up_[i];
    });
    stats_.transpose_seconds += SecondsSince(transpose_start);

    // Row-space sweep: rule 7 (transitivity) and rules 3/2, reading prev,
    // writing each worker's own band of up rows.
    auto rules_start = SteadyClock::now();
    pool_->ParallelFor(n, [&](std::size_t, std::size_t lo, std::size_t hi) {
      bool local = false;
      for (std::size_t i = lo; i < hi; ++i) {
        if (governed && band_check(i)) break;
        for (std::size_t j = prev[i].NextSetBit(0); j < n;
             j = prev[i].NextSetBit(j + 1)) {
          if (j != i) local |= up_[i].UnionWith(prev[j]);
        }
        if (kind_[i] == ExprKind::kProduct) {
          local |= up_[i].UnionWith(prev[lhs_[i]]);
          local |= up_[i].UnionWith(prev[rhs_[i]]);
        } else if (kind_[i] == ExprKind::kSum) {
          local |= up_[i].UnionWithAnd(prev[lhs_[i]], prev[rhs_[i]]);
        }
      }
      if (local) changed.store(true, std::memory_order_relaxed);
    });
    stats_.rules_seconds += SecondsSince(rules_start);
    if (governed && aborted.load(std::memory_order_relaxed)) {
      return ctx.Check();
    }

    // Transpose up -> down, banded by destination row (= up column), so
    // every down row has exactly one writer.
    transpose_start = SteadyClock::now();
    pool_->ParallelFor(n, [&](std::size_t, std::size_t lo, std::size_t hi) {
      for (std::size_t j = lo; j < hi; ++j) down_[j].Clear();
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = up_[i].NextSetBit(lo); j < hi;
             j = up_[i].NextSetBit(j + 1)) {
          down_[j].Set(i);
        }
      }
    });
    // Snapshot down -> prev.
    pool_->ParallelFor(n, [&](std::size_t, std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) prev[i] = down_[i];
    });
    stats_.transpose_seconds += SecondsSince(transpose_start);

    // Column-space sweep: rules 5/4 on down, reading the snapshot.
    rules_start = SteadyClock::now();
    pool_->ParallelFor(n, [&](std::size_t, std::size_t lo, std::size_t hi) {
      bool local = false;
      for (std::size_t m = lo; m < hi; ++m) {
        if (kind_[m] == ExprKind::kSum) {
          local |= down_[m].UnionWith(prev[lhs_[m]]);
          local |= down_[m].UnionWith(prev[rhs_[m]]);
        } else if (kind_[m] == ExprKind::kProduct) {
          local |= down_[m].UnionWithAnd(prev[lhs_[m]], prev[rhs_[m]]);
        }
      }
      if (local) changed.store(true, std::memory_order_relaxed);
    });
    stats_.rules_seconds += SecondsSince(rules_start);

    // Transpose down -> up, banded by up row.
    transpose_start = SteadyClock::now();
    pool_->ParallelFor(n, [&](std::size_t, std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) up_[i].Clear();
      for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t i = down_[j].NextSetBit(lo); i < hi;
             i = down_[j].NextSetBit(i + 1)) {
          up_[i].Set(j);
        }
      }
    });
    stats_.transpose_seconds += SecondsSince(transpose_start);

    std::size_t arcs_now = CountArcs();
    stats_.pass_arc_delta.push_back(arcs_now - arcs_before);
    arcs_before = arcs_now;
    if (governed) PSEM_RETURN_IF_ERROR(ctx.CheckArcs(arcs_now));
  }
  return Status::OK();
}

// Frontier-restricted fixpoint for warm starts. Vertices [0, old_n)
// carry a finished closure, and by Lemma 9.2 (V-independence of "E |=
// e <= e'") every rule instance whose conclusion is an old-old arc is
// already satisfied — the old closure contains all implied arcs over the
// old vertices no matter how V grows. The only arc positions that can
// change are: new rows (full width), and the new-column tails of old
// rows. Each sweep therefore touches new rows at full width and old rows
// only from bit old_n on, which costs O(arcs * tail_words) instead of
// O(arcs * n / 64); the per-pass transposes shrink the same way. Rules
// 3/2 (resp. 5/4) on an old composite row read only its children's rows,
// and children of old vertices are always old (AddVertex interns
// children first), so the tail-restricted unions see every premise they
// need. down_ == transpose(up_) holds again on exit.
Status PdImplicationEngine::IncrementalFixpoint(std::size_t old_n,
                                                const ExecContext& ctx) {
  const std::size_t n = vertices_.size();
  const bool governed = !ctx.unbounded();
  std::size_t passes = 0;
  std::size_t arcs_before = CountArcs();
  bool changed = true;
  while (changed) {
    changed = false;
    stats_.passes = ++passes;
    if (PSEM_FAILPOINT(failpoints::kAlgSweep)) {
      return Status::Internal("injected closure-sweep fault (psem.alg.sweep)");
    }
    if (governed) PSEM_RETURN_IF_ERROR(ctx.Check());

    // Row-space sweep. New rows: rule 7 (transitivity) and rules 3/2 at
    // full width.
    auto rules_start = SteadyClock::now();
    for (std::size_t i = old_n; i < n; ++i) {
      if (governed && ((i - old_n) % kCheckStride) == 0) {
        PSEM_RETURN_IF_ERROR(ctx.Check());
      }
      for (std::size_t j = up_[i].NextSetBit(0); j < n;
           j = up_[i].NextSetBit(j + 1)) {
        if (j != i) changed |= up_[i].UnionWith(up_[j]);
      }
      if (kind_[i] == ExprKind::kProduct) {
        changed |= up_[i].UnionWith(up_[lhs_[i]]);
        changed |= up_[i].UnionWith(up_[rhs_[i]]);
      } else if (kind_[i] == ExprKind::kSum) {
        changed |= up_[i].UnionWithAnd(up_[lhs_[i]], up_[rhs_[i]]);
      }
    }
    // Old rows: same rules, but only the tail (bits >= old_n) may grow.
    for (std::size_t i = 0; i < old_n; ++i) {
      if (governed && (i % kCheckStride) == 0) {
        PSEM_RETURN_IF_ERROR(ctx.Check());
      }
      for (std::size_t j = up_[i].NextSetBit(0); j < n;
           j = up_[i].NextSetBit(j + 1)) {
        if (j != i) changed |= up_[i].UnionWithFrom(up_[j], old_n);
      }
      if (kind_[i] == ExprKind::kProduct) {
        changed |= up_[i].UnionWithFrom(up_[lhs_[i]], old_n);
        changed |= up_[i].UnionWithFrom(up_[rhs_[i]], old_n);
      } else if (kind_[i] == ExprKind::kSum) {
        changed |= up_[i].UnionWithAndFrom(up_[lhs_[i]], up_[rhs_[i]], old_n);
      }
    }
    stats_.rules_seconds += SecondsSince(rules_start);

    // Resync the mutable region of down_ with up_. The old-old block of
    // down_ is final and untouched; only old-row tails and new rows are
    // rebuilt.
    auto transpose_start = SteadyClock::now();
    for (std::size_t j = 0; j < old_n; ++j) down_[j].ClearFrom(old_n);
    for (std::size_t j = old_n; j < n; ++j) down_[j].Clear();
    for (std::size_t i = old_n; i < n; ++i) {
      for (std::size_t j = up_[i].NextSetBit(0); j < n;
           j = up_[i].NextSetBit(j + 1)) {
        down_[j].Set(i);
      }
    }
    for (std::size_t i = 0; i < old_n; ++i) {
      for (std::size_t j = up_[i].NextSetBit(old_n); j < n;
           j = up_[i].NextSetBit(j + 1)) {
        down_[j].Set(i);
      }
    }
    stats_.transpose_seconds += SecondsSince(transpose_start);

    // Column-space sweep: rules 5/4, new down rows at full width, old
    // down rows tail-only.
    rules_start = SteadyClock::now();
    for (std::size_t m = old_n; m < n; ++m) {
      if (kind_[m] == ExprKind::kSum) {
        changed |= down_[m].UnionWith(down_[lhs_[m]]);
        changed |= down_[m].UnionWith(down_[rhs_[m]]);
      } else if (kind_[m] == ExprKind::kProduct) {
        changed |= down_[m].UnionWithAnd(down_[lhs_[m]], down_[rhs_[m]]);
      }
    }
    for (std::size_t m = 0; m < old_n; ++m) {
      if (kind_[m] == ExprKind::kSum) {
        changed |= down_[m].UnionWithFrom(down_[lhs_[m]], old_n);
        changed |= down_[m].UnionWithFrom(down_[rhs_[m]], old_n);
      } else if (kind_[m] == ExprKind::kProduct) {
        changed |=
            down_[m].UnionWithAndFrom(down_[lhs_[m]], down_[rhs_[m]], old_n);
      }
    }
    stats_.rules_seconds += SecondsSince(rules_start);

    // Scatter the down-side additions back into up_ (bits already set
    // are no-ops, so no change tracking is needed here).
    transpose_start = SteadyClock::now();
    for (std::size_t m = old_n; m < n; ++m) {
      for (std::size_t i = down_[m].NextSetBit(0); i < n;
           i = down_[m].NextSetBit(i + 1)) {
        up_[i].Set(m);
      }
    }
    for (std::size_t m = 0; m < old_n; ++m) {
      for (std::size_t i = down_[m].NextSetBit(old_n); i < n;
           i = down_[m].NextSetBit(i + 1)) {
        up_[i].Set(m);
      }
    }
    stats_.transpose_seconds += SecondsSince(transpose_start);

    std::size_t arcs_now = CountArcs();
    stats_.pass_arc_delta.push_back(arcs_now - arcs_before);
    arcs_before = arcs_now;
    if (governed) PSEM_RETURN_IF_ERROR(ctx.CheckArcs(arcs_now));
  }
  return Status::OK();
}

void PdImplicationEngine::Prepare(const std::vector<ExprId>& exprs) {
  for (ExprId e : exprs) AddVertex(e);
  if (!closure_valid_) {
    Status st = ComputeClosure(ExecContext::Unbounded());
    // Unbounded + no armed fail point cannot trip; if a test armed a
    // closure fail point and then called the ungoverned path, surface it
    // loudly rather than silently serving a stale closure.
    PSEM_CHECK(st.ok(), "ungoverned closure failed: " + st.ToString());
  }
}

Status PdImplicationEngine::Prepare(const std::vector<ExprId>& exprs,
                                    const ExecContext& ctx) {
  // Enforce the vertex budget BEFORE mutating V: count the prospective
  // subexpressions and reject the whole call if they would blow the cap,
  // leaving the engine exactly as it was.
  if (ctx.max_vertices() != 0) {
    std::set<ExprId> seen;
    std::size_t added = 0;
    for (ExprId e : exprs) added += CountNewVertices(e, &seen);
    PSEM_RETURN_IF_ERROR(ctx.CheckVertices(vertices_.size() + added));
  }
  PSEM_RETURN_IF_ERROR(ctx.Check());
  for (ExprId e : exprs) AddVertex(e);
  if (!closure_valid_) PSEM_RETURN_IF_ERROR(ComputeClosure(ctx));
  return Status::OK();
}

bool PdImplicationEngine::LeqInClosure(ExprId e1, ExprId e2) const {
  assert(closure_valid_);
  auto i = vertex_of_.find(e1);
  auto j = vertex_of_.find(e2);
  assert(i != vertex_of_.end() && j != vertex_of_.end());
  return up_[i->second].Test(j->second);
}

bool PdImplicationEngine::CacheLookup(ExprId e1, ExprId e2, bool* verdict) {
  if (options_.cache_capacity == 0) return false;
  ++stats_.cache_lookups;
  auto it = cache_.find(PairKey(e1, e2));
  if (it == cache_.end()) return false;
  ++stats_.cache_hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // mark most-recently used
  *verdict = it->second->second;
  return true;
}

void PdImplicationEngine::CacheInsert(ExprId e1, ExprId e2, bool verdict) {
  if (options_.cache_capacity == 0) return;
  uint64_t key = PairKey(e1, e2);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->second = verdict;
    return;
  }
  if (lru_.size() >= options_.cache_capacity) {
    cache_.erase(lru_.back().first);
    lru_.pop_back();
  }
  lru_.emplace_front(key, verdict);
  cache_.emplace(key, lru_.begin());
}

bool PdImplicationEngine::LeqWithCache(ExprId e1, ExprId e2) {
  bool verdict;
  if (CacheLookup(e1, e2, &verdict)) return verdict;
  verdict = LeqInClosure(e1, e2);
  CacheInsert(e1, e2, verdict);
  return verdict;
}

bool PdImplicationEngine::ImpliesLeq(ExprId e1, ExprId e2) {
  bool verdict;
  if (CacheLookup(e1, e2, &verdict)) return verdict;
  Prepare({e1, e2});
  return LeqWithCache(e1, e2);
}

Result<bool> PdImplicationEngine::ImpliesLeq(ExprId e1, ExprId e2,
                                             const ExecContext& ctx) {
  bool verdict;
  if (CacheLookup(e1, e2, &verdict)) return verdict;
  PSEM_RETURN_IF_ERROR(Prepare({e1, e2}, ctx));
  return LeqWithCache(e1, e2);
}

bool PdImplicationEngine::Implies(const Pd& query) {
  // Cache fast path. Cached verdicts are V-independent (Lemma 9.2), so a
  // hit avoids extending V and re-closing even for never-seen queries.
  bool fwd;
  if (CacheLookup(query.lhs, query.rhs, &fwd)) {
    if (!fwd) return false;
    if (!query.is_equation) return true;
    bool bwd;
    if (CacheLookup(query.rhs, query.lhs, &bwd)) return bwd;
  }
  Prepare({query.lhs, query.rhs});
  bool f = LeqWithCache(query.lhs, query.rhs);
  if (!query.is_equation) return f;
  return f && LeqWithCache(query.rhs, query.lhs);
}

Result<bool> PdImplicationEngine::Implies(const Pd& query,
                                          const ExecContext& ctx) {
  bool fwd;
  if (CacheLookup(query.lhs, query.rhs, &fwd)) {
    if (!fwd) return false;
    if (!query.is_equation) return true;
    bool bwd;
    if (CacheLookup(query.rhs, query.lhs, &bwd)) return bwd;
  }
  PSEM_RETURN_IF_ERROR(Prepare({query.lhs, query.rhs}, ctx));
  bool f = LeqWithCache(query.lhs, query.rhs);
  if (!query.is_equation) return f;
  return f && LeqWithCache(query.rhs, query.lhs);
}

std::vector<bool> PdImplicationEngine::BatchImplies(
    std::span<const Pd> queries) {
  std::vector<bool> out(queries.size(), false);
  // Pass 1: answer what the cache can; register the vertices of every
  // remaining query so the closure below is computed exactly once for
  // the whole batch.
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const Pd& q = queries[i];
    bool fwd;
    if (CacheLookup(q.lhs, q.rhs, &fwd)) {
      if (!fwd) continue;  // out[i] stays false
      if (!q.is_equation) {
        out[i] = true;
        continue;
      }
      bool bwd;
      if (CacheLookup(q.rhs, q.lhs, &bwd)) {
        out[i] = bwd;
        continue;
      }
    }
    AddVertex(q.lhs);
    AddVertex(q.rhs);
    pending.push_back(i);
  }
  // Pass 2: one shared (incremental) closure, then O(1) bit tests.
  // Duplicate queries in the batch resolve through the cache.
  if (!pending.empty()) {
    if (!closure_valid_) {
      Status st = ComputeClosure(ExecContext::Unbounded());
      PSEM_CHECK(st.ok(), "ungoverned closure failed: " + st.ToString());
    }
    for (std::size_t i : pending) {
      const Pd& q = queries[i];
      bool f = LeqWithCache(q.lhs, q.rhs);
      out[i] = q.is_equation ? (f && LeqWithCache(q.rhs, q.lhs)) : f;
    }
  }
  return out;
}

std::vector<Result<bool>> PdImplicationEngine::BatchImplies(
    std::span<const Pd> queries, const ExecContext& ctx) {
  // Failures are per-query: each query is pre-checked against the vertex
  // budget BEFORE its subexpressions are interned, so one oversized query
  // gets its own error and leaves the rest of the batch (and the engine)
  // untouched. Result<bool> has no default constructor, so the slots are
  // staged in optionals and unwrapped at the end.
  std::vector<std::optional<Result<bool>>> slots(queries.size());
  std::vector<std::size_t> pending;
  std::set<ExprId> counted;  // spans the batch: vertices shared between
                             // in-budget queries are counted once
  std::size_t prospective = vertices_.size();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const Pd& q = queries[i];
    bool fwd;
    if (CacheLookup(q.lhs, q.rhs, &fwd)) {
      if (!fwd) {
        slots[i] = Result<bool>(false);
        continue;
      }
      if (!q.is_equation) {
        slots[i] = Result<bool>(true);
        continue;
      }
      bool bwd;
      if (CacheLookup(q.rhs, q.lhs, &bwd)) {
        slots[i] = Result<bool>(bwd);
        continue;
      }
    }
    if (ctx.max_vertices() != 0) {
      // Trial-count against a copy so a rejected query's subexpressions
      // don't pollute the shared `counted` set.
      std::set<ExprId> trial = counted;
      std::size_t added = CountNewVertices(q.lhs, &trial) +
                          CountNewVertices(q.rhs, &trial);
      Status st = ctx.CheckVertices(prospective + added);
      if (!st.ok()) {
        slots[i] = Result<bool>(st);
        continue;
      }
      counted = std::move(trial);
      prospective += added;
    }
    AddVertex(q.lhs);
    AddVertex(q.rhs);
    pending.push_back(i);
  }
  if (!pending.empty()) {
    Status st = closure_valid_ ? Status::OK() : ComputeClosure(ctx);
    for (std::size_t i : pending) {
      if (!st.ok()) {
        // Shared-closure failure: only the closure-dependent remainder
        // report it; cache-resolved verdicts above are kept.
        slots[i] = Result<bool>(st);
        continue;
      }
      const Pd& q = queries[i];
      bool f = LeqWithCache(q.lhs, q.rhs);
      slots[i] =
          Result<bool>(q.is_equation ? (f && LeqWithCache(q.rhs, q.lhs)) : f);
    }
  }
  std::vector<Result<bool>> out;
  out.reserve(slots.size());
  for (auto& s : slots) out.push_back(std::move(*s));
  return out;
}

// ---------------------------------------------------------------------------
// Naive reference: the seven rules of ALG, applied literally until no new
// arc can be added.
// ---------------------------------------------------------------------------

bool NaivePdImplication(const ExprArena& arena, const std::vector<Pd>& e,
                        const Pd& query) {
  // V: subexpressions of E, e, e'.
  std::set<ExprId> seen;
  std::vector<ExprId> v;
  for (const Pd& pd : e) {
    arena.CollectSubexprs(pd.lhs, &seen, &v);
    arena.CollectSubexprs(pd.rhs, &seen, &v);
  }
  arena.CollectSubexprs(query.lhs, &seen, &v);
  arena.CollectSubexprs(query.rhs, &seen, &v);

  std::set<std::pair<ExprId, ExprId>> gamma;
  auto has = [&](ExprId a, ExprId b) { return gamma.count({a, b}) > 0; };

  bool changed = true;
  while (changed) {
    changed = false;
    auto add = [&](ExprId a, ExprId b) {
      if (gamma.insert({a, b}).second) changed = true;
    };
    // Step 1: (A, A) for attributes.
    for (ExprId x : v) {
      if (arena.IsAttr(x)) add(x, x);
    }
    // Step 6: constraint arcs.
    for (const Pd& pd : e) {
      add(pd.lhs, pd.rhs);
      if (pd.is_equation) add(pd.rhs, pd.lhs);
    }
    for (ExprId x : v) {
      if (arena.IsAttr(x)) continue;
      ExprId p = arena.LhsOf(x), q = arena.RhsOf(x);
      for (ExprId s : v) {
        if (arena.KindOf(x) == ExprKind::kSum) {
          // Step 2: (p,s) and (q,s) => (p+q, s).
          if (has(p, s) && has(q, s)) add(x, s);
          // Step 5: (s,p) or (s,q) => (s, p+q).
          if (has(s, p) || has(s, q)) add(s, x);
        } else {
          // Step 3: (p,s) or (q,s) => (p*q, s).
          if (has(p, s) || has(q, s)) add(x, s);
          // Step 4: (s,p) and (s,q) => (s, p*q).
          if (has(s, p) && has(s, q)) add(s, x);
        }
      }
    }
    // Step 7: transitivity.
    for (const auto& [a, b] : std::set<std::pair<ExprId, ExprId>>(gamma)) {
      for (ExprId c : v) {
        if (has(b, c)) add(a, c);
      }
    }
  }
  bool fwd = has(query.lhs, query.rhs);
  if (!query.is_equation) return fwd;
  return fwd && has(query.rhs, query.lhs);
}

}  // namespace psem
