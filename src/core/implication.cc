#include "core/implication.h"

#include <array>
#include <atomic>
#include <cassert>
#include <chrono>
#include <optional>
#include <set>

#include "util/failpoint.h"

namespace psem {

namespace {

using SteadyClock = std::chrono::steady_clock;

double SecondsSince(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

uint64_t PairKey(ExprId e1, ExprId e2) {
  return (static_cast<uint64_t>(e1) << 32) | e2;
}

// How often the governed sweeps poll the deadline/cancel state: every
// (kCheckStride) rows or delta consumptions. Budget comparisons against
// the running arc counter ride along with the same stride.
constexpr std::size_t kCheckStride = 256;

}  // namespace

PdImplicationEngine::PdImplicationEngine(const ExprArena* arena,
                                         std::vector<Pd> constraints,
                                         EngineOptions options)
    : arena_(arena), constraints_(std::move(constraints)), options_(options) {
  if (options_.num_threads > 1) {
    // Graceful degradation: a failed pool spawn (thread exhaustion in the
    // environment, or the psem.threadpool.spawn fail point) downgrades to
    // the serial sweep instead of propagating an exception. Verdicts are
    // identical either way; the downgrade is recorded in stats().
    auto pool = ThreadPool::Create(options_.num_threads);
    if (pool.ok()) {
      pool_ = std::move(pool).value();
    } else {
      stats_.degraded_to_serial = true;
      stats_.degradation_reason = pool.status().message();
    }
  }
  for (const Pd& pd : constraints_) {
    AddVertex(pd.lhs);
    AddVertex(pd.rhs);
  }
}

std::size_t PdImplicationEngine::CountNewVertices(ExprId e,
                                                  std::set<ExprId>* seen) const {
  if (vertex_of_.count(e) || seen->count(e)) return 0;
  seen->insert(e);
  std::size_t count = 1;
  if (!arena_->IsAttr(e)) {
    count += CountNewVertices(arena_->LhsOf(e), seen);
    count += CountNewVertices(arena_->RhsOf(e), seen);
  }
  return count;
}

void PdImplicationEngine::AddVertex(ExprId e) {
  if (vertex_of_.count(e)) return;
  // Children first so child indices exist.
  if (!arena_->IsAttr(e)) {
    AddVertex(arena_->LhsOf(e));
    AddVertex(arena_->RhsOf(e));
  }
  uint32_t idx = static_cast<uint32_t>(vertices_.size());
  vertices_.push_back(e);
  vertex_of_.emplace(e, idx);
  kind_.push_back(arena_->KindOf(e));
  parents_.emplace_back();
  if (arena_->IsAttr(e)) {
    lhs_.push_back(kNoVertex);
    rhs_.push_back(kNoVertex);
  } else {
    uint32_t l = vertex_of_.at(arena_->LhsOf(e));
    uint32_t r = vertex_of_.at(arena_->RhsOf(e));
    lhs_.push_back(l);
    rhs_.push_back(r);
    // Children are already interned (smaller indices), so the parent
    // index is complete before any closure ever runs.
    parents_[l].emplace_back(idx, r);
    if (r != l) parents_[r].emplace_back(idx, l);
  }
  closure_valid_ = false;
}

void PdImplicationEngine::TrySetArc(uint32_t i, uint32_t m) {
  if (up_[i].Test(m)) return;
  up_[i].Set(m);
  delta_up_[i].Set(m);
  dirty_rows_.Set(i);
  ++arc_count_;
}

Status PdImplicationEngine::ComputeClosure(const ExecContext& ctx) {
  const auto closure_start = SteadyClock::now();
  const std::size_t n = vertices_.size();

  {
    Status st = ctx.CheckVertices(n);
    if (st.ok()) st = ctx.Check();
    if (st.ok() && PSEM_FAILPOINT(failpoints::kAlgSeedAlloc)) {
      st = Status::ResourceExhausted(
          "injected arc-matrix allocation failure (psem.alg.seed_alloc)");
    }
    if (!st.ok()) {
      ++stats_.aborted_closures;
      return st;  // nothing mutated yet; the engine state is untouched
    }
  }

  // Seed phase. Every seed arc is planted through the delta state: set in
  // up_, flagged unconsumed in delta_up_, row marked dirty — the fixpoint
  // below then treats seed arcs and derived arcs uniformly (each is
  // consumed exactly once). Cold: reflexive arcs everywhere plus the
  // constraint arcs. (Rule 1 seeds (A, A) for attributes only and derives
  // reflexivity of composites via rules 3/4, resp. 5/2; seeding all
  // vertices is sound and saves rounds.) Incremental: the previous
  // closure is itself a set of sound consequences of E (Lemma 9.2), so it
  // is a valid warm start — old rows are widened in place, only the new
  // vertices get fresh reflexive rows, and new composites over
  // already-consumed children get a one-time catch-up union of their
  // children's rows/columns. The worklist ends up holding exactly the
  // dirty frontier. A resumed closure (seeded_vertices_ == n after an
  // abort) skips seeding entirely: the unconsumed deltas and dirty rows
  // persisted across the abort.
  const std::size_t old_n = seeded_vertices_;
  if (old_n < n) {
    for (std::size_t i = 0; i < old_n; ++i) {
      up_[i].Resize(n);
      delta_up_[i].Resize(n);
      if (!pool_) down_[i].Resize(n);
    }
    up_.resize(n);
    delta_up_.resize(n);
    if (!pool_) down_.resize(n);
    dirty_rows_.Resize(n);
    for (std::size_t i = old_n; i < n; ++i) {
      up_[i] = DynamicBitset(n);
      delta_up_[i] = DynamicBitset(n);
      if (!pool_) down_[i] = DynamicBitset(n);
      TrySetArc(static_cast<uint32_t>(i), static_cast<uint32_t>(i));
    }
    if (old_n == 0) {
      // Rule 6: each constraint contributes its arc(s).
      for (const Pd& pd : constraints_) {
        uint32_t l = vertex_of_.at(pd.lhs);
        uint32_t r = vertex_of_.at(pd.rhs);
        TrySetArc(l, r);
        if (pd.is_equation) TrySetArc(r, l);
      }
      ++stats_.cold_closures;
    } else {
      // Composite catch-up: a new composite over old children missed the
      // children's already-consumed deltas, so it takes their current
      // rows (rules 3/2) and columns (rules 5/4) once, full width; any
      // later child growth reaches it through the parents_ index. New
      // children need no catch-up (their arcs are all still unconsumed)
      // but including them is sound and idempotent.
      for (std::size_t m = old_n; m < n; ++m) {
        if (lhs_[m] == kNoVertex) continue;
        const uint32_t l = lhs_[m], r = rhs_[m];
        const uint32_t mi = static_cast<uint32_t>(m);
        std::size_t added =
            kind_[m] == ExprKind::kProduct
                ? up_[m].OrInPlaceCountNew(up_[l], &delta_up_[m]) +
                      up_[m].OrInPlaceCountNew(up_[r], &delta_up_[m])
                : up_[m].OrAndInPlaceCountNew(up_[l], up_[r], &delta_up_[m]);
        if (added) {
          arc_count_ += added;
          dirty_rows_.Set(mi);
        }
        if (!pool_) {
          // Column side via the incrementally maintained predecessor
          // index: every consumed arc into a child lifts to the parent.
          if (kind_[m] == ExprKind::kSum) {
            down_[l].ForEach([&](std::size_t s) {
              TrySetArc(static_cast<uint32_t>(s), mi);
            });
            down_[r].ForEach([&](std::size_t s) {
              TrySetArc(static_cast<uint32_t>(s), mi);
            });
          } else {
            down_[l].ForEach([&](std::size_t s) {
              if (up_[s].Test(r)) TrySetArc(static_cast<uint32_t>(s), mi);
            });
          }
        } else {
          // The parallel engine keeps no down_; scan the rows instead.
          for (std::size_t s = 0; s < n; ++s) {
            bool lifts = kind_[m] == ExprKind::kSum
                             ? (up_[s].Test(l) || up_[s].Test(r))
                             : (up_[s].Test(l) && up_[s].Test(r));
            if (lifts) TrySetArc(static_cast<uint32_t>(s), mi);
          }
        }
      }
      ++stats_.incremental_closures;
    }
    seeded_vertices_ = n;
  } else {
    // Abort resume over an unchanged V: a pure warm start.
    ++stats_.incremental_closures;
  }
  // Constraints accepted by AddConstraint since the last closure: plant
  // their arcs through the delta state so the fixpoint consumes them like
  // any seed. Idempotent against the cold path above (which already
  // seeded all of constraints_, pending included). Cleared only now —
  // an abort at the entry checks leaves them pending for the next call.
  if (!pending_constraints_.empty()) {
    for (const Pd& pd : pending_constraints_) {
      uint32_t l = vertex_of_.at(pd.lhs);
      uint32_t r = vertex_of_.at(pd.rhs);
      TrySetArc(l, r);
      if (pd.is_equation) TrySetArc(r, l);
    }
    pending_constraints_.clear();
  }
  stats_.seed_seconds += SecondsSince(closure_start);

  stats_.pass_arc_delta.clear();
  stats_.passes = 0;
  stats_.sparse_rounds = 0;
  stats_.dense_rounds = 0;
  Status st = pool_ ? DeltaFixpointParallel(ctx) : DeltaFixpointSerial(ctx);
  if (st.ok() && stats_.passes == 0) {
    // Nothing was dirty (e.g. an already-quiescent warm start): record
    // the trivial confirming round so trajectory stats stay populated.
    stats_.passes = 1;
    stats_.pass_arc_delta.push_back(0);
  }

  // Partial stats are filled in even when the fixpoint stopped early —
  // the partial-stats-on-timeout contract (docs/robustness.md). num_arcs
  // comes straight from the running counter; it is exact even mid-abort.
  stats_.num_vertices = n;
  stats_.num_arcs = arc_count_;
  stats_.num_threads = pool_ ? pool_->num_threads() : 1;
  stats_.closure_seconds += SecondsSince(closure_start);

  if (!st.ok()) {
    // closure_valid_ stays false while the partially propagated matrix,
    // the unconsumed deltas, and the dirty worklist all persist: the next
    // attempt resumes exactly where this one stopped (re-consuming a
    // half-processed frontier is idempotent), so the engine remains fully
    // usable and converges to the same least fixpoint a cold engine does.
    ++stats_.aborted_closures;
    return st;
  }
#ifndef NDEBUG
  // Audit the incremental counter against a one-off recount (debug
  // builds only — never a per-pass scan).
  std::size_t audit = 0;
  for (const DynamicBitset& row : up_) audit += row.Count();
  assert(audit == arc_count_);
#endif
  closure_valid_ = true;
  return Status::OK();
}

// Serial semi-naive driver. Loop invariant, held at every round boundary
// and across aborts:
//   (a) delta_up_[i] ⊆ up_[i] and holds exactly row i's unconsumed arcs;
//   (b) dirty_rows_.Test(i) whenever delta_up_[i] is nonempty;
//   (c) down_[j] ∋ i exactly for the *consumed* arcs (i, j);
//   (d) arc_count_ == |up_| (each up_ bit transition bumped it once).
// Every consequence of a consumed arc is either derived at consumption
// time (forward transitivity, per-arc column rules) or guaranteed to be
// derived when a future delta is consumed (backward transitivity through
// down_, parent pulls through parents_) — so when every frontier is
// empty, no rule instance is left unapplied and up_ is the least
// fixpoint of Lemma 9.2.
Status PdImplicationEngine::DeltaFixpointSerial(const ExecContext& ctx) {
  const std::size_t n = vertices_.size();
  const bool governed = !ctx.unbounded();
  std::vector<uint32_t> worklist;
  std::size_t consumed_strider = 0;
  while (dirty_rows_.Any()) {
    ++stats_.passes;
    if (PSEM_FAILPOINT(failpoints::kAlgSweep)) {
      return Status::Internal("injected closure-sweep fault (psem.alg.sweep)");
    }
    if (governed) {
      PSEM_RETURN_IF_ERROR(ctx.Check());
      PSEM_RETURN_IF_ERROR(ctx.CheckArcs(arc_count_));
    }
    const std::size_t round_start_arcs = arc_count_;
    worklist.clear();
    dirty_rows_.ForEach(
        [&](std::size_t i) { worklist.push_back(static_cast<uint32_t>(i)); });

    // Mode switch on measured frontier density, with an early exit once
    // the pending mass crosses the dense threshold.
    bool dense = false;
    if (worklist.size() >= options_.dense_min_rows) {
      const std::size_t threshold =
          worklist.size() * (n / std::max<std::size_t>(1, options_.dense_inv_density) + 1);
      std::size_t pending = 0;
      for (uint32_t i : worklist) {
        pending += delta_up_[i].Count();
        if (pending >= threshold) {
          dense = true;
          break;
        }
      }
    }
    Status st = dense ? DenseRound(worklist, ctx)
                      : SparseRound(worklist, ctx, &consumed_strider);
    if (dense) {
      ++stats_.dense_rounds;
    } else {
      ++stats_.sparse_rounds;
    }
    if (!st.ok()) return st;  // the round restored the unconsumed frontier
    stats_.pass_arc_delta.push_back(arc_count_ - round_start_arcs);
  }
  return Status::OK();
}

// One sparse round: Gauss-Seidel over the worklist rows, draining each
// row's frontier in place (bits derived mid-row are consumed in the same
// visit). Per consumed arc (i, j):
//   scatter     — down_[j] gains i (incremental transpose maintenance);
//   rule 7 fwd  — up_[i] |= up_[j], the new-arc side of the semi-naive
//                 join (word-parallel, skips j's empty words);
//   rules 5/4   — parents of j probe the single bit (i, parent).
// After the row drains, with S = everything consumed from it this visit:
//   rule 7 bwd  — every predecessor p ∈ down_[i] takes S (delta-width);
//   rules 3/2   — every parent of i takes S (product) or S ∩ sibling row
//                 (sum), word-parallel.
Status PdImplicationEngine::SparseRound(const std::vector<uint32_t>& worklist,
                                        const ExecContext& ctx,
                                        std::size_t* consumed_strider) {
  const std::size_t n = vertices_.size();
  const bool governed = !ctx.unbounded();
  const auto rules_start = SteadyClock::now();
  DynamicBitset scratch(n);
  DynamicBitset gained(n);
  // Descending index order: AddVertex interns children before parents and
  // theories tend to be written low-to-high, so high rows settle first
  // and most consumptions below hit the settled-source fast path.
  for (std::size_t w = worklist.size(); w-- > 0;) {
    const uint32_t i = worklist[w];
    if (delta_up_[i].None()) {  // drained by an earlier visit this round
      dirty_rows_.Reset(i);
      continue;
    }
    scratch.Clear();
    std::size_t j;
    while ((j = delta_up_[i].NextSetBit(0)) < n) {
      delta_up_[i].Reset(j);
      scratch.Set(j);
      down_[j].Set(i);
      if (j != i) {
        if (!dirty_rows_.Test(j)) {
          // Settled source: every arc of row j has been consumed, so
          // up_[j] is transitively absorbed — one OR brings in all of it,
          // and the gained bits can be marked consumed on the spot
          // (scatter + per-arc column rules) without their own forward
          // joins: anything row g learns later reaches row i through the
          // down_[g] backward join we are registering here.
          gained.Clear();
          std::size_t added = up_[i].OrInPlaceCountNew(up_[j], &gained);
          if (added) {
            arc_count_ += added;
            scratch.UnionWith(gained);
            gained.ForEach([&](std::size_t g) {
              down_[g].Set(i);
              for (const auto& [m, o] : parents_[g]) {
                if (kind_[m] == ExprKind::kSum || up_[i].Test(o)) {
                  TrySetArc(i, m);
                }
              }
            });
          }
        } else {
          arc_count_ += up_[i].OrInPlaceCountNew(up_[j], &delta_up_[i]);
        }
      }
      for (const auto& [m, o] : parents_[j]) {
        if (kind_[m] == ExprKind::kSum || up_[i].Test(o)) TrySetArc(i, m);
      }
      if (governed && (++*consumed_strider % kCheckStride) == 0) {
        Status st = ctx.Check();
        if (st.ok()) st = ctx.CheckArcs(arc_count_);
        if (!st.ok()) {
          // Put the already-consumed bits back on the frontier: their
          // per-arc effects are idempotent, and the row-level pushes
          // below have not run for them yet — re-consuming on resume is
          // sound and completes the round. Rows after this one keep
          // their dirty flags (only reset after a full drain).
          delta_up_[i].UnionWith(scratch);
          stats_.rules_seconds += SecondsSince(rules_start);
          return st;
        }
      }
    }
    // Rule 7, delta on the right: predecessors absorb the drained bits.
    for (std::size_t p = down_[i].NextSetBit(0); p < n;
         p = down_[i].NextSetBit(p + 1)) {
      if (p == i) continue;
      std::size_t added = up_[p].OrInPlaceCountNew(scratch, &delta_up_[p]);
      if (added) {
        arc_count_ += added;
        dirty_rows_.Set(static_cast<uint32_t>(p));
      }
    }
    // Rules 3/2: parents absorb the drained bits.
    for (const auto& [m, o] : parents_[i]) {
      std::size_t added =
          kind_[m] == ExprKind::kProduct
              ? up_[m].OrInPlaceCountNew(scratch, &delta_up_[m])
              : up_[m].OrAndInPlaceCountNew(scratch, up_[o], &delta_up_[m]);
      if (added) {
        arc_count_ += added;
        dirty_rows_.Set(m);
      }
    }
    dirty_rows_.Reset(i);
  }
  stats_.rules_seconds += SecondsSince(rules_start);
  return Status::OK();
}

// One dense round: the whole frontier is frozen into carry_ and consumed
// by phase — scatter + per-arc column rules, then the blocked forward
// join (64-row destination tiles walking the carry words in lockstep, so
// the up_[j] source rows stay cache-hot across a tile), then backward
// transitivity and the parent pulls. New arcs land in delta_up_ and feed
// the next round (Jacobi across rounds). An abort restores every frozen
// carry into delta_up_ and redoes the round on resume; all per-arc
// effects are idempotent and the arc counter only counts transitions, so
// the redo is exact.
Status PdImplicationEngine::DenseRound(const std::vector<uint32_t>& worklist,
                                       const ExecContext& ctx) {
  const std::size_t n = vertices_.size();
  const std::size_t words = (n + 63) / 64;
  const bool governed = !ctx.unbounded();
  if (carry_.size() < n) carry_.resize(n);
  DynamicBitset carry_mask(n);
  for (uint32_t i : worklist) {
    if (carry_[i].size() != n) carry_[i] = DynamicBitset(n);
    std::swap(carry_[i], delta_up_[i]);
    if (carry_[i].Any()) carry_mask.Set(i);
    dirty_rows_.Reset(i);
  }
  auto restore = [&] {
    for (uint32_t i : worklist) {
      delta_up_[i].UnionWith(carry_[i]);
      carry_[i].Clear();
      dirty_rows_.Set(i);
    }
  };
  auto governed_check = [&]() -> Status {
    Status st = ctx.Check();
    if (st.ok()) st = ctx.CheckArcs(arc_count_);
    return st;
  };

  // Incremental transpose: scatter the frozen frontier into down_ one
  // 64-column stripe at a time, so the 64 destination rows of down_ a
  // stripe touches stay cache-resident across the whole worklist.
  auto transpose_start = SteadyClock::now();
  for (std::size_t wk = 0; wk < words; ++wk) {
    if (governed) {
      Status st = governed_check();
      if (!st.ok()) {
        restore();
        stats_.transpose_seconds += SecondsSince(transpose_start);
        return st;
      }
    }
    for (uint32_t i : worklist) {
      uint64_t w = carry_[i].word(wk);
      while (w) {
        const std::size_t j =
            (wk << 6) + static_cast<std::size_t>(__builtin_ctzll(w));
        w &= w - 1;
        down_[j].Set(i);
      }
    }
  }
  stats_.transpose_seconds += SecondsSince(transpose_start);

  // Rules 5/4 per frozen arc: parents of j probe the single bit (i, m).
  auto rules_start = SteadyClock::now();
  std::size_t strider = 0;
  for (uint32_t i : worklist) {
    if (governed && (++strider % kCheckStride) == 0) {
      Status st = governed_check();
      if (!st.ok()) {
        restore();
        stats_.rules_seconds += SecondsSince(rules_start);
        return st;
      }
    }
    carry_[i].ForEach([&](std::size_t j) {
      for (const auto& [m, o] : parents_[j]) {
        if (kind_[m] == ExprKind::kSum || up_[i].Test(o)) TrySetArc(i, m);
      }
    });
  }

  // Blocked forward join (rule 7, delta on the left). Each destination
  // tile accumulates raw ORs into per-row scratch accumulators — the
  // branch-free OrWith kernel — and pays for counting once per row when
  // the accumulator merges into up_. Sources are the live up_ rows, so
  // later tiles see everything earlier tiles merged.
  constexpr std::size_t kTileRows = 64;
  std::array<DynamicBitset, kTileRows> acc;
  for (std::size_t t0 = 0; t0 < worklist.size(); t0 += kTileRows) {
    const std::size_t t1 = std::min(t0 + kTileRows, worklist.size());
    if (governed) {
      Status st = governed_check();
      if (!st.ok()) {
        restore();
        stats_.rules_seconds += SecondsSince(rules_start);
        return st;
      }
    }
    for (std::size_t t = t0; t < t1; ++t) {
      if (acc[t - t0].size() != n) {
        acc[t - t0] = DynamicBitset(n);
      } else {
        acc[t - t0].Clear();
      }
    }
    for (std::size_t wk = 0; wk < words; ++wk) {
      for (std::size_t t = t0; t < t1; ++t) {
        const uint32_t i = worklist[t];
        uint64_t w = carry_[i].word(wk);
        while (w) {
          const std::size_t j =
              (wk << 6) + static_cast<std::size_t>(__builtin_ctzll(w));
          w &= w - 1;
          if (j != i) acc[t - t0].OrWith(up_[j]);
        }
      }
    }
    for (std::size_t t = t0; t < t1; ++t) {
      const uint32_t i = worklist[t];
      arc_count_ += up_[i].OrInPlaceCountNew(acc[t - t0], &delta_up_[i]);
    }
  }

  // Backward join (rule 7, delta on the right), destination-major: row p
  // pulls the carry of every frozen row it reaches (cand = up_[p] ∩
  // carry_mask — a superset of the consumed arcs, which is sound: any
  // derived arc (p, i) supports transitivity). Raw ORs into one scratch
  // row, one counted merge per destination.
  DynamicBitset cand(n);
  DynamicBitset scratch(n);
  strider = 0;
  for (std::size_t p = 0; p < n; ++p) {
    cand = carry_mask;
    cand.IntersectWith(up_[p]);
    cand.Reset(p);
    // Frozen sources this row consumed via the forward join already
    // delivered up_ ⊇ carry there — skip them. (Rows never frozen by
    // any dense round keep a zero-sized carry.)
    if (carry_[p].size() == n) cand.SubtractWith(carry_[p]);
    if (cand.None()) continue;
    if (governed && (++strider % kCheckStride) == 0) {
      Status st = governed_check();
      if (!st.ok()) {
        restore();
        stats_.rules_seconds += SecondsSince(rules_start);
        return st;
      }
    }
    scratch.Clear();
    cand.ForEach([&](std::size_t i) { scratch.OrWith(carry_[i]); });
    std::size_t added = up_[p].OrInPlaceCountNew(scratch, &delta_up_[p]);
    if (added) {
      arc_count_ += added;
      dirty_rows_.Set(static_cast<uint32_t>(p));
    }
  }

  // Rules 3/2: parents pull the frozen carries.
  for (uint32_t i : worklist) {
    for (const auto& [m, o] : parents_[i]) {
      std::size_t added =
          kind_[m] == ExprKind::kProduct
              ? up_[m].OrInPlaceCountNew(carry_[i], &delta_up_[m])
              : up_[m].OrAndInPlaceCountNew(carry_[i], up_[o], &delta_up_[m]);
      if (added) {
        arc_count_ += added;
        dirty_rows_.Set(m);
      }
    }
  }
  stats_.rules_seconds += SecondsSince(rules_start);

  // Frontier fully consumed: drop the carries, flag rows that gained.
  transpose_start = SteadyClock::now();
  for (uint32_t i : worklist) {
    carry_[i].Clear();
    if (delta_up_[i].Any()) dirty_rows_.Set(i);
  }
  stats_.transpose_seconds += SecondsSince(transpose_start);
  return Status::OK();
}

// Banded Jacobi delta fixpoint. Per round, the driver freezes the
// frontier (swap delta_up_ -> carry_) and a mask of which rows own a
// nonempty carry; then one ParallelFor over destination rows p, each
// worker writing only its own band of up_/delta_up_ rows and reading
// only frozen state: carry_, the dirty mask, and prev_up_ — a mirror of
// up_ as of the last round boundary (so carry_[p] ⊆ prev_up_[p] for
// every p). Each destination row pulls every rule whose conclusion
// lands in it:
//   rule 7, Δ left   — for j in carry_[p]:  up_[p] |= prev_up_[j];
//   rule 7, Δ right  — for j in (up_[p] \ carry_[p]) ∩ dirty:
//                      up_[p] |= carry_[j]  (only the delta-width carry,
//                      the rest of row j already arrived in some earlier
//                      round);
//   rules 3/2        — composite p pulls carry_[child] (product) or
//                      carry_[l] ∩ prev_up_[r] + carry_[r] ∩ prev_up_[l]
//                      (sum; prev includes both carries, so a premise
//                      pair split across the two frontiers still meets);
//   rules 5/4        — for j in carry_[p], each parent (m, o) of j turns
//                      on bit m (sum always, product when (p, o) holds).
// New bits go to the worker's own delta_up_[p] and a worker-local dirty
// set; the driver merges dirty sets and arc counts after the barrier,
// then resyncs prev_up_ — copying only rows that changed this round —
// and clears the consumed carries. Monotone rules + "every frontier bit
// is eventually consumed" gives the same least fixpoint as the serial
// engine; the structural argument is spelled out in
// docs/architecture.md. down_ is not maintained here (nothing reads it
// in pool mode).
Status PdImplicationEngine::DeltaFixpointParallel(const ExecContext& ctx) {
  const std::size_t n = vertices_.size();
  const bool governed = !ctx.unbounded();
  const std::size_t num_workers = pool_->num_threads();

  // Bring the mirror and carries up to size and establish the round-
  // boundary invariant prev_up_ == up_ (rows [0, old prev size) may be
  // stale from before a vertex batch, new rows are fresh).
  auto transpose_start = SteadyClock::now();
  if (prev_up_.size() < n) prev_up_.resize(n);
  if (carry_.size() < n) carry_.resize(n);
  pool_->ParallelFor(n, [&](std::size_t, std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      prev_up_[i] = up_[i];
      if (carry_[i].size() != n) carry_[i] = DynamicBitset(n);
    }
  });
  stats_.transpose_seconds += SecondsSince(transpose_start);

  std::vector<uint32_t> worklist;
  DynamicBitset dirty_mask(n);
  std::vector<DynamicBitset> worker_dirty(num_workers, DynamicBitset(n));
  std::vector<std::size_t> worker_added(num_workers, 0);
  std::vector<DynamicBitset> worker_cand(num_workers, DynamicBitset(n));
  // Cooperative abort: any band that observes a tripped context sets the
  // flag; bands poll it per row and bail, and the driver surfaces the
  // Status after the barrier (restoring the frozen frontier first).
  std::atomic<bool> aborted{false};
  auto band_check = [&](std::size_t i) {
    if (aborted.load(std::memory_order_relaxed)) return true;
    if ((i % kCheckStride) == 0 &&
        (ctx.cancelled() || ctx.deadline_expired())) {
      aborted.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  };

  while (dirty_rows_.Any()) {
    ++stats_.passes;
    ++stats_.sparse_rounds;  // single-mode: banded rounds count as sparse
    if (PSEM_FAILPOINT(failpoints::kAlgSweep)) {
      return Status::Internal("injected closure-sweep fault (psem.alg.sweep)");
    }
    if (governed) {
      PSEM_RETURN_IF_ERROR(ctx.Check());
      PSEM_RETURN_IF_ERROR(ctx.CheckArcs(arc_count_));
    }
    const std::size_t round_start_arcs = arc_count_;

    // Freeze the frontier (driver only; no worker is running here).
    worklist.clear();
    dirty_rows_.ForEach(
        [&](std::size_t i) { worklist.push_back(static_cast<uint32_t>(i)); });
    dirty_mask = dirty_rows_;
    for (uint32_t i : worklist) std::swap(carry_[i], delta_up_[i]);
    dirty_rows_.Clear();

    // Banded pull sweep over destination rows.
    auto rules_start = SteadyClock::now();
    pool_->ParallelFor(n, [&](std::size_t band, std::size_t lo,
                              std::size_t hi) {
      worker_added[band] = 0;
      worker_dirty[band].Clear();
      DynamicBitset& cand = worker_cand[band];
      for (std::size_t p = lo; p < hi; ++p) {
        if (governed && band_check(p)) break;
        const bool p_dirty = dirty_mask.Test(p);
        std::size_t added = 0;
        // Rule 7, delta on the left: consume row p's own carry.
        if (p_dirty) {
          for (std::size_t j = carry_[p].NextSetBit(0); j < n;
               j = carry_[p].NextSetBit(j + 1)) {
            if (j != p) {
              added += up_[p].OrInPlaceCountNew(prev_up_[j], &delta_up_[p]);
            }
          }
        }
        // Rule 7, delta on the right: arcs (p, j) consumed in earlier
        // rounds meet row j's fresh carry. up_ \ carry_ excludes p's own
        // frontier (those j were fully joined via prev_up_ above).
        if (p_dirty) {
          cand.AndNot(up_[p], carry_[p]);
        } else {
          cand = up_[p];
        }
        cand.IntersectWith(dirty_mask);
        for (std::size_t j = cand.NextSetBit(0); j < n;
             j = cand.NextSetBit(j + 1)) {
          if (j != p) {
            added += up_[p].OrInPlaceCountNew(carry_[j], &delta_up_[p]);
          }
        }
        // Rules 3/2: composite p pulls its children's carries.
        if (lhs_[p] != kNoVertex) {
          const uint32_t l = lhs_[p], r = rhs_[p];
          if (kind_[p] == ExprKind::kProduct) {
            if (dirty_mask.Test(l)) {
              added += up_[p].OrInPlaceCountNew(carry_[l], &delta_up_[p]);
            }
            if (r != l && dirty_mask.Test(r)) {
              added += up_[p].OrInPlaceCountNew(carry_[r], &delta_up_[p]);
            }
          } else {  // sum: carry ⊆ prev_up_, so the two terms cover all
                    // premise pairs with at least one fresh side
            if (dirty_mask.Test(l)) {
              added += up_[p].OrAndInPlaceCountNew(carry_[l], prev_up_[r],
                                                   &delta_up_[p]);
            }
            if (r != l && dirty_mask.Test(r)) {
              added += up_[p].OrAndInPlaceCountNew(carry_[r], prev_up_[l],
                                                   &delta_up_[p]);
            }
          }
        }
        // Rules 5/4: each fresh arc (p, j) probes j's parents.
        if (p_dirty) {
          for (std::size_t j = carry_[p].NextSetBit(0); j < n;
               j = carry_[p].NextSetBit(j + 1)) {
            for (const auto& [m, o] : parents_[j]) {
              if ((kind_[m] == ExprKind::kSum || up_[p].Test(o)) &&
                  !up_[p].Test(m)) {
                up_[p].Set(m);
                delta_up_[p].Set(m);
                ++added;
              }
            }
          }
        }
        if (added) {
          worker_added[band] += added;
          worker_dirty[band].Set(p);
        }
      }
    });
    stats_.rules_seconds += SecondsSince(rules_start);

    // Merge worker results (driver only).
    for (std::size_t w = 0; w < num_workers; ++w) {
      arc_count_ += worker_added[w];
      dirty_rows_.UnionWith(worker_dirty[w]);
    }
    if (governed && aborted.load(std::memory_order_relaxed)) {
      // Restore the frozen frontier so the resume re-runs this round.
      // Partial writes are sound (monotone, justified by frozen state)
      // and the re-run is idempotent arc-count-wise.
      for (uint32_t i : worklist) {
        delta_up_[i].UnionWith(carry_[i]);
        carry_[i].Clear();
        dirty_rows_.Set(i);
      }
      aborted.store(false, std::memory_order_relaxed);
      return ctx.Check();
    }

    // Resync prev_up_ for changed rows only and retire the carries.
    transpose_start = SteadyClock::now();
    pool_->ParallelFor(n, [&](std::size_t, std::size_t lo, std::size_t hi) {
      for (std::size_t p = lo; p < hi; ++p) {
        if (dirty_rows_.Test(p)) prev_up_[p] = up_[p];
        if (dirty_mask.Test(p)) carry_[p].Clear();
      }
    });
    stats_.transpose_seconds += SecondsSince(transpose_start);

    stats_.pass_arc_delta.push_back(arc_count_ - round_start_arcs);
    if (governed) PSEM_RETURN_IF_ERROR(ctx.CheckArcs(arc_count_));
  }
  return Status::OK();
}

void PdImplicationEngine::Prepare(const std::vector<ExprId>& exprs) {
  for (ExprId e : exprs) AddVertex(e);
  if (!closure_valid_) {
    Status st = ComputeClosure(ExecContext::Unbounded());
    // Unbounded + no armed fail point cannot trip; if a test armed a
    // closure fail point and then called the ungoverned path, surface it
    // loudly rather than silently serving a stale closure.
    PSEM_CHECK(st.ok(), "ungoverned closure failed: " + st.ToString());
  }
}

Status PdImplicationEngine::Prepare(const std::vector<ExprId>& exprs,
                                    const ExecContext& ctx) {
  // Enforce the vertex budget BEFORE mutating V: count the prospective
  // subexpressions and reject the whole call if they would blow the cap,
  // leaving the engine exactly as it was.
  if (ctx.max_vertices() != 0) {
    std::set<ExprId> seen;
    std::size_t added = 0;
    for (ExprId e : exprs) added += CountNewVertices(e, &seen);
    PSEM_RETURN_IF_ERROR(ctx.CheckVertices(vertices_.size() + added));
  }
  PSEM_RETURN_IF_ERROR(ctx.Check());
  for (ExprId e : exprs) AddVertex(e);
  if (!closure_valid_) PSEM_RETURN_IF_ERROR(ComputeClosure(ctx));
  return Status::OK();
}

void PdImplicationEngine::AddConstraint(const Pd& pd) {
  for (const Pd& existing : constraints_) {
    if (existing == pd) return;
  }
  AddVertex(pd.lhs);
  AddVertex(pd.rhs);
  constraints_.push_back(pd);
  pending_constraints_.push_back(pd);
  closure_valid_ = false;
  // Cached verdicts were proved under the smaller E; a larger E can only
  // add implications, but "not implied" answers may flip, so drop all.
  lru_.clear();
  cache_.clear();
}

Status PdImplicationEngine::AddConstraint(const Pd& pd,
                                          const ExecContext& ctx) {
  for (const Pd& existing : constraints_) {
    if (existing == pd) return Status::OK();
  }
  if (ctx.max_vertices() != 0) {
    std::set<ExprId> seen;
    std::size_t added = CountNewVertices(pd.lhs, &seen) +
                        CountNewVertices(pd.rhs, &seen);
    PSEM_RETURN_IF_ERROR(ctx.CheckVertices(vertices_.size() + added));
  }
  PSEM_RETURN_IF_ERROR(ctx.Check());
  AddConstraint(pd);
  return Status::OK();
}

Result<PdImplicationEngine::EngineClosureState>
PdImplicationEngine::ExportClosureState() const {
  EngineClosureState state;
  state.arc_count = arc_count_;
  state.seeded_vertices = seeded_vertices_;
  state.closure_valid = closure_valid_;
  state.pending_constraints = pending_constraints_;
  // Only the seeded prefix has rows; vertices beyond it carry no closure
  // state yet (their seeding re-runs after restore).
  state.up.assign(up_.begin(), up_.begin() + seeded_vertices_);
  state.delta_up.assign(delta_up_.begin(),
                        delta_up_.begin() + seeded_vertices_);
  return state;
}

Status PdImplicationEngine::RestoreClosureState(EngineClosureState state) {
  // Validate before touching anything: a snapshot is an untrusted
  // artifact (its checksums prove the bytes, not the semantics).
  const std::size_t m = state.seeded_vertices;
  if (m > vertices_.size()) {
    return Status::FailedPrecondition(
        "closure state covers " + std::to_string(m) +
        " vertices but the engine has only " +
        std::to_string(vertices_.size()));
  }
  if (state.up.size() != m || state.delta_up.size() != m) {
    return Status::DataLoss("closure state row count mismatch");
  }
  uint64_t audit = 0;
  bool any_delta = false;
  for (std::size_t i = 0; i < m; ++i) {
    if (state.up[i].size() != m || state.delta_up[i].size() != m) {
      return Status::DataLoss("closure state row width mismatch");
    }
    if (!state.delta_up[i].IsSubsetOf(state.up[i])) {
      return Status::DataLoss("closure state frontier not within arcs");
    }
    audit += state.up[i].Count();
    any_delta |= state.delta_up[i].Any();
  }
  if (audit != state.arc_count) {
    return Status::DataLoss("closure state arc count mismatch");
  }
  if (state.closure_valid && (any_delta || !state.pending_constraints.empty())) {
    return Status::DataLoss("closure state marked valid with pending work");
  }
  for (const Pd& pd : state.pending_constraints) {
    if (!vertex_of_.count(pd.lhs) || !vertex_of_.count(pd.rhs)) {
      return Status::DataLoss("pending constraint over unknown vertex");
    }
  }

  up_ = std::move(state.up);
  delta_up_ = std::move(state.delta_up);
  arc_count_ = state.arc_count;
  seeded_vertices_ = m;
  pending_constraints_ = std::move(state.pending_constraints);
  // Rebuild the derived structures. dirty = rows with a nonempty
  // frontier; down = transpose of the consumed arcs (up & ~delta),
  // serial engines only.
  dirty_rows_ = DynamicBitset(m);
  for (std::size_t i = 0; i < m; ++i) {
    if (delta_up_[i].Any()) dirty_rows_.Set(i);
  }
  if (!pool_) {
    down_.assign(m, DynamicBitset(m));
    DynamicBitset consumed(m);
    for (std::size_t i = 0; i < m; ++i) {
      consumed.AndNot(up_[i], delta_up_[i]);
      consumed.ForEach([&](std::size_t j) { down_[j].Set(i); });
    }
  } else {
    down_.clear();
  }
  // Vertices beyond the seeded prefix (if the caller Prepared extra
  // expressions before restoring) re-seed at the next closure.
  closure_valid_ = state.closure_valid && m == vertices_.size();
  lru_.clear();
  cache_.clear();
  return Status::OK();
}

Status PdImplicationEngine::RestoreEngineState(
    const std::vector<ExprId>& vertex_order, std::vector<Pd> constraints,
    EngineClosureState state) {
  if (!vertices_.empty() || seeded_vertices_ != 0) {
    return Status::FailedPrecondition(
        "RestoreEngineState requires a freshly constructed engine");
  }
  for (std::size_t i = 0; i < vertex_order.size(); ++i) {
    AddVertex(vertex_order[i]);
    // AddVertex assigns index i exactly when the order is children-first
    // and duplicate-free; anything else is a malformed snapshot.
    if (vertices_.size() != i + 1 || vertices_[i] != vertex_order[i]) {
      return Status::DataLoss("snapshot vertex order is not children-first");
    }
  }
  for (const Pd& pd : constraints) {
    if (!vertex_of_.count(pd.lhs) || !vertex_of_.count(pd.rhs)) {
      return Status::DataLoss("snapshot constraint over unknown vertex");
    }
  }
  constraints_ = std::move(constraints);
  return RestoreClosureState(std::move(state));
}

bool PdImplicationEngine::LeqInClosure(ExprId e1, ExprId e2) const {
  assert(closure_valid_);
  auto i = vertex_of_.find(e1);
  auto j = vertex_of_.find(e2);
  assert(i != vertex_of_.end() && j != vertex_of_.end());
  return up_[i->second].Test(j->second);
}

bool PdImplicationEngine::CacheLookup(ExprId e1, ExprId e2, bool* verdict) {
  if (options_.cache_capacity == 0) return false;
  ++stats_.cache_lookups;
  auto it = cache_.find(PairKey(e1, e2));
  if (it == cache_.end()) return false;
  ++stats_.cache_hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // mark most-recently used
  *verdict = it->second->second;
  return true;
}

void PdImplicationEngine::CacheInsert(ExprId e1, ExprId e2, bool verdict) {
  if (options_.cache_capacity == 0) return;
  uint64_t key = PairKey(e1, e2);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->second = verdict;
    return;
  }
  if (lru_.size() >= options_.cache_capacity) {
    cache_.erase(lru_.back().first);
    lru_.pop_back();
  }
  lru_.emplace_front(key, verdict);
  cache_.emplace(key, lru_.begin());
}

bool PdImplicationEngine::LeqWithCache(ExprId e1, ExprId e2) {
  bool verdict;
  if (CacheLookup(e1, e2, &verdict)) return verdict;
  verdict = LeqInClosure(e1, e2);
  CacheInsert(e1, e2, verdict);
  return verdict;
}

bool PdImplicationEngine::ImpliesLeq(ExprId e1, ExprId e2) {
  bool verdict;
  if (CacheLookup(e1, e2, &verdict)) return verdict;
  Prepare({e1, e2});
  return LeqWithCache(e1, e2);
}

Result<bool> PdImplicationEngine::ImpliesLeq(ExprId e1, ExprId e2,
                                             const ExecContext& ctx) {
  bool verdict;
  if (CacheLookup(e1, e2, &verdict)) return verdict;
  PSEM_RETURN_IF_ERROR(Prepare({e1, e2}, ctx));
  return LeqWithCache(e1, e2);
}

bool PdImplicationEngine::Implies(const Pd& query) {
  // Cache fast path. Cached verdicts are V-independent (Lemma 9.2), so a
  // hit avoids extending V and re-closing even for never-seen queries.
  bool fwd;
  if (CacheLookup(query.lhs, query.rhs, &fwd)) {
    if (!fwd) return false;
    if (!query.is_equation) return true;
    bool bwd;
    if (CacheLookup(query.rhs, query.lhs, &bwd)) return bwd;
  }
  Prepare({query.lhs, query.rhs});
  bool f = LeqWithCache(query.lhs, query.rhs);
  if (!query.is_equation) return f;
  return f && LeqWithCache(query.rhs, query.lhs);
}

Result<bool> PdImplicationEngine::Implies(const Pd& query,
                                          const ExecContext& ctx) {
  bool fwd;
  if (CacheLookup(query.lhs, query.rhs, &fwd)) {
    if (!fwd) return false;
    if (!query.is_equation) return true;
    bool bwd;
    if (CacheLookup(query.rhs, query.lhs, &bwd)) return bwd;
  }
  PSEM_RETURN_IF_ERROR(Prepare({query.lhs, query.rhs}, ctx));
  bool f = LeqWithCache(query.lhs, query.rhs);
  if (!query.is_equation) return f;
  return f && LeqWithCache(query.rhs, query.lhs);
}

std::vector<bool> PdImplicationEngine::BatchImplies(
    std::span<const Pd> queries) {
  std::vector<bool> out(queries.size(), false);
  // Pass 1: answer what the cache can; register the vertices of every
  // remaining query so the closure below is computed exactly once for
  // the whole batch.
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const Pd& q = queries[i];
    bool fwd;
    if (CacheLookup(q.lhs, q.rhs, &fwd)) {
      if (!fwd) continue;  // out[i] stays false
      if (!q.is_equation) {
        out[i] = true;
        continue;
      }
      bool bwd;
      if (CacheLookup(q.rhs, q.lhs, &bwd)) {
        out[i] = bwd;
        continue;
      }
    }
    AddVertex(q.lhs);
    AddVertex(q.rhs);
    pending.push_back(i);
  }
  // Pass 2: one shared (incremental) closure, then O(1) bit tests.
  // Duplicate queries in the batch resolve through the cache.
  if (!pending.empty()) {
    if (!closure_valid_) {
      Status st = ComputeClosure(ExecContext::Unbounded());
      PSEM_CHECK(st.ok(), "ungoverned closure failed: " + st.ToString());
    }
    for (std::size_t i : pending) {
      const Pd& q = queries[i];
      bool f = LeqWithCache(q.lhs, q.rhs);
      out[i] = q.is_equation ? (f && LeqWithCache(q.rhs, q.lhs)) : f;
    }
  }
  return out;
}

std::vector<Result<bool>> PdImplicationEngine::BatchImplies(
    std::span<const Pd> queries, const ExecContext& ctx) {
  // Failures are per-query: each query is pre-checked against the vertex
  // budget BEFORE its subexpressions are interned, so one oversized query
  // gets its own error and leaves the rest of the batch (and the engine)
  // untouched. Result<bool> has no default constructor, so the slots are
  // staged in optionals and unwrapped at the end.
  std::vector<std::optional<Result<bool>>> slots(queries.size());
  std::vector<std::size_t> pending;
  std::set<ExprId> counted;  // spans the batch: vertices shared between
                             // in-budget queries are counted once
  std::size_t prospective = vertices_.size();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const Pd& q = queries[i];
    bool fwd;
    if (CacheLookup(q.lhs, q.rhs, &fwd)) {
      if (!fwd) {
        slots[i] = Result<bool>(false);
        continue;
      }
      if (!q.is_equation) {
        slots[i] = Result<bool>(true);
        continue;
      }
      bool bwd;
      if (CacheLookup(q.rhs, q.lhs, &bwd)) {
        slots[i] = Result<bool>(bwd);
        continue;
      }
    }
    if (ctx.max_vertices() != 0) {
      // Trial-count against a copy so a rejected query's subexpressions
      // don't pollute the shared `counted` set.
      std::set<ExprId> trial = counted;
      std::size_t added = CountNewVertices(q.lhs, &trial) +
                          CountNewVertices(q.rhs, &trial);
      Status st = ctx.CheckVertices(prospective + added);
      if (!st.ok()) {
        slots[i] = Result<bool>(st);
        continue;
      }
      counted = std::move(trial);
      prospective += added;
    }
    AddVertex(q.lhs);
    AddVertex(q.rhs);
    pending.push_back(i);
  }
  if (!pending.empty()) {
    Status st = closure_valid_ ? Status::OK() : ComputeClosure(ctx);
    for (std::size_t i : pending) {
      if (!st.ok()) {
        // Shared-closure failure: only the closure-dependent remainder
        // report it; cache-resolved verdicts above are kept.
        slots[i] = Result<bool>(st);
        continue;
      }
      const Pd& q = queries[i];
      bool f = LeqWithCache(q.lhs, q.rhs);
      slots[i] =
          Result<bool>(q.is_equation ? (f && LeqWithCache(q.rhs, q.lhs)) : f);
    }
  }
  std::vector<Result<bool>> out;
  out.reserve(slots.size());
  for (auto& s : slots) out.push_back(std::move(*s));
  return out;
}

// ---------------------------------------------------------------------------
// Naive reference: the seven rules of ALG, applied literally until no new
// arc can be added.
// ---------------------------------------------------------------------------

bool NaivePdImplication(const ExprArena& arena, const std::vector<Pd>& e,
                        const Pd& query) {
  // V: subexpressions of E, e, e'.
  std::set<ExprId> seen;
  std::vector<ExprId> v;
  for (const Pd& pd : e) {
    arena.CollectSubexprs(pd.lhs, &seen, &v);
    arena.CollectSubexprs(pd.rhs, &seen, &v);
  }
  arena.CollectSubexprs(query.lhs, &seen, &v);
  arena.CollectSubexprs(query.rhs, &seen, &v);

  std::set<std::pair<ExprId, ExprId>> gamma;
  auto has = [&](ExprId a, ExprId b) { return gamma.count({a, b}) > 0; };

  bool changed = true;
  while (changed) {
    changed = false;
    auto add = [&](ExprId a, ExprId b) {
      if (gamma.insert({a, b}).second) changed = true;
    };
    // Step 1: (A, A) for attributes.
    for (ExprId x : v) {
      if (arena.IsAttr(x)) add(x, x);
    }
    // Step 6: constraint arcs.
    for (const Pd& pd : e) {
      add(pd.lhs, pd.rhs);
      if (pd.is_equation) add(pd.rhs, pd.lhs);
    }
    for (ExprId x : v) {
      if (arena.IsAttr(x)) continue;
      ExprId p = arena.LhsOf(x), q = arena.RhsOf(x);
      for (ExprId s : v) {
        if (arena.KindOf(x) == ExprKind::kSum) {
          // Step 2: (p,s) and (q,s) => (p+q, s).
          if (has(p, s) && has(q, s)) add(x, s);
          // Step 5: (s,p) or (s,q) => (s, p+q).
          if (has(s, p) || has(s, q)) add(s, x);
        } else {
          // Step 3: (p,s) or (q,s) => (p*q, s).
          if (has(p, s) || has(q, s)) add(x, s);
          // Step 4: (s,p) and (s,q) => (s, p*q).
          if (has(s, p) && has(s, q)) add(s, x);
        }
      }
    }
    // Step 7: transitivity.
    for (const auto& [a, b] : std::set<std::pair<ExprId, ExprId>>(gamma)) {
      for (ExprId c : v) {
        if (has(b, c)) add(a, c);
      }
    }
  }
  bool fwd = has(query.lhs, query.rhs);
  if (!query.is_equation) return fwd;
  return fwd && has(query.rhs, query.lhs);
}

}  // namespace psem
