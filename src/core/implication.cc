#include "core/implication.h"

#include <cassert>
#include <set>

namespace psem {

PdImplicationEngine::PdImplicationEngine(const ExprArena* arena,
                                         std::vector<Pd> constraints)
    : arena_(arena), constraints_(std::move(constraints)) {
  for (const Pd& pd : constraints_) {
    AddVertex(pd.lhs);
    AddVertex(pd.rhs);
  }
}

void PdImplicationEngine::AddVertex(ExprId e) {
  if (vertex_of_.count(e)) return;
  // Children first so child indices exist.
  if (!arena_->IsAttr(e)) {
    AddVertex(arena_->LhsOf(e));
    AddVertex(arena_->RhsOf(e));
  }
  uint32_t idx = static_cast<uint32_t>(vertices_.size());
  vertices_.push_back(e);
  vertex_of_.emplace(e, idx);
  kind_.push_back(arena_->KindOf(e));
  if (arena_->IsAttr(e)) {
    lhs_.push_back(kNoVertex);
    rhs_.push_back(kNoVertex);
  } else {
    lhs_.push_back(vertex_of_.at(arena_->LhsOf(e)));
    rhs_.push_back(vertex_of_.at(arena_->RhsOf(e)));
  }
  closure_valid_ = false;
}

void PdImplicationEngine::ComputeClosure() {
  const std::size_t n = vertices_.size();
  up_.assign(n, DynamicBitset(n));
  // Rule 1 (generalized): <=_E is reflexive. ALG seeds (A, A) for
  // attributes only and derives reflexivity of composites via rules 3/4
  // (resp. 5/2); seeding all vertices is sound and saves passes.
  for (std::size_t i = 0; i < n; ++i) up_[i].Set(i);
  // Rule 6: each constraint contributes its arc(s).
  for (const Pd& pd : constraints_) {
    uint32_t l = vertex_of_.at(pd.lhs);
    uint32_t r = vertex_of_.at(pd.rhs);
    up_[l].Set(r);
    if (pd.is_equation) up_[r].Set(l);
  }

  // Fixpoint over rules 2-5 and 7, alternating row-space (up) and
  // column-space (down) formulations.
  std::vector<DynamicBitset> down(n, DynamicBitset(n));
  std::size_t passes = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    ++passes;
    // Rule 7 (transitivity), one sweep: up[i] |= up[j] for j in up[i].
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = up_[i].NextSetBit(0); j < n;
           j = up_[i].NextSetBit(j + 1)) {
        if (j != i) changed |= up_[i].UnionWith(up_[j]);
      }
    }
    // Rule 3: (p, s) or (q, s) => (p*q, s).
    // Rule 2: (p, s) and (q, s) => (p+q, s).
    for (std::size_t m = 0; m < n; ++m) {
      if (kind_[m] == ExprKind::kProduct) {
        changed |= up_[m].UnionWith(up_[lhs_[m]]);
        changed |= up_[m].UnionWith(up_[rhs_[m]]);
      } else if (kind_[m] == ExprKind::kSum) {
        changed |= up_[m].UnionWithAnd(up_[lhs_[m]], up_[rhs_[m]]);
      }
    }
    // Transpose into down.
    for (std::size_t i = 0; i < n; ++i) down[i].Clear();
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = up_[i].NextSetBit(0); j < n;
           j = up_[i].NextSetBit(j + 1)) {
        down[j].Set(i);
      }
    }
    // Rule 5: (s, p) or (s, q) => (s, p+q).
    // Rule 4: (s, p) and (s, q) => (s, p*q).
    for (std::size_t m = 0; m < n; ++m) {
      if (kind_[m] == ExprKind::kSum) {
        changed |= down[m].UnionWith(down[lhs_[m]]);
        changed |= down[m].UnionWith(down[rhs_[m]]);
      } else if (kind_[m] == ExprKind::kProduct) {
        changed |= down[m].UnionWithAnd(down[lhs_[m]], down[rhs_[m]]);
      }
    }
    // Transpose back into up.
    for (std::size_t i = 0; i < n; ++i) up_[i].Clear();
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t i = down[j].NextSetBit(0); i < n;
           i = down[j].NextSetBit(i + 1)) {
        up_[i].Set(j);
      }
    }
  }

  stats_.num_vertices = n;
  stats_.passes = passes;
  stats_.num_arcs = 0;
  for (std::size_t i = 0; i < n; ++i) stats_.num_arcs += up_[i].Count();
  closure_valid_ = true;
}

void PdImplicationEngine::Prepare(const std::vector<ExprId>& exprs) {
  for (ExprId e : exprs) AddVertex(e);
  if (!closure_valid_) ComputeClosure();
}

bool PdImplicationEngine::LeqInClosure(ExprId e1, ExprId e2) const {
  assert(closure_valid_);
  auto i = vertex_of_.find(e1);
  auto j = vertex_of_.find(e2);
  assert(i != vertex_of_.end() && j != vertex_of_.end());
  return up_[i->second].Test(j->second);
}

bool PdImplicationEngine::ImpliesLeq(ExprId e1, ExprId e2) {
  Prepare({e1, e2});
  return LeqInClosure(e1, e2);
}

bool PdImplicationEngine::Implies(const Pd& query) {
  Prepare({query.lhs, query.rhs});
  bool fwd = LeqInClosure(query.lhs, query.rhs);
  if (!query.is_equation) return fwd;
  return fwd && LeqInClosure(query.rhs, query.lhs);
}

// ---------------------------------------------------------------------------
// Naive reference: the seven rules of ALG, applied literally until no new
// arc can be added.
// ---------------------------------------------------------------------------

bool NaivePdImplication(const ExprArena& arena, const std::vector<Pd>& e,
                        const Pd& query) {
  // V: subexpressions of E, e, e'.
  std::set<ExprId> seen;
  std::vector<ExprId> v;
  for (const Pd& pd : e) {
    arena.CollectSubexprs(pd.lhs, &seen, &v);
    arena.CollectSubexprs(pd.rhs, &seen, &v);
  }
  arena.CollectSubexprs(query.lhs, &seen, &v);
  arena.CollectSubexprs(query.rhs, &seen, &v);

  std::set<std::pair<ExprId, ExprId>> gamma;
  auto has = [&](ExprId a, ExprId b) { return gamma.count({a, b}) > 0; };

  bool changed = true;
  while (changed) {
    changed = false;
    auto add = [&](ExprId a, ExprId b) {
      if (gamma.insert({a, b}).second) changed = true;
    };
    // Step 1: (A, A) for attributes.
    for (ExprId x : v) {
      if (arena.IsAttr(x)) add(x, x);
    }
    // Step 6: constraint arcs.
    for (const Pd& pd : e) {
      add(pd.lhs, pd.rhs);
      if (pd.is_equation) add(pd.rhs, pd.lhs);
    }
    for (ExprId x : v) {
      if (arena.IsAttr(x)) continue;
      ExprId p = arena.LhsOf(x), q = arena.RhsOf(x);
      for (ExprId s : v) {
        if (arena.KindOf(x) == ExprKind::kSum) {
          // Step 2: (p,s) and (q,s) => (p+q, s).
          if (has(p, s) && has(q, s)) add(x, s);
          // Step 5: (s,p) or (s,q) => (s, p+q).
          if (has(s, p) || has(s, q)) add(s, x);
        } else {
          // Step 3: (p,s) or (q,s) => (p*q, s).
          if (has(p, s) || has(q, s)) add(x, s);
          // Step 4: (s,p) and (s,q) => (s, p*q).
          if (has(s, p) && has(s, q)) add(s, x);
        }
      }
    }
    // Step 7: transitivity.
    for (const auto& [a, b] : std::set<std::pair<ExprId, ExprId>>(gamma)) {
      for (ExprId c : v) {
        if (has(b, c)) add(a, c);
      }
    }
  }
  bool fwd = has(query.lhs, query.rhs);
  if (!query.is_equation) return fwd;
  return fwd && has(query.rhs, query.lhs);
}

}  // namespace psem
