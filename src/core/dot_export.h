/// @file dot_export.h
/// @brief Graphviz exporters for Hasse diagrams and proof DAGs.

// Graphviz (DOT) exporters: Hasse diagrams of finite lattices and
// derivation DAGs of proofs. `dot -Tsvg` renders them; tests check the
// structural content (nodes, cover edges) rather than pixels.

#ifndef PSEM_CORE_DOT_EXPORT_H_
#define PSEM_CORE_DOT_EXPORT_H_

#include <string>

#include "core/proof.h"
#include "lattice/finite_lattice.h"

namespace psem {

/// The Hasse diagram of `l` as a DOT digraph (edges point from lower to
/// upper cover; rank direction bottom-to-top).
std::string ExportLatticeDot(const FiniteLattice& l,
                             const std::string& graph_name = "lattice");

/// The proof DAG: one node per step (labelled with its arc and rule),
/// edges from premises to conclusions.
std::string ExportProofDot(const ExprArena& arena, const Proof& proof,
                           const std::string& graph_name = "proof");

}  // namespace psem

#endif  // PSEM_CORE_DOT_EXPORT_H_
