/// @file snapshot.h
/// @brief Durable closure snapshots + write-ahead journal: tiered crash
/// recovery for the PD-implication engine.

// Durability for Algorithm ALG's closure state, layered on the
// util/durable_file.h primitives. Two artifacts:
//
//  * Snapshot — one checksummed chunk container holding everything needed
//    to rebuild a PdImplicationEngine in a fresh process: the attribute
//    name table, V serialized structurally (kind + child indices, valid
//    across processes where raw ExprIds are not), E as vertex-index
//    pairs, and the engine's closure state (arc rows, unconsumed
//    frontier, exact arc counter). Written atomically, so a crash during
//    checkpointing never damages the previous snapshot.
//
//  * Journal — a write-ahead log of the PD constraints accepted after the
//    base theory, one record per PD, fsynced before the constraint is
//    applied. The journal is cumulative (never truncated at checkpoints):
//    base theory + journal alone reconstruct the full E, which is what
//    makes snapshot corruption survivable rather than fatal.
//
// Recovery is tiered, worst tier wins (RecoveryTier):
//
//    kColdStart            no snapshot to restore; normal cold build.
//    kCleanRestore         snapshot verified and restored; journal clean.
//    kJournalTailTruncated a torn journal tail (crash mid-append) was
//                          dropped at the last valid record boundary.
//    kColdRecompute        the snapshot existed but failed verification
//                          (checksum, format, or theory-fingerprint
//                          mismatch); it was ignored and the closure is
//                          recomputed from base theory + journal.
//
// A corrupt snapshot therefore degrades throughput, never correctness; a
// corrupt journal *header* is a hard kDataLoss (the journal is the source
// of truth — silently dropping it would lose accepted constraints).
// Replay goes through the engine's incremental AddConstraint path and is
// idempotent, so records also covered by the snapshot are no-ops.
//
// Thread-compatibility: DurablePdEngine is single-writer; serialize all
// calls externally (same contract as the underlying engine's mutators).

#ifndef PSEM_CORE_SNAPSHOT_H_
#define PSEM_CORE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/implication.h"
#include "lattice/expr.h"
#include "util/durable_file.h"
#include "util/exec_context.h"
#include "util/status.h"

namespace psem {

/// Which recovery path actually ran, ordered best to worst.
enum class RecoveryTier {
  kColdStart = 0,             ///< nothing durable to restore.
  kCleanRestore = 1,          ///< snapshot restored, journal intact.
  kJournalTailTruncated = 2,  ///< torn journal tail dropped, rest replayed.
  kColdRecompute = 3,         ///< snapshot rejected; rebuilt from journal.
};

/// Stable name for logs and the CLI recovery summary line.
const char* RecoveryTierName(RecoveryTier tier);

/// What recovery found and did. Every field is populated by
/// DurablePdEngine::Recover regardless of tier.
struct RecoveryStats {
  RecoveryTier tier = RecoveryTier::kColdStart;
  bool snapshot_present = false;   ///< a snapshot file existed.
  bool snapshot_restored = false;  ///< ... and passed verification.
  std::string snapshot_error;      ///< why it was rejected, if it was.
  std::size_t journal_records = 0;      ///< valid records found.
  std::size_t journal_replayed_new = 0; ///< records not already in the
                                        ///< restored snapshot's E.
  bool journal_tail_truncated = false;
  uint64_t journal_bytes_dropped = 0;
  std::size_t restored_vertices = 0;  ///< |V| carried by the snapshot.
  uint64_t restored_arcs = 0;         ///< arcs carried by the snapshot.
};

/// Order-sensitive fingerprint of a theory (CRC32C over the canonical
/// rendering of each PD). A snapshot records the fingerprint of the BASE
/// theory it grew from; recovery rejects a snapshot whose base differs
/// from the one being recovered (tier kColdRecompute).
uint64_t TheoryFingerprint(const ExprArena& arena, const std::vector<Pd>& pds);

/// A snapshot decoded back into live arena objects.
struct DecodedSnapshot {
  uint64_t base_fingerprint = 0;
  std::vector<ExprId> vertices;  ///< children-first, the engine row order.
  std::vector<Pd> constraints;   ///< full E at checkpoint time.
  PdImplicationEngine::EngineClosureState state;
};

/// Serializes an engine (plus the fingerprint of its base theory) into
/// chunk-container bytes. Callable at rest or mid-abort.
Result<std::string> EncodeSnapshot(const PdImplicationEngine& engine,
                                   uint64_t base_fingerprint);

/// Parses + semantically validates snapshot bytes, interning expressions
/// into `arena` (hash-consing makes that idempotent). kDataLoss on any
/// framing/checksum/consistency violation; kInvalidArgument when a
/// DurableLimits bound is exceeded. Untrusted-input hardened: every
/// index is bounds-checked and bitset tail bits must be clean.
Result<DecodedSnapshot> DecodeSnapshot(std::string_view bytes,
                                       ExprArena* arena,
                                       const DurableLimits& limits = {});

/// Knobs for the durable engine.
struct DurabilityOptions {
  std::string snapshot_path;  ///< empty = never snapshot.
  std::string journal_path;   ///< empty = no write-ahead journal.
  /// Auto-checkpoint after this many newly accepted constraints
  /// (0 = only explicit Checkpoint calls).
  std::size_t checkpoint_every = 32;
  DurableLimits limits;
  EngineOptions engine;
};

/// A PdImplicationEngine wrapped in snapshot + journal durability.
///
/// Write path: AddPd journals the constraint (fsync) BEFORE applying it —
/// an acknowledged constraint survives any later crash — then applies it
/// through the engine's incremental path and, every checkpoint_every
/// acceptances, rewrites the snapshot. Checkpoint failures (deadline,
/// injected I/O fault, full disk) never fail AddPd: the journal already
/// holds the record, so durability is preserved and only the next
/// recovery's warm-start quality degrades; the error is retained in
/// last_checkpoint_status().
class DurablePdEngine {
 public:
  /// Recovers (or cold-starts) an engine for `base` + whatever the
  /// durable artifacts hold. See the tier table above. `arena` must
  /// outlive the result.
  static Result<DurablePdEngine> Recover(
      ExprArena* arena, std::vector<Pd> base, DurabilityOptions options,
      const ExecContext& ctx = ExecContext::Unbounded());

  /// Durably accepts one constraint (journal -> engine -> maybe
  /// checkpoint). Duplicates of constraints already in E return OK
  /// without journaling. kIoError if the journal append fails — the
  /// constraint is then NOT applied and may be retried.
  Status AddPd(const Pd& pd, const ExecContext& ctx);

  /// Writes a snapshot now. kFailedPrecondition when no snapshot_path is
  /// configured.
  Status Checkpoint(const ExecContext& ctx);

  PdImplicationEngine& engine() { return *engine_; }
  const PdImplicationEngine& engine() const { return *engine_; }
  const RecoveryStats& recovery() const { return recovery_; }
  /// Outcome of the most recent automatic or explicit checkpoint.
  const Status& last_checkpoint_status() const {
    return last_checkpoint_status_;
  }

 private:
  DurablePdEngine() = default;

  ExprArena* arena_ = nullptr;
  DurabilityOptions options_;
  uint64_t base_fingerprint_ = 0;
  std::unique_ptr<PdImplicationEngine> engine_;
  std::optional<Journal> journal_;
  RecoveryStats recovery_;
  std::size_t since_checkpoint_ = 0;
  Status last_checkpoint_status_;
};

}  // namespace psem

#endif  // PSEM_CORE_SNAPSHOT_H_
