#include "partition/canonical.h"

#include <algorithm>
#include <unordered_map>

#include "partition/dense.h"
#include "util/union_find.h"

namespace psem {

Result<PartitionInterpretation> CanonicalInterpretation(const Database& db,
                                                        const Relation& r) {
  if (r.empty()) {
    return Status::FailedPrecondition(
        "I(r) requires a nonempty relation (populations must be nonempty)");
  }
  PartitionInterpretation interp;
  std::vector<Elem> population(r.size());
  for (uint32_t i = 0; i < r.size(); ++i) population[i] = i;
  DenseOps ops;
  DensePartition grouped;
  std::vector<uint32_t> column(r.size());

  for (std::size_t c = 0; c < r.arity(); ++c) {
    const std::string& attr = db.universe().NameOf(r.schema().attrs[c]);
    // Group tuple indices by the symbol in this column; the kernel's
    // first-occurrence labels are already canonical for element (= tuple
    // index) order.
    for (uint32_t i = 0; i < r.size(); ++i) column[i] = r.row(i)[c];
    ops.GroupByValues(column, &grouped);
    std::unordered_map<std::string, uint32_t> naming;
    naming.reserve(grouped.num_blocks);
    for (uint32_t i = 0; i < r.size(); ++i) {
      uint32_t label = grouped.labels[i];
      if (naming.size() == grouped.num_blocks) break;
      naming.emplace(db.symbols().NameOf(column[i]), label);
    }
    PSEM_RETURN_IF_ERROR(interp.DefineAttribute(
        attr, Partition::FromLabels(population, grouped.labels), naming));
  }
  return interp;
}

Result<Relation> CanonicalRelation(const PartitionInterpretation& interp,
                                   Database* db, const std::string& name) {
  const auto& attr_names = interp.attribute_names();
  if (attr_names.empty()) {
    return Status::FailedPrecondition("interpretation defines no attributes");
  }
  // Union of populations.
  std::vector<Elem> all;
  for (const std::string& a : attr_names) {
    PSEM_ASSIGN_OR_RETURN(Partition p, interp.AtomicPartition(a));
    const auto& pop = p.population();
    all.insert(all.end(), pop.begin(), pop.end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());

  RelationSchema schema;
  schema.name = name;
  for (const std::string& a : attr_names) {
    schema.attrs.push_back(db->universe().Intern(a));
  }
  Relation out(std::move(schema));
  for (Elem i : all) {
    Tuple t;
    t.reserve(attr_names.size());
    for (const std::string& a : attr_names) {
      PSEM_ASSIGN_OR_RETURN(Partition p, interp.AtomicPartition(a));
      auto label = p.BlockOf(i);
      if (label.has_value()) {
        PSEM_ASSIGN_OR_RETURN(std::string sym, interp.SymbolOfBlock(a, *label));
        t.push_back(db->symbols().Intern(sym));
      } else {
        // i outside p_A: a symbol i_A unique to (i, A).
        t.push_back(db->symbols().Intern("_pad_" + std::to_string(i) + "_" + a));
      }
    }
    out.AddTuple(std::move(t));
  }
  return out;
}

Result<PartitionInterpretation> EapExtension(
    const PartitionInterpretation& interp) {
  // Union of all populations.
  std::vector<Elem> all;
  for (const std::string& a : interp.attribute_names()) {
    PSEM_ASSIGN_OR_RETURN(Partition p, interp.AtomicPartition(a));
    const auto& pop = p.population();
    all.insert(all.end(), pop.begin(), pop.end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  if (all.empty()) {
    return Status::FailedPrecondition("interpretation defines no attributes");
  }

  PartitionInterpretation out;
  for (const std::string& a : interp.attribute_names()) {
    PSEM_ASSIGN_OR_RETURN(Partition p, interp.AtomicPartition(a));
    std::vector<std::vector<Elem>> blocks = p.Blocks();
    std::unordered_map<std::string, uint32_t> naming;
    for (uint32_t b = 0; b < blocks.size(); ++b) {
      PSEM_ASSIGN_OR_RETURN(std::string sym, interp.SymbolOfBlock(a, b));
      naming[sym] = b;
    }
    // Singletons for elements outside p_A, with fresh per-(attr, elem)
    // symbols.
    for (Elem e : all) {
      if (p.BlockOf(e).has_value()) continue;
      naming["_eap_" + a + "_" + std::to_string(e)] =
          static_cast<uint32_t>(blocks.size());
      blocks.push_back({e});
    }
    PSEM_RETURN_IF_ERROR(
        out.DefineAttribute(a, Partition::FromBlocks(blocks), [&] {
          // FromBlocks renumbers canonically; remap the naming through
          // block membership.
          Partition canon = Partition::FromBlocks(blocks);
          std::unordered_map<std::string, uint32_t> renamed;
          for (const auto& [sym, old_label] : naming) {
            renamed[sym] = *canon.BlockOf(blocks[old_label][0]);
          }
          return renamed;
        }()));
  }
  return out;
}

Result<bool> RelationSatisfiesPd(const Database& db, const Relation& r,
                                 const ExprArena& arena, const Pd& pd) {
  if (r.empty()) return true;
  PSEM_ASSIGN_OR_RETURN(PartitionInterpretation interp,
                        CanonicalInterpretation(db, r));
  return interp.Satisfies(arena, pd);
}

namespace {

// Column index of a named attribute, or error.
Result<std::size_t> ColumnOf(const Database& db, const Relation& r,
                             const std::string& attr) {
  PSEM_ASSIGN_OR_RETURN(RelAttrId id, db.universe().Require(attr));
  std::size_t col = r.schema().ColumnOf(id);
  if (col == RelationSchema::kNpos) {
    return Status::InvalidArgument("attribute '" + attr +
                                   "' not in relation scheme");
  }
  return col;
}

// Union-find over tuples chained by agreement on column a or column b.
UnionFind ChainComponents(const Relation& r, std::size_t ca, std::size_t cb) {
  UnionFind uf(r.size());
  std::unordered_map<ValueId, uint32_t> first_a, first_b;
  for (uint32_t i = 0; i < r.size(); ++i) {
    auto [ita, ia] = first_a.emplace(r.row(i)[ca], i);
    if (!ia) uf.Union(ita->second, i);
    auto [itb, ib] = first_b.emplace(r.row(i)[cb], i);
    if (!ib) uf.Union(itb->second, i);
  }
  return uf;
}

}  // namespace

Result<bool> SatisfiesProductPdDirect(const Database& db, const Relation& r,
                                      const std::string& c,
                                      const std::string& a,
                                      const std::string& b) {
  PSEM_ASSIGN_OR_RETURN(std::size_t cc, ColumnOf(db, r, c));
  PSEM_ASSIGN_OR_RETURN(std::size_t ca, ColumnOf(db, r, a));
  PSEM_ASSIGN_OR_RETURN(std::size_t cb, ColumnOf(db, r, b));
  for (std::size_t i = 0; i < r.size(); ++i) {
    for (std::size_t j = i + 1; j < r.size(); ++j) {
      bool eq_c = r.row(i)[cc] == r.row(j)[cc];
      bool eq_ab = r.row(i)[ca] == r.row(j)[ca] && r.row(i)[cb] == r.row(j)[cb];
      if (eq_c != eq_ab) return false;
    }
  }
  return true;
}

Result<bool> SatisfiesSumPdDirect(const Database& db, const Relation& r,
                                  const std::string& c, const std::string& a,
                                  const std::string& b) {
  PSEM_ASSIGN_OR_RETURN(std::size_t cc, ColumnOf(db, r, c));
  PSEM_ASSIGN_OR_RETURN(std::size_t ca, ColumnOf(db, r, a));
  PSEM_ASSIGN_OR_RETURN(std::size_t cb, ColumnOf(db, r, b));
  UnionFind uf = ChainComponents(r, ca, cb);
  for (uint32_t i = 0; i < r.size(); ++i) {
    for (uint32_t j = i + 1; j < r.size(); ++j) {
      bool eq_c = r.row(i)[cc] == r.row(j)[cc];
      if (eq_c != uf.Connected(i, j)) return false;
    }
  }
  return true;
}

Result<bool> SatisfiesSumUpperPdDirect(const Database& db, const Relation& r,
                                       const std::string& c,
                                       const std::string& a,
                                       const std::string& b) {
  PSEM_ASSIGN_OR_RETURN(std::size_t cc, ColumnOf(db, r, c));
  PSEM_ASSIGN_OR_RETURN(std::size_t ca, ColumnOf(db, r, a));
  PSEM_ASSIGN_OR_RETURN(std::size_t cb, ColumnOf(db, r, b));
  UnionFind uf = ChainComponents(r, ca, cb);
  for (uint32_t i = 0; i < r.size(); ++i) {
    for (uint32_t j = i + 1; j < r.size(); ++j) {
      if (r.row(i)[cc] == r.row(j)[cc] && !uf.Connected(i, j)) return false;
    }
  }
  return true;
}

}  // namespace psem
