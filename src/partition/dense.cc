#include "partition/dense.h"

#include <algorithm>
#include <cassert>

namespace psem {

namespace {

inline uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

inline std::size_t NextPow2(std::size_t x) {
  std::size_t p = 16;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace

// --- PartitionUniverse ------------------------------------------------------

PartitionUniverse::PartitionUniverse(std::vector<Elem> population)
    : elems_(std::move(population)) {
  std::sort(elems_.begin(), elems_.end());
  elems_.erase(std::unique(elems_.begin(), elems_.end()), elems_.end());
  identity_ = true;
  for (std::size_t i = 0; i < elems_.size(); ++i) {
    if (elems_[i] != i) {
      identity_ = false;
      break;
    }
  }
}

PartitionUniverse PartitionUniverse::Dense(std::size_t n) {
  PartitionUniverse u;
  u.elems_.resize(n);
  for (std::size_t i = 0; i < n; ++i) u.elems_[i] = static_cast<Elem>(i);
  u.identity_ = true;
  return u;
}

std::optional<uint32_t> PartitionUniverse::IndexOf(Elem e) const {
  if (identity_) {
    if (e < elems_.size()) return e;
    return std::nullopt;
  }
  auto it = std::lower_bound(elems_.begin(), elems_.end(), e);
  if (it == elems_.end() || *it != e) return std::nullopt;
  return static_cast<uint32_t>(it - elems_.begin());
}

DensePartition PartitionUniverse::Densify(const Partition& p) const {
  DensePartition d;
  d.labels.assign(elems_.size(), DensePartition::kAbsent);
  const auto& pop = p.population();
  const auto& labels = p.labels();
  // Merge-walk: both populations are sorted ascending.
  std::size_t j = 0;
  for (std::size_t i = 0; i < pop.size(); ++i) {
    while (j < elems_.size() && elems_[j] < pop[i]) ++j;
    assert(j < elems_.size() && elems_[j] == pop[i] &&
           "partition population not contained in universe");
    d.labels[j] = labels[i];
  }
  // p is canonical (first-occurrence in element order) and the universe
  // preserves element order, so the labels are already canonical.
  d.num_blocks = static_cast<uint32_t>(p.num_blocks());
  d.present = static_cast<uint32_t>(pop.size());
  return d;
}

Partition PartitionUniverse::Sparsify(const DensePartition& d) const {
  assert(d.labels.size() == elems_.size());
  std::vector<Elem> pop;
  std::vector<uint32_t> labels;
  pop.reserve(d.present);
  labels.reserve(d.present);
  for (std::size_t i = 0; i < d.labels.size(); ++i) {
    if (d.labels[i] == DensePartition::kAbsent) continue;
    pop.push_back(elems_[i]);
    labels.push_back(d.labels[i]);
  }
  // Canonical by construction (sorted elements, first-occurrence labels);
  // FromLabels would re-canonicalize to the identical representation, but
  // we can skip that O(n log n) by rebuilding directly.
  return Partition::FromLabels(std::move(pop), labels);
}

// --- DenseOps: pair table ---------------------------------------------------

void DenseOps::TableReset(std::size_t max_entries) {
  std::size_t cap = NextPow2(2 * max_entries + 1);
  if (tkey_.size() < cap) {
    tkey_.resize(cap);
    tval_.resize(cap);
    tgen_.assign(cap, 0);
    gen_ = 0;
  }
  tmask_ = tkey_.size() - 1;
  if (++gen_ == 0) {  // generation wrapped: hard reset
    std::fill(tgen_.begin(), tgen_.end(), 0);
    gen_ = 1;
  }
}

uint32_t DenseOps::TableIntern(uint64_t key, uint32_t* next) {
  std::size_t slot = static_cast<std::size_t>(Mix64(key)) & tmask_;
  while (tgen_[slot] == gen_) {
    if (tkey_[slot] == key) return tval_[slot];
    slot = (slot + 1) & tmask_;
  }
  tgen_[slot] = gen_;
  tkey_[slot] = key;
  tval_[slot] = (*next)++;
  return tval_[slot];
}

// --- DenseOps: union-find scratch ------------------------------------------

void DenseOps::UfReset(std::size_t n) {
  parent_.resize(n);
  urank_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<uint32_t>(i);
}

uint32_t DenseOps::UfFind(uint32_t x) {
  uint32_t root = x;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[x] != root) {
    uint32_t up = parent_[x];
    parent_[x] = root;
    x = up;
  }
  return root;
}

void DenseOps::UfUnion(uint32_t x, uint32_t y) {
  uint32_t rx = UfFind(x);
  uint32_t ry = UfFind(y);
  if (rx == ry) return;
  if (urank_[rx] < urank_[ry]) std::swap(rx, ry);
  parent_[ry] = rx;
  if (urank_[rx] == urank_[ry]) ++urank_[rx];
}

void DenseOps::FirstsReset(std::size_t num_blocks) {
  if (first_idx_.size() < num_blocks) {
    first_idx_.resize(num_blocks);
    first_gen_.assign(num_blocks, 0);
    fgen_ = 0;
  }
  if (++fgen_ == 0) {
    std::fill(first_gen_.begin(), first_gen_.end(), 0);
    fgen_ = 1;
  }
}

// --- DenseOps: product ------------------------------------------------------

void DenseOps::Product(const DensePartition& a, const DensePartition& b,
                       DensePartition* out) {
  const std::size_t n = a.labels.size();
  assert(b.labels.size() == n && "operands must share a universe");
  out->labels.assign(n, DensePartition::kAbsent);
  TableReset(std::min(a.present, b.present));
  uint32_t next = 0;
  uint32_t present = 0;
  for (std::size_t i = 0; i < n; ++i) {
    uint32_t la = a.labels[i];
    if (la == DensePartition::kAbsent) continue;
    uint32_t lb = b.labels[i];
    if (lb == DensePartition::kAbsent) continue;
    uint64_t key = (static_cast<uint64_t>(la) << 32) | lb;
    out->labels[i] = TableIntern(key, &next);
    ++present;
  }
  out->num_blocks = next;
  out->present = present;
}

// --- DenseOps: sum ----------------------------------------------------------

void DenseOps::Sum(const DensePartition& a, const DensePartition& b,
                   DensePartition* out) {
  const std::size_t n = a.labels.size();
  assert(b.labels.size() == n && "operands must share a universe");
  UfReset(n);
  // Chain every element to the first element of its block, per operand
  // (the Section 3.1 chain condition: two elements are summed together
  // iff connected through overlapping blocks).
  for (const DensePartition* p : {&a, &b}) {
    FirstsReset(p->num_blocks);
    const auto& labels = p->labels;
    for (std::size_t i = 0; i < n; ++i) {
      uint32_t l = labels[i];
      if (l == DensePartition::kAbsent) continue;
      if (first_gen_[l] != fgen_) {
        first_gen_[l] = fgen_;
        first_idx_[l] = static_cast<uint32_t>(i);
      } else {
        UfUnion(first_idx_[l], static_cast<uint32_t>(i));
      }
    }
  }
  // Canonical relabel by first occurrence over the union population.
  out->labels.assign(n, DensePartition::kAbsent);
  if (relabel_.size() < n) {
    relabel_.resize(n);
    relabel_gen_.assign(n, 0);
    rgen_ = 0;
  }
  if (++rgen_ == 0) {
    std::fill(relabel_gen_.begin(), relabel_gen_.end(), 0);
    rgen_ = 1;
  }
  uint32_t next = 0;
  uint32_t present = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (a.labels[i] == DensePartition::kAbsent &&
        b.labels[i] == DensePartition::kAbsent) {
      continue;
    }
    uint32_t root = UfFind(static_cast<uint32_t>(i));
    if (relabel_gen_[root] != rgen_) {
      relabel_gen_[root] = rgen_;
      relabel_[root] = next++;
    }
    out->labels[i] = relabel_[root];
    ++present;
  }
  out->num_blocks = next;
  out->present = present;
}

// --- DenseOps: grouping / refinement ---------------------------------------

void DenseOps::GroupByValues(std::span<const uint32_t> values,
                             DensePartition* out) {
  const std::size_t n = values.size();
  out->labels.resize(n);
  TableReset(n);
  uint32_t next = 0;
  for (std::size_t i = 0; i < n; ++i) {
    out->labels[i] = TableIntern(values[i], &next);
  }
  out->num_blocks = next;
  out->present = static_cast<uint32_t>(n);
}

bool DenseOps::Refines(const DensePartition& x, const DensePartition& y) {
  const std::size_t n = x.labels.size();
  if (y.labels.size() != n) return false;
  // image: x label -> y label, must be a function.
  FirstsReset(x.num_blocks);
  for (std::size_t i = 0; i < n; ++i) {
    uint32_t lx = x.labels[i];
    uint32_t ly = y.labels[i];
    if ((lx == DensePartition::kAbsent) != (ly == DensePartition::kAbsent)) {
      return false;  // populations differ
    }
    if (lx == DensePartition::kAbsent) continue;
    if (first_gen_[lx] != fgen_) {
      first_gen_[lx] = fgen_;
      first_idx_[lx] = ly;
    } else if (first_idx_[lx] != ly) {
      return false;
    }
  }
  return true;
}

// --- DenseOps: stripped kernels --------------------------------------------

void DenseOps::Strip(const DensePartition& p, StrippedPartition* out) {
  const std::size_t n = p.labels.size();
  out->flat.clear();
  out->offsets.clear();
  out->present = p.present;
  // Pass 1: block sizes. Pass 2: assign cluster slots (blocks of size
  // >= 2) and prefix offsets. Pass 3: scatter members ascending.
  ssize_.assign(p.num_blocks, 0);
  for (std::size_t i = 0; i < n; ++i) {
    uint32_t l = p.labels[i];
    if (l != DensePartition::kAbsent) ++ssize_[l];
  }
  sslot_.resize(p.num_blocks);
  uint32_t clusters = 0;
  std::size_t total = 0;
  for (uint32_t l = 0; l < p.num_blocks; ++l) {
    if (ssize_[l] >= 2) {
      sslot_[l] = clusters++;
      total += ssize_[l];
    } else {
      sslot_[l] = DensePartition::kAbsent;
    }
  }
  out->offsets.assign(clusters + 1, 0);
  for (uint32_t l = 0; l < p.num_blocks; ++l) {
    if (sslot_[l] != DensePartition::kAbsent) {
      out->offsets[sslot_[l] + 1] = ssize_[l];
    }
  }
  for (std::size_t c = 1; c < out->offsets.size(); ++c) {
    out->offsets[c] += out->offsets[c - 1];
  }
  out->flat.resize(total);
  scursor_.assign(out->offsets.begin(), out->offsets.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    uint32_t l = p.labels[i];
    if (l == DensePartition::kAbsent) continue;
    uint32_t s = sslot_[l];
    if (s == DensePartition::kAbsent) continue;
    out->flat[scursor_[s]++] = static_cast<uint32_t>(i);
  }
}

void DenseOps::StrippedProduct(const StrippedPartition& x,
                               const DensePartition& col,
                               StrippedPartition* out) {
  assert(col.present == col.labels.size() &&
         "StrippedProduct requires a fully-present refining column");
  out->flat.clear();
  out->offsets.clear();
  out->offsets.push_back(0);
  out->present = x.present;
  if (bucket_of_.size() < col.num_blocks) {
    bucket_of_.resize(col.num_blocks);
    bucket_gen_.assign(col.num_blocks, 0);
    bggen_ = 0;
  }
  for (std::size_t c = 0; c + 1 < x.offsets.size(); ++c) {
    if (++bggen_ == 0) {
      std::fill(bucket_gen_.begin(), bucket_gen_.end(), 0);
      bggen_ = 1;
    }
    touched_.clear();
    std::size_t used = 0;
    for (uint32_t k = x.offsets[c]; k < x.offsets[c + 1]; ++k) {
      uint32_t i = x.flat[k];
      uint32_t v = col.labels[i];
      assert(v != DensePartition::kAbsent);
      std::vector<uint32_t>* bucket;
      if (bucket_gen_[v] != bggen_) {
        bucket_gen_[v] = bggen_;
        if (used == bucket_pool_.size()) bucket_pool_.emplace_back();
        bucket_of_[v] = static_cast<uint32_t>(used);
        bucket_pool_[used].clear();
        touched_.push_back(v);
        ++used;
      }
      bucket = &bucket_pool_[bucket_of_[v]];
      bucket->push_back(i);
    }
    // Emit sub-clusters of size >= 2 in order of first member (touched_
    // records first-appearance order; members are ascending because the
    // cluster scan was ascending).
    for (uint32_t v : touched_) {
      const std::vector<uint32_t>& bucket = bucket_pool_[bucket_of_[v]];
      if (bucket.size() < 2) continue;
      out->flat.insert(out->flat.end(), bucket.begin(), bucket.end());
      out->offsets.push_back(static_cast<uint32_t>(out->flat.size()));
    }
  }
}

bool DenseOps::StrippedRefines(const StrippedPartition& x,
                               const DensePartition& y) {
  for (std::size_t c = 0; c + 1 < x.offsets.size(); ++c) {
    uint32_t first = y.labels[x.flat[x.offsets[c]]];
    if (first == DensePartition::kAbsent) return false;
    for (uint32_t k = x.offsets[c] + 1; k < x.offsets[c + 1]; ++k) {
      uint32_t l = y.labels[x.flat[k]];
      if (l != first) return false;
    }
  }
  return true;
}

void DenseOps::Unstrip(const StrippedPartition& x, std::size_t n,
                       DensePartition* out) {
  out->labels.assign(n, DensePartition::kAbsent);
  // Mark clustered elements with their cluster id (offset by 1 so that 0
  // stays available), then assign canonical labels in one ascending pass.
  for (std::size_t c = 0; c + 1 < x.offsets.size(); ++c) {
    for (uint32_t k = x.offsets[c]; k < x.offsets[c + 1]; ++k) {
      out->labels[x.flat[k]] = static_cast<uint32_t>(c);
    }
  }
  // Canonical renumber: clusters get a label at their first element;
  // singletons get fresh labels.
  if (relabel_.size() < x.num_clusters()) relabel_.resize(x.num_clusters());
  std::vector<bool> seen(x.num_clusters(), false);
  uint32_t next = 0;
  for (std::size_t i = 0; i < n; ++i) {
    uint32_t c = out->labels[i];
    if (c == DensePartition::kAbsent) {
      out->labels[i] = next++;  // singleton block
    } else if (!seen[c]) {
      seen[c] = true;
      relabel_[c] = next++;
      out->labels[i] = relabel_[c];
    } else {
      out->labels[i] = relabel_[c];
    }
  }
  out->num_blocks = next;
  out->present = static_cast<uint32_t>(n);
}

}  // namespace psem
