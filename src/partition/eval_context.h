/// @file eval_context.h
/// @brief Memoized bulk evaluation of lattice expressions over partition
/// interpretations, on the dense kernel layer.

// EvalContext is the data-path counterpart of the hash-consed ExprArena:
// the arena makes structurally equal subexpressions share one ExprId, and
// the context makes them share one computed partition. Evaluation runs
// bottom-up over the DAG (children of a node always have smaller ExprIds
// than the node — the arena appends nodes after their operands), on dense
// partitions over one interned PartitionUniverse, with results memoized
// per (ExprId, interpretation epoch):
//
//  * the interpretation's epoch is bumped by every DefineAttribute, so a
//    mutated interpretation can never be served a stale partition — the
//    first evaluation after a mutation flushes the memo;
//  * the memo is LRU-bounded (default 4096 entries); values are
//    shared_ptrs, so an eviction never invalidates a value an in-flight
//    evaluation still holds;
//  * hit/miss/eviction/flush counters are exposed AlgStats-style through
//    stats().
//
// Bulk evaluation (EvalAll) groups the needed subexpressions into DAG
// levels and evaluates each level as one ThreadPool::ParallelFor wave —
// the barrier between waves guarantees every operand is ready, and each
// band owns a private DenseOps so the kernels run allocation- and
// lock-free. All entry points honor an ExecContext: on deadline, cancel,
// or solver-node budget exhaustion they return the non-OK Status, keep
// the partial stats, and leave the context reusable (completed waves stay
// memoized; nothing half-written is published).
//
// Thread-compatibility: an EvalContext may be driven by one thread at a
// time (PartitionInterpretation wraps its private context in a mutex for
// const-concurrent Eval/Satisfies).

#ifndef PSEM_PARTITION_EVAL_CONTEXT_H_
#define PSEM_PARTITION_EVAL_CONTEXT_H_

#include <cstdint>
#include <list>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "lattice/expr.h"
#include "partition/dense.h"
#include "partition/interpretation.h"
#include "util/exec_context.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace psem {

/// Counters for the memoized evaluator (AlgStats-style; cumulative until
/// ResetStats).
struct PartitionEvalStats {
  uint64_t memo_hits = 0;        ///< subexpressions served from the memo.
  uint64_t memo_misses = 0;      ///< subexpressions actually computed.
  uint64_t memo_evictions = 0;   ///< LRU evictions.
  uint64_t epoch_flushes = 0;    ///< full flushes due to epoch/binding change.
  uint64_t kernel_ops = 0;       ///< dense Product/Sum kernel invocations.
  uint64_t exprs_evaluated = 0;  ///< root expressions returned to callers.
  uint64_t parallel_waves = 0;   ///< ParallelFor level-waves executed.
};

/// Memoized evaluator. Bind-per-call: every entry point takes the arena
/// and interpretation; the context detects binding or epoch changes and
/// flushes itself. Values returned to callers are sparse canonical
/// Partitions (bit-identical to PartitionInterpretation::EvalSparse).
class EvalContext {
 public:
  static constexpr std::size_t kDefaultMemoCapacity = 4096;

  explicit EvalContext(std::size_t memo_capacity = kDefaultMemoCapacity)
      : capacity_(memo_capacity == 0 ? 1 : memo_capacity) {}

  /// Meaning of `e` under `interp` (Section 3.1 structural induction),
  /// memoized. Identical results to PartitionInterpretation::EvalSparse.
  Result<Partition> Eval(const ExprArena& arena,
                         const PartitionInterpretation& interp, ExprId e,
                         const ExecContext& exec = ExecContext::Unbounded());

  /// I |= pd (Definition 3), on dense values without sparsifying.
  Result<bool> Satisfies(const ExprArena& arena,
                         const PartitionInterpretation& interp, const Pd& pd,
                         const ExecContext& exec = ExecContext::Unbounded());

  /// Evaluates every expression of `exprs` over one interpretation.
  /// With a pool, shared subexpressions are computed once and each DAG
  /// level runs as one parallel wave; pass nullptr for the serial path.
  /// On a non-OK Status the output vector is empty, stats are partial,
  /// and the context remains usable.
  Result<std::vector<Partition>> EvalAll(
      const ExprArena& arena, const PartitionInterpretation& interp,
      std::span<const ExprId> exprs, ThreadPool* pool = nullptr,
      const ExecContext& exec = ExecContext::Unbounded());

  /// Bulk Satisfies over one interpretation (the pd_consistency /
  /// discovery shape): verdict per Pd, sharing subexpression work.
  Result<std::vector<bool>> SatisfiesAll(
      const ExprArena& arena, const PartitionInterpretation& interp,
      std::span<const Pd> pds, ThreadPool* pool = nullptr,
      const ExecContext& exec = ExecContext::Unbounded());

  const PartitionEvalStats& stats() const { return stats_; }
  void ResetStats() { stats_ = PartitionEvalStats{}; }

  /// Drops every memoized value (keeps stats and capacity).
  void Flush();

  std::size_t memo_size() const { return memo_.size(); }
  std::size_t memo_capacity() const { return capacity_; }

 private:
  using DenseRef = std::shared_ptr<const DensePartition>;

  struct MemoEntry {
    DenseRef value;
    std::list<ExprId>::iterator lru;
  };

  /// Re-binds to (arena, interp) if either changed or the epoch moved;
  /// flushing the memo and rebuilding the universe when it did.
  void EnsureBound(const ExprArena& arena,
                   const PartitionInterpretation& interp);

  /// Dense atomic partition of an attribute leaf (cached per AttrId).
  Result<DenseRef> AtomicDense(const ExprArena& arena,
                               const PartitionInterpretation& interp,
                               ExprId leaf);

  /// Memo lookup; touches LRU on hit and counts the hit.
  DenseRef Lookup(ExprId e);

  /// Inserts a computed value (counts the miss; evicts LRU on overflow).
  void Insert(ExprId e, DenseRef value);

  /// The workhorse: evaluates `e` bottom-up with memoization, serially.
  Result<DenseRef> EvalDense(const ExprArena& arena,
                             const PartitionInterpretation& interp, ExprId e,
                             const ExecContext& exec);

  /// Wave-parallel evaluation of many roots; results per root.
  Result<std::vector<DenseRef>> EvalDenseBulk(
      const ExprArena& arena, const PartitionInterpretation& interp,
      std::span<const ExprId> roots, ThreadPool* pool,
      const ExecContext& exec);

  // Binding identity: pointers + epoch. A dangling pointer is never
  // dereferenced — it only ever participates in the equality test, and a
  // reused address with a different epoch still flushes.
  const void* bound_arena_ = nullptr;
  const void* bound_interp_ = nullptr;
  uint64_t bound_epoch_ = 0;

  PartitionUniverse universe_;
  std::unordered_map<AttrId, DenseRef> atomic_dense_;

  std::size_t capacity_;
  std::unordered_map<ExprId, MemoEntry> memo_;
  std::list<ExprId> lru_;  // front = most recent

  DenseOps ops_;  // serial-path scratch
  PartitionEvalStats stats_;
};

/// Evaluates `e` over an explicit dense assignment attr id -> partition
/// (all over one universe), with per-call subexpression sharing but no
/// cross-call memo — the model_finder DFS shape, where the assignment
/// changes at every step. `attr_value[a]` may be nullptr for unassigned
/// attributes; evaluating a leaf for one returns kNotFound.
Result<DensePartition> EvalDenseAssignment(
    const ExprArena& arena, ExprId e,
    std::span<const DensePartition* const> attr_value, DenseOps* ops);

}  // namespace psem

#endif  // PSEM_PARTITION_EVAL_CONTEXT_H_
