/// @file canonical.h
/// @brief Canonical constructions I(r) and R(I) of Section 4.1.

// The canonical constructions of Section 4.1: I(r), the partition
// interpretation induced by a relation (Definition 5), and R(I), the
// relation induced by an interpretation (Definition 6). These are the
// bridges across which PD satisfaction is transferred to relations
// (Definition 7) and across which Theorems 3, 6, 7 and Lemma 8.1 move
// between the relational and the algebraic worlds.

#ifndef PSEM_PARTITION_CANONICAL_H_
#define PSEM_PARTITION_CANONICAL_H_

#include <string>

#include "lattice/expr.h"
#include "partition/interpretation.h"
#include "relational/relation.h"
#include "util/status.h"

namespace psem {

/// I(r) (Definition 5): population = tuple indices of r (for every scheme
/// attribute — so EAP holds by construction); f_A(x) = the set of indices
/// of tuples with x in the A column; pi_A = the partition induced by f_A.
/// Requires r nonempty (populations must be nonempty).
Result<PartitionInterpretation> CanonicalInterpretation(
    const Database& db, const Relation& r);

/// R(I) (Definition 6): one tuple t_i per element i of the union of
/// populations; t_i[A] = x if i is in f_A(x), and a fresh symbol i_A
/// unique to (i, A) when i is outside p_A. The scheme covers every
/// attribute the interpretation defines (in definition order).
Result<Relation> CanonicalRelation(const PartitionInterpretation& interp,
                                   Database* db,
                                   const std::string& name = "R_of_I");

/// The EAP extension of Theorem 7's proof: over the union p of all
/// populations, each atomic partition is padded with singletons
/// {x} for x outside its own population. The map pi -> pi + singletons is
/// a lattice homomorphism L(I) -> L(I'), so the extension satisfies every
/// PD the original does (tests check this on random interpretations);
/// fresh symbols name the singleton blocks.
Result<PartitionInterpretation> EapExtension(
    const PartitionInterpretation& interp);

/// r |= pd per Definition 7: I(r) |= pd. Empty relations satisfy every PD
/// vacuously (I(r) is undefined for them; every expression means the empty
/// partition).
Result<bool> RelationSatisfiesPd(const Database& db, const Relation& r,
                                 const ExprArena& arena, const Pd& pd);

// --- direct characterizations (Section 4.1 (I), (II), (III)) --------------
// These bypass I(r) and implement the tuple-level conditions verbatim; the
// property tests check they agree with RelationSatisfiesPd.

/// (I): r |= C = A * B iff tuples agree on C exactly when they agree on
/// both A and B.
Result<bool> SatisfiesProductPdDirect(const Database& db, const Relation& r,
                                      const std::string& c,
                                      const std::string& a,
                                      const std::string& b);

/// (II): r |= C = A + B iff tuples agree on C exactly when they are
/// connected by a chain of tuples consecutively agreeing on A or on B.
Result<bool> SatisfiesSumPdDirect(const Database& db, const Relation& r,
                                  const std::string& c, const std::string& a,
                                  const std::string& b);

/// The non-first-order inequality of Theorem 4: r |= C <= A + B iff
/// agreement on C implies chain-connectivity through A/B.
Result<bool> SatisfiesSumUpperPdDirect(const Database& db, const Relation& r,
                                       const std::string& c,
                                       const std::string& a,
                                       const std::string& b);

}  // namespace psem

#endif  // PSEM_PARTITION_CANONICAL_H_
