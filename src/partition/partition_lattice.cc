#include "partition/partition_lattice.h"

#include <unordered_map>
#include <utility>

#include "partition/dense.h"

namespace psem {

std::vector<LatticeElem> PartitionClosure::AssignmentFor(
    const ExprArena& arena) const {
  std::vector<LatticeElem> assignment(arena.num_attrs(),
                                      FiniteLattice::kNoElem);
  for (std::size_t i = 0; i < atom_name.size(); ++i) {
    auto id = arena.attr_names().Lookup(atom_name[i]);
    if (id.has_value()) assignment[*id] = atom_elem[i];
  }
  return assignment;
}

Result<PartitionClosure> ClosePartitions(std::vector<Partition> atoms,
                                         std::vector<std::string> names,
                                         std::size_t max_elements) {
  if (atoms.empty()) {
    return Status::InvalidArgument("need at least one generator partition");
  }
  if (names.size() != atoms.size()) {
    return Status::InvalidArgument("names must parallel atoms");
  }
  // Work in the dense representation over the union of the generators'
  // populations: the closure loop and the meet/join tables are both
  // all-pairs sweeps, exactly the shape the kernels are built for.
  std::vector<Elem> pop;
  for (const Partition& a : atoms) {
    pop.insert(pop.end(), a.population().begin(), a.population().end());
  }
  PartitionUniverse universe(std::move(pop));
  DenseOps ops;

  std::vector<DensePartition> elements;
  std::unordered_map<DensePartition, LatticeElem, DensePartitionHash> index;
  auto add = [&](const DensePartition& p) -> LatticeElem {
    auto it = index.find(p);
    if (it != index.end()) return it->second;
    LatticeElem id = static_cast<LatticeElem>(elements.size());
    elements.push_back(p);
    index.emplace(p, id);
    return id;
  };
  std::vector<LatticeElem> atom_elem;
  atom_elem.reserve(atoms.size());
  for (const Partition& a : atoms) atom_elem.push_back(add(universe.Densify(a)));

  // Closure: repeatedly combine all pairs until stable.
  DensePartition prod, sum;
  for (std::size_t frontier = 0; frontier < elements.size();) {
    std::size_t snapshot = elements.size();
    for (std::size_t i = 0; i < snapshot; ++i) {
      for (std::size_t j = (i < frontier ? frontier : i); j < snapshot; ++j) {
        ops.Product(elements[i], elements[j], &prod);
        add(prod);
        ops.Sum(elements[i], elements[j], &sum);
        add(sum);
        if (elements.size() > max_elements) {
          return Status::ResourceExhausted(
              "partition closure exceeds " + std::to_string(max_elements) +
              " elements");
        }
      }
    }
    frontier = snapshot;
    if (elements.size() == snapshot) break;
  }

  const std::size_t n = elements.size();
  std::vector<std::vector<LatticeElem>> meet(n, std::vector<LatticeElem>(n));
  std::vector<std::vector<LatticeElem>> join(n, std::vector<LatticeElem>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      ops.Product(elements[i], elements[j], &prod);
      ops.Sum(elements[i], elements[j], &sum);
      LatticeElem m = index.at(prod);
      LatticeElem s = index.at(sum);
      meet[i][j] = meet[j][i] = m;
      join[i][j] = join[j][i] = s;
    }
  }
  std::vector<std::string> elem_names(n);
  for (std::size_t i = 0; i < atom_elem.size(); ++i) {
    elem_names[atom_elem[i]] = names[i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (elem_names[i].empty()) elem_names[i] = "p" + std::to_string(i);
  }
  std::vector<Partition> sparse_elements;
  sparse_elements.reserve(n);
  for (const DensePartition& d : elements) {
    sparse_elements.push_back(universe.Sparsify(d));
  }
  PartitionClosure out{
      FiniteLattice(std::move(meet), std::move(join), std::move(elem_names)),
      std::move(sparse_elements), std::move(atom_elem), std::move(names)};
  return out;
}

Result<PartitionClosure> InterpretationLattice(
    const PartitionInterpretation& interp, std::size_t max_elements) {
  std::vector<Partition> atoms;
  std::vector<std::string> names;
  for (const std::string& a : interp.attribute_names()) {
    PSEM_ASSIGN_OR_RETURN(Partition p, interp.AtomicPartition(a));
    atoms.push_back(std::move(p));
    names.push_back(a);
  }
  return ClosePartitions(std::move(atoms), std::move(names), max_elements);
}

namespace {

// Enumerates all partitions of {0..k-1} via restricted growth strings. A
// restricted growth string IS the canonical first-occurrence labeling, so
// each one is a DensePartition verbatim.
void EnumerateRgs(std::size_t k, std::vector<uint32_t>* rgs, uint32_t max_used,
                  std::vector<DensePartition>* out) {
  std::size_t i = rgs->size();
  if (i == k) {
    out->push_back(DensePartition{*rgs, max_used + 1,
                                  static_cast<uint32_t>(k)});
    return;
  }
  for (uint32_t label = 0; label <= max_used + 1 && label < k; ++label) {
    rgs->push_back(label);
    EnumerateRgs(k, rgs, std::max(max_used, label), out);
    rgs->pop_back();
  }
}

}  // namespace

FullPartitionLatticeResult FullPartitionLattice(std::size_t k) {
  PartitionUniverse universe = PartitionUniverse::Dense(k);
  std::vector<DensePartition> elements;
  if (k == 0) {
    elements.push_back(DensePartition{});
  } else {
    std::vector<uint32_t> rgs{0};
    EnumerateRgs(k, &rgs, 0, &elements);
  }
  std::unordered_map<DensePartition, LatticeElem, DensePartitionHash> index;
  for (std::size_t i = 0; i < elements.size(); ++i) {
    index.emplace(elements[i], static_cast<LatticeElem>(i));
  }
  const std::size_t n = elements.size();
  std::vector<std::vector<LatticeElem>> meet(n, std::vector<LatticeElem>(n));
  std::vector<std::vector<LatticeElem>> join(n, std::vector<LatticeElem>(n));
  DenseOps ops;
  DensePartition prod, sum;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      ops.Product(elements[i], elements[j], &prod);
      ops.Sum(elements[i], elements[j], &sum);
      LatticeElem m = index.at(prod);
      LatticeElem s = index.at(sum);
      meet[i][j] = meet[j][i] = m;
      join[i][j] = join[j][i] = s;
    }
  }
  std::vector<Partition> sparse_elements;
  sparse_elements.reserve(n);
  for (const DensePartition& d : elements) {
    sparse_elements.push_back(universe.Sparsify(d));
  }
  return FullPartitionLatticeResult{FiniteLattice(std::move(meet),
                                                  std::move(join)),
                                    std::move(sparse_elements),
                                    std::move(elements)};
}

}  // namespace psem
