#include "partition/partition_lattice.h"

#include <unordered_map>

namespace psem {

std::vector<LatticeElem> PartitionClosure::AssignmentFor(
    const ExprArena& arena) const {
  std::vector<LatticeElem> assignment(arena.num_attrs(),
                                      FiniteLattice::kNoElem);
  for (std::size_t i = 0; i < atom_name.size(); ++i) {
    auto id = arena.attr_names().Lookup(atom_name[i]);
    if (id.has_value()) assignment[*id] = atom_elem[i];
  }
  return assignment;
}

Result<PartitionClosure> ClosePartitions(std::vector<Partition> atoms,
                                         std::vector<std::string> names,
                                         std::size_t max_elements) {
  if (atoms.empty()) {
    return Status::InvalidArgument("need at least one generator partition");
  }
  if (names.size() != atoms.size()) {
    return Status::InvalidArgument("names must parallel atoms");
  }
  std::vector<Partition> elements;
  std::unordered_map<Partition, LatticeElem, PartitionHash> index;
  auto add = [&](const Partition& p) -> LatticeElem {
    auto it = index.find(p);
    if (it != index.end()) return it->second;
    LatticeElem id = static_cast<LatticeElem>(elements.size());
    elements.push_back(p);
    index.emplace(p, id);
    return id;
  };
  std::vector<LatticeElem> atom_elem;
  atom_elem.reserve(atoms.size());
  for (const Partition& a : atoms) atom_elem.push_back(add(a));

  // Closure: repeatedly combine all pairs until stable.
  for (std::size_t frontier = 0; frontier < elements.size();) {
    std::size_t snapshot = elements.size();
    for (std::size_t i = 0; i < snapshot; ++i) {
      for (std::size_t j = (i < frontier ? frontier : i); j < snapshot; ++j) {
        add(Partition::Product(elements[i], elements[j]));
        add(Partition::Sum(elements[i], elements[j]));
        if (elements.size() > max_elements) {
          return Status::ResourceExhausted(
              "partition closure exceeds " + std::to_string(max_elements) +
              " elements");
        }
      }
    }
    frontier = snapshot;
    if (elements.size() == snapshot) break;
  }

  const std::size_t n = elements.size();
  std::vector<std::vector<LatticeElem>> meet(n, std::vector<LatticeElem>(n));
  std::vector<std::vector<LatticeElem>> join(n, std::vector<LatticeElem>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      LatticeElem m = index.at(Partition::Product(elements[i], elements[j]));
      LatticeElem s = index.at(Partition::Sum(elements[i], elements[j]));
      meet[i][j] = meet[j][i] = m;
      join[i][j] = join[j][i] = s;
    }
  }
  std::vector<std::string> elem_names(n);
  for (std::size_t i = 0; i < atom_elem.size(); ++i) {
    elem_names[atom_elem[i]] = names[i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (elem_names[i].empty()) elem_names[i] = "p" + std::to_string(i);
  }
  PartitionClosure out{
      FiniteLattice(std::move(meet), std::move(join), std::move(elem_names)),
      std::move(elements), std::move(atom_elem), std::move(names)};
  return out;
}

Result<PartitionClosure> InterpretationLattice(
    const PartitionInterpretation& interp, std::size_t max_elements) {
  std::vector<Partition> atoms;
  std::vector<std::string> names;
  for (const std::string& a : interp.attribute_names()) {
    PSEM_ASSIGN_OR_RETURN(Partition p, interp.AtomicPartition(a));
    atoms.push_back(std::move(p));
    names.push_back(a);
  }
  return ClosePartitions(std::move(atoms), std::move(names), max_elements);
}

namespace {

// Enumerates all partitions of {0..k-1} via restricted growth strings.
void EnumerateRgs(std::size_t k, std::vector<uint32_t>* rgs, uint32_t max_used,
                  std::vector<Partition>* out,
                  const std::vector<Elem>& population) {
  std::size_t i = rgs->size();
  if (i == k) {
    out->push_back(Partition::FromLabels(population, *rgs));
    return;
  }
  for (uint32_t label = 0; label <= max_used + 1 && label < k; ++label) {
    rgs->push_back(label);
    EnumerateRgs(k, rgs, std::max(max_used, label), out, population);
    rgs->pop_back();
  }
}

}  // namespace

FullPartitionLatticeResult FullPartitionLattice(std::size_t k) {
  std::vector<Elem> population(k);
  for (std::size_t i = 0; i < k; ++i) population[i] = static_cast<Elem>(i);
  std::vector<Partition> elements;
  if (k == 0) {
    elements.push_back(Partition());
  } else {
    std::vector<uint32_t> rgs{0};
    EnumerateRgs(k, &rgs, 0, &elements, population);
  }
  std::unordered_map<Partition, LatticeElem, PartitionHash> index;
  for (std::size_t i = 0; i < elements.size(); ++i) {
    index.emplace(elements[i], static_cast<LatticeElem>(i));
  }
  const std::size_t n = elements.size();
  std::vector<std::vector<LatticeElem>> meet(n, std::vector<LatticeElem>(n));
  std::vector<std::vector<LatticeElem>> join(n, std::vector<LatticeElem>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      LatticeElem m = index.at(Partition::Product(elements[i], elements[j]));
      LatticeElem s = index.at(Partition::Sum(elements[i], elements[j]));
      meet[i][j] = meet[j][i] = m;
      join[i][j] = join[j][i] = s;
    }
  }
  return FullPartitionLatticeResult{
      FiniteLattice(std::move(meet), std::move(join)), std::move(elements)};
}

}  // namespace psem
