#include "partition/partition.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "util/union_find.h"

namespace psem {

void Partition::Canonicalize() {
  // Sort by element, then renumber labels by first occurrence.
  std::vector<std::size_t> order(elems_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return elems_[a] < elems_[b]; });
  std::vector<Elem> sorted_elems(elems_.size());
  std::vector<uint32_t> sorted_labels(elems_.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    sorted_elems[i] = elems_[order[i]];
    sorted_labels[i] = labels_[order[i]];
  }
  assert(std::adjacent_find(sorted_elems.begin(), sorted_elems.end()) ==
             sorted_elems.end() &&
         "duplicate elements in population");
  std::unordered_map<uint32_t, uint32_t> relabel;
  relabel.reserve(sorted_labels.size());
  uint32_t next = 0;
  for (auto& l : sorted_labels) {
    auto [it, inserted] = relabel.emplace(l, next);
    if (inserted) ++next;
    l = it->second;
  }
  elems_ = std::move(sorted_elems);
  labels_ = std::move(sorted_labels);
  num_blocks_ = next;
}

Partition Partition::FromBlocks(const std::vector<std::vector<Elem>>& blocks) {
  Partition p;
  uint32_t label = 0;
  for (const auto& block : blocks) {
    assert(!block.empty() && "blocks must be nonempty");
    for (Elem e : block) {
      p.elems_.push_back(e);
      p.labels_.push_back(label);
    }
    ++label;
  }
  p.Canonicalize();
  return p;
}

Partition Partition::Discrete(std::vector<Elem> population) {
  Partition p;
  p.elems_ = std::move(population);
  p.labels_.resize(p.elems_.size());
  for (uint32_t i = 0; i < p.labels_.size(); ++i) p.labels_[i] = i;
  p.Canonicalize();
  return p;
}

Partition Partition::OneBlock(std::vector<Elem> population) {
  Partition p;
  p.elems_ = std::move(population);
  p.labels_.assign(p.elems_.size(), 0);
  p.Canonicalize();
  return p;
}

Partition Partition::FromLabels(std::vector<Elem> elems,
                                const std::vector<uint32_t>& labels) {
  assert(elems.size() == labels.size());
  Partition p;
  p.elems_ = std::move(elems);
  p.labels_ = labels;
  p.Canonicalize();
  return p;
}

Partition Partition::Product(const Partition& a, const Partition& b) {
  // Merge-walk the two sorted populations; for common elements, the block
  // is the pair (label in a, label in b), renumbered canonically.
  Partition p;
  std::unordered_map<uint64_t, uint32_t> pair_label;
  std::size_t i = 0, j = 0;
  uint32_t next = 0;
  while (i < a.elems_.size() && j < b.elems_.size()) {
    if (a.elems_[i] < b.elems_[j]) {
      ++i;
    } else if (a.elems_[i] > b.elems_[j]) {
      ++j;
    } else {
      uint64_t key = (static_cast<uint64_t>(a.labels_[i]) << 32) | b.labels_[j];
      auto [it, inserted] = pair_label.emplace(key, next);
      if (inserted) ++next;
      p.elems_.push_back(a.elems_[i]);
      p.labels_.push_back(it->second);
      ++i;
      ++j;
    }
  }
  p.num_blocks_ = next;
  // Already sorted and canonically labeled (first-occurrence numbering in
  // element order).
  return p;
}

Partition Partition::Sum(const Partition& a, const Partition& b) {
  // Population union; union-find chains elements that share a block in
  // either operand (the chain condition of Section 3.1).
  std::vector<Elem> pop;
  pop.reserve(a.elems_.size() + b.elems_.size());
  std::merge(a.elems_.begin(), a.elems_.end(), b.elems_.begin(),
             b.elems_.end(), std::back_inserter(pop));
  pop.erase(std::unique(pop.begin(), pop.end()), pop.end());

  auto index_of = [&pop](Elem e) -> uint32_t {
    return static_cast<uint32_t>(
        std::lower_bound(pop.begin(), pop.end(), e) - pop.begin());
  };

  UnionFind uf(pop.size());
  auto chain = [&](const Partition& part) {
    // Union each element with its block's first element.
    std::unordered_map<uint32_t, uint32_t> first_of_block;
    first_of_block.reserve(part.num_blocks_);
    for (std::size_t k = 0; k < part.elems_.size(); ++k) {
      uint32_t idx = index_of(part.elems_[k]);
      auto [it, inserted] = first_of_block.emplace(part.labels_[k], idx);
      if (!inserted) uf.Union(it->second, idx);
    }
  };
  chain(a);
  chain(b);

  Partition p;
  p.elems_ = std::move(pop);
  std::vector<uint32_t> canon = uf.CanonicalLabels();
  p.labels_.assign(canon.begin(), canon.end());
  p.num_blocks_ = static_cast<uint32_t>(uf.num_sets());
  return p;
}

std::optional<uint32_t> Partition::BlockOf(Elem e) const {
  auto it = std::lower_bound(elems_.begin(), elems_.end(), e);
  if (it == elems_.end() || *it != e) return std::nullopt;
  return labels_[static_cast<std::size_t>(it - elems_.begin())];
}

std::vector<std::vector<Elem>> Partition::Blocks() const {
  std::vector<std::vector<Elem>> blocks(num_blocks_);
  for (std::size_t i = 0; i < elems_.size(); ++i) {
    blocks[labels_[i]].push_back(elems_[i]);
  }
  return blocks;
}

bool Partition::RefinesSamePopulation(const Partition& other) const {
  if (elems_ != other.elems_) return false;
  // Every block of *this must map into a single block of other.
  std::unordered_map<uint32_t, uint32_t> image;
  image.reserve(num_blocks_);
  for (std::size_t i = 0; i < elems_.size(); ++i) {
    auto [it, inserted] = image.emplace(labels_[i], other.labels_[i]);
    if (!inserted && it->second != other.labels_[i]) return false;
  }
  return true;
}

bool Partition::Leq(const Partition& other) const {
  return *this == Product(*this, other);
}

std::size_t Partition::Hash() const {
  std::size_t h = 0x9e3779b97f4a7c15ull;
  for (std::size_t i = 0; i < elems_.size(); ++i) {
    h ^= elems_[i] + 0x9e3779b9u + (h << 6) + (h >> 2);
    h ^= labels_[i] + 0x85ebca6bu + (h << 6) + (h >> 2);
  }
  return h;
}

std::string Partition::ToString() const {
  auto blocks = Blocks();
  std::string out = "{";
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    if (b > 0) out += " |";
    for (Elem e : blocks[b]) {
      out += " " + std::to_string(e);
    }
  }
  out += " }";
  return out;
}

}  // namespace psem
