#include "partition/eval_context.h"

#include <algorithm>
#include <set>
#include <unordered_set>
#include <utility>

namespace psem {

void EvalContext::Flush() {
  memo_.clear();
  lru_.clear();
  atomic_dense_.clear();
}

void EvalContext::EnsureBound(const ExprArena& arena,
                              const PartitionInterpretation& interp) {
  const void* a = static_cast<const void*>(&arena);
  const void* i = static_cast<const void*>(&interp);
  if (a == bound_arena_ && i == bound_interp_ &&
      interp.epoch() == bound_epoch_) {
    return;
  }
  if (bound_arena_ != nullptr) ++stats_.epoch_flushes;
  Flush();
  bound_arena_ = a;
  bound_interp_ = i;
  bound_epoch_ = interp.epoch();
  // Universe: union of every defined attribute's population. Attributes
  // mentioned by an expression but not defined fail at their leaf with
  // kNotFound, matching the sparse reference.
  std::vector<Elem> pop;
  for (const std::string& name : interp.attribute_names()) {
    const Partition* atomic = interp.FindAtomic(name);
    pop.insert(pop.end(), atomic->population().begin(),
               atomic->population().end());
  }
  universe_ = PartitionUniverse(std::move(pop));
}

Result<EvalContext::DenseRef> EvalContext::AtomicDense(
    const ExprArena& arena, const PartitionInterpretation& interp,
    ExprId leaf) {
  AttrId attr = arena.AttrOf(leaf);
  auto it = atomic_dense_.find(attr);
  if (it != atomic_dense_.end()) return it->second;
  const std::string& name = arena.AttrName(attr);
  const Partition* atomic = interp.FindAtomic(name);
  if (atomic == nullptr) {
    return Status::NotFound("attribute '" + name + "' not interpreted");
  }
  DenseRef dense =
      std::make_shared<const DensePartition>(universe_.Densify(*atomic));
  atomic_dense_.emplace(attr, dense);
  return dense;
}

EvalContext::DenseRef EvalContext::Lookup(ExprId e) {
  auto it = memo_.find(e);
  if (it == memo_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru);
  ++stats_.memo_hits;
  return it->second.value;
}

void EvalContext::Insert(ExprId e, DenseRef value) {
  ++stats_.memo_misses;
  auto it = memo_.find(e);
  if (it != memo_.end()) {  // possible after a concurrent-epoch re-entry
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    it->second.value = std::move(value);
    return;
  }
  while (memo_.size() >= capacity_) {
    memo_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.memo_evictions;
  }
  lru_.push_front(e);
  memo_.emplace(e, MemoEntry{std::move(value), lru_.begin()});
}

Result<EvalContext::DenseRef> EvalContext::EvalDense(
    const ExprArena& arena, const PartitionInterpretation& interp, ExprId e,
    const ExecContext& exec) {
  EnsureBound(arena, interp);
  // Collect the subexpressions that actually need computing, stopping the
  // descent at memo hits.
  std::vector<ExprId> needed;
  std::vector<ExprId> stack{e};
  std::unordered_map<ExprId, DenseRef> local;
  std::unordered_set<ExprId> visited;
  while (!stack.empty()) {
    ExprId id = stack.back();
    stack.pop_back();
    if (!visited.insert(id).second) continue;
    if (DenseRef hit = Lookup(id)) {
      local.emplace(id, std::move(hit));
      continue;
    }
    needed.push_back(id);
    if (!arena.IsAttr(id)) {
      stack.push_back(arena.LhsOf(id));
      stack.push_back(arena.RhsOf(id));
    }
  }
  // Hash-consing appends operands before operators, so ascending ExprId
  // order is a topological order of the DAG.
  std::sort(needed.begin(), needed.end());
  const bool governed = !exec.unbounded();
  uint64_t call_nodes = 0;
  for (ExprId id : needed) {
    if (governed) {
      PSEM_RETURN_IF_ERROR(exec.Check());
      PSEM_RETURN_IF_ERROR(exec.CheckSolverNodes(++call_nodes));
    }
    DenseRef val;
    if (arena.IsAttr(id)) {
      PSEM_ASSIGN_OR_RETURN(val, AtomicDense(arena, interp, id));
    } else {
      const DensePartition& l = *local.at(arena.LhsOf(id));
      const DensePartition& r = *local.at(arena.RhsOf(id));
      auto out = std::make_shared<DensePartition>();
      if (arena.KindOf(id) == ExprKind::kProduct) {
        ops_.Product(l, r, out.get());
      } else {
        ops_.Sum(l, r, out.get());
      }
      ++stats_.kernel_ops;
      val = std::move(out);
    }
    Insert(id, val);
    local.emplace(id, std::move(val));
  }
  return local.at(e);
}

Result<std::vector<EvalContext::DenseRef>> EvalContext::EvalDenseBulk(
    const ExprArena& arena, const PartitionInterpretation& interp,
    std::span<const ExprId> roots, ThreadPool* pool, const ExecContext& exec) {
  EnsureBound(arena, interp);
  // Phase 1 (serial): collect needed nodes across every root, resolve all
  // attribute leaves, and compute DAG levels for the operator nodes.
  std::vector<ExprId> needed;
  std::vector<ExprId> stack(roots.begin(), roots.end());
  std::unordered_map<ExprId, DenseRef> local;
  std::unordered_set<ExprId> visited;
  while (!stack.empty()) {
    ExprId id = stack.back();
    stack.pop_back();
    if (!visited.insert(id).second) continue;
    if (DenseRef hit = Lookup(id)) {
      local.emplace(id, std::move(hit));
      continue;
    }
    needed.push_back(id);
    if (!arena.IsAttr(id)) {
      stack.push_back(arena.LhsOf(id));
      stack.push_back(arena.RhsOf(id));
    }
  }
  std::sort(needed.begin(), needed.end());
  const bool governed = !exec.unbounded();
  uint64_t call_nodes = 0;
  std::unordered_map<ExprId, uint32_t> level;
  std::vector<std::vector<ExprId>> waves;
  for (ExprId id : needed) {
    if (arena.IsAttr(id)) {
      if (governed) {
        PSEM_RETURN_IF_ERROR(exec.Check());
        PSEM_RETURN_IF_ERROR(exec.CheckSolverNodes(++call_nodes));
      }
      PSEM_ASSIGN_OR_RETURN(DenseRef val, AtomicDense(arena, interp, id));
      Insert(id, val);
      local.emplace(id, std::move(val));
      continue;
    }
    auto level_of = [&](ExprId child) -> uint32_t {
      auto it = level.find(child);
      return it == level.end() ? 0u : it->second + 1;  // 0: leaf or memo hit
    };
    uint32_t lv = std::max(level_of(arena.LhsOf(id)), level_of(arena.RhsOf(id)));
    level.emplace(id, lv);
    if (waves.size() <= lv) waves.resize(lv + 1);
    waves[lv].push_back(id);
  }
  // Phase 2: evaluate one level per wave. Operands of a level-L node are
  // all published by the barrier of wave L-1 (or were resolved in phase
  // 1), so workers only read `local` and write disjoint slots.
  std::vector<std::unique_ptr<DenseOps>> band_ops;
  if (pool != nullptr) {
    band_ops.resize(pool->num_threads());
  }
  for (const std::vector<ExprId>& wave : waves) {
    if (wave.empty()) continue;
    if (governed) {
      PSEM_RETURN_IF_ERROR(exec.Check());
      call_nodes += wave.size();
      PSEM_RETURN_IF_ERROR(exec.CheckSolverNodes(call_nodes));
    }
    std::vector<DenseRef> slots(wave.size());
    auto eval_node = [&](DenseOps& ops, std::size_t i) {
      ExprId id = wave[i];
      const DensePartition& l = *local.at(arena.LhsOf(id));
      const DensePartition& r = *local.at(arena.RhsOf(id));
      auto out = std::make_shared<DensePartition>();
      if (arena.KindOf(id) == ExprKind::kProduct) {
        ops.Product(l, r, out.get());
      } else {
        ops.Sum(l, r, out.get());
      }
      slots[i] = std::move(out);
    };
    if (pool != nullptr && wave.size() > 1) {
      pool->ParallelFor(wave.size(), [&](std::size_t band, std::size_t begin,
                                         std::size_t end) {
        if (!band_ops[band]) band_ops[band] = std::make_unique<DenseOps>();
        for (std::size_t i = begin; i < end; ++i) {
          eval_node(*band_ops[band], i);
        }
      });
      ++stats_.parallel_waves;
    } else {
      for (std::size_t i = 0; i < wave.size(); ++i) eval_node(ops_, i);
    }
    stats_.kernel_ops += wave.size();
    // Publish the wave (serial): memo insert + make operands visible.
    for (std::size_t i = 0; i < wave.size(); ++i) {
      Insert(wave[i], slots[i]);
      local.emplace(wave[i], std::move(slots[i]));
    }
  }
  std::vector<DenseRef> out;
  out.reserve(roots.size());
  for (ExprId r : roots) out.push_back(local.at(r));
  return out;
}

Result<Partition> EvalContext::Eval(const ExprArena& arena,
                                    const PartitionInterpretation& interp,
                                    ExprId e, const ExecContext& exec) {
  PSEM_ASSIGN_OR_RETURN(DenseRef val, EvalDense(arena, interp, e, exec));
  ++stats_.exprs_evaluated;
  return universe_.Sparsify(*val);
}

Result<bool> EvalContext::Satisfies(const ExprArena& arena,
                                    const PartitionInterpretation& interp,
                                    const Pd& pd, const ExecContext& exec) {
  PSEM_ASSIGN_OR_RETURN(DenseRef l, EvalDense(arena, interp, pd.lhs, exec));
  PSEM_ASSIGN_OR_RETURN(DenseRef r, EvalDense(arena, interp, pd.rhs, exec));
  ++stats_.exprs_evaluated;
  if (pd.is_equation) return *l == *r;
  DensePartition prod;
  ops_.Product(*l, *r, &prod);
  ++stats_.kernel_ops;
  return *l == prod;
}

Result<std::vector<Partition>> EvalContext::EvalAll(
    const ExprArena& arena, const PartitionInterpretation& interp,
    std::span<const ExprId> exprs, ThreadPool* pool, const ExecContext& exec) {
  PSEM_ASSIGN_OR_RETURN(std::vector<DenseRef> vals,
                        EvalDenseBulk(arena, interp, exprs, pool, exec));
  std::vector<Partition> out;
  out.reserve(vals.size());
  for (const DenseRef& v : vals) out.push_back(universe_.Sparsify(*v));
  stats_.exprs_evaluated += exprs.size();
  return out;
}

Result<std::vector<bool>> EvalContext::SatisfiesAll(
    const ExprArena& arena, const PartitionInterpretation& interp,
    std::span<const Pd> pds, ThreadPool* pool, const ExecContext& exec) {
  std::vector<ExprId> roots;
  roots.reserve(2 * pds.size());
  for (const Pd& pd : pds) {
    roots.push_back(pd.lhs);
    roots.push_back(pd.rhs);
  }
  PSEM_ASSIGN_OR_RETURN(std::vector<DenseRef> vals,
                        EvalDenseBulk(arena, interp, roots, pool, exec));
  std::vector<bool> out(pds.size());
  DensePartition prod;
  for (std::size_t i = 0; i < pds.size(); ++i) {
    const DensePartition& l = *vals[2 * i];
    const DensePartition& r = *vals[2 * i + 1];
    if (pds[i].is_equation) {
      out[i] = (l == r);
    } else {
      ops_.Product(l, r, &prod);
      ++stats_.kernel_ops;
      out[i] = (l == prod);
    }
  }
  stats_.exprs_evaluated += pds.size();
  return out;
}

Result<DensePartition> EvalDenseAssignment(
    const ExprArena& arena, ExprId e,
    std::span<const DensePartition* const> attr_value, DenseOps* ops) {
  // Per-call sharing: evaluate each distinct subexpression once, in
  // ascending (topological) ExprId order.
  std::set<ExprId> seen;
  std::vector<ExprId> nodes;
  arena.CollectSubexprs(e, &seen, &nodes);
  std::sort(nodes.begin(), nodes.end());
  std::unordered_map<ExprId, DensePartition> vals;
  vals.reserve(nodes.size());
  for (ExprId id : nodes) {
    if (arena.IsAttr(id)) {
      AttrId a = arena.AttrOf(id);
      if (a >= attr_value.size() || attr_value[a] == nullptr) {
        return Status::NotFound("attribute '" + arena.AttrName(a) +
                                "' not assigned");
      }
      vals.emplace(id, *attr_value[a]);
      continue;
    }
    const DensePartition& l = vals.at(arena.LhsOf(id));
    const DensePartition& r = vals.at(arena.RhsOf(id));
    DensePartition out;
    if (arena.KindOf(id) == ExprKind::kProduct) {
      ops->Product(l, r, &out);
    } else {
      ops->Sum(l, r, &out);
    }
    vals.emplace(id, std::move(out));
  }
  return std::move(vals.at(e));
}

}  // namespace psem
