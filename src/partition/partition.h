/// @file partition.h
/// @brief Sparse set-theoretic partitions with product and sum (Section 3.1).

// Set-theoretic partitions over sparse populations (Section 3.1). A
// Partition is a family of nonempty disjoint blocks whose union is its
// population. The two operations of Definition 1's surrounding text are
// implemented exactly as in the paper:
//
//   product  pi * pi'  — blocks are the nonempty pairwise intersections;
//                        population is the intersection of populations
//                        (coarsest common refinement when populations agree);
//   sum      pi + pi'  — blocks are the chain-connected components of the
//                        union of the two block families; population is the
//                        union of populations (finest common generalization).
//
// Both operations are associative, commutative, and idempotent, and satisfy
// the absorption laws — the partitions over a fixed population form a
// lattice (Theorem 1). Property tests in tests/partition_test.cc check all
// of this on random inputs.

#ifndef PSEM_PARTITION_PARTITION_H_
#define PSEM_PARTITION_PARTITION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace psem {

/// An element of a population. Populations are arbitrary finite subsets of
/// the uint32 space.
using Elem = uint32_t;

/// A partition of a finite population. Canonical representation: elements
/// sorted ascending, block labels dense in [0, num_blocks) and numbered by
/// first occurrence, so two partitions are equal iff their representations
/// are identical.
class Partition {
 public:
  /// The empty partition of the empty population.
  Partition() = default;

  /// Builds from explicit blocks. Blocks must be nonempty and disjoint.
  static Partition FromBlocks(const std::vector<std::vector<Elem>>& blocks);

  /// The partition of `population` into singletons (the discrete
  /// partition, bottom of the partition lattice over that population).
  static Partition Discrete(std::vector<Elem> population);

  /// The one-block partition of a nonempty `population` (top of the
  /// lattice). Returns the empty partition if `population` is empty.
  static Partition OneBlock(std::vector<Elem> population);

  /// Builds from parallel element/label vectors (labels need not be
  /// canonical; they are renumbered).
  static Partition FromLabels(std::vector<Elem> elems,
                              const std::vector<uint32_t>& labels);

  // --- the two operations of Section 3.1 ----------------------------------

  /// pi * pi' : coarsest common refinement over the population
  /// intersection.
  static Partition Product(const Partition& a, const Partition& b);

  /// pi + pi' : finest common generalization over the population union
  /// (blocks chained through overlapping blocks of either operand).
  static Partition Sum(const Partition& a, const Partition& b);

  // --- queries --------------------------------------------------------------

  std::size_t population_size() const { return elems_.size(); }
  std::size_t num_blocks() const { return num_blocks_; }
  bool empty() const { return elems_.empty(); }

  /// Sorted population.
  const std::vector<Elem>& population() const { return elems_; }

  /// Canonical block label of each element, parallel to population().
  const std::vector<uint32_t>& labels() const { return labels_; }

  /// Block label of `e`, or nullopt if e is not in the population.
  std::optional<uint32_t> BlockOf(Elem e) const;

  /// Materializes the block family (each block sorted; blocks in label
  /// order).
  std::vector<std::vector<Elem>> Blocks() const;

  /// True iff the populations are equal and every block of *this is
  /// contained in a block of `other` — i.e. *this <= other in the
  /// partition lattice over a common population.
  bool RefinesSamePopulation(const Partition& other) const;

  /// The lattice order via the algebra (Theorem 2): *this <= other iff
  /// *this == Product(*this, other). Works across different populations
  /// (requires population containment).
  bool Leq(const Partition& other) const;

  bool operator==(const Partition& other) const {
    return elems_ == other.elems_ && labels_ == other.labels_;
  }

  std::size_t Hash() const;

  /// "{1 2 | 3} over {1 2 3}" style rendering.
  std::string ToString() const;

 private:
  void Canonicalize();

  std::vector<Elem> elems_;       // sorted ascending
  std::vector<uint32_t> labels_;  // parallel, canonical
  uint32_t num_blocks_ = 0;
};

/// Hash functor for unordered containers of Partition.
struct PartitionHash {
  std::size_t operator()(const Partition& p) const { return p.Hash(); }
};

}  // namespace psem

#endif  // PSEM_PARTITION_PARTITION_H_
