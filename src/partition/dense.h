/// @file dense.h
/// @brief Dense partition kernels: interned populations, flat label arrays,
/// PLI-style stripped partitions, and allocation-free product/sum.

// The data path behind interpretation evaluation, dependency discovery,
// the chase's row grouping, and the Lemma 12.1 repair scan. The sparse
// `Partition` API (partition/partition.h) is the paper-literal reference:
// populations are arbitrary uint32 subsets, every operation allocates and
// hashes. The kernels here trade that generality for speed the way
// FD-profiling systems (TANE-family position-list indexes) do:
//
//  * a PartitionUniverse interns a population ONCE and remaps elements to
//    dense indices [0, n);
//  * a DensePartition is a flat label array over those indices (elements
//    outside the partition's population carry kAbsent), canonically
//    numbered by first occurrence so equality is vector equality;
//  * DenseOps implements product via single-pass pair-encoding into a
//    generation-stamped open-addressing table (no std::map/unordered_map
//    in the loop, no allocation in the steady state), and sum via
//    union-find over dense indices with reusable scratch buffers;
//  * a StrippedPartition elides singleton blocks (the PLI/"stripped
//    partition" representation), which makes refinement checks — the
//    inner loop of FD discovery — O(clustered elements) instead of
//    O(population).
//
// Canonical-form contract: every kernel numbers result labels by first
// occurrence in dense-index order, which coincides with the sparse API's
// element-order numbering, so Sparsify(kernel(Densify(x), Densify(y)))
// is bit-identical to the sparse reference operation. The differential
// tests in tests/dense_partition_test.cc enforce this on random, empty,
// singleton, disjoint-population, and adversarial many-small-block
// inputs.
//
// Thread-compatibility: PartitionUniverse and DensePartition are
// immutable after construction and safe to share. DenseOps carries
// mutable scratch and must not be shared between threads — give each
// worker its own (they are cheap to construct; buffers grow to the high
//-water mark and stay).

#ifndef PSEM_PARTITION_DENSE_H_
#define PSEM_PARTITION_DENSE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "partition/partition.h"

namespace psem {

/// A partition over an interned universe: labels[i] is the block label of
/// universe index i (dense in [0, num_blocks), numbered by first
/// occurrence), or kAbsent when index i is outside this partition's
/// population. Two DensePartitions over the same universe are equal iff
/// they are the same partition of the same sub-population.
struct DensePartition {
  static constexpr uint32_t kAbsent = UINT32_MAX;

  std::vector<uint32_t> labels;  ///< size = universe size.
  uint32_t num_blocks = 0;       ///< distinct non-absent labels.
  uint32_t present = 0;          ///< non-absent entries (population size).

  std::size_t size() const { return labels.size(); }
  bool operator==(const DensePartition&) const = default;

  std::size_t Hash() const {
    std::size_t h = 0xcbf29ce484222325ull;
    for (uint32_t l : labels) {
      h ^= l;
      h *= 0x100000001b3ull;
    }
    return h;
  }
};

/// Hash functor for unordered containers of DensePartition.
struct DensePartitionHash {
  std::size_t operator()(const DensePartition& p) const { return p.Hash(); }
};

/// An interned population: sorted distinct elements, with an element ->
/// dense index mapping. Build it once per workload; every partition over
/// (a subset of) the population is then a flat array.
class PartitionUniverse {
 public:
  PartitionUniverse() = default;

  /// Interns `population` (sorted + deduplicated internally).
  explicit PartitionUniverse(std::vector<Elem> population);

  /// The identity universe {0, 1, ..., n-1} — the common case for row
  /// index populations (discovery, chase, canonical interpretations).
  /// IndexOf is the identity; no search is performed.
  static PartitionUniverse Dense(std::size_t n);

  std::size_t size() const { return elems_.size(); }
  bool empty() const { return elems_.empty(); }
  const std::vector<Elem>& population() const { return elems_; }
  Elem ElemOf(uint32_t index) const { return elems_[index]; }

  /// Dense index of `e`, or nullopt when e is not in the universe.
  /// O(1) for identity universes, O(log n) otherwise.
  std::optional<uint32_t> IndexOf(Elem e) const;

  /// Remaps a sparse partition into this universe. Precondition: p's
  /// population is a subset of the universe (checked with assert).
  DensePartition Densify(const Partition& p) const;

  /// Converts back to the sparse canonical representation. Inverse of
  /// Densify; also canonicalizes kernel outputs for the sparse API.
  Partition Sparsify(const DensePartition& d) const;

 private:
  std::vector<Elem> elems_;  // sorted ascending, distinct
  bool identity_ = true;     // elems_[i] == i for all i
};

/// PLI-style stripped partition: only blocks of size >= 2 ("clusters")
/// are materialized, as ranges of dense indices; singleton blocks are
/// implicit. `present` carries the underlying population size so block
/// counts remain recoverable:
///   num_blocks = present - flat.size() + num_clusters().
struct StrippedPartition {
  std::vector<uint32_t> flat;     ///< concatenated clusters (indices asc).
  std::vector<uint32_t> offsets;  ///< cluster c = flat[offsets[c]..offsets[c+1]).
  uint32_t present = 0;           ///< population size incl. singletons.

  std::size_t num_clusters() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  /// Elements that live in non-singleton blocks.
  std::size_t clustered() const { return flat.size(); }
  /// Blocks of the underlying (unstripped) partition.
  uint32_t num_blocks() const {
    return present - static_cast<uint32_t>(flat.size()) +
           static_cast<uint32_t>(num_clusters());
  }
};

/// The kernel object: owns every scratch buffer (pair table, union-find
/// arrays, per-block firsts, relabeling map) so that repeated calls do
/// no allocation once the buffers have grown to the workload's size.
/// NOT thread-safe; one DenseOps per thread.
class DenseOps {
 public:
  DenseOps() = default;

  // --- the two lattice operations ----------------------------------------

  /// out = a * b (coarsest common refinement; population intersection).
  /// Single pass, pair-encoding (label_a, label_b) -> fresh label through
  /// the open-addressing table. Requires a.size() == b.size().
  void Product(const DensePartition& a, const DensePartition& b,
               DensePartition* out);

  /// out = a + b (finest common generalization; population union).
  /// Union-find over dense indices, chaining each element to its block's
  /// first element in either operand. Requires a.size() == b.size().
  void Sum(const DensePartition& a, const DensePartition& b,
           DensePartition* out);

  // --- grouping / refinement builders ------------------------------------

  /// Partition of [0, values.size()) grouping equal values — the PLI
  /// builder for a relation column (values[i] = ValueId of row i).
  void GroupByValues(std::span<const uint32_t> values, DensePartition* out);

  /// out = a refined by value equality: the product of `a` with the
  /// partition grouping equal `value_of(i)`, fused into one pass. Indices
  /// absent in `a` stay absent. `value_of` is called once per present
  /// index, ascending.
  template <class ValueFn>
  void RefineBy(const DensePartition& a, ValueFn&& value_of,
                DensePartition* out) {
    const std::size_t n = a.labels.size();
    out->labels.assign(n, DensePartition::kAbsent);
    TableReset(a.present);
    uint32_t next = 0;
    for (std::size_t i = 0; i < n; ++i) {
      uint32_t la = a.labels[i];
      if (la == DensePartition::kAbsent) continue;
      uint64_t key = (static_cast<uint64_t>(la) << 32) |
                     static_cast<uint64_t>(value_of(i));
      out->labels[i] = TableIntern(key, &next);
    }
    out->num_blocks = next;
    out->present = a.present;
  }

  /// True iff every block of `x` is contained in a block of `y` over the
  /// SAME population (the dense analogue of
  /// Partition::RefinesSamePopulation). Indices must be present in both
  /// or absent in both; a presence mismatch returns false.
  bool Refines(const DensePartition& x, const DensePartition& y);

  // --- stripped (PLI) kernels ---------------------------------------------

  /// Strips a dense partition: clusters ordered by first index, indices
  /// ascending within each cluster.
  void Strip(const DensePartition& p, StrippedPartition* out);

  /// out = x * col in stripped form — the TANE-style PLI intersection.
  /// Precondition: `col` covers the full universe (col.present ==
  /// col.size()), so the product loses no elements; this is the shape of
  /// every same-relation workload (columns all partition the row set).
  void StrippedProduct(const StrippedPartition& x, const DensePartition& col,
                       StrippedPartition* out);

  /// True iff the (unstripped) partition behind `x` refines `y`: every
  /// cluster of `x` lies inside one block of `y` and every clustered
  /// element is present in `y`. Singleton blocks refine trivially —
  /// that's the whole point of stripping. O(clustered(x)).
  bool StrippedRefines(const StrippedPartition& x, const DensePartition& y);

  /// Reconstructs the dense form of a stripped partition over a universe
  /// of `n` fully-present elements (canonical labels). For tests and for
  /// consumers that need the unstripped result back.
  void Unstrip(const StrippedPartition& x, std::size_t n,
               DensePartition* out);

 private:
  // Generation-stamped open-addressing table: uint64 key -> uint32 label.
  // Reset is O(1) amortized (bump the generation); the arrays only grow.
  void TableReset(std::size_t max_entries);
  uint32_t TableIntern(uint64_t key, uint32_t* next);

  // Union-find scratch over [0, n) with trivial reset.
  void UfReset(std::size_t n);
  uint32_t UfFind(uint32_t x);
  void UfUnion(uint32_t x, uint32_t y);

  // Generation-stamped per-block "first index seen" map.
  void FirstsReset(std::size_t num_blocks);

  std::vector<uint64_t> tkey_;
  std::vector<uint32_t> tval_;
  std::vector<uint32_t> tgen_;
  uint32_t gen_ = 0;
  std::size_t tmask_ = 0;

  std::vector<uint32_t> parent_;
  std::vector<uint8_t> urank_;

  std::vector<uint32_t> first_idx_;
  std::vector<uint32_t> first_gen_;
  uint32_t fgen_ = 0;

  std::vector<uint32_t> relabel_;
  std::vector<uint32_t> relabel_gen_;
  uint32_t rgen_ = 0;

  // Strip scratch: per-block sizes, block -> cluster slot, write cursors.
  std::vector<uint32_t> ssize_;
  std::vector<uint32_t> sslot_;
  std::vector<uint32_t> scursor_;

  // StrippedProduct scratch: bucket heads per probe value + a reusable
  // pool of bucket vectors.
  std::vector<uint32_t> bucket_of_;
  std::vector<uint32_t> bucket_gen_;
  uint32_t bggen_ = 0;
  std::vector<std::vector<uint32_t>> bucket_pool_;
  std::vector<uint32_t> touched_;
};

}  // namespace psem

#endif  // PSEM_PARTITION_DENSE_H_
