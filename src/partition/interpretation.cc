#include "partition/interpretation.h"

#include <algorithm>

#include "partition/eval_context.h"

namespace psem {

PartitionInterpretation::PartitionInterpretation() = default;
PartitionInterpretation::~PartitionInterpretation() = default;

PartitionInterpretation::PartitionInterpretation(
    const PartitionInterpretation& other)
    : attrs_(other.attrs_),
      attr_order_(other.attr_order_),
      epoch_(other.epoch_) {}

PartitionInterpretation& PartitionInterpretation::operator=(
    const PartitionInterpretation& other) {
  if (this == &other) return *this;
  attrs_ = other.attrs_;
  attr_order_ = other.attr_order_;
  epoch_ = other.epoch_;
  std::lock_guard<std::mutex> lock(eval_mu_);
  eval_ctx_.reset();  // cold cache; EnsureBound would flush anyway
  return *this;
}

PartitionInterpretation::PartitionInterpretation(
    PartitionInterpretation&& other) noexcept
    : attrs_(std::move(other.attrs_)),
      attr_order_(std::move(other.attr_order_)),
      epoch_(other.epoch_) {
  // The context binds to the source's address; dropping it instead of
  // moving keeps the binding invariant trivially true.
}

PartitionInterpretation& PartitionInterpretation::operator=(
    PartitionInterpretation&& other) noexcept {
  if (this == &other) return *this;
  attrs_ = std::move(other.attrs_);
  attr_order_ = std::move(other.attr_order_);
  epoch_ = other.epoch_;
  std::lock_guard<std::mutex> lock(eval_mu_);
  eval_ctx_.reset();
  return *this;
}

Status PartitionInterpretation::DefineAttribute(
    const std::string& name, Partition atomic,
    const std::unordered_map<std::string, uint32_t>& naming) {
  if (atomic.empty()) {
    return Status::InvalidArgument("population of '" + name +
                                   "' must be nonempty (Definition 1)");
  }
  if (naming.size() != atomic.num_blocks()) {
    return Status::InvalidArgument(
        "naming function for '" + name + "' must name each of the " +
        std::to_string(atomic.num_blocks()) + " blocks exactly once (got " +
        std::to_string(naming.size()) + " symbols)");
  }
  std::vector<std::string> block_symbol(atomic.num_blocks());
  std::vector<bool> named(atomic.num_blocks(), false);
  for (const auto& [sym, label] : naming) {
    if (label >= atomic.num_blocks()) {
      return Status::OutOfRange("naming of '" + name +
                                "' references nonexistent block " +
                                std::to_string(label));
    }
    if (named[label]) {
      return Status::InvalidArgument("two symbols name block " +
                                     std::to_string(label) + " of '" + name +
                                     "' (f_A must be injective on blocks)");
    }
    named[label] = true;
    block_symbol[label] = sym;
  }
  if (!attrs_.count(name)) attr_order_.push_back(name);
  attrs_[name] = AttrInterp{std::move(atomic), naming, std::move(block_symbol)};
  ++epoch_;  // invalidates every memoized evaluation of this interpretation
  return Status::OK();
}

Result<Partition> PartitionInterpretation::AtomicPartition(
    const std::string& name) const {
  const AttrInterp* a = FindAttr(name);
  if (a == nullptr) {
    return Status::NotFound("attribute '" + name + "' not interpreted");
  }
  return a->atomic;
}

Result<std::vector<Elem>> PartitionInterpretation::NamedBlock(
    const std::string& attr, const std::string& symbol) const {
  const AttrInterp* a = FindAttr(attr);
  if (a == nullptr) {
    return Status::NotFound("attribute '" + attr + "' not interpreted");
  }
  auto it = a->naming.find(symbol);
  if (it == a->naming.end()) return std::vector<Elem>{};  // f_A(x) = empty
  auto blocks = a->atomic.Blocks();
  return blocks[it->second];
}

Result<std::string> PartitionInterpretation::SymbolOfBlock(
    const std::string& attr, uint32_t label) const {
  const AttrInterp* a = FindAttr(attr);
  if (a == nullptr) {
    return Status::NotFound("attribute '" + attr + "' not interpreted");
  }
  if (label >= a->block_symbol.size()) {
    return Status::OutOfRange("no block " + std::to_string(label) + " in '" +
                              attr + "'");
  }
  return a->block_symbol[label];
}

Result<Partition> PartitionInterpretation::EvalSparse(const ExprArena& arena,
                                                      ExprId e) const {
  switch (arena.KindOf(e)) {
    case ExprKind::kAttr: {
      const std::string& name = arena.AttrName(arena.AttrOf(e));
      const AttrInterp* a = FindAttr(name);
      if (a == nullptr) {
        return Status::NotFound("attribute '" + name + "' not interpreted");
      }
      return a->atomic;
    }
    case ExprKind::kProduct: {
      PSEM_ASSIGN_OR_RETURN(Partition l, EvalSparse(arena, arena.LhsOf(e)));
      PSEM_ASSIGN_OR_RETURN(Partition r, EvalSparse(arena, arena.RhsOf(e)));
      return Partition::Product(l, r);
    }
    case ExprKind::kSum: {
      PSEM_ASSIGN_OR_RETURN(Partition l, EvalSparse(arena, arena.LhsOf(e)));
      PSEM_ASSIGN_OR_RETURN(Partition r, EvalSparse(arena, arena.RhsOf(e)));
      return Partition::Sum(l, r);
    }
  }
  return Status::Internal("bad expression kind");
}

Result<Partition> PartitionInterpretation::Eval(const ExprArena& arena,
                                                ExprId e) const {
  std::lock_guard<std::mutex> lock(eval_mu_);
  if (!eval_ctx_) eval_ctx_ = std::make_unique<EvalContext>();
  return eval_ctx_->Eval(arena, *this, e);
}

Result<bool> PartitionInterpretation::Satisfies(const ExprArena& arena,
                                                const Pd& pd) const {
  std::lock_guard<std::mutex> lock(eval_mu_);
  if (!eval_ctx_) eval_ctx_ = std::make_unique<EvalContext>();
  return eval_ctx_->Satisfies(arena, *this, pd);
}

Result<std::vector<Elem>> PartitionInterpretation::TupleMeaning(
    const Database& db, const Relation& r, const Tuple& t) const {
  std::vector<Elem> meaning;
  bool first = true;
  for (std::size_t c = 0; c < r.arity(); ++c) {
    const std::string& attr = db.universe().NameOf(r.schema().attrs[c]);
    const std::string& sym = db.symbols().NameOf(t[c]);
    PSEM_ASSIGN_OR_RETURN(std::vector<Elem> block, NamedBlock(attr, sym));
    std::sort(block.begin(), block.end());
    if (first) {
      meaning = std::move(block);
      first = false;
    } else {
      std::vector<Elem> inter;
      std::set_intersection(meaning.begin(), meaning.end(), block.begin(),
                            block.end(), std::back_inserter(inter));
      meaning = std::move(inter);
    }
    if (meaning.empty()) return meaning;
  }
  return meaning;
}

Result<bool> PartitionInterpretation::SatisfiesDatabase(
    const Database& db) const {
  for (std::size_t ri = 0; ri < db.num_relations(); ++ri) {
    const Relation& r = db.relation(ri);
    for (const Tuple& t : r.rows()) {
      PSEM_ASSIGN_OR_RETURN(std::vector<Elem> m, TupleMeaning(db, r, t));
      if (m.empty()) return false;
    }
  }
  return true;
}

Result<bool> PartitionInterpretation::SatisfiesCad(const Database& db) const {
  for (const std::string& attr : attr_order_) {
    const AttrInterp& a = attrs_.at(attr);
    // Symbols appearing in d under this attribute.
    std::vector<std::string> in_d;
    auto attr_id = db.universe().Require(attr);
    if (attr_id.ok()) {
      for (ValueId v : db.ColumnValues(*attr_id)) {
        in_d.push_back(db.symbols().NameOf(v));
      }
    }
    std::sort(in_d.begin(), in_d.end());
    // Symbols with nonempty f_A.
    std::vector<std::string> named;
    named.reserve(a.naming.size());
    for (const auto& [sym, label] : a.naming) {
      (void)label;
      named.push_back(sym);
    }
    std::sort(named.begin(), named.end());
    if (in_d != named) return false;
  }
  return true;
}

bool PartitionInterpretation::SatisfiesEap() const {
  const std::vector<Elem>* pop = nullptr;
  for (const std::string& attr : attr_order_) {
    const auto& p = attrs_.at(attr).atomic.population();
    if (pop == nullptr) {
      pop = &p;
    } else if (*pop != p) {
      return false;
    }
  }
  return true;
}

std::string PartitionInterpretation::ToString() const {
  std::string out;
  for (const std::string& attr : attr_order_) {
    const AttrInterp& a = attrs_.at(attr);
    out += attr + ": " + a.atomic.ToString() + "  names:";
    auto blocks = a.atomic.Blocks();
    for (uint32_t b = 0; b < blocks.size(); ++b) {
      out += " " + a.block_symbol[b] + "->{";
      for (std::size_t i = 0; i < blocks[b].size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(blocks[b][i]);
      }
      out += "}";
    }
    out += "\n";
  }
  return out;
}

}  // namespace psem
