/// @file partition_lattice.h
/// @brief L(I): atomic partitions closed under * and + (Theorem 1).

// L(I): the closure of an interpretation's atomic partitions under product
// and sum, materialized as an explicit FiniteLattice (Theorem 1). Also
// provides the full partition lattice Pi_k of a k-element set, used both
// as a random-model source for property-testing Algorithm ALG (every
// lattice of partitions is a lattice with constants) and to realize the
// paper's figures.

#ifndef PSEM_PARTITION_PARTITION_LATTICE_H_
#define PSEM_PARTITION_PARTITION_LATTICE_H_

#include <string>
#include <vector>

#include "lattice/expr.h"
#include "lattice/finite_lattice.h"
#include "partition/dense.h"
#include "partition/interpretation.h"
#include "partition/partition.h"
#include "util/status.h"

namespace psem {

/// The result of closing a family of named partitions under * and +.
struct PartitionClosure {
  FiniteLattice lattice;              ///< meet/join tables of the closure.
  std::vector<Partition> elements;    ///< element index -> partition.
  std::vector<LatticeElem> atom_elem; ///< input index -> element index.
  std::vector<std::string> atom_name; ///< input index -> attribute name.

  /// Assignment vector usable with FiniteLattice::Eval for expressions
  /// whose attributes (by name) come from `arena`. Attributes without a
  /// generator get kNoElem.
  std::vector<LatticeElem> AssignmentFor(const ExprArena& arena) const;
};

/// Closes `atoms` under partition product and sum. `max_elements` bounds
/// the closure (it is finite but can be exponential); exceeding it yields
/// ResourceExhausted.
Result<PartitionClosure> ClosePartitions(std::vector<Partition> atoms,
                                         std::vector<std::string> names,
                                         std::size_t max_elements = 4096);

/// L(I): closure of the interpretation's atomic partitions (Theorem 1).
Result<PartitionClosure> InterpretationLattice(
    const PartitionInterpretation& interp, std::size_t max_elements = 4096);

/// The full lattice Pi_k of all partitions of {0,...,k-1}: meet = product,
/// join = sum. Sizes are the Bell numbers (1, 1, 2, 5, 15, 52, 203, ...);
/// k <= 8 is practical.
struct FullPartitionLatticeResult {
  FiniteLattice lattice;
  std::vector<Partition> elements;
  /// The same elements over the identity universe {0..k-1} — the
  /// candidate set the model_finder search consumes without converting.
  std::vector<DensePartition> dense_elements;
};
FullPartitionLatticeResult FullPartitionLattice(std::size_t k);

}  // namespace psem

#endif  // PSEM_PARTITION_PARTITION_LATTICE_H_
