/// @file interpretation.h
/// @brief Partition interpretations (Definition 1) and satisfaction.

// Partition interpretations (Definition 1): for each attribute A, a
// population p_A, an atomic partition pi_A of p_A, and a naming function
// f_A mapping each data symbol to a distinct block of pi_A or to the empty
// set. An interpretation gives meaning to partition expressions (Section
// 3.1), satisfies or falsifies databases (Definition 2) and PDs
// (Definition 3), and may additionally satisfy the CAD and EAP assumptions
// (Definition 4).

#ifndef PSEM_PARTITION_INTERPRETATION_H_
#define PSEM_PARTITION_INTERPRETATION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "lattice/expr.h"
#include "partition/partition.h"
#include "relational/relation.h"
#include "relational/universe.h"
#include "util/status.h"

namespace psem {

class EvalContext;

/// A partition interpretation over (a subset of) a Universe's attributes.
/// Attributes are addressed by name so that expressions from any ExprArena
/// can be evaluated against it.
///
/// Evaluation (Eval/Satisfies) runs on the dense kernel layer through a
/// private, lazily-created EvalContext (partition/eval_context.h): shared
/// subexpressions are memoized per (ExprId, epoch), and the epoch — bumped
/// by every DefineAttribute — guarantees no stale partition is ever served
/// after a mutation. EvalSparse is the paper-literal reference path the
/// differential tests pit the kernels against. Const access (including
/// Eval/Satisfies, which lock the embedded context) is thread-safe.
class PartitionInterpretation {
 public:
  PartitionInterpretation();
  ~PartitionInterpretation();
  PartitionInterpretation(const PartitionInterpretation& other);
  PartitionInterpretation& operator=(const PartitionInterpretation& other);
  PartitionInterpretation(PartitionInterpretation&& other) noexcept;
  PartitionInterpretation& operator=(PartitionInterpretation&& other) noexcept;

  /// Defines attribute `name`: its atomic partition and naming function.
  /// `naming` maps symbol names to block labels of `atomic`; it must be a
  /// bijection onto the blocks (Definition 1 condition 3). Symbols absent
  /// from the map are interpreted as the empty set.
  Status DefineAttribute(const std::string& name, Partition atomic,
                         const std::unordered_map<std::string, uint32_t>& naming);

  bool HasAttribute(const std::string& name) const {
    return attrs_.count(name) > 0;
  }

  /// The atomic partition pi_A.
  Result<Partition> AtomicPartition(const std::string& name) const;

  /// f_A(symbol): the block (as an element set), or an empty vector when
  /// f_A maps the symbol to the empty set.
  Result<std::vector<Elem>> NamedBlock(const std::string& attr,
                                       const std::string& symbol) const;

  /// The symbol naming block `label` of pi_A (inverse of f_A).
  Result<std::string> SymbolOfBlock(const std::string& attr,
                                    uint32_t label) const;

  /// Meaning of a partition expression (structural induction of Section
  /// 3.1): attributes evaluate to their atomic partitions; * and + to
  /// partition product and sum. Memoized on the dense kernel layer;
  /// bit-identical to EvalSparse.
  Result<Partition> Eval(const ExprArena& arena, ExprId e) const;

  /// The paper-literal recursive evaluation over the sparse Partition
  /// API — the reference implementation for differential testing. No
  /// memoization, no sharing.
  Result<Partition> EvalSparse(const ExprArena& arena, ExprId e) const;

  /// I |= e = e' (Definition 3): equal partitions over equal populations.
  /// For the <= form: lhs == lhs * rhs. Memoized like Eval.
  Result<bool> Satisfies(const ExprArena& arena, const Pd& pd) const;

  /// Mutation counter: bumped by every DefineAttribute. The memoized
  /// evaluation path keys its cache on this, so observing an unchanged
  /// epoch guarantees cached partitions are current.
  uint64_t epoch() const { return epoch_; }

  /// The atomic partition of `name` without copying, or nullptr when the
  /// attribute is not interpreted.
  const Partition* FindAtomic(const std::string& name) const {
    const AttrInterp* a = FindAttr(name);
    return a == nullptr ? nullptr : &a->atomic;
  }

  /// I |= d (Definition 2): the meaning of every tuple of every relation
  /// is a nonempty set.
  Result<bool> SatisfiesDatabase(const Database& db) const;

  /// Meaning of a single tuple: the intersection over the scheme's
  /// attributes of f_A(t[A]). Empty result <=> meaning is the empty set.
  Result<std::vector<Elem>> TupleMeaning(const Database& db,
                                         const Relation& r,
                                         const Tuple& t) const;

  /// Definition 4.1: CAD holds for database d iff for every defined
  /// attribute A and every symbol x, x appears in d under A exactly when
  /// f_A(x) is nonempty.
  Result<bool> SatisfiesCad(const Database& db) const;

  /// Definition 4.2: EAP — all defined attributes share one population.
  bool SatisfiesEap() const;

  /// Names of defined attributes (insertion order).
  const std::vector<std::string>& attribute_names() const {
    return attr_order_;
  }

  std::string ToString() const;

 private:
  struct AttrInterp {
    Partition atomic;
    // f_A restricted to its support: symbol name -> block label.
    std::unordered_map<std::string, uint32_t> naming;
    // inverse: block label -> symbol name.
    std::vector<std::string> block_symbol;
  };

  const AttrInterp* FindAttr(const std::string& name) const {
    auto it = attrs_.find(name);
    return it == attrs_.end() ? nullptr : &it->second;
  }

  std::unordered_map<std::string, AttrInterp> attrs_;
  std::vector<std::string> attr_order_;
  uint64_t epoch_ = 0;

  // Lazily-created memoized evaluator behind Eval/Satisfies. Guarded by
  // eval_mu_ so const evaluation stays safe to call concurrently; never
  // copied (a copy starts with a cold cache).
  mutable std::mutex eval_mu_;
  mutable std::unique_ptr<EvalContext> eval_ctx_;
};

}  // namespace psem

#endif  // PSEM_PARTITION_INTERPRETATION_H_
