#include "util/status.h"

namespace psem {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInconsistent:
      return "Inconsistent";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kIoError:
      return "IoError";
  }
  return "Unknown";
}

int ExitCodeFor(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
      return 2;
    case StatusCode::kNotFound:
      return 3;
    case StatusCode::kFailedPrecondition:
      return 4;
    case StatusCode::kOutOfRange:
      return 5;
    case StatusCode::kResourceExhausted:
      return 6;
    case StatusCode::kInconsistent:
      return 7;
    case StatusCode::kInternal:
      return 8;
    case StatusCode::kCancelled:
      return 9;
    case StatusCode::kDataLoss:
      return 10;
    case StatusCode::kIoError:
      return 11;
  }
  return 1;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace psem
