// ExecContext: execution governance for every long-running path in the
// library — the ALG closure fixpoints (Section 5.2's O(n^4) sweep), the
// Whitman deciders, the Honeyman chase, the Lemma 12.1 repair loop, and
// the NP-complete CAD/NAE backtracking searches (Theorem 11).
//
// A context carries three orthogonal controls:
//
//  * a deadline        — a steady-clock time point after which governed
//                        loops stop and return kResourceExhausted;
//  * a cancel token    — a shared atomic flag; flipping it makes every
//                        loop holding the context return kCancelled at
//                        its next checkpoint (cooperative cancellation,
//                        safe to trigger from any thread);
//  * work budgets      — arc-count and vertex-count caps for the ALG
//                        closure, a node cap for the backtracking
//                        solvers, a recursion/stack-depth cap for the
//                        Whitman deciders, and a round cap for the
//                        chase/repair fixpoints.
//
// Contract (see docs/robustness.md): a governed entry point that trips a
// limit returns a non-OK Status and leaves its object in a VALID,
// re-usable state — partial closure progress is kept as a sound warm
// start (every arc ever written is a consequence of E; the rules are
// monotone), partial stats are kept in AlgStats, and re-issuing the call
// with a fresh context completes normally and yields the same verdicts
// as a cold engine.
//
// All checking methods are const and thread-safe: workers of a parallel
// sweep may poll one shared context concurrently.

#ifndef PSEM_UTIL_EXEC_CONTEXT_H_
#define PSEM_UTIL_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "util/status.h"

namespace psem {

/// Shared cooperative-cancellation flag. Copy freely; all copies observe
/// one underlying flag. Trigger from any thread (e.g. a server's RPC
/// teardown path) to make every governed loop holding a context built on
/// this token stop at its next checkpoint.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() const { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }
  /// Re-arms the token (for reuse across requests in tests/benchmarks).
  void Reset() const { flag_->store(false, std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Deadline + cancellation + resource budgets for one unit of work.
/// Cheap to copy; intended to be built per request and passed by const
/// reference down the call tree. 0 for any budget means "unlimited".
class ExecContext {
 public:
  using Clock = std::chrono::steady_clock;

  ExecContext() = default;

  /// A shared unlimited context — the default for every governed entry
  /// point, preserving the ungoverned legacy behavior.
  static const ExecContext& Unbounded() {
    static const ExecContext ctx;
    return ctx;
  }

  // --- builders (chainable) ------------------------------------------------

  /// Absolute deadline.
  ExecContext& WithDeadline(Clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
    return *this;
  }
  /// Deadline `timeout` from now.
  ExecContext& WithTimeout(std::chrono::nanoseconds timeout) {
    return WithDeadline(Clock::now() + timeout);
  }
  ExecContext& WithCancelToken(CancelToken token) {
    token_ = std::move(token);
    has_token_ = true;
    return *this;
  }
  /// Caps the arc count of an ALG closure (memory proxy: the arc matrix).
  ExecContext& WithMaxArcs(uint64_t n) {
    max_arcs_ = n;
    return *this;
  }
  /// Caps |V|, the closure's vertex set (distinct subexpressions).
  ExecContext& WithMaxVertices(uint64_t n) {
    max_vertices_ = n;
    return *this;
  }
  /// Caps backtracking nodes of the NAE/CAD solvers.
  ExecContext& WithMaxSolverNodes(uint64_t n) {
    max_solver_nodes_ = n;
    return *this;
  }
  /// Caps recursion/stack depth of the Whitman deciders and the parser.
  ExecContext& WithMaxDepth(uint64_t n) {
    max_depth_ = n;
    return *this;
  }
  /// Caps fixpoint rounds of the chase and the repair loop.
  ExecContext& WithMaxRounds(uint64_t n) {
    max_rounds_ = n;
    return *this;
  }

  // --- accessors -------------------------------------------------------------

  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }
  uint64_t max_arcs() const { return max_arcs_; }
  uint64_t max_vertices() const { return max_vertices_; }
  uint64_t max_solver_nodes() const { return max_solver_nodes_; }
  uint64_t max_depth() const { return max_depth_; }
  uint64_t max_rounds() const { return max_rounds_; }

  bool cancelled() const { return has_token_ && token_.cancelled(); }
  bool deadline_expired() const {
    return has_deadline_ && Clock::now() >= deadline_;
  }
  /// True when no control is configured — governed loops skip their
  /// per-iteration checkpoints entirely on this fast path.
  bool unbounded() const {
    return !has_deadline_ && !has_token_ && max_arcs_ == 0 &&
           max_vertices_ == 0 && max_solver_nodes_ == 0 && max_depth_ == 0 &&
           max_rounds_ == 0;
  }

  // --- checkpoints -----------------------------------------------------------
  // Each returns OK or the Status a governed loop should surface.
  //
  // Check() reads the steady clock, so hot loops throttle it (poll every
  // ~1024 iterations). The budget checkers are pure integer comparisons
  // and safe to call per iteration; they deliberately do NOT fold in
  // Check() so a loop can compose exactly the controls it needs.
  // Cancellation wins over the deadline when both have tripped.

  Status Check() const {
    if (cancelled()) {
      return Status::Cancelled("work cancelled via CancelToken");
    }
    if (deadline_expired()) {
      return Status::ResourceExhausted("deadline exceeded");
    }
    return Status::OK();
  }

  Status CheckArcs(uint64_t arcs) const {
    if (max_arcs_ != 0 && arcs > max_arcs_) {
      return Status::ResourceExhausted(
          "arc budget exhausted: " + std::to_string(arcs) + " arcs > max " +
          std::to_string(max_arcs_));
    }
    return Status::OK();
  }

  Status CheckVertices(uint64_t vertices) const {
    if (max_vertices_ != 0 && vertices > max_vertices_) {
      return Status::ResourceExhausted(
          "vertex budget exhausted: |V| = " + std::to_string(vertices) +
          " > max " + std::to_string(max_vertices_));
    }
    return Status::OK();
  }

  Status CheckSolverNodes(uint64_t nodes) const {
    if (max_solver_nodes_ != 0 && nodes > max_solver_nodes_) {
      return Status::ResourceExhausted(
          "solver node budget exhausted after " + std::to_string(nodes) +
          " nodes");
    }
    return Status::OK();
  }

  Status CheckDepth(uint64_t depth) const {
    if (max_depth_ != 0 && depth > max_depth_) {
      return Status::ResourceExhausted(
          "recursion depth budget exhausted at depth " +
          std::to_string(depth));
    }
    return Status::OK();
  }

  Status CheckRounds(uint64_t rounds) const {
    if (max_rounds_ != 0 && rounds > max_rounds_) {
      return Status::ResourceExhausted(
          "round budget exhausted after " + std::to_string(rounds) +
          " rounds");
    }
    return Status::OK();
  }

 private:
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  bool has_token_ = false;
  CancelToken token_;
  uint64_t max_arcs_ = 0;
  uint64_t max_vertices_ = 0;
  uint64_t max_solver_nodes_ = 0;
  uint64_t max_depth_ = 0;
  uint64_t max_rounds_ = 0;
};

}  // namespace psem

#endif  // PSEM_UTIL_EXEC_CONTEXT_H_
