// Deterministic fault injection (RocksDB-SyncPoint style). A fail point
// is a named site in library code that a test can "arm"; the next N (or
// all) executions of that site then take their failure path, which by
// contract surfaces as a clean non-OK Status with no invariant damage —
// the fault-injection matrix test re-runs the query after disarming and
// checks verdict equality against a cold engine.
//
// Sites are compiled out unless PSEM_FAILPOINTS_ENABLED is defined (the
// PSEM_FAILPOINTS CMake option; ON by default for Debug builds, OFF for
// Release, so production binaries carry zero overhead). The FailPoints
// class itself always exists so tests can compile unconditionally and
// skip at runtime via FailPoints::Enabled().
//
// Usage in library code:
//   if (PSEM_FAILPOINT(failpoints::kAlgSweep)) {
//     return Status::Internal("injected closure-sweep fault");
//   }
//
// Usage in tests:
//   FailPoints::Arm(failpoints::kAlgSweep, /*fire_count=*/1);
//   ... exercise; expect clean Status ...
//   FailPoints::DisarmAll();
//
// Thread-compatibility: Arm/Disarm/Fire are mutex-guarded and may be
// called from any thread; the un-armed fast path is one relaxed atomic
// load.

#ifndef PSEM_UTIL_FAILPOINT_H_
#define PSEM_UTIL_FAILPOINT_H_

#include <cstdint>
#include <vector>

namespace psem {

/// Names of every registered fail-point site, for the matrix test and
/// the docs/robustness.md catalog. Keep in sync with the call sites.
namespace failpoints {
inline constexpr const char* kThreadPoolSpawn = "psem.threadpool.spawn";
inline constexpr const char* kAlgSeedAlloc = "psem.alg.seed_alloc";
inline constexpr const char* kAlgSweep = "psem.alg.sweep";
inline constexpr const char* kChaseRound = "psem.chase.round";
inline constexpr const char* kRepairRound = "psem.repair.round";
inline constexpr const char* kNaeSearch = "psem.nae.search";
inline constexpr const char* kCadSearch = "psem.cad.search";
// Durable-I/O sites (util/durable_file.cc). Each simulates one physical
// failure mode of the snapshot/journal path so every recovery tier is
// reachable deterministically in tests (docs/robustness.md).
inline constexpr const char* kIoTornWrite = "psem.io.torn_write";
inline constexpr const char* kIoShortRead = "psem.io.short_read";
inline constexpr const char* kIoBitFlip = "psem.io.bit_flip";
inline constexpr const char* kIoFsync = "psem.io.fsync";
inline constexpr const char* kIoRename = "psem.io.rename";
}  // namespace failpoints

/// Global registry of armed fail points.
class FailPoints {
 public:
  /// True iff this build compiles the injection sites in.
  static constexpr bool Enabled() {
#ifdef PSEM_FAILPOINTS_ENABLED
    return true;
#else
    return false;
#endif
  }

  /// Every registered site name (armed or not).
  static std::vector<const char*> Catalog();

#ifdef PSEM_FAILPOINTS_ENABLED
  /// Arms `site`: the next `fire_count` executions fail (-1 = every one).
  static void Arm(const char* site, int fire_count = -1);
  /// Disarms one site / all sites.
  static void Disarm(const char* site);
  static void DisarmAll();
  /// Consults and decrements the site's arm state. Library-internal
  /// (call through PSEM_FAILPOINT); exposed for the facility's own tests.
  static bool Fire(const char* site);
  /// Times `site` has actually fired since the last DisarmAll.
  static uint64_t FireCount(const char* site);
#else
  static void Arm(const char*, int = -1) {}
  static void Disarm(const char*) {}
  static void DisarmAll() {}
  static bool Fire(const char*) { return false; }
  static uint64_t FireCount(const char*) { return 0; }
#endif
};

#ifdef PSEM_FAILPOINTS_ENABLED
#define PSEM_FAILPOINT(site) (::psem::FailPoints::Fire(site))
#else
#define PSEM_FAILPOINT(site) (false)
#endif

}  // namespace psem

#endif  // PSEM_UTIL_FAILPOINT_H_
