// Small string helpers shared by parsers and pretty-printers.

#ifndef PSEM_UTIL_STRINGS_H_
#define PSEM_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace psem {

/// Removes leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view s);

/// Splits on `sep`, stripping whitespace from every piece; empty pieces are
/// dropped.
std::vector<std::string> SplitAndStrip(std::string_view s, char sep);

/// Joins pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

/// True iff `s` is a valid identifier: [A-Za-z_][A-Za-z0-9_]*.
bool IsIdentifier(std::string_view s);

}  // namespace psem

#endif  // PSEM_UTIL_STRINGS_H_
