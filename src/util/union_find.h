// Disjoint-set (union-find) structure with path compression and union by
// rank. This is the workhorse behind partition sums (Section 3.1 of the
// paper: `+` is the finest common generalization, i.e. transitive chaining
// of overlapping blocks) and behind the chase's value-equating step.

#ifndef PSEM_UTIL_UNION_FIND_H_
#define PSEM_UTIL_UNION_FIND_H_

#include <cstdint>
#include <numeric>
#include <vector>

namespace psem {

/// Union-find over the dense universe {0, 1, ..., n-1}.
class UnionFind {
 public:
  /// Creates n singleton sets.
  explicit UnionFind(std::size_t n) : parent_(n), rank_(n, 0), num_sets_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  UnionFind() : UnionFind(0) {}

  /// Number of elements in the universe.
  std::size_t size() const { return parent_.size(); }

  /// Number of disjoint sets currently.
  std::size_t num_sets() const { return num_sets_; }

  /// Appends a fresh singleton element; returns its index.
  uint32_t AddElement() {
    uint32_t id = static_cast<uint32_t>(parent_.size());
    parent_.push_back(id);
    rank_.push_back(0);
    ++num_sets_;
    return id;
  }

  /// Canonical representative of x's set (with path compression).
  uint32_t Find(uint32_t x) {
    uint32_t root = x;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[x] != root) {
      uint32_t next = parent_[x];
      parent_[x] = root;
      x = next;
    }
    return root;
  }

  /// Merges the sets of x and y. Returns true iff they were distinct.
  bool Union(uint32_t x, uint32_t y) {
    uint32_t rx = Find(x);
    uint32_t ry = Find(y);
    if (rx == ry) return false;
    if (rank_[rx] < rank_[ry]) std::swap(rx, ry);
    parent_[ry] = rx;
    if (rank_[rx] == rank_[ry]) ++rank_[rx];
    --num_sets_;
    return true;
  }

  /// True iff x and y are in the same set.
  bool Connected(uint32_t x, uint32_t y) { return Find(x) == Find(y); }

  /// Returns, for each element, a canonical set id in [0, num_sets()),
  /// numbered by first occurrence (element order). Useful for turning the
  /// structure into a canonical partition labeling.
  std::vector<uint32_t> CanonicalLabels() {
    std::vector<uint32_t> labels(parent_.size());
    std::vector<uint32_t> root_to_label(parent_.size(), kNoLabel);
    uint32_t next = 0;
    for (uint32_t i = 0; i < parent_.size(); ++i) {
      uint32_t r = Find(i);
      if (root_to_label[r] == kNoLabel) root_to_label[r] = next++;
      labels[i] = root_to_label[r];
    }
    return labels;
  }

 private:
  static constexpr uint32_t kNoLabel = UINT32_MAX;
  std::vector<uint32_t> parent_;
  std::vector<uint8_t> rank_;
  std::size_t num_sets_;
};

}  // namespace psem

#endif  // PSEM_UTIL_UNION_FIND_H_
