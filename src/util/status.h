// Status and Result<T>: exception-free error propagation for the psem
// library, following the RocksDB/Arrow idiom. All fallible public APIs
// return Status (or Result<T> when they produce a value).

#ifndef PSEM_UTIL_STATUS_H_
#define PSEM_UTIL_STATUS_H_

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace psem {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Malformed input (bad expression syntax, arity, ...).
  kNotFound,          ///< Named attribute/relation/symbol does not exist.
  kFailedPrecondition,///< Object state does not admit the operation.
  kOutOfRange,        ///< Index or identifier outside the valid range.
  kResourceExhausted, ///< A configured limit (deadline, arc/node budget) hit.
  kInconsistent,      ///< A consistency test failed (domain-level, not a bug).
  kInternal,          ///< Invariant violation inside the library.
  kCancelled,         ///< The caller's cancellation token was triggered.
  kDataLoss,          ///< A durable artifact (snapshot, journal) is corrupt.
  kIoError,           ///< The environment failed an I/O call (write/fsync/...).
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Stable process exit code for a StatusCode (0 for kOk; 1 is reserved for
/// failures outside the Status taxonomy, e.g. an unreadable script file).
/// Used by the CLI so scripts can distinguish "inconsistent" from
/// "undecided: budget" from "bad input".
int ExitCodeFor(StatusCode code);

/// A success-or-error outcome. Cheap to copy on the success path (no
/// allocation); error path carries a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Inconsistent(std::string msg) {
    return Status(StatusCode::kInconsistent, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// Fatal invariant check, active in ALL build types (unlike assert, which
/// Release compiles away into silent UB). `msg` may be any expression
/// convertible to std::string. Used on untrusted boundaries where
/// continuing past a violated precondition would corrupt state.
#define PSEM_CHECK(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "PSEM_CHECK failed at %s:%d: %s: %s\n",         \
                   __FILE__, __LINE__, #cond, std::string(msg).c_str());   \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

/// A value-or-error outcome. Holds T on success, a non-OK Status otherwise.
template <typename T>
class Result {
 public:
  /// Implicit from a value: success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status: failure.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access the contained value. Precondition: ok(). Violations abort with
  /// the carried Status message in every build type — dereferencing an
  /// error Result must never be a silent UB path in Release.
  const T& value() const& {
    PSEM_CHECK(ok(), "Result::value() on error: " + status_.ToString());
    return *value_;
  }
  T& value() & {
    PSEM_CHECK(ok(), "Result::value() on error: " + status_.ToString());
    return *value_;
  }
  T&& value() && {
    PSEM_CHECK(ok(), "Result::value() on error: " + status_.ToString());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagates a non-OK Status out of the enclosing function.
#define PSEM_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::psem::Status _psem_st = (expr);         \
    if (!_psem_st.ok()) return _psem_st;      \
  } while (false)

/// Assigns the value of a Result expression to `lhs`, or propagates the
/// error. Usage: PSEM_ASSIGN_OR_RETURN(auto x, ComputeX());
#define PSEM_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  PSEM_ASSIGN_OR_RETURN_IMPL_(                                   \
      PSEM_STATUS_CONCAT_(_psem_res_, __LINE__), lhs, rexpr)
#define PSEM_STATUS_CONCAT_INNER_(a, b) a##b
#define PSEM_STATUS_CONCAT_(a, b) PSEM_STATUS_CONCAT_INNER_(a, b)
#define PSEM_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

}  // namespace psem

#endif  // PSEM_UTIL_STATUS_H_
