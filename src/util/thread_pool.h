// A small fixed-size thread pool with a blocking parallel-for primitive.
// Built for the row-banded fixpoint sweeps of Algorithm ALG
// (core/implication.*): the caller partitions an index range into
// contiguous bands, every band runs on its own worker, and ParallelFor
// returns only after the last band finishes — the join is the barrier
// that separates sweep phases (see docs/architecture.md, "Parallel
// closure").
//
// Thread-compatibility: a ThreadPool may be driven by one thread at a
// time; the closures submitted through it run concurrently with each
// other but never with the caller, which blocks until the batch drains.

#ifndef PSEM_UTIL_THREAD_POOL_H_
#define PSEM_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <system_error>
#include <thread>
#include <vector>

#include "util/failpoint.h"
#include "util/status.h"

namespace psem {

/// Fixed set of worker threads consuming a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1). Propagates
  /// std::system_error if the OS refuses to create a thread; prefer
  /// Create() on paths that must survive a degraded environment.
  explicit ThreadPool(std::size_t num_threads) {
    if (num_threads == 0) num_threads = 1;
    workers_.reserve(num_threads);
    try {
      for (std::size_t i = 0; i < num_threads; ++i) {
        workers_.emplace_back([this] { WorkerLoop(); });
      }
    } catch (...) {
      // Join whatever did spawn before letting the error escape, so a
      // partial pool never leaks running threads.
      {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
      }
      wake_workers_.notify_all();
      for (auto& w : workers_) w.join();
      throw;
    }
  }

  /// Fallible construction: returns the pool, or a Status when thread
  /// creation fails (resource exhaustion in the environment, or the
  /// `psem.threadpool.spawn` fail point). Callers are expected to degrade
  /// gracefully — e.g. PdImplicationEngine falls back to the serial sweep
  /// and records the downgrade in AlgStats.
  static Result<std::unique_ptr<ThreadPool>> Create(std::size_t num_threads) {
    if (PSEM_FAILPOINT(failpoints::kThreadPoolSpawn)) {
      return Status::ResourceExhausted(
          "injected thread-creation failure (psem.threadpool.spawn)");
    }
    try {
      return std::make_unique<ThreadPool>(num_threads);
    } catch (const std::system_error& e) {
      return Status::ResourceExhausted(
          std::string("thread creation failed: ") + e.what());
    } catch (const std::bad_alloc&) {
      return Status::ResourceExhausted(
          "thread creation failed: out of memory");
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    wake_workers_.notify_all();
    for (auto& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Splits [0, n) into at most num_threads() contiguous bands and runs
  /// `fn(band, begin, end)` for each, in parallel. Blocks until every
  /// band has completed — the return is a full barrier, so a subsequent
  /// ParallelFor observes all writes made by this one.
  ///
  /// Bands are deterministic for a given (n, num_threads): band b covers
  /// [b*ceil(n/B), min(n, (b+1)*ceil(n/B))). fn must not touch the pool.
  void ParallelFor(std::size_t n,
                   const std::function<void(std::size_t band, std::size_t begin,
                                            std::size_t end)>& fn) {
    if (n == 0) return;
    const std::size_t bands =
        std::min(n, static_cast<std::size_t>(workers_.size()));
    if (bands == 1) {
      fn(0, 0, n);
      return;
    }
    const std::size_t chunk = (n + bands - 1) / bands;
    std::size_t pending = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (std::size_t b = 0; b < bands; ++b) {
        std::size_t begin = b * chunk;
        std::size_t end = std::min(n, begin + chunk);
        if (begin >= end) continue;
        queue_.emplace_back([&fn, b, begin, end] { fn(b, begin, end); });
        ++pending;
      }
      batch_pending_ += pending;
    }
    wake_workers_.notify_all();
    // Wait for the whole batch: the barrier between sweep phases.
    std::unique_lock<std::mutex> lock(mu_);
    batch_done_.wait(lock, [this] { return batch_pending_ == 0; });
  }

 private:
  void WorkerLoop() {
    while (true) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        wake_workers_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
        if (stopping_ && queue_.empty()) return;
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--batch_pending_ == 0) batch_done_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable wake_workers_;
  std::condition_variable batch_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t batch_pending_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace psem

#endif  // PSEM_UTIL_THREAD_POOL_H_
