#include "util/failpoint.h"

#ifdef PSEM_FAILPOINTS_ENABLED
#include <atomic>
#include <cstring>
#include <mutex>
#include <string>
#include <unordered_map>
#endif

namespace psem {

std::vector<const char*> FailPoints::Catalog() {
  return {failpoints::kThreadPoolSpawn, failpoints::kAlgSeedAlloc,
          failpoints::kAlgSweep,        failpoints::kChaseRound,
          failpoints::kRepairRound,     failpoints::kNaeSearch,
          failpoints::kCadSearch,       failpoints::kIoTornWrite,
          failpoints::kIoShortRead,     failpoints::kIoBitFlip,
          failpoints::kIoFsync,         failpoints::kIoRename};
}

#ifdef PSEM_FAILPOINTS_ENABLED

namespace {

struct SiteState {
  int remaining = 0;  // -1 = fire every time
  uint64_t fired = 0;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, SiteState> sites;
};

Registry& GetRegistry() {
  static Registry* r = new Registry();  // leaked: safe at any exit order
  return *r;
}

// Fast path: skip the lock entirely while nothing is armed.
std::atomic<int>& ArmedCount() {
  static std::atomic<int> count{0};
  return count;
}

}  // namespace

void FailPoints::Arm(const char* site, int fire_count) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto [it, inserted] = r.sites.try_emplace(site);
  if (inserted) ArmedCount().fetch_add(1, std::memory_order_relaxed);
  it->second.remaining = fire_count;
}

void FailPoints::Disarm(const char* site) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (r.sites.erase(site) > 0) {
    ArmedCount().fetch_sub(1, std::memory_order_relaxed);
  }
}

void FailPoints::DisarmAll() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  ArmedCount().fetch_sub(static_cast<int>(r.sites.size()),
                         std::memory_order_relaxed);
  r.sites.clear();
}

bool FailPoints::Fire(const char* site) {
  if (ArmedCount().load(std::memory_order_relaxed) == 0) return false;
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site);
  if (it == r.sites.end()) return false;
  SiteState& s = it->second;
  if (s.remaining == 0) return false;
  if (s.remaining > 0) --s.remaining;
  ++s.fired;
  return true;
}

uint64_t FailPoints::FireCount(const char* site) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.fired;
}

#endif  // PSEM_FAILPOINTS_ENABLED

}  // namespace psem
