// Deterministic pseudo-random generator (splitmix64 core). All randomized
// tests, property sweeps, and workload generators in this repository use
// Rng with a fixed seed so every run is reproducible.

#ifndef PSEM_UTIL_RNG_H_
#define PSEM_UTIL_RNG_H_

#include <cassert>
#include <cstdint>

namespace psem {

/// Small, fast, deterministic PRNG (splitmix64).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). Precondition: bound > 0.
  uint64_t Below(uint64_t bound) {
    assert(bound > 0);
    // Rejection-free Lemire-style multiply-shift; bias is negligible for
    // the bounds used in this library and determinism is what matters.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(Next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Between(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli(p) with p = num/den.
  bool Chance(uint64_t num, uint64_t den) { return Below(den) < num; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  uint64_t state_;
};

}  // namespace psem

#endif  // PSEM_UTIL_RNG_H_
