// StringInterner: bidirectional string <-> dense id mapping. Attribute
// names (the universe of Section 2.1) and data symbols (the set D) are
// interned once so the rest of the library works with dense 32-bit ids.

#ifndef PSEM_UTIL_INTERNER_H_
#define PSEM_UTIL_INTERNER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace psem {

/// Interns strings into dense ids 0..size()-1, preserving insertion order.
class StringInterner {
 public:
  /// Returns the id for `s`, interning it if new.
  uint32_t Intern(std::string_view s) {
    auto it = ids_.find(std::string(s));
    if (it != ids_.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(strings_.size());
    strings_.emplace_back(s);
    ids_.emplace(strings_.back(), id);
    return id;
  }

  /// Returns the id for `s` if already interned.
  std::optional<uint32_t> Lookup(std::string_view s) const {
    auto it = ids_.find(std::string(s));
    if (it == ids_.end()) return std::nullopt;
    return it->second;
  }

  /// The string for an id. Precondition: id < size().
  const std::string& NameOf(uint32_t id) const { return strings_[id]; }

  std::size_t size() const { return strings_.size(); }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, uint32_t> ids_;
};

}  // namespace psem

#endif  // PSEM_UTIL_INTERNER_H_
