#include "util/strings.h"

#include <cctype>

namespace psem {

std::string_view StripAsciiWhitespace(std::string_view s) {
  std::size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  std::size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> SplitAndStrip(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      std::string_view piece = StripAsciiWhitespace(s.substr(start, i - start));
      if (!piece.empty()) out.emplace_back(piece);
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

bool IsIdentifier(std::string_view s) {
  if (s.empty()) return false;
  auto head = static_cast<unsigned char>(s[0]);
  if (!std::isalpha(head) && s[0] != '_') return false;
  for (char c : s.substr(1)) {
    auto u = static_cast<unsigned char>(c);
    if (!std::isalnum(u) && c != '_') return false;
  }
  return true;
}

}  // namespace psem
