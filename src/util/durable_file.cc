#include "util/durable_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/failpoint.h"

namespace psem {

namespace {

constexpr char kContainerMagic[8] = {'P', 'S', 'E', 'M', 'D', 'U', 'R', '1'};
constexpr char kJournalMagic[8] = {'P', 'S', 'E', 'M', 'J', 'N', 'L', '1'};
constexpr uint32_t kJournalVersion = 1;
// Guards each journal record against a stale tail that happens to
// checksum (e.g. the file was truncated into an older record boundary).
constexpr uint32_t kRecordMagic = 0x4A52u | (0x4E50u << 16);  // "RJPN"

Status ErrnoStatus(const char* op, const std::string& path) {
  return Status::IoError(std::string(op) + " failed for '" + path +
                         "': " + std::strerror(errno));
}

/// fsync the directory containing `path` so the rename itself is durable.
Status FsyncParentDir(const std::string& path) {
  std::string dir;
  auto slash = path.find_last_of('/');
  dir = (slash == std::string::npos) ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoStatus("open(dir)", dir);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return ErrnoStatus("fsync(dir)", dir);
  return Status::OK();
}

Status WriteAll(int fd, const char* data, std::size_t len,
                const std::string& path) {
  std::size_t off = 0;
  while (off < len) {
    ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", path);
    }
    off += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

}  // namespace

uint32_t Crc32c(const void* data, std::size_t len, uint32_t seed) {
  // Software CRC32C (Castagnoli, poly 0x1EDC6F41 reflected = 0x82F63B78),
  // byte-at-a-time table built on first use.
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Result<std::string> ReadFileBounded(const std::string& path,
                                    const DurableLimits& limits) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: '" + path + "'");
    }
    return ErrnoStatus("open", path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status s = ErrnoStatus("fstat", path);
    ::close(fd);
    return s;
  }
  if (static_cast<uint64_t>(st.st_size) > limits.max_file_bytes) {
    ::close(fd);
    return Status::InvalidArgument(
        "file '" + path + "' exceeds max_file_bytes (" +
        std::to_string(st.st_size) + " > " +
        std::to_string(limits.max_file_bytes) + ")");
  }
  std::string out;
  out.resize(static_cast<std::size_t>(st.st_size));
  std::size_t off = 0;
  while (off < out.size()) {
    ssize_t n = ::read(fd, out.data() + off, out.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status s = ErrnoStatus("read", path);
      ::close(fd);
      return s;
    }
    if (n == 0) break;  // file shrank under us; treat as short read
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);
  out.resize(off);
  // Injected physical read failures, for the recovery-tier tests: a short
  // read loses the tail half; a bit flip corrupts one bit mid-file. Both
  // must be caught downstream by framing or checksum validation.
  if (PSEM_FAILPOINT(failpoints::kIoShortRead)) {
    out.resize(out.size() / 2);
  }
  if (PSEM_FAILPOINT(failpoints::kIoBitFlip) && !out.empty()) {
    out[out.size() / 2] = static_cast<char>(out[out.size() / 2] ^ 0x40);
  }
  return out;
}

Status AtomicWriteFile(const std::string& path, std::string_view data) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("open", tmp);

  // A torn write persists only a prefix of the payload — the crash-
  // mid-write failure the atomic rename protocol exists to mask.
  std::size_t write_len = data.size();
  bool torn = PSEM_FAILPOINT(failpoints::kIoTornWrite);
  if (torn) write_len /= 2;

  Status st = WriteAll(fd, data.data(), write_len, tmp);
  if (st.ok() && torn) {
    st = Status::IoError("injected torn write for '" + path + "'");
  }
  if (st.ok() && (PSEM_FAILPOINT(failpoints::kIoFsync) || ::fsync(fd) != 0)) {
    st = Status::IoError("fsync failed for '" + tmp + "'");
  }
  ::close(fd);
  if (!st.ok()) {
    ::unlink(tmp.c_str());
    return st;
  }
  if (PSEM_FAILPOINT(failpoints::kIoRename) ||
      ::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::IoError("rename failed for '" + tmp + "' -> '" + path +
                           "'");
  }
  return FsyncParentDir(path);
}

std::string EncodeChunkContainer(uint32_t version,
                                 const std::vector<Chunk>& chunks) {
  ByteWriter w;
  w.Bytes(std::string_view(kContainerMagic, sizeof(kContainerMagic)));
  w.U32(version);
  for (const Chunk& c : chunks) {
    ByteWriter frame;
    frame.U32(c.tag);
    frame.U64(c.payload.size());
    frame.Bytes(c.payload);
    uint32_t crc = Crc32c(frame.data().data(), frame.data().size());
    w.Bytes(frame.data());
    w.U32(crc);
  }
  return w.Take();
}

Result<ChunkContainer> DecodeChunkContainer(std::string_view bytes,
                                            const DurableLimits& limits) {
  if (bytes.size() > limits.max_file_bytes) {
    return Status::InvalidArgument("container exceeds max_file_bytes");
  }
  ByteReader r(bytes);
  std::string_view magic;
  if (!r.Bytes(sizeof(kContainerMagic), &magic) ||
      std::memcmp(magic.data(), kContainerMagic, sizeof(kContainerMagic)) !=
          0) {
    return Status::DataLoss("bad container magic");
  }
  ChunkContainer out;
  if (!r.U32(&out.version)) {
    return Status::DataLoss("truncated container header");
  }
  while (!r.AtEnd()) {
    if (out.chunks.size() >= limits.max_chunks) {
      return Status::InvalidArgument("container exceeds max_chunks");
    }
    uint32_t tag;
    uint64_t len;
    if (!r.U32(&tag) || !r.U64(&len)) {
      return Status::DataLoss("truncated chunk header");
    }
    // A length the file cannot physically hold is framing damage (e.g. a
    // bit flip in the len field), not a configured-bound violation.
    if (len > r.remaining()) {
      return Status::DataLoss("chunk length exceeds remaining bytes");
    }
    if (len > limits.max_chunk_bytes) {
      return Status::InvalidArgument("chunk exceeds max_chunk_bytes");
    }
    std::string_view payload;
    uint32_t stored_crc;
    if (!r.Bytes(static_cast<std::size_t>(len), &payload) ||
        !r.U32(&stored_crc)) {
      return Status::DataLoss("truncated chunk body");
    }
    ByteWriter frame;
    frame.U32(tag);
    frame.U64(len);
    frame.Bytes(payload);
    if (Crc32c(frame.data().data(), frame.data().size()) != stored_crc) {
      return Status::DataLoss("chunk checksum mismatch");
    }
    out.chunks.push_back(Chunk{tag, std::string(payload)});
  }
  return out;
}

Status WriteChunkFile(const std::string& path, uint32_t version,
                      const std::vector<Chunk>& chunks) {
  return AtomicWriteFile(path, EncodeChunkContainer(version, chunks));
}

Result<ChunkContainer> ReadChunkFile(const std::string& path,
                                     const DurableLimits& limits) {
  PSEM_ASSIGN_OR_RETURN(std::string bytes, ReadFileBounded(path, limits));
  return DecodeChunkContainer(bytes, limits);
}

Result<JournalContents> ParseJournalBytes(std::string_view bytes,
                                          const DurableLimits& limits) {
  if (bytes.size() > limits.max_file_bytes) {
    return Status::InvalidArgument("journal exceeds max_file_bytes");
  }
  JournalContents out;
  const std::size_t header = sizeof(kJournalMagic) + 4;
  if (bytes.size() < header ||
      std::memcmp(bytes.data(), kJournalMagic, sizeof(kJournalMagic)) != 0) {
    return Status::DataLoss("bad journal magic");
  }
  ByteReader hdr(bytes.substr(sizeof(kJournalMagic), 4));
  uint32_t version = 0;
  hdr.U32(&version);
  if (version != kJournalVersion) {
    return Status::DataLoss("unsupported journal version " +
                            std::to_string(version));
  }
  out.valid_bytes = header;
  // Each record: [u32 rec-magic][u32 len][payload][u32 crc(payload)].
  // The first damaged record ends the valid prefix; everything after it
  // is torn tail. This is deliberately NOT an error: a crash mid-append
  // produces exactly this shape.
  std::size_t pos = header;
  while (pos < bytes.size()) {
    ByteReader r(bytes.substr(pos));
    uint32_t magic, len;
    if (!r.U32(&magic) || magic != kRecordMagic || !r.U32(&len) ||
        len > limits.max_record_bytes) {
      break;
    }
    std::string_view payload;
    uint32_t stored_crc;
    if (!r.Bytes(len, &payload) || !r.U32(&stored_crc) ||
        Crc32c(payload.data(), payload.size()) != stored_crc) {
      break;
    }
    out.records.emplace_back(payload);
    pos += 4 + 4 + len + 4;
    out.valid_bytes = pos;
  }
  if (pos < bytes.size()) {
    out.tail_truncated = true;
    out.bytes_dropped = bytes.size() - out.valid_bytes;
  }
  return out;
}

Journal::Journal(Journal&& other) noexcept
    : path_(std::move(other.path_)),
      limits_(other.limits_),
      recovered_(std::move(other.recovered_)),
      end_offset_(other.end_offset_),
      fd_(other.fd_) {
  other.fd_ = -1;
}

Journal& Journal::operator=(Journal&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(other.path_);
    limits_ = other.limits_;
    recovered_ = std::move(other.recovered_);
    end_offset_ = other.end_offset_;
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

Result<Journal> Journal::Open(const std::string& path,
                              const DurableLimits& limits, bool repair_tail) {
  Journal j;
  j.path_ = path;
  j.limits_ = limits;

  auto existing = ReadFileBounded(path, limits);
  bool fresh = false;
  if (!existing.ok()) {
    if (existing.status().code() != StatusCode::kNotFound) {
      return existing.status();
    }
    fresh = true;
  } else if (existing->empty()) {
    fresh = true;  // created but never written; stamp a header
  }

  if (!fresh) {
    PSEM_ASSIGN_OR_RETURN(j.recovered_,
                          ParseJournalBytes(*existing, limits));
  }

  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return ErrnoStatus("open", path);
  j.fd_ = fd;

  if (fresh) {
    ByteWriter w;
    w.Bytes(std::string_view(kJournalMagic, sizeof(kJournalMagic)));
    w.U32(kJournalVersion);
    Status st = WriteAll(fd, w.data().data(), w.data().size(), path);
    if (st.ok() && ::fsync(fd) != 0) st = ErrnoStatus("fsync", path);
    if (!st.ok()) return st;
    j.recovered_ = JournalContents{};
    j.recovered_.valid_bytes = w.data().size();
  } else if (repair_tail && j.recovered_.tail_truncated) {
    if (::ftruncate(fd, static_cast<off_t>(j.recovered_.valid_bytes)) != 0) {
      return ErrnoStatus("ftruncate", path);
    }
    if (::fsync(fd) != 0) return ErrnoStatus("fsync", path);
  }
  j.end_offset_ = j.recovered_.valid_bytes;
  return j;
}

Status Journal::Append(std::string_view payload) {
  if (fd_ < 0) return Status::FailedPrecondition("journal is not open");
  if (payload.size() > limits_.max_record_bytes) {
    return Status::InvalidArgument("journal record exceeds max_record_bytes");
  }
  ByteWriter w;
  w.U32(kRecordMagic);
  w.U32(static_cast<uint32_t>(payload.size()));
  w.Bytes(payload);
  w.U32(Crc32c(payload.data(), payload.size()));

  // A torn append persists a prefix of the frame — recoverable by the
  // next Open's tail repair, never by silently acknowledging the record.
  std::size_t write_len = w.data().size();
  bool torn = PSEM_FAILPOINT(failpoints::kIoTornWrite);
  if (torn) write_len /= 2;

  Status st = WriteAll(fd_, w.data().data(), write_len, path_);
  if (st.ok() && torn) {
    st = Status::IoError("injected torn journal append for '" + path_ + "'");
  }
  if (st.ok() && (PSEM_FAILPOINT(failpoints::kIoFsync) || ::fsync(fd_) != 0)) {
    st = Status::IoError("fsync failed for '" + path_ + "'");
  }
  if (!st.ok()) {
    // Roll the failed append back so the file keeps ending on a record
    // boundary and a retry does not land after a torn frame. Best
    // effort: if this too fails, the next Open's tail repair recovers.
    if (::ftruncate(fd_, static_cast<off_t>(end_offset_)) == 0) {
      ::lseek(fd_, 0, SEEK_END);  // O_APPEND re-seeks anyway; be explicit
    }
    return st;
  }
  end_offset_ += w.data().size();
  return Status::OK();
}

Status Journal::Reset() {
  if (fd_ < 0) return Status::FailedPrecondition("journal is not open");
  const std::size_t header = sizeof(kJournalMagic) + 4;
  if (::ftruncate(fd_, static_cast<off_t>(header)) != 0) {
    return ErrnoStatus("ftruncate", path_);
  }
  if (PSEM_FAILPOINT(failpoints::kIoFsync) || ::fsync(fd_) != 0) {
    return Status::IoError("fsync failed for '" + path_ + "'");
  }
  end_offset_ = header;
  return Status::OK();
}

}  // namespace psem
