// DynamicBitset: a fixed-universe bitset sized at runtime. Used for
// attribute sets (Section 2.1) and for the arc matrices of Algorithm ALG
// (Section 5.2), where bit-parallel row operations give the O(n^4)
// closure a small constant factor.

#ifndef PSEM_UTIL_BITSET_H_
#define PSEM_UTIL_BITSET_H_

#include <cassert>
#include <cstdint>
#include <vector>

namespace psem {

/// A bitset over {0, ..., n-1} with word-parallel set operations.
class DynamicBitset {
 public:
  DynamicBitset() : num_bits_(0) {}

  /// All bits initially clear.
  explicit DynamicBitset(std::size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  std::size_t size() const { return num_bits_; }

  void Set(std::size_t i) {
    assert(i < num_bits_);
    words_[i >> 6] |= (uint64_t{1} << (i & 63));
  }

  void Reset(std::size_t i) {
    assert(i < num_bits_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  bool Test(std::size_t i) const {
    assert(i < num_bits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void Clear() {
    for (auto& w : words_) w = 0;
  }

  /// Changes the universe to {0, ..., new_bits-1}. Growing preserves all
  /// bits (new positions start clear); shrinking drops the tail. Used by
  /// the incremental ALG closure when V gains vertices.
  void Resize(std::size_t new_bits) {
    num_bits_ = new_bits;
    words_.resize((new_bits + 63) / 64, 0);
    TrimTail();
  }

  void SetAll() {
    for (auto& w : words_) w = ~uint64_t{0};
    TrimTail();
  }

  /// Number of set bits.
  std::size_t Count() const {
    std::size_t c = 0;
    for (uint64_t w : words_) c += static_cast<std::size_t>(__builtin_popcountll(w));
    return c;
  }

  bool Any() const {
    for (uint64_t w : words_)
      if (w) return true;
    return false;
  }

  bool None() const { return !Any(); }

  /// In-place union; returns true iff this changed. Sizes must match.
  bool UnionWith(const DynamicBitset& other) {
    assert(num_bits_ == other.num_bits_);
    bool changed = false;
    for (std::size_t k = 0; k < words_.size(); ++k) {
      uint64_t before = words_[k];
      words_[k] |= other.words_[k];
      changed |= (words_[k] != before);
    }
    return changed;
  }

  /// In-place union with (a AND b); returns true iff this changed.
  bool UnionWithAnd(const DynamicBitset& a, const DynamicBitset& b) {
    assert(num_bits_ == a.num_bits_ && num_bits_ == b.num_bits_);
    bool changed = false;
    for (std::size_t k = 0; k < words_.size(); ++k) {
      uint64_t before = words_[k];
      words_[k] |= (a.words_[k] & b.words_[k]);
      changed |= (words_[k] != before);
    }
    return changed;
  }

  /// Clears every bit at position >= `from` (bit-exact at the boundary).
  void ClearFrom(std::size_t from) {
    if (from >= num_bits_) return;
    std::size_t word = from >> 6;
    words_[word] &= (uint64_t{1} << (from & 63)) - 1;
    for (std::size_t k = word + 1; k < words_.size(); ++k) words_[k] = 0;
  }

  /// In-place union restricted to bits at position >= `from`; returns
  /// true iff this changed. Used by the incremental ALG closure, where
  /// only the new-vertex tail of an old row may legally change.
  bool UnionWithFrom(const DynamicBitset& other, std::size_t from) {
    assert(num_bits_ == other.num_bits_);
    if (from >= num_bits_) return false;
    bool changed = false;
    std::size_t word = from >> 6;
    uint64_t mask = ~((uint64_t{1} << (from & 63)) - 1);
    for (std::size_t k = word; k < words_.size(); ++k) {
      uint64_t before = words_[k];
      words_[k] |= other.words_[k] & mask;
      changed |= (words_[k] != before);
      mask = ~uint64_t{0};
    }
    return changed;
  }

  /// In-place union with (a AND b), restricted to bits >= `from`.
  bool UnionWithAndFrom(const DynamicBitset& a, const DynamicBitset& b,
                        std::size_t from) {
    assert(num_bits_ == a.num_bits_ && num_bits_ == b.num_bits_);
    if (from >= num_bits_) return false;
    bool changed = false;
    std::size_t word = from >> 6;
    uint64_t mask = ~((uint64_t{1} << (from & 63)) - 1);
    for (std::size_t k = word; k < words_.size(); ++k) {
      uint64_t before = words_[k];
      words_[k] |= (a.words_[k] & b.words_[k]) & mask;
      changed |= (words_[k] != before);
      mask = ~uint64_t{0};
    }
    return changed;
  }

  /// In-place union that also reports what changed: returns the number of
  /// bits newly set, and (when `newly` is non-null) ORs exactly those bits
  /// into *newly. One scan — OR plus popcount of the difference — and words
  /// where `other` is empty are skipped, so the cost is proportional to
  /// other's occupied word span rather than the universe size. This is the
  /// kernel behind the semi-naive ALG closure's exact running arc counter.
  std::size_t OrInPlaceCountNew(const DynamicBitset& other,
                                DynamicBitset* newly = nullptr) {
    assert(num_bits_ == other.num_bits_);
    assert(newly == nullptr || newly->num_bits_ == num_bits_);
    std::size_t added = 0;
    for (std::size_t k = 0; k < words_.size(); ++k) {
      uint64_t ow = other.words_[k];
      if (!ow) continue;
      uint64_t fresh = ow & ~words_[k];
      if (!fresh) continue;
      words_[k] |= fresh;
      added += static_cast<std::size_t>(__builtin_popcountll(fresh));
      if (newly) newly->words_[k] |= fresh;
    }
    return added;
  }

  /// In-place union with (a AND b), counting and recording newly set bits
  /// exactly like OrInPlaceCountNew.
  std::size_t OrAndInPlaceCountNew(const DynamicBitset& a,
                                   const DynamicBitset& b,
                                   DynamicBitset* newly = nullptr) {
    assert(num_bits_ == a.num_bits_ && num_bits_ == b.num_bits_);
    assert(newly == nullptr || newly->num_bits_ == num_bits_);
    std::size_t added = 0;
    for (std::size_t k = 0; k < words_.size(); ++k) {
      uint64_t ow = a.words_[k] & b.words_[k];
      if (!ow) continue;
      uint64_t fresh = ow & ~words_[k];
      if (!fresh) continue;
      words_[k] |= fresh;
      added += static_cast<std::size_t>(__builtin_popcountll(fresh));
      if (newly) newly->words_[k] |= fresh;
    }
    return added;
  }

  /// In-place union with no change tracking: a straight-line word loop
  /// the compiler vectorizes to pure ORs. The accumulator kernel of the
  /// blocked dense closure sweep, where OrInPlaceCountNew's branchy
  /// skip-and-popcount scan would dominate (counting there happens once
  /// per destination row, on the merged accumulator).
  void OrWith(const DynamicBitset& other) {
    assert(num_bits_ == other.num_bits_);
    for (std::size_t k = 0; k < words_.size(); ++k) words_[k] |= other.words_[k];
  }

  /// this = a AND NOT b. All three must share a universe (this included —
  /// AndNot overwrites the contents, not the size).
  void AndNot(const DynamicBitset& a, const DynamicBitset& b) {
    assert(num_bits_ == a.num_bits_ && num_bits_ == b.num_bits_);
    for (std::size_t k = 0; k < words_.size(); ++k) {
      words_[k] = a.words_[k] & ~b.words_[k];
    }
  }

  // Word-span iteration: the 64-bit backing words, for kernels (like the
  // blocked dense closure sweep) that want to walk set bits a word at a
  // time instead of via NextSetBit.
  std::size_t num_words() const { return words_.size(); }
  uint64_t word(std::size_t k) const {
    assert(k < words_.size());
    return words_[k];
  }

  /// Overwrites backing word k. Bits beyond size() are masked off, so a
  /// deserializer cannot smuggle stray tail bits into Count()/Any().
  /// Returns false (leaving the word unchanged) iff the input had such
  /// bits — callers on untrusted boundaries treat that as corruption.
  bool set_word(std::size_t k, uint64_t w) {
    assert(k < words_.size());
    if (k + 1 == words_.size()) {
      std::size_t tail = num_bits_ & 63;
      if (tail != 0 && (w & ~((uint64_t{1} << tail) - 1)) != 0) return false;
    }
    words_[k] = w;
    return true;
  }

  /// Smallest half-open word range [*lo, *hi) containing every nonzero
  /// word, or false (lo == hi == 0) when the set is empty.
  bool NonZeroWordSpan(std::size_t* lo, std::size_t* hi) const {
    std::size_t first = 0;
    while (first < words_.size() && words_[first] == 0) ++first;
    if (first == words_.size()) {
      *lo = *hi = 0;
      return false;
    }
    std::size_t last = words_.size();
    while (words_[last - 1] == 0) --last;
    *lo = first;
    *hi = last;
    return true;
  }

  /// In-place intersection.
  void IntersectWith(const DynamicBitset& other) {
    assert(num_bits_ == other.num_bits_);
    for (std::size_t k = 0; k < words_.size(); ++k) words_[k] &= other.words_[k];
  }

  /// In-place difference (this \ other).
  void SubtractWith(const DynamicBitset& other) {
    assert(num_bits_ == other.num_bits_);
    for (std::size_t k = 0; k < words_.size(); ++k) words_[k] &= ~other.words_[k];
  }

  /// True iff this is a subset of other.
  bool IsSubsetOf(const DynamicBitset& other) const {
    assert(num_bits_ == other.num_bits_);
    for (std::size_t k = 0; k < words_.size(); ++k)
      if (words_[k] & ~other.words_[k]) return false;
    return true;
  }

  bool Intersects(const DynamicBitset& other) const {
    assert(num_bits_ == other.num_bits_);
    for (std::size_t k = 0; k < words_.size(); ++k)
      if (words_[k] & other.words_[k]) return true;
    return false;
  }

  bool operator==(const DynamicBitset& other) const {
    return num_bits_ == other.num_bits_ && words_ == other.words_;
  }

  /// Index of the first set bit at or after `from`, or size() if none.
  std::size_t NextSetBit(std::size_t from) const {
    if (from >= num_bits_) return num_bits_;
    std::size_t word = from >> 6;
    uint64_t w = words_[word] & (~uint64_t{0} << (from & 63));
    while (true) {
      if (w) {
        std::size_t bit = (word << 6) +
                          static_cast<std::size_t>(__builtin_ctzll(w));
        return bit < num_bits_ ? bit : num_bits_;
      }
      if (++word >= words_.size()) return num_bits_;
      w = words_[word];
    }
  }

  /// Calls fn(i) for every set bit i in increasing order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::size_t i = NextSetBit(0); i < num_bits_; i = NextSetBit(i + 1)) {
      fn(i);
    }
  }

  /// Hash suitable for unordered containers.
  std::size_t Hash() const {
    std::size_t h = 0xcbf29ce484222325ull;
    for (uint64_t w : words_) {
      h ^= static_cast<std::size_t>(w);
      h *= 0x100000001b3ull;
    }
    return h;
  }

 private:
  void TrimTail() {
    std::size_t tail = num_bits_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (uint64_t{1} << tail) - 1;
    }
  }

  std::size_t num_bits_;
  std::vector<uint64_t> words_;
};

}  // namespace psem

#endif  // PSEM_UTIL_BITSET_H_
