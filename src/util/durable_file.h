/// @file durable_file.h
/// @brief Crash-safe file primitives: CRC32C, atomic writes, a checksummed
/// chunk container, and an append-only journal with torn-tail repair.

// Durability primitives for the closure snapshot / write-ahead journal
// subsystem (core/snapshot.h). Three layers, each usable on its own:
//
//  * AtomicWriteFile — the classic write-temp -> fsync -> rename -> fsync-
//    directory sequence. A reader never observes a half-written file: it
//    sees either the old content or the new content, even across a crash
//    at any instant (rename(2) is atomic on POSIX filesystems).
//
//  * Chunk container — a typed, length-prefixed, CRC32C-checksummed
//    record file ("PSEMDUR1" magic + version header, then
//    [tag][len][payload][crc] chunks). Corruption of any byte is detected
//    by the per-chunk checksum; framing damage (bad magic, impossible
//    lengths) is detected by bounded parsing. Every read honors explicit
//    size limits (DurableLimits) so hostile or damaged artifacts cannot
//    drive unbounded allocation — the same discipline as the PR 2 parser
//    and CSV bounds (docs/robustness.md).
//
//  * Journal — an append-only record log with the same framing. Appends
//    are fsynced before they are acknowledged (write-ahead discipline).
//    On open, a torn tail — the signature of a crash mid-append — is
//    truncated back to the last valid record; everything before the tear
//    replays. This is the standard WAL recovery contract (cf. the
//    checkpoint/log designs in DINOMO-style KVS recovery).
//
// Failure injection: five fail-point sites (psem.io.torn_write,
// short_read, bit_flip, fsync, rename — util/failpoint.h) make each
// physical failure mode deterministic in tests, so every recovery tier
// of core/snapshot.h is reachable without flaky filesystem tricks.
//
// Error taxonomy: kDataLoss = the artifact's bytes are wrong (checksum or
// framing); kInvalidArgument = the artifact violates a configured bound;
// kIoError = the environment failed a syscall (open/write/fsync/rename).
//
// Thread-compatibility: free functions are thread-safe per distinct path;
// a Journal instance must be externally serialized.

#ifndef PSEM_UTIL_DURABLE_FILE_H_
#define PSEM_UTIL_DURABLE_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace psem {

/// CRC32C (Castagnoli) of `data`, seedable for incremental use. Software
/// slice-by-one table implementation — fast enough for snapshot-sized
/// payloads and dependency-free.
uint32_t Crc32c(const void* data, std::size_t len, uint32_t seed = 0);

/// Bounds for reading untrusted durable artifacts. Zero is NOT unlimited
/// here — these are hard caps, always enforced.
struct DurableLimits {
  uint64_t max_file_bytes = uint64_t{1} << 30;   ///< whole-file cap (1 GiB).
  uint64_t max_chunk_bytes = uint64_t{1} << 28;  ///< per-chunk cap (256 MiB).
  uint64_t max_chunks = uint64_t{1} << 16;       ///< chunk-count cap.
  uint64_t max_record_bytes = uint64_t{1} << 20; ///< per-journal-record cap.
};

// --- little-endian byte codec ------------------------------------------------

/// Appends fixed-width little-endian integers and raw bytes to a string.
class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<char>(v >> (8 * i)));
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<char>(v >> (8 * i)));
  }
  void Bytes(std::string_view data) { buf_.append(data); }
  /// Length-prefixed string (u32 length + bytes).
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    Bytes(s);
  }
  const std::string& data() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounded little-endian reader: every accessor returns false on overrun
/// instead of reading past the end, and the failure latches (ok() stays
/// false) so decoders can check once after a run of reads.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool U8(uint8_t* v) {
    if (!Ensure(1)) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool U32(uint32_t* v) {
    if (!Ensure(4)) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
    }
    return true;
  }
  bool U64(uint64_t* v) {
    if (!Ensure(8)) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
    }
    return true;
  }
  bool Bytes(std::size_t n, std::string_view* out) {
    if (!Ensure(n)) return false;
    *out = data_.substr(pos_, n);
    pos_ += n;
    return true;
  }
  /// Length-prefixed string; rejects lengths beyond `max_len`.
  bool Str(std::string* out, std::size_t max_len) {
    uint32_t len;
    if (!U32(&len) || len > max_len || !Ensure(len)) {
      ok_ = false;
      return false;
    }
    out->assign(data_.substr(pos_, len));
    pos_ += len;
    return true;
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  bool Ensure(std::size_t n) {
    if (data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// --- raw file primitives -----------------------------------------------------

/// Reads the whole file, rejecting anything over `limits.max_file_bytes`
/// with kInvalidArgument (and missing files with kNotFound). Fail-point
/// sites psem.io.short_read / psem.io.bit_flip corrupt the returned bytes
/// deterministically for recovery-tier tests.
Result<std::string> ReadFileBounded(const std::string& path,
                                    const DurableLimits& limits = {});

/// Atomically replaces `path` with `data`: writes `path`.tmp, fsyncs it,
/// renames over `path`, fsyncs the parent directory. On any failure
/// (real or injected) the destination keeps its previous content.
Status AtomicWriteFile(const std::string& path, std::string_view data);

// --- chunk container ---------------------------------------------------------

/// One typed chunk of a container file.
struct Chunk {
  uint32_t tag = 0;     ///< four-CC, e.g. 'META' packed little-endian.
  std::string payload;  ///< opaque bytes, CRC-protected on disk.
};

/// Packs "ABCD" into the on-disk u32 tag.
constexpr uint32_t ChunkTag(const char (&s)[5]) {
  return static_cast<uint32_t>(static_cast<uint8_t>(s[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(s[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(s[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(s[3])) << 24;
}

/// Serializes a container: magic, version, then each chunk as
/// [u32 tag][u64 len][payload][u32 crc32c(tag, len, payload)].
std::string EncodeChunkContainer(uint32_t version,
                                 const std::vector<Chunk>& chunks);

/// Parsed container.
struct ChunkContainer {
  uint32_t version = 0;
  std::vector<Chunk> chunks;
};

/// Decodes a container from bytes. kDataLoss on bad magic, bad checksum,
/// or truncation; kInvalidArgument when a bound in `limits` is exceeded.
Result<ChunkContainer> DecodeChunkContainer(std::string_view bytes,
                                            const DurableLimits& limits = {});

/// EncodeChunkContainer + AtomicWriteFile.
Status WriteChunkFile(const std::string& path, uint32_t version,
                      const std::vector<Chunk>& chunks);

/// ReadFileBounded + DecodeChunkContainer.
Result<ChunkContainer> ReadChunkFile(const std::string& path,
                                     const DurableLimits& limits = {});

// --- append-only journal -----------------------------------------------------

/// Outcome of scanning journal bytes: the records of the valid prefix,
/// how many bytes of torn tail (if any) follow it, and where the valid
/// prefix ends (for truncation).
struct JournalContents {
  std::vector<std::string> records;
  uint64_t valid_bytes = 0;      ///< header + every fully valid record.
  bool tail_truncated = false;   ///< a torn/corrupt tail was found.
  uint64_t bytes_dropped = 0;    ///< size of that tail.
};

/// Scans journal bytes. A damaged or half-written record ends the valid
/// prefix: everything before it is returned, everything from it on is
/// reported as the torn tail (this is the journal-tail-truncation
/// recovery tier — a crash mid-append must never poison the prefix).
/// kDataLoss only when the header itself is unusable; kInvalidArgument
/// when a bound in `limits` is exceeded.
Result<JournalContents> ParseJournalBytes(std::string_view bytes,
                                          const DurableLimits& limits = {});

/// Append-only write-ahead journal. Open replays (and, by default,
/// physically truncates) the torn tail; Append fsyncs before returning
/// so an acknowledged record survives any later crash.
class Journal {
 public:
  Journal() = default;
  Journal(Journal&&) noexcept;
  Journal& operator=(Journal&&) noexcept;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;
  ~Journal();

  /// Opens (creating if absent) the journal at `path`. Existing records
  /// are scanned into contents(); a torn tail is truncated on disk when
  /// `repair_tail` (the default) so later appends extend a valid prefix.
  static Result<Journal> Open(const std::string& path,
                              const DurableLimits& limits = {},
                              bool repair_tail = true);

  /// Records recovered by Open (not updated by Append).
  const JournalContents& recovered() const { return recovered_; }

  /// Durably appends one record: framed write + flush + fsync. A failed
  /// append is rolled back (the file is truncated to its pre-append
  /// length), so the journal never accumulates a torn frame mid-file and
  /// the caller may simply retry; if even the rollback fails, the next
  /// Open's tail repair restores the same invariant.
  Status Append(std::string_view payload);

  /// Truncates the journal back to a bare header (after a checkpoint has
  /// made its records redundant). Fsynced.
  Status Reset();

  const std::string& path() const { return path_; }
  bool is_open() const { return fd_ >= 0; }

 private:
  std::string path_;
  DurableLimits limits_;
  JournalContents recovered_;
  uint64_t end_offset_ = 0;  ///< byte length of the valid prefix on disk.
  int fd_ = -1;
};

}  // namespace psem

#endif  // PSEM_UTIL_DURABLE_FILE_H_
