#include "discovery/discovery.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "partition/canonical.h"
#include "partition/dense.h"
#include "util/union_find.h"

namespace psem {

namespace {

// Candidate lhs sets are column-index bitmasks (arity <= 30 or so; the
// levelwise bound keeps this tame).
using ColMask = uint32_t;

// Dense column PLIs: column[c] groups row indices by the value in c.
std::vector<DensePartition> DenseColumns(const Relation& r, DenseOps* ops) {
  std::vector<DensePartition> column(r.arity());
  std::vector<uint32_t> values(r.size());
  for (std::size_t c = 0; c < r.arity(); ++c) {
    for (uint32_t i = 0; i < r.size(); ++i) values[i] = r.row(i)[c];
    ops->GroupByValues(values, &column[c]);
  }
  return column;
}

}  // namespace

Partition ColumnPartition(const Relation& r, std::size_t column) {
  std::vector<Elem> population(r.size());
  std::vector<uint32_t> values(r.size());
  for (uint32_t i = 0; i < r.size(); ++i) {
    population[i] = i;
    values[i] = r.row(i)[column];
  }
  DenseOps ops;
  DensePartition grouped;
  ops.GroupByValues(values, &grouped);
  return Partition::FromLabels(std::move(population), grouped.labels);
}

Result<std::vector<Fd>> DiscoverFds(const Database& db, const Relation& r,
                                    const FdDiscoveryOptions& options) {
  const std::size_t arity = r.arity();
  if (arity > 24) {
    return Status::InvalidArgument("relation too wide for lattice search");
  }
  if (r.empty()) {
    return Status::FailedPrecondition(
        "FD discovery over an empty relation is vacuous");
  }
  DenseOps ops;
  std::vector<DensePartition> column = DenseColumns(r, &ops);

  // Stripped PLI of a column set, cached by mask: singleton blocks never
  // participate in a refinement violation, so each intersection touches
  // only the surviving clustered rows (the TANE recipe).
  std::unordered_map<ColMask, StrippedPartition> set_pli;
  std::function<const StrippedPartition&(ColMask)> pli_of =
      [&](ColMask mask) -> const StrippedPartition& {
    auto it = set_pli.find(mask);
    if (it != set_pli.end()) return it->second;
    // Split off the lowest column and recurse.
    int low = __builtin_ctz(mask);
    ColMask rest = mask & (mask - 1);
    StrippedPartition sp;
    if (rest == 0) {
      ops.Strip(column[low], &sp);
    } else {
      ops.StrippedProduct(pli_of(rest), column[low], &sp);
    }
    return set_pli.emplace(mask, std::move(sp)).first->second;
  };

  // r |= X -> A iff pi_X refines pi_A: every cluster of the X-PLI stays
  // inside one block of pi_A.
  auto holds = [&](ColMask x, std::size_t a) {
    return ops.StrippedRefines(pli_of(x), column[a]);
  };

  std::vector<Fd> out;
  const std::size_t n = db.universe().size();
  // For minimality pruning: for each rhs attr, the set of minimal lhs
  // masks found so far.
  std::vector<std::vector<ColMask>> minimal_lhs(arity);
  // Levelwise enumeration of lhs masks by popcount.
  std::vector<ColMask> masks;
  for (ColMask m = 1; m < (ColMask{1} << arity); ++m) {
    if (static_cast<std::size_t>(__builtin_popcount(m)) <=
        options.max_lhs_size) {
      masks.push_back(m);
    }
  }
  std::sort(masks.begin(), masks.end(), [](ColMask a, ColMask b) {
    int pa = __builtin_popcount(a), pb = __builtin_popcount(b);
    return pa != pb ? pa < pb : a < b;
  });
  for (ColMask x : masks) {
    for (std::size_t a = 0; a < arity; ++a) {
      if (x & (ColMask{1} << a)) continue;  // trivial
      // Minimality: skip if a subset lhs already determines a.
      bool dominated = false;
      for (ColMask seen : minimal_lhs[a]) {
        if ((seen & x) == seen) {
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
      if (!holds(x, a)) continue;
      minimal_lhs[a].push_back(x);
      AttrSet lhs(n), rhs(n);
      for (std::size_t c = 0; c < arity; ++c) {
        if (x & (ColMask{1} << c)) lhs.Set(r.schema().attrs[c]);
      }
      rhs.Set(r.schema().attrs[a]);
      out.push_back(Fd{std::move(lhs), std::move(rhs)});
      if (out.size() >= options.max_results) return out;
    }
  }
  return out;
}

std::string PdPattern::ToString(const Universe& universe) const {
  const std::string& cn = universe.NameOf(c);
  const std::string& an = universe.NameOf(a);
  const std::string& bn = universe.NameOf(b);
  switch (kind) {
    case Kind::kProduct:
      return cn + " = " + an + "*" + bn;
    case Kind::kSum:
      return cn + " = " + an + "+" + bn;
    case Kind::kSumUpper:
      return cn + " <= " + an + "+" + bn;
  }
  return "?";
}

Result<std::vector<PdPattern>> DiscoverPdPatterns(const Database& db,
                                                  const Relation& r) {
  const std::size_t arity = r.arity();
  if (r.empty()) {
    return Status::FailedPrecondition(
        "PD discovery over an empty relation is vacuous");
  }
  DenseOps ops;
  std::vector<DensePartition> column = DenseColumns(r, &ops);

  std::vector<PdPattern> out;
  DensePartition prod, sum;
  for (std::size_t a = 0; a < arity; ++a) {
    for (std::size_t b = a + 1; b < arity; ++b) {
      ops.Product(column[a], column[b], &prod);
      ops.Sum(column[a], column[b], &sum);
      for (std::size_t c = 0; c < arity; ++c) {
        if (c == a || c == b) continue;
        RelAttrId ca = r.schema().attrs[a];
        RelAttrId cb = r.schema().attrs[b];
        RelAttrId cc = r.schema().attrs[c];
        if (column[c] == prod) {
          out.push_back(PdPattern{PdPattern::Kind::kProduct, cc, ca, cb});
        }
        if (column[c] == sum) {
          out.push_back(PdPattern{PdPattern::Kind::kSum, cc, ca, cb});
        } else if (ops.Refines(column[c], sum)) {
          out.push_back(PdPattern{PdPattern::Kind::kSumUpper, cc, ca, cb});
        }
      }
    }
  }
  return out;
}

}  // namespace psem
