// Dependency discovery: mining the FDs and PD patterns that hold in a
// concrete relation, using partition refinement — the paper's semantics
// run in reverse. By Theorem 3, r |= X -> Y iff pi_X refines pi_Y in the
// canonical interpretation I(r); counting blocks of partition products
// decides refinement (|pi_X| = |pi_X * pi_Y| iff pi_X refines pi_Y),
// which is exactly the engine of TANE-style profilers. On top of the FD
// lattice search, the module mines the paper's genuinely new patterns:
// C = A * B (composite keys), C = A + B (connected components), and
// C <= A + B.

#ifndef PSEM_DISCOVERY_DISCOVERY_H_
#define PSEM_DISCOVERY_DISCOVERY_H_

#include <string>
#include <vector>

#include "partition/partition.h"
#include "relational/dependency.h"
#include "relational/relation.h"
#include "util/status.h"

namespace psem {

/// The atomic partition of a relation column: rows grouped by value
/// (population = row indices). This is pi_A of I(r) (Definition 5).
Partition ColumnPartition(const Relation& r, std::size_t column);

/// Options for the FD search.
struct FdDiscoveryOptions {
  std::size_t max_lhs_size = 3;   ///< cap on |X| (lattice level bound).
  std::size_t max_results = 10000;
};

/// All minimal nontrivial FDs X -> A (single-attribute rhs, no proper
/// subset of X determining A) holding in `r`, found by a levelwise
/// lattice search over lhs candidates with partition products. Attribute
/// ids are r's scheme attributes (universe ids of `db`).
Result<std::vector<Fd>> DiscoverFds(const Database& db, const Relation& r,
                                    const FdDiscoveryOptions& options = {});

/// A discovered PD pattern over three scheme attributes.
struct PdPattern {
  enum class Kind : uint8_t {
    kProduct,   ///< C = A * B
    kSum,       ///< C = A + B
    kSumUpper,  ///< C <= A + B (strictly weaker than kSum)
  };
  Kind kind;
  RelAttrId c;
  RelAttrId a;
  RelAttrId b;

  std::string ToString(const Universe& universe) const;
};

/// Mines every triple (C; A, B), A < B, C distinct from both, for the
/// three PD patterns. kSumUpper is reported only when kSum does not hold
/// (it would be redundant), and the symmetric (A, B) order is normalized.
Result<std::vector<PdPattern>> DiscoverPdPatterns(const Database& db,
                                                  const Relation& r);

}  // namespace psem

#endif  // PSEM_DISCOVERY_DISCOVERY_H_
