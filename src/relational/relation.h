// Relation schemes, tuples, relations, and databases (Section 2.1).
// A relation is a *set* of tuples: insertion deduplicates. Tuples store
// dense ValueIds; the owning SymbolTable renders them back to symbols.

#ifndef PSEM_RELATIONAL_RELATION_H_
#define PSEM_RELATIONAL_RELATION_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "relational/universe.h"
#include "util/status.h"

namespace psem {

/// A tuple over a scheme: one ValueId per scheme attribute, in scheme
/// (column) order.
using Tuple = std::vector<ValueId>;

/// A relation scheme R[U]: a name plus an ordered attribute list.
struct RelationSchema {
  std::string name;
  std::vector<RelAttrId> attrs;

  std::size_t arity() const { return attrs.size(); }

  /// Column position of `attr`, or npos.
  static constexpr std::size_t kNpos = SIZE_MAX;
  std::size_t ColumnOf(RelAttrId attr) const {
    for (std::size_t i = 0; i < attrs.size(); ++i) {
      if (attrs[i] == attr) return i;
    }
    return kNpos;
  }

  bool Contains(RelAttrId attr) const { return ColumnOf(attr) != kNpos; }

  /// The attribute set of the scheme, sized to `universe_size`.
  AttrSet ToAttrSet(std::size_t universe_size) const {
    AttrSet s(universe_size);
    for (RelAttrId a : attrs) s.Set(a);
    return s;
  }
};

/// A finite relation over a scheme. Set semantics: AddTuple ignores exact
/// duplicates. Row order is insertion order (deterministic).
class Relation {
 public:
  explicit Relation(RelationSchema schema) : schema_(std::move(schema)) {}

  const RelationSchema& schema() const { return schema_; }
  std::size_t arity() const { return schema_.arity(); }
  std::size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  const std::vector<Tuple>& rows() const { return rows_; }
  const Tuple& row(std::size_t i) const { return rows_[i]; }

  /// Inserts a tuple (must match arity). Returns true iff newly inserted.
  bool AddTuple(Tuple t);

  /// True iff the exact tuple is present.
  bool Contains(const Tuple& t) const { return index_.count(HashRow(t)) > 0 && ContainsExact(t); }

  /// Convenience: interns the given symbols and inserts the tuple.
  bool AddRow(SymbolTable* symbols, const std::vector<std::string>& values);

  /// Restriction of tuple `t` (over this scheme) to the attribute set X,
  /// in universe-id order — the t[X] of Section 2.1. All attrs of X must
  /// be in the scheme.
  Tuple Restrict(const Tuple& t, const AttrSet& x) const;

  /// The set of symbols appearing in the column of `attr` (used by d[A]
  /// and the CAD assumption). Empty if attr not in scheme.
  std::vector<ValueId> ColumnValues(RelAttrId attr) const;

  /// Renders the relation as an aligned text table.
  std::string ToString(const Universe& universe,
                       const SymbolTable& symbols) const;

 private:
  static uint64_t HashRow(const Tuple& t);
  bool ContainsExact(const Tuple& t) const;

  RelationSchema schema_;
  std::vector<Tuple> rows_;
  // hash -> row indices with that hash (collision-safe membership).
  std::unordered_multimap<uint64_t, uint32_t> index_;
};

/// A database: a set of named relations plus the shared universe and
/// symbol table they are expressed over.
class Database {
 public:
  Universe& universe() { return universe_; }
  const Universe& universe() const { return universe_; }
  SymbolTable& symbols() { return symbols_; }
  const SymbolTable& symbols() const { return symbols_; }

  /// Creates an empty relation with the given scheme (attribute names are
  /// interned into the universe). Returns its index. References returned
  /// by relation() remain valid across later AddRelation calls (relations
  /// are heap-allocated with stable addresses).
  std::size_t AddRelation(const std::string& name,
                          const std::vector<std::string>& attr_names);

  std::size_t num_relations() const { return relations_.size(); }
  Relation& relation(std::size_t i) { return *relations_[i]; }
  const Relation& relation(std::size_t i) const { return *relations_[i]; }

  /// Relation by name.
  Result<std::size_t> IndexOf(const std::string& name) const;

  /// The union of all scheme attribute sets (the U of Section 2.1).
  AttrSet AllAttributes() const;

  /// d[A]: every symbol appearing under attribute A across all relations.
  std::vector<ValueId> ColumnValues(RelAttrId attr) const;

  std::string ToString() const;

 private:
  Universe universe_;
  SymbolTable symbols_;
  std::vector<std::unique_ptr<Relation>> relations_;
};

}  // namespace psem

#endif  // PSEM_RELATIONAL_RELATION_H_
